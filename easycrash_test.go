package easycrash_test

import (
	"errors"
	"fmt"

	"testing"

	"easycrash"
	"easycrash/internal/nvct"
)

func TestFacadeKernels(t *testing.T) {
	names := easycrash.KernelNames()
	if len(names) != 11 {
		t.Fatalf("KernelNames: %d", len(names))
	}
	if _, err := easycrash.NewKernel("mg", easycrash.ProfileTest); err != nil {
		t.Fatal(err)
	}
	if _, err := easycrash.NewKernel("bogus", easycrash.ProfileTest); err == nil {
		t.Fatal("bogus kernel accepted")
	}
}

func TestFacadeCacheConfigs(t *testing.T) {
	if err := easycrash.TestCacheConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := easycrash.PaperCacheConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if len(easycrash.NVMProfiles()) < 5 {
		t.Fatal("missing NVM profiles")
	}
}

func TestFacadePolicies(t *testing.T) {
	p := easycrash.IterationPolicy([]string{"u"})
	if !p.AtIterationEnd || len(p.Objects) != 1 {
		t.Fatalf("IterationPolicy = %+v", p)
	}
	q := easycrash.EveryRegionPolicy([]string{"u"}, 4)
	if len(q.AtRegionEnds) != 4 {
		t.Fatalf("EveryRegionPolicy = %+v", q)
	}
}

func TestFacadeSystemModel(t *testing.T) {
	params := easycrash.SystemParams{MTBF: 12 * 3600, TChk: 3200, R: 0.8, Ts: 0.015, DataBytes: 1e8}
	base, ec, gain, err := easycrash.SystemEfficiency(params)
	if err != nil {
		t.Fatal(err)
	}
	if !(ec > base) || gain <= 0 {
		t.Fatalf("base %v ec %v gain %v", base, ec, gain)
	}
	tau, err := easycrash.Tau(params)
	if err != nil || tau <= 0 || tau >= 1 {
		t.Fatalf("tau %v err %v", tau, err)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end workflow skipped with -short")
	}
	factory, err := easycrash.NewKernel("lu", easycrash.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	tester, err := easycrash.NewTester(factory, easycrash.TesterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := easycrash.RunWithTester(tester, easycrash.Config{Tests: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedY() <= res.BaselineY {
		t.Fatalf("EasyCrash did not improve LU: %v -> %v", res.BaselineY, res.AchievedY())
	}
	policy := res.Policy
	if policy == nil {
		policy = easycrash.IterationPolicy(res.Critical)
	}
	writes, err := easycrash.CompareWrites(tester, policy, res.Critical)
	if err != nil {
		t.Fatal(err)
	}
	if writes.NormalizedEasyCrash() < 1 || writes.NormalizedCkptAll() < 1 {
		t.Fatalf("writes report %+v", writes)
	}
}

// TestFacadeNamedErrors pins the re-exported named errors to their engine
// identities: errors.Is must work through the facade, and the strings the
// campaign records in TestResult.Err must round-trip.
func TestFacadeNamedErrors(t *testing.T) {
	cases := []struct {
		name   string
		facade error
		engine error
	}{
		{"empty crash space", easycrash.ErrEmptyCrashSpace, nvct.ErrEmptyCrashSpace},
		{"retry budget exhausted", easycrash.ErrRetryBudgetExhausted, nvct.ErrRetryBudgetExhausted},
		{"trial deadline", easycrash.ErrTrialDeadline, nvct.ErrTrialDeadline},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.facade == nil {
				t.Fatal("facade error is nil")
			}
			if !errors.Is(tc.facade, tc.engine) || !errors.Is(tc.engine, tc.facade) {
				t.Fatalf("facade error %v is not the engine's %v", tc.facade, tc.engine)
			}
			if wrapped := fmt.Errorf("campaign: %w", tc.engine); !errors.Is(wrapped, tc.facade) {
				t.Fatalf("errors.Is fails through wrapping for %v", tc.facade)
			}
			if tc.facade.Error() == "" {
				t.Fatal("named error has an empty message")
			}
		})
	}
}

// TestFacadeNestedCampaign drives a small nested-failure campaign purely
// through the facade: options, chain records and R(k) metrics must all be
// reachable without importing internal packages.
func TestFacadeNestedCampaign(t *testing.T) {
	factory, err := easycrash.NewKernel("mg", easycrash.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	tester, err := easycrash.NewTester(factory, easycrash.TesterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := tester.RunCampaign(nil, easycrash.CampaignOpts{
		Tests: 20, Seed: 11, RecrashDepth: 1, RetryBudget: 1,
	})
	if rep.MaxDepth() < 1 {
		t.Fatalf("MaxDepth = %d", rep.MaxDepth())
	}
	exhausted := 0
	for _, tr := range rep.Tests {
		var chain []easycrash.ChainCrash = tr.Chain
		if len(chain) != tr.Depth {
			t.Fatalf("chain length %d for depth %d", len(chain), tr.Depth)
		}
		if tr.Err == easycrash.ErrRetryBudgetExhausted.Error() {
			exhausted++
		}
	}
	if rep.MaxDepth() > 1 && exhausted == 0 {
		t.Fatal("depth-2 chains under budget 1 never reported ErrRetryBudgetExhausted")
	}
}
