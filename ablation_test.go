// Ablation benchmarks for the design choices DESIGN.md calls out: how much
// of the recomputability and overhead results depend on the cache
// replacement policy, the flush instruction, the persistence frequency, and
// the cache size. The paper fixes these (LRU, CLFLUSHOPT, knapsack-chosen
// frequency, one Xeon geometry); the ablations quantify the sensitivity.
package easycrash_test

import (
	"fmt"
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/nvct"
	"easycrash/internal/nvmperf"
)

func ablationTester(b *testing.B, kernel string, cfg cachesim.Config) *nvct.Tester {
	b.Helper()
	f, err := apps.New(kernel, apps.ProfileTest)
	if err != nil {
		b.Fatal(err)
	}
	t, err := nvct.NewTester(f, nvct.Config{Cache: cfg})
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// BenchmarkAblationReplacement measures how the replacement policy shifts
// LU's intrinsic and EasyCrash recomputability. Replacement order decides
// when dirty blocks drain to NVM naturally, so the baseline is sensitive;
// explicit flushing should largely erase the difference.
func BenchmarkAblationReplacement(b *testing.B) {
	var lines []string
	for _, rp := range []cachesim.Replacement{cachesim.LRU, cachesim.FIFO, cachesim.Random} {
		cfg := cachesim.TestConfig()
		cfg.Replace = rp
		t := ablationTester(b, "lu", cfg)
		opts := nvct.CampaignOpts{Tests: campaignTests() / 2, Seed: 8}
		base := t.RunCampaign(nil, opts).Recomputability()
		ec := t.RunCampaign(nvct.IterationPolicy([]string{"u", "scal"}), opts).Recomputability()
		lines = append(lines, fmt.Sprintf("  %-7s baseline %.2f  easycrash %.2f", rp, base, ec))
	}
	once("ablation-replacement", func() {
		fmt.Println("\n=== Ablation: cache replacement policy (LU) ===")
		for _, l := range lines {
			fmt.Println(l)
		}
	})
	spin(b)
}

// BenchmarkAblationFlushOp compares CLFLUSHOPT (invalidating) and CLWB
// (retaining) as the persistence instruction: recomputability should match,
// while CLWB avoids the reload misses and so costs less time.
func BenchmarkAblationFlushOp(b *testing.B) {
	t := lab.tester(b, "mg")
	var lines []string
	for _, op := range []cachesim.FlushOp{cachesim.CLFLUSHOPT, cachesim.CLWB, cachesim.CLFLUSH} {
		policy := &nvct.Policy{Objects: []string{"u"}, AtIterationEnd: true, Frequency: 1, Op: op}
		rec := t.RunCampaign(policy, nvct.CampaignOpts{Tests: campaignTests() / 2, Seed: 9}).Recomputability()
		run, err := t.ProfileRun(policy)
		if err != nil {
			b.Fatal(err)
		}
		base, err := t.ProfileRun(nil)
		if err != nil {
			b.Fatal(err)
		}
		norm := nvmperf.OptaneDC().Normalized(run.CacheStats, base.CacheStats)
		lines = append(lines, fmt.Sprintf("  %-10s R %.2f  normalized time (optane) %.3f", op, rec, norm))
	}
	once("ablation-flushop", func() {
		fmt.Println("\n=== Ablation: flush instruction (MG, persist u) ===")
		for _, l := range lines {
			fmt.Println(l)
		}
	})
	spin(b)
}

// BenchmarkAblationFrequency sweeps the persistence period x (Equation 5's
// control knob): recomputability should fall roughly as 1/x while the
// persistence work shrinks.
func BenchmarkAblationFrequency(b *testing.B) {
	t := lab.tester(b, "mg")
	var lines []string
	for _, x := range []int64{1, 2, 4, 8} {
		policy := nvct.IterationPolicy([]string{"u"})
		policy.Frequency = x
		rec := t.RunCampaign(policy, nvct.CampaignOpts{Tests: campaignTests() / 2, Seed: 10}).Recomputability()
		run, err := t.ProfileRun(policy)
		if err != nil {
			b.Fatal(err)
		}
		lines = append(lines, fmt.Sprintf("  x=%d  R %.2f  persistence ops %d  dirty flushes %d",
			x, rec, run.PersistStats.Operations, run.PersistStats.DirtyFlushed))
	}
	once("ablation-frequency", func() {
		fmt.Println("\n=== Ablation: persistence frequency x (MG, persist u) ===")
		for _, l := range lines {
			fmt.Println(l)
		}
	})
	spin(b)
}

// BenchmarkAblationCacheSize scales the LLC: a larger cache keeps more
// dirty state volatile (less natural persistence), depressing intrinsic
// recomputability — the effect behind the paper's footprint-vs-LLC framing.
func BenchmarkAblationCacheSize(b *testing.B) {
	var lines []string
	for _, llcKiB := range []int{16, 32, 64} {
		cfg := cachesim.TestConfig()
		cfg.Name = fmt.Sprintf("llc-%dk", llcKiB)
		cfg.Levels[2].Size = llcKiB << 10
		if cfg.Levels[1].Size > cfg.Levels[2].Size {
			cfg.Levels[1].Size = cfg.Levels[2].Size
		}
		t := ablationTester(b, "mg", cfg)
		base := t.RunCampaign(nil, nvct.CampaignOpts{Tests: campaignTests() / 2, Seed: 11}).Recomputability()
		ec := t.RunCampaign(nvct.IterationPolicy([]string{"u"}),
			nvct.CampaignOpts{Tests: campaignTests() / 2, Seed: 11}).Recomputability()
		lines = append(lines, fmt.Sprintf("  LLC %2d KiB  baseline %.2f  easycrash %.2f", llcKiB, base, ec))
	}
	once("ablation-cachesize", func() {
		fmt.Println("\n=== Ablation: LLC size (MG) ===")
		for _, l := range lines {
			fmt.Println(l)
		}
	})
	spin(b)
}
