// Command predict runs the paper's §8 application-characterisation study:
// it extracts access-pattern features from one instrumented run of each
// kernel (no crash tests), optionally measures true recomputability with
// quick campaigns, fits the linear model, and reports leave-one-out
// predictions — the "predict recomputability without any crash test"
// programme the paper sketches as the way to avoid campaign costs.
package main

import (
	"flag"
	"fmt"
	"log"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/nvct"
	"easycrash/internal/predict"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("predict: ")

	var (
		fit   = flag.Bool("fit", false, "measure recomputability with campaigns and fit/evaluate the model")
		tests = flag.Int("tests", 60, "campaign size per kernel with -fit")
		seed  = flag.Int64("seed", 1, "campaign seed")
	)
	flag.Parse()

	names := apps.Names()
	feats := make([]predict.Features, len(names))
	fmt.Printf("%-9s %10s %8s %10s %6s\n", "bench", "dirty@end", "rmw", "rewrite", "conv")
	for i, name := range names {
		factory, err := apps.New(name, apps.ProfileTest)
		if err != nil {
			log.Fatal(err)
		}
		f, err := predict.Characterize(factory, cachesim.Config{}, 0)
		if err != nil {
			log.Fatal(err)
		}
		feats[i] = f
		fmt.Printf("%-9s %10.3f %8.3f %10.3f %6.0f\n",
			name, f.DirtyAtIterEnd, f.RMWStoreFrac, f.RewriteCoverage, f.Convergent)
	}

	if !*fit {
		return
	}

	fmt.Println("\nmeasuring baseline recomputability (campaigns)...")
	measured := make([]float64, len(names))
	for i, name := range names {
		factory, _ := apps.New(name, apps.ProfileTest)
		tester, err := nvct.NewTester(factory, nvct.Config{})
		if err != nil {
			log.Fatal(err)
		}
		rep := tester.RunCampaign(nil, nvct.CampaignOpts{Tests: *tests, Seed: *seed})
		measured[i] = rep.Recomputability()
	}

	fmt.Printf("\n%-9s %10s %22s\n", "bench", "measured", "predicted (leave-1-out)")
	for i := range names {
		var trF []predict.Features
		var trY []float64
		for j := range names {
			if j != i {
				trF = append(trF, feats[j])
				trY = append(trY, measured[j])
			}
		}
		m, err := predict.Fit(trF, trY)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %10.2f %22.2f\n", names[i], measured[i], m.Predict(feats[i]))
	}

	full, err := predict.Fit(feats, measured)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull-fit coefficients: intercept %.3f  dirty %.3f  rmw %.3f  rewrite %.3f  conv %.3f\n",
		full.Coef[0], full.Coef[1], full.Coef[2], full.Coef[3], full.Coef[4])
}
