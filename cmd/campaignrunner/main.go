// Command campaignrunner is the supervised, sharded campaign runner: it
// splits one nvct campaign into round-robin shards, runs each shard in a
// worker subprocess (a re-exec of this binary in worker mode), and survives
// workers that crash, hang or corrupt their output by killing and requeueing
// them under capped exponential backoff. The merged report is byte-identical
// to the single-process engine's; when a shard's retry budget is exhausted
// the run degrades to a partial report with per-shard status instead of an
// error-only exit.
//
// Usage:
//
//	campaignrunner -kernel mg -tests 200 -seed 1 -shards 4 -run-dir runs/mg
//	     [-persist u,r] [-regions 2,3] [-every-iteration] [-frequency 2]
//	     [-verified] [-during-persistence] [-parallel 2] [-profile bench]
//	     [-cache paper] [-rber 1e-5] [-torn] [-ecc 1] [-ecc-detect 2] [-scrub]
//	     [-recrash-depth 2] [-retry-budget 3] [-known known-failures.json]
//	     [-max-attempts 3] [-backoff 100ms] [-backoff-cap 2s] [-hb 200ms]
//	     [-hb-timeout 5s] [-evidence 5] [-chaos crash@0.1,hang@1.1]
//
// Every run writes an artifact directory under -run-dir: the campaign spec,
// the invocation metadata, the merged JSON report (identical to nvct -json),
// per-shard supervision status, the raw worker shard files, and for each
// failure class a repro command plus the durable dump recovery read. With
// -known, failure fingerprints are deduplicated against the persistent store
// and the run reports "N new / M known".
//
// The -chaos flag is the test-only failure injector (mode@shard.attempt,
// modes crash|hang|garble) that CI uses to prove the supervision machinery
// works; it has no place in a real sweep.
//
// `campaignrunner worker ...` is the internal worker mode the supervisor
// launches; it is not meant to be invoked by hand.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"easycrash/internal/campaignd"
	"easycrash/internal/cli"
	"easycrash/internal/nvct"

	// Register the persistent KV workloads ("pmemkv", "pmemkv-bug"): workers
	// rebuild their tester from the spec's kernel name, so every kernel nvct
	// knows must be registered in worker mode too.
	_ "easycrash/internal/pmemkv"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		os.Exit(campaignd.WorkerMain(os.Args[2:], os.Stdout, os.Stderr))
	}

	log.SetFlags(0)
	log.SetPrefix("campaignrunner: ")

	var (
		kernel   = flag.String("kernel", "mg", "kernel to test")
		tests    = flag.Int("tests", 200, "crash tests in the campaign (> 0)")
		seed     = flag.Int64("seed", 1, "campaign seed")
		persist  = flag.String("persist", "", "comma-separated data objects to persist (empty: none)")
		regions  = flag.String("regions", "", "comma-separated region ids to flush at (empty with -persist: every iteration end)")
		everyIt  = flag.Bool("every-iteration", false, "also flush at iteration ends")
		freq     = flag.Int64("frequency", 1, "persist every x iterations (>= 1)")
		verified = flag.Bool("verified", false, "run the copy-based verified campaign variant")
		duringP  = flag.Bool("during-persistence", false, "make persistence flushes crash-eligible")
		parallel = flag.Int("parallel", 1, "concurrent crash tests within each worker")
		profile  = flag.String("profile", "test", "problem size: test | bench")
		cache    = flag.String("cache", "test", "cache geometry: test | paper")

		shards      = flag.Int("shards", 2, "worker shards (>= 1)")
		runDir      = flag.String("run-dir", "", "artifact directory for this run (required)")
		known       = flag.String("known", "", "persistent known-failure store for fingerprint dedup (empty: report every failure as new)")
		maxAttempts = flag.Int("max-attempts", 3, "retry budget per shard, first attempt included")
		backoff     = flag.Duration("backoff", 100*time.Millisecond, "base delay of the capped exponential retry backoff")
		backoffCap  = flag.Duration("backoff-cap", 2*time.Second, "backoff delay cap")
		hb          = flag.Duration("hb", 200*time.Millisecond, "worker heartbeat interval")
		hbTimeout   = flag.Duration("hb-timeout", 0, "heartbeat silence before a worker is declared hung and killed (0: 10x -hb, min 2s)")
		evidence    = flag.Int("evidence", 5, "failure classes to archive a durable dump for (-1: repro commands only)")
		chaos       = flag.String("chaos", "", "test-only worker failure injection: mode@shard.attempt,... (modes crash|hang|garble)")
	)
	faultFlags := cli.RegisterFaultFlags(flag.CommandLine, true)
	nestedFlags := cli.RegisterNestedFlags(flag.CommandLine)
	flag.Parse()

	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q (all options are flags)", flag.Args())
	}
	if *runDir == "" {
		log.Fatal("-run-dir is required: every campaign writes its evidence somewhere")
	}
	faults, err := faultFlags.Config()
	if err != nil {
		log.Fatal(err)
	}
	if err := nestedFlags.Validate(); err != nil {
		log.Fatal(err)
	}
	policy, err := cli.BuildPolicy(*persist, *regions, *everyIt, *freq)
	if err != nil {
		log.Fatal(err)
	}

	spec := &campaignd.Spec{
		Kernel:  *kernel,
		Profile: *profile,
		Cache:   *cache,
		Policy:  policy,
		Opts: nvct.CampaignOpts{
			Tests:                  *tests,
			Seed:                   *seed,
			Verified:               *verified,
			Parallel:               *parallel,
			CrashDuringPersistence: *duringP,
			Faults:                 faults,
			ScrubOnRestart:         faultFlags.Scrub,
			RecrashDepth:           nestedFlags.Depth,
			RetryBudget:            nestedFlags.Budget,
			TrialDeadline:          nestedFlags.Deadline,
		},
	}
	cfg := campaignd.Config{
		Spec:             spec,
		Shards:           *shards,
		RunDir:           *runDir,
		KnownPath:        *known,
		MaxAttempts:      *maxAttempts,
		BackoffBase:      *backoff,
		BackoffCap:       *backoffCap,
		Heartbeat:        *hb,
		HeartbeatTimeout: *hbTimeout,
		EvidenceTrials:   *evidence,
		Chaos:            *chaos,
		Log:              os.Stderr,
	}

	// SIGINT/SIGTERM drain the workers (they flush the trials they finished)
	// and the partial result is still merged, archived and printed.
	ctx, stopSignals := cli.SignalContext()
	defer stopSignals()
	res, err := campaignd.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	rep := res.Report
	fmt.Printf("campaign: %s, %d shards, %d/%d trials (seed %d, policy %s)\n",
		*kernel, *shards, len(rep.Tests), rep.Requested, *seed, cli.DescribePolicy(policy, *verified))
	for _, st := range res.Shards {
		fmt.Printf("  shard %d: %-9s %d/%d trials, %d attempt(s)", st.Shard, st.State, st.Trials, st.Expected, st.Attempts)
		for _, f := range st.Failures {
			fmt.Printf("  [attempt %d %s]", f.Attempt, f.Kind)
		}
		fmt.Println()
	}
	if n := len(rep.Tests); n > 0 {
		fmt.Printf("outcomes:")
		for o := 0; o < nvct.NumOutcomes; o++ {
			if rep.Counts[o] > 0 {
				fmt.Printf(" %s %d", nvct.Outcome(o), rep.Counts[o])
			}
		}
		fmt.Printf("\nrecomputability %.3f, success rate %.3f\n", rep.Recomputability(), rep.SuccessRate())
	}
	fmt.Printf("failures: %d trial(s) in %d class(es): %d new / %d known\n",
		res.FailingTrials, len(res.FailureClasses), res.NewFailures, res.KnownFailures)
	fmt.Printf("artifacts: %s\n", res.RunDir)

	if !res.Complete {
		log.Printf("partial run: %d trial(s) undelivered (see %s/status.json)", len(res.Missing), res.RunDir)
		os.Exit(1)
	}
}
