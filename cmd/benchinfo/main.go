// Command benchinfo prints the Table-1 characterisation of every benchmark
// kernel: code regions, read/write ratio, memory footprint, candidate and
// (with -campaign) critical data-object sizes, restart overhead and
// iteration counts.
package main

import (
	"flag"
	"fmt"
	"log"

	"easycrash/internal/apps"
	"easycrash/internal/cli"
	"easycrash/internal/core"
	"easycrash/internal/nvct"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchinfo: ")

	var (
		campaign = flag.Bool("campaign", false, "run crash campaigns for the critical-size and restart-overhead columns (slower)")
		tests    = flag.Int("tests", 80, "campaign size with -campaign")
		seed     = flag.Int64("seed", 1, "campaign seed")

		compare   = flag.String("compare", "", "compare mode: diff a `go test -bench` output file ('-' for stdin) against -baseline and exit nonzero on regressions")
		baseline  = flag.String("baseline", "BENCH_cachesim.json", "baseline JSON for -compare")
		tolerance = flag.Float64("tolerance", 0.20, "relative ns/op regression allowed by -compare (0.20 = 20%)")
	)
	flag.Parse()

	if *compare != "" {
		if err := runCompare(*compare, *baseline, *tolerance); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("%-9s %-45s %7s %6s %10s %10s %10s %11s %6s\n",
		"bench", "description", "regions", "R/W", "footprint", "cand.size", "crit.size", "extra-iters", "iters")
	for _, name := range apps.Names() {
		factory, err := apps.New(name, apps.ProfileTest)
		if err != nil {
			log.Fatal(err)
		}
		tester, err := nvct.NewTester(factory, nvct.Config{})
		if err != nil {
			log.Fatal(err)
		}
		g := tester.Golden()
		k := factory()
		rw := float64(g.CacheStats.Loads) / float64(g.CacheStats.Stores)

		critSize, extra := "-", "-"
		if *campaign {
			res, err := core.RunWithTester(tester, core.Config{Tests: *tests, Seed: *seed})
			if err != nil {
				log.Fatal(err)
			}
			var bytes uint64
			for _, o := range g.Candidates {
				for _, c := range res.Critical {
					if o.Name == c {
						bytes += o.Size
					}
				}
			}
			critSize = cli.Size(bytes)
			if res.Final != nil {
				extra = fmt.Sprintf("%.1f", res.Final.AvgExtraIters())
			} else {
				extra = "n/a"
			}
		}

		fmt.Printf("%-9s %-45s %7d %5.1f:1 %10s %10s %10s %11s %6d\n",
			name, k.Description(), k.RegionCount(), rw,
			cli.Size(g.Footprint), cli.Size(g.CandidateBytes), critSize, extra, g.Iters)
	}
}
