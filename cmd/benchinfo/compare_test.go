package main

import (
	"io"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: easycrash
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCacheAccess-8   	 5669610	       211.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkCacheStream-8   	 7552124	       160.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkCampaignPrefixShared/lu/prefix-8         	       2	 432500000 ns/op
BenchmarkBrandNew-8      	  100000	      1000 ns/op
PASS
ok  	easycrash	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkCacheAccess":                    211.0,
		"BenchmarkCacheStream":                    160.6,
		"BenchmarkCampaignPrefixShared/lu/prefix": 432500000,
		"BenchmarkBrandNew":                       1000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benches, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v ns/op, want %v", name, got[name], ns)
		}
	}
}

func TestCompareBenchesVerdicts(t *testing.T) {
	base := baselineFile{Benchmarks: map[string]baselineEntry{
		"BenchmarkCacheAccess": {NsPerOp: 200},
		"BenchmarkCacheStream": {NsPerOp: 100},
	}}
	fresh := map[string]float64{
		"BenchmarkCacheAccess": 235, // +17.5%: inside a 20% tolerance
		"BenchmarkCacheStream": 130, // +30%: regression
		"BenchmarkBrandNew":    50,  // no baseline: reported, never fails
	}
	if n := compareBenches(io.Discard, fresh, base, 0.20); n != 1 {
		t.Fatalf("got %d regressions, want 1", n)
	}
	if n := compareBenches(io.Discard, fresh, base, 0.50); n != 0 {
		t.Fatalf("tolerance 50%%: got %d regressions, want 0", n)
	}
	// An improvement is never a regression.
	if n := compareBenches(io.Discard, map[string]float64{"BenchmarkCacheAccess": 90}, base, 0.20); n != 0 {
		t.Fatalf("improvement flagged as regression")
	}
}
