package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// baselineFile mirrors the committed BENCH_*.json schema: a benchmarks map
// from name to measurements. Only ns_per_op participates in the comparison;
// the other fields document the baseline.
type baselineFile struct {
	Description string                   `json:"description"`
	Benchmarks  map[string]baselineEntry `json:"benchmarks"`
}

type baselineEntry struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// parseBenchOutput extracts (name, ns/op) pairs from `go test -bench` text.
// Benchmark names keep their sub-benchmark path but drop the trailing
// -GOMAXPROCS suffix, matching the keys the baseline files use.
func parseBenchOutput(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			ns, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
			out[name] = ns
		}
	}
	return out, sc.Err()
}

// compareBenches diffs a fresh bench run against a committed baseline and
// returns the number of benchmarks whose ns/op regressed past the tolerance
// (0.20 = fail when more than 20% slower). Benchmarks present on only one
// side are reported but never fail the comparison — the baseline documents
// more benches than a smoke run measures, and new benches have no baseline
// yet.
func compareBenches(w io.Writer, fresh map[string]float64, base baselineFile, tolerance float64) int {
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		b, ok := base.Benchmarks[name]
		if !ok || b.NsPerOp == 0 {
			fmt.Fprintf(w, "%-45s %12.1f ns/op  (no baseline)\n", name, fresh[name])
			continue
		}
		ratio := fresh[name] / b.NsPerOp
		verdict := "ok"
		if ratio > 1+tolerance {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-45s %12.1f ns/op  baseline %12.1f  %+6.1f%%  %s\n",
			name, fresh[name], b.NsPerOp, (ratio-1)*100, verdict)
	}
	return regressions
}

// runCompare implements the -compare mode: parse the bench output file ("-"
// for stdin), load the baseline JSON, and exit nonzero on any regression
// beyond the tolerance.
func runCompare(benchPath, baselinePath string, tolerance float64) error {
	var in io.Reader = os.Stdin
	if benchPath != "-" {
		f, err := os.Open(benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	fresh, err := parseBenchOutput(in)
	if err != nil {
		return err
	}
	if len(fresh) == 0 {
		return fmt.Errorf("no benchmark results found in %s", benchPath)
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if n := compareBenches(os.Stdout, fresh, base, tolerance); n > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s", n, tolerance*100, baselinePath)
	}
	return nil
}
