// Command eclint runs the EasyCrash static-analysis suite over Go package
// patterns and reports violations of the simulation invariants: raw mem.Image
// access that bypasses the cache hierarchy (directmem), unbalanced
// region/iteration/main-loop markers (regionpairs), element-index arithmetic
// missing the 8-byte stride (addrstride), nondeterminism in campaign code
// (campaigndet), and durable writes reaching a commit mark or acknowledgement
// without a fenced flush (persistorder).
//
// Usage:
//
//	eclint [-list] [-json] [-baseline file] [packages]
//
// With no arguments it analyzes ./... . It exits 1 if any unsuppressed,
// unbaselined finding is reported and 0 on a clean tree; findings are
// suppressed with //eclint:allow <analyzer> annotations (see
// internal/analysis). Stale annotations that suppress nothing are themselves
// findings.
//
// -json emits every finding — suppressed ones included, with their allow
// reasons — as a JSON array of stable DTOs, so CI can assert not only that
// the tree is clean but that a deliberate, annotated violation is still being
// caught. -baseline diffs unsuppressed findings against a checked-in
// baseline file (same JSON format): known findings are reported but do not
// fail the run, new ones do.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"easycrash/internal/analysis"
	"easycrash/internal/analysis/suite"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit all findings (suppressed included) as a JSON array")
	baselinePath := flag.String("baseline", "", "JSON baseline `file`; findings recorded there are reported but do not fail the run")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: eclint [-list] [-json] [-baseline file] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzes the given Go package patterns (default ./...) and exits 1\non any finding not suppressed by an //eclint:allow annotation and not\nrecorded in the baseline.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("eclint: %v", err)
	}
	var baseline analysis.Baseline
	if *baselinePath != "" {
		baseline, err = analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fatalf("%v", err)
		}
	}
	pkgs, err := analysis.LoadPatterns(cwd, patterns...)
	if err != nil {
		fatalf("%v", err)
	}

	var all []analysis.FindingJSON
	failing := 0
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fatalf("%v", err)
		}
		for _, f := range findings {
			j := f.JSON(cwd)
			j.Baselined = !f.Suppressed && baseline.Has(j)
			all = append(all, j)
			if f.Suppressed || j.Baselined {
				continue
			}
			failing++
			if !*jsonOut {
				fmt.Println(relativize(cwd, f))
			}
		}
	}
	if *jsonOut {
		if err := analysis.WriteFindingsJSON(os.Stdout, all); err != nil {
			fatalf("eclint: %v", err)
		}
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "eclint: %d finding(s)\n", failing)
		os.Exit(1)
	}
}

// relativize rewrites a finding's file name relative to the working
// directory, keeping CI and editor output clickable.
func relativize(cwd string, f analysis.Finding) string {
	if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
