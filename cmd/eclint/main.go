// Command eclint runs the EasyCrash static-analysis suite over Go package
// patterns and reports violations of the simulation invariants: raw mem.Image
// access that bypasses the cache hierarchy (directmem), unbalanced
// region/iteration/main-loop markers (regionpairs), element-index arithmetic
// missing the 8-byte stride (addrstride), and nondeterminism in campaign code
// (campaigndet).
//
// Usage:
//
//	eclint [-list] [packages]
//
// With no arguments it analyzes ./... . It exits 1 if any unsuppressed
// finding is reported and 0 on a clean tree; findings are suppressed with
// //eclint:allow <analyzer> annotations (see internal/analysis).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"easycrash/internal/analysis"
	"easycrash/internal/analysis/suite"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: eclint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzes the given Go package patterns (default ./...) and exits 1\non any finding not suppressed by an //eclint:allow annotation.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("eclint: %v", err)
	}
	pkgs, err := analysis.LoadPatterns(cwd, patterns...)
	if err != nil {
		fatalf("%v", err)
	}

	total := 0
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fatalf("%v", err)
		}
		for _, f := range findings {
			fmt.Println(relativize(cwd, f))
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "eclint: %d finding(s)\n", total)
		os.Exit(1)
	}
}

// relativize rewrites a finding's file name relative to the working
// directory, keeping CI and editor output clickable.
func relativize(cwd string, f analysis.Finding) string {
	if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
