// Package badkernel is the eclint smoke fixture: a deliberately broken
// kernel that violates every analyzer exactly once. The testdata/src prefix
// keeps it out of ./... builds while letting the smoke test point eclint at
// it with an explicit package path; the path below testdata/src mirrors
// internal/apps so campaigndet scopes it like a real kernel.
package badkernel

import (
	"math/rand"

	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// Step leaks region 0 on the early return (regionpairs), indexes without the
// element stride (addrstride), and perturbs state with the global generator
// (campaigndet).
func Step(m *sim.Machine, o mem.Object, n int) float64 {
	m.BeginRegion(0)
	v := m.LoadF64(o.Addr + uint64(rand.Intn(n)))
	if v < 0 {
		return v
	}
	m.EndRegion(0)
	return v
}

// Peek reads the durable image directly, bypassing the cache hierarchy
// (directmem).
func Peek(im *mem.Image, o mem.Object) float64 {
	return im.Float64At(o.Addr)
}

// kv violates the persistence-ordering contract: the commit mark covers a
// WAL record that was never flushed (persistorder).
type kv struct {
	wal  mem.Object //persist:data
	head mem.Object //persist:commit
}

func (s *kv) Put(m *sim.Machine, seq int64) {
	m.StoreI64(s.wal.Addr+uint64(seq)*32, seq+1)
	m.StoreI64(s.head.Addr, seq+1)
}
