package main_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildEclint compiles the eclint binary into a scratch dir once per test
// run and returns its path.
func buildEclint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "eclint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building eclint: %v\n%s", err, out)
	}
	return bin
}

// TestSmokeBadFixture runs eclint against the deliberately broken fixture and
// expects a non-zero exit with at least one finding from every analyzer.
func TestSmokeBadFixture(t *testing.T) {
	bin := buildEclint(t)
	cmd := exec.Command(bin, "./testdata/src/easycrash/internal/apps/badkernel")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("eclint exited 0 on the bad fixture; output:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("eclint on the bad fixture: want exit code 1, got %v\n%s", err, out)
	}
	for _, name := range []string{"addrstride", "campaigndet", "directmem", "regionpairs"} {
		if !strings.Contains(string(out), "("+name+")") {
			t.Errorf("no %s finding in eclint output:\n%s", name, out)
		}
	}
}

// TestCleanTree runs eclint over the whole module and expects a clean exit:
// the checked-in tree must carry no unsuppressed findings.
func TestCleanTree(t *testing.T) {
	root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	bin := buildEclint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = strings.TrimSpace(string(root))
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("eclint ./... failed: %v\n%s", err, out)
	}
	if len(strings.TrimSpace(string(out))) != 0 {
		t.Errorf("eclint ./... produced output on a clean tree:\n%s", out)
	}
}

// TestListFlag checks the -list inventory names every analyzer.
func TestListFlag(t *testing.T) {
	bin := buildEclint(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("eclint -list: %v\n%s", err, out)
	}
	for _, name := range []string{"addrstride", "campaigndet", "directmem", "regionpairs"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("eclint -list missing %s:\n%s", name, out)
		}
	}
}
