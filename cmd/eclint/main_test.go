package main_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"easycrash/internal/analysis"
)

// buildEclint compiles the eclint binary into a scratch dir once per test
// run and returns its path.
func buildEclint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "eclint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building eclint: %v\n%s", err, out)
	}
	return bin
}

// TestSmokeBadFixture runs eclint against the deliberately broken fixture and
// expects a non-zero exit with at least one finding from every analyzer.
func TestSmokeBadFixture(t *testing.T) {
	bin := buildEclint(t)
	cmd := exec.Command(bin, "./testdata/src/easycrash/internal/apps/badkernel")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("eclint exited 0 on the bad fixture; output:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("eclint on the bad fixture: want exit code 1, got %v\n%s", err, out)
	}
	for _, name := range []string{"addrstride", "campaigndet", "directmem", "persistorder", "regionpairs"} {
		if !strings.Contains(string(out), "("+name+")") {
			t.Errorf("no %s finding in eclint output:\n%s", name, out)
		}
	}
}

// TestCleanTree runs eclint over the whole module and expects a clean exit:
// the checked-in tree must carry no unsuppressed findings.
func TestCleanTree(t *testing.T) {
	root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	bin := buildEclint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = strings.TrimSpace(string(root))
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("eclint ./... failed: %v\n%s", err, out)
	}
	if len(strings.TrimSpace(string(out))) != 0 {
		t.Errorf("eclint ./... produced output on a clean tree:\n%s", out)
	}
}

// TestListFlag checks the -list inventory names every analyzer.
func TestListFlag(t *testing.T) {
	bin := buildEclint(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("eclint -list: %v\n%s", err, out)
	}
	for _, name := range []string{"addrstride", "campaigndet", "directmem", "persistorder", "regionpairs"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("eclint -list missing %s:\n%s", name, out)
		}
	}
}

// TestJSONOutput pins the machine-readable mode: -json on the bad fixture
// still exits 1 but emits a parseable array covering every analyzer, and on
// the real pmemkv package it exposes the suppressed deliberate-bug finding
// with its allow reason — the hook CI's static↔dynamic cross-check hangs on.
func TestJSONOutput(t *testing.T) {
	bin := buildEclint(t)

	out, err := exec.Command(bin, "-json", "./testdata/src/easycrash/internal/apps/badkernel").Output()
	if err == nil {
		t.Fatalf("eclint -json exited 0 on the bad fixture")
	}
	var findings []analysis.FindingJSON
	if jsonErr := json.Unmarshal(out, &findings); jsonErr != nil {
		t.Fatalf("eclint -json output is not a findings array: %v\n%s", jsonErr, out)
	}
	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
		if f.Suppressed {
			t.Errorf("bad fixture carries no allows, but finding is suppressed: %+v", f)
		}
	}
	for _, name := range []string{"addrstride", "campaigndet", "directmem", "persistorder", "regionpairs"} {
		if byAnalyzer[name] == 0 {
			t.Errorf("no %s finding in -json output:\n%s", name, out)
		}
	}

	root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	cmd := exec.Command(bin, "-json", "./internal/pmemkv/")
	cmd.Dir = strings.TrimSpace(string(root))
	out, err = cmd.Output()
	if err != nil {
		t.Fatalf("eclint -json ./internal/pmemkv/ failed: %v\n%s", err, out)
	}
	if jsonErr := json.Unmarshal(out, &findings); jsonErr != nil {
		t.Fatalf("parsing pmemkv findings: %v\n%s", jsonErr, out)
	}
	suppressed := 0
	for _, f := range findings {
		if f.Analyzer == "persistorder" && f.Suppressed && strings.Contains(f.AllowReason, "pmemkv-bug") {
			suppressed++
		}
	}
	if suppressed != 1 {
		t.Errorf("want exactly 1 suppressed persistorder finding on pmemkv in -json output, got %d:\n%s", suppressed, out)
	}
}

// TestBaselineFlag pins the diff contract end to end: freezing the bad
// fixture's findings with -json and replaying them through -baseline turns
// the failing run clean.
func TestBaselineFlag(t *testing.T) {
	bin := buildEclint(t)
	fixture := "./testdata/src/easycrash/internal/apps/badkernel"

	out, err := exec.Command(bin, "-json", fixture).Output()
	if err == nil {
		t.Fatalf("eclint -json exited 0 on the bad fixture")
	}
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(baseline, out, 0o644); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}

	got, err := exec.Command(bin, "-baseline", baseline, fixture).CombinedOutput()
	if err != nil {
		t.Fatalf("eclint -baseline must tolerate baselined findings: %v\n%s", err, got)
	}
	if len(strings.TrimSpace(string(got))) != 0 {
		t.Errorf("baselined run still printed findings:\n%s", got)
	}
}
