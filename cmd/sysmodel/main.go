// Command sysmodel evaluates the paper's §7 analytic emulator of a
// large-scale HPC system under checkpoint/restart, with and without
// EasyCrash: the Figure-10 sweep over checkpoint overheads, the Figure-11
// sweep over system scales, and the τ threshold derivation.
package main

import (
	"flag"
	"fmt"
	"log"

	"easycrash/internal/sysmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sysmodel: ")

	var (
		r    = flag.Float64("r", 0.82, "application recomputability with EasyCrash")
		ts   = flag.Float64("ts", 0.015, "EasyCrash runtime overhead")
		mtbf = flag.Float64("mtbf", 12, "system MTBF in hours")
		data = flag.Float64("data", 500e6, "restart reload size in bytes")
	)
	flag.Parse()

	fmt.Printf("operating point: R=%.2f ts=%.3f data=%.0fMB\n\n", *r, *ts, *data/1e6)

	fmt.Printf("Figure 10 — efficiency vs checkpoint overhead (MTBF %.0fh):\n", *mtbf)
	fmt.Printf("  %-10s %-12s %-12s %-8s %-6s\n", "T_chk", "baseline", "easycrash", "gain", "tau")
	for _, tchk := range sysmodel.CheckpointOverheads() {
		p := sysmodel.Params{MTBF: *mtbf * 3600, TChk: tchk, R: *r, Ts: *ts, DataBytes: *data}
		base, ec, gain, err := sysmodel.Improvement(p)
		if err != nil {
			log.Fatal(err)
		}
		tau, err := sysmodel.Tau(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10.0f %-12.4f %-12.4f %+-8.4f %.3f\n", tchk, base, ec, gain, tau)
	}

	fmt.Println("\nFigure 11 — efficiency vs system scale:")
	for _, tchk := range []float64{32, 3200} {
		fmt.Printf("  T_chk = %.0fs:\n", tchk)
		fmt.Printf("    %-10s %-8s %-12s %-12s %-8s\n", "nodes", "MTBF", "baseline", "easycrash", "gain")
		for _, sc := range sysmodel.Scales() {
			p := sysmodel.Params{MTBF: sc.MTBF, TChk: tchk, R: *r, Ts: *ts, DataBytes: *data}
			base, ec, gain, err := sysmodel.Improvement(p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    %-10d %-8s %-12.4f %-12.4f %+.4f\n",
				sc.Nodes, fmt.Sprintf("%.0fh", sc.MTBF/3600), base, ec, gain)
		}
	}
}
