// Command easycrash runs the full EasyCrash workflow (§5.3 of the paper)
// for one kernel: a baseline crash-test campaign, Spearman-based selection
// of critical data objects, campaign-driven selection of critical code
// regions under the runtime-overhead budget t_s, and a validation campaign
// of the resulting persistence policy. When -mtbf and -tchk are given, the
// recomputability threshold τ is derived from the §7 system model and the
// resulting system-efficiency gain is reported.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"easycrash/internal/apps"
	"easycrash/internal/cli"
	"easycrash/internal/core"
	"easycrash/internal/nvct"
	"easycrash/internal/sysmodel"

	// Register the persistent KV workloads ("pmemkv", "pmemkv-bug"), so the
	// workflow can be pointed at a consistency-oracle kernel.
	_ "easycrash/internal/pmemkv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("easycrash: ")

	var (
		kernel  = flag.String("kernel", "mg", "kernel to analyse")
		tests   = flag.Int("tests", 200, "crash tests per campaign (> 0)")
		seed    = flag.Int64("seed", 1, "campaign seed")
		ts      = flag.Float64("ts", 0.03, "runtime overhead budget t_s in (0,1)")
		mtbf    = flag.Float64("mtbf", 0, "system MTBF in hours (0: skip the efficiency analysis)")
		tchk    = flag.Float64("tchk", 320, "checkpoint overhead in seconds (> 0)")
		profile = flag.String("profile", "test", "problem size: test | bench")
		cache   = flag.String("cache", "test", "cache geometry: test | paper")
	)
	faultFlags := cli.RegisterFaultFlags(flag.CommandLine, false)
	nestedFlags := cli.RegisterNestedFlags(flag.CommandLine)
	profFlags := cli.RegisterProfileFlags(flag.CommandLine)
	flag.Parse()

	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q (all options are flags)", flag.Args())
	}
	if *tests <= 0 {
		log.Fatalf("-tests must be positive, got %d", *tests)
	}
	if *ts <= 0 || *ts >= 1 {
		log.Fatalf("-ts must be in (0,1), got %g", *ts)
	}
	if *mtbf < 0 {
		log.Fatalf("-mtbf must be >= 0, got %g", *mtbf)
	}
	if *tchk <= 0 {
		log.Fatalf("-tchk must be positive, got %g", *tchk)
	}

	faults, err := faultFlags.Config()
	if err != nil {
		log.Fatal(err)
	}
	if err := nestedFlags.Validate(); err != nil {
		log.Fatal(err)
	}

	prof, err := cli.ParseProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	factory, err := apps.New(*kernel, prof)
	if err != nil {
		log.Fatal(err)
	}
	geom, err := cli.ParseCache(*cache)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.Config{
		Ts:            *ts,
		Tests:         *tests,
		Seed:          *seed,
		Tester:        nvct.Config{Cache: geom},
		Faults:        faults,
		RecrashDepth:  nestedFlags.Depth,
		RetryBudget:   nestedFlags.Budget,
		TrialDeadline: nestedFlags.Deadline,
	}
	if faults.Enabled() {
		fmt.Printf("media faults: RBER %g, torn writes %v, ECC correct %d / detect %d (scrub-and-fallback restart in Step 4)\n\n",
			faults.RBER, faults.TornWrites, faults.ECC.CorrectBits, faults.ECC.DetectBits)
	}
	if nestedFlags.Depth > 0 {
		fmt.Printf("nested failures: Step 4 validates under up to %d crash(es) during recovery per trial\n\n", nestedFlags.Depth)
	}

	var sysParams sysmodel.Params
	if *mtbf > 0 {
		sysParams = sysmodel.Params{MTBF: *mtbf * 3600, TChk: *tchk, Ts: *ts}
		tau, err := sysmodel.Tau(sysParams)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Tau = tau
		fmt.Printf("system model: MTBF %.1fh, T_chk %.0fs -> recomputability threshold tau = %.3f\n\n",
			*mtbf, *tchk, tau)
	}

	// An interrupted workflow (^C, SIGTERM) cancels the running campaign
	// cleanly and still prints the evidence gathered so far.
	ctx, stop := cli.SignalContext()
	defer stop()
	// Profiles bracket the workflow's campaigns — the hot path worth
	// measuring — so they are finalised before any of the exit paths below.
	stopProfiles, err := profFlags.Start()
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.RunContext(ctx, factory, cfg)
	if perr := stopProfiles(); perr != nil {
		log.Print(perr)
	}
	if res == nil {
		log.Fatal(err)
	}
	interrupted := err != nil
	if interrupted {
		stop() // a second signal kills the process the default way
		log.Printf("workflow interrupted (%v): printing the partial evidence", err)
	}

	fmt.Printf("== EasyCrash workflow for %s ==\n", res.Kernel)
	fmt.Printf("golden run: %d iterations, %d accesses, footprint %d bytes\n",
		res.Golden.Iters, res.Golden.MainAccesses, res.Golden.Footprint)

	if res.Baseline == nil || (interrupted && len(res.Objects) == 0) {
		// Cancelled inside (or right after) the Step-1 campaign: nothing
		// downstream of the partial baseline is meaningful.
		if res.Baseline != nil {
			fmt.Printf("\nStep 1 — baseline campaign interrupted at %d/%d tests\n",
				len(res.Baseline.Tests), res.Baseline.Requested)
		}
		os.Exit(1)
	}

	fmt.Printf("\nStep 1 — baseline campaign (%d tests): recomputability %.3f  [S1 %d  S2 %d  S3 %d  S4 %d]\n",
		len(res.Baseline.Tests), res.BaselineY,
		res.Baseline.Counts[0], res.Baseline.Counts[1], res.Baseline.Counts[2], res.Baseline.Counts[3])
	if viol, listed := res.Baseline.ConsistencyViolations(); viol > 0 {
		fmt.Printf("  baseline oracle: %d trial(s) with crash-consistency violations (%d itemised)\n", viol, listed)
	}

	fmt.Println("\nStep 2 — data-object selection (Spearman rank correlation):")
	for _, o := range res.Objects {
		mark := " "
		if o.Selected {
			mark = "*"
		}
		reason := o.Reason
		if o.Selected {
			reason = "critical"
		}
		fmt.Printf("  %s %-10s Rs=%+.3f  p=%.4g  %s\n", mark, o.Name, o.Rs, o.P, reason)
	}
	fmt.Printf("  critical data objects: %v\n", res.Critical)

	if interrupted && len(res.Regions) == 0 {
		// Cancelled inside the Step-3 campaign.
		os.Exit(1)
	}

	fmt.Println("\nStep 3 — code-region selection (knapsack under t_s):")
	for _, r := range res.Regions {
		mark := " "
		if r.Chosen {
			mark = "*"
		}
		fmt.Printf("  %s R%-2d a_k=%.3f  c_k=%.3f  c_k^max=%.3f  l_k=%.4f\n",
			mark, r.Region, r.A, r.C, r.CMax, r.Loss)
	}
	fmt.Printf("  persistence frequency x = %d, predicted Y' = %.3f\n", res.Frequency, res.PredictedY)
	if cfg.Tau > 0 {
		verdict := "meets"
		if !res.MeetsTau {
			verdict = "DOES NOT meet"
		}
		fmt.Printf("  predicted Y' %s tau = %.3f\n", verdict, cfg.Tau)
	}

	switch {
	case res.Final != nil:
		fmt.Printf("\nStep 4 — production policy validated: recomputability %.3f (baseline %.3f)\n",
			res.Final.Recomputability(), res.BaselineY)
		if maxd := res.Final.MaxDepth(); maxd > 0 {
			fmt.Printf("  nested validation: %d recovery attempts consumed, depth counts %v\n",
				res.Final.RetriesConsumed(), res.Final.DepthCounts())
			for k, r := range res.Final.RecrashRecoverability() {
				fmt.Printf("  R(%d) = %.3f\n", k+1, r)
			}
		}
		if viol, listed := res.FinalViolations(); viol > 0 {
			fmt.Printf("  ORACLE: %d trial(s) with crash-consistency violations (%d itemised) — the policy does not make this workload crash-consistent\n",
				viol, listed)
		}
	case interrupted:
		fmt.Println("\nStep 4 — validation interrupted")
	default:
		fmt.Println("\nStep 4 — no production policy (no region selected)")
	}
	if interrupted {
		os.Exit(1)
	}

	if *mtbf > 0 && res.Final != nil {
		sysParams.R = res.Final.Recomputability()
		sysParams.DataBytes = float64(res.Golden.CandidateBytes)
		base, ec, gain, err := sysmodel.Improvement(sysParams)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nsystem efficiency: %.4f without EasyCrash, %.4f with (%+.1f points)\n",
			base, ec, 100*gain)
	}
}
