// Command nvct runs crash-test campaigns on a benchmark kernel, printing the
// paper's Figure-3 style response classification and per-object
// data-inconsistency statistics.
//
// Usage:
//
//	nvct -kernel mg -tests 200 -seed 1 [-persist u,r] [-regions 2,3]
//	     [-every-iteration] [-frequency 2] [-verified] [-profile bench]
//	     [-cache paper]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"easycrash/internal/apps"
	"easycrash/internal/cli"
	"easycrash/internal/nvct"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nvct: ")

	var (
		kernel   = flag.String("kernel", "mg", "kernel to test (see -list)")
		list     = flag.Bool("list", false, "list kernels and exit")
		tests    = flag.Int("tests", 200, "crash tests in the campaign")
		seed     = flag.Int64("seed", 1, "campaign seed")
		persist  = flag.String("persist", "", "comma-separated data objects to persist (empty: none)")
		regions  = flag.String("regions", "", "comma-separated region ids to flush at (empty with -persist: every iteration end)")
		everyIt  = flag.Bool("every-iteration", false, "also flush at iteration ends")
		freq     = flag.Int64("frequency", 1, "persist every x iterations")
		verified = flag.Bool("verified", false, "run the copy-based verified campaign variant")
		profile  = flag.String("profile", "test", "problem size: test | bench")
		cache    = flag.String("cache", "test", "cache geometry: test | paper")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(apps.Names(), "\n"))
		return
	}

	prof, err := cli.ParseProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	factory, err := apps.New(*kernel, prof)
	if err != nil {
		log.Fatal(err)
	}
	geom, err := cli.ParseCache(*cache)
	if err != nil {
		log.Fatal(err)
	}
	cfg := nvct.Config{Cache: geom}
	tester, err := nvct.NewTester(factory, cfg)
	if err != nil {
		log.Fatal(err)
	}
	g := tester.Golden()
	fmt.Printf("kernel %s: %d iterations, %d main-loop accesses, footprint %s (candidates %s), %d regions\n",
		*kernel, g.Iters, g.MainAccesses, cli.Size(g.Footprint), cli.Size(g.CandidateBytes), g.Regions)

	policy, err := cli.BuildPolicy(*persist, *regions, *everyIt, *freq)
	if err != nil {
		log.Fatal(err)
	}
	rep := tester.RunCampaign(policy, nvct.CampaignOpts{Tests: *tests, Seed: *seed, Verified: *verified})

	fmt.Printf("\ncampaign: %d tests (seed %d, policy %s)\n", *tests, *seed, cli.DescribePolicy(policy, *verified))
	n := float64(len(rep.Tests))
	fmt.Printf("  S1 success, no extra iters : %4d (%.1f%%)\n", rep.Counts[nvct.S1], 100*float64(rep.Counts[nvct.S1])/n)
	fmt.Printf("  S2 success, extra iters    : %4d (%.1f%%)\n", rep.Counts[nvct.S2], 100*float64(rep.Counts[nvct.S2])/n)
	fmt.Printf("  S3 interruption            : %4d (%.1f%%)\n", rep.Counts[nvct.S3], 100*float64(rep.Counts[nvct.S3])/n)
	fmt.Printf("  S4 verification fails      : %4d (%.1f%%)\n", rep.Counts[nvct.S4], 100*float64(rep.Counts[nvct.S4])/n)
	fmt.Printf("  recomputability %.3f, success rate %.3f, avg extra iterations %.1f\n",
		rep.Recomputability(), rep.SuccessRate(), rep.AvgExtraIters())

	fmt.Println("\nper-region recomputability (c_k):")
	rec, cnt := rep.RegionRecomputability()
	var keys []int
	for k := range cnt {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("  R%-2d  c=%.3f  (%d tests)\n", k, rec[k], cnt[k])
	}

	fmt.Println("\nper-object mean data-inconsistency rate at the crash:")
	vectors := rep.InconsistencyVectors()
	var names []string
	for name := range vectors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rates := vectors[name][0]
		var sum float64
		for _, r := range rates {
			sum += r
		}
		fmt.Printf("  %-10s %.4f\n", name, sum/float64(len(rates)))
	}
}
