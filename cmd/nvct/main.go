// Command nvct runs crash-test campaigns on a benchmark kernel, printing the
// paper's Figure-3 style response classification and per-object
// data-inconsistency statistics. The media-fault flags extend the paper's
// intact-NVM assumption with torn writes, raw bit errors and per-block ECC.
//
// Usage:
//
//	nvct -kernel mg -tests 200 -seed 1 [-persist u,r] [-regions 2,3]
//	     [-every-iteration] [-frequency 2] [-verified] [-profile bench]
//	     [-cache paper] [-during-persistence] [-parallel 4]
//	     [-rber 1e-5] [-torn] [-ecc 1] [-ecc-detect 2] [-scrub]
//	     [-timeout 30s] [-recrash-depth 2] [-retry-budget 3]
//	     [-trial-deadline 2m] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	     [-repro 17] [-json report.json] [-fail-on-violations]
//	     [-expect-violations] [-scalar]
//
// -scalar forces the scalar per-access reference engine (every kernel
// access walks the full hierarchy lookup); campaign results are identical
// to the default batched engine, so the flag exists for profiling and
// A/B timing, not for changing outcomes.
//
// With -recrash-depth K > 0 the campaign runs the nested-failure model:
// up to K additional crashes strike each trial's recovery runs, and the
// report adds the recoverability-under-re-crash curve R(k). SIGINT/SIGTERM
// cancel the campaign gracefully; the partial report is still printed.
//
// The consistency-oracle workloads (pmemkv, pmemkv-bug) classify silent
// crash-consistency violations as a VIOL outcome; -fail-on-violations /
// -expect-violations turn that count into an exit status for CI, -json
// exports the full per-trial evidence, and -repro N re-runs one campaign
// trial by seed and prints its chain postmortem and oracle verdict.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"easycrash/internal/apps"
	"easycrash/internal/cli"
	"easycrash/internal/nvct"

	// Register the persistent KV workloads ("pmemkv", "pmemkv-bug") with the
	// kernel registry.
	_ "easycrash/internal/pmemkv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nvct: ")

	var (
		kernel   = flag.String("kernel", "mg", "kernel to test (see -list)")
		list     = flag.Bool("list", false, "list kernels and exit")
		tests    = flag.Int("tests", 200, "crash tests in the campaign (> 0)")
		seed     = flag.Int64("seed", 1, "campaign seed")
		persist  = flag.String("persist", "", "comma-separated data objects to persist (empty: none)")
		regions  = flag.String("regions", "", "comma-separated region ids to flush at (empty with -persist: every iteration end)")
		everyIt  = flag.Bool("every-iteration", false, "also flush at iteration ends")
		freq     = flag.Int64("frequency", 1, "persist every x iterations (>= 1)")
		verified = flag.Bool("verified", false, "run the copy-based verified campaign variant")
		duringP  = flag.Bool("during-persistence", false, "make persistence flushes crash-eligible")
		parallel = flag.Int("parallel", 0, "concurrent crash tests (0: GOMAXPROCS, 1: serial)")
		profile  = flag.String("profile", "test", "problem size: test | bench")
		cache    = flag.String("cache", "test", "cache geometry: test | paper")
		scalar   = flag.Bool("scalar", false, "force the scalar per-access reference engine (disable batched runs/streams)")
	)
	faultFlags := cli.RegisterFaultFlags(flag.CommandLine, true)
	nestedFlags := cli.RegisterNestedFlags(flag.CommandLine)
	profFlags := cli.RegisterProfileFlags(flag.CommandLine)
	oracleFlags := cli.RegisterOracleFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(apps.Names(), "\n"))
		return
	}
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q (all options are flags)", flag.Args())
	}
	if *tests <= 0 {
		log.Fatalf("-tests must be positive, got %d", *tests)
	}
	if *freq < 1 {
		log.Fatalf("-frequency must be >= 1, got %d", *freq)
	}
	if *parallel < 0 {
		log.Fatalf("-parallel must be >= 0, got %d", *parallel)
	}
	faults, err := faultFlags.Config()
	if err != nil {
		log.Fatal(err)
	}
	if err := nestedFlags.Validate(); err != nil {
		log.Fatal(err)
	}
	if err := oracleFlags.Validate(); err != nil {
		log.Fatal(err)
	}

	prof, err := cli.ParseProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	factory, err := apps.New(*kernel, prof)
	if err != nil {
		log.Fatal(err)
	}
	geom, err := cli.ParseCache(*cache)
	if err != nil {
		log.Fatal(err)
	}
	cfg := nvct.Config{Cache: geom, ScalarAccess: *scalar}
	tester, err := nvct.NewTester(factory, cfg)
	if err != nil {
		log.Fatal(err)
	}
	g := tester.Golden()
	fmt.Printf("kernel %s: %d iterations, %d main-loop accesses, footprint %s (candidates %s), %d regions\n",
		*kernel, g.Iters, g.MainAccesses, cli.Size(g.Footprint), cli.Size(g.CandidateBytes), g.Regions)

	policy, err := cli.BuildPolicy(*persist, *regions, *everyIt, *freq)
	if err != nil {
		log.Fatal(err)
	}
	opts := nvct.CampaignOpts{
		Tests:                  *tests,
		Seed:                   *seed,
		Verified:               *verified,
		Parallel:               *parallel,
		CrashDuringPersistence: *duringP,
		Faults:                 faults,
		ScrubOnRestart:         faultFlags.Scrub,
		TestTimeout:            faultFlags.Timeout,
		RecrashDepth:           nestedFlags.Depth,
		RetryBudget:            nestedFlags.Budget,
		TrialDeadline:          nestedFlags.Deadline,
	}
	// An interrupted campaign (^C, SIGTERM) cancels cleanly: in-flight tests
	// abort, and the partial report of completed tests is still printed.
	ctx, stop := cli.SignalContext()
	defer stop()
	if oracleFlags.Repro >= 0 {
		// Repro mode: re-derive the campaign's trial plan from the seed and
		// re-run just the requested trial, live, printing its postmortem.
		res, err := tester.ReproTrial(ctx, policy, opts, oracleFlags.Repro)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		cli.PrintTrial(os.Stdout, oracleFlags.Repro, res)
		if len(res.Violations) > 0 && oracleFlags.FailOnViolations {
			os.Exit(1)
		}
		if len(res.Violations) == 0 && oracleFlags.ExpectViolations {
			os.Exit(1)
		}
		return
	}
	// Profiles bracket the campaign itself — the hot path worth measuring.
	stopProfiles, err := profFlags.Start()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := tester.RunCampaignContext(ctx, policy, opts)
	if perr := stopProfiles(); perr != nil {
		log.Print(perr)
	}
	if rep == nil {
		log.Fatal(err)
	}
	// Flush the JSON evidence before anything that can exit: an interrupted
	// campaign, zero completed tests, or a violation gate below must never
	// discard the report of the trials that did complete.
	if werr := oracleFlags.WriteReport(rep); werr != nil {
		log.Fatal(werr)
	}
	if err != nil {
		stop() // a second signal kills the process the default way
		log.Printf("campaign interrupted (%v): partial report of %d/%d tests", err, len(rep.Tests), rep.Requested)
	}
	if len(rep.Tests) == 0 {
		log.Fatal("no tests completed")
	}

	fmt.Printf("\ncampaign: %d tests (seed %d, policy %s)\n", len(rep.Tests), *seed, cli.DescribePolicy(policy, *verified))
	if faults.Enabled() {
		fmt.Printf("  media faults: RBER %g, torn writes %v, ECC correct %d / detect %d, scrub %v\n",
			faults.RBER, faults.TornWrites, faults.ECC.CorrectBits, faults.ECC.DetectBits, faultFlags.Scrub)
	}
	n := float64(len(rep.Tests))
	fmt.Printf("  S1 success, no extra iters : %4d (%.1f%%)\n", rep.Counts[nvct.S1], 100*float64(rep.Counts[nvct.S1])/n)
	fmt.Printf("  S2 success, extra iters    : %4d (%.1f%%)\n", rep.Counts[nvct.S2], 100*float64(rep.Counts[nvct.S2])/n)
	fmt.Printf("  S3 interruption            : %4d (%.1f%%)\n", rep.Counts[nvct.S3], 100*float64(rep.Counts[nvct.S3])/n)
	fmt.Printf("  S4 verification fails      : %4d (%.1f%%)\n", rep.Counts[nvct.S4], 100*float64(rep.Counts[nvct.S4])/n)
	if rep.Counts[nvct.SDue] > 0 {
		fmt.Printf("  DUE uncorrectable media err: %4d (%.1f%%)\n", rep.Counts[nvct.SDue], 100*float64(rep.Counts[nvct.SDue])/n)
	}
	if rep.Counts[nvct.SErr] > 0 {
		fmt.Printf("  ERR engine errors          : %4d (%.1f%%)\n", rep.Counts[nvct.SErr], 100*float64(rep.Counts[nvct.SErr])/n)
	}
	if rep.Counts[nvct.SViol] > 0 {
		trials, listed := rep.ConsistencyViolations()
		fmt.Printf("  VIOL consistency violations: %4d (%.1f%%), %d violation(s) itemised\n",
			trials, 100*float64(trials)/n, listed)
	}
	fmt.Printf("  recomputability %.3f, success rate %.3f, avg extra iterations %.1f\n",
		rep.Recomputability(), rep.SuccessRate(), rep.AvgExtraIters())
	if faults.Enabled() {
		due, caught, missed := rep.MediaErrorCounts()
		fmt.Printf("  media outcomes: %d detected-uncorrectable, %d silent corruptions caught by verification, %d missed\n",
			due, caught, missed)
	}
	if maxd := rep.MaxDepth(); maxd > 0 {
		fmt.Printf("\nnested failures (depth <= %d): %d recovery attempts consumed, depth counts %v\n",
			nestedFlags.Depth+1, rep.RetriesConsumed(), rep.DepthCounts())
		fmt.Println("recoverability under re-crash:")
		for k, r := range rep.RecrashRecoverability() {
			fmt.Printf("  R(%d) = %.3f\n", k+1, r)
		}
		if mean := rep.MeanFinalInconsistency(); len(mean) > 0 {
			fmt.Println("per-object mean data-inconsistency rate at the final crash of each chain:")
			var finals []string
			for name := range mean {
				finals = append(finals, name)
			}
			sort.Strings(finals)
			for _, name := range finals {
				fmt.Printf("  %-10s %.4f\n", name, mean[name])
			}
		}
	}

	fmt.Println("\nper-region recomputability (c_k):")
	rec, cnt := rep.RegionRecomputability()
	var keys []int
	for k := range cnt {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("  R%-2d  c=%.3f  (%d tests)\n", k, rec[k], cnt[k])
	}

	fmt.Println("\nper-object mean data-inconsistency rate at the crash:")
	vectors := rep.InconsistencyVectors()
	var names []string
	for name := range vectors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rates := vectors[name][0]
		var sum float64
		for _, r := range rates {
			sum += r
		}
		fmt.Printf("  %-10s %.4f\n", name, sum/float64(len(rates)))
	}
	if err != nil {
		os.Exit(1) // the report written above is partial
	}
	if gerr := oracleFlags.CheckViolations(rep); gerr != nil {
		log.Fatal(gerr)
	}
}
