// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§4, §6, §7). Each BenchmarkTableN / BenchmarkFigureN computes
// its experiment once (cached across the benchmark's b.N scaling), prints
// the same rows/series the paper reports, and reports headline numbers as
// benchmark metrics.
//
// Campaign sizes default to 100 crash tests per campaign and can be scaled
// with EASYCRASH_TESTS (the paper used 1000-2000; shapes stabilise far
// earlier at the simulator's problem sizes).
//
// Micro-benchmarks (BenchmarkCache*, BenchmarkGolden*, BenchmarkCampaign)
// measure the simulator itself.
package easycrash_test

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/ckpt"
	"easycrash/internal/core"
	"easycrash/internal/faultmodel"
	"easycrash/internal/mem"
	"easycrash/internal/nvct"
	"easycrash/internal/nvmperf"
	"easycrash/internal/predict"
	"easycrash/internal/sim"
	"easycrash/internal/sysmodel"
)

func campaignTests() int {
	if s := os.Getenv("EASYCRASH_TESTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 100
}

// scaledTs returns the runtime-overhead budget the evaluation harness hands
// the workflow. The paper's t_s = 3% assumed Class-C problems where one
// persistence operation costs ~0.03 s against minutes of compute; at the
// simulator's problem sizes the flush-to-compute cost ratio is roughly four
// times higher, so the equivalent budget is ~12% (override: EASYCRASH_TS).
func scaledTs() float64 {
	if s := os.Getenv("EASYCRASH_TS"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.12
}

// lab caches experiment artefacts across benchmarks within one process.
type labState struct {
	mu      sync.Mutex
	testers map[string]*nvct.Tester
	results map[string]*core.Result
	best    map[string]float64
}

var lab = &labState{
	testers: map[string]*nvct.Tester{},
	results: map[string]*core.Result{},
	best:    map[string]float64{},
}

func (l *labState) tester(b *testing.B, kernel string) *nvct.Tester {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t, ok := l.testers[kernel]; ok {
		return t
	}
	f, err := apps.New(kernel, apps.ProfileTest)
	if err != nil {
		b.Fatal(err)
	}
	t, err := nvct.NewTester(f, nvct.Config{})
	if err != nil {
		b.Fatal(err)
	}
	l.testers[kernel] = t
	return t
}

// workflow runs (once) the EasyCrash workflow for a kernel.
func (l *labState) workflow(b *testing.B, kernel string) *core.Result {
	t := l.tester(b, kernel)
	l.mu.Lock()
	defer l.mu.Unlock()
	if r, ok := l.results[kernel]; ok {
		return r
	}
	r, err := core.RunWithTester(t, core.Config{Tests: campaignTests(), Seed: 1, Ts: scaledTs()})
	if err != nil {
		b.Fatal(err)
	}
	l.results[kernel] = r
	return r
}

// bestRecomputability measures the paper's "best" reference: critical
// objects persisted at every region of every iteration, or — for kernels
// whose mid-region state is non-idempotent and suffers from mid-step
// flushing — at every iteration end, whichever is higher.
func (l *labState) bestRecomputability(b *testing.B, kernel string) float64 {
	res := l.workflow(b, kernel)
	t := l.tester(b, kernel)
	l.mu.Lock()
	defer l.mu.Unlock()
	if v, ok := l.best[kernel]; ok {
		return v
	}
	every := t.RunCampaign(nvct.EveryRegionPolicy(res.Critical, res.Golden.Regions),
		nvct.CampaignOpts{Tests: campaignTests(), Seed: 5})
	iter := t.RunCampaign(nvct.IterationPolicy(res.Critical),
		nvct.CampaignOpts{Tests: campaignTests(), Seed: 5})
	v := every.Recomputability()
	if iter.Recomputability() > v {
		v = iter.Recomputability()
	}
	l.best[kernel] = v
	return v
}

// printOnce guards each experiment's table against b.N re-invocations.
var printOnce sync.Map

func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

func spin(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
}

func sizeOf(bytes uint64) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(bytes)/(1<<20))
	case bytes >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(bytes)/(1<<10))
	}
	return fmt.Sprintf("%dB", bytes)
}

// BenchmarkTable1 regenerates Table 1: per-benchmark characteristics.
func BenchmarkTable1(b *testing.B) {
	rows := make([]string, 0, len(apps.Names()))
	var sumExtra float64
	for _, name := range apps.Names() {
		res := lab.workflow(b, name)
		g := res.Golden
		var critBytes uint64
		for _, o := range g.Candidates {
			for _, c := range res.Critical {
				if o.Name == c {
					critBytes += o.Size
				}
			}
		}
		// Restart overhead is the paper's baseline-campaign measurement:
		// how many extra iterations a plain restart costs, or N/A when the
		// restart cannot complete or verify at all.
		extra := "0"
		switch {
		case res.Baseline.Counts[nvct.S3] > len(res.Baseline.Tests)/2:
			extra = "N/A (segfault)"
		case res.Baseline.Counts[nvct.S4] > (9*len(res.Baseline.Tests))/10:
			extra = "N/A (verif. fails)"
		case res.Baseline.AvgExtraIters() > 0:
			extra = fmt.Sprintf("%.1f", res.Baseline.AvgExtraIters())
		}
		rw := float64(g.CacheStats.Loads) / float64(g.CacheStats.Stores)
		rows = append(rows, fmt.Sprintf("%-9s %7d %6.1f:1 %10s %10s %10s %-18s %5d",
			name, g.Regions, rw, sizeOf(g.Footprint), sizeOf(g.CandidateBytes),
			sizeOf(critBytes), extra, g.Iters))
		if res.Final != nil {
			sumExtra += res.Final.AvgExtraIters()
		}
	}
	once("table1", func() {
		fmt.Println("\n=== Table 1: benchmark information for crash experiments ===")
		fmt.Printf("%-9s %7s %8s %10s %10s %10s %-18s %5s\n",
			"bench", "regions", "R/W", "footprint", "cand.DO", "crit.DO", "extra-iters", "iters")
		for _, r := range rows {
			fmt.Println(r)
		}
	})
	spin(b)
}

// BenchmarkFigure3 regenerates Figure 3: application responses after crash
// and restart without persistence.
func BenchmarkFigure3(b *testing.B) {
	var avg [4]float64
	rows := make([]string, 0, len(apps.Names()))
	for _, name := range apps.Names() {
		rep := lab.workflow(b, name).Baseline
		n := float64(len(rep.Tests))
		rows = append(rows, fmt.Sprintf("%-9s %6.1f%% %6.1f%% %6.1f%% %6.1f%%",
			name, 100*float64(rep.Counts[0])/n, 100*float64(rep.Counts[1])/n,
			100*float64(rep.Counts[2])/n, 100*float64(rep.Counts[3])/n))
		for i := 0; i < 4; i++ {
			avg[i] += float64(rep.Counts[i]) / n
		}
	}
	once("figure3", func() {
		fmt.Println("\n=== Figure 3: responses after crash and restart (no persistence) ===")
		fmt.Printf("%-9s %7s %7s %7s %7s\n", "bench", "S1", "S2", "S3", "S4")
		for _, r := range rows {
			fmt.Println(r)
		}
		n := float64(len(apps.Names()))
		fmt.Printf("%-9s %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n", "average",
			100*avg[0]/n, 100*avg[1]/n, 100*avg[2]/n, 100*avg[3]/n)
	})
	b.ReportMetric(avg[0]/float64(len(apps.Names())), "S1-rate")
	spin(b)
}

// BenchmarkFigure4a regenerates Figure 4(a): MG recomputability persisting
// individual data objects.
func BenchmarkFigure4a(b *testing.B) {
	t := lab.tester(b, "mg")
	opts := nvct.CampaignOpts{Tests: campaignTests(), Seed: 2}
	var lines []string
	for _, tc := range []struct {
		label  string
		policy *nvct.Policy
	}{
		{"none", nil},
		{"index (iterator)", nvct.IterationPolicy([]string{"it"})},
		{"u", nvct.IterationPolicy([]string{"u"})},
		{"r", nvct.IterationPolicy([]string{"r"})},
	} {
		rep := t.RunCampaign(tc.policy, opts)
		lines = append(lines, fmt.Sprintf("  persist %-18s R = %.2f", tc.label, rep.Recomputability()))
	}
	once("figure4a", func() {
		fmt.Println("\n=== Figure 4a: MG recomputability persisting different objects ===")
		for _, l := range lines {
			fmt.Println(l)
		}
	})
	spin(b)
}

// BenchmarkFigure4b regenerates Figure 4(b): MG recomputability persisting u
// at each single code region.
func BenchmarkFigure4b(b *testing.B) {
	t := lab.tester(b, "mg")
	opts := nvct.CampaignOpts{Tests: campaignTests(), Seed: 2}
	var lines []string
	for r := 0; r < 4; r++ {
		rep := t.RunCampaign(&nvct.Policy{Objects: []string{"u"}, AtRegionEnds: []int{r}, Frequency: 1}, opts)
		lines = append(lines, fmt.Sprintf("  persist u at R%d only: R = %.2f", r, rep.Recomputability()))
	}
	once("figure4b", func() {
		fmt.Println("\n=== Figure 4b: MG recomputability persisting u at single regions ===")
		for _, l := range lines {
			fmt.Println(l)
		}
	})
	spin(b)
}

// BenchmarkFigure5 regenerates Figure 5: recomputability persisting no
// objects, the selected (critical) objects, and all candidate objects.
func BenchmarkFigure5(b *testing.B) {
	opts := nvct.CampaignOpts{Tests: campaignTests(), Seed: 3}
	var rows []string
	var maxGap float64
	for _, name := range apps.Names() {
		res := lab.workflow(b, name)
		t := lab.tester(b, name)
		sel := t.RunCampaign(nvct.IterationPolicy(res.Critical), opts).Recomputability()
		all := t.RunCampaign(nvct.IterationPolicy(res.Candidates), opts).Recomputability()
		rows = append(rows, fmt.Sprintf("%-9s %8.2f %10.2f %8.2f", name, res.BaselineY, sel, all))
		if gap := all - sel; gap > maxGap {
			maxGap = gap
		}
	}
	once("figure5", func() {
		fmt.Println("\n=== Figure 5: persist none vs selected vs all candidate objects ===")
		fmt.Printf("%-9s %8s %10s %8s\n", "bench", "none", "selected", "all")
		for _, r := range rows {
			fmt.Println(r)
		}
		fmt.Printf("largest (all - selected) gap: %.2f  (paper: < 3%% in all cases)\n", maxGap)
	})
	b.ReportMetric(maxGap, "max-gap")
	spin(b)
}

// BenchmarkFigure6 regenerates Figure 6: recomputability without EasyCrash,
// with object selection only, with the full EasyCrash policy, the best
// reference, and the copy-based verified variant.
func BenchmarkFigure6(b *testing.B) {
	opts := nvct.CampaignOpts{Tests: campaignTests(), Seed: 4}
	var rows []string
	var sumBase, sumEC float64
	var transformed, failed float64
	for _, name := range apps.Names() {
		res := lab.workflow(b, name)
		t := lab.tester(b, name)
		objOnly := t.RunCampaign(nvct.IterationPolicy(res.Critical), opts).Recomputability()
		ec := res.AchievedY()
		best := lab.bestRecomputability(b, name)
		vfyPolicy := res.Policy
		if vfyPolicy == nil {
			vfyPolicy = nvct.IterationPolicy(res.Critical)
		}
		vopts := opts
		vopts.Verified = true
		vfy := t.RunCampaign(vfyPolicy, vopts).Recomputability()
		rows = append(rows, fmt.Sprintf("%-9s %8.2f %9.2f %8.2f %8.2f %8.2f",
			name, res.BaselineY, objOnly, ec, best, vfy))
		sumBase += res.BaselineY
		sumEC += ec
		failed += 1 - res.BaselineY
		if ec > res.BaselineY {
			transformed += ec - res.BaselineY
		}
	}
	n := float64(len(apps.Names()))
	once("figure6", func() {
		fmt.Println("\n=== Figure 6: recomputability with different methods ===")
		fmt.Printf("%-9s %8s %9s %8s %8s %8s\n", "bench", "none", "+objects", "EC", "best", "VFY")
		for _, r := range rows {
			fmt.Println(r)
		}
		fmt.Printf("%-9s %8.2f %19.2f\n", "average", sumBase/n, sumEC/n)
		fmt.Printf("crashes that could not recompute transformed into success: %.0f%%\n",
			100*transformed/failed)
	})
	b.ReportMetric(sumEC/n, "avg-EC-recomputability")
	b.ReportMetric(transformed/failed, "transformed-fraction")
	spin(b)
}

// profileSet holds the profiled undisturbed runs each performance figure
// prices.
type profileSet struct {
	base, ec, all nvct.Golden
}

var profiles sync.Map // kernel -> profileSet

func (l *labState) profiles(b *testing.B, kernel string) profileSet {
	if v, ok := profiles.Load(kernel); ok {
		return v.(profileSet)
	}
	res := l.workflow(b, kernel)
	t := l.tester(b, kernel)
	base, err := t.ProfileRun(nil)
	if err != nil {
		b.Fatal(err)
	}
	policy := res.Policy
	if policy == nil {
		policy = nvct.IterationPolicy(res.Critical)
	}
	ec, err := t.ProfileRun(policy)
	if err != nil {
		b.Fatal(err)
	}
	all, err := t.ProfileRun(nvct.IterationPolicy(res.Candidates))
	if err != nil {
		b.Fatal(err)
	}
	ps := profileSet{base: base, ec: ec, all: all}
	profiles.Store(kernel, ps)
	return ps
}

// BenchmarkTable4 regenerates Table 4: persistence-operation counts and
// normalized execution times on the DRAM profile.
func BenchmarkTable4(b *testing.B) {
	p := nvmperf.DRAM()
	var rows []string
	var sumEC, sumAll float64
	for _, name := range apps.Names() {
		ps := lab.profiles(b, name)
		ecB := nvmperf.Breakdown(p, ps.ec.CacheStats, ps.ec.PersistStats, ps.base.CacheStats)
		allB := nvmperf.Breakdown(p, ps.all.CacheStats, ps.all.PersistStats, ps.base.CacheStats)
		rows = append(rows, fmt.Sprintf("%-9s %14.1f %8d %10.3f %12.3f",
			name, ecB.AvgPersistOnceNS/1e3, ecB.Operations, ecB.Normalized, allB.Normalized))
		sumEC += ecB.Normalized
		sumAll += allB.Normalized
	}
	n := float64(len(apps.Names()))
	once("table4", func() {
		fmt.Println("\n=== Table 4: persistence cost and normalized execution time (DRAM) ===")
		fmt.Printf("%-9s %14s %8s %10s %12s\n", "bench", "persist-1x(us)", "ops", "EC", "persist-all")
		for _, r := range rows {
			fmt.Println(r)
		}
		fmt.Printf("%-9s %23s %10.3f %12.3f\n", "average", "", sumEC/n, sumAll/n)
	})
	b.ReportMetric(sumEC/n, "avg-EC-normalized-time")
	spin(b)
}

// BenchmarkFigure7 regenerates Figure 7: normalized execution time with and
// without selective persistence across NVM latency/bandwidth profiles.
func BenchmarkFigure7(b *testing.B) {
	nvms := []nvmperf.Profile{nvmperf.Lat4x(), nvmperf.Lat8x(), nvmperf.BW6(), nvmperf.BW8()}
	var lines []string
	for _, p := range nvms {
		var sumEC, sumAll float64
		for _, name := range apps.Names() {
			ps := lab.profiles(b, name)
			sumEC += p.Normalized(ps.ec.CacheStats, ps.base.CacheStats)
			sumAll += p.Normalized(ps.all.CacheStats, ps.base.CacheStats)
		}
		n := float64(len(apps.Names()))
		lines = append(lines, fmt.Sprintf("  %-18s EC %.3f   persist-all %.3f", p.Name, sumEC/n, sumAll/n))
	}
	once("figure7", func() {
		fmt.Println("\n=== Figure 7: normalized execution time across NVM profiles (average) ===")
		for _, l := range lines {
			fmt.Println(l)
		}
	})
	spin(b)
}

// BenchmarkFigure8 regenerates Figure 8: normalized execution time on the
// Optane DC PMM profile.
func BenchmarkFigure8(b *testing.B) {
	p := nvmperf.OptaneDC()
	var rows []string
	var sumEC, sumAll float64
	for _, name := range apps.Names() {
		ps := lab.profiles(b, name)
		ec := p.Normalized(ps.ec.CacheStats, ps.base.CacheStats)
		all := p.Normalized(ps.all.CacheStats, ps.base.CacheStats)
		rows = append(rows, fmt.Sprintf("%-9s %8.3f %12.3f", name, ec, all))
		sumEC += ec
		sumAll += all
	}
	n := float64(len(apps.Names()))
	once("figure8", func() {
		fmt.Println("\n=== Figure 8: normalized execution time on Optane DC PMM ===")
		fmt.Printf("%-9s %8s %12s\n", "bench", "EC", "persist-all")
		for _, r := range rows {
			fmt.Println(r)
		}
		fmt.Printf("%-9s %8.3f %12.3f\n", "average", sumEC/n, sumAll/n)
	})
	b.ReportMetric(sumEC/n, "avg-EC-normalized-optane")
	spin(b)
}

// benchTester builds (once per kernel) a tester at the large-object bench
// profile — the footprint ≫ LLC regime the paper's write experiments need:
// there, most of a critical object's blocks are clean or absent at flush
// time, so flushing adds little beyond the write-backs that would happen
// anyway, while a checkpoint copies the whole object.
var benchTesters sync.Map

func benchTester(b *testing.B, kernel string) *nvct.Tester {
	if v, ok := benchTesters.Load(kernel); ok {
		return v.(*nvct.Tester)
	}
	f, err := apps.New(kernel, apps.ProfileBench)
	if err != nil {
		b.Fatal(err)
	}
	t, err := nvct.NewTester(f, nvct.Config{})
	if err != nil {
		b.Fatal(err)
	}
	benchTesters.Store(kernel, t)
	return t
}

// BenchmarkFigure9 regenerates Figure 9: normalized NVM writes for
// EasyCrash vs single-checkpoint C/R, at the bench (large-object) profile.
func BenchmarkFigure9(b *testing.B) {
	var rows []string
	var sumEC, sumCrit, sumAll float64
	for _, name := range apps.Names() {
		res := lab.workflow(b, name)
		t := benchTester(b, name)
		policy := nvct.IterationPolicy(res.Critical)
		if res.Policy != nil {
			policy.Frequency = res.Policy.Frequency
		}
		rep, err := ckpt.CompareWrites(t, policy, res.Critical)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, fmt.Sprintf("%-9s %10.3f %14.3f %10.3f",
			name, rep.NormalizedEasyCrash(), rep.NormalizedCkptCritical(), rep.NormalizedCkptAll()))
		sumEC += rep.NormalizedEasyCrash()
		sumCrit += rep.NormalizedCkptCritical()
		sumAll += rep.NormalizedCkptAll()
	}
	n := float64(len(apps.Names()))
	once("figure9", func() {
		fmt.Println("\n=== Figure 9: normalized NVM writes (1.0 = no fault tolerance) ===")
		fmt.Printf("%-9s %10s %14s %10s\n", "bench", "easycrash", "ckpt-critical", "ckpt-all")
		for _, r := range rows {
			fmt.Println(r)
		}
		fmt.Printf("%-9s %10.3f %14.3f %10.3f\n", "average", sumEC/n, sumCrit/n, sumAll/n)
	})
	b.ReportMetric(sumEC/n-1, "avg-EC-extra-writes")
	b.ReportMetric(sumAll/n-1, "avg-CR-extra-writes")
	spin(b)
}

// BenchmarkFigure10 regenerates Figure 10: system efficiency with and
// without EasyCrash at MTBF 12h for the lowest- and highest-recomputability
// kernels and the average.
func BenchmarkFigure10(b *testing.B) {
	type point struct {
		label string
		r     float64
		bytes float64
	}
	lowName, hiName := "", ""
	lowR, hiR := 2.0, -1.0
	var sumR, sumBytes float64
	for _, name := range apps.Names() {
		if name == "ep" {
			continue // the paper excludes EP (recomputability ~0)
		}
		res := lab.workflow(b, name)
		r := res.AchievedY()
		if r < lowR {
			lowR, lowName = r, name
		}
		if r > hiR {
			hiR, hiName = r, name
		}
		sumR += r
		sumBytes += float64(res.Golden.CandidateBytes)
	}
	n := float64(len(apps.Names()) - 1)
	points := []point{
		{lowName + " (lowest R)", lowR, float64(lab.workflow(b, lowName).Golden.CandidateBytes)},
		{hiName + " (highest R)", hiR, float64(lab.workflow(b, hiName).Golden.CandidateBytes)},
		{"average", sumR / n, sumBytes / n},
	}
	var lines []string
	var avgGain3200 float64
	for _, pt := range points {
		for _, tchk := range sysmodel.CheckpointOverheads() {
			p := sysmodel.Params{MTBF: 12 * 3600, TChk: tchk, R: pt.r, Ts: 0.015, DataBytes: pt.bytes}
			base, ec, gain, err := sysmodel.Improvement(p)
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, fmt.Sprintf("  %-22s Tchk=%5.0fs  base %.4f  EC %.4f  gain %+.4f",
				pt.label, tchk, base, ec, gain))
			if pt.label == "average" && tchk == 3200 {
				avgGain3200 = gain
			}
		}
	}
	once("figure10", func() {
		fmt.Println("\n=== Figure 10: system efficiency without/with EasyCrash (MTBF 12h) ===")
		for _, l := range lines {
			fmt.Println(l)
		}
	})
	b.ReportMetric(avgGain3200, "avg-gain-tchk3200")
	spin(b)
}

// BenchmarkFigure11 regenerates Figure 11: CG's system efficiency as the
// system scales from 100k to 400k nodes.
func BenchmarkFigure11(b *testing.B) {
	res := lab.workflow(b, "cg")
	r := res.AchievedY()
	bytes := float64(res.Golden.CandidateBytes)
	var lines []string
	for _, tchk := range []float64{32, 3200} {
		prev := -1.0
		for _, sc := range sysmodel.Scales() {
			p := sysmodel.Params{MTBF: sc.MTBF, TChk: tchk, R: r, Ts: 0.015, DataBytes: bytes}
			base, ec, gain, err := sysmodel.Improvement(p)
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, fmt.Sprintf("  Tchk=%5.0fs  %7d nodes  base %.4f  EC %.4f  gain %+.4f",
				tchk, sc.Nodes, base, ec, gain))
			if gain < prev {
				b.Errorf("gain shrank with scale at %d nodes", sc.Nodes)
			}
			prev = gain
		}
	}
	once("figure11", func() {
		fmt.Printf("\n=== Figure 11: CG system efficiency vs scale (R = %.2f) ===\n", r)
		for _, l := range lines {
			fmt.Println(l)
		}
	})
	spin(b)
}

// BenchmarkTau regenerates the §7 τ derivation across operating points.
func BenchmarkTau(b *testing.B) {
	var lines []string
	for _, tchk := range sysmodel.CheckpointOverheads() {
		for _, sc := range sysmodel.Scales() {
			tau, err := sysmodel.Tau(sysmodel.Params{MTBF: sc.MTBF, TChk: tchk, Ts: 0.015, DataBytes: 500e6})
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, fmt.Sprintf("  Tchk=%5.0fs MTBF=%4.0fh  tau = %.3f",
				tchk, sc.MTBF/3600, tau))
		}
	}
	once("tau", func() {
		fmt.Println("\n=== tau: recomputability threshold across operating points ===")
		for _, l := range lines {
			fmt.Println(l)
		}
	})
	spin(b)
}

// BenchmarkWriteReduction reports the §7 headline: EasyCrash's write
// reduction relative to C/R without EasyCrash.
func BenchmarkWriteReduction(b *testing.B) {
	var reductions []float64
	for _, name := range apps.Names() {
		res := lab.workflow(b, name)
		t := benchTester(b, name)
		policy := nvct.IterationPolicy(res.Critical)
		if res.Policy != nil {
			policy.Frequency = res.Policy.Frequency
		}
		rep, err := ckpt.CompareWrites(t, policy, res.Critical)
		if err != nil {
			b.Fatal(err)
		}
		ecExtra := float64(rep.EasyCrashWrites - rep.BaselineWrites)
		crExtra := float64(rep.CkptAllWrites - rep.BaselineWrites)
		if crExtra > 0 {
			reductions = append(reductions, 1-ecExtra/crExtra)
		}
	}
	sort.Float64s(reductions)
	var sum float64
	for _, r := range reductions {
		sum += r
	}
	avg := sum / float64(len(reductions))
	once("writereduction", func() {
		fmt.Printf("\n=== §7: additional-write reduction vs C/R: min %.0f%%, max %.0f%%, avg %.0f%% ===\n",
			100*reductions[0], 100*reductions[len(reductions)-1], 100*avg)
	})
	b.ReportMetric(avg, "avg-write-reduction")
	spin(b)
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the simulator itself.

func BenchmarkCacheAccess(b *testing.B) {
	im := mem.NewImage(1 << 22)
	h := cachesim.New(cachesim.TestConfig(), im)
	buf := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := uint64(i*64) % (1 << 21)
		h.Store(0, a, buf)
		h.Load(0, a, buf)
	}
}

// BenchmarkCacheStream is the steady-state miss path campaigns live on: a
// block-strided store stream over a working set far larger than the LLC, so
// every access is a fill plus an eviction write-back. This path must stay
// allocation-free.
func BenchmarkCacheStream(b *testing.B) {
	im := mem.NewImage(1 << 22)
	h := cachesim.New(cachesim.TestConfig(), im)
	buf := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Store(0, uint64(i*64)%(1<<22), buf)
	}
}

// BenchmarkCacheStreamBatched is BenchmarkCacheStream's sequential sweep on
// the run API: the same 8-byte elements reach the same blocks in the same
// order, but StoreRun pays one hierarchy walk per 64 B block segment and
// bulk-accounts the other seven elements. ns/op is per element (the loop
// advances b.N by the chunk size), directly comparable to the scalar
// per-element benches.
func BenchmarkCacheStreamBatched(b *testing.B) {
	im := mem.NewImage(1 << 22)
	h := cachesim.New(cachesim.TestConfig(), im)
	buf := make([]byte, 4096)
	const elems = 4096 / 8
	var addr uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += elems {
		h.StoreRun(0, addr, buf)
		addr = (addr + 4096) % (1 << 22)
	}
}

// BenchmarkCacheCrashRefill is the per-crash-test pattern: dirty a working
// set, crash (DropAll), repeat. DropAll must recycle the block store, not
// reallocate it.
func BenchmarkCacheCrashRefill(b *testing.B) {
	im := mem.NewImage(1 << 22)
	h := cachesim.New(cachesim.TestConfig(), im)
	buf := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 2048; j++ {
			h.Store(0, uint64(j*64), buf)
		}
		h.DropAll()
	}
}

func BenchmarkCacheFlush(b *testing.B) {
	im := mem.NewImage(1 << 22)
	h := cachesim.New(cachesim.TestConfig(), im)
	buf := make([]byte, 8)
	for i := 0; i < 1024; i++ {
		h.Store(0, uint64(i*64), buf)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Flush(0, 64<<10, cachesim.CLWB)
	}
}

func BenchmarkMachineTypedAccess(b *testing.B) {
	m := sim.NewMachine(1<<22, cachesim.TestConfig())
	o := m.Space().AllocF64("x", 1<<15, true)
	v := m.F64(o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i & (1<<15 - 1)
		v.Set(idx, float64(i))
		_ = v.At(idx)
	}
}

// BenchmarkMachineReset measures the per-test machine recycling path the
// campaign engine uses instead of sim.NewMachine.
func BenchmarkMachineReset(b *testing.B) {
	m := sim.NewMachine(1<<22, cachesim.TestConfig())
	buf := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := m.Space().AllocF64("x", 1<<12, true)
		m.MainLoopBegin()
		m.Hierarchy().Store(0, o.Addr, buf)
		m.MainLoopEnd()
		m.Reset()
	}
}

func BenchmarkGoldenRun(b *testing.B) {
	for _, name := range []string{"mg", "cg", "lu", "kmeans"} {
		b.Run(name, func(b *testing.B) {
			f, err := apps.New(name, apps.ProfileTest)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				k := f()
				m := sim.NewMachine(64<<20, cachesim.TestConfig())
				k.Setup(m)
				k.Init(m)
				if _, err := k.Run(m, 0, 2*k.NominalIters()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCampaignTest(b *testing.B) {
	t := lab.tester(b, "lu")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.RunCampaign(nil, nvct.CampaignOpts{Tests: 1, Seed: int64(i)})
	}
}

// BenchmarkCampaignPrefixShared measures the speedup of the prefix-sharing
// engine on a 200-trial faults-off campaign: one shared reference execution
// forked at each crash point (prefix) versus re-simulating every pre-crash
// prefix from access 0 (live). The two kernels bracket the engine's regimes:
// lulesh's baseline restarts abort almost immediately (the paper's
// segfault-class response), so its campaigns are nearly pure pre-crash
// prefix and sharing wins an order of magnitude; lu's restarts recompute to
// completion, so the per-trial recovery both engines must run caps the win
// near 2x. See DESIGN.md.
func BenchmarkCampaignPrefixShared(b *testing.B) {
	for _, kernel := range []string{"lulesh", "lu"} {
		t := lab.tester(b, kernel)
		opts := nvct.CampaignOpts{Tests: 200, Seed: 1}
		b.Run(kernel+"/prefix", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t.RunCampaign(nil, opts)
			}
		})
		b.Run(kernel+"/live", func(b *testing.B) {
			lopts := opts
			lopts.NoPrefixShare = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t.RunCampaign(nil, lopts)
			}
		})
	}
}

// BenchmarkCampaignBatched measures what the batched access engine is for:
// the same 200-trial lu campaign on the default engine (kernels ride
// streams and runs through the batched fast paths) versus the ScalarAccess
// reference tester that forces every element down the per-access hierarchy
// walk. The two produce byte-identical campaign reports (see
// TestScalarAccessCampaignDigestsMatch); only the clock differs.
func BenchmarkCampaignBatched(b *testing.B) {
	t := lab.tester(b, "lu")
	f, err := apps.New("lu", apps.ProfileTest)
	if err != nil {
		b.Fatal(err)
	}
	scalar, err := nvct.NewTester(f, nvct.Config{ScalarAccess: true})
	if err != nil {
		b.Fatal(err)
	}
	opts := nvct.CampaignOpts{Tests: 200, Seed: 1}
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t.RunCampaign(nil, opts)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scalar.RunCampaign(nil, opts)
		}
	})
}

// BenchmarkCampaignTreeShared measures the snapshot-tree engine on the
// campaigns the original prefix fast path had to refuse: 200-trial campaigns
// with the full media-fault model on (tears + RBER + SECDED + scrub) under an
// iteration persistence policy, tree-shared versus fully live. Branches
// replay each trial's seed-drawn injections on a fork of the shared
// reference, and recovery runs are shared between trials restarting from
// byte-identical durable state, so the campaign cost approaches one reference
// execution plus the distinct recoveries. See DESIGN.md.
func BenchmarkCampaignTreeShared(b *testing.B) {
	faults := faultmodel.Config{RBER: 2e-6, TornWrites: true, ECC: faultmodel.SECDED()}
	for _, kernel := range []string{"lulesh", "lu"} {
		t := lab.tester(b, kernel)
		res := lab.workflow(b, kernel)
		policy := nvct.IterationPolicy(res.Critical)
		opts := nvct.CampaignOpts{Tests: 200, Seed: 1, Faults: faults, ScrubOnRestart: true}
		b.Run(kernel+"/tree", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t.RunCampaign(policy, opts)
			}
		})
		b.Run(kernel+"/live", func(b *testing.B) {
			lopts := opts
			lopts.NoPrefixShare = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t.RunCampaign(policy, lopts)
			}
		})
	}
}

// BenchmarkMachineFork measures one copy-on-write fork of a mid-run machine
// in the fast path's steady state: one dirtied page to copy, everything else
// shared with the previous fork.
func BenchmarkMachineFork(b *testing.B) {
	m := sim.NewMachine(64<<20, cachesim.TestConfig())
	o := m.Space().AllocF64("x", 1<<15, true)
	v := m.F64(o)
	m.MainLoopBegin()
	for i := 0; i < 1<<15; i++ {
		v.Set(i, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Set(i&(1<<15-1), float64(i))
		_ = m.Fork()
	}
}

// BenchmarkTsSensitivity reproduces the §6 sensitivity discussion: with a
// tighter overhead budget t_s, persistence becomes sparser and some kernels
// (the paper names FT) can no longer meet the recomputability threshold.
func BenchmarkTsSensitivity(b *testing.B) {
	var lines []string
	for _, kernel := range []string{"mg", "ft"} {
		t := lab.tester(b, kernel)
		for _, ts := range []float64{0.02, 0.03, 0.05} {
			res, err := core.RunWithTester(t, core.Config{
				Ts: ts, Tests: campaignTests(), Seed: 1, Tau: 0.5,
			})
			if err != nil {
				b.Fatal(err)
			}
			verdict := "meets tau"
			if !res.MeetsTau {
				verdict = "fails tau"
			}
			lines = append(lines, fmt.Sprintf("  %-8s ts=%.0f%%  freq=%d  predicted=%.2f  achieved=%.2f  %s",
				kernel, ts*100, res.Frequency, res.PredictedY, res.AchievedY(), verdict))
		}
	}
	once("ts-sensitivity", func() {
		fmt.Println("\n=== t_s sensitivity (tau = 0.5) ===")
		for _, l := range lines {
			fmt.Println(l)
		}
	})
	spin(b)
}

// BenchmarkCharacterization runs the §8 crash-test-free study: feature
// extraction for every kernel plus the fitted recomputability model.
func BenchmarkCharacterization(b *testing.B) {
	names := apps.Names()
	feats := make([]predict.Features, len(names))
	measured := make([]float64, len(names))
	for i, name := range names {
		f, err := apps.New(name, apps.ProfileTest)
		if err != nil {
			b.Fatal(err)
		}
		feat, err := predict.Characterize(f, cachesim.Config{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		feats[i] = feat
		measured[i] = lab.workflow(b, name).BaselineY
	}
	model, err := predict.Fit(feats, measured)
	if err != nil {
		b.Fatal(err)
	}
	once("characterization", func() {
		fmt.Println("\n=== §8 extension: recomputability prediction without crash tests ===")
		fmt.Printf("%-9s %10s %8s %10s %6s %10s %10s\n",
			"bench", "dirty@end", "rmw", "rewrite", "conv", "measured", "predicted")
		for i, name := range names {
			fmt.Printf("%-9s %10.3f %8.3f %10.3f %6.0f %10.2f %10.2f\n",
				name, feats[i].DirtyAtIterEnd, feats[i].RMWStoreFrac,
				feats[i].RewriteCoverage, feats[i].Convergent,
				measured[i], model.Predict(feats[i]))
		}
	})
	spin(b)
}
