// Package easycrash is the public API of the EasyCrash reproduction — a
// framework (after Ren, Wu and Li, "EasyCrash: Exploring Non-Volatility of
// Non-Volatile Memory for High Performance Computing Under Failures",
// IEEE CLUSTER 2020) that leverages NVM non-volatility to restart HPC
// applications after crashes without traditional checkpoint copies, by
// selectively flushing critical data objects at critical code regions.
//
// The package re-exports the building blocks:
//
//   - Kernels: the benchmark applications (NPB CG/MG/FT/IS/BT/LU/SP/EP,
//     botsspar, LULESH, kmeans) instrumented for crash testing.
//   - Tester: the NVCT crash tester — golden runs, crash campaigns,
//     inconsistency analysis, restart and outcome classification.
//   - Run: the EasyCrash workflow — Spearman-based data-object selection
//     and knapsack-based code-region selection under an overhead budget.
//   - The §7 system-efficiency model and the NVM performance model.
//
// A minimal session:
//
//	factory, _ := easycrash.NewKernel("mg", easycrash.ProfileTest)
//	result, _ := easycrash.Run(factory, easycrash.Config{Tests: 200})
//	fmt.Println(result.Critical, result.AchievedY())
//
// See the examples directory for complete programs.
package easycrash

import (
	"context"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/ckpt"
	"easycrash/internal/core"
	"easycrash/internal/endurance"
	"easycrash/internal/faultmodel"
	"easycrash/internal/nvct"
	"easycrash/internal/nvmperf"
	"easycrash/internal/predict"
	"easycrash/internal/sysmodel"
)

// Kernel is one benchmark application (see package apps).
type Kernel = apps.Kernel

// Factory creates fresh kernel instances.
type Factory = apps.Factory

// Profile selects a kernel problem size.
type Profile = apps.Profile

// Problem-size profiles.
const (
	ProfileTest  = apps.ProfileTest
	ProfileBench = apps.ProfileBench
)

// NewKernel returns a factory for the named kernel ("cg", "mg", "ft", "is",
// "bt", "lu", "sp", "ep", "botsspar", "lulesh", "kmeans").
func NewKernel(name string, p Profile) (Factory, error) { return apps.New(name, p) }

// KernelNames lists all kernels in the paper's Table-1 order.
func KernelNames() []string { return apps.Names() }

// Tester is the NVCT crash tester bound to one kernel's golden run.
type Tester = nvct.Tester

// TesterConfig configures the simulated machine of a Tester.
type TesterConfig = nvct.Config

// CampaignOpts configures one crash-test campaign.
type CampaignOpts = nvct.CampaignOpts

// Policy is a persistence policy (which objects to flush, where, how often).
type Policy = nvct.Policy

// Report aggregates a crash-test campaign.
type Report = nvct.Report

// Outcome classifies one crash test (S1..S4).
type Outcome = nvct.Outcome

// Crash-test outcomes (Figure 3, extended by the media-fault model and the
// crash-consistency oracle).
const (
	S1    = nvct.S1    // successful recomputation, no extra iterations
	S2    = nvct.S2    // successful recomputation with extra iterations
	S3    = nvct.S3    // interruption
	S4    = nvct.S4    // verification failure
	SDue  = nvct.SDue  // restart hit a detected-uncorrectable media error
	SErr  = nvct.SErr  // the test itself errored (panic or per-test timeout)
	SViol = nvct.SViol // recovery silently violated acknowledged-write consistency
)

// ErrEmptyCrashSpace reports a campaign whose crash-point space is empty —
// the kernel's main loop issued zero crash-eligible accesses, so no crash
// point can be drawn. Test with errors.Is.
var ErrEmptyCrashSpace = nvct.ErrEmptyCrashSpace

// ErrRetryBudgetExhausted reports a nested-failure trial whose recovery kept
// crashing until the per-trial retry budget was spent; the trial is recorded
// as an S3 interruption carrying this error. Test with errors.Is.
var ErrRetryBudgetExhausted = nvct.ErrRetryBudgetExhausted

// ErrTrialDeadline reports a nested-failure trial that exceeded its
// wall-clock deadline (CampaignOpts.TrialDeadline); the trial is recorded as
// SErr and the campaign continues. Test with errors.Is.
var ErrTrialDeadline = nvct.ErrTrialDeadline

// ChainCrash is one crash of a nested-failure trial's crash chain (see
// CampaignOpts.RecrashDepth and TestResult.Chain).
type ChainCrash = nvct.ChainCrash

// FaultConfig describes the NVM media-fault model applied at each simulated
// crash: torn writes at the 8-byte atomic-write granularity, raw bit errors
// at a configurable rate, and per-block ECC. The zero value is the paper's
// intact-NVM assumption and leaves campaigns byte-identical.
type FaultConfig = faultmodel.Config

// ECCConfig is a per-block error-correcting-code capability.
type ECCConfig = faultmodel.ECC

// SECDED returns the classic single-error-correct, double-error-detect code.
func SECDED() ECCConfig { return faultmodel.SECDED() }

// FaultInjection summarises the media faults injected into one crash test.
type FaultInjection = faultmodel.Injection

// NewTester performs a kernel's golden run and returns a crash tester.
func NewTester(f Factory, cfg TesterConfig) (*Tester, error) { return nvct.NewTester(f, cfg) }

// IterationPolicy persists the named objects at the end of every main-loop
// iteration.
func IterationPolicy(objects []string) *Policy { return nvct.IterationPolicy(objects) }

// EveryRegionPolicy persists the named objects at the end of every region
// of every iteration (the "best recomputability" reference policy).
func EveryRegionPolicy(objects []string, regions int) *Policy {
	return nvct.EveryRegionPolicy(objects, regions)
}

// Config parameterises the EasyCrash workflow.
type Config = core.Config

// Result is the workflow's decision record.
type Result = core.Result

// Run executes the full EasyCrash workflow (Steps 1-4 of §5.3) for a kernel.
func Run(f Factory, cfg Config) (*Result, error) { return core.Run(f, cfg) }

// RunWithTester executes the workflow against an existing tester.
func RunWithTester(t *Tester, cfg Config) (*Result, error) { return core.RunWithTester(t, cfg) }

// RunContext is Run honouring ctx: a cancellation stops the running campaign
// promptly and returns the partially filled Result alongside ctx's error.
func RunContext(ctx context.Context, f Factory, cfg Config) (*Result, error) {
	return core.RunContext(ctx, f, cfg)
}

// RunWithTesterContext is RunWithTester honouring ctx (see RunContext).
func RunWithTesterContext(ctx context.Context, t *Tester, cfg Config) (*Result, error) {
	return core.RunWithTesterContext(ctx, t, cfg)
}

// CacheConfig describes a simulated cache hierarchy.
type CacheConfig = cachesim.Config

// TestCacheConfig is the small, fast hierarchy the test-profile kernels are
// scaled against.
func TestCacheConfig() CacheConfig { return cachesim.TestConfig() }

// PaperCacheConfig approximates the paper's Xeon Gold 6126 hierarchy.
func PaperCacheConfig() CacheConfig { return cachesim.PaperConfig() }

// NVMProfile prices memory-system events for the performance model.
type NVMProfile = nvmperf.Profile

// NVMProfiles returns the evaluation profiles of Figures 7-8 (DRAM, 4x/8x
// latency, 1/6 and 1/8 bandwidth, Optane DC PMM).
func NVMProfiles() []NVMProfile { return nvmperf.Profiles() }

// SystemParams parameterises the §7 system-efficiency model.
type SystemParams = sysmodel.Params

// SystemEfficiency evaluates efficiency without and with EasyCrash and the
// absolute gain.
func SystemEfficiency(p SystemParams) (base, ec, gain float64, err error) {
	return sysmodel.Improvement(p)
}

// Tau computes the recomputability threshold τ above which EasyCrash beats
// plain checkpoint/restart at the given operating point.
func Tau(p SystemParams) (float64, error) { return sysmodel.Tau(p) }

// WritesReport compares NVM write traffic between EasyCrash and C/R.
type WritesReport = ckpt.WritesReport

// CompareWrites profiles the Figure-9 write-traffic comparison.
func CompareWrites(t *Tester, policy *Policy, critical []string) (WritesReport, error) {
	return ckpt.CompareWrites(t, policy, critical)
}

// Features is a kernel's access-pattern characterisation (the §8
// crash-test-free recomputability study).
type Features = predict.Features

// PredictModel is a fitted recomputability predictor.
type PredictModel = predict.Model

// Characterize extracts a kernel's access-pattern features from one
// instrumented run, without crash tests.
func Characterize(f Factory, cache CacheConfig, nvmBytes uint64) (Features, error) {
	return predict.Characterize(f, cache, nvmBytes)
}

// FitPredictor fits the linear recomputability model on characterised
// kernels with measured recomputability.
func FitPredictor(features []Features, measured []float64) (PredictModel, error) {
	return predict.Fit(features, measured)
}

// NVMMedia describes a memory technology's wear characteristics.
type NVMMedia = endurance.Media

// PCMMedia returns phase-change-memory wear parameters.
func PCMMedia() NVMMedia { return endurance.PCM() }

// EnduranceComparison reports per-scheme NVM lifetimes.
type EnduranceComparison = endurance.Comparison

// CompareEndurance computes device lifetimes for the unprotected
// application and each fault-tolerance scheme's normalized write traffic.
func CompareEndurance(m NVMMedia, capacityBytes, baseBytesPerSecond float64, schemes []endurance.SchemeWrites) (EnduranceComparison, error) {
	return endurance.Compare(m, capacityBytes, baseBytesPerSecond, schemes)
}

// MultiLevelParams extends the system model to two-level checkpointing.
type MultiLevelParams = sysmodel.MultiLevelParams

// MultiLevelEfficiency evaluates the two-level model with and without
// EasyCrash.
func MultiLevelEfficiency(p MultiLevelParams) (base, ec, gain float64, err error) {
	return sysmodel.MultiLevelImprovement(p)
}
