module easycrash

go 1.22
