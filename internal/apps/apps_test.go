package apps_test

import (
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/sim"
)

func newMachine(t testing.TB) *sim.Machine {
	t.Helper()
	return sim.NewMachine(64<<20, cachesim.TestConfig())
}

func TestNamesAndFactories(t *testing.T) {
	names := apps.Names()
	if len(names) != 11 {
		t.Fatalf("Names() has %d kernels, want 11", len(names))
	}
	for _, name := range names {
		f, err := apps.New(name, apps.ProfileTest)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		k := f()
		if k.Name() != name {
			t.Errorf("kernel %q reports name %q", name, k.Name())
		}
		if k.Description() == "" {
			t.Errorf("kernel %q has empty description", name)
		}
	}
	if _, err := apps.New("nope", apps.ProfileTest); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

// expected Table-1 characteristics per kernel.
var kernelShape = map[string]struct {
	regions    int
	convergent bool
}{
	"cg":       {6, true},
	"mg":       {4, false},
	"ft":       {4, false},
	"is":       {8, false},
	"bt":       {15, false},
	"lu":       {4, false},
	"sp":       {16, false},
	"ep":       {2, false},
	"botsspar": {4, false},
	"lulesh":   {4, false},
	"kmeans":   {1, true},
}

func TestKernelShapes(t *testing.T) {
	for name, want := range kernelShape {
		f, _ := apps.New(name, apps.ProfileTest)
		k := f()
		if got := k.RegionCount(); got != want.regions {
			t.Errorf("%s: RegionCount = %d, want %d (Table 1)", name, got, want.regions)
		}
		if got := k.Convergent(); got != want.convergent {
			t.Errorf("%s: Convergent = %v, want %v", name, got, want.convergent)
		}
		if k.NominalIters() <= 0 {
			t.Errorf("%s: NominalIters = %d", name, k.NominalIters())
		}
	}
}

// runGolden runs a kernel to completion on a fresh machine.
func runGolden(t *testing.T, name string, p apps.Profile) (apps.Kernel, *sim.Machine, int64) {
	t.Helper()
	f, err := apps.New(name, p)
	if err != nil {
		t.Fatal(err)
	}
	k := f()
	m := newMachine(t)
	k.Setup(m)
	k.Init(m)
	executed, err := k.Run(m, 0, 2*k.NominalIters())
	if err != nil {
		t.Fatalf("%s: golden run failed: %v", name, err)
	}
	return k, m, executed
}

func TestGoldenRunsVerify(t *testing.T) {
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k, m, executed := runGolden(t, name, apps.ProfileTest)
			if executed <= 0 || executed > 2*k.NominalIters() {
				t.Fatalf("executed %d of nominal %d", executed, k.NominalIters())
			}
			res := k.Result(m)
			if len(res) == 0 {
				t.Fatal("empty result")
			}
			if !k.Verify(m, res) {
				t.Fatal("golden run does not verify against itself")
			}
			// Structural checks the paper's methodology relies on.
			if len(m.Space().Candidates()) == 0 {
				t.Fatal("kernel registered no candidate objects")
			}
			if _, ok := m.Space().Object(apps.IterObjectName); !ok {
				t.Fatal("kernel did not allocate the iterator bookmark")
			}
			if m.MainAccesses() == 0 {
				t.Fatal("no main-loop accesses recorded")
			}
			// Every marked region must be exercised.
			ra := m.RegionAccesses()
			for r := 0; r < k.RegionCount(); r++ {
				if ra[r] == 0 {
					t.Errorf("region %d never executed", r)
				}
			}
			for r := range ra {
				if r >= k.RegionCount() {
					t.Errorf("unexpected region id %d (RegionCount %d)", r, k.RegionCount())
				}
			}
		})
	}
}

func TestGoldenRunsDeterministic(t *testing.T) {
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			_, m1, e1 := runGolden(t, name, apps.ProfileTest)
			k2, m2, e2 := runGolden(t, name, apps.ProfileTest)
			if e1 != e2 {
				t.Fatalf("iteration counts differ: %d vs %d", e1, e2)
			}
			r1, r2 := k2.Result(m1), k2.Result(m2)
			for i := range r1 {
				if r1[i] != r2[i] {
					t.Fatalf("result[%d] differs: %v vs %v", i, r1[i], r2[i])
				}
			}
			if m1.MainAccesses() != m2.MainAccesses() {
				t.Fatalf("access counts differ: %d vs %d", m1.MainAccesses(), m2.MainAccesses())
			}
		})
	}
}

func TestFootprintsExceedTestLLC(t *testing.T) {
	llc := uint64(cachesim.TestConfig().Levels[2].Size)
	for _, name := range apps.Names() {
		f, _ := apps.New(name, apps.ProfileTest)
		k := f()
		m := newMachine(t)
		k.Setup(m)
		// The paper chooses inputs whose footprints exceed the LLC;
		// LULESH intentionally sits at the boundary (§8's small-footprint
		// discussion inverted), EP's live set is its histogram.
		if fp := m.Space().Footprint(); fp < llc {
			t.Errorf("%s: footprint %d below LLC %d", name, fp, llc)
		}
	}
}

func TestResumeMatchesUninterruptedRun(t *testing.T) {
	// Splitting a run at an iteration boundary on the SAME machine must
	// reproduce the uninterrupted trajectory exactly (no hidden Go-side
	// state may carry across Run calls, except EP's documented register
	// sums, which lose earlier batches by design).
	for _, name := range apps.Names() {
		if name == "ep" {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k1, m1, e1 := runGolden(t, name, apps.ProfileTest)
			ref := k1.Result(m1)

			f, _ := apps.New(name, apps.ProfileTest)
			k2 := f()
			m2 := newMachine(t)
			k2.Setup(m2)
			k2.Init(m2)
			split := e1 / 2
			if _, err := k2.Run(m2, 0, split); err != nil {
				t.Fatal(err)
			}
			rest, err := k2.Run(m2, split, 2*k2.NominalIters())
			if err != nil {
				t.Fatal(err)
			}
			if split+rest != e1 {
				t.Fatalf("split run executed %d+%d, golden %d", split, rest, e1)
			}
			got := k2.Result(m2)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("result[%d]: split %v != golden %v", i, got[i], ref[i])
				}
			}
		})
	}
}

func TestISInterruptsOnStaleEpoch(t *testing.T) {
	f, _ := apps.New("is", apps.ProfileTest)
	k := f()
	m := newMachine(t)
	k.Setup(m)
	k.Init(m)
	// Keys carry epoch 0; starting at iteration 3 detags them negative.
	if _, err := k.Run(m, 3, 10); err != apps.ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

func TestLULESHInterruptsOnCorruptMesh(t *testing.T) {
	f, _ := apps.New("lulesh", apps.ProfileTest)
	k := f()
	m := newMachine(t)
	k.Setup(m)
	k.Init(m)
	// Invert an element: x[10] > x[11].
	x := m.Space().MustObject("x")
	m.F64(x).Set(10, 0.5)
	if _, err := k.Run(m, 0, 5); err != apps.ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	// Corrupt dt as a crash-restored stale scalar would.
	k2 := f()
	m2 := newMachine(t)
	k2.Setup(m2)
	k2.Init(m2)
	m2.F64(m2.Space().MustObject("scal")).Set(0, -1)
	if _, err := k2.Run(m2, 0, 5); err != apps.ErrInterrupted {
		t.Fatalf("negative dt: err = %v, want ErrInterrupted", err)
	}
}

func TestConvergentKernelsStopEarly(t *testing.T) {
	for _, name := range []string{"cg", "kmeans"} {
		k, _, executed := runGolden(t, name, apps.ProfileTest)
		if executed >= k.NominalIters() {
			t.Errorf("%s: did not converge before the budget (%d >= %d)", name, executed, k.NominalIters())
		}
	}
}

func TestEPLosesRegisterStateAcrossRestart(t *testing.T) {
	// A restart from any iteration > 0 loses the register-resident sums
	// and must fail verification — EP's defining property in the paper.
	k1, m1, _ := runGolden(t, "ep", apps.ProfileTest)
	ref := k1.Result(m1)

	f, _ := apps.New("ep", apps.ProfileTest)
	k2 := f()
	m2 := newMachine(t)
	k2.Setup(m2)
	k2.Init(m2)
	if _, err := k2.Run(m2, 5, k2.NominalIters()); err != nil {
		t.Fatal(err)
	}
	if k2.Verify(m2, ref) {
		t.Fatal("EP restart from iteration 5 should fail exact-count verification")
	}
}

func TestVerifyRejectsPerturbedState(t *testing.T) {
	// Perturbing a critical object after a run must break acceptance for
	// the strict-verification kernels.
	for _, tc := range []struct {
		kernel, object string
		index          int // an element the kernel's Result actually samples
	}{
		{"mg", "u", (6*14+6)*14 + 6}, // an interior grid point
		{"ft", "sums", 0},
		{"lu", "u", 3}, {"bt", "u", 3}, {"sp", "u", 3},
		{"botsspar", "blocks", 3}, {"lulesh", "e", 100}, {"is", "keys", 7},
	} {
		k, m, _ := runGolden(t, tc.kernel, apps.ProfileTest)
		ref := k.Result(m)
		obj := m.Space().MustObject(tc.object)
		v := m.F64(obj)
		v.Set(tc.index, v.At(tc.index)+1e3)
		if k.Verify(m, ref) {
			t.Errorf("%s: verification passed despite corrupted %s", tc.kernel, tc.object)
		}
	}
}

func TestBenchProfilesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("bench profiles are slower; skipped with -short")
	}
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k, m, _ := runGolden(t, name, apps.ProfileBench)
			if !k.Verify(m, k.Result(m)) {
				t.Fatal("bench-profile golden run does not verify")
			}
		})
	}
}

func TestKernelsRunOnMultiCoreHierarchy(t *testing.T) {
	// The coherent multi-core configuration must give identical results
	// (kernels issue from core 0; coherence must not perturb values).
	cfg := cachesim.TestConfig()
	cfg.Cores = 2
	f, _ := apps.New("mg", apps.ProfileTest)
	k := f()
	m := sim.NewMachine(64<<20, cfg)
	k.Setup(m)
	k.Init(m)
	if _, err := k.Run(m, 0, k.NominalIters()); err != nil {
		t.Fatal(err)
	}
	_, m1, _ := runGolden(t, "mg", apps.ProfileTest)
	r1, r2 := k.Result(m1), k.Result(m)
	if r1[0] != r2[0] {
		t.Fatalf("multi-core result %v != single-core %v", r2[0], r1[0])
	}
}
