package apps

import (
	"math"

	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// LULESH is a 1-D Lagrangian shock-hydrodynamics proxy of LLNL's LULESH
// (a Sod shock tube): explicit time integration of positions, velocities
// and internal energy with an artificial-viscosity term and a Courant-
// limited adaptive time step. Regions per time step:
//
//	R0: EOS & forces    density, pressure, viscosity from (x, e); nodal forces
//	R1: velocity update v += dt·F/m   (in place)
//	R2: position update x += dt·v     (in place)
//	R3: energy update   e += dt·work, new Courant dt
//
// All three state arrays advance in place, so replay exactness requires
// their durable copies to be the crashed step's starting state; dt lives in
// a hot scalar block that never leaves the cache on its own — both are what
// EasyCrash's iteration-end flushing provides.
type LULESH struct {
	n   int // elements; n+1 nodes
	nit int64

	x, v, e  mem.Object // state (candidates)
	f, p, q  mem.Object // per-step force/pressure/viscosity (rebuilt)
	mass, mn mem.Object // element and nodal masses (read-only)
	scal     mem.Object // dt and bookkeeping (candidate)
	it       mem.Object
}

// NewLULESH creates the kernel at the given profile.
func NewLULESH(p Profile) Kernel {
	switch p {
	case ProfileBench:
		return &LULESH{n: 2048, nit: 20}
	default:
		return &LULESH{n: 512, nit: 24}
	}
}

// Name implements Kernel.
func (k *LULESH) Name() string { return "lulesh" }

// Description implements Kernel.
func (k *LULESH) Description() string { return "Hydrodynamics modelling (Lagrangian shock tube)" }

// RegionCount implements Kernel.
func (k *LULESH) RegionCount() int { return 4 }

// NominalIters implements Kernel.
func (k *LULESH) NominalIters() int64 { return k.nit }

// Convergent implements Kernel.
func (k *LULESH) Convergent() bool { return false }

// IterObject implements Kernel.
func (k *LULESH) IterObject() mem.Object { return k.it }

// Setup implements Kernel.
func (k *LULESH) Setup(m *sim.Machine) {
	s := m.Space()
	k.x = s.AllocF64("x", k.n+1, true)
	k.v = s.AllocF64("v", k.n+1, true)
	k.e = s.AllocF64("e", k.n, true)
	k.f = s.AllocF64("f", k.n+1, true)
	k.p = s.AllocF64("p", k.n, true)
	k.q = s.AllocF64("q", k.n, true)
	k.mass = s.AllocF64("mass", k.n, false)
	k.mn = s.AllocF64("mn", k.n+1, false)
	k.scal = s.AllocF64("scal", 8, true)
	k.it = AllocIter(m)
}

// Init implements Kernel: the Sod shock tube — high energy on the left.
func (k *LULESH) Init(m *sim.Machine) {
	x, v, e := m.F64Stream(k.x), m.F64Stream(k.v), m.F64Stream(k.e)
	f, p, q := m.F64Stream(k.f), m.F64Stream(k.p), m.F64Stream(k.q)
	mass, mn := m.F64Stream(k.mass), m.F64Stream(k.mn)
	scal := m.F64(k.scal)
	for j := 0; j <= k.n; j++ {
		x.Set(j, float64(j)/float64(k.n))
		v.Set(j, 0)
		f.Set(j, 0)
		mn.Set(j, 1.0/float64(k.n))
	}
	for i := 0; i < k.n; i++ {
		if i < k.n/2 {
			e.Set(i, 2.5)
		} else {
			e.Set(i, 0.25)
		}
		p.Set(i, 0)
		q.Set(i, 0)
		mass.Set(i, 1.0/float64(k.n))
	}
	scal.Set(0, 1e-4) // initial dt
	m.I64(k.it).Set(0, 0)
}

// Run implements Kernel.
func (k *LULESH) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	if maxIter > k.nit {
		maxIter = k.nit
	}
	scal := m.F64(k.scal)
	itv := m.I64(k.it)
	const gammaM1 = 0.4
	const qcoef = 2.0

	// One stream per access arm: the ctr (i) and +1 (i+1) arms of an array
	// get separate cursors so each stays block-local; read-modify-write of
	// the same element shares one cursor (same block by definition).
	x, xp := m.F64Stream(k.x), m.F64Stream(k.x)
	v, vp := m.F64Stream(k.v), m.F64Stream(k.v)
	e := m.F64Stream(k.e)
	f := m.F64Stream(k.f)
	p, pm := m.F64Stream(k.p), m.F64Stream(k.p)
	q, qm := m.F64Stream(k.q), m.F64Stream(k.q)
	mass, mn := m.F64Stream(k.mass), m.F64Stream(k.mn)

	m.MainLoopBegin()
	defer m.MainLoopEnd()
	var executed int64
	for it := from; it < maxIter; it++ {
		m.BeginIteration(it)
		dt := scal.At(0)
		if dt <= 0 || math.IsNaN(dt) {
			m.MainLoopEnd()
			return executed, ErrInterrupted
		}

		// R0: EOS and nodal forces.
		m.BeginRegion(0)
		for i := 0; i < k.n; i++ {
			dx := xp.At(i+1) - x.At(i)
			if dx <= 0 || math.IsNaN(dx) {
				// An inverted element: the mesh has been corrupted.
				m.MainLoopEnd()
				return executed, ErrInterrupted
			}
			rho := mass.At(i) / dx
			p.Set(i, gammaM1*rho*e.At(i))
			dv := vp.At(i+1) - v.At(i)
			if dv < 0 {
				q.Set(i, qcoef*rho*dv*dv)
			} else {
				q.Set(i, 0)
			}
		}
		for j := 1; j < k.n; j++ {
			f.Set(j, (pm.At(j-1)+qm.At(j-1))-(p.At(j)+q.At(j)))
		}
		f.Set(0, 0)
		f.Set(k.n, 0)
		m.EndRegion(0)

		// R1: velocity update.
		m.BeginRegion(1)
		for j := 1; j < k.n; j++ {
			v.Set(j, v.At(j)+dt*f.At(j)/mn.At(j))
		}
		m.EndRegion(1)

		// R2: position update.
		m.BeginRegion(2)
		for j := 0; j <= k.n; j++ {
			x.Set(j, x.At(j)+dt*v.At(j))
		}
		m.EndRegion(2)

		// R3: energy update and the Courant-limited next time step.
		m.BeginRegion(3)
		minDt := math.Inf(1)
		for i := 0; i < k.n; i++ {
			dv := vp.At(i+1) - v.At(i)
			work := (p.At(i) + q.At(i)) * dv
			en := e.At(i) - dt*work/mass.At(i)*1e-1
			if en < 0 {
				en = 0
			}
			e.Set(i, en)
			dx := xp.At(i+1) - x.At(i)
			c := math.Sqrt(gammaM1 * en)
			if c > 0 {
				if cand := 0.3 * dx / c; cand < minDt {
					minDt = cand
				}
			}
		}
		if minDt > 2.5e-4 {
			minDt = 2.5e-4 // stability cap (reached only in the first steps)
		}
		scal.Set(0, minDt*0.99)
		m.EndRegion(3)

		itv.Set(0, it+1)
		m.EndIteration(it)
		executed++
	}
	return executed, nil
}

// Result implements Kernel: conserved quantities and profile checksums.
func (k *LULESH) Result(m *sim.Machine) []float64 {
	x, v, e := m.F64Stream(k.x), m.F64Stream(k.v), m.F64Stream(k.e)
	var etot, ksum, xs float64
	for i := 0; i < k.n; i++ {
		etot += e.At(i)
	}
	for j := 0; j <= k.n; j++ {
		ksum += v.At(j) * v.At(j)
		xs += x.At(j) * float64(j%7+1)
	}
	return []float64{etot, ksum, xs}
}

// Verify implements Kernel: the final profiles must match the reference
// (hydrodynamics verification against known solutions, per the paper's
// acceptance-verification discussion).
func (k *LULESH) Verify(m *sim.Machine, golden []float64) bool {
	got := k.Result(m)
	for i := range got {
		if !relClose(got[i], golden[i], 1e-9) {
			return false
		}
	}
	return true
}
