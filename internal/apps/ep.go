package apps

import (
	"math"

	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// EP is a simplified NPB-EP: an embarrassingly parallel Monte Carlo kernel.
// Each iteration generates a deterministic batch of uniform pairs, applies
// the acceptance-rejection Gaussian transform, and accumulates the sums and
// an annulus histogram. Regions:
//
//	R0: generate the batch of pairs into the sample buffer
//	R1: transform, accumulate sums and histogram counts
//
// Like NPB's EP, the Gaussian sums accumulate in thread-local scalars —
// stack state, which is outside EasyCrash's scope (§2.2 considers heap and
// global objects only) — and are written to memory once after the last
// batch. A restart therefore loses every pre-crash batch's contribution no
// matter what was flushed, and the verification demands exact counts: EP
// has essentially zero recomputability with or without EasyCrash, matching
// the paper (even persisted, under 3% — only crashes inside the first batch
// replay completely).
type EP struct {
	batches int64
	perB    int

	xbuf mem.Object // sample buffer, regenerated per batch (candidate)
	hist mem.Object // annulus histogram (candidate)
	sums mem.Object // sx, sy, accepted count (candidate)
	it   mem.Object
}

// NewEP creates an EP kernel at the given profile.
func NewEP(p Profile) *EP {
	switch p {
	case ProfileBench:
		return &EP{batches: 48, perB: 2048}
	default:
		return &EP{batches: 48, perB: 1024}
	}
}

// Name implements Kernel.
func (k *EP) Name() string { return "ep" }

// Description implements Kernel.
func (k *EP) Description() string { return "Monte Carlo (Gaussian pairs)" }

// RegionCount implements Kernel.
func (k *EP) RegionCount() int { return 2 }

// NominalIters implements Kernel.
func (k *EP) NominalIters() int64 { return k.batches }

// Convergent implements Kernel.
func (k *EP) Convergent() bool { return false }

// IterObject implements Kernel.
func (k *EP) IterObject() mem.Object { return k.it }

// histBins is sized so the histogram exceeds the test LLC together with the
// sample buffer, giving the accumulators real eviction exposure.
const histBins = 16384

// Setup implements Kernel.
func (k *EP) Setup(m *sim.Machine) {
	s := m.Space()
	k.xbuf = s.AllocF64("xbuf", 2*k.perB, true)
	k.hist = s.AllocI64("hist", histBins, true)
	k.sums = s.AllocF64("sums", 8, true)
	k.it = AllocIter(m)
}

// Init implements Kernel.
func (k *EP) Init(m *sim.Machine) {
	xbuf := m.F64Stream(k.xbuf)
	hist := m.I64Stream(k.hist)
	for i := 0; i < xbuf.Len(); i++ {
		xbuf.Set(i, 0)
	}
	for i := 0; i < histBins; i++ {
		hist.Set(i, 0)
	}
	m.F64(k.sums).StoreRun(0, make([]float64, 8))
	m.I64(k.it).Set(0, 0)
}

// Run implements Kernel.
func (k *EP) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	if maxIter > k.batches {
		maxIter = k.batches
	}
	sums := m.F64(k.sums)
	hist := m.I64(k.hist)
	itv := m.I64(k.it)
	// The sample buffer is written and read sequentially; the histogram
	// scatter is hash-addressed and stays scalar.
	xbuf := m.F64Stream(k.xbuf)
	// Thread-local accumulators (stack state, never persisted mid-run).
	var sx, sy, acc float64

	m.MainLoopBegin()
	defer m.MainLoopEnd()
	var executed int64
	for it := from; it < maxIter; it++ {
		m.BeginIteration(it)

		// R0: regenerate the batch (pure function of the batch index).
		m.BeginRegion(0)
		rng := splitmix64(0x9E3779B9&uint64(it) + uint64(it)*2654435761 + 12345)
		for i := 0; i < k.perB; i++ {
			xbuf.Set(2*i, rng.f64()*2-1)
			xbuf.Set(2*i+1, rng.f64()*2-1)
		}
		m.EndRegion(0)

		// R1: acceptance-rejection transform and accumulation.
		m.BeginRegion(1)
		for i := 0; i < k.perB; i++ {
			x, y := xbuf.At(2*i), xbuf.At(2*i+1)
			t := x*x + y*y
			if t > 1 || t == 0 {
				continue
			}
			f := math.Sqrt(-2 * math.Log(t) / t)
			gx, gy := x*f, y*f
			sx += gx
			sy += gy
			acc++
			h := math.Float64bits(gx) * 0x9E3779B97F4A7C15
			bin := int((h >> 40) % histBins)
			//eclint:allow batchedaccess — hash-addressed histogram increment
			hist.Set(bin, hist.At(bin)+1)
		}
		m.EndRegion(1)

		itv.Set(0, it+1)
		m.EndIteration(it)
		executed++
	}
	// The register-resident sums reach memory only when the run completes.
	sums.Set(0, sx)
	sums.Set(1, sy)
	sums.Set(2, acc)
	return executed, nil
}

// Result implements Kernel: the Gaussian sums, acceptance count, and a
// histogram checksum.
func (k *EP) Result(m *sim.Machine) []float64 {
	sums := m.F64(k.sums)
	hist := m.I64Stream(k.hist)
	var hsum float64
	for b := 0; b < histBins; b++ {
		hsum += float64(int64(b+1) * hist.At(b))
	}
	return []float64{sums.At(0), sums.At(1), sums.At(2), hsum}
}

// Verify implements Kernel: exact numerical integrity — counts and sums
// must match the reference precisely (the class of application the paper
// identifies as unable to tolerate any inconsistency).
func (k *EP) Verify(m *sim.Machine, golden []float64) bool {
	got := k.Result(m)
	for i := range got {
		if !relClose(got[i], golden[i], 1e-12) {
			return false
		}
	}
	return true
}
