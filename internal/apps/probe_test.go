package apps_test

// TestProbe is an interactive calibration tool for kernel authors: it runs
// the standard policy matrix (baseline / selected objects / best /
// verified) against one kernel and prints the outcome mix. Skipped unless
// PROBE=<kernel>:<obj1,obj2,...> is set, e.g.
//
//	PROBE=mg:u go test ./internal/apps/ -run TestProbe -v

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"easycrash/internal/apps"
	"easycrash/internal/nvct"
)

func TestProbe(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip("set PROBE=<kernel>:<objs> to run")
	}
	parts := strings.SplitN(os.Getenv("PROBE"), ":", 2)
	name := parts[0]
	objs := strings.Split(parts[1], ",")
	f, err := apps.New(name, apps.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	tester, err := nvct.NewTester(f, nvct.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := tester.Golden()
	fmt.Printf("golden: iters=%d accesses=%d result[0]=%.6g footprint=%dKB golden-time=%v\n",
		g.Iters, g.MainAccesses, g.Result[0], g.Footprint/1024, time.Since(start))
	k := f()
	cases := []struct {
		label  string
		policy *nvct.Policy
		vfy    bool
	}{
		{"none", nil, false},
		{"persist-sel", nvct.IterationPolicy(objs), false},
		{"best", nvct.EveryRegionPolicy(objs, k.RegionCount()), false},
		{"verified", nil, true},
	}
	for _, tc := range cases {
		st := time.Now()
		rep := tester.RunCampaign(tc.policy, nvct.CampaignOpts{Tests: 40, Seed: 2, Verified: tc.vfy})
		fmt.Printf("%-12s S1=%2d S2=%2d S3=%2d S4=%2d R=%.2f extra=%.1f (%.1fs)\n",
			tc.label, rep.Counts[0], rep.Counts[1], rep.Counts[2], rep.Counts[3],
			rep.Recomputability(), rep.AvgExtraIters(), time.Since(st).Seconds())
	}
}
