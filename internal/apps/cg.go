package apps

import (
	"math"

	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// CG is a simplified NPB-CG: inverse power iteration for the smallest
// eigenvalue of a sparse symmetric positive-definite matrix, where each
// outer round solves A z = x approximately with a few conjugate-gradient
// steps and then commits the normalised iterate. Regions per round:
//
//	R0:    inner init   z = 0, r = x, p = r, rho = r·r
//	R1-R4: one CG step each
//	R5:    zeta update and commit x = z/‖z‖, convergence check
//
// The eigen-iterate x and the convergence bookkeeping (zetaPrev) carry
// across rounds; the inner Krylov vectors are rebuilt from x every round.
// A restart with exact durable state replays bit-exactly (S1); stale state
// still converges to the same eigenvalue but needs extra rounds — the S2
// responses and the extra-iteration restart overhead the paper reports for
// CG in Table 1.
type CG struct {
	n      int // matrix dimension
	nnzRow int // off-diagonal nonzeros per row
	maxIt  int64
	eps    float64 // zeta stabilisation threshold

	vals         mem.Object // read-only CSR values
	colidx, rptr mem.Object // read-only CSR structure
	x            mem.Object // eigen-iterate (candidate)
	z, rr, pp, q mem.Object // inner CG state, rebuilt each round (candidates)
	scal         mem.Object // zetaPrev and friends (candidate)
	it           mem.Object
}

// NewCG creates a CG kernel at the given profile.
func NewCG(p Profile) *CG {
	switch p {
	case ProfileBench:
		return &CG{n: 640, nnzRow: 5, maxIt: 60, eps: 1e-7}
	default:
		return &CG{n: 320, nnzRow: 5, maxIt: 60, eps: 1e-7}
	}
}

// Name implements Kernel.
func (k *CG) Name() string { return "cg" }

// Description implements Kernel.
func (k *CG) Description() string { return "Sparse linear algebra (conjugate gradient)" }

// RegionCount implements Kernel.
func (k *CG) RegionCount() int { return 6 }

// NominalIters implements Kernel: the round budget; the golden run
// converges earlier and defines the reference round count.
func (k *CG) NominalIters() int64 { return k.maxIt }

// Convergent implements Kernel.
func (k *CG) Convergent() bool { return true }

// IterObject implements Kernel.
func (k *CG) IterObject() mem.Object { return k.it }

// Setup implements Kernel.
func (k *CG) Setup(m *sim.Machine) {
	s := m.Space()
	nnz := k.n * (k.nnzRow + 1)
	k.vals = s.AllocF64("vals", nnz, false)
	k.colidx = s.AllocI64("colidx", nnz, false)
	k.rptr = s.AllocI64("rowptr", k.n+1, false)
	k.x = s.AllocF64("x", k.n, true)
	k.z = s.AllocF64("z", k.n, true)
	k.rr = s.AllocF64("r", k.n, true)
	k.pp = s.AllocF64("p", k.n, true)
	k.q = s.AllocF64("q", k.n, true)
	k.scal = s.AllocF64("scal", 8, true)
	k.it = AllocIter(m)
}

// Init implements Kernel: a random symmetric diagonally dominant matrix and
// the all-ones start vector.
func (k *CG) Init(m *sim.Machine) {
	vals := m.F64Stream(k.vals)
	colidx, rptr := m.I64Stream(k.colidx), m.I64Stream(k.rptr)
	x, z, rr, pp, q := m.F64Stream(k.x), m.F64Stream(k.z), m.F64Stream(k.rr), m.F64Stream(k.pp), m.F64Stream(k.q)

	rng := splitmix64(424242)
	nz := 0
	for i := 0; i < k.n; i++ {
		rptr.Set(i, int64(nz))
		// A handful of light diagonal entries separates the smallest
		// eigenvalue from the rest of the spectrum, giving the inverse
		// power iteration a healthy convergence rate.
		d := 5.2 + 0.4*rng.f64()
		if i == 0 {
			d = 1.8
		}
		vals.Set(nz, d)
		colidx.Set(nz, int64(i))
		nz++
		// A symmetric offset set (±7, ±14, n/2) keeps A = Aᵀ structurally;
		// values come from the unordered pair so A = Aᵀ numerically too.
		offs := [5]int{7, k.n - 7, 14, k.n - 14, k.n / 2}
		for j := 0; j < k.nnzRow; j++ {
			col := (i + offs[j%len(offs)]) % k.n
			lo, hi := i, col
			if lo > hi {
				lo, hi = hi, lo
			}
			pairRng := splitmix64(uint64(lo)*1_000_003 + uint64(hi))
			vals.Set(nz, -(0.2 + 0.1*pairRng.f64()))
			colidx.Set(nz, int64(col))
			nz++
		}
	}
	rptr.Set(k.n, int64(nz))
	inv := 1 / math.Sqrt(float64(k.n))
	for i := 0; i < k.n; i++ {
		x.Set(i, inv)
		z.Set(i, 0)
		rr.Set(i, 0)
		pp.Set(i, 0)
		q.Set(i, 0)
	}
	m.F64(k.scal).StoreRun(0, make([]float64, 8))
	m.I64(k.it).Set(0, 0)
}

// matvec computes dst = A·src. The CSR structure and values are walked
// sequentially through streams; the gather src.At(colidx) is genuinely
// irregular and keeps the scalar path.
func (k *CG) matvec(m *sim.Machine, dst *sim.F64Stream, src sim.F64Slice) {
	vals := m.F64Stream(k.vals)
	colidx := m.I64Stream(k.colidx)
	rptr, rptr1 := m.I64Stream(k.rptr), m.I64Stream(k.rptr)
	for i := 0; i < k.n; i++ {
		lo, hi := rptr.At(i), rptr1.At(i+1)
		var sum float64
		for e := lo; e < hi; e++ {
			//eclint:allow batchedaccess — indirect gather through colidx is not stride-regular
			sum += vals.At(int(e)) * src.At(int(colidx.At(int(e))))
		}
		dst.Set(i, sum)
	}
}

// Run implements Kernel.
func (k *CG) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	if maxIter > 2*k.maxIt {
		maxIter = 2 * k.maxIt
	}
	ppSlice := m.F64(k.pp)
	scal := m.F64(k.scal)
	itv := m.I64(k.it)

	// One stream per vector: every inner loop touches each vector at the
	// running index only, so read-modify-write shares the cursor.
	x, z := m.F64Stream(k.x), m.F64Stream(k.z)
	rr, pp, q := m.F64Stream(k.rr), m.F64Stream(k.pp), m.F64Stream(k.q)

	m.MainLoopBegin()
	defer m.MainLoopEnd()
	var executed int64
	for it := from; it < maxIter; it++ {
		m.BeginIteration(it)

		// R0: inner CG init from the committed iterate.
		m.BeginRegion(0)
		var rho float64
		for i := 0; i < k.n; i++ {
			z.Set(i, 0)
			xi := x.At(i)
			rr.Set(i, xi)
			pp.Set(i, xi)
			rho += xi * xi
		}
		m.EndRegion(0)

		// R1..R4: four CG steps on A z = x.
		for step := 0; step < 4; step++ {
			m.BeginRegion(1 + step)
			k.matvec(m, q, ppSlice)
			var pq float64
			for i := 0; i < k.n; i++ {
				pq += pp.At(i) * q.At(i)
			}
			alpha := rho / pq
			var rhoNew float64
			for i := 0; i < k.n; i++ {
				z.Set(i, z.At(i)+alpha*pp.At(i))
				ri := rr.At(i) - alpha*q.At(i)
				rr.Set(i, ri)
				rhoNew += ri * ri
			}
			beta := rhoNew / rho
			for i := 0; i < k.n; i++ {
				pp.Set(i, rr.At(i)+beta*pp.At(i))
			}
			rho = rhoNew
			m.EndRegion(1 + step)
		}

		// R5: zeta update, convergence check, and commit x = z/‖z‖.
		m.BeginRegion(5)
		var xz, zz float64
		for i := 0; i < k.n; i++ {
			xz += x.At(i) * z.At(i)
			zz += z.At(i) * z.At(i)
		}
		zeta := 1 / xz // shiftless Rayleigh estimate of 1/λmin(A⁻¹)
		znorm := math.Sqrt(zz)
		for i := 0; i < k.n; i++ {
			x.Set(i, z.At(i)/znorm)
		}
		zetaPrev := scal.At(0)
		scal.Set(0, zeta)
		m.EndRegion(5)

		itv.Set(0, it+1)
		m.EndIteration(it)
		executed++
		if it > 0 && math.Abs(zeta-zetaPrev) <= k.eps*math.Abs(zeta) {
			break // zeta stabilised
		}
	}
	return executed, nil
}

// Result implements Kernel: the final eigenvalue estimate zeta.
func (k *CG) Result(m *sim.Machine) []float64 {
	return []float64{m.F64(k.scal).At(0)}
}

// Verify implements Kernel: the eigenvalue estimate must match the golden
// run's (the solver converges to the same zeta regardless of perturbation,
// possibly needing extra rounds).
func (k *CG) Verify(m *sim.Machine, golden []float64) bool {
	return relClose(k.Result(m)[0], golden[0], 1e-6)
}
