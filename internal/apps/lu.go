package apps

import (
	"math"

	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// LU is a simplified NPB-LU: an SSOR (symmetric successive over-relaxation)
// sweep over a 3-D grid with two coupled components per cell. Regions:
//
//	R0: residual        rsd = frct - A u
//	R1: lower sweep     forward Gauss-Seidel pass over rsd (in place)
//	R2: upper sweep     backward Gauss-Seidel pass over rsd (in place)
//	R3: update          u += ω·rsd  (in-place, non-idempotent)
//
// The in-place += update is why the paper finds LU cannot restart without
// persistence (its verification fails): any partially applied update that
// leaked to NVM is applied twice on replay. Flushing u at iteration ends
// repairs every crash outside the update region.
type LU struct {
	n   int // grid edge
	m   int // components per cell
	nit int64

	u, rsd, frct mem.Object
	scal         mem.Object
	it           mem.Object
}

// NewLU creates an LU kernel at the given profile.
func NewLU(p Profile) *LU {
	switch p {
	case ProfileBench:
		return &LU{n: 14, m: 2, nit: 10}
	default:
		return &LU{n: 10, m: 2, nit: 10}
	}
}

// Name implements Kernel.
func (k *LU) Name() string { return "lu" }

// Description implements Kernel.
func (k *LU) Description() string { return "Dense linear algebra (SSOR solver)" }

// RegionCount implements Kernel.
func (k *LU) RegionCount() int { return 4 }

// NominalIters implements Kernel.
func (k *LU) NominalIters() int64 { return k.nit }

// Convergent implements Kernel.
func (k *LU) Convergent() bool { return false }

// IterObject implements Kernel.
func (k *LU) IterObject() mem.Object { return k.it }

func (k *LU) cells() int { return k.n * k.n * k.n }

// Setup implements Kernel.
func (k *LU) Setup(m *sim.Machine) {
	s := m.Space()
	k.u = s.AllocF64("u", k.cells()*k.m, true)
	k.rsd = s.AllocF64("rsd", k.cells()*k.m, true)
	k.frct = s.AllocF64("frct", k.cells()*k.m, false) // forcing term, read-only
	k.scal = s.AllocF64("scal", 8, true)
	k.it = AllocIter(m)
}

// Init implements Kernel.
func (k *LU) Init(m *sim.Machine) {
	u, rsd, frct := m.F64Stream(k.u), m.F64Stream(k.rsd), m.F64Stream(k.frct)
	rng := splitmix64(141421)
	for i := 0; i < k.cells()*k.m; i++ {
		u.Set(i, 0)
		rsd.Set(i, 0)
		frct.Set(i, rng.f64()*2-1)
	}
	m.F64(k.scal).StoreRun(0, make([]float64, 8))
	m.I64(k.it).Set(0, 0)
}

func (k *LU) idx(x, y, z, c int) int { return ((z*k.n+y)*k.n+x)*k.m + c }

// Run implements Kernel.
func (k *LU) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	if maxIter > k.nit {
		maxIter = k.nit
	}
	scal := m.F64(k.scal)
	itv := m.I64(k.it)
	n := k.n

	// One stream per stride-regular access site (stencil arm / array), so
	// each cursor sees block-local traffic even though the loops interleave
	// several arrays. Access order is identical to the scalar version.
	uC, uCp := m.F64Stream(k.u), m.F64Stream(k.u)
	uXm, uXp := m.F64Stream(k.u), m.F64Stream(k.u)
	uYm, uYp := m.F64Stream(k.u), m.F64Stream(k.u)
	uZm, uZp := m.F64Stream(k.u), m.F64Stream(k.u)
	frctC := m.F64Stream(k.frct)
	rC := m.F64Stream(k.rsd)
	rXm, rXp := m.F64Stream(k.rsd), m.F64Stream(k.rsd)
	rYm, rYp := m.F64Stream(k.rsd), m.F64Stream(k.rsd)
	rZm, rZp := m.F64Stream(k.rsd), m.F64Stream(k.rsd)

	m.MainLoopBegin()
	defer m.MainLoopEnd()
	var executed int64
	for it := from; it < maxIter; it++ {
		m.BeginIteration(it)

		// R0: residual rsd = frct - A u with component coupling.
		m.BeginRegion(0)
		for z := 1; z < n-1; z++ {
			for y := 1; y < n-1; y++ {
				for x := 1; x < n-1; x++ {
					for c := 0; c < k.m; c++ {
						ctr := uC.At(k.idx(x, y, z, c))
						nb := uXm.At(k.idx(x-1, y, z, c)) + uXp.At(k.idx(x+1, y, z, c)) +
							uYm.At(k.idx(x, y-1, z, c)) + uYp.At(k.idx(x, y+1, z, c)) +
							uZm.At(k.idx(x, y, z-1, c)) + uZp.At(k.idx(x, y, z+1, c))
						couple := 0.1 * uCp.At(k.idx(x, y, z, 1-c))
						rC.Set(k.idx(x, y, z, c), frctC.At(k.idx(x, y, z, c))-(6.4*ctr-nb+couple))
					}
				}
			}
		}
		m.EndRegion(0)

		// R1: lower-triangular (forward) Gauss-Seidel sweep on rsd.
		m.BeginRegion(1)
		for z := 1; z < n-1; z++ {
			for y := 1; y < n-1; y++ {
				for x := 1; x < n-1; x++ {
					for c := 0; c < k.m; c++ {
						prev := rXm.At(k.idx(x-1, y, z, c)) + rYm.At(k.idx(x, y-1, z, c)) +
							rZm.At(k.idx(x, y, z-1, c))
						rC.Set(k.idx(x, y, z, c), (rC.At(k.idx(x, y, z, c))+prev)/6.4)
					}
				}
			}
		}
		m.EndRegion(1)

		// R2: upper-triangular (backward) sweep on rsd.
		m.BeginRegion(2)
		for z := n - 2; z >= 1; z-- {
			for y := n - 2; y >= 1; y-- {
				for x := n - 2; x >= 1; x-- {
					for c := 0; c < k.m; c++ {
						next := rXp.At(k.idx(x+1, y, z, c)) + rYp.At(k.idx(x, y+1, z, c)) +
							rZp.At(k.idx(x, y, z+1, c))
						rC.Set(k.idx(x, y, z, c), rC.At(k.idx(x, y, z, c))+next/6.4)
					}
				}
			}
		}
		m.EndRegion(2)

		// R3: in-place over-relaxed update of u, plus the residual norm.
		m.BeginRegion(3)
		const omega = 0.9
		var norm float64
		for z := 1; z < n-1; z++ {
			for y := 1; y < n-1; y++ {
				for x := 1; x < n-1; x++ {
					for c := 0; c < k.m; c++ {
						d := rC.At(k.idx(x, y, z, c))
						uC.Set(k.idx(x, y, z, c), uC.At(k.idx(x, y, z, c))+omega*d)
						norm += d * d
					}
				}
			}
		}
		scal.Set(0, math.Sqrt(norm))
		m.EndRegion(3)

		itv.Set(0, it+1)
		m.EndIteration(it)
		executed++
	}
	return executed, nil
}

// Result implements Kernel: the final sweep norm and a solution checksum.
func (k *LU) Result(m *sim.Machine) []float64 {
	u := m.F64Stream(k.u)
	scal := m.F64(k.scal)
	var sum float64
	for i := 0; i < k.cells()*k.m; i += 3 {
		sum += u.At(i) * float64(i%7+1)
	}
	return []float64{scal.At(0), sum}
}

// Verify implements Kernel: NPB-style strict verification against the
// reference norms.
func (k *LU) Verify(m *sim.Machine, golden []float64) bool {
	got := k.Result(m)
	return relClose(got[0], golden[0], 1e-9) && relClose(got[1], golden[1], 1e-9)
}
