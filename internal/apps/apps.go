// Package apps contains the benchmark kernels the paper characterises
// (Table 1): self-contained Go implementations of the numerical cores of the
// NPB kernels (CG, MG, FT, IS, BT, LU, SP, EP), SPEC OMP botsspar, LULESH
// and kmeans, each structured the way EasyCrash requires:
//
//   - heap/global data objects registered in simulated NVM, with candidate
//     critical data objects flagged (lifetime = main loop, not read-only);
//   - a main computation loop whose first-level inner loops are marked as
//     code regions;
//   - an application-specific acceptance verification;
//   - restart support: re-initialisation plus reloading persisted objects.
//
// Every demand access goes through the simulated cache hierarchy, so crash
// tests observe exactly the volatile/durable split a real NVM machine would.
package apps

import (
	"errors"
	"fmt"

	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// ErrInterrupted reports that a restarted run could not proceed — the moral
// equivalent of the segmentation faults the paper observes (response S3),
// e.g. a restored index object directing accesses out of bounds.
var ErrInterrupted = errors.New("apps: execution interrupted by corrupted state")

// Kernel is one benchmark application driven by the crash tester. A Kernel
// instance is bound to one Machine at a time: Setup registers its data
// objects there, and subsequent calls operate on that machine.
type Kernel interface {
	// Name is the benchmark's short name (e.g. "mg").
	Name() string
	// Description is the Table-1 style category description.
	Description() string
	// RegionCount returns the number of first-level code regions.
	RegionCount() int
	// NominalIters is the main-loop iteration count of an undisturbed run.
	NominalIters() int64
	// Convergent reports whether the kernel may legitimately take extra
	// iterations after a restart (iterative solvers with a convergence
	// criterion: CG, kmeans).
	Convergent() bool
	// Setup allocates and registers the kernel's data objects on m.
	// It must be deterministic so layouts agree across machines.
	Setup(m *sim.Machine)
	// Init runs the initialisation phase (also re-run on every restart).
	Init(m *sim.Machine)
	// Run executes main-loop iterations starting at from (0-based), through
	// at most maxIter total iterations (counting from iteration 0), and
	// returns how many iterations it executed. Convergent kernels may stop
	// early once converged; fixed-iteration kernels stop at NominalIters.
	// It returns ErrInterrupted if corrupted state prevents progress.
	Run(m *sim.Machine, from, maxIter int64) (executed int64, err error)
	// Result extracts the outcome scalars of a completed run; the golden
	// run's Result is the acceptance reference.
	Result(m *sim.Machine) []float64
	// Verify is the acceptance verification: it checks the current outcome
	// against the golden reference (or an internal convergence criterion).
	Verify(m *sim.Machine, golden []float64) bool
	// IterObject returns the persisted loop-iterator object ("it"). Valid
	// after Setup.
	IterObject() mem.Object
}

// IterObjectName is the conventional name of the loop-iterator bookmark
// object every kernel allocates (paper footnote 3: the iterator is always
// persisted so restart knows where the crash happened).
const IterObjectName = "it"

// AllocIter allocates the conventional iterator object on m.
func AllocIter(m *sim.Machine) mem.Object {
	return m.Space().AllocI64(IterObjectName, 1, false)
}

// Factory creates a fresh kernel instance (one per run).
type Factory func() Kernel

// Profile selects a problem size.
type Profile int

const (
	// ProfileTest is sized for fast crash-test campaigns against
	// cachesim.TestConfig (footprint a few times the 64 KiB test LLC).
	ProfileTest Profile = iota
	// ProfileBench is sized for the benchmark harness (larger footprint,
	// longer runs; still far smaller than the paper's Class C, scaled with
	// the cache).
	ProfileBench
)

// registry of kernels, in the paper's Table 1 order.
var registryOrder = []string{"cg", "mg", "ft", "is", "bt", "lu", "sp", "ep", "botsspar", "lulesh", "kmeans"}

// registered holds kernels contributed by other packages through Register;
// extOrder keeps their registration order so Names stays deterministic.
var (
	registered = map[string]func(Profile) Kernel{}
	extOrder   []string
)

// Register adds a kernel constructor under the given name, making it
// resolvable through New and listed by Names after the built-in set.
// Packages that implement kernels outside this one (e.g. the persistent KV
// workload) register themselves from an init function; importing them for
// side effects is enough to make their kernels available. Register panics on
// a duplicate or built-in name — both are programming errors.
func Register(name string, ctor func(Profile) Kernel) {
	if ctor == nil {
		panic(fmt.Sprintf("apps: nil constructor registered for %q", name))
	}
	if _, dup := registered[name]; dup {
		panic(fmt.Sprintf("apps: kernel %q registered twice", name))
	}
	for _, b := range registryOrder {
		if b == name {
			panic(fmt.Sprintf("apps: kernel %q shadows a built-in", name))
		}
	}
	registered[name] = ctor
	extOrder = append(extOrder, name)
}

// New returns a factory for the named kernel at the given profile. It
// returns an error for unknown names.
func New(name string, p Profile) (Factory, error) {
	if ctor, ok := registered[name]; ok {
		return func() Kernel { return ctor(p) }, nil
	}
	switch name {
	case "cg":
		return func() Kernel { return NewCG(p) }, nil
	case "mg":
		return func() Kernel { return NewMG(p) }, nil
	case "ft":
		return func() Kernel { return NewFT(p) }, nil
	case "is":
		return func() Kernel { return NewIS(p) }, nil
	case "bt":
		return func() Kernel { return NewBT(p) }, nil
	case "lu":
		return func() Kernel { return NewLU(p) }, nil
	case "sp":
		return func() Kernel { return NewSP(p) }, nil
	case "ep":
		return func() Kernel { return NewEP(p) }, nil
	case "botsspar":
		return func() Kernel { return NewBotsspar(p) }, nil
	case "lulesh":
		return func() Kernel { return NewLULESH(p) }, nil
	case "kmeans":
		return func() Kernel { return NewKmeans(p) }, nil
	}
	return nil, fmt.Errorf("apps: unknown kernel %q", name)
}

// Names returns all kernel names: the built-ins in Table-1 order, then any
// Register-ed kernels in registration order.
func Names() []string {
	out := make([]string, 0, len(registryOrder)+len(extOrder))
	out = append(out, registryOrder...)
	out = append(out, extOrder...)
	return out
}

// splitmix64 is the deterministic PRNG used for problem initialisation
// (a stand-in for NPB's randlc; only reproducibility matters).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 in [0,1).
func (s *splitmix64) f64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// intn returns a deterministic integer in [0, n).
func (s *splitmix64) intn(n int) int {
	return int(s.next() % uint64(n))
}
