package apps

import (
	"math"

	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// adi is the shared core of the BT and SP kernels: an ADI-style implicit
// solver over a 3-D grid with two components per cell. Each iteration
// computes a right-hand side from the committed solution, runs a line solve
// along each of the three dimensions (forward elimination and back
// substitution, in place on the rhs), and commits u += damp·rhs. BT solves
// 2x2 block-tridiagonal lines; SP solves scalar lines with a pentadiagonal
// preconditioning pass. The rhs is derived state (rebuilt every iteration
// from u), so recomputability hinges on the durable consistency of u —
// and with large read-mostly traffic streaming through the cache, u's dirty
// blocks are written back quickly, giving these kernels the strong intrinsic
// recomputability the paper measures for SP (88%).
type adi struct {
	name    string
	descr   string
	regions int
	block   bool // true: BT-style 2x2 block solves; false: SP-style scalar
	n       int
	nit     int64

	u, rhs, frct mem.Object
	coef         mem.Object // read-only per-cell coefficients (streamed)
	scal         mem.Object
	it           mem.Object
}

const adiComps = 2

// NewBT creates the BT kernel at the given profile.
func NewBT(p Profile) Kernel {
	k := &adi{name: "bt", descr: "Dense linear algebra (block-tridiagonal ADI)", regions: 15, block: true}
	if p == ProfileBench {
		k.n, k.nit = 12, 8
	} else {
		k.n, k.nit = 9, 8
	}
	return k
}

// NewSP creates the SP kernel at the given profile.
func NewSP(p Profile) Kernel {
	k := &adi{name: "sp", descr: "Dense linear algebra (scalar-pentadiagonal ADI)", regions: 16, block: false}
	if p == ProfileBench {
		k.n, k.nit = 12, 10
	} else {
		k.n, k.nit = 9, 10
	}
	return k
}

// Name implements Kernel.
func (k *adi) Name() string { return k.name }

// Description implements Kernel.
func (k *adi) Description() string { return k.descr }

// RegionCount implements Kernel.
func (k *adi) RegionCount() int { return k.regions }

// NominalIters implements Kernel.
func (k *adi) NominalIters() int64 { return k.nit }

// Convergent implements Kernel.
func (k *adi) Convergent() bool { return false }

// IterObject implements Kernel.
func (k *adi) IterObject() mem.Object { return k.it }

func (k *adi) cells() int { return k.n * k.n * k.n }

// Setup implements Kernel.
func (k *adi) Setup(m *sim.Machine) {
	s := m.Space()
	k.u = s.AllocF64("u", k.cells()*adiComps, true)
	k.rhs = s.AllocF64("rhs", k.cells()*adiComps, true)
	k.frct = s.AllocF64("frct", k.cells()*adiComps, false)
	k.coef = s.AllocF64("coef", k.cells(), false)
	k.scal = s.AllocF64("scal", 8, true)
	k.it = AllocIter(m)
}

// Init implements Kernel.
func (k *adi) Init(m *sim.Machine) {
	u, rhs, frct, coef := m.F64Stream(k.u), m.F64Stream(k.rhs), m.F64Stream(k.frct), m.F64Stream(k.coef)
	rng := splitmix64(173205)
	for i := 0; i < k.cells()*adiComps; i++ {
		u.Set(i, 0)
		rhs.Set(i, 0)
		frct.Set(i, rng.f64()*2-1)
	}
	for i := 0; i < k.cells(); i++ {
		coef.Set(i, 0.9+0.2*rng.f64())
	}
	m.F64(k.scal).StoreRun(0, make([]float64, 8))
	m.I64(k.it).Set(0, 0)
}

func (k *adi) idx(x, y, z, c int) int { return ((z*k.n+y)*k.n+x)*adiComps + c }

// stride returns the flattened index step along dimension d.
func (k *adi) stride(d int) int {
	switch d {
	case 0:
		return adiComps
	case 1:
		return k.n * adiComps
	default:
		return k.n * k.n * adiComps
	}
}

// lineSolve performs the forward-elimination half (fwd=true) or the
// back-substitution half of a tridiagonal solve along dimension d, in place
// on rhs. BT couples the two components through a 2x2 block diagonal.
func (k *adi) lineSolve(m *sim.Machine, d int, fwd bool) {
	n := k.n
	str := k.stride(d)
	cstr := str / adiComps
	// Cursor per line-solve arm: the current cell (p and p+1 share a block),
	// the previous/next cell, and the pentadiagonal second neighbour. Along
	// x the arms are block-sequential; along y/z they stride, which streams
	// handle (each access just re-resolves).
	rhs, rhsPrev := m.F64Stream(k.rhs), m.F64Stream(k.rhs)
	rhsPrev2, rhsNext := m.F64Stream(k.rhs), m.F64Stream(k.rhs)
	coef := m.F64Stream(k.coef)
	// Iterate over all lines along dimension d.
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			var base, cbase int
			switch d {
			case 0:
				base, cbase = k.idx(0, a, b, 0), (b*n+a)*n
			case 1:
				base, cbase = k.idx(a, 0, b, 0), (b*n+0)*n+a
			default:
				base, cbase = k.idx(a, b, 0, 0), (0*n+b)*n+a
			}
			if fwd {
				for i := 1; i < n; i++ {
					p := base + i*str
					cf := coef.At(cbase + i*cstr)
					diag := 4.0 + cf
					if k.block {
						// 2x2 block: couple the components.
						r0 := (rhs.At(p) + rhsPrev.At(p-str)) / diag
						r1 := (rhs.At(p+1) + rhsPrev.At(p+1-str)) / diag
						rhs.Set(p, r0+0.05*r1)
						rhs.Set(p+1, r1+0.05*r0)
					} else {
						// Scalar with a second-neighbour (pentadiagonal) term.
						prev2 := 0.0
						if i >= 2 {
							prev2 = rhsPrev2.At(p - 2*str)
						}
						rhs.Set(p, (rhs.At(p)+rhsPrev.At(p-str)+0.2*prev2)/diag)
						rhs.Set(p+1, (rhs.At(p+1)+rhsPrev.At(p+1-str))/diag)
					}
				}
			} else {
				for i := n - 2; i >= 0; i-- {
					p := base + i*str
					rhs.Set(p, rhs.At(p)+0.25*rhsNext.At(p+str))
					rhs.Set(p+1, rhs.At(p+1)+0.25*rhsNext.At(p+1+str))
				}
			}
		}
	}
}

// Run implements Kernel.
func (k *adi) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	if maxIter > k.nit {
		maxIter = k.nit
	}
	scal := m.F64(k.scal)
	itv := m.I64(k.it)
	n := k.n

	// One stream per assembly arm; the line solves build their own cursors.
	u, rhs, frct := m.F64Stream(k.u), m.F64Stream(k.rhs), m.F64Stream(k.frct)
	uM, uP := m.F64Stream(k.u), m.F64Stream(k.u)

	m.MainLoopBegin()
	defer m.MainLoopEnd()
	var executed int64
	for it := from; it < maxIter; it++ {
		m.BeginIteration(it)
		region := 0

		// Rhs assembly, one region per dimension's flux contribution.
		for d := 0; d < 3; d++ {
			m.BeginRegion(region)
			var dx, dy, dz int
			switch d {
			case 0:
				dx = 1
			case 1:
				dy = 1
			default:
				dz = 1
			}
			for z := 0; z < n; z++ {
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						for c := 0; c < adiComps; c++ {
							interior := x > 0 && x < n-1 && y > 0 && y < n-1 && z > 0 && z < n-1
							flux := 0.0
							if interior {
								flux = uM.At(k.idx(x-dx, y-dy, z-dz, c)) - 2*u.At(k.idx(x, y, z, c)) +
									uP.At(k.idx(x+dx, y+dy, z+dz, c))
							}
							prev := 0.0
							if d > 0 {
								prev = rhs.At(k.idx(x, y, z, c))
							} else {
								// The first pass rebuilds the whole rhs from u
								// and the forcing term, boundaries included.
								prev = frct.At(k.idx(x, y, z, c)) - 0.4*u.At(k.idx(x, y, z, c))
							}
							rhs.Set(k.idx(x, y, z, c), prev+flux)
						}
					}
				}
			}
			m.EndRegion(region)
			region++
		}

		// Dissipation region.
		m.BeginRegion(region)
		for i := 0; i < k.cells()*adiComps; i += adiComps {
			v0, v1 := rhs.At(i), rhs.At(i+1)
			rhs.Set(i, v0-0.02*v1)
			rhs.Set(i+1, v1-0.02*v0)
		}
		m.EndRegion(region)
		region++

		// Scaling region (SP additionally runs its txinvr transform).
		m.BeginRegion(region)
		for i := 0; i < k.cells()*adiComps; i++ {
			rhs.Set(i, rhs.At(i)*0.8)
		}
		m.EndRegion(region)
		region++
		if !k.block {
			m.BeginRegion(region) // txinvr
			for i := 0; i < k.cells()*adiComps; i += adiComps {
				v0, v1 := rhs.At(i), rhs.At(i+1)
				rhs.Set(i, 0.9*v0+0.1*v1)
				rhs.Set(i+1, 0.1*v0+0.9*v1)
			}
			m.EndRegion(region)
			region++
		}

		// Line solves: forward and backward per dimension.
		for d := 0; d < 3; d++ {
			m.BeginRegion(region)
			k.lineSolve(m, d, true)
			m.EndRegion(region)
			region++
			m.BeginRegion(region)
			k.lineSolve(m, d, false)
			m.EndRegion(region)
			region++
		}

		// Add: commit the update into u (in place).
		m.BeginRegion(region)
		const damp = 0.6
		for i := 0; i < k.cells()*adiComps; i++ {
			u.Set(i, u.At(i)+damp*rhs.At(i))
		}
		m.EndRegion(region)
		region++

		// Boundary-condition region: damp the domain faces.
		m.BeginRegion(region)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < adiComps; c++ {
					u.Set(k.idx(0, a, b, c), 0.5*u.At(k.idx(1, a, b, c)))
					u.Set(k.idx(n-1, a, b, c), 0.5*u.At(k.idx(n-2, a, b, c)))
				}
			}
		}
		m.EndRegion(region)
		region++

		// Norm regions.
		m.BeginRegion(region)
		var rn float64
		for i := 0; i < k.cells()*adiComps; i += 5 {
			rn += rhs.At(i) * rhs.At(i)
		}
		scal.Set(0, math.Sqrt(rn))
		m.EndRegion(region)
		region++
		m.BeginRegion(region)
		var un float64
		for i := 0; i < k.cells()*adiComps; i += 5 {
			un += u.At(i) * u.At(i)
		}
		scal.Set(1, math.Sqrt(un))
		m.EndRegion(region)

		itv.Set(0, it+1)
		m.EndIteration(it)
		executed++
	}
	return executed, nil
}

// Result implements Kernel.
func (k *adi) Result(m *sim.Machine) []float64 {
	scal := m.F64(k.scal)
	u := m.F64Stream(k.u)
	var sum float64
	for i := 0; i < k.cells()*adiComps; i += 3 {
		sum += u.At(i) * float64(i%5+1)
	}
	return []float64{scal.At(0), scal.At(1), sum}
}

// Verify implements Kernel.
func (k *adi) Verify(m *sim.Machine, golden []float64) bool {
	got := k.Result(m)
	for i := range got {
		if !relClose(got[i], golden[i], 1e-9) {
			return false
		}
	}
	return true
}
