package apps

import (
	"math"

	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// FT is a simplified NPB-FT: a spectral solver that evolves a complex field
// in frequency space and transforms it back for a checksum every time step.
// Regions per iteration:
//
//	R0: evolve    u *= e^{iφ(k)}  (in-place complex rotation per mode)
//	R1: FFT       inverse FFT of the first half of the rows into w
//	R2: FFT       inverse FFT of the second half of the rows
//	R3: checksum  strided checksum of w recorded for this step
//
// The evolve step is an in-place, non-idempotent update: replaying a crashed
// iteration whose partially evolved field already leaked to NVM rotates
// those modes twice. This is why FT is the paper's weakest EasyCrash case
// (it cannot meet the τ requirement at small t_s): even with flushing, only
// crashes before the first eviction of an evolved block replay exactly.
type FT struct {
	rows, cols int // field of rows x cols complex values
	nit        int64

	u, w mem.Object // complex fields, interleaved re/im (candidates)
	sums mem.Object // per-iteration checksums (candidate)
	it   mem.Object
}

// NewFT creates an FT kernel at the given profile.
func NewFT(p Profile) *FT {
	switch p {
	case ProfileBench:
		return &FT{rows: 32, cols: 128, nit: 8}
	default:
		return &FT{rows: 32, cols: 64, nit: 8}
	}
}

// Name implements Kernel.
func (k *FT) Name() string { return "ft" }

// Description implements Kernel.
func (k *FT) Description() string { return "Spectral method (FFT evolution)" }

// RegionCount implements Kernel.
func (k *FT) RegionCount() int { return 4 }

// NominalIters implements Kernel.
func (k *FT) NominalIters() int64 { return k.nit }

// Convergent implements Kernel.
func (k *FT) Convergent() bool { return false }

// IterObject implements Kernel.
func (k *FT) IterObject() mem.Object { return k.it }

// Setup implements Kernel.
func (k *FT) Setup(m *sim.Machine) {
	s := m.Space()
	n := k.rows * k.cols
	k.u = s.AllocF64("u", 2*n, true)
	k.w = s.AllocF64("w", 2*n, true)
	k.sums = s.AllocF64("sums", int(2*k.nit), true)
	k.it = AllocIter(m)
}

// Init implements Kernel: a deterministic pseudo-random complex field.
func (k *FT) Init(m *sim.Machine) {
	u, w, sums := m.F64Stream(k.u), m.F64Stream(k.w), m.F64Stream(k.sums)
	rng := splitmix64(271828)
	for i := 0; i < k.rows*k.cols; i++ {
		u.Set(2*i, rng.f64()*2-1)
		u.Set(2*i+1, rng.f64()*2-1)
		w.Set(2*i, 0)
		w.Set(2*i+1, 0)
	}
	for i := 0; i < sums.Len(); i++ {
		sums.Set(i, 0)
	}
	m.I64(k.it).Set(0, 0)
}

// phase returns the per-mode rotation angle (a stand-in for exp(-4π²it·k²)).
func (k *FT) phase(row, col int) float64 {
	kx := col
	if kx > k.cols/2 {
		kx = k.cols - kx
	}
	ky := row
	if ky > k.rows/2 {
		ky = k.rows - ky
	}
	return -0.0007 * float64(kx*kx+ky*ky)
}

// fftRow runs an in-place iterative radix-2 FFT over one row of w. Streams
// carry all the traffic: the butterfly a/b arms are block-sequential within
// each stage, and even the bit-reversed j side is correct (if rarely
// memoized) on a stream, since streams are access-for-access equivalent to
// the scalar path for any pattern.
func (k *FT) fftRow(m *sim.Machine, row int) {
	n := k.cols
	base := 2 * row * n
	si, sj := m.F64Stream(k.w), m.F64Stream(k.w)
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			wi0, wi1 := si.At(base+2*i), si.At(base+2*i+1)
			wj0, wj1 := sj.At(base+2*j), sj.At(base+2*j+1)
			si.Set(base+2*i, wj0)
			si.Set(base+2*i+1, wj1)
			sj.Set(base+2*j, wi0)
			sj.Set(base+2*j+1, wi1)
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	// Butterflies: one cursor per arm.
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += size {
			cr, ci := 1.0, 0.0
			for p := 0; p < size/2; p++ {
				i0 := base + 2*(start+p)
				i1 := base + 2*(start+p+size/2)
				ar, ai := si.At(i0), si.At(i0+1)
				br, bi := sj.At(i1), sj.At(i1+1)
				tr := br*cr - bi*ci
				ti := br*ci + bi*cr
				si.Set(i0, ar+tr)
				si.Set(i0+1, ai+ti)
				sj.Set(i1, ar-tr)
				sj.Set(i1+1, ai-ti)
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
}

// Run implements Kernel.
func (k *FT) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	if maxIter > k.nit {
		maxIter = k.nit
	}
	wSlice := m.F64(k.w)
	itv := m.I64(k.it)
	n := k.rows * k.cols

	// The evolve and copy loops walk u and w sequentially; only the strided
	// checksum is irregular enough to stay on the scalar slice.
	u, w, sums := m.F64Stream(k.u), m.F64Stream(k.w), m.F64Stream(k.sums)
	uc := m.F64Stream(k.u)

	m.MainLoopBegin()
	defer m.MainLoopEnd()
	var executed int64
	for it := from; it < maxIter; it++ {
		m.BeginIteration(it)

		// R0: evolve the frequency field in place.
		m.BeginRegion(0)
		for row := 0; row < k.rows; row++ {
			for col := 0; col < k.cols; col++ {
				i := 2 * (row*k.cols + col)
				ph := k.phase(row, col)
				cr, ci := math.Cos(ph), math.Sin(ph)
				re, im := u.At(i), u.At(i+1)
				u.Set(i, re*cr-im*ci)
				u.Set(i+1, re*ci+im*cr)
			}
		}
		m.EndRegion(0)

		// R1/R2: copy u into w and inverse-transform each row half.
		for half := 0; half < 2; half++ {
			m.BeginRegion(1 + half)
			lo, hi := half*k.rows/2, (half+1)*k.rows/2
			for row := lo; row < hi; row++ {
				for col := 0; col < k.cols; col++ {
					i := 2 * (row*k.cols + col)
					w.Set(i, uc.At(i))
					w.Set(i+1, uc.At(i+1))
				}
				k.fftRow(m, row)
			}
			m.EndRegion(1 + half)
		}

		// R3: strided checksum of the transformed field.
		m.BeginRegion(3)
		var cr, ci float64
		for j := 0; j < 128; j++ {
			q := (j * 541) % n
			//eclint:allow batchedaccess — the checksum stride wraps mod n, not block-regular
			cr, ci = cr+wSlice.At(2*q), ci+wSlice.At(2*q+1)
		}
		sums.Set(int(2*it), cr)
		sums.Set(int(2*it+1), ci)
		m.EndRegion(3)

		itv.Set(0, it+1)
		m.EndIteration(it)
		executed++
	}
	return executed, nil
}

// Result implements Kernel: all per-iteration checksums.
func (k *FT) Result(m *sim.Machine) []float64 {
	sums := m.F64Stream(k.sums)
	out := make([]float64, sums.Len())
	for i := range out {
		out[i] = sums.At(i)
	}
	return out
}

// Verify implements Kernel: every step's checksum must match the reference
// (NPB FT verifies the checksum sequence).
func (k *FT) Verify(m *sim.Machine, golden []float64) bool {
	got := k.Result(m)
	if len(got) != len(golden) {
		return false
	}
	for i := range got {
		if !relClose(got[i], golden[i], 1e-9) {
			return false
		}
	}
	return true
}
