package apps

import (
	"math"

	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// Kmeans is Lloyd's k-means over a fixed point set, the Rodinia workload
// the paper evaluates. The whole iteration is a single code region (the
// paper's Table 1 lists one region for kmeans):
//
//	R0: assign every point to its nearest centroid, accumulate per-cluster
//	    sums, recompute and commit the centroids, count changed assignments
//
// The points are read-only; the only meaningful cross-iteration state is
// the tiny centroid array, which stays hot (and therefore dirty) in the
// cache — exactly why the paper finds kmeans' critical data is 20 bytes and
// why, without flushing, its durable copy is hopelessly stale. Restarting
// from stale centroids still converges, just with many extra iterations
// (Table 1 reports 18.2); with EasyCrash the replay is exact.
type Kmeans struct {
	n, dims, k int
	maxIt      int64

	points    mem.Object // read-only
	centroids mem.Object // candidate: the critical 20-byte-class object
	csums     mem.Object // per-iteration accumulators (candidates)
	ccounts   mem.Object
	assign    mem.Object // assignment vector (candidate)
	scal      mem.Object // changed-count bookkeeping (candidate)
	it        mem.Object
}

// NewKmeans creates a kmeans kernel at the given profile.
func NewKmeans(p Profile) *Kmeans {
	switch p {
	case ProfileBench:
		return &Kmeans{n: 3072, dims: 2, k: 4, maxIt: 60}
	default:
		return &Kmeans{n: 1536, dims: 2, k: 4, maxIt: 60}
	}
}

// Name implements Kernel.
func (k *Kmeans) Name() string { return "kmeans" }

// Description implements Kernel.
func (k *Kmeans) Description() string { return "Data mining (Lloyd's k-means)" }

// RegionCount implements Kernel.
func (k *Kmeans) RegionCount() int { return 1 }

// NominalIters implements Kernel: the iteration budget; the golden run
// stops when assignments stabilise.
func (k *Kmeans) NominalIters() int64 { return k.maxIt }

// Convergent implements Kernel.
func (k *Kmeans) Convergent() bool { return true }

// IterObject implements Kernel.
func (k *Kmeans) IterObject() mem.Object { return k.it }

// Setup implements Kernel.
func (k *Kmeans) Setup(m *sim.Machine) {
	s := m.Space()
	k.points = s.AllocF64("points", k.n*k.dims, false)
	k.centroids = s.AllocF64("centroids", k.k*k.dims, true)
	k.csums = s.AllocF64("csums", k.k*k.dims, true)
	k.ccounts = s.AllocI64("ccounts", k.k, true)
	k.assign = s.AllocI64("assign", k.n, true)
	k.scal = s.AllocF64("scal", 8, true)
	k.it = AllocIter(m)
}

// Init implements Kernel: four fuzzy clusters and deliberately poor initial
// centroids (so Lloyd's needs a good number of iterations).
func (k *Kmeans) Init(m *sim.Machine) {
	points, centroids := m.F64Stream(k.points), m.F64Stream(k.centroids)
	csums := m.F64Stream(k.csums)
	ccounts, assign := m.I64Stream(k.ccounts), m.I64Stream(k.assign)
	rng := splitmix64(577215)
	centersX := [4]float64{0, 8, 0, 8}
	centersY := [4]float64{0, 0, 8, 8}
	for i := 0; i < k.n; i++ {
		c := i % 4
		points.Set(i*k.dims, centersX[c]+3.0*(rng.f64()*2-1))
		points.Set(i*k.dims+1, centersY[c]+3.0*(rng.f64()*2-1))
		assign.Set(i, -1)
	}
	for c := 0; c < k.k; c++ {
		// All initial centroids near the origin cluster.
		centroids.Set(c*k.dims, 0.5*float64(c))
		centroids.Set(c*k.dims+1, 0.25*float64(c))
		ccounts.Set(c, 0)
		for d := 0; d < k.dims; d++ {
			csums.Set(c*k.dims+d, 0)
		}
	}
	m.F64(k.scal).StoreRun(0, make([]float64, 8))
	m.I64(k.it).Set(0, 0)
}

// Run implements Kernel.
func (k *Kmeans) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	if maxIter > 2*k.maxIt {
		maxIter = 2 * k.maxIt
	}
	scal := m.F64(k.scal)
	itv := m.I64(k.it)

	// Streams throughout: the centroid array, per-cluster sums and counts
	// each fit in one or two 64 B blocks, so even their data-dependent
	// (best-indexed) accesses stay memoized.
	points, centroids := m.F64Stream(k.points), m.F64Stream(k.centroids)
	csums := m.F64Stream(k.csums)
	ccounts, assign := m.I64Stream(k.ccounts), m.I64Stream(k.assign)

	m.MainLoopBegin()
	defer m.MainLoopEnd()
	var executed int64
	for it := from; it < maxIter; it++ {
		m.BeginIteration(it)
		m.BeginRegion(0)

		for c := 0; c < k.k; c++ {
			ccounts.Set(c, 0)
			for d := 0; d < k.dims; d++ {
				csums.Set(c*k.dims+d, 0)
			}
		}
		var changed int64
		for i := 0; i < k.n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k.k; c++ {
				var dist float64
				for d := 0; d < k.dims; d++ {
					diff := points.At(i*k.dims+d) - centroids.At(c*k.dims+d)
					dist += diff * diff
				}
				if dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign.At(i) != int64(best) {
				changed++
				assign.Set(i, int64(best))
			}
			ccounts.Set(best, ccounts.At(best)+1)
			for d := 0; d < k.dims; d++ {
				csums.Set(best*k.dims+d, csums.At(best*k.dims+d)+points.At(i*k.dims+d))
			}
		}
		for c := 0; c < k.k; c++ {
			cnt := ccounts.At(c)
			if cnt == 0 {
				continue // keep the old centroid for empty clusters
			}
			for d := 0; d < k.dims; d++ {
				centroids.Set(c*k.dims+d, csums.At(c*k.dims+d)/float64(cnt))
			}
		}
		scal.Set(0, float64(changed))

		m.EndRegion(0)
		itv.Set(0, it+1)
		m.EndIteration(it)
		executed++
		if changed == 0 {
			break // assignments stabilised
		}
	}
	return executed, nil
}

// wcss computes the within-cluster sum of squares for the current state.
func (k *Kmeans) wcss(m *sim.Machine) float64 {
	points, centroids := m.F64Stream(k.points), m.F64Stream(k.centroids)
	assign := m.I64Stream(k.assign)
	var total float64
	for i := 0; i < k.n; i++ {
		c := int(assign.At(i))
		if c < 0 || c >= k.k {
			return math.Inf(1)
		}
		for d := 0; d < k.dims; d++ {
			diff := points.At(i*k.dims+d) - centroids.At(c*k.dims+d)
			total += diff * diff
		}
	}
	return total
}

// Result implements Kernel: converged flag and clustering quality.
func (k *Kmeans) Result(m *sim.Machine) []float64 {
	return []float64{m.F64(k.scal).At(0), k.wcss(m)}
}

// Verify implements Kernel: the clustering must have converged (no
// assignment changes in the final iteration) and its quality must be within
// a fidelity threshold of the reference — a degenerate local optimum from a
// badly corrupted restart fails.
func (k *Kmeans) Verify(m *sim.Machine, golden []float64) bool {
	got := k.Result(m)
	if got[0] != 0 {
		return false // did not converge
	}
	if math.IsNaN(got[1]) || math.IsInf(got[1], 0) {
		return false
	}
	return got[1] <= golden[1]*1.05
}
