package apps

import (
	"math"

	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// MG is a simplified NPB-MG: a two-grid multigrid solver for the 3-D Poisson
// equation with a 7-point stencil. Its main loop has the four first-level
// code regions the paper studies (Figure 2a / Figure 4b):
//
//	R0: residual       r = v - A u
//	R1: coarse solve   full-weighting restriction of r, Jacobi relaxation
//	R2: update         unew = smooth(u) + damped prolonged correction
//	R3: commit         u = unew
//
// The solution u carries across iterations and is rewritten only in the
// commit region, as a pure function of the previous iterate — so a restart
// replays the crashed iteration bit-exactly if and only if the durable copy
// of u matches the last committed generation. That is exactly the property
// EasyCrash's selective flushing restores, and why persisting u (and
// persisting it at the commit region R3) dominates recomputability while
// persisting r — recomputed from u every iteration — is useless (the
// paper's Figure 4).
type MG struct {
	n   int // fine grid edge (n^3 points)
	nc  int // coarse grid edge
	nit int64

	u, unew, r, v, uc, rc mem.Object
	it                    mem.Object
}

// NewMG creates an MG kernel at the given profile.
func NewMG(p Profile) *MG {
	switch p {
	case ProfileBench:
		return &MG{n: 22, nc: 11, nit: 12}
	default:
		return &MG{n: 14, nc: 7, nit: 10}
	}
}

// Name implements Kernel.
func (k *MG) Name() string { return "mg" }

// Description implements Kernel.
func (k *MG) Description() string { return "Structured grids (multigrid Poisson)" }

// RegionCount implements Kernel.
func (k *MG) RegionCount() int { return 4 }

// NominalIters implements Kernel.
func (k *MG) NominalIters() int64 { return k.nit }

// Convergent implements Kernel: MG runs a fixed number of cycles.
func (k *MG) Convergent() bool { return false }

// IterObject implements Kernel.
func (k *MG) IterObject() mem.Object { return k.it }

// Setup implements Kernel.
func (k *MG) Setup(m *sim.Machine) {
	s := m.Space()
	n3 := k.n * k.n * k.n
	nc3 := k.nc * k.nc * k.nc
	k.u = s.AllocF64("u", n3, true)
	k.unew = s.AllocF64("unew", n3, true)
	k.r = s.AllocF64("r", n3, true)
	k.v = s.AllocF64("v", n3, false) // read-only after Init
	k.uc = s.AllocF64("uc", nc3, true)
	k.rc = s.AllocF64("rc", nc3, true)
	k.it = AllocIter(m)
}

// Init implements Kernel: zero solution, sparse ±1 charges as RHS.
func (k *MG) Init(m *sim.Machine) {
	u, unew, r, v := m.F64Stream(k.u), m.F64Stream(k.unew), m.F64Stream(k.r), m.F64Stream(k.v)
	uc, rc := m.F64Stream(k.uc), m.F64Stream(k.rc)
	for i := 0; i < u.Len(); i++ {
		u.Set(i, 0)
		unew.Set(i, 0)
		r.Set(i, 0)
		v.Set(i, 0)
	}
	for i := 0; i < uc.Len(); i++ {
		uc.Set(i, 0)
		rc.Set(i, 0)
	}
	rng := splitmix64(20200923)
	interior := k.n - 2
	for c := 0; c < 20; c++ {
		x := 1 + rng.intn(interior)
		y := 1 + rng.intn(interior)
		z := 1 + rng.intn(interior)
		sign := 1.0
		if c%2 == 1 {
			sign = -1
		}
		v.Set(k.idx(x, y, z), sign)
	}
	m.I64(k.it).Set(0, 0)
}

func (k *MG) idx(x, y, z int) int  { return (z*k.n+y)*k.n + x }
func (k *MG) idxc(x, y, z int) int { return (z*k.nc+y)*k.nc + x }

// Run implements Kernel.
func (k *MG) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	if maxIter > k.nit {
		maxIter = k.nit // fixed-iteration kernel
	}
	itv := m.I64(k.it)
	n, nc := k.n, k.nc

	// One stream per stencil arm; the restriction's eight fine-grid reads
	// reduce to four row cursors (the dx pair is block-adjacent).
	u, unew, v := m.F64Stream(k.u), m.F64Stream(k.unew), m.F64Stream(k.v)
	uXm, uXp := m.F64Stream(k.u), m.F64Stream(k.u)
	uYm, uYp := m.F64Stream(k.u), m.F64Stream(k.u)
	uZm, uZp := m.F64Stream(k.u), m.F64Stream(k.u)
	r := m.F64Stream(k.r)
	var rRow [4]*sim.F64Stream
	for i := range rRow {
		rRow[i] = m.F64Stream(k.r)
	}
	uc, rc := m.F64Stream(k.uc), m.F64Stream(k.rc)
	ucXm, ucXp := m.F64Stream(k.uc), m.F64Stream(k.uc)
	ucYm, ucYp := m.F64Stream(k.uc), m.F64Stream(k.uc)
	ucZm, ucZp := m.F64Stream(k.uc), m.F64Stream(k.uc)

	m.MainLoopBegin()
	defer m.MainLoopEnd()
	var executed int64
	for it := from; it < maxIter; it++ {
		m.BeginIteration(it)

		// R0: residual r = v - A u (7-point Laplacian).
		m.BeginRegion(0)
		for z := 1; z < n-1; z++ {
			for y := 1; y < n-1; y++ {
				for x := 1; x < n-1; x++ {
					c := u.At(k.idx(x, y, z))
					nb := uXm.At(k.idx(x-1, y, z)) + uXp.At(k.idx(x+1, y, z)) +
						uYm.At(k.idx(x, y-1, z)) + uYp.At(k.idx(x, y+1, z)) +
						uZm.At(k.idx(x, y, z-1)) + uZp.At(k.idx(x, y, z+1))
					r.Set(k.idx(x, y, z), v.At(k.idx(x, y, z))-(6*c-nb))
				}
			}
		}
		m.EndRegion(0)

		// R1: coarse-grid solve — full-weighting restriction, then Jacobi
		// relaxation of the coarse error equation.
		m.BeginRegion(1)
		for z := 1; z < nc-1; z++ {
			for y := 1; y < nc-1; y++ {
				for x := 1; x < nc-1; x++ {
					fx, fy, fz := 2*x, 2*y, 2*z
					var s float64
					for dz := 0; dz < 2; dz++ {
						for dy := 0; dy < 2; dy++ {
							row := rRow[2*dz+dy]
							for dx := 0; dx < 2; dx++ {
								s += row.At(k.idx(fx+dx, fy+dy, fz+dz))
							}
						}
					}
					rc.Set(k.idxc(x, y, z), s/8)
					uc.Set(k.idxc(x, y, z), 0)
				}
			}
		}
		for sweep := 0; sweep < 4; sweep++ {
			for z := 1; z < nc-1; z++ {
				for y := 1; y < nc-1; y++ {
					for x := 1; x < nc-1; x++ {
						nb := ucXm.At(k.idxc(x-1, y, z)) + ucXp.At(k.idxc(x+1, y, z)) +
							ucYm.At(k.idxc(x, y-1, z)) + ucYp.At(k.idxc(x, y+1, z)) +
							ucZm.At(k.idxc(x, y, z-1)) + ucZp.At(k.idxc(x, y, z+1))
						uc.Set(k.idxc(x, y, z), (4*rc.At(k.idxc(x, y, z))+nb)/6)
					}
				}
			}
		}
		m.EndRegion(1)

		// R2: fused update — weighted-Jacobi smoothing of u plus the damped
		// prolonged coarse correction, written out of place into unew (a
		// pure function of u, v and uc).
		m.BeginRegion(2)
		const (
			omega = 0.8
			damp  = 0.5
		)
		for z := 1; z < n-1; z++ {
			for y := 1; y < n-1; y++ {
				for x := 1; x < n-1; x++ {
					c := u.At(k.idx(x, y, z))
					nb := uXm.At(k.idx(x-1, y, z)) + uXp.At(k.idx(x+1, y, z)) +
						uYm.At(k.idx(x, y-1, z)) + uYp.At(k.idx(x, y+1, z)) +
						uZm.At(k.idx(x, y, z-1)) + uZp.At(k.idx(x, y, z+1))
					jac := (1-omega)*c + omega*(v.At(k.idx(x, y, z))+nb)/6
					cx, cy, cz := x/2, y/2, z/2
					if cx >= nc-1 {
						cx = nc - 2
					}
					if cy >= nc-1 {
						cy = nc - 2
					}
					if cz >= nc-1 {
						cz = nc - 2
					}
					unew.Set(k.idx(x, y, z), jac+damp*uc.At(k.idxc(cx, cy, cz)))
				}
			}
		}
		m.EndRegion(2)

		// R3: commit unew into u.
		m.BeginRegion(3)
		for i := 0; i < u.Len(); i++ {
			u.Set(i, unew.At(i))
		}
		m.EndRegion(3)

		itv.Set(0, it+1) // bookmark the next iteration
		m.EndIteration(it)
		executed++
	}
	return executed, nil
}

// Result implements Kernel: the L2 norm of the final residual.
func (k *MG) Result(m *sim.Machine) []float64 {
	u, v := m.F64Stream(k.u), m.F64Stream(k.v)
	uXm, uXp := m.F64Stream(k.u), m.F64Stream(k.u)
	uYm, uYp := m.F64Stream(k.u), m.F64Stream(k.u)
	uZm, uZp := m.F64Stream(k.u), m.F64Stream(k.u)
	n := k.n
	var sum float64
	for z := 1; z < n-1; z++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				c := u.At(k.idx(x, y, z))
				nb := uXm.At(k.idx(x-1, y, z)) + uXp.At(k.idx(x+1, y, z)) +
					uYm.At(k.idx(x, y-1, z)) + uYp.At(k.idx(x, y+1, z)) +
					uZm.At(k.idx(x, y, z-1)) + uZp.At(k.idx(x, y, z+1))
				res := v.At(k.idx(x, y, z)) - (6*c - nb)
				sum += res * res
			}
		}
	}
	return []float64{math.Sqrt(sum)}
}

// Verify implements Kernel: NPB-style strict comparison of the final
// residual norm against the reference run.
func (k *MG) Verify(m *sim.Machine, golden []float64) bool {
	return relClose(k.Result(m)[0], golden[0], 1e-9)
}

// relClose reports whether got is within relative tolerance tol of want
// (absolute when want is 0), and finite.
func relClose(got, want, tol float64) bool {
	if math.IsNaN(got) || math.IsInf(got, 0) {
		return false
	}
	d := math.Abs(got - want)
	if want == 0 {
		return d <= tol
	}
	return d <= tol*math.Abs(want)
}
