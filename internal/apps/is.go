package apps

import (
	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// isKMax is the key value range; stored keys are tagged with their epoch
// (iteration) as stored = epoch*isKMax + key, the moral equivalent of NPB
// IS's per-iteration pointer arithmetic into reallocated buffers.
const isKMax = 1 << 20

// IS is a simplified NPB-IS: an iterative integer bucket sort. Each
// iteration ranks the key array by counting sort and derives the next
// epoch's keys from the ranked order. Regions:
//
//	R0: clear bucket counts
//	R1: detag keys and histogram them (a stale-epoch key here is the
//	    paper's segmentation fault: an index outside the valid range)
//	R2: prefix-sum bucket directory
//	R3: scatter ranks into the permutation
//	R4: partial rank verification
//	R5: derive next keys from the ranked order into the staging buffer
//	R6: retag and commit the staged keys
//	R7: iteration checksum
//
// Without persistence a crash leaves NVM keys from older epochs; the
// restart detags them into out-of-range values and is interrupted — the
// paper observes IS cannot restart (S3, segfault) without EasyCrash.
type IS struct {
	n        int
	nbuckets int
	nit      int64

	keys, stage mem.Object // epoch-tagged keys and staging buffer (candidates)
	perm        mem.Object // rank permutation (candidate)
	counts, dir mem.Object // per-iteration histogram state (rebuilt)
	chk         mem.Object // running checksum (candidate)
	it          mem.Object
}

// NewIS creates an IS kernel at the given profile.
func NewIS(p Profile) *IS {
	switch p {
	case ProfileBench:
		return &IS{n: 12288, nbuckets: 512, nit: 10}
	default:
		return &IS{n: 6144, nbuckets: 512, nit: 10}
	}
}

// Name implements Kernel.
func (k *IS) Name() string { return "is" }

// Description implements Kernel.
func (k *IS) Description() string { return "Graph traversal (integer bucket sort)" }

// RegionCount implements Kernel.
func (k *IS) RegionCount() int { return 8 }

// NominalIters implements Kernel.
func (k *IS) NominalIters() int64 { return k.nit }

// Convergent implements Kernel.
func (k *IS) Convergent() bool { return false }

// IterObject implements Kernel.
func (k *IS) IterObject() mem.Object { return k.it }

// Setup implements Kernel.
func (k *IS) Setup(m *sim.Machine) {
	s := m.Space()
	k.keys = s.AllocI64("keys", k.n, true)
	k.stage = s.AllocI64("stage", k.n, true)
	k.perm = s.AllocI64("perm", k.n, true)
	k.counts = s.AllocI64("counts", k.nbuckets, true)
	k.dir = s.AllocI64("dir", k.nbuckets+1, true)
	k.chk = s.AllocF64("chk", 8, true)
	k.it = AllocIter(m)
}

// Init implements Kernel: pseudo-random keys tagged with epoch 0.
func (k *IS) Init(m *sim.Machine) {
	keys, stage, perm := m.I64Stream(k.keys), m.I64Stream(k.stage), m.I64Stream(k.perm)
	counts, dir := m.I64Stream(k.counts), m.I64Stream(k.dir)
	rng := splitmix64(161803)
	for i := 0; i < k.n; i++ {
		keys.Set(i, int64(rng.intn(isKMax))) // epoch 0 tag is zero
		stage.Set(i, 0)
		perm.Set(i, 0)
	}
	for b := 0; b < k.nbuckets; b++ {
		counts.Set(b, 0)
		dir.Set(b, 0)
	}
	dir.Set(k.nbuckets, 0)
	m.F64(k.chk).StoreRun(0, make([]float64, 8))
	m.I64(k.it).Set(0, 0)
}

// Run implements Kernel.
func (k *IS) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	if maxIter > k.nit {
		maxIter = k.nit
	}
	keys, stage, perm := m.I64(k.keys), m.I64(k.stage), m.I64(k.perm)
	counts, dir := m.I64(k.counts), m.I64(k.dir)
	chk := m.F64(k.chk)
	itv := m.I64(k.it)
	bshift := int64(isKMax / k.nbuckets)

	// Streams cover the sequential walks; the histogram increments, rank
	// scatter and sampled verification are data-dependent and stay scalar.
	keysS, stageS, permS := m.I64Stream(k.keys), m.I64Stream(k.stage), m.I64Stream(k.perm)
	countsS, dirS := m.I64Stream(k.counts), m.I64Stream(k.dir)

	m.MainLoopBegin()
	defer m.MainLoopEnd()
	var executed int64
	for it := from; it < maxIter; it++ {
		m.BeginIteration(it)
		epoch := it * isKMax

		// R0: clear the bucket counts.
		m.BeginRegion(0)
		for b := 0; b < k.nbuckets; b++ {
			countsS.Set(b, 0)
		}
		m.EndRegion(0)

		// R1: detag and histogram. A key from the wrong epoch detags out
		// of range — the restart-time segmentation fault.
		m.BeginRegion(1)
		for i := 0; i < k.n; i++ {
			v := keysS.At(i) - epoch
			if v < 0 || v >= isKMax {
				m.MainLoopEnd()
				return executed, ErrInterrupted
			}
			b := v / bshift
			//eclint:allow batchedaccess — data-dependent histogram increment
			counts.Set(int(b), counts.At(int(b))+1)
		}
		m.EndRegion(1)

		// R2: prefix-sum the bucket directory.
		m.BeginRegion(2)
		var acc int64
		for b := 0; b < k.nbuckets; b++ {
			dirS.Set(b, acc)
			acc += countsS.At(b)
		}
		dirS.Set(k.nbuckets, acc)
		m.EndRegion(2)

		// R3: scatter the ranks.
		m.BeginRegion(3)
		for i := 0; i < k.n; i++ {
			v := keysS.At(i) - epoch
			b := int(v / bshift)
			//eclint:allow batchedaccess — data-dependent directory read
			r := dir.At(b)
			if r < 0 || r >= int64(k.n) {
				m.MainLoopEnd()
				return executed, ErrInterrupted
			}
			//eclint:allow batchedaccess — data-dependent directory bump
			dir.Set(b, r+1)
			//eclint:allow batchedaccess — rank scatter through the computed rank
			perm.Set(int(r), int64(i))
		}
		m.EndRegion(3)

		// R4: partial verification — bucket of perm[i] must be
		// non-decreasing on a sample.
		m.BeginRegion(4)
		prev := int64(-1)
		for s := 0; s < 64; s++ {
			i := s * (k.n / 64)
			//eclint:allow batchedaccess — sparse sample through the permutation
			b := (keys.At(int(perm.At(i))) - epoch) / bshift
			if b < prev {
				m.MainLoopEnd()
				return executed, ErrInterrupted
			}
			prev = b
		}
		m.EndRegion(4)

		// R5: derive the next epoch's keys from the ranked order.
		m.BeginRegion(5)
		for i := 0; i < k.n; i++ {
			src := int(permS.At(i))
			//eclint:allow batchedaccess — gather through the rank permutation
			v := keys.At(src) - epoch
			nv := (v*6364136223846793005 + int64(i)) & (isKMax - 1)
			stageS.Set(i, nv)
		}
		m.EndRegion(5)

		// R6: retag and commit.
		m.BeginRegion(6)
		nextEpoch := (it + 1) * isKMax
		for i := 0; i < k.n; i++ {
			keysS.Set(i, stageS.At(i)+nextEpoch)
		}
		m.EndRegion(6)

		// R7: iteration checksum over a stride of staged keys.
		m.BeginRegion(7)
		var sum float64
		for s := 0; s < 128; s++ {
			//eclint:allow batchedaccess — the checksum stride wraps mod n, not block-regular
			sum += float64(stage.At((s * 97) % k.n))
		}
		chk.Set(0, sum)
		m.EndRegion(7)

		itv.Set(0, it+1)
		m.EndIteration(it)
		executed++
	}
	return executed, nil
}

// Result implements Kernel: the last iteration checksum plus a full-key
// checksum.
func (k *IS) Result(m *sim.Machine) []float64 {
	keys := m.I64Stream(k.keys)
	chk := m.F64(k.chk)
	var sum float64
	for i := 0; i < k.n; i += 7 {
		sum += float64(keys.At(i) & (isKMax - 1))
	}
	return []float64{chk.At(0), sum}
}

// Verify implements Kernel: exact match with the golden checksums (sorting
// has no tolerance for approximation).
func (k *IS) Verify(m *sim.Machine, golden []float64) bool {
	got := k.Result(m)
	return relClose(got[0], golden[0], 1e-12) && relClose(got[1], golden[1], 1e-12)
}
