// Crash-consistency oracle support (after WITCHER, OSDI'21): a kernel that
// acknowledges operations to a client can expose the volatile ack journal to
// the campaign engine, which audits every recovery against it. The paper's
// own classification (S1..S4) only measures whether a kernel *recomputes*;
// the oracle measures whether it *lies* — an acknowledged write that comes
// back wrong after a crash is a consistency bug even if the run completes.
package apps

import "easycrash/internal/sim"

// AckJournal is an opaque snapshot of a kernel's volatile acknowledged-
// operations journal, taken at a crash. The journal lives on the volatile
// side (it models the client's view, not NVM state), so the engine carries it
// across the power loss and hands it back for the post-recovery audit.
type AckJournal interface {
	// Merge folds another snapshot of the same workload's journal into this
	// one and returns the union. Nested-failure chains acknowledge more
	// operations during recovery attempts that then crash again; the audit
	// after the final recovery must honour every ack of every life.
	Merge(other AckJournal) AckJournal
}

// Audit is the verdict of one post-recovery consistency check.
type Audit struct {
	// Violations lists crash-consistency violations in a stable, seed-
	// reproducible order: acknowledged writes that are lost, keys that
	// regressed to a stale value, and never-acknowledged values that became
	// visible. Empty means the recovered state honours every ack.
	Violations []string
	// Detected is a recovery failure the workload itself caught and reported
	// (a corrupt WAL record, an invalid commit mark, an unreadable block).
	// It is the *correct* behaviour on damaged media — fail loudly — and is
	// classified as an interruption, never as a silent violation.
	Detected error
}

// ConsistencyKernel is a kernel with client-visible persistence semantics:
// it acknowledges operations as durable and can audit a recovered state
// against a journal of those acknowledgements.
type ConsistencyKernel interface {
	Kernel
	// Journal snapshots the acknowledged-operations journal. The engine
	// calls it right after a crash fires, while the pre-crash kernel
	// instance (and so its volatile state) is still intact.
	Journal() AckJournal
	// Audit checks the machine's recovered state — after Init, candidate
	// restore and PostRestart replay — against a journal snapshot. The
	// single operation that was in flight (attempted but not yet
	// acknowledged) at the crash MAY legitimately be visible; everything
	// else is bound by the journal.
	Audit(m *sim.Machine, j AckJournal) Audit
}
