package apps

import (
	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// Botsspar is the BOTS sparselu workload: blocked in-place LU factorisation
// of a matrix of S×S blocks. Each main-loop iteration is one elimination
// step kk, with the classic four phases as regions:
//
//	R0: lu0   factorise the diagonal block (in place)
//	R1: fwd   transform the row panel U[kk][j] (in place)
//	R2: bdiv  transform the column panel L[i][kk] (in place)
//	R3: bmod  update the trailing submatrix A[i][j] -= L[i][kk]·U[kk][j]
//
// The factorisation mutates the matrix in place across steps; a per-block
// progress directory (the task-completion tracking of a task-parallel
// runtime) makes the trailing update idempotent under replay as long as the
// directory and the block data are durably consistent — which is what
// EasyCrash's flushing provides. Without it, replay on multi-step-stale
// blocks corrupts the factors and verification fails.
type Botsspar struct {
	b int // blocks per dimension
	s int // block edge

	blocks mem.Object // B*B blocks of S*S doubles (candidate)
	done   mem.Object // per-block progress directory (candidate)
	scal   mem.Object
	it     mem.Object
}

// NewBotsspar creates the kernel at the given profile.
func NewBotsspar(p Profile) Kernel {
	switch p {
	case ProfileBench:
		return &Botsspar{b: 20, s: 4}
	default:
		return &Botsspar{b: 16, s: 4}
	}
}

// Name implements Kernel.
func (k *Botsspar) Name() string { return "botsspar" }

// Description implements Kernel.
func (k *Botsspar) Description() string { return "Sparse linear algebra (blocked LU factorisation)" }

// RegionCount implements Kernel.
func (k *Botsspar) RegionCount() int { return 4 }

// NominalIters implements Kernel: one iteration per elimination step.
func (k *Botsspar) NominalIters() int64 { return int64(k.b) }

// Convergent implements Kernel.
func (k *Botsspar) Convergent() bool { return false }

// IterObject implements Kernel.
func (k *Botsspar) IterObject() mem.Object { return k.it }

// Setup implements Kernel.
func (k *Botsspar) Setup(m *sim.Machine) {
	s := m.Space()
	k.blocks = s.AllocF64("blocks", k.b*k.b*k.s*k.s, true)
	k.done = s.AllocI64("done", k.b*k.b, true)
	k.scal = s.AllocF64("scal", 8, true)
	k.it = AllocIter(m)
}

// Init implements Kernel: random blocks with strongly dominant diagonal
// blocks so the unpivoted factorisation stays stable.
func (k *Botsspar) Init(m *sim.Machine) {
	blocks := m.F64Stream(k.blocks)
	done := m.I64Stream(k.done)
	rng := splitmix64(223606)
	for bi := 0; bi < k.b; bi++ {
		for bj := 0; bj < k.b; bj++ {
			base := k.blockBase(bi, bj)
			for e := 0; e < k.s*k.s; e++ {
				v := 0.4 * (rng.f64()*2 - 1)
				if bi == bj && e%(k.s+1) == 0 {
					v += 6.0 // dominant diagonal of the diagonal block
				}
				blocks.Set(base+e, v)
			}
			done.Set(bi*k.b+bj, -1)
		}
	}
	m.F64(k.scal).Set(0, 0)
	m.I64(k.it).Set(0, 0)
}

func (k *Botsspar) blockBase(bi, bj int) int { return (bi*k.b + bj) * k.s * k.s }

// doneLU offsets the progress value for panel/diagonal phases: a block on
// row/column kk records kk+doneLU once its elimination-step transform is
// applied, distinguishing it from the trailing update at step kk.
const doneLU = 1

// Run implements Kernel.
func (k *Botsspar) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	if maxIter > int64(k.b) {
		maxIter = int64(k.b)
	}
	itv := m.I64(k.it)
	S := k.s

	// A 4x4 block is two cache lines, so a cursor per matrix-block operand
	// (target row, pivot row, L, U) keeps even the data-dependent in-block
	// walks memoized; the progress directory gets its own cursor.
	blocks, pivRow := m.F64Stream(k.blocks), m.F64Stream(k.blocks)
	lOp, uOp := m.F64Stream(k.blocks), m.F64Stream(k.blocks)
	done := m.I64Stream(k.done)

	m.MainLoopBegin()
	defer m.MainLoopEnd()
	var executed int64
	for it := from; it < maxIter; it++ {
		kk := int(it)
		m.BeginIteration(it)

		// R0: lu0 — unpivoted LU of the diagonal block, guarded by the
		// progress directory so a replay never factorises twice.
		m.BeginRegion(0)
		diag := k.blockBase(kk, kk)
		if done.At(kk*k.b+kk) < int64(kk)+doneLU {
			for p := 0; p < S; p++ {
				piv := pivRow.At(diag + p*S + p)
				for i := p + 1; i < S; i++ {
					l := blocks.At(diag+i*S+p) / piv
					blocks.Set(diag+i*S+p, l)
					for j := p + 1; j < S; j++ {
						blocks.Set(diag+i*S+j, blocks.At(diag+i*S+j)-l*pivRow.At(diag+p*S+j))
					}
				}
			}
			done.Set(kk*k.b+kk, int64(kk)+doneLU)
		}
		m.EndRegion(0)

		// R1: fwd — row panel: U[kk][j] = L(diag)^-1 A[kk][j].
		m.BeginRegion(1)
		for bj := kk + 1; bj < k.b; bj++ {
			if done.At(kk*k.b+bj) >= int64(kk)+doneLU {
				continue
			}
			tgt := k.blockBase(kk, bj)
			for p := 0; p < S; p++ {
				for i := p + 1; i < S; i++ {
					l := lOp.At(diag + i*S + p)
					for j := 0; j < S; j++ {
						blocks.Set(tgt+i*S+j, blocks.At(tgt+i*S+j)-l*pivRow.At(tgt+p*S+j))
					}
				}
			}
			done.Set(kk*k.b+bj, int64(kk)+doneLU)
		}
		m.EndRegion(1)

		// R2: bdiv — column panel: L[i][kk] = A[i][kk] U(diag)^-1.
		m.BeginRegion(2)
		for bi := kk + 1; bi < k.b; bi++ {
			if done.At(bi*k.b+kk) >= int64(kk)+doneLU {
				continue
			}
			tgt := k.blockBase(bi, kk)
			for j := 0; j < S; j++ {
				pj := pivRow.At(diag + j*S + j)
				for i := 0; i < S; i++ {
					v := blocks.At(tgt + i*S + j)
					for p := 0; p < j; p++ {
						v -= lOp.At(tgt+i*S+p) * uOp.At(diag+p*S+j)
					}
					blocks.Set(tgt+i*S+j, v/pj)
				}
			}
			done.Set(bi*k.b+kk, int64(kk)+doneLU)
		}
		m.EndRegion(2)

		// R3: bmod — trailing submatrix update, guarded by the per-block
		// progress directory so a replay skips blocks already at step kk.
		m.BeginRegion(3)
		for bi := kk + 1; bi < k.b; bi++ {
			for bj := kk + 1; bj < k.b; bj++ {
				if done.At(bi*k.b+bj) >= int64(kk) {
					continue // already applied (replay)
				}
				l := k.blockBase(bi, kk)
				u := k.blockBase(kk, bj)
				t := k.blockBase(bi, bj)
				for i := 0; i < S; i++ {
					for j := 0; j < S; j++ {
						v := blocks.At(t + i*S + j)
						for p := 0; p < S; p++ {
							v -= lOp.At(l+i*S+p) * uOp.At(u+p*S+j)
						}
						blocks.Set(t+i*S+j, v)
					}
				}
				done.Set(bi*k.b+bj, int64(kk))
			}
		}
		m.EndRegion(3)

		itv.Set(0, it+1)
		m.EndIteration(it)
		executed++
	}
	return executed, nil
}

// Result implements Kernel: a weighted checksum of the factors.
func (k *Botsspar) Result(m *sim.Machine) []float64 {
	blocks := m.F64Stream(k.blocks)
	var sum, asum float64
	for i := 0; i < k.b*k.b*k.s*k.s; i += 3 {
		v := blocks.At(i)
		sum += v * float64(i%11+1)
		if v < 0 {
			asum -= v
		} else {
			asum += v
		}
	}
	return []float64{sum, asum}
}

// Verify implements Kernel: the factorisation checksum must match the
// reference exactly (an LU factor has no tolerance for perturbation).
func (k *Botsspar) Verify(m *sim.Machine, golden []float64) bool {
	got := k.Result(m)
	return relClose(got[0], golden[0], 1e-9) && relClose(got[1], golden[1], 1e-9)
}
