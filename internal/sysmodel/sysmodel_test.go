package sysmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func params(mtbf, tchk, r float64) Params {
	return Params{MTBF: mtbf, TChk: tchk, R: r, Ts: 0.015, DataBytes: 500e6}
}

func TestYoungInterval(t *testing.T) {
	// T = sqrt(2*32*43200) ≈ 1662.8 s for the paper's fast-checkpoint case.
	got := YoungInterval(32, 12*3600)
	if math.Abs(got-math.Sqrt(2*32*12*3600)) > 1e-9 {
		t.Fatalf("YoungInterval = %v", got)
	}
}

func TestBaselineSanity(t *testing.T) {
	b, err := Baseline(params(12*3600, 32, 0))
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0.9 || b >= 1 {
		t.Fatalf("fast-checkpoint baseline efficiency = %v, want (0.9, 1)", b)
	}
	slow, err := Baseline(params(12*3600, 3200, 0))
	if err != nil {
		t.Fatal(err)
	}
	if slow >= b {
		t.Fatal("slower checkpoints should lower efficiency")
	}
	if _, err := Baseline(Params{MTBF: 0, TChk: 32}); err != ErrBadParams {
		t.Fatalf("bad params: err = %v", err)
	}
}

func TestEasyCrashBeatsBaselineAtPaperOperatingPoint(t *testing.T) {
	// The paper's headline: R = 82%, t_s = 1.5% improves efficiency for
	// every checkpoint-overhead scenario, most at TChk = 3200 s (up to
	// ~24%, 15% average).
	var gains []float64
	for _, tchk := range CheckpointOverheads() {
		base, ec, gain, err := Improvement(params(12*3600, tchk, 0.82))
		if err != nil {
			t.Fatal(err)
		}
		if ec <= base {
			t.Fatalf("TChk=%v: EasyCrash (%v) did not beat baseline (%v)", tchk, ec, base)
		}
		gains = append(gains, gain)
	}
	if !(gains[2] > gains[1] && gains[1] > gains[0]) {
		t.Fatalf("gains should grow with checkpoint overhead: %v", gains)
	}
	if gains[2] < 0.10 || gains[2] > 0.30 {
		t.Fatalf("TChk=3200 gain = %v, want paper-scale (0.10, 0.30)", gains[2])
	}
}

func TestEfficiencyGainGrowsWithScale(t *testing.T) {
	// Figure 11: EasyCrash's advantage grows as the system scales (MTBF
	// shrinks).
	prev := -1.0
	for _, sc := range Scales() {
		_, _, gain, err := Improvement(params(sc.MTBF, 3200, 0.82))
		if err != nil {
			t.Fatal(err)
		}
		if gain <= prev {
			t.Fatalf("gain did not grow with scale at %d nodes: %v <= %v", sc.Nodes, gain, prev)
		}
		prev = gain
	}
}

func TestWithEasyCrashEdgeCases(t *testing.T) {
	if _, err := WithEasyCrash(params(12*3600, 32, -0.1)); err == nil {
		t.Fatal("negative R accepted")
	}
	if _, err := WithEasyCrash(params(12*3600, 32, 1.1)); err == nil {
		t.Fatal("R > 1 accepted")
	}
	// R = 1: no rollbacks at all; still well defined and high.
	e, err := WithEasyCrash(params(12*3600, 320, 1))
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0.9 {
		t.Fatalf("R=1 efficiency = %v", e)
	}
}

func TestTau(t *testing.T) {
	p := params(12*3600, 3200, 0)
	tau, err := Tau(p)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 || tau >= 1 {
		t.Fatalf("tau = %v, want in (0,1)", tau)
	}
	// Just below τ EasyCrash must lose; just above it must win.
	base, _ := Baseline(p)
	below := p
	below.R = tau - 0.01
	above := p
	above.R = tau + 0.01
	eb, _ := WithEasyCrash(below)
	ea, _ := WithEasyCrash(above)
	if eb >= base {
		t.Fatalf("R just below tau should not break even: %v >= %v", eb, base)
	}
	if ea < base {
		t.Fatalf("R just above tau should break even: %v < %v", ea, base)
	}
}

func TestTauUnattainableWithHugeOverhead(t *testing.T) {
	p := params(12*3600, 32, 0)
	p.Ts = 0.5 // absurd runtime overhead
	tau, err := Tau(p)
	if err != nil {
		t.Fatal(err)
	}
	if tau != 1 {
		t.Fatalf("tau = %v, want 1 (unattainable)", tau)
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := Params{MTBF: 12 * 3600, TChk: 320, DataBytes: 100e9}
	q := p.withDefaults()
	if q.TR != p.TChk {
		t.Fatalf("TR default = %v", q.TR)
	}
	if q.TSync != 0.5*p.TChk {
		t.Fatalf("TSync default = %v", q.TSync)
	}
	if q.TotalTime != tenYears {
		t.Fatalf("TotalTime default = %v", q.TotalTime)
	}
	if q.TRPrime != 100e9/100e9 {
		t.Fatalf("TRPrime default = %v", q.TRPrime)
	}
}

func TestScalesAndOverheads(t *testing.T) {
	if len(Scales()) != 3 || Scales()[0].Nodes != 100_000 {
		t.Fatalf("Scales() = %v", Scales())
	}
	if len(CheckpointOverheads()) != 3 {
		t.Fatalf("CheckpointOverheads() = %v", CheckpointOverheads())
	}
}

// Property: efficiency is always in [0, 1], and EasyCrash efficiency is
// monotonically non-decreasing in R.
func TestQuickEfficiencyBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			MTBF:      3600 * (1 + rng.Float64()*23),
			TChk:      10 + rng.Float64()*4000,
			Ts:        rng.Float64() * 0.05,
			DataBytes: rng.Float64() * 1e9,
		}
		base, err := Baseline(p)
		if err != nil || base < 0 || base > 1 {
			return false
		}
		prev := -1.0
		for _, r := range []float64{0, 0.25, 0.5, 0.75, 1} {
			p.R = r
			e, err := WithEasyCrash(p)
			if err != nil || e < 0 || e > 1 {
				return false
			}
			if e < prev-1e-12 {
				return false // not monotone in R
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: τ is consistent — for random operating points, R slightly above
// the returned τ always breaks even.
func TestQuickTauConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			MTBF:      3600 * (2 + rng.Float64()*22),
			TChk:      30 + rng.Float64()*3000,
			Ts:        rng.Float64() * 0.03,
			DataBytes: rng.Float64() * 1e9,
		}
		tau, err := Tau(p)
		if err != nil {
			return false
		}
		if tau >= 1 {
			return true // unattainable: nothing to check
		}
		base, _ := Baseline(p)
		p.R = math.Min(1, tau+0.02)
		e, err := WithEasyCrash(p)
		return err == nil && e >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
