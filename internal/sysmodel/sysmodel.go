// Package sysmodel implements the paper's §7 end-to-end emulator of a
// large-scale HPC system running under synchronous coordinated
// checkpoint/restart, with and without EasyCrash (Equations 6-9, Young's
// checkpoint-interval formula, and the MTBF scaling used for Figures 10
// and 11), plus the derivation of the recomputability threshold τ.
package sysmodel

import (
	"errors"
	"math"
)

// Params describes one modelled deployment.
type Params struct {
	// MTBF is the system mean time between failures, in seconds.
	MTBF float64
	// TChk is the time to write one system checkpoint, in seconds.
	TChk float64
	// TR is the time to recover from the previous checkpoint; the paper
	// assumes TR = TChk when zero.
	TR float64
	// TSync is the coordination overhead per recovery; the paper assumes
	// 50% of TChk when zero.
	TSync float64
	// TotalTime is the modelled horizon in seconds (the paper uses 10
	// years); zero means 10 years.
	TotalTime float64

	// R is the application recomputability achieved with EasyCrash.
	R float64
	// Ts is EasyCrash's runtime overhead (e.g. 0.015).
	Ts float64
	// TRPrime is the EasyCrash recovery time: reloading data objects from
	// NVM-resident state. When zero it is derived from DataBytes and
	// NVMBandwidth.
	TRPrime float64
	// DataBytes is the non-read-only data size reloaded at an EasyCrash
	// restart; NVMBandwidth is the NVM read bandwidth in bytes/second
	// (defaults to 100 GB/s, the paper's DRAM-emulated value).
	DataBytes    float64
	NVMBandwidth float64
}

const tenYears = 10 * 365 * 24 * 3600.0

func (p Params) withDefaults() Params {
	if p.TR == 0 {
		p.TR = p.TChk
	}
	if p.TSync == 0 {
		p.TSync = 0.5 * p.TChk
	}
	if p.TotalTime == 0 {
		p.TotalTime = tenYears
	}
	if p.NVMBandwidth == 0 {
		p.NVMBandwidth = 100e9
	}
	if p.TRPrime == 0 {
		p.TRPrime = p.DataBytes / p.NVMBandwidth
	}
	return p
}

// ErrBadParams reports non-positive MTBF or checkpoint time.
var ErrBadParams = errors.New("sysmodel: MTBF and TChk must be positive")

// YoungInterval returns Young's optimal checkpoint interval
// T = sqrt(2·TChk·MTBF).
func YoungInterval(tchk, mtbf float64) float64 {
	return math.Sqrt(2 * tchk * mtbf)
}

// Baseline evaluates system efficiency without EasyCrash (Equations 6-7):
// the fraction of the horizon spent on useful computation, after checkpoint
// overhead and per-crash losses (half an interval of wasted work plus
// recovery and synchronisation).
func Baseline(p Params) (float64, error) {
	p = p.withDefaults()
	if p.MTBF <= 0 || p.TChk <= 0 {
		return 0, ErrBadParams
	}
	T := YoungInterval(p.TChk, p.MTBF)
	M := p.TotalTime / p.MTBF
	lost := M * (T/2 + p.TR + p.TSync)
	useful := (p.TotalTime - lost) / (1 + p.TChk/T)
	if useful < 0 {
		useful = 0
	}
	return useful / p.TotalTime, nil
}

// WithEasyCrash evaluates system efficiency with EasyCrash (Equations 8-9):
// a fraction R of crashes restart from NVM at cost TR'+TSync without losing
// the interval's work; the rest roll back as before. The checkpoint
// interval stretches to Young's interval at the effective
// MTBF' = MTBF/(1-R), and useful computation carries EasyCrash's runtime
// overhead t_s.
func WithEasyCrash(p Params) (float64, error) {
	p = p.withDefaults()
	if p.MTBF <= 0 || p.TChk <= 0 {
		return 0, ErrBadParams
	}
	if p.R < 0 || p.R > 1 {
		return 0, errors.New("sysmodel: R must be in [0,1]")
	}
	mtbfEC := p.MTBF
	if p.R < 1 {
		mtbfEC = p.MTBF / (1 - p.R)
	} else {
		mtbfEC = math.Inf(1)
	}
	TPrime := YoungInterval(p.TChk, mtbfEC)
	if math.IsInf(TPrime, 1) {
		// No crash ever rolls back; checkpoints become vanishingly rare.
		TPrime = p.TotalTime
	}
	M := p.TotalTime / p.MTBF
	mRollback := M * (1 - p.R)
	mRecompute := M * p.R
	lost := mRollback*(TPrime/2+p.TR+p.TSync) + mRecompute*(p.TRPrime+p.TSync)
	useful := (p.TotalTime - lost) / ((1 + p.Ts) * (1 + p.TChk/TPrime))
	if useful < 0 {
		useful = 0
	}
	return useful / p.TotalTime, nil
}

// Improvement returns the efficiency gain of EasyCrash over the baseline
// in absolute percentage points.
func Improvement(p Params) (base, ec, gain float64, err error) {
	base, err = Baseline(p)
	if err != nil {
		return 0, 0, 0, err
	}
	ec, err = WithEasyCrash(p)
	if err != nil {
		return 0, 0, 0, err
	}
	return base, ec, ec - base, nil
}

// Tau computes the paper's recomputability threshold τ: the smallest R for
// which the system with EasyCrash is at least as efficient as without it
// (§5.2 and §7 "Determination of recomputability threshold"). It returns
// 1 (unattainable) if even R = 1 does not break even, e.g. when t_s is too
// large for the failure rate.
func Tau(p Params) (float64, error) {
	p = p.withDefaults()
	base, err := Baseline(p)
	if err != nil {
		return 0, err
	}
	at := func(r float64) (float64, error) {
		q := p
		q.R = r
		return WithEasyCrash(q)
	}
	hi, err := at(1)
	if err != nil {
		return 0, err
	}
	if hi < base {
		return 1, nil
	}
	lo, err := at(0)
	if err != nil {
		return 0, err
	}
	if lo >= base {
		return 0, nil
	}
	lor, hir := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lor + hir) / 2
		v, err := at(mid)
		if err != nil {
			return 0, err
		}
		if v >= base {
			hir = mid
		} else {
			lor = mid
		}
	}
	return hir, nil
}

// Scale describes one system-scale point of Figure 11: the paper scales a
// 100,000-node system (MTBF 12 h) to 200,000 and 400,000 nodes by halving
// the MTBF per doubling.
type Scale struct {
	Nodes int
	MTBF  float64
}

// Scales returns the paper's three system scales.
func Scales() []Scale {
	return []Scale{
		{Nodes: 100_000, MTBF: 12 * 3600},
		{Nodes: 200_000, MTBF: 6 * 3600},
		{Nodes: 400_000, MTBF: 3 * 3600},
	}
}

// CheckpointOverheads returns the paper's three checkpoint-cost scenarios
// (fast NVMe/SSD through slow HDD storage), in seconds.
func CheckpointOverheads() []float64 { return []float64{32, 320, 3200} }
