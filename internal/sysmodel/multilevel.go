package sysmodel

import (
	"errors"
	"math"
)

// MultiLevelParams extends the §7 model to the two-level checkpoint
// hierarchy the paper's setup assumes (checkpoints written to local SSD and
// migrated asynchronously to remote storage, after Mohror et al.): a
// fraction of failures is node-local and recoverable from the cheap local
// checkpoint; the rest (whole-rack or storage failures) must restore the
// expensive remote copy.
type MultiLevelParams struct {
	Params
	// TChkRemote is the cost of hardening one checkpoint to remote storage;
	// the asynchronous migration consumes bandwidth but only a BlockFactor
	// fraction of it stalls the application.
	TChkRemote float64
	// BlockFactor is the fraction of TChkRemote that blocks computation
	// (0 = fully asynchronous, 1 = synchronous); default 0.1.
	BlockFactor float64
	// LocalCoverage is the fraction of failures recoverable from the local
	// level; default 0.85 (after the SCR studies the paper cites).
	LocalCoverage float64
	// TRRemote is the remote recovery time; default TChkRemote.
	TRRemote float64
}

func (p MultiLevelParams) withDefaults() MultiLevelParams {
	p.Params = p.Params.withDefaults()
	if p.BlockFactor == 0 {
		p.BlockFactor = 0.1
	}
	if p.LocalCoverage == 0 {
		p.LocalCoverage = 0.85
	}
	if p.TRRemote == 0 {
		p.TRRemote = p.TChkRemote
	}
	return p
}

// MultiLevelBaseline evaluates system efficiency under two-level C/R
// without EasyCrash.
func MultiLevelBaseline(p MultiLevelParams) (float64, error) {
	p = p.withDefaults()
	if p.MTBF <= 0 || p.TChk <= 0 || p.TChkRemote < 0 {
		return 0, ErrBadParams
	}
	if p.LocalCoverage < 0 || p.LocalCoverage > 1 {
		return 0, errors.New("sysmodel: LocalCoverage must be in [0,1]")
	}
	// Effective per-checkpoint cost: the local write plus the blocking
	// share of the remote migration.
	tchk := p.TChk + p.BlockFactor*p.TChkRemote
	T := YoungInterval(tchk, p.MTBF)
	M := p.TotalTime / p.MTBF
	perCrash := T/2 + p.TSync + p.LocalCoverage*p.TR + (1-p.LocalCoverage)*p.TRRemote
	useful := (p.TotalTime - M*perCrash) / (1 + tchk/T)
	if useful < 0 {
		useful = 0
	}
	return useful / p.TotalTime, nil
}

// MultiLevelWithEasyCrash evaluates two-level C/R combined with EasyCrash:
// a fraction R of crashes restarts from NVM without touching either
// checkpoint level.
func MultiLevelWithEasyCrash(p MultiLevelParams) (float64, error) {
	p = p.withDefaults()
	if p.MTBF <= 0 || p.TChk <= 0 {
		return 0, ErrBadParams
	}
	if p.R < 0 || p.R > 1 {
		return 0, errors.New("sysmodel: R must be in [0,1]")
	}
	tchk := p.TChk + p.BlockFactor*p.TChkRemote
	mtbfEC := math.Inf(1)
	if p.R < 1 {
		mtbfEC = p.MTBF / (1 - p.R)
	}
	TPrime := YoungInterval(tchk, mtbfEC)
	if math.IsInf(TPrime, 1) {
		TPrime = p.TotalTime
	}
	M := p.TotalTime / p.MTBF
	rollback := M * (1 - p.R)
	recompute := M * p.R
	perRollback := TPrime/2 + p.TSync + p.LocalCoverage*p.TR + (1-p.LocalCoverage)*p.TRRemote
	lost := rollback*perRollback + recompute*(p.TRPrime+p.TSync)
	useful := (p.TotalTime - lost) / ((1 + p.Ts) * (1 + tchk/TPrime))
	if useful < 0 {
		useful = 0
	}
	return useful / p.TotalTime, nil
}

// MultiLevelImprovement returns baseline, EasyCrash, and gain for the
// two-level model.
func MultiLevelImprovement(p MultiLevelParams) (base, ec, gain float64, err error) {
	base, err = MultiLevelBaseline(p)
	if err != nil {
		return 0, 0, 0, err
	}
	ec, err = MultiLevelWithEasyCrash(p)
	if err != nil {
		return 0, 0, 0, err
	}
	return base, ec, ec - base, nil
}
