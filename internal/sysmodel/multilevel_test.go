package sysmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mlParams(r float64) MultiLevelParams {
	return MultiLevelParams{
		Params:     params(12*3600, 320, r),
		TChkRemote: 3200,
	}
}

func TestMultiLevelBaselineSanity(t *testing.T) {
	b, err := MultiLevelBaseline(mlParams(0))
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 || b >= 1 {
		t.Fatalf("baseline = %v", b)
	}
	// Two-level with mostly-local recovery must beat a single level whose
	// every checkpoint costs the remote price.
	slow, err := Baseline(params(12*3600, 320+3200, 0))
	if err != nil {
		t.Fatal(err)
	}
	if b <= slow {
		t.Fatalf("two-level (%v) not better than synchronous remote (%v)", b, slow)
	}
	if _, err := MultiLevelBaseline(MultiLevelParams{}); err == nil {
		t.Fatal("zero params accepted")
	}
	bad := mlParams(0)
	bad.LocalCoverage = 2
	if _, err := MultiLevelBaseline(bad); err == nil {
		t.Fatal("LocalCoverage > 1 accepted")
	}
}

func TestMultiLevelEasyCrashImproves(t *testing.T) {
	base, ec, gain, err := MultiLevelImprovement(mlParams(0.82))
	if err != nil {
		t.Fatal(err)
	}
	if ec <= base || gain <= 0 {
		t.Fatalf("no improvement: base %v ec %v", base, ec)
	}
	if _, err := MultiLevelWithEasyCrash(func() MultiLevelParams { p := mlParams(1.5); return p }()); err == nil {
		t.Fatal("R > 1 accepted")
	}
	// R = 1 is well defined.
	p := mlParams(1)
	if _, err := MultiLevelWithEasyCrash(p); err != nil {
		t.Fatal(err)
	}
}

func TestMultiLevelDefaults(t *testing.T) {
	p := mlParams(0).withDefaults()
	if p.BlockFactor != 0.1 || p.LocalCoverage != 0.85 || p.TRRemote != p.TChkRemote {
		t.Fatalf("defaults = %+v", p)
	}
}

// Property: efficiencies stay in [0,1]; more local coverage never hurts;
// EasyCrash efficiency is monotone in R.
func TestQuickMultiLevelBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tchk := 10 + rng.Float64()*1000
		p := MultiLevelParams{
			Params: Params{
				MTBF:      3600 * (1 + rng.Float64()*23),
				TChk:      tchk,
				Ts:        rng.Float64() * 0.05,
				DataBytes: rng.Float64() * 1e9,
			},
			// Remote checkpoints (and hence remote recovery) cost at least
			// as much as local ones, or higher coverage could "hurt".
			TChkRemote:    tchk + 100 + rng.Float64()*5000,
			LocalCoverage: 0.3 + rng.Float64()*0.7,
			BlockFactor:   0.05 + rng.Float64()*0.5,
		}
		b, err := MultiLevelBaseline(p)
		if err != nil || b < 0 || b > 1 {
			return false
		}
		better := p
		better.LocalCoverage = math.Min(1, p.LocalCoverage+0.2)
		b2, err := MultiLevelBaseline(better)
		if err != nil || b2 < b-1e-12 {
			return false
		}
		prev := -1.0
		for _, r := range []float64{0, 0.5, 1} {
			p.R = r
			e, err := MultiLevelWithEasyCrash(p)
			if err != nil || e < 0 || e > 1 || e < prev-1e-12 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
