// Package core implements EasyCrash itself — the paper's primary
// contribution (§5): a framework that decides which data objects to persist
// and at which code regions, so that an HPC application restarted from the
// data remaining in NVM after a crash recomputes successfully, under a
// runtime-overhead budget t_s and a system-efficiency-driven recomputability
// threshold τ.
//
// The four-step workflow:
//
//	Step 1 — run a crash-test campaign without persistence, collecting each
//	         candidate object's data-inconsistency rate and the
//	         recomputation outcome of every test.
//	Step 2 — select critical data objects by Spearman rank correlation:
//	         an object is critical if its inconsistency rate correlates
//	         negatively with recomputation success with p < 0.01.
//	Step 3 — select critical code regions: measure per-region
//	         recomputability without persistence (c_k) and with critical
//	         objects persisted at every region (c_k^max), estimate each
//	         region's flush cost l_k, interpolate persistence frequency via
//	         Equation 5, and solve the 0-1 knapsack maximising predicted
//	         recomputability under l ≤ t_s.
//	Step 4 — emit the production persistence policy and (optionally)
//	         validate it with a final campaign.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/faultmodel"
	"easycrash/internal/knapsack"
	"easycrash/internal/nvct"
	"easycrash/internal/stats"
)

// Config parameterises the framework.
type Config struct {
	// Ts is the runtime-overhead budget as a fraction of execution time
	// (the paper evaluates t_s = 3%). Zero means 0.03.
	Ts float64
	// Tau is the recomputability threshold required for EasyCrash to beat
	// plain checkpoint/restart (§5.2, derived from the system model).
	// Zero means no requirement.
	Tau float64
	// PThreshold is the Spearman p-value cutoff; zero means 0.01.
	PThreshold float64
	// Correlation selects the rank-correlation test for Step 2:
	// "spearman" (default, the paper's choice) or "kendall".
	Correlation string
	// Tester configures the simulated machine.
	Tester nvct.Config
	// Tests is the campaign size per step; zero means 100.
	Tests int
	// Seed seeds the campaigns.
	Seed int64
	// FlushAccessCost is the estimated cost of flushing one cache block,
	// expressed in demand-access time units. Following §5.2 the estimate
	// assumes every block is resident and dirty and doubles the cost to
	// account for invalidation-induced reloads; zero means 4 (2 doubled).
	FlushAccessCost float64
	// Frequencies are the persistence periods x explored for loop-based
	// regions (Equation 5); nil means {1, 2, 4, 8}.
	Frequencies []int64
	// SkipValidation skips the final measurement campaign.
	SkipValidation bool
	// Faults configures the NVM media-fault layer for every campaign the
	// workflow runs (zero = the paper's intact-NVM assumption). Step 4's
	// production validation additionally enables the scrub-and-fallback
	// restart path, so a detected-uncorrectable object is re-initialised
	// instead of aborting the restart.
	Faults faultmodel.Config
	// RecrashDepth, when > 0, hardens Step 4: the validation campaign runs
	// the nested-failure model, where up to RecrashDepth additional crashes
	// strike the recovery runs themselves. The production policy is then
	// judged on what survives repeated failures (R(k)), not just one.
	// Steps 1–3 keep the paper's single-crash model — the selection
	// statistics are defined over single-crash inconsistency.
	RecrashDepth int
	// RetryBudget caps recovery attempts per validation trial when
	// RecrashDepth > 0; 0 means RecrashDepth+1.
	RetryBudget int
	// TrialDeadline bounds each validation trial's whole crash chain;
	// 0 means no deadline.
	TrialDeadline time.Duration
}

func (c Config) withDefaults() Config {
	if c.Ts == 0 {
		c.Ts = 0.03
	}
	if c.PThreshold == 0 {
		c.PThreshold = 0.01
	}
	if c.Tests == 0 {
		c.Tests = 100
	}
	if c.FlushAccessCost == 0 {
		c.FlushAccessCost = 4
	}
	if len(c.Frequencies) == 0 {
		c.Frequencies = []int64{1, 2, 4, 8}
	}
	return c
}

// ObjectAnalysis records the Step-2 evidence for one candidate object.
type ObjectAnalysis struct {
	Name     string
	Rs       float64
	P        float64
	Selected bool
	// Reason explains a non-selection ("positive correlation", "p above
	// threshold", "constant inconsistency", ...).
	Reason string
}

// RegionAnalysis records the Step-3 evidence for one code region.
type RegionAnalysis struct {
	Region int
	A      float64 // a_k: share of execution time (access-weighted)
	C      float64 // c_k: recomputability without persistence
	CMax   float64 // c_k^max: recomputability with critical objects persisted
	Loss   float64 // l_k: estimated overhead of persisting here every iteration
	Chosen bool
}

// Result is the framework's full decision record.
type Result struct {
	Kernel     string
	Golden     nvct.Golden
	Candidates []string
	Objects    []ObjectAnalysis
	Critical   []string
	Regions    []RegionAnalysis
	// Frequency is the chosen persistence period x.
	Frequency int64
	// PredictedY is Equation 2's predicted recomputability of the chosen
	// configuration.
	PredictedY float64
	// BaselineY is the measured recomputability without persistence.
	BaselineY float64
	// MeetsTau reports whether PredictedY clears the τ requirement; when
	// false the framework recommends staying with plain C/R (the paper's
	// EP case).
	MeetsTau bool
	// Policy is the production persistence policy (nil when no region was
	// chosen).
	Policy *nvct.Policy
	// Baseline and CriticalEverywhere are the Step-1 and Step-3 campaign
	// reports; Final is the Step-4 validation campaign (nil when skipped
	// or when no policy was produced).
	Baseline           *nvct.Report
	CriticalEverywhere *nvct.Report
	Final              *nvct.Report
}

// AchievedY returns the validated recomputability when a final campaign
// ran, else the prediction.
func (r *Result) AchievedY() float64 {
	if r.Final != nil {
		return r.Final.Recomputability()
	}
	return r.PredictedY
}

// FinalViolations returns the Step-4 validation campaign's crash-consistency
// evidence: the number of trials the oracle classified SViol and the total
// violations itemised across them. Both are zero when validation was skipped
// or the workload carries no consistency oracle. A nonzero count means the
// shipped policy leaves the workload crash-inconsistent — recomputability
// alone cannot surface that, since a violating trial still recomputes.
func (r *Result) FinalViolations() (tests, listed int) {
	if r.Final == nil {
		return 0, 0
	}
	return r.Final.ConsistencyViolations()
}

// Run executes the full EasyCrash workflow for one kernel.
func Run(factory apps.Factory, cfg Config) (*Result, error) {
	return RunContext(context.Background(), factory, cfg)
}

// RunContext is Run honouring ctx: a cancellation mid-workflow stops the
// running campaign promptly and returns the partially filled Result (with
// whatever step reports completed, including the cancelled campaign's
// partial report) alongside ctx's error.
func RunContext(ctx context.Context, factory apps.Factory, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	tester, err := nvct.NewTester(factory, cfg.Tester)
	if err != nil {
		return nil, err
	}
	return RunWithTesterContext(ctx, tester, cfg)
}

// RunWithTester executes the workflow against an existing tester (whose
// golden run is reused across experiments).
func RunWithTester(tester *nvct.Tester, cfg Config) (*Result, error) {
	return RunWithTesterContext(context.Background(), tester, cfg)
}

// RunWithTesterContext is RunWithTester honouring ctx (see RunContext).
func RunWithTesterContext(ctx context.Context, tester *nvct.Tester, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Kernel: tester.Name(), Golden: tester.Golden(), Frequency: 1}
	for _, o := range res.Golden.Candidates {
		res.Candidates = append(res.Candidates, o.Name)
	}

	// Step 1: baseline campaign.
	var err error
	res.Baseline, err = tester.RunCampaignContext(ctx, nil, nvct.CampaignOpts{Tests: cfg.Tests, Seed: cfg.Seed, Faults: cfg.Faults})
	if err != nil {
		return res, err
	}
	res.BaselineY = res.Baseline.Recomputability()

	// Step 2: select critical data objects.
	res.Objects, res.Critical = SelectObjectsWith(res.Baseline, cfg.PThreshold, cfg.Correlation)
	if len(res.Critical) == 0 {
		// The correlation cannot discriminate (e.g. the baseline never
		// recomputes, so the outcome vector is constant). Fall back to all
		// candidates — the conservative choice the verification in §5.1
		// shows costs at most a few percent of recomputability.
		res.Critical = append([]string(nil), res.Candidates...)
	}

	// Step 3: region campaigns and selection.
	best := nvct.EveryRegionPolicy(res.Critical, res.Golden.Regions)
	res.CriticalEverywhere, err = tester.RunCampaignContext(ctx, best, nvct.CampaignOpts{Tests: cfg.Tests, Seed: cfg.Seed + 1, Faults: cfg.Faults})
	if err != nil {
		return res, err
	}
	regions, chosen, freq, predicted := SelectRegions(tester.Golden(), res.Baseline, res.CriticalEverywhere, res.Critical, cfg)
	res.Regions = regions
	res.Frequency = freq
	res.PredictedY = predicted
	res.MeetsTau = predicted >= cfg.Tau

	if len(chosen) > 0 {
		res.Policy = &nvct.Policy{
			Objects:      res.Critical,
			AtRegionEnds: chosen,
			Frequency:    freq,
			Op:           best.Op,
		}
	}

	// Step 4: validate the production policy. As the paper notes, the
	// single persist-everywhere campaign misattributes recomputability
	// across regions, so the knapsack's choice can validate below its
	// prediction; we therefore also validate the equally-priced
	// iteration-end policy and ship whichever measures higher (a small
	// refinement beyond the paper's §5.3, documented in DESIGN.md).
	// The production runtime restarts with the scrub-and-fallback path:
	// a poisoned (detected-uncorrectable) object is re-initialised rather
	// than aborting the restart, so media errors degrade to recomputation
	// work instead of hard failures. With cfg.RecrashDepth > 0 the
	// validation additionally runs the nested-failure model, so the shipped
	// policy is the one that stays recoverable when the recovery runs (the
	// scrub fallback included) are themselves interrupted.
	if res.Policy != nil && !cfg.SkipValidation {
		prodOpts := nvct.CampaignOpts{
			Tests: cfg.Tests, Seed: cfg.Seed + 2, Faults: cfg.Faults, ScrubOnRestart: true,
			RecrashDepth: cfg.RecrashDepth, RetryBudget: cfg.RetryBudget, TrialDeadline: cfg.TrialDeadline,
		}
		res.Final, err = tester.RunCampaignContext(ctx, res.Policy, prodOpts)
		if err != nil {
			return res, err
		}
		if alt := iterationEndPolicy(res, cfg); alt != nil {
			altRep, altErr := tester.RunCampaignContext(ctx, alt, prodOpts)
			if altErr != nil {
				return res, altErr
			}
			if altRep.Recomputability() > res.Final.Recomputability() {
				res.Policy = alt
				res.Final = altRep
				res.Frequency = alt.Frequency
				for i := range res.Regions {
					res.Regions[i].Chosen = false
				}
			}
		}
	}
	return res, nil
}

// iterationEndPolicy builds the alternative policy that flushes the
// critical objects once per iteration (at the main-loop iteration end), at
// the lowest frequency whose estimated cost fits the t_s budget. It costs
// the same as a single chosen region, so it never violates the budget the
// knapsack already accepted.
func iterationEndPolicy(res *Result, cfg Config) *nvct.Policy {
	if len(res.Regions) == 0 {
		return nil
	}
	loss := res.Regions[0].Loss
	freq := int64(0)
	for _, x := range cfg.Frequencies {
		if loss/float64(x) <= cfg.Ts {
			freq = x
			break
		}
	}
	if freq == 0 {
		return nil // even the sparsest frequency busts the budget
	}
	return &nvct.Policy{
		Objects:        res.Critical,
		AtIterationEnd: true,
		Frequency:      freq,
		Op:             cachesim.CLFLUSHOPT,
	}
}

// SelectObjects performs Step 2: Spearman rank correlation between each
// candidate's inconsistency rate and recomputation success, selecting
// objects with negative correlation significant at pThreshold.
func SelectObjects(baseline *nvct.Report, pThreshold float64) ([]ObjectAnalysis, []string) {
	return SelectObjectsWith(baseline, pThreshold, "spearman")
}

// SelectObjectsWith is SelectObjects with a selectable rank-correlation
// test ("spearman" or "kendall" — an ablation of the paper's choice).
func SelectObjectsWith(baseline *nvct.Report, pThreshold float64, method string) ([]ObjectAnalysis, []string) {
	correlate := stats.Spearman
	if method == "kendall" {
		correlate = stats.KendallTau
	}
	vectors := baseline.InconsistencyVectors()
	names := make([]string, 0, len(vectors))
	//eclint:allow campaigndet — key collection, sorted below
	for name := range vectors {
		names = append(names, name)
	}
	sort.Strings(names)

	var analyses []ObjectAnalysis
	var critical []string
	for _, name := range names {
		v := vectors[name]
		a := ObjectAnalysis{Name: name}
		c, err := correlate(v[0], v[1])
		switch {
		case err == stats.ErrConstantInput:
			a.Reason = "constant input (no variation to correlate)"
		case err != nil:
			a.Reason = fmt.Sprintf("correlation failed: %v", err)
		default:
			a.Rs, a.P = c.Rs, c.P
			switch {
			case c.Rs >= 0:
				a.Reason = "non-negative correlation"
			case c.P >= pThreshold:
				a.Reason = "p-value above threshold"
			default:
				a.Selected = true
				critical = append(critical, name)
			}
		}
		analyses = append(analyses, a)
	}
	return analyses, critical
}

// SelectRegions performs Step 3. It derives a_k and c_k from the baseline
// campaign, c_k^max from the persist-everywhere campaign, estimates l_k from
// the flush-cost model, explores the persistence frequencies, and solves the
// knapsack. It returns the per-region evidence, the chosen regions, the
// chosen frequency, and the predicted recomputability Y' (Equation 2).
func SelectRegions(golden nvct.Golden, baseline, everywhere *nvct.Report, critical []string, cfg Config) ([]RegionAnalysis, []int, int64, float64) {
	cfg = cfg.withDefaults()
	cBase, _ := baseline.RegionRecomputability()
	cMax, _ := everywhere.RegionRecomputability()

	// a_k from the golden run's access attribution.
	var totalAcc uint64
	//eclint:allow campaigndet — commutative integer sum, order-insensitive
	for _, n := range golden.RegionAccesses {
		totalAcc += n
	}
	if totalAcc == 0 {
		totalAcc = 1
	}

	// l_k: flushing every critical object's blocks once per iteration at
	// one region, assuming all blocks resident and dirty, doubled for the
	// invalidation reload (§5.2's deliberately conservative estimate).
	var criticalBytes uint64
	for _, o := range golden.Candidates {
		for _, name := range critical {
			if o.Name == name {
				criticalBytes += o.Size
			}
		}
	}
	blocks := float64((criticalBytes + 63) / 64)
	lossPerRegion := float64(golden.Iters) * blocks * cfg.FlushAccessCost / float64(golden.MainAccesses)

	regions := make([]RegionAnalysis, golden.Regions)
	for k := 0; k < golden.Regions; k++ {
		regions[k] = RegionAnalysis{
			Region: k,
			A:      float64(golden.RegionAccesses[k]) / float64(totalAcc),
			C:      cBase[k],
			CMax:   cMax[k],
			Loss:   lossPerRegion,
		}
	}

	// Baseline Y (Equation 1).
	baseY := 0.0
	for _, r := range regions {
		baseY += r.A * r.C
	}

	// Explore frequencies; Equation 5 interpolates c_k^x, and both the
	// gain and the loss scale with the persistence period.
	bestY, bestFreq := baseY, int64(1)
	var bestChosen []int
	for _, x := range cfg.Frequencies {
		items := make([]knapsack.Item, len(regions))
		for k, r := range regions {
			gain := r.CMax - r.C
			if gain < 0 {
				gain = 0
			}
			items[k] = knapsack.Item{
				Weight: r.Loss / float64(x),
				Value:  r.A * gain / float64(x), // Equation 5 applied to Equation 2
			}
		}
		chosen, gain := knapsack.Solve(items, cfg.Ts)
		if y := baseY + gain; y > bestY || (bestChosen == nil && len(chosen) > 0 && y == bestY) {
			bestY, bestFreq, bestChosen = y, x, chosen
		}
	}
	for _, k := range bestChosen {
		regions[k].Chosen = true
	}
	return regions, bestChosen, bestFreq, bestY
}
