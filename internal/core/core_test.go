package core_test

import (
	"context"
	"errors"
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/core"
	"easycrash/internal/faultmodel"
	"easycrash/internal/knapsack"
	"easycrash/internal/mem"
	"easycrash/internal/nvct"
)

func runWorkflow(t *testing.T, kernel string, cfg core.Config) *core.Result {
	t.Helper()
	f, err := apps.New(kernel, apps.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWorkflowSelectsUForMG(t *testing.T) {
	// The paper's Figure 4(a): u is the critical object for MG; r, uc, rc
	// and the scratch buffer are not.
	res := runWorkflow(t, "mg", core.Config{Tests: 60, Seed: 1})
	if len(res.Critical) != 1 || res.Critical[0] != "u" {
		t.Fatalf("critical objects = %v, want [u]", res.Critical)
	}
	for _, o := range res.Objects {
		if o.Name == "u" {
			if !o.Selected || o.Rs >= 0 {
				t.Fatalf("u analysis = %+v", o)
			}
		} else if o.Selected {
			t.Fatalf("object %s selected, want only u", o.Name)
		}
	}
	if res.Policy == nil {
		t.Fatal("no production policy emitted")
	}
	if res.Final == nil {
		t.Fatal("no validation campaign")
	}
	if got, base := res.AchievedY(), res.BaselineY; got < base {
		t.Fatalf("EasyCrash recomputability %v below baseline %v", got, base)
	}
}

func TestWorkflowImprovesLU(t *testing.T) {
	res := runWorkflow(t, "lu", core.Config{Tests: 50, Seed: 2})
	if res.AchievedY() < res.BaselineY+0.3 {
		t.Fatalf("LU: %v -> %v, want a large improvement", res.BaselineY, res.AchievedY())
	}
	// The decision record must be complete.
	if len(res.Regions) != 4 {
		t.Fatalf("region analyses = %d", len(res.Regions))
	}
	var aSum float64
	for _, r := range res.Regions {
		aSum += r.A
		if r.C < 0 || r.C > 1 || r.CMax < 0 || r.CMax > 1 {
			t.Fatalf("region %d has out-of-range recomputability: %+v", r.Region, r)
		}
	}
	if aSum < 0.99 || aSum > 1.01 {
		t.Fatalf("a_k sum = %v, want 1", aSum)
	}
}

func TestWorkflowFallsBackWhenCorrelationCannotDiscriminate(t *testing.T) {
	// EP never recomputes, so the success vector is constant and Spearman
	// cannot rank objects; the framework falls back to all candidates and
	// reports that EasyCrash does not reach τ.
	res := runWorkflow(t, "ep", core.Config{Tests: 30, Seed: 3, Tau: 0.2})
	if len(res.Critical) != len(res.Candidates) {
		t.Fatalf("fallback selection = %v, want all of %v", res.Critical, res.Candidates)
	}
	if res.MeetsTau {
		t.Fatalf("EP meets tau with predicted Y = %v, want unmet (paper excludes EP)", res.PredictedY)
	}
}

func TestWorkflowRespectsTsBudget(t *testing.T) {
	// With a tiny budget the knapsack must pick fewer/cheaper regions or a
	// lower frequency than with a generous one.
	gen := runWorkflow(t, "lu", core.Config{Tests: 40, Seed: 4, Ts: 0.20})
	tight := runWorkflow(t, "lu", core.Config{Tests: 40, Seed: 4, Ts: 0.002})
	costOf := func(r *core.Result) float64 {
		var c float64
		for _, reg := range r.Regions {
			if reg.Chosen {
				c += reg.Loss / float64(r.Frequency)
			}
		}
		return c
	}
	if costOf(tight) > 0.002+1e-9 {
		t.Fatalf("tight budget violated: cost %v", costOf(tight))
	}
	if costOf(gen) < costOf(tight) {
		t.Fatalf("generous budget chose less persistence (%v) than tight (%v)", costOf(gen), costOf(tight))
	}
}

func TestSelectObjectsDirectly(t *testing.T) {
	// Build a synthetic report: object "bad" has rates anti-correlated
	// with success, "noise" is uncorrelated, "flat" is constant.
	rep := &nvct.Report{}
	for i := 0; i < 40; i++ {
		success := i%2 == 0
		out := nvct.S4
		if success {
			out = nvct.S1
		}
		badRate := 0.8
		if success {
			badRate = 0.1 + float64(i)*0.001
		} else {
			badRate = 0.7 + float64(i)*0.001
		}
		rep.Tests = append(rep.Tests, nvct.TestResult{
			Outcome: out,
			Inconsistency: map[string]float64{
				"bad":   badRate,
				"noise": float64((i*37)%40) / 40,
				"flat":  0.5,
			},
		})
		rep.Counts[out]++
	}
	analyses, critical := core.SelectObjects(rep, 0.01)
	if len(critical) != 1 || critical[0] != "bad" {
		t.Fatalf("critical = %v, want [bad]", critical)
	}
	reasons := map[string]string{}
	for _, a := range analyses {
		reasons[a.Name] = a.Reason
	}
	if reasons["flat"] == "" {
		t.Fatal("constant object should carry a reason")
	}
	if reasons["noise"] == "" {
		t.Fatal("uncorrelated object should carry a reason")
	}
}

func TestSelectRegionsEquationFive(t *testing.T) {
	// A single expensive region: with the budget below its cost, frequency
	// interpolation (Equation 5) must engage rather than dropping it.
	golden := nvct.Golden{
		Iters:          10,
		MainAccesses:   10000,
		RegionAccesses: map[int]uint64{0: 10000},
		Regions:        1,
		Candidates:     nil,
	}
	baseline := &nvct.Report{Regions: 1}
	everywhere := &nvct.Report{Regions: 1}
	for i := 0; i < 20; i++ {
		baseline.Tests = append(baseline.Tests, nvct.TestResult{CrashRegion: 0, Outcome: nvct.S4})
		baseline.Counts[nvct.S4]++
		everywhere.Tests = append(everywhere.Tests, nvct.TestResult{CrashRegion: 0, Outcome: nvct.S1})
		everywhere.Counts[nvct.S1]++
	}
	// Fabricate a critical set with a known size via golden.Candidates.
	golden.Candidates = append(golden.Candidates, mem.Object{Name: "x", Size: 64 * 100, Candidate: true}) // 100 blocks
	cfg := core.Config{Ts: 0.02, FlushAccessCost: 1, Frequencies: []int64{1, 2, 4, 8}}
	// Loss at freq 1 = 10*100*1/10000 = 0.10 > Ts; freq 8 gives 0.0125 <= Ts.
	regions, chosen, freq, predicted := core.SelectRegions(golden, baseline, everywhere, []string{"x"}, cfg)
	if len(chosen) != 1 || freq < 8 {
		t.Fatalf("chosen=%v freq=%d, want region 0 at freq 8", chosen, freq)
	}
	if !regions[0].Chosen {
		t.Fatal("region analysis not marked chosen")
	}
	// Equation 5: gain scales by 1/x, so predicted Y = (1-0)/8.
	if predicted < 0.12 || predicted > 0.13 {
		t.Fatalf("predicted Y = %v, want 1/8", predicted)
	}
}

func TestKnapsackIntegration(t *testing.T) {
	// Regions with distinct gains and equal costs: the knapsack must take
	// the highest-gain regions first.
	items := []knapsack.Item{
		{Weight: 0.01, Value: 0.5},
		{Weight: 0.01, Value: 0.1},
		{Weight: 0.01, Value: 0.3},
	}
	chosen, total := knapsack.Solve(items, 0.02)
	if len(chosen) != 2 || total != 0.8 {
		t.Fatalf("chosen %v total %v", chosen, total)
	}
}

// TestWorkflowAllKernels is the integration sweep: the complete EasyCrash
// workflow must run on every kernel and never make recomputability worse
// than the baseline.
func TestWorkflowAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("all-kernel workflow sweep skipped with -short")
	}
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := runWorkflow(t, name, core.Config{Tests: 30, Seed: 14})
			if len(res.Candidates) == 0 {
				t.Fatal("no candidates recorded")
			}
			if len(res.Critical) == 0 {
				t.Fatal("no critical objects (fallback should have engaged)")
			}
			if res.PredictedY < 0 || res.PredictedY > 1 {
				t.Fatalf("predicted Y = %v", res.PredictedY)
			}
			if res.Final != nil && res.Final.Recomputability() < res.BaselineY-0.15 {
				t.Fatalf("EasyCrash made %s worse: %.2f -> %.2f",
					name, res.BaselineY, res.Final.Recomputability())
			}
			// The decision record covers every region exactly once.
			seen := map[int]bool{}
			for _, r := range res.Regions {
				if seen[r.Region] {
					t.Fatalf("duplicate region %d", r.Region)
				}
				seen[r.Region] = true
			}
			if len(seen) != res.Golden.Regions {
				t.Fatalf("region analyses %d != regions %d", len(seen), res.Golden.Regions)
			}
		})
	}
}

func TestKendallSelectionAgreesOnMG(t *testing.T) {
	// Ablation: Kendall's tau must select the same critical object for MG
	// as Spearman (the relationship is strongly monotone).
	f, _ := apps.New("mg", apps.ProfileTest)
	tester, err := nvct.NewTester(f, nvct.Config{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := tester.RunCampaign(nil, nvct.CampaignOpts{Tests: 60, Seed: 1})
	_, spearman := core.SelectObjectsWith(baseline, 0.01, "spearman")
	_, kendall := core.SelectObjectsWith(baseline, 0.01, "kendall")
	found := func(sel []string) bool {
		for _, s := range sel {
			if s == "u" {
				return true
			}
		}
		return false
	}
	if !found(spearman) || !found(kendall) {
		t.Fatalf("u not selected by both: spearman=%v kendall=%v", spearman, kendall)
	}
}

func TestWorkflowWithMediaFaults(t *testing.T) {
	// The workflow runs end to end on imperfect media: every campaign
	// injects faults, and the Step-4 production validation recovers from
	// detected-uncorrectable blocks via the scrub-and-fallback restart.
	res := runWorkflow(t, "mg", core.Config{
		Tests: 30, Seed: 1,
		Faults: faultmodel.Config{
			RBER:       1e-5,
			TornWrites: true,
			ECC:        faultmodel.SECDED(),
		},
	})
	if res.Policy == nil || res.Final == nil {
		t.Fatal("faulty-media workflow produced no production policy or validation")
	}
	if res.Final.Counts[nvct.SDue] != 0 {
		t.Fatalf("production validation returned %d DUE despite scrub-and-fallback",
			res.Final.Counts[nvct.SDue])
	}
	clean := runWorkflow(t, "mg", core.Config{Tests: 30, Seed: 1})
	if res.BaselineY > clean.BaselineY {
		t.Fatalf("media faults improved the baseline: %.3f vs %.3f", res.BaselineY, clean.BaselineY)
	}
}

func TestWorkflowValidatesUnderRecrash(t *testing.T) {
	// Step 4 with a re-crash depth: the production policy is validated under
	// the nested-failure model (crashes striking the recovery runs, scrub
	// fallback included) and the validation report carries the R(k) curve.
	res := runWorkflow(t, "mg", core.Config{
		Tests: 40, Seed: 1, RecrashDepth: 2,
		Faults: faultmodel.Config{RBER: 1e-5, TornWrites: true, ECC: faultmodel.SECDED()},
	})
	if res.Policy == nil || res.Final == nil {
		t.Fatal("nested workflow produced no production policy or validation")
	}
	// Steps 1-3 keep the single-crash model the selection statistics assume.
	if res.Baseline.MaxDepth() != 0 || res.CriticalEverywhere.MaxDepth() != 0 {
		t.Fatal("selection campaigns ran nested chains; they must stay single-crash")
	}
	if res.Final.MaxDepth() < 2 {
		t.Fatalf("validation MaxDepth = %d, want a K=2 chain to engage", res.Final.MaxDepth())
	}
	rk := res.Final.RecrashRecoverability()
	if len(rk) != res.Final.MaxDepth() {
		t.Fatalf("R(k) has %d entries for MaxDepth %d", len(rk), res.Final.MaxDepth())
	}
	if res.Final.Counts[nvct.SErr] != 0 {
		t.Fatalf("nested validation recorded %d engine errors", res.Final.Counts[nvct.SErr])
	}
}

func TestWorkflowContextCancellation(t *testing.T) {
	// A cancelled workflow returns promptly with the context error and the
	// partial evidence gathered so far instead of finishing the campaigns.
	f, err := apps.New("mg", apps.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := core.RunContext(ctx, f, core.Config{Tests: 40, Seed: 1})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled workflow dropped the partial result")
	}
	if res.Final != nil {
		t.Fatal("cancelled-before-start workflow still produced a validation campaign")
	}
}
