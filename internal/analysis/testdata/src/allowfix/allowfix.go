// Package allowfix is the framework fixture for //eclint:allow attachment,
// the stale-allow audit and justification enforcement. The fake analyzers in
// analysis_test.go report on every call to mark (analyzer "fake") and smark
// (analyzer "strict", which requires a justification); the assertions locate
// these lines by the MARK comments, so edits can move code freely.
package allowfix

func mark() int  { return 0 }
func smark() int { return 0 }

func sum(vs ...int) int {
	t := 0
	for _, v := range vs {
		t += v
	}
	return t
}

// suppressed exercises the trailing and line-above annotation forms.
func suppressed() {
	_ = mark() //eclint:allow fake — trailing annotation
	//eclint:allow fake — annotation on the line above
	_ = mark() // MARK:above
}

// multiLine exercises the statement-attachment rule: the annotation sits
// above the statement, the finding is reported on a continuation line.
func multiLine() {
	//eclint:allow fake — annotation above the multi-line statement
	_ = sum(
		mark(), // MARK:multiline
	)
}

// unsuppressed keeps one raw finding so the test proves reporting works.
func unsuppressed() {
	_ = mark() // MARK:unsuppressed
}

// stale carries an annotation that suppresses nothing (the audit's business)
// and one addressed to an analyzer outside the run (ignored).
func stale() {
	//eclint:allow fake — stale: the next line triggers nothing MARK:stale
	_ = sum()
	//eclint:allow notinrun — addressed to an analyzer that is not running
	_ = sum()
}

// strictAllows: a bare allow for a justification-requiring analyzer neither
// suppresses nor passes silently; the reasoned one suppresses.
func strictAllows() {
	//eclint:allow strict
	_ = smark() // MARK:strictraw
	_ = smark() //eclint:allow strict — justified deliberate violation
}
