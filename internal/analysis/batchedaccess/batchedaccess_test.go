package batchedaccess_test

import (
	"path/filepath"
	"testing"

	"easycrash/internal/analysis/analysistest"
	"easycrash/internal/analysis/batchedaccess"
)

func TestBatchedAccess(t *testing.T) {
	dir := filepath.Join("testdata", "src", "kernel")
	analysistest.Run(t, dir, "easycrash/internal/apps/fixture", batchedaccess.Analyzer)
}

// TestScope: the same fixture loaded outside internal/apps must produce no
// findings — per-element loops are only performance-load-bearing in kernels.
func TestScope(t *testing.T) {
	dir := filepath.Join("testdata", "src", "kernel")
	if fs := analysistest.Findings(t, dir, "easycrash/internal/tools/fixture", batchedaccess.Analyzer); len(fs) != 0 {
		t.Fatalf("out-of-scope fixture produced findings: %v", fs)
	}
}
