// Package kernel is the batchedaccess fixture: per-element slice accessors
// and raw demand accessors inside loops must be reported unless the index is
// a compile-time constant or the site carries a justified allow; stream and
// run accessors must stay silent.
package kernel

import (
	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

func perElementLoop(m *sim.Machine, o mem.Object) float64 {
	u := m.F64(o)
	var sum float64
	for i := 0; i < u.Len(); i++ {
		sum += u.At(i) // want `per-element F64Slice.At in a loop`
	}
	return sum
}

func perElementStore(m *sim.Machine, o mem.Object) {
	h := m.I64(o)
	for i := 0; i < h.Len(); i++ {
		h.Set(i, int64(i)) // want `per-element I64Slice.Set in a loop`
	}
}

func rawAccessorLoop(m *sim.Machine, o mem.Object) {
	for i := 0; i < 8; i++ {
		m.StoreF64(o.Addr+uint64(i)*8, 1.5) // want `per-element Machine.StoreF64 in a loop`
	}
}

func rangeLoop(m *sim.Machine, o mem.Object, xs []float64) {
	u := m.F64(o)
	for i, x := range xs {
		u.Set(i, x) // want `per-element F64Slice.Set in a loop`
	}
}

func streamed(m *sim.Machine, o mem.Object) float64 {
	s := m.F64Stream(o)
	var sum float64
	for i := 0; i < s.Len(); i++ {
		sum += s.At(i) // streams are the fix, not the bug
	}
	return sum
}

func runs(m *sim.Machine, o mem.Object, buf []float64) {
	u := m.F64(o)
	for it := 0; it < 4; it++ {
		u.LoadRun(0, buf)
		u.StoreRun(len(buf), buf)
	}
}

func constantIndex(m *sim.Machine, o mem.Object) {
	scal := m.F64(o)
	for it := 0; it < 4; it++ {
		scal.Set(0, float64(it)) // one-element bookkeeping: nothing to batch
	}
}

func outsideLoop(m *sim.Machine, o mem.Object, i int) float64 {
	return m.F64(o).At(i)
}

func annotated(m *sim.Machine, o mem.Object, idx []int) float64 {
	u := m.F64(o)
	var sum float64
	for _, j := range idx {
		//eclint:allow batchedaccess — indirect gather, not stride-regular
		sum += u.At(j)
	}
	return sum
}
