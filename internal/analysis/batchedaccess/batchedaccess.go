// Package batchedaccess flags per-element simulated-memory traffic inside
// kernel loops.
//
// The batched engine makes stride-regular element traffic nearly free:
// sim.F64Stream / sim.I64Stream memoize block residency across consecutive
// accesses, and F64Slice.LoadRun / StoreRun account whole block segments at
// once. A kernel loop that calls the per-element slice accessors (At / Set)
// or the raw Machine demand accessors instead walks the full hierarchy
// lookup on every element — the exact path this engine exists to avoid — and
// silently gives up an order of magnitude of campaign throughput.
//
// The check fires on At / Set calls on sim.F64Slice / sim.I64Slice and on
// Machine.LoadF64 / StoreF64 / LoadI64 / StoreI64 calls that sit lexically
// inside a for or range statement and whose index (or address) argument is
// not a compile-time constant. Constant indices — the scal.Set(0, ...) /
// itv.Set(0, it+1) bookkeeping idiom — are one-element accesses with nothing
// to batch and stay silent. Genuinely irregular sites (indirect gathers,
// hash- or data-addressed scatters, strides that wrap mod n) are legitimate
// scalar traffic: annotate them with
//
//	//eclint:allow batchedaccess — <why the access is not stride-regular>
//
// The justification is mandatory; a stale or reasonless annotation is itself
// a finding. The check is scoped to the benchmark kernels (internal/apps),
// where the access loops are the simulation's inner loops; elsewhere
// per-element traffic is not performance-load-bearing.
package batchedaccess

import (
	"go/ast"
	"go/token"
	"regexp"

	"easycrash/internal/analysis"
)

const simPath = "easycrash/internal/sim"

// scope matches the import paths where per-element loops are hot.
var scope = regexp.MustCompile(`^easycrash/internal/apps($|/)`)

// sliceMethods are the per-element accessors of the typed views.
var sliceMethods = map[string]map[string]bool{
	"F64Slice": {"At": true, "Set": true},
	"I64Slice": {"At": true, "Set": true},
}

// machineMethods are the raw per-element demand accessors.
var machineMethods = map[string]bool{
	"LoadF64": true, "StoreF64": true, "LoadI64": true, "StoreI64": true,
}

// Analyzer is the batchedaccess check.
var Analyzer = &analysis.Analyzer{
	Name:          "batchedaccess",
	Doc:           "flags per-element slice At/Set and Machine demand accessors in kernel loops; stride-regular traffic should ride F64Stream/I64Stream or LoadRun/StoreRun",
	RequireReason: true,
	Run:           run,
}

func run(pass *analysis.Pass) error {
	if !scope.MatchString(analysis.EffectivePath(pass.Path)) {
		return nil
	}
	for _, file := range pass.Files {
		loops := loopBodies(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !loops.contains(call.Pos()) {
				return true
			}
			fn := analysis.CalleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			pkg, typ, ok := analysis.RecvNamed(fn)
			if !ok || pkg != simPath {
				return true
			}
			perElement := sliceMethods[typ][fn.Name()] ||
				(typ == "Machine" && machineMethods[fn.Name()])
			if !perElement || constantExpr(pass, call.Args[0]) {
				return true
			}
			pass.Reportf(call.Pos(),
				"per-element %s.%s in a loop walks the full hierarchy lookup each access; stride-regular traffic should use F64Stream/I64Stream or LoadRun/StoreRun",
				typ, fn.Name())
			return true
		})
	}
	return nil
}

// constantExpr reports whether e's value is known at compile time — a
// one-element access with nothing to batch.
func constantExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}

// bodySpans records the source intervals of every for/range body in a file.
type bodySpans []span

type span struct{ lo, hi token.Pos }

func loopBodies(file *ast.File) bodySpans {
	var out bodySpans
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			out = append(out, span{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			out = append(out, span{n.Body.Pos(), n.Body.End()})
		}
		return true
	})
	return out
}

func (b bodySpans) contains(pos token.Pos) bool {
	for _, s := range b {
		if pos >= s.lo && pos < s.hi {
			return true
		}
	}
	return false
}
