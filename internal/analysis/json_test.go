package analysis_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"easycrash/internal/analysis"
)

func sample() analysis.Finding {
	return analysis.Finding{
		Analyzer: "persistorder",
		Pos:      token.Position{Filename: "/repo/internal/pmemkv/pmemkv.go", Line: 225, Column: 2},
		Message:  "store reaches the commit mark without a fenced flush",
	}
}

// TestFindingJSONRelativize pins the DTO shape and the file relativization
// that keeps baselines portable across checkouts.
func TestFindingJSONRelativize(t *testing.T) {
	f := sample()
	j := f.JSON("/repo")
	if j.File != "internal/pmemkv/pmemkv.go" {
		t.Errorf("relativized file = %q", j.File)
	}
	if out := f.JSON("/elsewhere"); out.File != "/repo/internal/pmemkv/pmemkv.go" {
		t.Errorf("file outside dir must stay absolute, got %q", out.File)
	}

	var buf bytes.Buffer
	if err := analysis.WriteFindingsJSON(&buf, []analysis.FindingJSON{j}); err != nil {
		t.Fatalf("WriteFindingsJSON: %v", err)
	}
	// The field names are a compatibility contract with CI scripts.
	for _, key := range []string{`"analyzer"`, `"file"`, `"line"`, `"column"`, `"message"`, `"suppressed"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("serialised finding missing %s:\n%s", key, buf.String())
		}
	}
	var back []analysis.FindingJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil || len(back) != 1 || back[0] != j {
		t.Errorf("round trip = %v, %v", back, err)
	}
}

// TestWriteFindingsJSONEmpty pins that no findings encodes as [], never
// null — consumers index into the array unconditionally.
func TestWriteFindingsJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteFindingsJSON(&buf, nil); err != nil {
		t.Fatalf("WriteFindingsJSON: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings = %q, want []", got)
	}
}

// TestBaseline pins the diff contract: line and column drift does not make a
// finding new; a changed message or file does.
func TestBaseline(t *testing.T) {
	f := sample().JSON("/repo")
	var buf bytes.Buffer
	if err := analysis.WriteFindingsJSON(&buf, []analysis.FindingJSON{f}); err != nil {
		t.Fatalf("WriteFindingsJSON: %v", err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	base, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}

	moved := f
	moved.Line, moved.Column = 999, 7
	if !base.Has(moved) {
		t.Errorf("baseline must match a finding that only moved lines")
	}
	changed := f
	changed.Message = "different defect"
	if base.Has(changed) {
		t.Errorf("baseline must not match a different message")
	}
	otherFile := f
	otherFile.File = "internal/pmemkv/oracle.go"
	if base.Has(otherFile) {
		t.Errorf("baseline must not match a different file")
	}

	if _, err := analysis.LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Errorf("LoadBaseline on a missing file must error")
	}
}
