// Package loading for eclint, built on `go list -export` and the standard
// library's gc export-data importer: target packages are parsed and
// type-checked from source, while every dependency (including the standard
// library) is imported from the compiled export data the go command already
// keeps in its build cache. No code outside the toolchain is needed.

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path; for LoadDir, the caller-chosen fixture path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
}

// goList runs `go list -export -deps -json` in dir over the given patterns.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` reported, via the standard library's gc importer.
type exportImporter struct {
	exports map[string]string // import path -> export data file
	gc      types.Importer
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	imp := &exportImporter{exports: exports}
	imp.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
	return imp
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.Import(path)
}

// LoadPatterns loads the packages matching the go package patterns (for
// example "./...") relative to dir, type-checking each matched package from
// source with its dependencies imported from export data.
func LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads the single package in dir under a caller-chosen import path.
// It exists for analyzer tests: testdata fixture packages are invisible to
// go package patterns, and the chosen path lets a fixture stand in for a
// scoped package (for example easycrash/internal/apps/...). Imports are
// resolved against the real module, so fixtures use the real mem and sim
// packages.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	// Parse first to learn the imports, then resolve them all (plus their
	// dependencies) to export data in one go list run.
	fset := token.NewFileSet()
	asts, err := parseFiles(fset, files)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var imports []string
	for _, f := range asts {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		sort.Strings(imports)
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return checkFiles(fset, newExportImporter(fset, exports), importPath, dir, asts)
}

func parseFiles(fset *token.FileSet, files []string) ([]*ast.File, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		asts = append(asts, f)
	}
	return asts, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	asts, err := parseFiles(fset, files)
	if err != nil {
		return nil, err
	}
	return checkFiles(fset, imp, path, dir, asts)
}

func checkFiles(fset *token.FileSet, imp types.Importer, path, dir string, asts []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := types.Config{Importer: imp}
	tpkg, err := cfg.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}
