// Package campaigndet flags sources of nondeterminism in kernels and
// crash-campaign code: the process-global math/rand generator, wall-clock
// reads via time.Now, and iteration over Go maps (whose order is randomized
// by the runtime).
//
// Crash campaigns are replayed from a seed: PR 1's media-fault injection
// derives per-test fault seeds from the campaign seed, and debugging a
// failed test depends on re-running it bit-for-bit. Any of the three
// constructs silently breaks that contract — the campaign still passes, it
// just stops being reproducible.
//
// The check is scoped to the packages where determinism is load-bearing:
// the benchmark kernels (internal/apps), the campaign engine and its
// callbacks (internal/nvct, internal/core, internal/sim), the media-fault
// injector whose RNG stream nested-failure chains replay across power
// losses (internal/faultmodel), the persistent KV workload whose oracle
// verdicts are replayed by trial index (internal/pmemkv), the public facade
// (easycrash) and the runnable examples. Elsewhere — one-shot CLI printing,
// offline analysis — wall clocks and maps are fine and not worth the noise.
// Intentional uses inside the scope (a -timeout deadline, a commutative
// reduction over a map) carry an //eclint:allow campaigndet annotation with
// a justification.
package campaigndet

import (
	"go/ast"
	"go/types"
	"regexp"

	"easycrash/internal/analysis"
)

// scope matches the import paths where determinism is load-bearing.
var scope = regexp.MustCompile(`^easycrash($|/examples/|/internal/(apps|nvct|core|sim|faultmodel|pmemkv)($|/))`)

// seededConstructors are the math/rand functions that build seeded local
// generators — the fix, not the bug.
var seededConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Analyzer is the campaigndet check.
var Analyzer = &analysis.Analyzer{
	Name: "campaigndet",
	Doc:  "flags global math/rand, time.Now and map iteration in kernels and campaign code, which break deterministic crash-campaign replay",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !scope.MatchString(analysis.EffectivePath(pass.Path)) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if _, _, isMethod := analysis.RecvNamed(fn); isMethod {
		return // methods on a seeded *rand.Rand are the deterministic path
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand.%s draws from process-wide state and breaks deterministic campaign replay; use a *rand.Rand seeded from the campaign seed",
				fn.Name())
		}
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now makes campaign behaviour depend on the wall clock; derive deadlines from configuration, or annotate an intentional timeout with //eclint:allow campaigndet")
		}
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
		pass.Reportf(rng.Pos(),
			"map iteration order is randomized and breaks deterministic campaign replay; sort the keys first, or annotate an order-insensitive reduction with //eclint:allow campaigndet")
	}
}
