package campaigndet_test

import (
	"path/filepath"
	"testing"

	"easycrash/internal/analysis/analysistest"
	"easycrash/internal/analysis/campaigndet"
)

func TestCampaignDet(t *testing.T) {
	dir := filepath.Join("testdata", "src", "kernel")
	analysistest.Run(t, dir, "easycrash/internal/apps/fixture", campaigndet.Analyzer)
}

// TestOutOfScope loads the same fixture under an import path outside the
// determinism-critical set; the analyzer must stay completely silent there.
func TestOutOfScope(t *testing.T) {
	dir := filepath.Join("testdata", "src", "kernel")
	findings := analysistest.Findings(t, dir, "easycrash/internal/report/fixture", campaigndet.Analyzer)
	for _, f := range findings {
		t.Errorf("finding outside campaign scope: %s", f)
	}
}

// TestFaultmodelInScope loads the fixture under the fault injector's import
// path: the injector's RNG stream is replayed across the power losses of a
// nested-failure chain, so nondeterminism there breaks campaign replay and
// the analyzer must flag it like campaign code.
func TestFaultmodelInScope(t *testing.T) {
	dir := filepath.Join("testdata", "src", "kernel")
	findings := analysistest.Findings(t, dir, "easycrash/internal/faultmodel/fixture", campaigndet.Analyzer)
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings under the faultmodel path; scope does not cover the injector")
	}
}

// TestPmemkvInScope loads the fixture under the persistent KV workload's
// import path: campaign trials (and their oracle verdicts) are replayed by
// seed and trial index, including the -repro single-trial path, so the store
// must be as deterministic as the engine that drives it.
func TestPmemkvInScope(t *testing.T) {
	dir := filepath.Join("testdata", "src", "kernel")
	findings := analysistest.Findings(t, dir, "easycrash/internal/pmemkv/fixture", campaigndet.Analyzer)
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings under the pmemkv path; scope does not cover the KV workload")
	}
}
