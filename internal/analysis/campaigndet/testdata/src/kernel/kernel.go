// Package kernel is the campaigndet fixture: global math/rand, time.Now and
// map ranges must be reported; seeded generators, sorted iteration and
// annotated exceptions must stay silent.
package kernel

import (
	"math/rand"
	"sort"
	"time"
)

func globalRand(n int) float64 {
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand\.Shuffle draws from process-wide state`
	if rand.Intn(n) == 0 {             // want `global math/rand\.Intn draws from process-wide state`
		return rand.Float64() // want `global math/rand\.Float64 draws from process-wide state`
	}
	return 0
}

// seededRand is the deterministic-replay idiom: a local generator seeded
// from the campaign seed. Constructors and methods must not fire.
func seededRand(seed int64, n int) float64 {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) {})
	if rng.Intn(n) == 0 {
		return rng.Float64()
	}
	return 0
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now makes campaign behaviour depend on the wall clock`
}

func allowedDeadline(d time.Duration) time.Time {
	//eclint:allow campaigndet — operator-facing watchdog, not part of replayed state
	return time.Now().Add(d)
}

func clockFreeTime(d time.Duration) time.Duration {
	// Duration arithmetic and fixed conversions never read the wall clock.
	return d + 2*time.Second + time.Unix(0, 0).Sub(time.Unix(0, 0))
}

func mapOrder(scores map[string]float64) float64 {
	var sum float64
	for _, v := range scores { // want `map iteration order is randomized`
		sum += v
	}
	return sum
}

// sortedOrder is the deterministic fix: collect and sort the keys, then
// index the map. The key-collection range is itself order-insensitive and
// carries the sanctioned annotation.
func sortedOrder(scores map[string]float64) float64 {
	keys := make([]string, 0, len(scores))
	//eclint:allow campaigndet — key collection, sorted below
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += scores[k]
	}
	return sum
}

// allowedReduction: a commutative fold over a map is order-insensitive and
// may be annotated instead of sorted.
func allowedReduction(counts map[string]int) int {
	total := 0
	//eclint:allow campaigndet — commutative sum, order-insensitive
	for _, c := range counts {
		total += c
	}
	return total
}

func sliceOrder(xs []float64) float64 {
	var sum float64
	for _, v := range xs { // slices iterate in index order: silent
		sum += v
	}
	return sum
}
