// Package analysistest runs eclint analyzers over testdata fixture packages
// and checks their findings against `// want` comments, following the
// conventions of golang.org/x/tools/go/analysis/analysistest:
//
//	im.RawWrite(0, b) // want `bypasses the simulated cache hierarchy`
//
// A want comment carries one or more Go string literals, each a regular
// expression that must match the message of a distinct finding reported on
// that line. Findings without a matching want, and wants without a matching
// finding, fail the test.
//
// Fixtures live under testdata/src/<name>/ and are loaded with a
// caller-chosen import path, so a fixture can stand in for a scoped package
// (e.g. easycrash/internal/apps/...) while importing the real mem and sim
// packages.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"easycrash/internal/analysis"
)

// Run loads the fixture package in dir under importPath, applies the
// analyzers, and compares findings with the fixture's want comments.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, findings := load(t, dir, importPath, analyzers)
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}

	for _, f := range findings {
		key := posKey{f.Pos.Filename, f.Pos.Line}
		if !wants.match(key, f.Message) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: no finding matched want %q", key.file, key.line, e.rx.String())
			}
		}
	}
}

// Findings loads the fixture package in dir under importPath and returns the
// raw findings, ignoring want comments. Scope tests use it to prove an
// analyzer stays silent when the same fixture is loaded under an
// out-of-scope import path; stale-allow audit findings are filtered out,
// because out of scope every allow is trivially stale — that is the
// framework speaking, not the analyzer under test.
func Findings(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) []analysis.Finding {
	t.Helper()
	_, findings := load(t, dir, importPath, analyzers)
	var out []analysis.Finding
	for _, f := range findings {
		if f.Analyzer != analysis.AuditName {
			out = append(out, f)
		}
	}
	return out
}

func load(t *testing.T, dir, importPath string, analyzers []*analysis.Analyzer) (*analysis.Package, []analysis.Finding) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	all, err := analysis.RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	// Suppressed findings are invisible to fixtures, like they are to
	// cmd/eclint's exit code: a fixture line under an //eclint:allow needs no
	// want comment.
	var findings []analysis.Finding
	for _, f := range all {
		if !f.Suppressed {
			findings = append(findings, f)
		}
	}
	return pkg, findings
}

type posKey struct {
	file string
	line int
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

type wantMap map[posKey][]*expectation

func (w wantMap) match(key posKey, message string) bool {
	for _, e := range w[key] {
		if !e.matched && e.rx.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

// wantRe matches any comment that *claims* to be a want comment, including
// degenerate ones with nothing after the keyword. Matching broadly and then
// validating is what makes malformed wants fail loudly: a want that silently
// matched nothing would let an analyzer regress without failing its fixture.
var wantRe = regexp.MustCompile(`//\s*want\b(.*)$`)

func collectWants(pkg *analysis.Package) (wantMap, error) {
	wants := wantMap{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey{pos.Filename, pos.Line}
				rest := strings.TrimSpace(m[1])
				if rest == "" {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q: no pattern after the keyword", pos.Filename, pos.Line, c.Text)
				}
				for rest != "" {
					lit, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: malformed want comment %q: pattern is not a Go string literal: %w", pos.Filename, pos.Line, c.Text, err)
					}
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: unquoting %s: %w", pos.Filename, pos.Line, lit, err)
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, pattern, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
					rest = strings.TrimSpace(rest[len(lit):])
				}
			}
		}
	}
	return wants, nil
}

// String formats a finding list for debugging test failures.
func String(findings []analysis.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "%s\n", f)
	}
	return b.String()
}
