// Package analysistest runs eclint analyzers over testdata fixture packages
// and checks their findings against `// want` comments, following the
// conventions of golang.org/x/tools/go/analysis/analysistest:
//
//	im.RawWrite(0, b) // want `bypasses the simulated cache hierarchy`
//
// A want comment carries one or more Go string literals, each a regular
// expression that must match the message of a distinct finding reported on
// that line. Findings without a matching want, and wants without a matching
// finding, fail the test.
//
// Fixtures live under testdata/src/<name>/ and are loaded with a
// caller-chosen import path, so a fixture can stand in for a scoped package
// (e.g. easycrash/internal/apps/...) while importing the real mem and sim
// packages.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"easycrash/internal/analysis"
)

// Run loads the fixture package in dir under importPath, applies the
// analyzers, and compares findings with the fixture's want comments.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, findings := load(t, dir, importPath, analyzers)
	wants := collectWants(t, pkg)

	for _, f := range findings {
		key := posKey{f.Pos.Filename, f.Pos.Line}
		if !wants.match(key, f.Message) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: no finding matched want %q", key.file, key.line, e.rx.String())
			}
		}
	}
}

// Findings loads the fixture package in dir under importPath and returns the
// raw findings, ignoring want comments. Scope tests use it to prove an
// analyzer stays silent when the same fixture is loaded under an
// out-of-scope import path.
func Findings(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) []analysis.Finding {
	t.Helper()
	_, findings := load(t, dir, importPath, analyzers)
	return findings
}

func load(t *testing.T, dir, importPath string, analyzers []*analysis.Analyzer) (*analysis.Package, []analysis.Finding) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := analysis.RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	return pkg, findings
}

type posKey struct {
	file string
	line int
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

type wantMap map[posKey][]*expectation

func (w wantMap) match(key posKey, message string) bool {
	for _, e := range w[key] {
		if !e.matched && e.rx.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, pkg *analysis.Package) wantMap {
	t.Helper()
	wants := wantMap{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey{pos.Filename, pos.Line}
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					lit, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
					}
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, lit, err)
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
					rest = strings.TrimSpace(rest[len(lit):])
				}
			}
		}
	}
	return wants
}

// String formats a finding list for debugging test failures.
func String(findings []analysis.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "%s\n", f)
	}
	return b.String()
}
