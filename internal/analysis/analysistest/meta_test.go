package analysistest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"easycrash/internal/analysis"
)

// loadSource writes one fixture file into a temp dir and loads it.
func loadSource(t *testing.T, src string) *analysis.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatalf("writing fixture: %v", err)
	}
	pkg, err := analysis.LoadDir(dir, "fix")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return pkg
}

// TestMalformedWantFailsLoudly is the harness meta-test: a want comment that
// cannot possibly match anything must be an error, never a silent no-op —
// otherwise a future analyzer's fixture can pass while pinning nothing.
func TestMalformedWantFailsLoudly(t *testing.T) {
	cases := []struct {
		name    string
		comment string
		errLike string
	}{
		{"bare keyword", "// want", "no pattern after the keyword"},
		{"unquoted pattern", "// want not-a-literal", "not a Go string literal"},
		{"bad regexp", "// want `(`", "bad want pattern"},
		{"trailing junk after literal", "// want \"x\" junk", "not a Go string literal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pkg := loadSource(t, "package fix\n\nfunc f() {} "+c.comment+"\n")
			_, err := collectWants(pkg)
			if err == nil {
				t.Fatalf("collectWants accepted malformed comment %q", c.comment)
			}
			if !strings.Contains(err.Error(), c.errLike) {
				t.Errorf("error %q does not mention %q", err, c.errLike)
			}
		})
	}
}

// TestWellFormedWants pins the accepted forms, so tightening the malformed
// detection cannot eat legitimate fixtures.
func TestWellFormedWants(t *testing.T) {
	pkg := loadSource(t, strings.Join([]string{
		"package fix",
		"",
		"func f() {} // want `one`",
		"func g() {} // want \"two\" `three`",
		"// a prose comment mentioning that we want nothing here",
		"func h() {}",
	}, "\n"))
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("collectWants: %v", err)
	}
	n := 0
	for _, exps := range wants {
		n += len(exps)
	}
	if n != 3 {
		t.Errorf("want 3 expectations, got %d (%v)", n, wants)
	}
}
