// Package directmem flags calls that read or write the simulated NVM image
// directly, bypassing the cache hierarchy.
//
// EasyCrash's value-accurate simulation depends on every application access
// flowing through cachesim: only cache write-backs and explicit flushes may
// reach the mem.Image, so the durable/volatile split at a crash is exactly
// what real hardware would produce. The raw accessors on mem.Image (Bytes,
// RawWrite, Float64At, SetFloat64At, Int64At, SetInt64At) exist for
// out-of-band work — restoring checkpoints, injecting media faults,
// postmortem inspection — and any use on a kernel's compute path silently
// destroys value accuracy without failing a single test.
//
// Legitimate recovery/validation paths are annotated:
//
//	//eclint:allow directmem — reads the durable image for postmortem analysis
package directmem

import (
	"go/ast"

	"easycrash/internal/analysis"
)

// memPath is the import path of the simulated-NVM package.
const memPath = "easycrash/internal/mem"

// rawAccessors are the (*mem.Image) methods that bypass the cache hierarchy.
var rawAccessors = map[string]bool{
	"Bytes":        true,
	"RawWrite":     true,
	"Float64At":    true,
	"SetFloat64At": true,
	"Int64At":      true,
	"SetInt64At":   true,
}

// Analyzer is the directmem check.
var Analyzer = &analysis.Analyzer{
	Name: "directmem",
	Doc:  "flags raw mem.Image access that bypasses the simulated cache hierarchy and breaks value accuracy",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.Info, call)
			if fn == nil || !rawAccessors[fn.Name()] {
				return true
			}
			if pkg, typ, ok := analysis.RecvNamed(fn); !ok || pkg != memPath || typ != "Image" {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to (*mem.Image).%s bypasses the simulated cache hierarchy and breaks value accuracy; route accesses through sim.Machine, or annotate an out-of-band recovery/validation path with //eclint:allow directmem",
				fn.Name())
			return true
		})
	}
	return nil
}
