// Package kernel is the directmem fixture: raw image access on a compute
// path must be reported, in-band access and annotated recovery paths must
// stay silent.
package kernel

import (
	"bytes"

	"easycrash/internal/mem"
)

func rawReads(im *mem.Image) float64 {
	_ = im.Bytes(0, 8)     // want `\(\*mem\.Image\)\.Bytes bypasses the simulated cache hierarchy`
	_ = im.Int64At(16)     // want `\(\*mem\.Image\)\.Int64At bypasses`
	return im.Float64At(0) // want `\(\*mem\.Image\)\.Float64At bypasses`
}

func rawWrites(im *mem.Image) {
	im.RawWrite(0, []byte{1}) // want `\(\*mem\.Image\)\.RawWrite bypasses`
	im.SetFloat64At(8, 1.5)   // want `\(\*mem\.Image\)\.SetFloat64At bypasses`
	im.SetInt64At(16, 2)      // want `\(\*mem\.Image\)\.SetInt64At bypasses`
}

func annotatedRecovery(im *mem.Image) float64 {
	//eclint:allow directmem — postmortem read of the durable image
	v := im.Float64At(0)
	im.RawWrite(0, nil) //eclint:allow directmem — out-of-band checkpoint reload
	return v
}

func inBand(im *mem.Image) {
	var b [mem.BlockSize]byte
	im.ReadBlock(0, b[:])
	im.WriteBlock(0, b[:])
	_ = im.Size()
	_ = im.Snapshot()
}

// otherBytes must not be confused with (*mem.Image).Bytes.
func otherBytes(buf *bytes.Buffer) []byte { return buf.Bytes() }
