package directmem_test

import (
	"path/filepath"
	"testing"

	"easycrash/internal/analysis/analysistest"
	"easycrash/internal/analysis/directmem"
)

func TestDirectmem(t *testing.T) {
	dir := filepath.Join("testdata", "src", "kernel")
	analysistest.Run(t, dir, "easycrash/internal/apps/fixture", directmem.Analyzer)
}
