// Package kernel is the regionpairs fixture: every sanctioned pairing idiom
// from the real kernels must stay silent, and each class of imbalance must
// be reported.
package kernel

import (
	"errors"

	"easycrash/internal/sim"
)

var errCorrupt = errors.New("corrupted state")

// wellFormed is the canonical kernel main loop: deferred MainLoopEnd,
// balanced regions, a conditional region balanced in both arms.
func wellFormed(m *sim.Machine, n int) {
	m.MainLoopBegin()
	defer m.MainLoopEnd()
	for it := 0; it < n; it++ {
		m.BeginIteration(int64(it))
		m.BeginRegion(0)
		m.EndRegion(0)
		if n > 3 {
			m.BeginRegion(1)
			m.EndRegion(1)
		} else {
			m.BeginRegion(1)
			m.EndRegion(1)
		}
		m.EndIteration(int64(it))
	}
}

// abortIdiom is the sanctioned early-out: an explicit MainLoopEnd resets the
// region state before returning ErrInterrupted (response S3).
func abortIdiom(m *sim.Machine, bad bool) error {
	m.MainLoopBegin()
	defer m.MainLoopEnd()
	m.BeginIteration(0)
	m.BeginRegion(0)
	if bad {
		m.MainLoopEnd()
		return errCorrupt
	}
	m.EndRegion(0)
	m.EndIteration(0)
	return nil
}

// deferredRegion closes its region on every exit, including crash panics.
func deferredRegion(m *sim.Machine, bad bool) {
	m.BeginRegion(2)
	defer m.EndRegion(2)
	if bad {
		return
	}
}

// panicPath: an explicit panic hands the machine to the campaign driver,
// which discards it — no balance requirement.
func panicPath(m *sim.Machine, bad bool) {
	m.MainLoopBegin()
	m.BeginRegion(0)
	if bad {
		panic(errCorrupt)
	}
	m.EndRegion(0)
	m.MainLoopEnd()
}

// closeHelper only closes a marker its caller opened; underflow is not an
// error in a function that never opens that marker kind itself.
func closeHelper(m *sim.Machine) {
	m.EndRegion(3)
}

// switchBalanced: all switch arms (and the implicit no-match path) agree.
func switchBalanced(m *sim.Machine, mode int) {
	switch mode {
	case 0:
		m.BeginRegion(0)
		m.EndRegion(0)
	default:
		m.BeginRegion(1)
		m.EndRegion(1)
	}
}

// earlyReturn leaks region 0 on the bad path.
func earlyReturn(m *sim.Machine, bad bool) error {
	m.MainLoopBegin()
	defer m.MainLoopEnd()
	m.BeginIteration(0) // want `BeginIteration\(0\) is never closed on the path reaching the return`
	m.BeginRegion(0)    // want `BeginRegion\(0\) is never closed on the path reaching the return`
	if bad {
		return errCorrupt
	}
	m.EndRegion(0)
	m.EndIteration(0)
	return nil
}

// loopLeak opens a region every iteration without closing it.
func loopLeak(m *sim.Machine, n int) {
	m.MainLoopBegin()
	for i := 0; i < n; i++ {
		m.BeginRegion(0) // want `BeginRegion\(0\) opened in a loop body is not closed within the body`
	}
	m.MainLoopEnd()
}

// branchLeak opens a region in only one arm of a conditional.
func branchLeak(m *sim.Machine, c bool) {
	m.MainLoopBegin()
	if c {
		m.BeginRegion(0) // want `BeginRegion\(0\) is closed on some paths but not others`
	}
	m.MainLoopEnd()
}

// mismatch closes a different region than it opened.
func mismatch(m *sim.Machine) {
	m.BeginRegion(1)
	m.EndRegion(2) // want `EndRegion\(2\) closes BeginRegion\(1\) opened at line`
}

// underflow calls EndRegion twice in a function that opens regions itself.
func underflow(m *sim.Machine) {
	m.BeginRegion(0)
	m.EndRegion(0)
	m.EndRegion(0) // want `EndRegion without a matching BeginRegion on this path`
}

// unclosedMain never ends the main loop.
func unclosedMain(m *sim.Machine) {
	m.MainLoopBegin() // want `MainLoopBegin is never closed on the path reaching the end of function`
	m.BeginRegion(0)
	m.EndRegion(0)
}

// iterLeak forgets EndIteration on the early-converged path.
func iterLeak(m *sim.Machine, n int) {
	m.MainLoopBegin()
	defer m.MainLoopEnd()
	for it := 0; it < n; it++ {
		m.BeginIteration(int64(it)) // want `BeginIteration opened in a loop body is not closed within the body`
		if it == n/2 {
			continue
		}
		m.EndIteration(int64(it))
	}
}
