package regionpairs_test

import (
	"path/filepath"
	"testing"

	"easycrash/internal/analysis/analysistest"
	"easycrash/internal/analysis/regionpairs"
)

func TestRegionPairs(t *testing.T) {
	dir := filepath.Join("testdata", "src", "kernel")
	analysistest.Run(t, dir, "easycrash/internal/apps/fixture", regionpairs.Analyzer)
}
