// Package regionpairs checks that the sim.Machine instrumentation markers —
// BeginRegion/EndRegion, BeginIteration/EndIteration and
// MainLoopBegin/MainLoopEnd — pair up on every structured control-flow path
// through a function: early returns, divergent if/switch branches, and loop
// bodies that would leave a marker open for the next iteration.
//
// An unbalanced marker is silent data corruption for the whole methodology:
// a region left open misattributes every subsequent access to the wrong a_k
// weight (Equation 1) and skips the Persister.RegionEnd flush the policy
// promised, so campaigns measure a policy that was never actually run.
//
// The walker understands the repo's two sanctioned escape hatches:
//
//   - `defer m.MainLoopEnd()` (or a deferred EndRegion/EndIteration) closes
//     its marker on every exit, including crash panics unwinding through the
//     kernel — the paper's crash delivery mechanism;
//   - an explicit m.MainLoopEnd() call closes the main loop AND abandons any
//     open region/iteration, because the real implementation resets the
//     region state — this is the documented abort idiom kernels use when
//     corrupted state interrupts a restarted run (response S3).
//
// Explicit panic(...) calls terminate a path without balance checks: the
// machine is discarded by the campaign driver, exactly like a simulated
// crash. A function that only closes markers (a helper ending a region its
// caller opened) is not reported: underflow is only an error in functions
// that also open the same kind of marker.
package regionpairs

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"easycrash/internal/analysis"
)

// simPath is the import path of the machine the markers live on.
const simPath = "easycrash/internal/sim"

// Analyzer is the regionpairs check.
var Analyzer = &analysis.Analyzer{
	Name: "regionpairs",
	Doc:  "checks BeginRegion/EndRegion, BeginIteration/EndIteration and MainLoopBegin/MainLoopEnd pairing on every control-flow path",
	Run:  run,
}

type kind int

const (
	kRegion kind = iota
	kIter
	kMain
	nKinds
)

var kindName = [nKinds]struct{ begin, end string }{
	kRegion: {"BeginRegion", "EndRegion"},
	kIter:   {"BeginIteration", "EndIteration"},
	kMain:   {"MainLoopBegin", "MainLoopEnd"},
}

// opening is one unmatched Begin call on the current path.
type opening struct {
	pos token.Pos
	k   kind
	arg int64 // constant argument, valid when hasArg
	has bool
}

func (o opening) String() string {
	if o.has {
		return fmt.Sprintf("%s(%d)", kindName[o.k].begin, o.arg)
	}
	return kindName[o.k].begin
}

// state is the abstract path state: per-kind stacks of unmatched openings
// plus per-kind counts of deferred End calls (which close at any exit).
type state struct {
	open     [nKinds][]opening
	deferred [nKinds]int
	dead     bool // path has returned, panicked or branched away
}

func (s *state) clone() *state {
	c := &state{deferred: s.deferred, dead: s.dead}
	for k := range s.open {
		c.open[k] = append([]opening(nil), s.open[k]...)
	}
	return c
}

// breakable is an enclosing statement a break (and for loops, a continue)
// can target; it collects the path states arriving at those jumps.
type breakable struct {
	isLoop    bool
	breaks    []*state
	continues []*state
}

type walker struct {
	pass     *analysis.Pass
	begins   [nKinds]bool       // does this function open markers of kind k?
	reported map[token.Pos]bool // one report per opening / site
	ctx      []*breakable       // innermost-last stack of break targets
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				analyzeBody(pass, body)
			}
			return true
		})
	}
	return nil
}

func analyzeBody(pass *analysis.Pass, body *ast.BlockStmt) {
	w := &walker{pass: pass, reported: map[token.Pos]bool{}}
	// Pre-scan: which marker kinds does this function open itself? End
	// calls of a kind never opened here close a caller's marker — that is a
	// helper, not an imbalance.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions are analyzed on their own
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if k, begin, ok := w.classify(call); ok && begin {
				w.begins[k] = true
			}
		}
		return true
	})
	st := &state{}
	w.walkStmt(st, body)
	if !st.dead {
		w.checkExit(st, body.Rbrace, "end of function")
	}
}

// classify resolves call to a marker method on sim.Machine.
func (w *walker) classify(call *ast.CallExpr) (k kind, begin bool, ok bool) {
	fn := analysis.CalleeFunc(w.pass.Info, call)
	if fn == nil {
		return 0, false, false
	}
	if pkg, typ, isM := analysis.RecvNamed(fn); !isM || pkg != simPath || typ != "Machine" {
		return 0, false, false
	}
	for k := kind(0); k < nKinds; k++ {
		switch fn.Name() {
		case kindName[k].begin:
			return k, true, true
		case kindName[k].end:
			return k, false, true
		}
	}
	return 0, false, false
}

func (w *walker) reportOnce(pos token.Pos, format string, args ...any) {
	if !w.reported[pos] {
		w.reported[pos] = true
		w.pass.Reportf(pos, format, args...)
	}
}

func (w *walker) line(pos token.Pos) int { return w.pass.Fset.Position(pos).Line }

// constArg extracts the constant int value of the call's first argument.
func (w *walker) constArg(call *ast.CallExpr) (int64, bool) {
	if len(call.Args) == 0 {
		return 0, false
	}
	tv, ok := w.pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// walkStmt interprets s over st. It only tracks marker calls appearing as
// statements (the only way kernels use them); calls buried in expressions
// are out of scope.
func (w *walker) walkStmt(st *state, s ast.Stmt) {
	if st.dead {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.walkStmt(st, sub)
			if st.dead {
				return
			}
		}

	case *ast.ExprStmt:
		w.handleCall(st, s.X)

	case *ast.DeferStmt:
		if k, begin, ok := w.classify(s.Call); ok && !begin {
			st.deferred[k]++
		}

	case *ast.ReturnStmt:
		w.checkExit(st, s.Pos(), "return")
		st.dead = true

	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(st, s.Init)
		}
		then := st.clone()
		w.walkStmt(then, s.Body)
		alt := st.clone()
		if s.Else != nil {
			w.walkStmt(alt, s.Else)
		}
		*st = *w.merge(s.Pos(), then, alt)

	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(st, s.Init)
		}
		w.walkLoop(st, s.Pos(), s.Body, s.Post)

	case *ast.RangeStmt:
		w.walkLoop(st, s.Pos(), s.Body, nil)

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(st, s.Init)
		}
		w.walkBranches(st, s.Pos(), s.Body, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(st, s.Init)
		}
		w.walkBranches(st, s.Pos(), s.Body, false)

	case *ast.SelectStmt:
		w.walkBranches(st, s.Pos(), s.Body, true)

	case *ast.LabeledStmt:
		w.walkStmt(st, s.Stmt)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.CONTINUE:
			for i := len(w.ctx) - 1; i >= 0; i-- {
				if w.ctx[i].isLoop {
					w.ctx[i].continues = append(w.ctx[i].continues, st.clone())
					break
				}
			}
		case token.BREAK:
			if len(w.ctx) > 0 {
				last := w.ctx[len(w.ctx)-1]
				last.breaks = append(last.breaks, st.clone())
			}
		}
		// In every case (incl. goto) the structured path ends here.
		st.dead = true
	}
}

// walkLoop interprets a for/range body: the state at every back-edge (body
// end and each continue) and every break must match the loop entry, so no
// marker leaks into the next iteration or out of the loop.
func (w *walker) walkLoop(st *state, pos token.Pos, body *ast.BlockStmt, post ast.Stmt) {
	ctx := &breakable{isLoop: true}
	w.ctx = append(w.ctx, ctx)
	b := st.clone()
	w.walkStmt(b, body)
	if post != nil && !b.dead {
		w.walkStmt(b, post)
	}
	w.ctx = w.ctx[:len(w.ctx)-1]

	backs := ctx.continues
	if !b.dead {
		backs = append(backs, b)
	}
	for _, back := range backs {
		w.checkLoopBalance(st, back, pos, "the next iteration begins")
	}
	for _, brk := range ctx.breaks {
		w.checkLoopBalance(st, brk, pos, "break exits the loop")
	}
	// Continue after the loop with the entry state (net-zero enforced).
}

// walkBranches handles switch/select clause bodies as parallel branches. A
// break inside a clause targets the switch and becomes one of its exits.
func (w *walker) walkBranches(st *state, pos token.Pos, body *ast.BlockStmt, always bool) {
	ctx := &breakable{}
	w.ctx = append(w.ctx, ctx)
	var branches []*state
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			hasDefault = hasDefault || c.List == nil
		case *ast.CommClause:
			stmts = c.Body
			hasDefault = hasDefault || c.Comm == nil
		}
		b := st.clone()
		for _, sub := range stmts {
			w.walkStmt(b, sub)
			if b.dead {
				break
			}
		}
		branches = append(branches, b)
	}
	w.ctx = w.ctx[:len(w.ctx)-1]
	branches = append(branches, ctx.breaks...)
	if !hasDefault && !always {
		branches = append(branches, st.clone()) // no-case-matched path
	}
	m := (*state)(nil)
	for _, b := range branches {
		if m == nil {
			m = b
		} else {
			m = w.merge(pos, m, b)
		}
	}
	if m == nil {
		return
	}
	*st = *m
}

// handleCall interprets a statement-level expression.
func (w *walker) handleCall(st *state, x ast.Expr) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return
	}
	// panic(...) delivers control to the campaign driver, which discards
	// the machine — crash semantics, no balance requirement.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := w.pass.Info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
			st.dead = true
			return
		}
	}
	k, begin, ok := w.classify(call)
	if !ok {
		return
	}
	if begin {
		o := opening{pos: call.Pos(), k: k}
		o.arg, o.has = w.constArg(call)
		st.open[k] = append(st.open[k], o)
		return
	}
	// End call.
	if len(st.open[k]) == 0 {
		if w.begins[k] {
			w.reportOnce(call.Pos(), "%s without a matching %s on this path",
				kindName[k].end, kindName[k].begin)
		}
		return
	}
	top := st.open[k][len(st.open[k])-1]
	st.open[k] = st.open[k][:len(st.open[k])-1]
	if k == kRegion && top.has {
		if arg, has := w.constArg(call); has && arg != top.arg {
			w.reportOnce(call.Pos(), "EndRegion(%d) closes %s opened at line %d",
				arg, top, w.line(top.pos))
		}
	}
	if k == kMain {
		// The real MainLoopEnd resets the region state: an explicit call is
		// the abort idiom and legitimately abandons open regions/iterations.
		st.open[kRegion] = st.open[kRegion][:0]
		st.open[kIter] = st.open[kIter][:0]
	}
}

// checkExit verifies that everything open is covered by deferred End calls.
func (w *walker) checkExit(st *state, pos token.Pos, what string) {
	for k := kind(0); k < nKinds; k++ {
		open := st.open[k]
		covered := st.deferred[k]
		if covered > len(open) {
			covered = len(open)
		}
		for _, o := range open[:len(open)-covered] {
			w.reportOnce(o.pos, "%s is never closed on the path reaching the %s at line %d (defer the %s call or close it on every path)",
				o, what, w.line(pos), kindName[k].end)
		}
	}
}

// checkLoopBalance verifies one loop exit or back-edge state got leaves the
// marker stacks exactly as the loop entry had them.
func (w *walker) checkLoopBalance(entry, got *state, pos token.Pos, when string) {
	for k := kind(0); k < nKinds; k++ {
		en, gn := len(entry.open[k]), len(got.open[k])
		switch {
		case gn > en:
			for _, o := range got.open[k][en:] {
				w.reportOnce(o.pos, "%s opened in a loop body is not closed within the body before %s",
					o, when)
			}
		case gn < en:
			w.reportOnce(pos, "loop body closes %s markers opened outside the loop",
				kindName[k].end)
		}
	}
}

// merge joins two branch states.
func (w *walker) merge(pos token.Pos, a, b *state) *state {
	switch {
	case a.dead && b.dead:
		a.dead = true
		return a
	case a.dead:
		return b
	case b.dead:
		return a
	}
	out := a.clone()
	for k := kind(0); k < nKinds; k++ {
		an, bn := len(a.open[k]), len(b.open[k])
		if an != bn {
			deeper := a
			if bn > an {
				deeper = b
			}
			min := an
			if bn < min {
				min = bn
			}
			for _, o := range deeper.open[k][min:] {
				w.reportOnce(o.pos, "%s is closed on some paths but not others (branches rejoin at line %d)",
					o, w.line(pos))
			}
			// Adopt the deeper stack so the matching End later on does not
			// also report an underflow.
			out.open[k] = append([]opening(nil), deeper.open[k]...)
		}
		if b.deferred[k] > out.deferred[k] {
			out.deferred[k] = b.deferred[k]
		}
	}
	return out
}
