// Package analysis is the self-contained core of eclint, the repo's static
// checker for crash-consistency and determinism bugs in EasyCrash kernels.
//
// It mirrors the shape of golang.org/x/tools/go/analysis — an Analyzer with a
// Run function over a type-checked Pass — but is built on the standard
// library alone (go/ast, go/types, and export data produced by `go list
// -export`), because this module deliberately has no external dependencies.
//
// Findings can be suppressed with an annotation comment on the offending
// line, on the line directly above it, or on the line directly above the
// statement the offending expression belongs to (so a multi-line call can be
// annotated where it starts):
//
//	//eclint:allow directmem — recovery path reads durable state on purpose
//	//eclint:allow directmem,campaigndet
//
// The annotation names one or more analyzers (comma-separated); everything
// after the names is a free-form justification. Analyzers that set
// RequireReason refuse annotations without one. Unsuppressed findings from
// cmd/eclint fail CI, so every annotation is a reviewed, documented
// exception to a simulation invariant — and an annotation that no longer
// suppresses anything is itself reported (the stale-allow audit), so the
// exception list cannot rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AuditName is the analyzer name under which the framework reports stale
// //eclint:allow annotations (annotations that suppress no finding of the
// analyzer they name). It is not a registered analyzer: the audit runs as
// part of RunAnalyzers whenever the named analyzer does.
const AuditName = "allowaudit"

// Analyzer is one static check: a name (used in output and in
// //eclint:allow annotations), one-paragraph documentation, and a Run
// function invoked once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// RequireReason makes //eclint:allow annotations naming this analyzer
	// invalid unless they carry a justification after the analyzer names: a
	// bare allow neither suppresses the finding nor passes silently.
	RequireReason bool
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Path     string // package import path (see Package.Path for testdata fixtures)
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(token.Pos, string)
}

// Reportf records a finding at pos. The position must come from a file in
// this pass's package.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Finding is one reported diagnostic. A finding covered by an //eclint:allow
// annotation is returned with Suppressed set (and the annotation's
// justification in AllowReason) rather than dropped, so machine-readable
// output can show the audited exceptions next to the real failures.
type Finding struct {
	Analyzer    string
	Pos         token.Position
	Message     string
	Suppressed  bool
	AllowReason string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// RunAnalyzers applies the analyzers to one loaded package, marks findings
// covered by the package's //eclint:allow annotations as suppressed, audits
// the annotations themselves (a stale allow, or a reasonless allow for an
// analyzer that requires one, is a finding), and returns everything sorted
// by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	allow := collectAllows(pkg)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		a := a
		pass.report = func(pos token.Pos, msg string) {
			p := pkg.Fset.Position(pos)
			f := Finding{Analyzer: a.Name, Pos: p, Message: msg}
			if e := allow.match(a.Name, a.RequireReason, candidateLines(pkg, pos, p)); e != nil {
				e.used = true
				f.Suppressed = true
				f.AllowReason = e.reason
			}
			out = append(out, f)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	out = append(out, auditAllows(allow, analyzers)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// auditAllows reports the annotations that name one of the analyzers that
// just ran but earned their keep on no finding, and the reasonless
// annotations for analyzers that require a justification. Annotations naming
// analyzers outside this run are left alone — a fixture test running one
// analyzer must not flag allows addressed to another.
func auditAllows(allow *allowSet, analyzers []*Analyzer) []Finding {
	ran := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = a
	}
	var out []Finding
	for _, e := range allow.entries {
		a := ran[e.name]
		if a == nil {
			continue
		}
		if a.RequireReason && e.reason == "" {
			out = append(out, Finding{
				Analyzer: a.Name,
				Pos:      e.pos,
				Message: fmt.Sprintf("//eclint:allow %s requires a justification after the analyzer name; a deliberate violation of the persistence-ordering contract must say why",
					e.name),
			})
			continue
		}
		if !e.used {
			out = append(out, Finding{
				Analyzer: AuditName,
				Pos:      e.pos,
				Message: fmt.Sprintf("//eclint:allow %s suppresses no %s finding; delete the stale annotation (or move it to the line the finding is reported on)",
					e.name, e.name),
			})
		}
	}
	return out
}

// allowEntry is one analyzer name of one //eclint:allow comment.
type allowEntry struct {
	name   string
	reason string
	pos    token.Position // position of the annotation comment
	used   bool           // did it suppress at least one finding?
}

// allowSet indexes the annotation entries by file and line for lookup while
// keeping the flat list for the audit.
type allowSet struct {
	byLine  map[string]map[int][]*allowEntry
	entries []*allowEntry
}

const allowPrefix = "eclint:allow"

func collectAllows(pkg *Package) *allowSet {
	set := &allowSet{byLine: map[string]map[int][]*allowEntry{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(text[len(allowPrefix):])
				if len(fields) == 0 {
					continue
				}
				// Everything after the comma-separated analyzer names is the
				// justification; a leading dash variant is punctuation, not
				// content.
				reason := strings.TrimSpace(strings.Join(fields[1:], " "))
				reason = strings.TrimSpace(strings.TrimLeft(reason, "—–-"))
				p := pkg.Fset.Position(c.Pos())
				lines := set.byLine[p.Filename]
				if lines == nil {
					lines = map[int][]*allowEntry{}
					set.byLine[p.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						e := &allowEntry{name: name, reason: reason, pos: p}
						lines[p.Line] = append(lines[p.Line], e)
						set.entries = append(set.entries, e)
					}
				}
			}
		}
	}
	return set
}

// match returns the annotation entry that suppresses analyzer name at one of
// the candidate (filename, line) pairs, or nil. Reasonless entries are
// skipped when the analyzer demands a justification, so the underlying
// finding resurfaces next to the "requires a justification" audit finding.
func (s *allowSet) match(name string, requireReason bool, cands []token.Position) *allowEntry {
	for _, p := range cands {
		for _, e := range s.byLine[p.Filename][p.Line] {
			if e.name != name {
				continue
			}
			if requireReason && e.reason == "" {
				continue
			}
			return e
		}
	}
	return nil
}

// candidateLines lists the positions an annotation may occupy to cover a
// finding at pos: the finding's own line, the line above it, and — when the
// finding sits inside a multi-line statement — the first line of that
// statement and the line above it. The last pair is what lets an annotation
// above a multi-line call cover a finding reported on one of the call's
// continuation lines.
func candidateLines(pkg *Package, pos token.Pos, p token.Position) []token.Position {
	lines := []int{p.Line, p.Line - 1}
	if sl := stmtStartLine(pkg, pos); sl > 0 && sl != p.Line {
		lines = append(lines, sl, sl-1)
	}
	out := make([]token.Position, 0, len(lines))
	seen := map[int]bool{}
	for _, l := range lines {
		if l > 0 && !seen[l] {
			seen[l] = true
			out = append(out, token.Position{Filename: p.Filename, Line: l})
		}
	}
	return out
}

// stmtStartLine returns the first line of the innermost statement containing
// pos, or 0 if pos is outside every statement (for example a declaration).
func stmtStartLine(pkg *Package, pos token.Pos) int {
	for _, f := range pkg.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		line := 0
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || pos < n.Pos() || pos >= n.End() {
				return false
			}
			if _, ok := n.(ast.Stmt); ok {
				line = pkg.Fset.Position(n.Pos()).Line
			}
			return true
		})
		return line
	}
	return 0
}

// CalleeFunc resolves a call expression to the statically known function or
// method it invokes, or nil (builtin, conversion, or dynamic call through a
// function value).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// RecvNamed returns the package path and type name of a method's receiver
// (pointers dereferenced), or ok=false for package-level functions and
// methods on unnamed types.
func RecvNamed(fn *types.Func) (pkgPath, typeName string, ok bool) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// IsMethod reports whether call invokes the named method on the named type
// (by package path), through a value or pointer receiver.
func IsMethod(info *types.Info, call *ast.CallExpr, pkgPath, typeName, method string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != method {
		return false
	}
	p, t, ok := RecvNamed(fn)
	return ok && p == pkgPath && t == typeName
}

// EffectivePath strips a leading `testdata/src/` segment (with or without a
// prefix path before it) from an import path, so fixture trees that mirror
// real package layouts under testdata/src are scoped like the packages they
// mirror (the analysistest convention).
func EffectivePath(path string) string {
	const marker = "/testdata/src/"
	if i := strings.LastIndex(path, marker); i >= 0 {
		return path[i+len(marker):]
	}
	// A fixture loaded under a relative path can start with the marker
	// directly ("testdata/src/kernel"); LastIndex cannot see it because the
	// leading slash is missing.
	if rest, ok := strings.CutPrefix(path, marker[1:]); ok {
		return rest
	}
	return path
}
