// Package analysis is the self-contained core of eclint, the repo's static
// checker for crash-consistency and determinism bugs in EasyCrash kernels.
//
// It mirrors the shape of golang.org/x/tools/go/analysis — an Analyzer with a
// Run function over a type-checked Pass — but is built on the standard
// library alone (go/ast, go/types, and export data produced by `go list
// -export`), because this module deliberately has no external dependencies.
//
// Findings can be suppressed with an annotation comment on the offending
// line or on the line directly above it:
//
//	//eclint:allow directmem — recovery path reads durable state on purpose
//	//eclint:allow directmem,campaigndet
//
// The annotation names one or more analyzers (comma-separated); everything
// after the names is a free-form justification. Unsuppressed findings from
// cmd/eclint fail CI, so every annotation is a reviewed, documented
// exception to a simulation invariant.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check: a name (used in output and in
// //eclint:allow annotations), one-paragraph documentation, and a Run
// function invoked once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Path     string // package import path (see Package.Path for testdata fixtures)
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(token.Pos, string)
}

// Reportf records a finding at pos. The position must come from a file in
// this pass's package.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Finding is one reported, unsuppressed diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// RunAnalyzers applies the analyzers to one loaded package, filters findings
// through the package's //eclint:allow annotations, and returns the
// survivors sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	allow := collectAllows(pkg)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		pass.report = func(pos token.Pos, msg string) {
			p := pkg.Fset.Position(pos)
			if allow.allows(a.Name, p) {
				return
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: p, Message: msg})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// allowSet maps file name -> line -> analyzer names allowed there.
type allowSet map[string]map[int][]string

const allowPrefix = "eclint:allow"

func collectAllows(pkg *Package) allowSet {
	set := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(text[len(allowPrefix):])
				if len(fields) == 0 {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				lines := set[p.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[p.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						lines[p.Line] = append(lines[p.Line], name)
					}
				}
			}
		}
	}
	return set
}

// allows reports whether analyzer name is suppressed at position p: an
// annotation on the same line (trailing comment) or on the line above.
func (s allowSet) allows(name string, p token.Position) bool {
	lines := s[p.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{p.Line, p.Line - 1} {
		for _, n := range lines[l] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// CalleeFunc resolves a call expression to the statically known function or
// method it invokes, or nil (builtin, conversion, or dynamic call through a
// function value).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// RecvNamed returns the package path and type name of a method's receiver
// (pointers dereferenced), or ok=false for package-level functions and
// methods on unnamed types.
func RecvNamed(fn *types.Func) (pkgPath, typeName string, ok bool) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// IsMethod reports whether call invokes the named method on the named type
// (by package path), through a value or pointer receiver.
func IsMethod(info *types.Info, call *ast.CallExpr, pkgPath, typeName, method string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != method {
		return false
	}
	p, t, ok := RecvNamed(fn)
	return ok && p == pkgPath && t == typeName
}

// EffectivePath strips a leading `.../testdata/src/` prefix from an import
// path, so fixture trees that mirror real package layouts under testdata/src
// are scoped like the packages they mirror (the analysistest convention).
func EffectivePath(path string) string {
	const marker = "/testdata/src/"
	if i := strings.LastIndex(path, marker); i >= 0 {
		return path[i+len(marker):]
	}
	return path
}
