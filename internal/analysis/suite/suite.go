// Package suite enumerates the eclint analyzers. cmd/eclint and the smoke
// tests share this list so a new analyzer registered here is automatically
// enforced in CI.
package suite

import (
	"easycrash/internal/analysis"
	"easycrash/internal/analysis/addrstride"
	"easycrash/internal/analysis/batchedaccess"
	"easycrash/internal/analysis/campaigndet"
	"easycrash/internal/analysis/directmem"
	"easycrash/internal/analysis/persistorder"
	"easycrash/internal/analysis/regionpairs"
)

// All returns every eclint analyzer, in output order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		addrstride.Analyzer,
		batchedaccess.Analyzer,
		campaigndet.Analyzer,
		directmem.Analyzer,
		persistorder.Analyzer,
		regionpairs.Analyzer,
	}
}
