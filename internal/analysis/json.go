// Machine-readable findings: a stable JSON DTO for eclint output plus a
// baseline mechanism so CI can gate on *new* findings only. The same array
// format serves both purposes — `eclint -json ./... > .eclint-baseline.json`
// freezes the current findings as the baseline a later `-baseline` run diffs
// against.

package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// FindingJSON is the stable serialised form of one Finding. Field names are
// a compatibility contract: CI scripts and the checked-in baseline parse
// them.
type FindingJSON struct {
	Analyzer    string `json:"analyzer"`
	File        string `json:"file"`
	Line        int    `json:"line"`
	Column      int    `json:"column"`
	Message     string `json:"message"`
	Suppressed  bool   `json:"suppressed"`
	AllowReason string `json:"allowReason,omitempty"`
	// Baselined marks an unsuppressed finding that the baseline file already
	// records; it is reported but does not fail the run.
	Baselined bool `json:"baselined,omitempty"`
}

// JSON converts a Finding for serialisation, with the file name rewritten
// relative to dir when it lies below it (keeping baselines portable across
// checkouts).
func (f Finding) JSON(dir string) FindingJSON {
	file := f.Pos.Filename
	if dir != "" {
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return FindingJSON{
		Analyzer:    f.Analyzer,
		File:        file,
		Line:        f.Pos.Line,
		Column:      f.Pos.Column,
		Message:     f.Message,
		Suppressed:  f.Suppressed,
		AllowReason: f.AllowReason,
	}
}

// BaselineKey identifies a finding for baseline matching. Line and column
// are deliberately excluded: edits above a known finding move it without
// making it new.
func (f FindingJSON) BaselineKey() string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

// WriteFindingsJSON serialises findings (an empty slice encodes as [], never
// null) with stable indentation.
func WriteFindingsJSON(w io.Writer, findings []FindingJSON) error {
	if findings == nil {
		findings = []FindingJSON{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// Baseline is the set of known findings CI tolerates.
type Baseline map[string]bool

// LoadBaseline reads a baseline file (a JSON array of FindingJSON, as
// emitted by eclint -json).
func LoadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var findings []FindingJSON
	if err := json.Unmarshal(data, &findings); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	b := make(Baseline, len(findings))
	for _, f := range findings {
		b[f.BaselineKey()] = true
	}
	return b, nil
}

// Has reports whether the baseline records f.
func (b Baseline) Has(f FindingJSON) bool { return b[f.BaselineKey()] }
