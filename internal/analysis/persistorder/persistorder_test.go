package persistorder_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"easycrash/internal/analysis"
	"easycrash/internal/analysis/analysistest"
	"easycrash/internal/analysis/persistorder"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "kvstore"),
		"easycrash/internal/pmemkv/fixture", persistorder.Analyzer)
}

func TestAdoption(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "noholds"),
		"easycrash/internal/apps/noholds", persistorder.Analyzer)
}

// TestRealPmemkv pins the analyzer's first confirmed catch on the real tree:
// pmemkv-bug's missing record flush, reported at the exact store site the
// dynamic oracle blames, suppressed by exactly one audited allow whose
// reason documents the deliberate bug. If the finding drifts off that line,
// multiplies, or loses its justification, the static↔dynamic cross-check is
// broken.
func TestRealPmemkv(t *testing.T) {
	dir := filepath.Join("..", "..", "pmemkv")
	pkg, err := analysis.LoadDir(dir, "easycrash/internal/pmemkv")
	if err != nil {
		t.Fatalf("loading pmemkv: %v", err)
	}
	findings, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{persistorder.Analyzer})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}

	src, err := os.ReadFile(filepath.Join(dir, "pmemkv.go"))
	if err != nil {
		t.Fatalf("reading pmemkv.go: %v", err)
	}
	bugLine := 0
	for i, l := range strings.Split(string(src), "\n") {
		if strings.Contains(l, "m.StoreI64(base, seq+1)") {
			bugLine = i + 1
			break
		}
	}
	if bugLine == 0 {
		t.Fatal("pmemkv.go no longer contains the WAL record store the pin is anchored to")
	}

	var po []analysis.Finding
	for _, f := range findings {
		if f.Analyzer == persistorder.Analyzer.Name {
			po = append(po, f)
		} else {
			t.Errorf("unexpected %s finding on pmemkv: %s", f.Analyzer, f)
		}
	}
	if len(po) != 1 {
		t.Fatalf("want exactly 1 persistorder finding on pmemkv, got %d:\n%s",
			len(po), analysistest.String(po))
	}
	f := po[0]
	if got := filepath.Base(f.Pos.Filename); got != "pmemkv.go" || f.Pos.Line != bugLine {
		t.Errorf("finding at %s:%d, want pmemkv.go:%d (the WAL record store)",
			got, f.Pos.Line, bugLine)
	}
	if !strings.Contains(f.Message, "commit mark") {
		t.Errorf("finding message does not name the commit mark: %s", f.Message)
	}
	if !f.Suppressed {
		t.Errorf("the deliberate bug must be suppressed by its audited allow: %s", f)
	}
	if !strings.Contains(f.AllowReason, "pmemkv-bug") {
		t.Errorf("allow reason must document the deliberate bug, got %q", f.AllowReason)
	}
}
