// Package persistorder proves the flush-before-commit/ack persistence-
// ordering discipline of NVM data structures at `go build` time — the static
// half of the crash-consistency oracle PR 6 built dynamically.
//
// The repo forces every durable access through an explicit API
// (Machine.Store*, FlushRange, FlushObject, Hierarchy.Flush), and its
// workloads are stride-regular, so the canonical WAL bug class — a store
// acknowledged, or covered by a commit mark, while its cache line is still
// volatile — is statically decidable. The analyzer walks every structured
// control-flow path of every function and tracks each durable write through
// a three-point lattice:
//
//	written (dirty) → flushed-unfenced → flushed+fenced (durable-ordered)
//
// Machine.FlushRange models flush + fence: it both fences the writes it
// covers and, per the simulator's fence semantics, drains every previously
// issued (unfenced) flush. Machine.FlushObject / FlushObjects and
// cachesim.Hierarchy.Flush issue unfenced CLWBs: the blocks are on their way
// to the media, but nothing orders them before a later store.
//
// What counts as durable, and where ordering is owed, is declared with
// directive comments on the code itself (the analyzer's input contract):
//
//	wal  mem.Object //persist:data   — durable payload; must be fenced before
//	                                   a commit mark can cover it
//	head mem.Object //persist:commit — the commit mark; storing it promises
//	                                   everything below it is durable
//	s.acked = seq+1 //persist:ack    — client acknowledgement; every tracked
//	                                   write on the path must be fenced here
//
// persist:data / persist:commit attach to a struct field, variable
// declaration or assignment whose type is mem.Object (same line or the line
// above); persist:ack attaches to a statement. Three rules follow:
//
//  1. On any path where a store to a persist:data object reaches a
//     persist:commit store or a persist:ack point without a fenced flush
//     covering its address range, the store is reported at its exact site —
//     a crash there commits (or acknowledges) a record that may never have
//     reached the media.
//  2. If the only thing between such a store and the commit/ack is an
//     unfenced flush, the flush is reported, suggesting FlushRange.
//  3. A flush whose range provably misses part of the stored extent
//     (constant-offset interval arithmetic over the same base address, the
//     addrstride discipline) is reported at the flush site.
//
// A package that implements apps.ConsistencyKernel — it promises
// client-visible persistence semantics — but declares no persist directives
// is reported once: the contract exists, the analyzer just cannot see it.
//
// The analysis is per-function and path-sensitive over the same structured
// walker regionpairs uses (if/switch/select branches, loops walked once,
// break/continue, explicit panic = crash, path ends). Address arithmetic is
// resolved through single-assignment locals; flush ranges that cannot be
// proven short are given the benefit of the doubt, so every report is a
// path with *no* covering flush, not a failed proof.
package persistorder

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"easycrash/internal/analysis"
)

const (
	memPath   = "easycrash/internal/mem"
	simPath   = "easycrash/internal/sim"
	cachePath = "easycrash/internal/cachesim"
	appsPath  = "easycrash/internal/apps"
)

// Analyzer is the persistorder check.
var Analyzer = &analysis.Analyzer{
	Name:          "persistorder",
	Doc:           "proves the flush-before-commit/ack ordering of declared durable objects (persist:data/commit/ack) on every control-flow path",
	Run:           run,
	RequireReason: true,
}

// role classifies a declared durable object.
type role int

const (
	roleNone role = iota
	roleData
	roleCommit
)

func (r role) String() string {
	switch r {
	case roleData:
		return "persist:data"
	case roleCommit:
		return "persist:commit"
	}
	return "untracked"
}

// pstate is the per-write lattice.
type pstate int

const (
	pDirty    pstate = iota // written, still (possibly) in a volatile cache line
	pUnfenced               // flushed without a fence: issued, not ordered
	pFenced                 // flushed and fenced: durable before anything later
)

const dirPrefix = "persist:"

// directives is the parsed declaration set of one package.
type directives struct {
	roles map[types.Object]role // mem.Object holders with a declared role
	acks  map[string]map[int]bool
}

func run(pass *analysis.Pass) error {
	dirs := collectDirectives(pass)
	if len(dirs.roles) == 0 {
		checkAdoption(pass)
		if len(dirs.acks) == 0 {
			return nil
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				w := &walker{pass: pass, dirs: dirs, reported: map[token.Pos]bool{}, locals: map[types.Object]ast.Expr{}}
				w.walkStmt(&state{}, body)
			}
			return true
		})
	}
	return nil
}

// checkAdoption reports types that implement apps.ConsistencyKernel in a
// package with no persist directives: the type promises client-visible
// persistence semantics eclint cannot verify.
func checkAdoption(pass *analysis.Pass) {
	var iface *types.Interface
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() != appsPath {
			continue
		}
		if obj, ok := imp.Scope().Lookup("ConsistencyKernel").(*types.TypeName); ok {
			iface, _ = obj.Type().Underlying().(*types.Interface)
		}
	}
	if iface == nil {
		return
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			pass.Reportf(tn.Pos(),
				"%s implements apps.ConsistencyKernel but the package declares no persist:data/persist:commit/persist:ack directives; persistorder cannot prove its flush-before-ack contract — annotate the durable objects and the acknowledgement point (see internal/analysis/persistorder)",
				name)
		}
	}
}

// ---------------------------------------------------------------------------
// Directive collection

func collectDirectives(pass *analysis.Pass) *directives {
	d := &directives{roles: map[types.Object]role{}, acks: map[string]map[int]bool{}}
	type pending struct {
		role role
		pos  token.Pos
		file *ast.File
		line int
	}
	var pend []pending
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				// Directives are machine comments like //go: and //eclint:
				// — no space after the slashes — so prose that merely
				// mentions persist:data stays prose.
				if !strings.HasPrefix(c.Text, "//"+dirPrefix) {
					continue
				}
				verb := strings.TrimPrefix(c.Text, "//"+dirPrefix)
				if i := strings.IndexAny(verb, " \t—"); i >= 0 {
					verb = verb[:i]
				}
				line := pass.Fset.Position(c.Pos()).Line
				switch verb {
				case "data":
					pend = append(pend, pending{roleData, c.Pos(), file, line})
				case "commit":
					pend = append(pend, pending{roleCommit, c.Pos(), file, line})
				case "ack":
					if d.acks[fname] == nil {
						d.acks[fname] = map[int]bool{}
					}
					d.acks[fname][line] = true
				default:
					pass.Reportf(c.Pos(), "unknown persist: directive %q (want persist:data, persist:commit or persist:ack)", verb)
				}
			}
		}
	}
	for _, p := range pend {
		holders := holdersAtLine(pass, p.file, p.line)
		if len(holders) == 0 {
			pass.Reportf(p.pos, "%s attaches to no mem.Object declaration or assignment on this line", p.role)
			continue
		}
		for _, h := range holders {
			d.roles[h] = p.role
		}
	}
	return d
}

// holdersAtLine finds the mem.Object-typed objects declared or assigned on
// the given line of file: struct fields, parameters, var specs, and
// assignment targets (idents or field selections).
func holdersAtLine(pass *analysis.Pass, file *ast.File, line int) []types.Object {
	var out []types.Object
	add := func(obj types.Object) {
		if obj != nil && isMemObject(obj.Type()) {
			out = append(out, obj)
		}
	}
	atLine := func(p token.Pos) bool { return pass.Fset.Position(p).Line == line }
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Field:
			for _, id := range n.Names {
				if atLine(id.Pos()) {
					add(pass.Info.Defs[id])
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				if atLine(id.Pos()) {
					add(pass.Info.Defs[id])
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if !atLine(lhs.Pos()) {
					continue
				}
				switch lhs := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if obj := pass.Info.Defs[lhs]; obj != nil {
						add(obj)
					} else {
						add(pass.Info.Uses[lhs])
					}
				case *ast.SelectorExpr:
					add(pass.Info.Uses[lhs.Sel])
				}
			}
		}
		return true
	})
	return out
}

// isMemObject reports whether t is mem.Object.
func isMemObject(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Object" && obj.Pkg() != nil && obj.Pkg().Path() == memPath
}

// ---------------------------------------------------------------------------
// Path state

// wrec is one tracked durable write (a group of merged adjacent stores).
type wrec struct {
	root     types.Object // the declared mem.Object holder
	role     role
	terms    []ast.Expr // non-constant summands of the base address
	lo, hi   int64      // byte extent relative to terms, valid when constOK
	constOK  bool
	pos      token.Pos // first store of the group
	st       pstate
	flushPos token.Pos // the unfenced flush that last covered it
	reported bool
}

type state struct {
	recs []*wrec
	dead bool
}

func (s *state) clone() *state {
	c := &state{dead: s.dead, recs: make([]*wrec, len(s.recs))}
	for i, r := range s.recs {
		cp := *r
		c.recs[i] = &cp
	}
	return c
}

// breakable mirrors regionpairs: an enclosing break/continue target
// collecting the path states that jump to it.
type breakable struct {
	isLoop    bool
	breaks    []*state
	continues []*state
}

type walker struct {
	pass     *analysis.Pass
	dirs     *directives
	reported map[token.Pos]bool
	locals   map[types.Object]ast.Expr // single-assignment local resolutions
	ctx      []*breakable
}

func (w *walker) reportOnce(pos token.Pos, format string, args ...any) {
	if !w.reported[pos] {
		w.reported[pos] = true
		w.pass.Reportf(pos, format, args...)
	}
}

func (w *walker) line(pos token.Pos) int { return w.pass.Fset.Position(pos).Line }

// ---------------------------------------------------------------------------
// Statement walk

func (w *walker) walkStmt(st *state, s ast.Stmt) {
	if st.dead {
		return
	}
	if w.isAck(s) {
		w.checkObligation(st, s.Pos(), "the write is acknowledged (persist:ack)")
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.walkStmt(st, sub)
			if st.dead {
				return
			}
		}

	case *ast.ExprStmt:
		w.handleExpr(st, s.X)

	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.handleExpr(st, rhs)
		}
		w.recordLocals(s)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i, id := range vs.Names {
						if obj := w.pass.Info.Defs[id]; obj != nil {
							w.locals[obj] = vs.Values[i]
						}
					}
				}
			}
		}

	case *ast.IncDecStmt:
		w.poisonTargets(s.X)

	case *ast.ReturnStmt:
		st.dead = true

	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(st, s.Init)
		}
		then := st.clone()
		w.walkStmt(then, s.Body)
		alt := st.clone()
		if s.Else != nil {
			w.walkStmt(alt, s.Else)
		}
		*st = *w.merge(then, alt)

	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(st, s.Init)
		}
		w.walkLoop(st, s.Body, s.Post)

	case *ast.RangeStmt:
		w.walkLoop(st, s.Body, nil)

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(st, s.Init)
		}
		w.walkBranches(st, s.Body, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(st, s.Init)
		}
		w.walkBranches(st, s.Body, false)

	case *ast.SelectStmt:
		w.walkBranches(st, s.Body, true)

	case *ast.LabeledStmt:
		w.walkStmt(st, s.Stmt)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.CONTINUE:
			for i := len(w.ctx) - 1; i >= 0; i-- {
				if w.ctx[i].isLoop {
					w.ctx[i].continues = append(w.ctx[i].continues, st.clone())
					break
				}
			}
		case token.BREAK:
			if len(w.ctx) > 0 {
				last := w.ctx[len(w.ctx)-1]
				last.breaks = append(last.breaks, st.clone())
			}
		}
		st.dead = true
	}
}

// isAck reports whether s starts on a persist:ack line.
func (w *walker) isAck(s ast.Stmt) bool {
	p := w.pass.Fset.Position(s.Pos())
	return w.dirs.acks[p.Filename][p.Line]
}

// walkLoop walks a loop body once from the entry state (single unrolling)
// and continues after the loop with the merge of every way out: zero
// iterations, the body falling through, and each break. Back-edge states
// (continues) carry no obligation — durability is only owed at commit/ack.
func (w *walker) walkLoop(st *state, body *ast.BlockStmt, post ast.Stmt) {
	ctx := &breakable{isLoop: true}
	w.ctx = append(w.ctx, ctx)
	b := st.clone()
	w.walkStmt(b, body)
	if post != nil && !b.dead {
		w.walkStmt(b, post)
	}
	w.ctx = w.ctx[:len(w.ctx)-1]

	exits := []*state{st.clone(), b}
	exits = append(exits, ctx.breaks...)
	exits = append(exits, ctx.continues...)
	m := exits[0]
	for _, e := range exits[1:] {
		m = w.merge(m, e)
	}
	*st = *m
}

// walkBranches handles switch/select clause bodies as parallel branches.
func (w *walker) walkBranches(st *state, body *ast.BlockStmt, always bool) {
	ctx := &breakable{}
	w.ctx = append(w.ctx, ctx)
	var branches []*state
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			hasDefault = hasDefault || c.List == nil
		case *ast.CommClause:
			stmts = c.Body
			hasDefault = hasDefault || c.Comm == nil
		}
		b := st.clone()
		for _, sub := range stmts {
			w.walkStmt(b, sub)
			if b.dead {
				break
			}
		}
		branches = append(branches, b)
	}
	w.ctx = w.ctx[:len(w.ctx)-1]
	branches = append(branches, ctx.breaks...)
	if !hasDefault && !always {
		branches = append(branches, st.clone())
	}
	if len(branches) == 0 {
		return
	}
	m := branches[0]
	for _, b := range branches[1:] {
		m = w.merge(m, b)
	}
	*st = *m
}

// merge joins two branch states: records present in both take the weaker
// lattice state (a write is only as durable as its least-flushed path) and
// the widened extent; records present on one path keep their state — the
// obligation exists on the path that wrote them.
func (w *walker) merge(a, b *state) *state {
	switch {
	case a.dead && b.dead:
		a.dead = true
		return a
	case a.dead:
		return b
	case b.dead:
		return a
	}
	out := a.clone()
	for _, rb := range b.recs {
		var ra *wrec
		for _, r := range out.recs {
			if r.pos == rb.pos {
				ra = r
				break
			}
		}
		if ra == nil {
			cp := *rb
			out.recs = append(out.recs, &cp)
			continue
		}
		if rb.st < ra.st {
			ra.st = rb.st
		}
		if rb.st == pUnfenced && ra.flushPos == token.NoPos {
			ra.flushPos = rb.flushPos
		}
		ra.reported = ra.reported || rb.reported
		if ra.constOK && rb.constOK {
			if rb.lo < ra.lo {
				ra.lo = rb.lo
			}
			if rb.hi > ra.hi {
				ra.hi = rb.hi
			}
		} else {
			ra.constOK = false
		}
	}
	return out
}

// recordLocals tracks single-assignment locals for address resolution, and
// updates/poisons them on reassignment.
func (w *walker) recordLocals(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		for _, lhs := range s.Lhs {
			w.poisonTargets(lhs)
		}
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		if obj := w.pass.Info.Defs[id]; obj != nil {
			w.locals[obj] = s.Rhs[i]
			continue
		}
		if obj := w.pass.Info.Uses[id]; obj != nil {
			if s.Tok == token.ASSIGN {
				w.locals[obj] = s.Rhs[i]
			} else {
				delete(w.locals, obj) // compound assignment: value unknown
			}
		}
	}
}

func (w *walker) poisonTargets(e ast.Expr) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := w.pass.Info.Uses[id]; obj != nil {
			delete(w.locals, obj)
		}
	}
}

// ---------------------------------------------------------------------------
// Call interpretation

// handleExpr interprets the API calls inside a statement-level expression.
func (w *walker) handleExpr(st *state, x ast.Expr) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return
	}
	// panic(...) is crash delivery: the machine is discarded, the path ends.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := w.pass.Info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
			st.dead = true
			return
		}
	}
	fn := analysis.CalleeFunc(w.pass.Info, call)
	if fn == nil {
		return
	}
	pkg, typ, isMethod := analysis.RecvNamed(fn)
	if !isMethod {
		return
	}
	switch {
	case pkg == simPath && typ == "Machine":
		switch fn.Name() {
		case "StoreI64", "StoreF64":
			if len(call.Args) >= 1 {
				w.handleStore(st, call.Args[0], call.Pos())
			}
		case "FlushRange":
			if len(call.Args) >= 2 {
				w.handleFlush(st, call.Args[0], call.Args[1], true, call.Pos())
			}
		case "FlushObject":
			if len(call.Args) >= 1 {
				w.handleObjectFlush(st, call.Args[0], call.Pos())
			}
		case "FlushObjects":
			if len(call.Args) >= 1 {
				if lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit); ok {
					for _, el := range lit.Elts {
						w.handleObjectFlush(st, el, call.Pos())
					}
				}
			}
		case "RestoreObject":
			// Out-of-band restore: treat the object as rewritten durable state
			// with no pending obligation.
		}
	case pkg == cachePath && typ == "Hierarchy" && fn.Name() == "Flush":
		if len(call.Args) >= 2 {
			w.handleFlush(st, call.Args[0], call.Args[1], false, call.Pos())
		}
	case pkg == simPath && (typ == "F64Slice" || typ == "I64Slice") && fn.Name() == "Set":
		w.handleSliceStore(st, call)
	}
}

// handleStore interprets a Machine.Store* call: if the address anchors in a
// declared object, open (or extend) a tracked write record. A store to a
// persist:commit object is the commit point for every pending persist:data
// write on the path.
func (w *walker) handleStore(st *state, addr ast.Expr, pos token.Pos) {
	terms, c, ok := w.splitAddr(addr)
	if !ok {
		return
	}
	root, r := w.rootOf(terms)
	if r == roleNone {
		return
	}
	if r == roleCommit {
		w.checkObligation(st, pos, fmt.Sprintf("the commit mark %q is advanced", root.Name()))
	}
	w.addStore(st, root, r, terms, c, c+8, true, pos)
}

// handleSliceStore interprets F64Slice/I64Slice.Set on a view of a declared
// object: an element store with an extent the analyzer does not model
// (covered only by whole-object flushes).
func (w *walker) handleSliceStore(st *state, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := w.resolve(sel.X, 0)
	viewCall, ok := ast.Unparen(recv).(*ast.CallExpr)
	if !ok || len(viewCall.Args) != 1 {
		return
	}
	vfn := analysis.CalleeFunc(w.pass.Info, viewCall)
	if vfn == nil || (vfn.Name() != "F64" && vfn.Name() != "I64") {
		return
	}
	if pkg, typ, isM := analysis.RecvNamed(vfn); !isM || pkg != simPath || typ != "Machine" {
		return
	}
	root, r := w.holderOf(viewCall.Args[0])
	if r == roleNone {
		return
	}
	if r == roleCommit {
		w.checkObligation(st, call.Pos(), fmt.Sprintf("the commit mark %q is advanced", root.Name()))
	}
	w.addStore(st, root, r, nil, 0, 0, false, call.Pos())
}

// addStore opens a new write record or extends a contiguous dirty one.
func (w *walker) addStore(st *state, root types.Object, r role, terms []ast.Expr, lo, hi int64, constOK bool, pos token.Pos) {
	for _, rec := range st.recs {
		if rec.root == root && rec.st == pDirty && !rec.reported &&
			rec.constOK && constOK && w.termsEqual(rec.terms, terms) {
			if lo < rec.lo {
				rec.lo = lo
			}
			if hi > rec.hi {
				rec.hi = hi
			}
			return
		}
	}
	st.recs = append(st.recs, &wrec{
		root: root, role: r, terms: terms, lo: lo, hi: hi, constOK: constOK,
		pos: pos, st: pDirty,
	})
}

// handleObjectFlush interprets FlushObject(o)/one element of FlushObjects:
// an unfenced whole-object flush.
func (w *walker) handleObjectFlush(st *state, objExpr ast.Expr, pos token.Pos) {
	root, r := w.holderOf(objExpr)
	if r == roleNone {
		return
	}
	for _, rec := range st.recs {
		if rec.root == root && rec.st == pDirty {
			rec.st = pUnfenced
			rec.flushPos = pos
		}
	}
}

// handleFlush interprets FlushRange (fenced) or Hierarchy.Flush (unfenced).
func (w *walker) handleFlush(st *state, addrE, sizeE ast.Expr, fenced bool, pos token.Pos) {
	terms, c, addrOK := w.splitAddr(addrE)
	var root types.Object
	r := roleNone
	if addrOK {
		root, r = w.rootOf(terms)
	}

	// Size: a constant byte count, or the whole object (o.Size of the same
	// root with the flush starting at o.Addr).
	sizeConst, sizeIsConst := w.constVal(sizeE)
	whole := false
	if !sizeIsConst && r != roleNone && c == 0 && len(terms) == 1 {
		if sroot, _ := w.holderOf(w.sizeHolderExpr(sizeE)); sroot != nil && sroot == root {
			whole = true
		}
	}

	if r != roleNone {
		for _, rec := range st.recs {
			if rec.root != root || rec.reported {
				continue
			}
			covered := false
			switch {
			case whole:
				covered = true
			case rec.constOK && sizeIsConst && w.termsEqual(rec.terms, terms):
				if rec.lo >= c && rec.hi <= c+sizeConst {
					covered = true
				} else if rec.st == pDirty {
					// Same base, provably short range: the addrstride-style
					// interval proof says part of the stored extent stays
					// volatile.
					w.reportOnce(pos,
						"flush covers [%+d,%+d) of %q but the pending store at line %d wrote [%+d,%+d); the uncovered bytes stay volatile across the fence",
						c, c+sizeConst, root.Name(), w.line(rec.pos), rec.lo, rec.hi)
					rec.reported = true
				}
			default:
				// Unprovable relation between flush range and stored extent
				// over the same object: benefit of the doubt, so reports only
				// ever name paths with no covering flush at all.
				covered = true
			}
			if covered && rec.st == pDirty {
				if fenced {
					rec.st = pFenced
				} else {
					rec.st = pUnfenced
					rec.flushPos = pos
				}
			}
			if covered && fenced && rec.st == pUnfenced {
				rec.st = pFenced
			}
		}
	}
	if fenced {
		// The fence drains everything previously issued: any unfenced flush
		// before this point is now ordered.
		for _, rec := range st.recs {
			if rec.st == pUnfenced {
				rec.st = pFenced
			}
		}
	}
}

// sizeHolderExpr unwraps a `X.Size` selector to X, or returns nil.
func (w *walker) sizeHolderExpr(sizeE ast.Expr) ast.Expr {
	sel, ok := ast.Unparen(w.resolve(sizeE, 0)).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Size" {
		return nil
	}
	if s, ok := w.pass.Info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return sel.X
}

// checkObligation enforces the lattice at a commit store or ack point: every
// pending tracked write on the path must be fenced. The commit form only
// binds persist:data writes (advancing the mark twice in a row is the
// mark's own business); the ack form binds everything, the commit mark
// included.
func (w *walker) checkObligation(st *state, at token.Pos, what string) {
	isAck := strings.Contains(what, "acknowledged")
	for _, rec := range st.recs {
		if rec.reported || rec.st == pFenced {
			continue
		}
		if !isAck && rec.role != roleData {
			continue
		}
		switch rec.st {
		case pDirty:
			w.reportOnce(rec.pos,
				"store to %q is not covered by a fenced flush before %s at line %d; a crash can make the promise durable while this write is still in a volatile cache line — flush the stored range first (FlushRange, flush+fence)",
				rec.root.Name(), what, w.line(at))
		case pUnfenced:
			w.reportOnce(rec.flushPos,
				"unfenced flush of %q is not ordered before %s at line %d; FlushObject and Hierarchy.Flush issue CLWBs without a fence — use FlushRange (flush+fence)",
				rec.root.Name(), what, w.line(at))
		}
		rec.reported = true
	}
}

// ---------------------------------------------------------------------------
// Address arithmetic

// splitAddr resolves an address expression through single-assignment locals
// and splits it into non-constant summands plus a constant byte offset.
// ok=false when a subtraction of a non-constant term (or another shape the
// interval arithmetic cannot handle) appears.
func (w *walker) splitAddr(e ast.Expr) (terms []ast.Expr, c int64, ok bool) {
	ok = true
	var walk func(e ast.Expr, sign int64)
	walk = func(e ast.Expr, sign int64) {
		if !ok {
			return
		}
		e = w.resolve(e, 0)
		if v, isC := w.constVal(e); isC {
			c += sign * v
			return
		}
		switch ex := e.(type) {
		case *ast.BinaryExpr:
			switch ex.Op {
			case token.ADD:
				walk(ex.X, sign)
				walk(ex.Y, sign)
				return
			case token.SUB:
				walk(ex.X, sign)
				if v, isC := w.constVal(w.resolve(ex.Y, 0)); isC {
					c -= sign * v
					return
				}
				ok = false
				return
			}
		case *ast.CallExpr:
			// A pure conversion is transparent: uint64(x+8) splits like x+8.
			if tv, isT := w.pass.Info.Types[ex.Fun]; isT && tv.IsType() && len(ex.Args) == 1 {
				walk(ex.Args[0], sign)
				return
			}
		}
		if sign < 0 {
			ok = false
			return
		}
		terms = append(terms, e)
	}
	walk(e, 1)
	if !ok {
		return nil, 0, false
	}
	return terms, c, true
}

// resolve substitutes single-assignment locals (depth-capped against
// cycles), returning the defining expression of an identifier.
func (w *walker) resolve(e ast.Expr, depth int) ast.Expr {
	if depth > 8 {
		return e
	}
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if obj := w.pass.Info.Uses[id]; obj != nil {
			if def, ok := w.locals[obj]; ok {
				return w.resolve(def, depth+1)
			}
		}
	}
	return e
}

// constVal evaluates e to a constant int if the type checker knows one.
func (w *walker) constVal(e ast.Expr) (int64, bool) {
	if tv, ok := w.pass.Info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return v, true
		}
	}
	return 0, false
}

// rootOf finds the declared holder among the address terms: exactly one
// summand must be (or resolve through) an `X.Addr` selection of a mem.Object
// field/variable with a role.
func (w *walker) rootOf(terms []ast.Expr) (types.Object, role) {
	var root types.Object
	r := roleNone
	for _, t := range terms {
		sel, ok := ast.Unparen(t).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Addr" {
			continue
		}
		if s, ok := w.pass.Info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
			continue
		} else if s.Obj().Pkg() == nil || s.Obj().Pkg().Path() != memPath {
			continue
		}
		h, hr := w.holderOf(sel.X)
		if hr == roleNone {
			continue
		}
		if root != nil && root != h {
			return nil, roleNone // two tracked anchors in one address: give up
		}
		root, r = h, hr
	}
	return root, r
}

// holderOf resolves an expression denoting a mem.Object value to its
// declared holder (field or variable) and role.
func (w *walker) holderOf(e ast.Expr) (types.Object, role) {
	if e == nil {
		return nil, roleNone
	}
	e = w.resolve(e, 0)
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = w.pass.Info.Uses[e]
		if obj == nil {
			obj = w.pass.Info.Defs[e]
		}
	case *ast.SelectorExpr:
		obj = w.pass.Info.Uses[e.Sel]
	}
	if obj == nil {
		return nil, roleNone
	}
	if r, ok := w.dirs.roles[obj]; ok {
		return obj, r
	}
	return nil, roleNone
}

// termsEqual compares two summand multisets structurally (object-identical
// identifiers, equal constants, equal selector chains).
func (w *walker) termsEqual(a, b []ast.Expr) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, ta := range a {
		for i, tb := range b {
			if !used[i] && w.exprEqual(ta, tb, 0) {
				used[i] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// exprEqual is structural equality with identifiers compared by resolved
// types.Object identity and constants by value.
func (w *walker) exprEqual(a, b ast.Expr, depth int) bool {
	if depth > 16 {
		return false
	}
	a, b = w.resolve(a, 0), w.resolve(b, 0)
	if va, oka := w.constVal(a); oka {
		vb, okb := w.constVal(b)
		return okb && va == vb
	}
	switch ea := a.(type) {
	case *ast.Ident:
		eb, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		oa := w.pass.Info.Uses[ea]
		ob := w.pass.Info.Uses[eb]
		return oa != nil && oa == ob
	case *ast.SelectorExpr:
		eb, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		oa := w.pass.Info.Uses[ea.Sel]
		ob := w.pass.Info.Uses[eb.Sel]
		return oa != nil && oa == ob && w.exprEqual(ea.X, eb.X, depth+1)
	case *ast.BinaryExpr:
		eb, ok := b.(*ast.BinaryExpr)
		if !ok || ea.Op != eb.Op {
			return false
		}
		return w.exprEqual(ea.X, eb.X, depth+1) && w.exprEqual(ea.Y, eb.Y, depth+1)
	case *ast.CallExpr:
		eb, ok := b.(*ast.CallExpr)
		if !ok || len(ea.Args) != len(eb.Args) {
			return false
		}
		if !w.exprEqual(ea.Fun, eb.Fun, depth+1) {
			return false
		}
		for i := range ea.Args {
			if !w.exprEqual(ea.Args[i], eb.Args[i], depth+1) {
				return false
			}
		}
		return true
	case *ast.IndexExpr:
		eb, ok := b.(*ast.IndexExpr)
		return ok && w.exprEqual(ea.X, eb.X, depth+1) && w.exprEqual(ea.Index, eb.Index, depth+1)
	case *ast.UnaryExpr:
		eb, ok := b.(*ast.UnaryExpr)
		return ok && ea.Op == eb.Op && w.exprEqual(ea.X, eb.X, depth+1)
	}
	return false
}
