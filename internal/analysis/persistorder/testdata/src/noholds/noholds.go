// Package noholds is the persistorder adoption fixture: a type that
// implements apps.ConsistencyKernel — it promises client-visible persistence
// semantics — in a package with no persist directives. The analyzer cannot
// prove a contract it cannot see, and says so once, at the type.
package noholds

import (
	"easycrash/internal/apps"
	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

type journal struct{}

func (journal) Merge(other apps.AckJournal) apps.AckJournal { return journal{} }

// Kern implements apps.ConsistencyKernel without declaring its durable
// objects.
type Kern struct { // want `implements apps.ConsistencyKernel but the package declares no persist`
	obj mem.Object
}

func (k *Kern) Name() string                    { return "noholds" }
func (k *Kern) Description() string             { return "adoption fixture" }
func (k *Kern) RegionCount() int                { return 1 }
func (k *Kern) NominalIters() int64             { return 1 }
func (k *Kern) Convergent() bool                { return false }
func (k *Kern) Setup(m *sim.Machine)            {}
func (k *Kern) Init(m *sim.Machine)             {}
func (k *Kern) Result(m *sim.Machine) []float64 { return nil }
func (k *Kern) IterObject() mem.Object          { return k.obj }

func (k *Kern) Run(m *sim.Machine, from, maxIter int64) (int64, error) { return from, nil }
func (k *Kern) Verify(m *sim.Machine, golden []float64) bool           { return true }

func (k *Kern) Journal() apps.AckJournal                           { return journal{} }
func (k *Kern) Audit(m *sim.Machine, j apps.AckJournal) apps.Audit { return apps.Audit{} }
