// Package kvstore is the persistorder fixture: a miniature WAL-plus-commit-
// mark store with every flavour of the flush-before-commit/ack discipline —
// the correct sequence, the pmemkv-bug shape (commit covers an unflushed
// record), unfenced flushes where ordering is owed, provably short flush
// ranges, path-sensitive variants, and the directive error cases.
package kvstore

import (
	"easycrash/internal/cachesim"
	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

const recBytes = 32

type store struct {
	wal  mem.Object //persist:data
	head mem.Object //persist:commit
	mt   mem.Object // untracked on purpose: memtable is rebuilt on recovery

	acked int64
}

// goodPut is the correct discipline: record stores, fenced flush of the
// record, commit-mark store, fenced flush of the mark, acknowledge.
func (s *store) goodPut(m *sim.Machine, seq int64) {
	base := s.wal.Addr + uint64(seq)*recBytes
	m.StoreI64(base, seq+1)
	m.StoreI64(base+8, seq)
	m.FlushRange(base, recBytes, cachesim.CLWB)
	m.StoreI64(s.head.Addr, seq+1)
	m.FlushRange(s.head.Addr, s.head.Size, cachesim.CLWB)
	s.acked = seq + 1 //persist:ack
}

// badPut is the pmemkv-bug shape: the commit mark covers a record that was
// never flushed. The finding lands on the store, the exact site whose
// missing flush is the bug.
func (s *store) badPut(m *sim.Machine, seq int64) {
	base := s.wal.Addr + uint64(seq)*recBytes
	m.StoreI64(base, seq+1) // want `not covered by a fenced flush before the commit mark`
	m.StoreI64(base+8, seq)
	m.StoreI64(s.head.Addr, seq+1)
	m.FlushRange(s.head.Addr, s.head.Size, cachesim.CLWB)
}

// ackOnly owes durability at the acknowledgement even with no commit mark in
// sight.
func (s *store) ackOnly(m *sim.Machine, seq int64) {
	m.StoreI64(s.wal.Addr+uint64(seq)*recBytes, seq+1) // want `before the write is acknowledged`
	s.acked = seq + 1                                  //persist:ack
}

// unfencedPut flushes the record but never fences it: the CLWB is issued,
// nothing orders it before the commit-mark store.
func (s *store) unfencedPut(m *sim.Machine, seq int64) {
	base := s.wal.Addr + uint64(seq)*recBytes
	m.StoreI64(base, seq+1)
	m.FlushObject(s.wal, cachesim.CLWB) // want `use FlushRange`
	m.StoreI64(s.head.Addr, seq+1)
}

// unfencedHier reaches for the raw hierarchy flush, which carries no fence
// either.
func (s *store) unfencedHier(m *sim.Machine, seq int64) {
	base := s.wal.Addr + uint64(seq)*recBytes
	m.StoreI64(base, seq+1)
	m.Hierarchy().Flush(base, recBytes, cachesim.CLWB) // want `use FlushRange`
	m.StoreI64(s.head.Addr, seq+1)
}

// flushMany covers the record only as one element of an unfenced batch.
func (s *store) flushMany(m *sim.Machine, seq int64) {
	m.StoreI64(s.wal.Addr+uint64(seq)*recBytes, seq+1)
	m.FlushObjects([]mem.Object{s.wal, s.head}, cachesim.CLWB) // want `use FlushRange`
	m.StoreI64(s.head.Addr, seq+1)
}

// shortFlush fences a provably short range: the last 8 bytes of the record
// stay volatile across the fence.
func (s *store) shortFlush(m *sim.Machine, seq int64) {
	base := s.wal.Addr + uint64(seq)*recBytes
	m.StoreI64(base, seq+1)
	m.StoreI64(base+8, seq)
	m.StoreI64(base+16, seq)
	m.StoreI64(base+24, seq)
	m.FlushRange(base, recBytes-8, cachesim.CLWB) // want `uncovered bytes stay volatile`
	m.StoreI64(s.head.Addr, seq+1)
}

// branchPut only flushes on one path; the merge keeps the weaker state, so
// the store is unproven on the path where sync is false.
func (s *store) branchPut(m *sim.Machine, seq int64, sync bool) {
	base := s.wal.Addr + uint64(seq)*recBytes
	m.StoreI64(base, seq+1) // want `not covered by a fenced flush before the commit mark`
	if sync {
		m.FlushRange(base, recBytes, cachesim.CLWB)
	}
	m.StoreI64(s.head.Addr, seq+1)
}

// fencedDrain is clean: the unfenced CLWB is drained by a later FlushRange
// fence that still precedes the commit-mark store.
func (s *store) fencedDrain(m *sim.Machine, seq int64) {
	base := s.wal.Addr + uint64(seq)*recBytes
	m.StoreI64(base, seq+1)
	m.FlushObject(s.wal, cachesim.CLWB)
	m.FlushRange(s.head.Addr, s.head.Size, cachesim.CLWB)
	m.StoreI64(s.head.Addr, seq+1)
	m.FlushRange(s.head.Addr, s.head.Size, cachesim.CLWB)
	s.acked = seq + 1 //persist:ack
}

// loopClean flushes each record inside the loop; nothing dirty survives to
// the commit after it.
func (s *store) loopClean(m *sim.Machine, n int64) {
	for seq := int64(0); seq < n; seq++ {
		base := s.wal.Addr + uint64(seq)*recBytes
		m.StoreI64(base, seq+1)
		m.FlushRange(base, recBytes, cachesim.CLWB)
	}
	m.StoreI64(s.head.Addr, n)
	m.FlushRange(s.head.Addr, s.head.Size, cachesim.CLWB)
	s.acked = n //persist:ack
}

// sliceClean stores through a typed view (extent unknowable) and is covered
// by a whole-object fenced flush.
func (s *store) sliceClean(m *sim.Machine, k int, v int64) {
	m.I64(s.wal).Set(k, v)
	m.FlushRange(s.wal.Addr, s.wal.Size, cachesim.CLWB)
	m.StoreI64(s.head.Addr, v)
	m.FlushRange(s.head.Addr, s.head.Size, cachesim.CLWB)
	s.acked = v //persist:ack
}

// untrackedStores touch only undeclared objects; the analyzer owes them
// nothing.
func (s *store) untrackedStores(m *sim.Machine, k int, v int64) {
	m.I64(s.mt).Set(k, v)
	m.StoreI64(s.mt.Addr+uint64(k)*8, v)
	s.acked = v //persist:ack
}

// panicClean crashes before the commit on the unflushed path; a dead path
// carries no obligation.
func (s *store) panicClean(m *sim.Machine, seq int64) {
	base := s.wal.Addr + uint64(seq)*recBytes
	m.StoreI64(base, seq+1)
	if seq > 9 {
		panic("corrupt record")
	}
	m.FlushRange(base, recBytes, cachesim.CLWB)
	m.StoreI64(s.head.Addr, seq+1)
}

// Directive error cases: a data directive on a non-Object declaration, and a
// verb the analyzer does not know.

var loose int //persist:data // want `attaches to no mem.Object`

//persist:flush // want `unknown persist: directive`

var _ = loose
