package analysis_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"easycrash/internal/analysis"
)

// reportCalls builds an analyzer that reports one finding, with the given
// message, at every call to the named function in the fixture.
func reportCalls(name, fn, msg string, requireReason bool) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:          name,
		Doc:           "test analyzer reporting calls to " + fn,
		RequireReason: requireReason,
		Run: func(pass *analysis.Pass) error {
			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == fn {
						pass.Reportf(call.Pos(), "%s", msg)
					}
					return true
				})
			}
			return nil
		},
	}
}

// fixtureLines maps MARK comments (and one exact-text line) in the allowfix
// fixture to line numbers, so assertions survive edits to the fixture.
func fixtureLines(t *testing.T, path string) map[string]int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	lines := map[string]int{}
	for i, l := range strings.Split(string(data), "\n") {
		if j := strings.Index(l, "MARK:"); j >= 0 {
			lines[strings.Fields(l[j:])[0]] = i + 1
		}
		if strings.TrimSpace(l) == "//eclint:allow strict" {
			lines["MARK:bareallow"] = i + 1
		}
	}
	return lines
}

func runAllowFix(t *testing.T) ([]analysis.Finding, map[string]int) {
	t.Helper()
	dir := filepath.Join("testdata", "src", "allowfix")
	pkg, err := analysis.LoadDir(dir, "easycrash/internal/allowfix/fixture")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	fake := reportCalls("fake", "mark", "call to mark", false)
	strict := reportCalls("strict", "smark", "call to smark", true)
	findings, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{fake, strict})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	return findings, fixtureLines(t, filepath.Join(dir, "allowfix.go"))
}

// at returns the findings reported on the given fixture line.
func at(findings []analysis.Finding, line int) []analysis.Finding {
	var out []analysis.Finding
	for _, f := range findings {
		if f.Pos.Line == line {
			out = append(out, f)
		}
	}
	return out
}

// TestAllowAttachment pins the annotation attachment rule: trailing comment,
// line above, and — the multi-line fix — line above the enclosing statement.
func TestAllowAttachment(t *testing.T) {
	findings, lines := runAllowFix(t)

	cases := []struct {
		name   string
		line   int
		reason string
	}{
		{"line above", lines["MARK:above"], "annotation on the line above"},
		{"above multi-line statement", lines["MARK:multiline"], "annotation above the multi-line statement"},
	}
	for _, c := range cases {
		fs := at(findings, c.line)
		if len(fs) != 1 {
			t.Fatalf("%s: want 1 finding at line %d, got %v", c.name, c.line, fs)
		}
		if !fs[0].Suppressed {
			t.Errorf("%s: finding at line %d not suppressed: %v", c.name, c.line, fs[0])
		}
		if fs[0].AllowReason != c.reason {
			t.Errorf("%s: reason = %q, want %q", c.name, fs[0].AllowReason, c.reason)
		}
	}

	// The raw finding still reports, unsuppressed.
	fs := at(findings, lines["MARK:unsuppressed"])
	if len(fs) != 1 || fs[0].Suppressed {
		t.Errorf("unsuppressed call: got %v", fs)
	}

	// The trailing-annotation form: exactly one suppressed finding somewhere
	// with that reason.
	found := false
	for _, f := range findings {
		if f.Suppressed && f.AllowReason == "trailing annotation" {
			found = true
		}
	}
	if !found {
		t.Errorf("no suppressed finding with the trailing annotation; findings: %v", findings)
	}
}

// TestStaleAllowAudit pins the unused-suppression audit: an annotation that
// suppresses nothing is itself a finding, while annotations addressed to
// analyzers outside the run are ignored.
func TestStaleAllowAudit(t *testing.T) {
	findings, lines := runAllowFix(t)

	fs := at(findings, lines["MARK:stale"])
	if len(fs) != 1 {
		t.Fatalf("want 1 audit finding at the stale allow, got %v", fs)
	}
	if fs[0].Analyzer != analysis.AuditName || !strings.Contains(fs[0].Message, "suppresses no fake finding") {
		t.Errorf("stale allow audit finding = %v", fs[0])
	}
	for _, f := range findings {
		if strings.Contains(f.Message, "notinrun") {
			t.Errorf("allow for an analyzer outside the run was audited: %v", f)
		}
	}
}

// TestRequireReason pins justification enforcement: a bare allow for a
// RequireReason analyzer suppresses nothing and is reported, a reasoned one
// suppresses.
func TestRequireReason(t *testing.T) {
	findings, lines := runAllowFix(t)

	fs := at(findings, lines["MARK:strictraw"])
	if len(fs) != 1 || fs[0].Suppressed {
		t.Fatalf("bare //eclint:allow strict must not suppress; findings at line %d: %v", lines["MARK:strictraw"], fs)
	}
	fs = at(findings, lines["MARK:bareallow"])
	if len(fs) != 1 || fs[0].Analyzer != "strict" || !strings.Contains(fs[0].Message, "requires a justification") {
		t.Fatalf("want a requires-a-justification finding at the bare allow, got %v", fs)
	}

	suppressed := 0
	for _, f := range findings {
		if f.Analyzer == "strict" && f.Suppressed {
			suppressed++
			if f.AllowReason != "justified deliberate violation" {
				t.Errorf("reasoned strict allow: reason = %q", f.AllowReason)
			}
		}
	}
	if suppressed != 1 {
		t.Errorf("want exactly 1 suppressed strict finding, got %d", suppressed)
	}
}

// TestEffectivePath pins the testdata/src stripping rule, including the
// path-starts-with-marker case.
func TestEffectivePath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"easycrash/internal/apps", "easycrash/internal/apps"},
		{"x/testdata/src/easycrash/internal/apps", "easycrash/internal/apps"},
		{"testdata/src/kernel", "kernel"},
		{"a/testdata/src/b/testdata/src/c", "c"},
		{"", ""},
		{"testdata/srcx/kernel", "testdata/srcx/kernel"},
	}
	for _, c := range cases {
		if got := analysis.EffectivePath(c.in); got != c.want {
			t.Errorf("EffectivePath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
