// Package kernel is the addrstride fixture: element indices added to
// Object.Addr without the *8 stride must be reported; byte-correct offsets,
// typed slices, and non-Object Addr fields must stay silent.
package kernel

import (
	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

func missingStride(m *sim.Machine, o mem.Object, i int) float64 {
	return m.LoadF64(o.Addr + uint64(i)) // want `not a multiple of the 8-byte element stride`
}

func missingStrideStore(m *sim.Machine, o mem.Object, i int) {
	m.StoreI64(uint64(i)+o.Addr, 1) // want `not a multiple of the 8-byte element stride`
}

func oddConstant(m *sim.Machine, o mem.Object) float64 {
	return m.LoadF64(o.Addr + 3) // want `not a multiple of the 8-byte element stride`
}

func rawAccessorStride(im *mem.Image, o mem.Object, i int) float64 {
	return im.Float64At(o.Addr + uint64(i)) // want `not a multiple of the 8-byte element stride`
}

func strided(m *sim.Machine, o mem.Object, i, j int) float64 {
	v := m.LoadF64(o.Addr + uint64(i)*8)
	m.StoreF64(o.Addr+uint64(i)<<3, v)
	m.StoreI64(o.Addr+8*uint64(j)+16, 1)
	m.StoreF64(o.Addr+uint64(i*j)*8, v)
	return v + m.LoadF64(o.Addr) // element 0: no arithmetic at all
}

func byteOffsets(m *sim.Machine, o mem.Object) float64 {
	a := m.LoadF64(o.Addr + o.Size - 8)    // last element
	b := m.LoadF64(o.Addr + mem.BlockSize) // block-aligned constant
	return a + b
}

func typedViews(m *sim.Machine, o mem.Object, i int) float64 {
	u := m.F64(o)
	u.Set(i, 4.5)
	return u.At(i)
}

func annotated(m *sim.Machine, o mem.Object, i int) float64 {
	//eclint:allow addrstride — deliberate byte-granular probe
	return m.LoadF64(o.Addr + uint64(i))
}

// otherAddr has an Addr field that is not mem.Object's; it must not fire.
type otherAddr struct{ Addr uint64 }

func notAnObject(m *sim.Machine, o otherAddr, i int) float64 {
	return m.LoadF64(o.Addr + uint64(i))
}
