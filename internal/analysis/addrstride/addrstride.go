// Package addrstride detects element-index arithmetic on mem.Object.Addr
// that forgets the 8-byte element stride.
//
// Data objects hold float64/int64 elements, so element i of object o lives
// at o.Addr + uint64(i)*8. Writing o.Addr + uint64(i) instead silently reads
// or writes the wrong element — the address is still inside the object, so
// nothing crashes; the kernel just computes garbage and the crash campaign
// characterises a workload that does not exist. The typed views
// (sim.F64Slice / sim.I64Slice via Machine.F64/I64) make the bug
// inexpressible and are the recommended fix.
//
// The check fires on the address argument of the demand-access and
// raw-access entry points (Machine.LoadF64/StoreF64/LoadI64/StoreI64 and the
// Image *At accessors): a `o.Addr + e` (or `e + o.Addr`) term is reported
// unless e is provably a multiple of 8 — a constant multiple of 8, a
// multiplication or shift by one, a sum/difference of such terms, an
// Object.Size, or an Object.End() offset.
package addrstride

import (
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"easycrash/internal/analysis"
)

const (
	memPath = "easycrash/internal/mem"
	simPath = "easycrash/internal/sim"
)

// addrTakers maps receiver type (by package) to the methods whose first
// argument is an NVM address.
var addrTakers = map[[2]string]map[string]bool{
	{simPath, "Machine"}: {
		"LoadF64": true, "StoreF64": true, "LoadI64": true, "StoreI64": true,
	},
	{memPath, "Image"}: {
		"Float64At": true, "SetFloat64At": true, "Int64At": true, "SetInt64At": true,
	},
}

// Analyzer is the addrstride check.
var Analyzer = &analysis.Analyzer{
	Name: "addrstride",
	Doc:  "detects address arithmetic on mem.Object.Addr that forgets the 8-byte element stride (use F64Slice/I64Slice)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := analysis.CalleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			pkg, typ, ok := analysis.RecvNamed(fn)
			if !ok || !addrTakers[[2]string{pkg, typ}][fn.Name()] {
				return true
			}
			checkAddrExpr(pass, call.Args[0])
			return true
		})
	}
	return nil
}

// checkAddrExpr scans an address expression for `o.Addr ± e` terms with a
// stride-unsafe e.
func checkAddrExpr(pass *analysis.Pass, arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
			return true
		}
		var offset ast.Expr
		switch {
		case isObjectAddr(pass, be.X):
			offset = be.Y
		case be.Op == token.ADD && isObjectAddr(pass, be.Y):
			offset = be.X
		default:
			return true
		}
		if !strideSafe(pass, offset) {
			pass.Reportf(be.Pos(),
				"offset %q on mem.Object.Addr is not a multiple of the 8-byte element stride; element i lives at Addr + uint64(i)*8 — use Machine.F64/I64 slices instead of raw address arithmetic",
				exprString(pass, offset))
		}
		return true
	})
}

// isObjectAddr reports whether e is a selection of the Addr field of a
// mem.Object (through values, pointers or struct fields).
func isObjectAddr(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Addr" {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		// Qualified package selectors (pkg.Var) have no selection entry.
		return false
	}
	obj := s.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == memPath
}

// strideSafe reports whether e is provably a multiple of 8 bytes.
func strideSafe(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	// Constants: any known value that is a multiple of 8.
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return v%8 == 0
		}
		return false
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB:
			return strideSafe(pass, e.X) && strideSafe(pass, e.Y)
		case token.MUL:
			return strideSafe(pass, e.X) || strideSafe(pass, e.Y)
		case token.SHL:
			if tv, ok := pass.Info.Types[e.Y]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
					return v >= 3
				}
			}
		}
	case *ast.SelectorExpr:
		// o.Size is a byte count of whole 8-byte elements.
		if e.Sel.Name == "Size" {
			if s, ok := pass.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
				obj := s.Obj()
				return obj.Pkg() != nil && obj.Pkg().Path() == memPath
			}
		}
	case *ast.CallExpr:
		// A conversion like uint64(x) preserves multiples-of-8-ness.
		if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return strideSafe(pass, e.Args[0])
		}
		// o.End() is Addr+Size: block-aligned Addr plus a safe Size.
		if analysis.IsMethod(pass.Info, e, memPath, "Object", "End") {
			return true
		}
	}
	return false
}

func exprString(pass *analysis.Pass, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, pass.Fset, e); err != nil {
		return "<expr>"
	}
	return b.String()
}
