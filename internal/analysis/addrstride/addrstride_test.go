package addrstride_test

import (
	"path/filepath"
	"testing"

	"easycrash/internal/analysis/addrstride"
	"easycrash/internal/analysis/analysistest"
)

func TestAddrStride(t *testing.T) {
	dir := filepath.Join("testdata", "src", "kernel")
	analysistest.Run(t, dir, "easycrash/internal/apps/fixture", addrstride.Analyzer)
}
