// Package endurance turns the write counts the simulator measures into NVM
// lifetime estimates — the quantity behind the paper's endurance motivation
// (§1: PCM endures seven orders of magnitude fewer writes than DRAM; §6:
// EasyCrash reduces additional writes by 44% on average versus C/R).
//
// The model is the standard one for wear-limited media: with capacity C
// bytes, per-cell endurance E writes, a wear-levelling efficiency η (1 =
// perfect levelling, as Start-Gap approaches), and a sustained write rate W
// bytes/second, the device lasts
//
//	lifetime = η · C · E / W  seconds.
package endurance

import (
	"errors"
	"fmt"
	"time"
)

// Media describes an NVM technology's wear characteristics.
type Media struct {
	Name string
	// CellEndurance is the number of writes a cell tolerates.
	CellEndurance float64
	// Leveling is the wear-levelling efficiency in (0, 1].
	Leveling float64
}

// PCM is phase-change memory with Start-Gap-class wear levelling (the
// paper cites ~1e8-1e9 write endurance; we take the conservative end).
func PCM() Media { return Media{Name: "pcm", CellEndurance: 1e8, Leveling: 0.9} }

// OptaneDC approximates Intel Optane DC PMM media endurance.
func OptaneDC() Media { return Media{Name: "optane-dc", CellEndurance: 1e6 * 30, Leveling: 0.9} }

// ErrBadModel reports non-positive model parameters.
var ErrBadModel = errors.New("endurance: parameters must be positive")

// Lifetime returns how long a device of capacityBytes lasts under a
// sustained write rate of bytesPerSecond.
func (m Media) Lifetime(capacityBytes, bytesPerSecond float64) (time.Duration, error) {
	if capacityBytes <= 0 || bytesPerSecond <= 0 || m.CellEndurance <= 0 || m.Leveling <= 0 || m.Leveling > 1 {
		return 0, ErrBadModel
	}
	seconds := m.Leveling * capacityBytes * m.CellEndurance / bytesPerSecond
	// Saturate at 1<<62 ns (~146 years): effectively unlimited, and safely
	// inside time.Duration's range after float64 rounding.
	const maxNS = float64(int64(1) << 62)
	ns := seconds * 1e9
	if ns > maxNS {
		ns = maxNS
	}
	return time.Duration(ns), nil
}

// SchemeWrites describes a fault-tolerance scheme's measured write traffic,
// normalized to the unprotected application (1.0 = no extra writes).
type SchemeWrites struct {
	Scheme     string
	Normalized float64
}

// Comparison reports per-scheme lifetimes for one deployment.
type Comparison struct {
	Media          Media
	CapacityBytes  float64
	BaseWriteBytes float64 // application write rate, bytes/second
	Rows           []ComparisonRow
}

// ComparisonRow is one scheme's lifetime.
type ComparisonRow struct {
	Scheme     string
	Normalized float64
	Lifetime   time.Duration
	// LifetimeLossVsBase is the fraction of unprotected lifetime lost to
	// the scheme's extra writes.
	LifetimeLossVsBase float64
}

// Compare computes lifetimes for the unprotected application and each
// fault-tolerance scheme.
func Compare(m Media, capacityBytes, baseBytesPerSecond float64, schemes []SchemeWrites) (Comparison, error) {
	base, err := m.Lifetime(capacityBytes, baseBytesPerSecond)
	if err != nil {
		return Comparison{}, err
	}
	c := Comparison{Media: m, CapacityBytes: capacityBytes, BaseWriteBytes: baseBytesPerSecond}
	c.Rows = append(c.Rows, ComparisonRow{Scheme: "unprotected", Normalized: 1, Lifetime: base})
	for _, s := range schemes {
		if s.Normalized < 1 {
			return Comparison{}, fmt.Errorf("endurance: scheme %q normalized writes %v below 1", s.Scheme, s.Normalized)
		}
		lt, err := m.Lifetime(capacityBytes, baseBytesPerSecond*s.Normalized)
		if err != nil {
			return Comparison{}, err
		}
		c.Rows = append(c.Rows, ComparisonRow{
			Scheme:             s.Scheme,
			Normalized:         s.Normalized,
			Lifetime:           lt,
			LifetimeLossVsBase: 1 - 1/s.Normalized,
		})
	}
	return c, nil
}
