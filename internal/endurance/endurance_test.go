package endurance

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestLifetimeBasics(t *testing.T) {
	m := Media{Name: "m", CellEndurance: 1e6, Leveling: 1}
	// 1 GiB at 1 GiB/s: each full-device write takes 1 s, 1e6 of them.
	lt, err := m.Lifetime(1<<30, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lt, time.Duration(1e6)*time.Second; got != want {
		t.Fatalf("lifetime = %v, want %v", got, want)
	}
	// Halving the write rate doubles lifetime.
	lt2, _ := m.Lifetime(1<<30, 1<<29)
	if lt2 != 2*lt {
		t.Fatalf("half rate lifetime = %v, want %v", lt2, 2*lt)
	}
}

func TestLifetimeErrors(t *testing.T) {
	m := PCM()
	for _, tc := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}} {
		if _, err := m.Lifetime(tc[0], tc[1]); err != ErrBadModel {
			t.Fatalf("Lifetime(%v, %v): err = %v", tc[0], tc[1], err)
		}
	}
	bad := Media{CellEndurance: 1e6, Leveling: 1.5}
	if _, err := bad.Lifetime(1, 1); err != ErrBadModel {
		t.Fatal("excess levelling efficiency accepted")
	}
}

func TestLifetimeSaturatesInsteadOfOverflow(t *testing.T) {
	m := Media{Name: "m", CellEndurance: 1e18, Leveling: 1}
	lt, err := m.Lifetime(1e18, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lt <= 0 {
		t.Fatalf("overflowed to %v", lt)
	}
}

func TestCompare(t *testing.T) {
	c, err := Compare(PCM(), 128<<30, 20<<30, []SchemeWrites{
		{Scheme: "easycrash", Normalized: 1.16},
		{Scheme: "ckpt-all", Normalized: 1.50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 3 {
		t.Fatalf("rows = %d", len(c.Rows))
	}
	if !(c.Rows[0].Lifetime > c.Rows[1].Lifetime && c.Rows[1].Lifetime > c.Rows[2].Lifetime) {
		t.Fatalf("lifetime ordering wrong: %+v", c.Rows)
	}
	// The loss formula: 1.5x writes lose a third of the lifetime.
	if math.Abs(c.Rows[2].LifetimeLossVsBase-1.0/3) > 1e-9 {
		t.Fatalf("loss = %v, want 1/3", c.Rows[2].LifetimeLossVsBase)
	}
	if _, err := Compare(PCM(), 1<<30, 1<<20, []SchemeWrites{{Scheme: "bogus", Normalized: 0.5}}); err == nil {
		t.Fatal("normalized < 1 accepted")
	}
}

func TestMediaPresets(t *testing.T) {
	for _, m := range []Media{PCM(), OptaneDC()} {
		if m.CellEndurance <= 0 || m.Leveling <= 0 || m.Leveling > 1 {
			t.Fatalf("preset %q invalid: %+v", m.Name, m)
		}
	}
}

// Property: lifetime is monotone — more capacity or endurance never hurts,
// more writes never help.
func TestQuickLifetimeMonotone(t *testing.T) {
	f := func(capKiB, rateKiB uint16, extra uint8) bool {
		capacity := float64(capKiB)*1024 + 1024
		rate := float64(rateKiB)*1024 + 1024
		m := PCM()
		a, err := m.Lifetime(capacity, rate)
		if err != nil {
			return false
		}
		b, err := m.Lifetime(capacity*(1+float64(extra)/10), rate)
		if err != nil {
			return false
		}
		c, err := m.Lifetime(capacity, rate*(1+float64(extra)/10))
		if err != nil {
			return false
		}
		return b >= a && c <= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
