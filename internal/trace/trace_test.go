package trace_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/mem"
	"easycrash/internal/sim"
	"easycrash/internal/trace"
)

func TestRecordAndReplayMatchesLiveRun(t *testing.T) {
	// Record a kmeans run, then replay the trace against an identical
	// hierarchy: hit/miss statistics must match the live run exactly.
	f, err := apps.New("kmeans", apps.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	k := f()
	m := sim.NewMachine(64<<20, cachesim.TestConfig())
	k.Setup(m)
	rec := trace.NewRecorder()
	m.SetObserver(rec)
	k.Init(m)
	if _, err := k.Run(m, 0, 2*k.NominalIters()); err != nil {
		t.Fatal(err)
	}
	live := m.Hierarchy().Stats()

	im := mem.NewImage(64 << 20)
	h := cachesim.New(cachesim.TestConfig(), im)
	replayed := rec.Trace().Replay(h)

	if replayed.Loads != live.Loads || replayed.Stores != live.Stores {
		t.Fatalf("access counts differ: %d/%d vs %d/%d",
			replayed.Loads, replayed.Stores, live.Loads, live.Stores)
	}
	for l := range live.Hits {
		if replayed.Hits[l] != live.Hits[l] || replayed.Misses[l] != live.Misses[l] {
			t.Fatalf("level %d hits/misses differ: %d/%d vs %d/%d",
				l, replayed.Hits[l], replayed.Misses[l], live.Hits[l], live.Misses[l])
		}
	}
	if replayed.Fills != live.Fills || replayed.EvictionWritebacks != live.EvictionWritebacks {
		t.Fatalf("fills/writebacks differ: %d/%d vs %d/%d",
			replayed.Fills, replayed.EvictionWritebacks, live.Fills, live.EvictionWritebacks)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(trace.Event{Addr: 64, Size: 8, Store: true})
	tr.Append(trace.Event{Addr: 128, Size: 8})
	tr.Append(trace.Event{Addr: 64, Size: 16, Store: true}) // negative delta
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len %d, want %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if got.At(i) != tr.At(i) {
			t.Fatalf("event %d: %+v != %+v", i, got.At(i), tr.At(i))
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := trace.Read(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := trace.Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Valid magic, truncated body.
	if _, err := trace.Read(bytes.NewReader([]byte{'E', 'C', 'T', '1', 5})); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestCompressionIsCompact(t *testing.T) {
	// Sequential strided accesses must encode in a few bytes per event.
	tr := &trace.Trace{}
	for i := 0; i < 10000; i++ {
		tr.Append(trace.Event{Addr: uint64(i) * 8, Size: 8, Store: i%3 == 0})
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if perEvent := float64(buf.Len()) / 10000; perEvent > 3 {
		t.Fatalf("%.1f bytes/event, want compact (< 3) for strided traces", perEvent)
	}
}

// Property: serialisation round-trips arbitrary event sequences.
func TestQuickRoundTrip(t *testing.T) {
	f := func(addrs []uint32, flags []bool) bool {
		tr := &trace.Trace{}
		for i, a := range addrs {
			store := i < len(flags) && flags[i]
			tr.Append(trace.Event{Addr: uint64(a), Size: uint32(1 + i%64), Store: store})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := trace.Read(&buf)
		if err != nil || got.Len() != tr.Len() {
			return false
		}
		for i := 0; i < tr.Len(); i++ {
			if got.At(i) != tr.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayAcrossGeometries(t *testing.T) {
	// The same trace replayed on a bigger LLC must not miss more.
	tr := &trace.Trace{}
	for i := 0; i < 5000; i++ {
		tr.Append(trace.Event{Addr: uint64((i * 131) % (64 << 10)), Size: 8, Store: i%2 == 0})
	}
	small := cachesim.New(cachesim.TestConfig(), mem.NewImage(1<<20))
	sSmall := tr.Replay(small)
	bigCfg := cachesim.TestConfig()
	bigCfg.Levels[2].Size *= 4
	big := cachesim.New(bigCfg, mem.NewImage(1<<20))
	sBig := tr.Replay(big)
	if sBig.Misses[2] > sSmall.Misses[2] {
		t.Fatalf("bigger LLC missed more: %d > %d", sBig.Misses[2], sSmall.Misses[2])
	}
}
