// Package trace records the demand-access stream of a simulated run and
// replays it against a cache hierarchy. A recorded trace decouples cache
// studies (geometry sweeps, replacement-policy comparisons, write-traffic
// what-ifs) from kernel execution: capture once, replay cheaply under many
// configurations — the workflow PIN-based tools like the paper's NVCT
// support natively.
//
// Traces are stored delta-encoded with variable-length integers, which
// compresses the strided access patterns of HPC kernels to a few bytes per
// access, and serialise to any io.Writer.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"easycrash/internal/cachesim"
)

// Event is one demand access.
type Event struct {
	Addr  uint64
	Size  uint32
	Store bool
}

// Trace is a recorded access stream.
type Trace struct {
	events []Event
}

// Recorder implements sim.Observer, appending every access to a Trace.
type Recorder struct {
	t Trace
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Access implements sim.Observer.
func (r *Recorder) Access(addr uint64, size int, store bool) {
	r.t.events = append(r.t.events, Event{Addr: addr, Size: uint32(size), Store: store})
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace { return &r.t }

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// At returns event i.
func (t *Trace) At(i int) Event { return t.events[i] }

// Append adds an event (for programmatic trace construction).
func (t *Trace) Append(e Event) { t.events = append(t.events, e) }

// Replay drives the trace through a hierarchy on core 0 and returns the
// resulting statistics. The hierarchy's backing memory supplies data; only
// the access pattern matters for the statistics.
func (t *Trace) Replay(h *cachesim.Hierarchy) cachesim.Stats {
	buf := make([]byte, 64)
	for _, e := range t.events {
		n := int(e.Size)
		if n > len(buf) {
			buf = make([]byte, n)
		}
		if e.Store {
			h.Store(0, e.Addr, buf[:n])
		} else {
			h.Load(0, e.Addr, buf[:n])
		}
	}
	return h.Stats()
}

// magic identifies the serialised format.
var magic = [4]byte{'E', 'C', 'T', '1'}

// WriteTo serialises the trace: a magic header, the event count, then per
// event a zig-zag varint address delta and a varint packing size and the
// store flag.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.Write(magic[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	var scratch [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(scratch[:], uint64(len(t.events)))
	n, err = bw.Write(scratch[:k])
	written += int64(n)
	if err != nil {
		return written, err
	}
	var prev uint64
	for _, e := range t.events {
		delta := int64(e.Addr) - int64(prev)
		prev = e.Addr
		k = binary.PutVarint(scratch[:], delta)
		n, err = bw.Write(scratch[:k])
		written += int64(n)
		if err != nil {
			return written, err
		}
		meta := uint64(e.Size) << 1
		if e.Store {
			meta |= 1
		}
		k = binary.PutUvarint(scratch[:], meta)
		n, err = bw.Write(scratch[:k])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ErrBadFormat reports a corrupt or foreign trace stream.
var ErrBadFormat = errors.New("trace: bad format")

// Read deserialises a trace written by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, ErrBadFormat
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const sanityMax = 1 << 32
	if count > sanityMax {
		return nil, ErrBadFormat
	}
	t := &Trace{events: make([]Event, 0, count)}
	var prev uint64
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		addr := uint64(int64(prev) + delta)
		prev = addr
		meta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading event %d meta: %w", i, err)
		}
		t.events = append(t.events, Event{
			Addr:  addr,
			Size:  uint32(meta >> 1),
			Store: meta&1 != 0,
		})
	}
	return t, nil
}
