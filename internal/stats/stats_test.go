package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice mean/variance not 0")
	}
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); !approx(got, 1.25, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
}

func TestRanksNoTies(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksWithTies(t *testing.T) {
	// 5,5 share ranks 2 and 3 -> 2.5 each.
	got := Ranks([]float64{5, 1, 5, 9})
	want := []float64{2.5, 1, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
	// All tied: everyone gets the middle rank.
	got = Ranks([]float64{7, 7, 7})
	for _, r := range got {
		if r != 2 {
			t.Fatalf("all-ties Ranks = %v", got)
		}
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err != ErrTooFewSamples {
		t.Fatalf("short input: err = %v", err)
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err != ErrConstantInput {
		t.Fatalf("constant input: err = %v", err)
	}
}

func TestSpearmanPerfectMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ysUp := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	c, err := Spearman(xs, ysUp)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rs != 1 {
		t.Fatalf("Rs = %v, want 1", c.Rs)
	}
	if c.P > 1e-6 {
		t.Fatalf("perfect correlation p = %v", c.P)
	}
	ysDown := []float64{8, 7, 6, 5, 4, 3, 2, 1}
	c, err = Spearman(xs, ysDown)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rs != -1 {
		t.Fatalf("Rs = %v, want -1", c.Rs)
	}
	// Nonlinear but monotone still gives ±1 (the point of rank correlation).
	ysExp := []float64{1, 4, 9, 16, 25, 36, 49, 64}
	c, _ = Spearman(xs, ysExp)
	if c.Rs != 1 {
		t.Fatalf("monotone nonlinear Rs = %v, want 1", c.Rs)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Classic small example: ranks differ by known d², Rs = 1 - 6Σd²/(n(n²-1)).
	xs := []float64{106, 100, 86, 101, 99, 103, 97, 113, 112, 110}
	ys := []float64{7, 27, 2, 50, 28, 29, 20, 12, 6, 17}
	c, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(c.Rs, -0.17575757575, 1e-9) {
		t.Fatalf("Rs = %v, want -0.175757...", c.Rs)
	}
	if c.P < 0.5 {
		t.Fatalf("weak correlation should have large p, got %v", c.P)
	}
}

func TestSpearmanBinaryOutcomeVector(t *testing.T) {
	// The paper correlates inconsistency rates against binary success/fail;
	// ties in the binary vector must be handled. High rate -> failure (0).
	rate := []float64{0.9, 0.8, 0.7, 0.6, 0.3, 0.2, 0.1, 0.05, 0.5, 0.4}
	success := []float64{0, 0, 0, 0, 1, 1, 1, 1, 0, 1}
	c, err := Spearman(rate, success)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rs >= 0 {
		t.Fatalf("expected negative correlation, Rs = %v", c.Rs)
	}
	if c.P > 0.05 {
		t.Fatalf("expected significant correlation, p = %v", c.P)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := Spearman([]float64{1, 2}, []float64{1, 2}); err != ErrTooFewSamples {
		t.Fatalf("err = %v, want ErrTooFewSamples", err)
	}
	if _, err := Spearman([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3}); err != ErrConstantInput {
		t.Fatalf("constant xs: err = %v", err)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("boundary values wrong")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !approx(got, x, 1e-12) {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.4, 0.6, 0.8} {
		lhs := RegIncBeta(2.5, 4, x)
		rhs := 1 - RegIncBeta(4, 2.5, 1-x)
		if !approx(lhs, rhs, 1e-10) {
			t.Fatalf("symmetry violated at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestTCDF2TailKnownValues(t *testing.T) {
	// With df=10, |t|=2.228 is the classic two-tailed 5% critical value.
	if got := TCDF2Tail(2.228, 10); !approx(got, 0.05, 0.001) {
		t.Fatalf("t=2.228 df=10: p = %v, want ~0.05", got)
	}
	if got := TCDF2Tail(0, 10); !approx(got, 1, 1e-12) {
		t.Fatalf("t=0: p = %v, want 1", got)
	}
	// Symmetric in t.
	if TCDF2Tail(1.5, 7) != TCDF2Tail(-1.5, 7) {
		t.Fatal("not symmetric in t")
	}
	if !math.IsNaN(TCDF2Tail(math.NaN(), 5)) || !math.IsNaN(TCDF2Tail(1, -1)) {
		t.Fatal("invalid inputs should give NaN")
	}
}

// Property: Rs is always within [-1, 1] and p within [0, 1].
func TestQuickSpearmanRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(10)) // induce ties
			ys[i] = rng.NormFloat64()
		}
		c, err := Spearman(xs, ys)
		if err == ErrConstantInput {
			return true
		}
		if err != nil {
			return false
		}
		return c.Rs >= -1 && c.Rs <= 1 && c.P >= 0 && c.P <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Spearman is invariant under any strictly monotone transform of
// either input.
func TestQuickSpearmanMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
		}
		c1, err1 := Spearman(xs, ys)
		tx := make([]float64, n)
		for i, x := range xs {
			tx[i] = math.Exp(x/50) + 3 // strictly increasing
		}
		c2, err2 := Spearman(tx, ys)
		if err1 != nil || err2 != nil {
			return err1 == err2
		}
		return approx(c1.Rs, c2.Rs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: independent inputs rarely look significant; check p is not
// degenerate (never returns 0 for noise).
func TestQuickSpearmanNoiseP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	small := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		n := 20
		xs := make([]float64, n)
		ys := make([]float64, n)
		for j := range xs {
			xs[j] = rng.NormFloat64()
			ys[j] = rng.NormFloat64()
		}
		c, err := Spearman(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if c.P < 0.01 {
			small++
		}
	}
	// At the 1% level we expect about 2 of 200 false positives; allow slack.
	if small > 12 {
		t.Fatalf("%d/%d independent trials significant at 1%%", small, trials)
	}
}

func TestKendallTauBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	up := []float64{2, 4, 6, 8, 10, 12, 14, 16}
	c, err := KendallTau(xs, up)
	if err != nil || c.Rs != 1 {
		t.Fatalf("perfect concordance: %v, %v", c, err)
	}
	if c.P > 0.01 {
		t.Fatalf("perfect concordance p = %v", c.P)
	}
	down := []float64{8, 7, 6, 5, 4, 3, 2, 1}
	c, _ = KendallTau(xs, down)
	if c.Rs != -1 {
		t.Fatalf("perfect discordance: %v", c.Rs)
	}
	if _, err := KendallTau([]float64{1, 2}, []float64{1, 2}); err != ErrTooFewSamples {
		t.Fatalf("short input: %v", err)
	}
	if _, err := KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3}); err != ErrConstantInput {
		t.Fatalf("constant input: %v", err)
	}
	if _, err := KendallTau([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// Property: Kendall and Spearman agree in sign for monotone-ish data, and
// Kendall stays in [-1,1] with p in [0,1].
func TestQuickKendallAgreesWithSpearmanOnDirection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = float64(i)*2 + rng.NormFloat64()*0.5 // strongly increasing
		}
		k, err1 := KendallTau(xs, ys)
		s, err2 := Spearman(xs, ys)
		if err1 != nil || err2 != nil {
			return false
		}
		if k.Rs < -1 || k.Rs > 1 || k.P < 0 || k.P > 1 {
			return false
		}
		return (k.Rs > 0) == (s.Rs > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
