// Package stats provides the statistical machinery EasyCrash's data-object
// selection relies on (§5.1 of the paper): Spearman's rank correlation
// coefficient with tie-aware ranking, and its two-tailed p-value via the
// Student-t approximation, plus small descriptive helpers.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrTooFewSamples is returned when a correlation needs more observations.
var ErrTooFewSamples = errors.New("stats: need at least 3 paired samples")

// ErrConstantInput is returned when an input vector has zero variance, which
// makes the rank correlation undefined.
var ErrConstantInput = errors.New("stats: input vector is constant")

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Ranks assigns fractional ranks (1-based), averaging ranks across ties —
// the ranking Spearman's coefficient requires.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson product-moment correlation of two equal-length
// vectors. It returns ErrConstantInput if either vector has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrTooFewSamples
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, ErrConstantInput
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp numerical drift.
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, nil
}

// Correlation is the result of a Spearman rank correlation test.
type Correlation struct {
	Rs float64 // Spearman's rank correlation coefficient
	P  float64 // two-tailed p-value (Student-t approximation)
	N  int     // number of paired observations
}

// Spearman computes Spearman's rank correlation between xs and ys with
// tie-aware ranking, and the two-tailed p-value of the null hypothesis of no
// association, using the t-distribution approximation
// t = r*sqrt((n-2)/(1-r²)) with n-2 degrees of freedom (Zar 1972).
func Spearman(xs, ys []float64) (Correlation, error) {
	if len(xs) != len(ys) {
		return Correlation{}, errors.New("stats: length mismatch")
	}
	n := len(xs)
	if n < 3 {
		return Correlation{}, ErrTooFewSamples
	}
	rs, err := Pearson(Ranks(xs), Ranks(ys))
	if err != nil {
		return Correlation{}, err
	}
	return Correlation{Rs: rs, P: spearmanP(rs, n), N: n}, nil
}

// spearmanP returns the two-tailed p-value for a Spearman coefficient.
func spearmanP(rs float64, n int) float64 {
	if n < 3 {
		return 1
	}
	if rs >= 1 || rs <= -1 {
		return 0
	}
	df := float64(n - 2)
	t := rs * math.Sqrt(df/(1-rs*rs))
	return TCDF2Tail(t, df)
}

// TCDF2Tail returns the two-tailed tail probability P(|T| >= |t|) for a
// Student-t variate with df degrees of freedom, via the regularized
// incomplete beta function: P = I_{df/(df+t²)}(df/2, 1/2).
func TCDF2Tail(t, df float64) float64 {
	if math.IsNaN(t) || df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := RegIncBeta(df/2, 0.5, x)
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	return p
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Lentz's method), the standard
// numerical approach for t- and F-distribution tails.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// KendallTau computes Kendall's tau-b rank correlation between xs and ys
// (tie-corrected), with a normal-approximation two-tailed p-value. It is an
// alternative to Spearman for the critical-object selection; the two agree
// on direction and significance for the monotone relationships EasyCrash
// cares about, and the ablation harness compares them.
func KendallTau(xs, ys []float64) (Correlation, error) {
	if len(xs) != len(ys) {
		return Correlation{}, errors.New("stats: length mismatch")
	}
	n := len(xs)
	if n < 3 {
		return Correlation{}, ErrTooFewSamples
	}
	var concordant, discordant float64
	var tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				// Joint tie: contributes to neither denominator term.
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	denom := math.Sqrt((concordant + discordant + tiesX) * (concordant + discordant + tiesY))
	if denom == 0 {
		return Correlation{}, ErrConstantInput
	}
	tau := (concordant - discordant) / denom
	if tau > 1 {
		tau = 1
	} else if tau < -1 {
		tau = -1
	}
	// Normal approximation for the null distribution of tau.
	nf := float64(n)
	sigma := math.Sqrt(2 * (2*nf + 5) / (9 * nf * (nf - 1)))
	z := tau / sigma
	p := math.Erfc(math.Abs(z) / math.Sqrt2)
	return Correlation{Rs: tau, P: p, N: n}, nil
}
