// Package pmemkv is a small persistent key-value store built directly on the
// simulated NVM machine — the workload class the paper's recomputation thesis
// does not cover. The HPC kernels of package apps tolerate partial
// inconsistency because a restart can recompute lost state; a KV store cannot:
// once it acknowledges a write to a client, that write must survive any crash.
//
// Layout (all objects in simulated NVM, every access through the cache):
//
//   - wal     — append-only write-ahead log, one 32-byte record per put:
//     [marker = seq+1, key, value, checksum]. Candidate.
//   - walhead — the commit mark: [count, checksum(count)]. A put is
//     acknowledged only after its record and the advanced commit
//     mark are flushed (the correct variant's ordering). Candidate.
//   - memtable— the lookup table, one value slot per key. Volatile in
//     spirit: rebuilt from the log on every recovery, never restored.
//   - it      — the engine's iteration bookmark, like every kernel.
//
// The store ships two variants behind one flag. The correct one flushes each
// WAL record before advancing and flushing the commit mark — the
// flush + fence discipline of NVM data persistence. The deliberately buggy
// one ("pmemkv-bug") skips the record flush: the commit mark can reach the
// media while the record it covers is still sitting in a volatile cache
// line. Recovery then finds a hole below the commit mark, truncates the log
// like any append-only store would, and silently forgets acknowledged
// writes — exactly the class of crash-consistency bug the campaign oracle
// (apps.ConsistencyKernel, WITCHER-style) exists to catch.
package pmemkv

import (
	"fmt"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

const (
	recBytes = 32 // one WAL record: marker, key, value, checksum
)

func init() {
	apps.Register("pmemkv", func(p apps.Profile) apps.Kernel { return New(p) })
	apps.Register("pmemkv-bug", func(p apps.Profile) apps.Kernel { return NewBuggy(p) })
}

// putOp is one pre-generated put of the deterministic workload stream.
type putOp struct {
	key int
	val int64
}

// Store is the KV store kernel. One instance is bound to one machine at a
// time (apps.Kernel contract); the op stream is generated at construction so
// every life of a crash test replays the identical client workload.
type Store struct {
	name  string
	buggy bool

	nKeys       int
	nit         int64
	putsPerIter int
	getsPerIter int

	puts   []putOp   // the put stream, indexed by sequence number
	byKey  [][]int32 // ascending put sequence numbers per key
	getPut []int32   // per get: the put whose key the client reads back

	wal  mem.Object //persist:data
	head mem.Object //persist:commit
	mt   mem.Object // memtable: rebuilt from the WAL on recovery, untracked
	it   mem.Object

	// acked is the volatile ack journal: puts [0, acked) have been
	// acknowledged to the client as durable. It models the client's view and
	// deliberately lives outside simulated NVM.
	acked int64
	// replayed is how many log records the last recovery applied; the synced
	// prefix the store believes in.
	replayed int64
	// recoveryErr is a detected recovery failure (corrupt commit mark or
	// record, unreadable media); the store refuses to serve until resolved.
	recoveryErr error
}

// New returns the correct store: WAL record flushed before the commit mark
// advances — acknowledged writes are always recoverable.
func New(p apps.Profile) *Store { return newStore(p, "pmemkv", false) }

// NewBuggy returns the deliberately broken store: the record flush between
// the WAL append and the commit-mark update is missing, so an acknowledged
// write can vanish in a crash. The oracle must catch it; nothing else in the
// store differs.
func NewBuggy(p apps.Profile) *Store { return newStore(p, "pmemkv-bug", true) }

func newStore(p apps.Profile, name string, buggy bool) *Store {
	s := &Store{name: name, buggy: buggy}
	switch p {
	case apps.ProfileBench:
		s.nKeys, s.nit, s.putsPerIter, s.getsPerIter = 8192, 12, 96, 48
	default:
		s.nKeys, s.nit, s.putsPerIter, s.getsPerIter = 1024, 10, 32, 16
	}
	nput := s.nit * int64(s.putsPerIter)
	s.puts = make([]putOp, nput)
	s.byKey = make([][]int32, s.nKeys)
	rng := splitmix64(0x5157_4b56_0001)
	for seq := range s.puts {
		key := rng.intn(s.nKeys)
		s.puts[seq] = putOp{key: key, val: opValue(int64(seq))}
		s.byKey[key] = append(s.byKey[key], int32(seq))
	}
	s.getPut = make([]int32, s.nit*int64(s.getsPerIter))
	g := 0
	for it := int64(0); it < s.nit; it++ {
		// A get reads back the key of some put issued so far — overwritten
		// keys included, so regressions are observable.
		seen := int((it + 1) * int64(s.putsPerIter))
		for j := 0; j < s.getsPerIter; j++ {
			s.getPut[g] = int32(rng.intn(seen))
			g++
		}
	}
	return s
}

// Name implements apps.Kernel.
func (s *Store) Name() string { return s.name }

// Description implements apps.Kernel.
func (s *Store) Description() string {
	if s.buggy {
		return "Persistent KV store (WAL ordering bug: ack before record flush)"
	}
	return "Persistent KV store (WAL + commit mark, flush before ack)"
}

// RegionCount implements apps.Kernel: R0 ingest (puts), R1 lookup (gets).
func (s *Store) RegionCount() int { return 2 }

// NominalIters implements apps.Kernel.
func (s *Store) NominalIters() int64 { return s.nit }

// Convergent implements apps.Kernel.
func (s *Store) Convergent() bool { return false }

// IterObject implements apps.Kernel.
func (s *Store) IterObject() mem.Object { return s.it }

// Setup implements apps.Kernel.
func (s *Store) Setup(m *sim.Machine) {
	sp := m.Space()
	s.wal = sp.Alloc("wal", uint64(len(s.puts))*recBytes, true)
	s.head = sp.AllocI64("walhead", 2, true)
	s.mt = sp.AllocI64("memtable", s.nKeys, false)
	s.it = apps.AllocIter(m)
}

// Init implements apps.Kernel. The WAL itself is not written: its slots are
// self-validating (marker + checksum) and the image guarantees fresh
// allocations read as zero, which replay treats as the unsynced tail. The
// empty commit mark is made durable immediately — a store that crashes
// before its first put must recover to a valid empty log, not to an
// unreadable one.
func (s *Store) Init(m *sim.Machine) {
	s.acked, s.replayed, s.recoveryErr = 0, 0, nil
	mt := m.I64Stream(s.mt)
	for k := 0; k < s.nKeys; k++ {
		mt.Set(k, 0)
	}
	m.StoreI64(s.head.Addr, 0)
	m.StoreI64(s.head.Addr+8, headSum(0))
	m.Hierarchy().Flush(s.head.Addr, s.head.Size, cachesim.CLWB)
	m.I64(s.it).Set(0, 0)
}

// Run implements apps.Kernel: each iteration ingests a batch of puts (R0)
// and serves a batch of client reads (R1) that verify what they see.
func (s *Store) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	if s.recoveryErr != nil {
		// Recovery found the durable log unreadable; serving would return
		// arbitrary data. Fail loudly instead.
		return 0, apps.ErrInterrupted
	}
	if maxIter > s.nit {
		maxIter = s.nit
	}
	itv := m.I64(s.it)
	m.MainLoopBegin()
	defer m.MainLoopEnd()
	var executed int64
	for it := from; it < maxIter; it++ {
		m.BeginIteration(it)

		m.BeginRegion(0)
		for j := 0; j < s.putsPerIter; j++ {
			s.put(m, it*int64(s.putsPerIter)+int64(j))
		}
		m.EndRegion(0)

		m.BeginRegion(1)
		for j := 0; j < s.getsPerIter; j++ {
			if !s.get(m, it, int64(j)) {
				m.MainLoopEnd()
				return executed, apps.ErrInterrupted
			}
		}
		m.EndRegion(1)

		itv.Set(0, it+1)
		m.EndIteration(it)
		executed++
	}
	return executed, nil
}

// put appends one record, persists it (correct variant only), advances and
// persists the commit mark, acknowledges the write, then serves it from the
// memtable. Re-executing an already-logged put after a restart rewrites the
// identical bytes and never regresses the commit mark, so replayed history
// is idempotent.
func (s *Store) put(m *sim.Machine, seq int64) {
	op := s.puts[seq]
	base := s.wal.Addr + uint64(seq)*recBytes
	//eclint:allow persistorder — pmemkv-bug: the record flush below is deliberately skipped on the buggy path so the dynamic oracle has a real ordering bug to catch; eclint's static verdict and the campaign oracle's dynamic verdict on this line are cross-checked in CI
	m.StoreI64(base, seq+1)
	m.StoreI64(base+8, int64(op.key))
	m.StoreI64(base+16, op.val)
	m.StoreI64(base+24, recSum(seq, int64(op.key), op.val))
	if !s.buggy {
		// Persist the record before the commit mark can cover it — the
		// ordering discipline whose absence is the planted bug.
		m.FlushRange(base, recBytes, cachesim.CLWB)
	}
	if h := m.LoadI64(s.head.Addr); seq+1 > h {
		m.StoreI64(s.head.Addr, seq+1)
		m.StoreI64(s.head.Addr+8, headSum(seq+1))
	}
	m.FlushRange(s.head.Addr, s.head.Size, cachesim.CLWB)
	// The commit mark is durable: acknowledge. The ack is volatile Go state
	// (the client's view); no simulated access separates it from the flush,
	// so the only op a crash can catch between flush and ack is this one —
	// the single in-flight op the oracle's audit allows for.
	s.acked = seq + 1 //persist:ack
	m.StoreI64(s.mt.Addr+uint64(op.key)*8, op.val)
}

// get reads one key back and checks it against the deterministic client
// expectation: the latest put on that key within the synced-and-re-executed
// history. A mismatch is corrupted state the client can observe — the run is
// interrupted (S3), never silently continued.
func (s *Store) get(m *sim.Machine, it, j int64) bool {
	p := s.getPut[it*int64(s.getsPerIter)+j]
	key := s.puts[p].key
	// What must be visible: every put below (it+1)*putsPerIter has executed
	// in this life or an earlier one, and the recovery replay additionally
	// restored the synced log prefix [0, replayed).
	bound := (it + 1) * int64(s.putsPerIter)
	if s.replayed > bound {
		bound = s.replayed
	}
	want := s.latestBefore(key, bound)
	return m.LoadI64(s.mt.Addr+uint64(key)*8) == want
}

// latestBefore returns the value of the latest put on key with sequence
// number < bound, or 0 if the key had none.
func (s *Store) latestBefore(key int, bound int64) int64 {
	seqs := s.byKey[key]
	lo, hi := 0, len(seqs)
	for lo < hi {
		mid := (lo + hi) / 2
		if int64(seqs[mid]) < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return s.puts[seqs[lo-1]].val
}

// PostRestart implements the engine's Restarter hook: it runs after Init and
// candidate restore, before the main loop resumes.
func (s *Store) PostRestart(m *sim.Machine, from int64) {
	// The engine restores candidates by storing the dump through the cache,
	// which leaves the restored bytes volatile — but on real hardware
	// recovery maps the durable pool in place. Write the restored log back
	// so durable state equals the dump before recovery begins: without
	// this, a re-crash during recovery would lose data a previous life had
	// made durable, charging the store for an engine artefact.
	m.Hierarchy().Flush(s.wal.Addr, s.wal.Size, cachesim.CLWB)
	m.Hierarchy().Flush(s.head.Addr, s.head.Size, cachesim.CLWB)
	s.recoveryErr = s.replay(m)
}

// replay rebuilds the memtable from the durable log: validate the commit
// mark, then apply records in order up to it. An all-zero slot is a hole —
// the record never reached the media — and truncates the log exactly like an
// append-only store truncates an unsynced tail; silent if the ordering
// discipline held, a lost acknowledged write (the oracle's business) if it
// did not. A non-zero record that fails validation, or an unreadable block,
// is media damage the store detects and reports.
func (s *Store) replay(m *sim.Machine) (err error) {
	defer func() {
		if r := recover(); r != nil {
			me, ok := r.(*mem.MediaError)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("pmemkv: replay hit detected-uncorrectable media: %w", me)
		}
	}()
	s.replayed = 0
	h := m.LoadI64(s.head.Addr)
	hs := m.LoadI64(s.head.Addr + 8)
	if h < 0 || h > int64(len(s.puts)) || hs != headSum(h) {
		return fmt.Errorf("pmemkv: commit mark corrupt (head %d, checksum %#x)", h, uint64(hs))
	}
	for seq := int64(0); seq < h; seq++ {
		base := s.wal.Addr + uint64(seq)*recBytes
		marker := m.LoadI64(base)
		key := m.LoadI64(base + 8)
		val := m.LoadI64(base + 16)
		ck := m.LoadI64(base + 24)
		if marker == 0 && key == 0 && val == 0 && ck == 0 {
			return nil // hole: truncate at the unsynced tail
		}
		if marker != seq+1 || key < 0 || key >= int64(s.nKeys) || ck != recSum(seq, key, val) {
			return fmt.Errorf("pmemkv: WAL record %d corrupt below commit mark %d", seq, h)
		}
		m.StoreI64(s.mt.Addr+uint64(key)*8, val)
		s.replayed = seq + 1
	}
	return nil
}

// Result implements apps.Kernel: an order-independent fold of the memtable
// plus the commit mark. The fold keeps 52 bits so the float64 carries it
// exactly.
func (s *Store) Result(m *sim.Machine) []float64 {
	mt := m.I64Stream(s.mt)
	acc := uint64(0x9e3779b97f4a7c15)
	for k := 0; k < s.nKeys; k++ {
		acc = mix(acc ^ mix(uint64(k)+1) ^ uint64(mt.At(k)))
	}
	return []float64{float64(acc >> 12), float64(m.LoadI64(s.head.Addr))}
}

// Verify implements apps.Kernel: exact match — a KV store has no tolerance
// for approximation.
func (s *Store) Verify(m *sim.Machine, golden []float64) bool {
	got := s.Result(m)
	return len(golden) == 2 && got[0] == golden[0] && got[1] == golden[1]
}

// opValue is the value put seq writes: unique per sequence number (a
// bijective mix) and never zero, so the audit can tell lost, stale and
// foreign values apart.
func opValue(seq int64) int64 { return int64(mix(uint64(seq)+1) | 1) }

// recSum is the per-record checksum.
func recSum(seq, key, val int64) int64 {
	return int64(mix(mix(uint64(seq+1)) + 3*mix(uint64(key)) + 5*mix(uint64(val))))
}

// headSum is the commit mark's checksum.
func headSum(h int64) int64 { return int64(mix(uint64(h) ^ 0x4845414453554d21)) }

// mix is the splitmix64 finalizer: a bijection on uint64 with avalanche.
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// splitmix64 is the deterministic PRNG generating the op stream (same idiom
// as the apps kernels; only reproducibility matters).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	return mix(uint64(*s))
}

func (s *splitmix64) intn(n int) int { return int(s.next() % uint64(n)) }
