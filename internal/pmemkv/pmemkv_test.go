package pmemkv_test

import (
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/pmemkv"
	"easycrash/internal/sim"
)

func newMachine(t testing.TB) *sim.Machine {
	t.Helper()
	return sim.NewMachine(64<<20, cachesim.TestConfig())
}

func TestRegistration(t *testing.T) {
	for _, want := range []string{"pmemkv", "pmemkv-bug"} {
		found := false
		for _, n := range apps.Names() {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("%q not in apps.Names()", want)
		}
		f, err := apps.New(want, apps.ProfileTest)
		if err != nil {
			t.Fatalf("New(%q): %v", want, err)
		}
		k := f()
		if k.Name() != want {
			t.Errorf("kernel %q reports name %q", want, k.Name())
		}
		if _, ok := k.(apps.ConsistencyKernel); !ok {
			t.Errorf("%q does not implement apps.ConsistencyKernel", want)
		}
	}
}

func TestGoldenRunsVerify(t *testing.T) {
	for _, name := range []string{"pmemkv", "pmemkv-bug"} {
		f, _ := apps.New(name, apps.ProfileTest)
		k := f()
		m := newMachine(t)
		k.Setup(m)
		k.Init(m)
		executed, err := k.Run(m, 0, k.NominalIters())
		if err != nil {
			t.Fatalf("%s: golden run failed: %v", name, err)
		}
		if executed != k.NominalIters() {
			t.Fatalf("%s: executed %d of %d", name, executed, k.NominalIters())
		}
		if !k.Verify(m, k.Result(m)) {
			t.Fatalf("%s: golden run does not verify against itself", name)
		}
		if len(m.Space().Candidates()) == 0 {
			t.Fatalf("%s: no candidate objects", name)
		}
		if _, ok := m.Space().Object(apps.IterObjectName); !ok {
			t.Fatalf("%s: no iterator bookmark", name)
		}
		ra := m.RegionAccesses()
		for r := 0; r < k.RegionCount(); r++ {
			if ra[r] == 0 {
				t.Errorf("%s: region %d never executed", name, r)
			}
		}
	}
}

// runToCrash runs the store with a crash armed after n main-loop accesses and
// returns the recovered crash point.
func runToCrash(t *testing.T, s *pmemkv.Store, m *sim.Machine, n uint64) *sim.Crash {
	t.Helper()
	m.SetCrashAfter(n)
	var crash *sim.Crash
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			c, ok := r.(*sim.Crash)
			if !ok {
				panic(r)
			}
			crash = c
		}()
		if _, err := s.Run(m, 0, s.NominalIters()); err != nil {
			t.Errorf("run failed before crash: %v", err)
		}
	}()
	if crash == nil {
		t.Fatal("armed crash never fired")
	}
	return crash
}

// recoverStore mimics the engine's restart path: fresh machine, Setup + Init,
// candidate objects restored from the post-crash image, bookmark set, then
// the store's own PostRestart replay.
func recoverStore(t *testing.T, mk func() *pmemkv.Store, img []byte, from int64) (*pmemkv.Store, *sim.Machine) {
	t.Helper()
	s := mk()
	m := newMachine(t)
	s.Setup(m)
	s.Init(m)
	for _, o := range m.Space().Candidates() {
		m.RestoreObject(o, img[o.Addr:o.Addr+o.Size])
	}
	m.I64(s.IterObject()).Set(0, from)
	s.PostRestart(m, from)
	return s, m
}

func crashDump(m *sim.Machine) []byte {
	m.CrashNow()
	return append([]byte(nil), m.Image().Bytes(0, m.Space().Extent())...)
}

func TestCorrectStoreSurvivesCrash(t *testing.T) {
	g := pmemkv.New(apps.ProfileTest)
	gm := newMachine(t)
	g.Setup(gm)
	g.Init(gm)
	if _, err := g.Run(gm, 0, g.NominalIters()); err != nil {
		t.Fatal(err)
	}
	ref := g.Result(gm)

	for _, crashAt := range []uint64{64, 777, 1500, 2400} {
		s := pmemkv.New(apps.ProfileTest)
		m := newMachine(t)
		s.Setup(m)
		s.Init(m)
		crash := runToCrash(t, s, m, crashAt)
		j := s.Journal()
		img := crashDump(m)

		r, rm := recoverStore(t, func() *pmemkv.Store { return pmemkv.New(apps.ProfileTest) }, img, crash.Iter)
		a := r.Audit(rm, j)
		if a.Detected != nil {
			t.Fatalf("crashAt %d: recovery failed on clean media: %v", crashAt, a.Detected)
		}
		if len(a.Violations) != 0 {
			t.Fatalf("crashAt %d: correct store violated consistency: %v", crashAt, a.Violations)
		}
		if _, err := r.Run(rm, crash.Iter, r.NominalIters()); err != nil {
			t.Fatalf("crashAt %d: recovered run failed: %v", crashAt, err)
		}
		if !r.Verify(rm, ref) {
			t.Fatalf("crashAt %d: recovered run does not verify against golden", crashAt)
		}
	}
}

func TestOracleCatchesBuggyStore(t *testing.T) {
	caught := false
	for _, crashAt := range []uint64{777, 1500, 2400} {
		s := pmemkv.NewBuggy(apps.ProfileTest)
		m := newMachine(t)
		s.Setup(m)
		s.Init(m)
		crash := runToCrash(t, s, m, crashAt)
		j := s.Journal()
		img := crashDump(m)

		r, rm := recoverStore(t, func() *pmemkv.Store { return pmemkv.NewBuggy(apps.ProfileTest) }, img, crash.Iter)
		a := r.Audit(rm, j)
		if a.Detected != nil {
			t.Fatalf("crashAt %d: buggy store must lose data silently, got detected error: %v", crashAt, a.Detected)
		}
		if len(a.Violations) > 0 {
			caught = true
		}
	}
	if !caught {
		t.Fatal("oracle never caught the missing-flush bug at any crash point")
	}
}

func TestJournalMergeAcrossLives(t *testing.T) {
	// Two crash points of the same workload: the later life acknowledges a
	// superset, and the merged journal must audit clean against a recovery
	// from the later crash.
	s1 := pmemkv.New(apps.ProfileTest)
	m1 := newMachine(t)
	s1.Setup(m1)
	s1.Init(m1)
	runToCrash(t, s1, m1, 300)
	early := s1.Journal()

	s2 := pmemkv.New(apps.ProfileTest)
	m2 := newMachine(t)
	s2.Setup(m2)
	s2.Init(m2)
	crash := runToCrash(t, s2, m2, 1800)
	late := s2.Journal()
	img := crashDump(m2)

	merged := early.Merge(late)
	if merged != late.Merge(early) {
		t.Fatal("journal merge is not symmetric")
	}
	r, rm := recoverStore(t, func() *pmemkv.Store { return pmemkv.New(apps.ProfileTest) }, img, crash.Iter)
	a := r.Audit(rm, merged)
	if a.Detected != nil || len(a.Violations) != 0 {
		t.Fatalf("merged journal audit failed: detected=%v violations=%v", a.Detected, a.Violations)
	}
}
