// The store's side of the campaign engine's crash-consistency oracle
// (apps.ConsistencyKernel): the ack journal the engine carries across a
// power loss, and the post-recovery audit that checks the recovered store
// against it.
package pmemkv

import (
	"fmt"

	"easycrash/internal/apps"
	"easycrash/internal/sim"
)

// maxListedViolations bounds how many per-key violations one audit spells
// out; the remainder is summarised. A campaign report carries every trial's
// violations, and a badly broken store can lose dozens of keys per crash.
const maxListedViolations = 8

// journal is the store's ack-journal snapshot: the workload is a fixed
// deterministic op stream, so the client's durable view is fully described
// by how many puts were acknowledged. Snapshots are immutable values.
type journal struct {
	acked int64
}

// Merge implements apps.AckJournal: acks are a prefix of the op stream in
// every life, so the union of two snapshots is the larger prefix.
func (j journal) Merge(other apps.AckJournal) apps.AckJournal {
	if o, ok := other.(journal); ok && o.acked > j.acked {
		return o
	}
	return j
}

// Journal implements apps.ConsistencyKernel.
func (s *Store) Journal() apps.AckJournal { return journal{acked: s.acked} }

// Audit implements apps.ConsistencyKernel: after recovery, every
// acknowledged put must be visible at its key unless a later acknowledged
// put overwrote it; no key may regress to a stale value; no value may
// appear that was never acknowledged — except the single op that was in
// flight (attempted, not yet acked) when the power failed.
func (s *Store) Audit(m *sim.Machine, aj apps.AckJournal) apps.Audit {
	if s.recoveryErr != nil {
		return apps.Audit{Detected: s.recoveryErr}
	}
	j, ok := aj.(journal)
	if !ok {
		return apps.Audit{Detected: fmt.Errorf("pmemkv: foreign journal type %T", aj)}
	}
	exp := make([]int64, s.nKeys)
	for seq := int64(0); seq < j.acked; seq++ {
		exp[s.puts[seq].key] = s.puts[seq].val
	}
	inKey, inVal := -1, int64(0)
	if j.acked < int64(len(s.puts)) {
		inKey, inVal = s.puts[j.acked].key, s.puts[j.acked].val
	}
	var violations []string
	extra := 0
	for k := 0; k < s.nKeys; k++ {
		vis := m.LoadI64(s.mt.Addr + uint64(k)*8)
		if vis == exp[k] {
			continue
		}
		if k == inKey && vis == inVal {
			continue // the in-flight op may legitimately have become durable
		}
		if len(violations) < maxListedViolations {
			violations = append(violations, s.classify(k, vis, exp[k], j.acked))
		} else {
			extra++
		}
	}
	if extra > 0 {
		violations = append(violations, fmt.Sprintf("... and %d more inconsistent keys", extra))
	}
	return apps.Audit{Violations: violations}
}

// classify names one per-key violation, in terms of the put stream so a
// repro run can point at the exact operations involved.
func (s *Store) classify(k int, vis, want, acked int64) string {
	if vis == 0 {
		return fmt.Sprintf("key %d: acked put %d (value %#x) lost, nothing visible",
			k, s.lastPutBefore(k, acked), uint64(want))
	}
	for _, p := range s.byKey[k] {
		if s.puts[p].val != vis {
			continue
		}
		if int64(p) < acked {
			return fmt.Sprintf("key %d: regressed to stale put %d (value %#x), expected put %d (value %#x)",
				k, p, uint64(vis), s.lastPutBefore(k, acked), uint64(want))
		}
		return fmt.Sprintf("key %d: unacked put %d (value %#x) visible", k, p, uint64(vis))
	}
	return fmt.Sprintf("key %d: torn value %#x visible, expected %#x", k, uint64(vis), uint64(want))
}

// lastPutBefore returns the sequence number of the latest put on key below
// bound, or -1 if none exists.
func (s *Store) lastPutBefore(key int, bound int64) int64 {
	seqs := s.byKey[key]
	lo, hi := 0, len(seqs)
	for lo < hi {
		mid := (lo + hi) / 2
		if int64(seqs[mid]) < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return -1
	}
	return int64(seqs[lo-1])
}
