package pmemkv

import (
	"strings"
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/sim"
)

func testMachine(t testing.TB) *sim.Machine {
	t.Helper()
	return sim.NewMachine(64<<20, cachesim.TestConfig())
}

// runIters runs the first n iterations and fails the test on any error.
func runIters(t *testing.T, s *Store, m *sim.Machine, n int64) {
	t.Helper()
	if _, err := s.Run(m, 0, n); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestInitLeavesDurableEmptyCommitMark(t *testing.T) {
	// A crash after Init but before the first put must recover to a valid
	// empty log — Init flushes the [0, headSum(0)] commit mark for exactly
	// this window.
	s := New(apps.ProfileTest)
	m := testMachine(t)
	s.Setup(m)
	s.Init(m)
	m.CrashNow()
	s.PostRestart(m, 0)
	if s.recoveryErr != nil {
		t.Fatalf("recovery after pre-put crash failed: %v", s.recoveryErr)
	}
	if s.replayed != 0 {
		t.Fatalf("replayed = %d, want 0", s.replayed)
	}
}

func TestDurableHeadCoversEveryAck(t *testing.T) {
	// The correct store's invariant: at any crash, the on-media commit mark
	// is at least the ack count (it may be one ahead for the in-flight put).
	for _, crashAt := range []uint64{64, 500, 1111, 2000} {
		s := New(apps.ProfileTest)
		m := testMachine(t)
		s.Setup(m)
		s.Init(m)
		m.SetCrashAfter(crashAt)
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(*sim.Crash); !ok {
						panic(r)
					}
				}
			}()
			_, _ = s.Run(m, 0, s.nit)
		}()
		m.CrashNow()
		//eclint:allow directmem — reading raw media to check the durable commit mark, not simulating an access
		h := m.Image().Int64At(s.head.Addr)
		if h < s.acked || h > s.acked+1 {
			t.Fatalf("crashAt %d: durable head %d outside [acked, acked+1] = [%d, %d]",
				crashAt, h, s.acked, s.acked+1)
		}
	}
}

func TestReplayDetectsPoisonedWAL(t *testing.T) {
	// A detected-uncorrectable block under the log must surface as a loud
	// recovery failure — refusing to serve — never as silently wrong values.
	s := New(apps.ProfileTest)
	m := testMachine(t)
	s.Setup(m)
	s.Init(m)
	runIters(t, s, m, 3)
	m.CrashNow()
	m.Image().PoisonBlock(s.wal.Addr)
	s.PostRestart(m, 3)
	if s.recoveryErr == nil {
		t.Fatal("replay over a poisoned WAL block reported no error")
	}
	if !strings.Contains(s.recoveryErr.Error(), "media") {
		t.Fatalf("recovery error does not name the media failure: %v", s.recoveryErr)
	}
	if a := s.Audit(m, s.Journal()); a.Detected == nil {
		t.Fatal("audit did not propagate the detected recovery failure")
	}
	if _, err := s.Run(m, 3, s.nit); err != apps.ErrInterrupted {
		t.Fatalf("store served requests after failed recovery: err = %v", err)
	}
}

func TestReplayDetectsCorruptRecord(t *testing.T) {
	// A non-zero record below the commit mark that fails its checksum is
	// media damage (bit flips, torn write), not a truncation point.
	s := New(apps.ProfileTest)
	m := testMachine(t)
	s.Setup(m)
	s.Init(m)
	runIters(t, s, m, 3)
	m.CrashNow()
	base := s.wal.Addr + 5*recBytes
	//eclint:allow directmem — flipping a checksum bit on raw media to model in-place corruption
	m.Image().SetInt64At(base+24, m.Image().Int64At(base+24)^1)
	s.PostRestart(m, 3)
	if s.recoveryErr == nil || !strings.Contains(s.recoveryErr.Error(), "corrupt") {
		t.Fatalf("corrupt record not detected: err = %v", s.recoveryErr)
	}
}

func TestReplayDetectsCorruptCommitMark(t *testing.T) {
	s := New(apps.ProfileTest)
	m := testMachine(t)
	s.Setup(m)
	s.Init(m)
	runIters(t, s, m, 3)
	m.CrashNow()
	//eclint:allow directmem — damaging the commit-mark checksum on raw media
	m.Image().SetInt64At(s.head.Addr+8, m.Image().Int64At(s.head.Addr+8)^1)
	s.PostRestart(m, 3)
	if s.recoveryErr == nil || !strings.Contains(s.recoveryErr.Error(), "commit mark") {
		t.Fatalf("corrupt commit mark not detected: err = %v", s.recoveryErr)
	}
}

func TestReplayTruncatesAtHole(t *testing.T) {
	// An all-zero slot below the commit mark is the missing-flush signature:
	// replay truncates there silently (the oracle's business, not replay's).
	s := New(apps.ProfileTest)
	m := testMachine(t)
	s.Setup(m)
	s.Init(m)
	runIters(t, s, m, 3)
	m.CrashNow()
	base := s.wal.Addr + 7*recBytes
	for off := uint64(0); off < recBytes; off += 8 {
		//eclint:allow directmem — zeroing a record on raw media to model a write that never reached it
		m.Image().SetInt64At(base+off, 0)
	}
	s.PostRestart(m, 3)
	if s.recoveryErr != nil {
		t.Fatalf("hole should truncate silently, got: %v", s.recoveryErr)
	}
	if s.replayed != 7 {
		t.Fatalf("replayed = %d, want truncation at 7", s.replayed)
	}
	if a := s.Audit(m, journal{acked: s.acked}); len(a.Violations) == 0 {
		t.Fatal("audit missed the acknowledged puts lost to the hole")
	}
}

func TestJournalMergeFoldsForeignType(t *testing.T) {
	j := journal{acked: 4}
	if got := j.Merge(fakeJournal{}); got != j {
		t.Fatalf("merge with foreign journal = %#v, want receiver", got)
	}
	if got := j.Merge(journal{acked: 9}); got != (journal{acked: 9}) {
		t.Fatalf("merge did not take the larger prefix: %#v", got)
	}
}

type fakeJournal struct{}

func (fakeJournal) Merge(o apps.AckJournal) apps.AckJournal { return o }

func TestAuditRejectsForeignJournal(t *testing.T) {
	s := New(apps.ProfileTest)
	m := testMachine(t)
	s.Setup(m)
	s.Init(m)
	if a := s.Audit(m, fakeJournal{}); a.Detected == nil {
		t.Fatal("audit accepted a journal of the wrong type")
	}
}
