package cachesim

import "encoding/binary"

// Stream is a memoizing access cursor for stride-regular 8-byte element
// traffic. It caches the innermost residency of the last block it touched —
// the tag array and way slot the block occupied in the issuing core's L1 (or
// the LLC when there are no private levels) — so consecutive accesses to the
// same 64 B block skip the hierarchy walk: the fast path is a tick, a
// Hits[0] count, an LRU touch and the data copy, exactly the effects the
// scalar path's innermost-level hit would have had.
//
// The memo is self-validating, like the per-set way-prediction hint: the
// fast path re-checks that the memoized way still holds the block's tag with
// the valid bit set, and re-reads the block's arena slot through the flat
// store (a single array read). A valid tag in the issuing core's innermost
// level proves residency, and inclusion guarantees the arena slot is
// current, so no global invalidation protocol is needed — evictions,
// refills, resets and snapshot resumes all naturally fail the tag check (or
// redirect the arena read) and fall back to the full scalar path. A Stream
// is therefore access-for-access equivalent to per-element Load/Store calls,
// which is what lets digest-pinned kernels migrate onto it.
//
// Streams are single-goroutine cursors over one hierarchy; any number may be
// live at once (kernels keep one per stencil arm, so each stream sees
// block-local traffic even when the loop interleaves several arrays).
type Stream struct {
	h     *Hierarchy
	core  int
	blk   uint64
	inner *cache
	slot  int
}

// NewStream returns an access cursor over the hierarchy. addr arguments to
// Load8/Store8 must be 8-byte aligned (callers with possibly unaligned
// objects must keep the scalar path).
func (h *Hierarchy) NewStream() Stream {
	return Stream{h: h}
}

// hit reports whether the memoized residency is current for (core, blk).
func (s *Stream) hit(core int, blk uint64) bool {
	return s.inner != nil && s.blk == blk && s.core == core &&
		s.inner.tags[s.slot] == blk && s.inner.state[s.slot]&stValid != 0
}

// Load8 reads the 8-byte element at addr on the given core, equivalent to
// an 8-byte Load. The value is returned in little-endian byte order,
// matching the typed views layered above the hierarchy.
func (s *Stream) Load8(core int, addr uint64) uint64 {
	h := s.h
	h.stats.Loads++
	blk := addr >> blockShift
	if s.hit(core, blk) {
		h.tick++
		s.inner.touch(s.slot, h.tick)
		h.stats.Hits[0]++
		return binary.LittleEndian.Uint64(h.blockData(blk)[addr&(BlockSize-1):])
	}
	return s.loadSlow(core, blk, addr)
}

func (s *Stream) loadSlow(core int, blk, addr uint64) uint64 {
	h := s.h
	h.tick++
	data, inner, slot := h.ensureResident(core, blk)
	s.memoize(core, blk, inner, slot)
	return binary.LittleEndian.Uint64(data[addr&(BlockSize-1):])
}

// Store8 writes the 8-byte element at addr on the given core, equivalent to
// an 8-byte Store.
func (s *Stream) Store8(core int, addr uint64, v uint64) {
	h := s.h
	h.stats.Stores++
	blk := addr >> blockShift
	if s.hit(core, blk) {
		h.tick++
		s.inner.touch(s.slot, h.tick)
		h.stats.Hits[0]++
		binary.LittleEndian.PutUint64(h.blockData(blk)[addr&(BlockSize-1):], v)
		if st := s.inner.state[s.slot]; st&stDirty == 0 {
			s.inner.setState(s.slot, st|stDirty)
		}
		if h.cfg.Cores > 1 {
			h.invalidateOthers(core, blk)
		}
		return
	}
	s.storeSlow(core, blk, addr, v)
}

func (s *Stream) storeSlow(core int, blk, addr uint64, v uint64) {
	h := s.h
	h.tick++
	data, inner, slot := h.ensureResident(core, blk)
	binary.LittleEndian.PutUint64(data[addr&(BlockSize-1):], v)
	if st := inner.state[slot]; st&stDirty == 0 {
		inner.setState(slot, st|stDirty)
	}
	if h.cfg.Cores > 1 {
		h.invalidateOthers(core, blk)
	}
	s.memoize(core, blk, inner, slot)
}

// memoize captures the innermost residency the access just resolved.
func (s *Stream) memoize(core int, blk uint64, inner *cache, slot int) {
	s.core = core
	s.blk = blk
	s.inner = inner
	s.slot = slot
}
