// Package cachesim implements the volatile cache substrate of the NVCT crash
// tester: a multi-level, inclusive, write-back/write-allocate, LRU cache
// hierarchy that carries data values, sitting in front of a simulated NVM
// image. It reproduces what the paper's PIN-based simulator models:
//
//   - which bytes are dirty in volatile caches at an arbitrary crash point,
//   - the write traffic that reaches NVM (evictions and explicit flushes),
//   - the semantics of the x86 flush instructions (CLFLUSH, CLFLUSHOPT, CLWB):
//     flushing a clean or non-resident block writes nothing back.
//
// The hierarchy may be configured with several cores, each with private
// levels and a shared last-level cache, kept coherent with an
// invalidation-based (MSI-style) protocol.
package cachesim

import (
	"fmt"
	"slices"
)

// BlockSize is the cache block size in bytes (64, as simulated in the paper).
const BlockSize = 64

const blockShift = 6

// Backing is the memory the hierarchy sits in front of (the NVM image).
// Every eviction write-back and flush reaches the media through WriteBlock,
// which makes it the torn-write boundary of the media-fault model: the block
// passed to the most recent WriteBlock is the one in flight — and torn at the
// 8-byte atomic-write granularity — when a crash fires mid-write-back.
type Backing interface {
	// ReadBlock copies the block containing addr into dst (BlockSize bytes).
	ReadBlock(addr uint64, dst []byte)
	// WriteBlock writes one block and accounts one NVM media write.
	WriteBlock(addr uint64, src []byte)
}

// FlushOp selects the flush-instruction semantics.
type FlushOp int

const (
	// CLFLUSH writes back the block if dirty and invalidates it.
	CLFLUSH FlushOp = iota
	// CLFLUSHOPT is CLFLUSH with weaker ordering; for the simulator the
	// state effect is the same (write back if dirty, then invalidate).
	CLFLUSHOPT
	// CLWB writes back the block if dirty but leaves it resident and clean.
	CLWB
)

// String returns the instruction mnemonic.
func (op FlushOp) String() string {
	switch op {
	case CLFLUSH:
		return "CLFLUSH"
	case CLFLUSHOPT:
		return "CLFLUSHOPT"
	case CLWB:
		return "CLWB"
	}
	return fmt.Sprintf("FlushOp(%d)", int(op))
}

// Replacement selects a cache replacement policy. The paper simulates LRU;
// the alternatives support ablation studies of how much the recomputability
// results owe to replacement order (which determines when dirty blocks
// reach NVM naturally).
type Replacement int

const (
	// LRU evicts the least-recently-used way (the paper's policy).
	LRU Replacement = iota
	// FIFO evicts the oldest-inserted way regardless of reuse.
	FIFO
	// Random evicts a deterministically pseudo-random way.
	Random
)

// String returns the policy name.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	}
	return fmt.Sprintf("Replacement(%d)", int(r))
}

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name string
	Size int // bytes
	Ways int // associativity
}

// Sets returns the number of sets in the level.
func (lc LevelConfig) Sets() int { return lc.Size / (BlockSize * lc.Ways) }

// Config describes a hierarchy. Levels are ordered closest-to-CPU first; the
// last level is shared among cores, all earlier levels are private per core.
type Config struct {
	Name   string
	Cores  int
	Levels []LevelConfig
	// Replace selects the replacement policy (default LRU).
	Replace Replacement
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("cachesim: config %q: need at least 1 core", c.Name)
	}
	if len(c.Levels) < 1 {
		return fmt.Errorf("cachesim: config %q: need at least 1 level", c.Name)
	}
	for i, l := range c.Levels {
		if l.Ways < 1 || l.Size <= 0 || l.Size%(BlockSize*l.Ways) != 0 {
			return fmt.Errorf("cachesim: config %q level %d (%s): size %d not a multiple of %d ways x %d bytes",
				c.Name, i, l.Name, l.Size, l.Ways, BlockSize)
		}
		if i > 0 && l.Size < c.Levels[i-1].Size {
			return fmt.Errorf("cachesim: config %q: level %d smaller than level %d (inclusion impossible)", c.Name, i, i-1)
		}
	}
	return nil
}

// TestConfig is a small geometry for fast crash-test campaigns. Kernel
// problem sizes in this repository are scaled so that footprints exceed this
// LLC by the same ratio the paper's Class C inputs exceed a 19.25 MiB LLC.
func TestConfig() Config {
	return Config{
		Name:  "test",
		Cores: 1,
		Levels: []LevelConfig{
			{Name: "L1", Size: 2 << 10, Ways: 4},
			{Name: "L2", Size: 8 << 10, Ways: 8},
			{Name: "L3", Size: 32 << 10, Ways: 8},
		},
	}
}

// PaperConfig approximates the Xeon Gold 6126 geometry simulated in the paper
// (L1 32 KiB/8-way, L2 1 MiB/12-way, LLC 19.25 MiB/11-way). The L2 size is
// rounded down to the nearest multiple of 12 ways x 64 B (1365 sets).
func PaperConfig() Config {
	return Config{
		Name:  "xeon-gold-6126",
		Cores: 1,
		Levels: []LevelConfig{
			{Name: "L1", Size: 32 << 10, Ways: 8},
			{Name: "L2", Size: 1365 * 12 * BlockSize, Ways: 12},
			{Name: "L3", Size: 28672 * 11 * BlockSize, Ways: 11}, // 19.25 MiB
		},
	}
}

// Stats aggregates hierarchy event counts.
type Stats struct {
	Loads  uint64
	Stores uint64
	// Hits and Misses are per level, index 0 = closest to CPU. A private-
	// level entry aggregates all cores.
	Hits   []uint64
	Misses []uint64
	// Fills counts blocks read from backing memory (NVM reads).
	Fills uint64
	// EvictionWritebacks counts dirty blocks written to backing because of
	// LLC evictions (natural cache pressure).
	EvictionWritebacks uint64
	// FlushOps counts block-granularity flush instructions issued.
	FlushOps uint64
	// DirtyFlushes counts flush ops that found a dirty resident block and
	// therefore wrote it back to backing.
	DirtyFlushes uint64
	// CleanFlushes counts flush ops on clean or non-resident blocks; these
	// cost little and write nothing (the effect EasyCrash exploits).
	CleanFlushes uint64
	// DrainWritebacks counts dirty blocks written back by WriteBackAll.
	DrainWritebacks uint64
	// Invalidations counts coherence invalidations of private copies.
	Invalidations uint64
}

// Writebacks returns all dirty-block write-backs that reached backing memory.
func (s *Stats) Writebacks() uint64 {
	return s.EvictionWritebacks + s.DirtyFlushes + s.DrainWritebacks
}

// Accesses returns total demand accesses.
func (s *Stats) Accesses() uint64 { return s.Loads + s.Stores }

const (
	stValid uint8 = 1 << 0
	stDirty uint8 = 1 << 1
)

// cache is one tag array (data lives in the shared hierarchy block store).
type cache struct {
	ways    int
	nsets   uint64
	tags    []uint64
	state   []uint8
	lru     []uint64 // LRU: last-touch tick; FIFO: insertion tick
	mru     []int32  // per-set way-prediction hint: way of the last hit/insert
	replace Replacement
	rng     uint64 // xorshift state for Random replacement

	// Incremental line counters, maintained by setState. countValid reads
	// them instead of scanning every way of every set; recount rebuilds
	// them after a bulk state restore (snapshot resume).
	valid int
	dirty int
}

// rngSeed seeds each tag array's xorshift state for Random replacement; a
// fixed seed keeps the policy deterministic and lets Reset restore it.
const rngSeed = 0x2545F4914F6CDD1D

func newCache(lc LevelConfig, replace Replacement) *cache {
	n := lc.Sets()
	return &cache{
		ways:    lc.Ways,
		nsets:   uint64(n),
		tags:    make([]uint64, n*lc.Ways),
		state:   make([]uint8, n*lc.Ways),
		lru:     make([]uint64, n*lc.Ways),
		mru:     make([]int32, n),
		replace: replace,
		rng:     rngSeed,
	}
}

// lookup returns the way slot index for blk and whether it is resident.
//
// The per-set MRU hint is checked before the set scan: stride-regular
// streams hit the same way repeatedly, so the common case is a single tag
// compare. The hint is self-validating (tag + valid bit), so it never needs
// resetting or snapshot capture — a stale hint only costs the scan it would
// have cost anyway.
func (c *cache) lookup(blk uint64) (int, bool) {
	set := int(blk % c.nsets)
	base := set * c.ways
	if i := base + int(c.mru[set]); c.tags[i] == blk && c.state[i]&stValid != 0 {
		return i, true
	}
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.state[i]&stValid != 0 && c.tags[i] == blk {
			c.mru[set] = int32(w)
			return i, true
		}
	}
	return -1, false
}

// setState writes a way's state flags, maintaining the incremental
// valid/dirty line counters. Every state mutation must go through here
// (or invalidateAll/recount, which reset the counters wholesale).
func (c *cache) setState(i int, st uint8) {
	old := c.state[i]
	c.state[i] = st
	c.valid += int(st&stValid) - int(old&stValid)
	c.dirty += int((st&stDirty)>>1) - int((old&stDirty)>>1)
}

// recount rebuilds the incremental counters from a full scan, after the
// state array was overwritten in bulk (snapshot resume).
func (c *cache) recount() {
	c.valid, c.dirty = 0, 0
	for _, s := range c.state {
		if s&stValid != 0 {
			c.valid++
			if s&stDirty != 0 {
				c.dirty++
			}
		}
	}
}

// victimSlot returns the slot to fill for blk: an invalid way if one
// exists, otherwise the way the replacement policy selects.
func (c *cache) victimSlot(blk uint64) int {
	base := int(blk%c.nsets) * c.ways
	best, bestTick := base, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.state[i]&stValid == 0 {
			return i
		}
		if c.lru[i] < bestTick {
			best, bestTick = i, c.lru[i]
		}
	}
	if c.replace == Random {
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return base + int(c.rng%uint64(c.ways))
	}
	// LRU and FIFO both evict the smallest tick; they differ in whether
	// hits refresh it (see touch).
	return best
}

// touch refreshes a way's recency on a hit (LRU only; FIFO and Random keep
// insertion order).
func (c *cache) touch(slot int, tick uint64) {
	if c.replace == LRU {
		c.lru[slot] = tick
	}
}

func (c *cache) invalidateAll() {
	for i := range c.state {
		c.state[i] = 0
	}
	c.valid, c.dirty = 0, 0
}

// countValid returns the incremental line counters (formerly a scan over
// every way of every set — hot in stats/postmortem queries).
func (c *cache) countValid() (valid, dirty int) {
	return c.valid, c.dirty
}

// Hierarchy is a coherent, inclusive cache hierarchy carrying data values.
//
// Block values live in a flat, direct-indexed store: one contiguous arena
// with as many slots as the LLC has lines (residency is LLC-bounded by
// inclusion), plus a block-number-indexed slot table sized from the backing
// extent. The steady-state access path therefore performs no allocation —
// a fill pops a free arena slot, an eviction pushes it back — and residency
// is a single array read instead of a map lookup.
type Hierarchy struct {
	cfg     Config
	nlev    int
	npriv   int        // nlev-1
	priv    [][]*cache // [core][level 0..npriv-1]
	llc     *cache
	backing Backing

	// Flat block store (replaces the historical map[uint64]*block):
	// slots[blk] is the arena slot of blk's value, or -1 when not resident.
	// The arena has one slot per LLC line and a block's arena slot IS its
	// LLC way slot (inclusion makes residency and LLC validity the same
	// set), so slots[blk] doubles as an O(1) LLC lookup: attach/detach are
	// driven by LLC insert/evict and no free-slot bookkeeping exists.
	slots    []int32
	arena    []byte
	llcLines int
	scratch  []uint64 // reused by WriteBackAll / ResidentBlocks

	// poisoned reports detected-uncorrectable backing blocks (resolved from
	// the backing at construction; nil when the backing cannot poison).
	// The postmortem helpers use it to treat lost media bytes as
	// inconsistent instead of tripping the backing's media-error panic.
	poisoned func(addr uint64) bool

	tick  uint64
	stats Stats
	tmp   [BlockSize]byte
}

// New creates a hierarchy over backing memory. It panics on invalid
// configuration (a programming error).
//
// When the backing exposes its capacity (a Size() uint64 method, as
// mem.Image does), the block-slot table is sized once up front; otherwise it
// grows on demand. A backing exposing Poisoned(addr uint64) bool enables the
// poison-aware postmortem paths of ArchValue and DirtyBytesIn.
func New(cfg Config, backing Backing) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{
		cfg:     cfg,
		nlev:    len(cfg.Levels),
		npriv:   len(cfg.Levels) - 1,
		backing: backing,
	}
	h.priv = make([][]*cache, cfg.Cores)
	for c := range h.priv {
		h.priv[c] = make([]*cache, h.npriv)
		for l := 0; l < h.npriv; l++ {
			h.priv[c][l] = newCache(cfg.Levels[l], cfg.Replace)
		}
	}
	h.llc = newCache(cfg.Levels[h.nlev-1], cfg.Replace)
	h.stats.Hits = make([]uint64, h.nlev)
	h.stats.Misses = make([]uint64, h.nlev)

	h.llcLines = int(h.llc.nsets) * h.llc.ways
	h.arena = make([]byte, h.llcLines*BlockSize)
	if s, ok := backing.(interface{ Size() uint64 }); ok {
		h.growSlots(s.Size() >> blockShift)
	}
	if p, ok := backing.(interface{ Poisoned(addr uint64) bool }); ok {
		h.poisoned = p.Poisoned
	}
	return h
}

// growSlots extends the slot table to cover at least nblocks blocks.
func (h *Hierarchy) growSlots(nblocks uint64) {
	if nblocks <= uint64(len(h.slots)) {
		return
	}
	grown := make([]int32, nblocks)
	copy(grown, h.slots)
	for i := len(h.slots); i < len(grown); i++ {
		grown[i] = -1
	}
	h.slots = grown
}

// slotOf returns blk's arena slot, or -1 when not resident.
func (h *Hierarchy) slotOf(blk uint64) int32 {
	if blk < uint64(len(h.slots)) {
		return h.slots[blk]
	}
	return -1
}

// dataAt returns the value buffer of an arena slot.
func (h *Hierarchy) dataAt(slot int32) *[BlockSize]byte {
	return (*[BlockSize]byte)(h.arena[int(slot)*BlockSize:])
}

// blockData returns the value buffer of a resident block.
func (h *Hierarchy) blockData(blk uint64) *[BlockSize]byte {
	return h.dataAt(h.slots[blk])
}

// attach makes blk resident in the flat store and returns its value buffer.
// slot is the LLC way slot blk was just inserted into (insertLLC made the
// room, so the corresponding arena slot is free by construction).
func (h *Hierarchy) attach(blk uint64, slot int32) *[BlockSize]byte {
	if blk >= uint64(len(h.slots)) {
		// Backing without a known size: grow geometrically.
		n := uint64(len(h.slots)) * 2
		if n < 1024 {
			n = 1024
		}
		for n <= blk {
			n *= 2
		}
		h.growSlots(n)
	}
	h.slots[blk] = slot
	return h.dataAt(slot)
}

// detach drops blk's value; the arena slot frees with its LLC way.
func (h *Hierarchy) detach(blk uint64) {
	h.slots[blk] = -1
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a copy of the accumulated statistics.
func (h *Hierarchy) Stats() Stats {
	s := h.stats
	s.Hits = append([]uint64(nil), h.stats.Hits...)
	s.Misses = append([]uint64(nil), h.stats.Misses...)
	return s
}

// ResetStats zeroes the statistics without touching cache state.
func (h *Hierarchy) ResetStats() {
	hits, misses := h.stats.Hits, h.stats.Misses
	h.stats = Stats{Hits: hits, Misses: misses}
	for i := range hits {
		hits[i], misses[i] = 0, 0
	}
}

// Load reads len(buf) bytes at addr through the cache on the given core.
func (h *Hierarchy) Load(core int, addr uint64, buf []byte) {
	h.stats.Loads++
	if off := int(addr & (BlockSize - 1)); off+len(buf) <= BlockSize {
		h.accessBlock(core, addr>>blockShift, off, buf, false)
		return
	}
	h.split(core, addr, buf, false)
}

// Store writes len(buf) bytes at addr through the cache on the given core
// (write-allocate: the block is brought into the cache first).
func (h *Hierarchy) Store(core int, addr uint64, buf []byte) {
	h.stats.Stores++
	if off := int(addr & (BlockSize - 1)); off+len(buf) <= BlockSize {
		h.accessBlock(core, addr>>blockShift, off, buf, true)
		return
	}
	h.split(core, addr, buf, true)
}

// LoadRun reads len(buf)/8 consecutive 8-byte elements starting at addr,
// equivalent to issuing one 8-byte Load per element but resolving residency
// once per 64 B block. addr must be 8-byte aligned and len(buf) a multiple
// of 8 (unaligned runs fall back to the per-element path).
func (h *Hierarchy) LoadRun(core int, addr uint64, buf []byte) {
	h.accessRun(core, addr, buf, false)
}

// StoreRun writes len(buf)/8 consecutive 8-byte elements starting at addr;
// the batched counterpart of per-element Store (see LoadRun).
func (h *Hierarchy) StoreRun(core int, addr uint64, buf []byte) {
	h.accessRun(core, addr, buf, true)
}

// accessRun is the batched engine: per 64 B block it pays one residency
// resolution, then accounts the remaining elements of the block in bulk.
// The result is element-for-element equivalent to the scalar path — same
// tick evolution, hit/miss counts, LRU touches, dirty bits, coherence
// traffic and fill/eviction order — because within one block the 2nd..kth
// scalar accesses are always innermost-level hits whose only effects are a
// tick, a Hits[0] count and an LRU touch (idempotent dirty marks and no-op
// coherence aside).
func (h *Hierarchy) accessRun(core int, addr uint64, buf []byte, store bool) {
	if addr&7 != 0 || len(buf)&7 != 0 {
		// Unaligned elements can straddle blocks (two ticks each); keep the
		// exact scalar semantics for them.
		for len(buf) > 0 {
			n := 8
			if n > len(buf) {
				n = len(buf)
			}
			if store {
				h.Store(core, addr, buf[:n])
			} else {
				h.Load(core, addr, buf[:n])
			}
			addr += uint64(n)
			buf = buf[n:]
		}
		return
	}
	if store {
		h.stats.Stores += uint64(len(buf)) >> 3
	} else {
		h.stats.Loads += uint64(len(buf)) >> 3
	}
	for len(buf) > 0 {
		off := int(addr & (BlockSize - 1))
		seg := BlockSize - off
		if seg > len(buf) {
			seg = len(buf)
		}
		blk := addr >> blockShift
		h.tick++
		data, inner, slot := h.ensureResident(core, blk)
		if store {
			copy(data[off:off+seg], buf[:seg])
			if st := inner.state[slot]; st&stDirty == 0 {
				inner.setState(slot, st|stDirty)
			}
			if h.cfg.Cores > 1 {
				h.invalidateOthers(core, blk)
			}
		} else {
			copy(buf[:seg], data[off:off+seg])
		}
		if k := uint64(seg) >> 3; k > 1 {
			h.tick += k - 1
			h.stats.Hits[0] += k - 1
			inner.touch(slot, h.tick)
		}
		addr += uint64(seg)
		buf = buf[seg:]
	}
}

func (h *Hierarchy) split(core int, addr uint64, buf []byte, store bool) {
	for len(buf) > 0 {
		off := int(addr & (BlockSize - 1))
		n := BlockSize - off
		if n > len(buf) {
			n = len(buf)
		}
		h.accessBlock(core, addr>>blockShift, off, buf[:n], store)
		addr += uint64(n)
		buf = buf[n:]
	}
}

func (h *Hierarchy) accessBlock(core int, blk uint64, off int, buf []byte, store bool) {
	h.tick++
	data, inner, slot := h.ensureResident(core, blk)
	if store {
		copy(data[off:off+len(buf)], buf)
		// Mark dirty in the innermost level; ensureResident just returned
		// its residency, so no second lookup is needed.
		if st := inner.state[slot]; st&stDirty == 0 {
			inner.setState(slot, st|stDirty)
		}
		if h.cfg.Cores > 1 {
			h.invalidateOthers(core, blk)
		}
	} else {
		copy(buf, data[off:off+len(buf)])
	}
}

// ensureResident makes blk resident in every level on core's path and
// returns its value buffer together with its innermost residency (the L1
// tag array and way slot, or the LLC's when there are no private levels),
// so callers can mark dirtiness without a second lookup. Fill order is
// outermost-first so the inclusion invariant holds while inner levels evict.
func (h *Hierarchy) ensureResident(core int, blk uint64) (*[BlockSize]byte, *cache, int) {
	if h.slotOf(blk) < 0 {
		// No arena slot means blk is valid in no cache (every resident
		// line's value lives in the arena), so the per-level tag scans are
		// guaranteed misses: record them and fill straight from memory.
		for l := 0; l < h.nlev; l++ {
			h.stats.Misses[l]++
		}
		llcSlot := h.insertLLC(blk)
		h.backing.ReadBlock(blk<<blockShift, h.attach(blk, int32(llcSlot))[:])
		h.stats.Fills++
		if h.npriv == 0 {
			return h.blockData(blk), h.llc, llcSlot
		}
		slot := -1
		for l := h.npriv - 1; l >= 0; l-- {
			slot = h.insertPrivate(core, l, blk)
		}
		return h.blockData(blk), h.priv[core][0], slot
	}
	// Fast path: L1 hit.
	if h.npriv > 0 {
		l1 := h.priv[core][0]
		if slot, ok := l1.lookup(blk); ok {
			l1.touch(slot, h.tick)
			h.stats.Hits[0]++
			return h.blockData(blk), l1, slot
		}
		h.stats.Misses[0]++
	}
	// Find the outermost level that already has the block.
	hitLevel := -1 // -1 means memory
	for l := 1; l < h.npriv; l++ {
		if slot, ok := h.priv[core][l].lookup(blk); ok {
			h.priv[core][l].touch(slot, h.tick)
			h.stats.Hits[l]++
			hitLevel = l
			break
		}
		h.stats.Misses[l]++
	}
	llcSlot := -1
	if hitLevel == -1 {
		// slotOf(blk) >= 0 past the cold path above, and the arena slot is
		// the LLC way slot: a guaranteed O(1) LLC hit, no tag scan.
		llcSlot = int(h.slots[blk])
		h.llc.touch(llcSlot, h.tick)
		h.stats.Hits[h.nlev-1]++
		hitLevel = h.nlev - 1
	}
	// Fill private levels from hitLevel-1 down to 0 (outermost first).
	top := hitLevel - 1
	if hitLevel == h.nlev-1 {
		top = h.npriv - 1
	}
	if top < 0 {
		// No private levels: the LLC is the innermost residency.
		return h.blockData(blk), h.llc, llcSlot
	}
	slot := -1
	for l := top; l >= 0; l-- {
		slot = h.insertPrivate(core, l, blk)
	}
	return h.blockData(blk), h.priv[core][0], slot
}

// insertLLC inserts blk into the shared LLC, evicting a victim if needed,
// and returns the way slot used.
func (h *Hierarchy) insertLLC(blk uint64) int {
	slot := h.llc.victimSlot(blk)
	if h.llc.state[slot]&stValid != 0 {
		h.evictLLCSlot(slot)
	}
	set := int(blk % h.llc.nsets)
	h.llc.tags[slot] = blk
	h.llc.setState(slot, stValid)
	h.llc.lru[slot] = h.tick
	h.llc.mru[set] = int32(slot - set*h.llc.ways)
	return slot
}

// evictLLCSlot evicts the block in an LLC slot: back-invalidates every
// private copy (merging dirtiness), writes the block to backing if dirty
// anywhere, and drops its value buffer.
func (h *Hierarchy) evictLLCSlot(slot int) {
	victim := h.llc.tags[slot]
	dirty := h.llc.state[slot]&stDirty != 0
	for c := 0; c < h.cfg.Cores; c++ {
		for l := 0; l < h.npriv; l++ {
			if s, ok := h.priv[c][l].lookup(victim); ok {
				if h.priv[c][l].state[s]&stDirty != 0 {
					dirty = true
				}
				h.priv[c][l].setState(s, 0)
			}
		}
	}
	if dirty {
		h.backing.WriteBlock(victim<<blockShift, h.blockData(victim)[:])
		h.stats.EvictionWritebacks++
	}
	h.detach(victim)
	h.llc.setState(slot, 0)
}

// insertPrivate inserts blk into core's private level l, evicting the LRU
// victim into level l+1 (which holds it by inclusion). Returns the way slot
// used.
func (h *Hierarchy) insertPrivate(core, l int, blk uint64) int {
	c := h.priv[core][l]
	slot := c.victimSlot(blk)
	if c.state[slot]&stValid != 0 {
		victim := c.tags[slot]
		victimDirty := c.state[slot]&stDirty != 0
		// Back-invalidate inner levels of this core (inclusion within the
		// private stack), merging their dirtiness into the victim's.
		for il := 0; il < l; il++ {
			if s, ok := h.priv[core][il].lookup(victim); ok {
				if h.priv[core][il].state[s]&stDirty != 0 {
					victimDirty = true
				}
				h.priv[core][il].setState(s, 0)
			}
		}
		if victimDirty {
			h.markDirtyBelow(core, l, victim)
		}
	}
	set := int(blk % c.nsets)
	c.tags[slot] = blk
	c.setState(slot, stValid)
	c.lru[slot] = h.tick
	c.mru[set] = int32(slot - set*c.ways)
	return slot
}

// markDirtyBelow records that victim, evicted dirty out of core's level l,
// is now dirty in the next level down (private l+1 or the LLC).
func (h *Hierarchy) markDirtyBelow(core, l int, victim uint64) {
	if l+1 < h.npriv {
		if s, ok := h.priv[core][l+1].lookup(victim); ok {
			h.priv[core][l+1].setState(s, h.priv[core][l+1].state[s]|stDirty)
			return
		}
		panic("cachesim: inclusion violated: victim absent from next private level")
	}
	if s := h.slotOf(victim); s >= 0 {
		h.llc.setState(int(s), h.llc.state[s]|stDirty)
		return
	}
	panic("cachesim: inclusion violated: victim absent from LLC")
}

// invalidateOthers removes private copies of blk held by cores other than
// writer, transferring any dirtiness to the shared LLC line.
func (h *Hierarchy) invalidateOthers(writer int, blk uint64) {
	for c := 0; c < h.cfg.Cores; c++ {
		if c == writer {
			continue
		}
		for l := 0; l < h.npriv; l++ {
			if s, ok := h.priv[c][l].lookup(blk); ok {
				if h.priv[c][l].state[s]&stDirty != 0 {
					if ls := h.slotOf(blk); ls >= 0 {
						h.llc.setState(int(ls), h.llc.state[ls]|stDirty)
					}
				}
				h.priv[c][l].setState(s, 0)
				h.stats.Invalidations++
			}
		}
	}
}

// dirtyAnywhere reports whether blk is dirty in any level of any core.
func (h *Hierarchy) dirtyAnywhere(blk uint64) bool {
	if s := h.slotOf(blk); s >= 0 && h.llc.state[s]&stDirty != 0 {
		return true
	}
	for c := 0; c < h.cfg.Cores; c++ {
		for l := 0; l < h.npriv; l++ {
			if s, ok := h.priv[c][l].lookup(blk); ok && h.priv[c][l].state[s]&stDirty != 0 {
				return true
			}
		}
	}
	return false
}

// cleanEverywhere clears the dirty bit of blk in every level of every core.
// Residency is untouched, so Stream memoizations stay valid (a memoized
// store re-marks the line dirty exactly as the scalar path would).
func (h *Hierarchy) cleanEverywhere(blk uint64) {
	if s := h.slotOf(blk); s >= 0 {
		h.llc.setState(int(s), h.llc.state[s]&^stDirty)
	}
	for c := 0; c < h.cfg.Cores; c++ {
		for l := 0; l < h.npriv; l++ {
			if s, ok := h.priv[c][l].lookup(blk); ok {
				h.priv[c][l].setState(s, h.priv[c][l].state[s]&^stDirty)
			}
		}
	}
}

// invalidateEverywhere removes blk from every level and drops its value.
func (h *Hierarchy) invalidateEverywhere(blk uint64) {
	if s := h.slotOf(blk); s >= 0 {
		h.llc.setState(int(s), 0)
	}
	for c := 0; c < h.cfg.Cores; c++ {
		for l := 0; l < h.npriv; l++ {
			if s, ok := h.priv[c][l].lookup(blk); ok {
				h.priv[c][l].setState(s, 0)
			}
		}
	}
	if h.slotOf(blk) >= 0 {
		h.detach(blk)
	}
}

// FlushResult reports what one Flush call did.
type FlushResult struct {
	Blocks       uint64 // flush instructions issued (one per block)
	DirtyFlushed uint64 // blocks written back to NVM
	CleanFlushed uint64 // clean or non-resident blocks (no write)
}

// Flush issues flush instructions for every block overlapping
// [addr, addr+size), with the given instruction semantics. This is the
// cache_block_flush primitive of the paper's runtime: persisting an object
// flushes all its blocks, but only dirty resident blocks cost a write-back.
func (h *Hierarchy) Flush(addr, size uint64, op FlushOp) FlushResult {
	var r FlushResult
	if size == 0 {
		return r
	}
	first := addr >> blockShift
	last := (addr + size - 1) >> blockShift
	for blk := first; blk <= last; blk++ {
		r.Blocks++
		h.stats.FlushOps++
		slot := h.slotOf(blk)
		if slot < 0 {
			r.CleanFlushed++
			h.stats.CleanFlushes++
			continue
		}
		if h.dirtyAnywhere(blk) {
			h.backing.WriteBlock(blk<<blockShift, h.dataAt(slot)[:])
			h.stats.DirtyFlushes++
			r.DirtyFlushed++
			h.cleanEverywhere(blk)
		} else {
			r.CleanFlushed++
			h.stats.CleanFlushes++
		}
		if op != CLWB {
			h.invalidateEverywhere(blk)
		}
	}
	return r
}

// WriteBackAll drains every dirty block to backing memory and cleans it,
// leaving blocks resident. It models the system forcing full consistency
// (used by the copy-based "verified" campaign and the C/R baseline).
//
// The drain proceeds in ascending block order. Media-write order is part of
// the determinism contract: the image's write hook (the fault injector, wear
// and trace observers) sees every WriteBlock in sequence, so a map-ordered
// drain — as this method historically did — varied run to run on identical
// seeds. Ascending order is reproducible and free with the flat store.
func (h *Hierarchy) WriteBackAll() uint64 {
	blks := h.residentSorted()
	var n uint64
	for _, blk := range blks {
		if h.dirtyAnywhere(blk) {
			h.backing.WriteBlock(blk<<blockShift, h.blockData(blk)[:])
			h.cleanEverywhere(blk)
			h.stats.DrainWritebacks++
			n++
		}
	}
	return n
}

// residentSorted collects the resident block numbers (the valid LLC lines,
// by inclusion) in ascending order, reusing the hierarchy's scratch slice.
func (h *Hierarchy) residentSorted() []uint64 {
	blks := h.scratch[:0]
	for i, st := range h.llc.state {
		if st&stValid != 0 {
			blks = append(blks, h.llc.tags[i])
		}
	}
	slices.Sort(blks)
	h.scratch = blks
	return blks
}

// DropAll models a crash: every volatile cache loses its contents; nothing
// is written back. The backing image retains only what had already reached
// it. Statistics are preserved. The flat store is recycled in place — no
// allocation per crash.
func (h *Hierarchy) DropAll() {
	for i, st := range h.llc.state {
		if st&stValid != 0 {
			h.detach(h.llc.tags[i])
		}
	}
	h.llc.invalidateAll()
	for c := range h.priv {
		for _, pc := range h.priv[c] {
			pc.invalidateAll()
		}
	}
}

// Reset returns the hierarchy to its just-constructed state: every level
// invalidated, the flat store empty, statistics and the recency clock
// zeroed. A Reset hierarchy behaves
// identically to a fresh New over the same backing, which is what lets
// campaign workers reuse one machine per crash test.
func (h *Hierarchy) Reset() {
	for i, st := range h.llc.state {
		if st&stValid != 0 {
			h.slots[h.llc.tags[i]] = -1
		}
	}
	h.llc.invalidateAll()
	h.llc.rng = rngSeed
	for c := range h.priv {
		for _, pc := range h.priv[c] {
			pc.invalidateAll()
			pc.rng = rngSeed
		}
	}
	h.tick = 0
	h.ResetStats()
}

// DirtyBytesIn counts bytes in [addr, addr+size) whose architectural value
// (cache contents) differs from the backing image — the bytes that would be
// lost by a crash. This is exactly the paper's per-object data-inconsistency
// numerator.
//
// A poisoned backing block (detected-uncorrectable after media faults) has
// no durable value to compare against: every covered byte of a dirty cached
// block over poisoned media counts as inconsistent, instead of tripping the
// backing's media-error panic mid-postmortem.
func (h *Hierarchy) DirtyBytesIn(addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	var n uint64
	first := addr >> blockShift
	last := (addr + size - 1) >> blockShift
	for blk := first; blk <= last; blk++ {
		slot := h.slotOf(blk)
		if slot < 0 || !h.dirtyAnywhere(blk) {
			continue
		}
		lo, hi := blk<<blockShift, (blk+1)<<blockShift
		if addr > lo {
			lo = addr
		}
		if addr+size < hi {
			hi = addr + size
		}
		if h.poisoned != nil && h.poisoned(blk<<blockShift) {
			n += hi - lo
			continue
		}
		data := h.dataAt(slot)
		h.backing.ReadBlock(blk<<blockShift, h.tmp[:])
		for i := lo; i < hi; i++ {
			if data[i&(BlockSize-1)] != h.tmp[i&(BlockSize-1)] {
				n++
			}
		}
	}
	return n
}

// ResidentBlocks returns the number of blocks currently held in the
// hierarchy, and how many of those are dirty somewhere.
func (h *Hierarchy) ResidentBlocks() (resident, dirty int) {
	for i, st := range h.llc.state {
		if st&stValid == 0 {
			continue
		}
		resident++
		if h.dirtyAnywhere(h.llc.tags[i]) {
			dirty++
		}
	}
	return
}

// ArchValue copies the current architectural value of [addr, addr+len(buf))
// into buf without perturbing cache state or statistics: cached bytes come
// from the cache, the rest from backing. Intended for assertions and
// postmortem analysis.
//
// Bytes of a non-resident block whose backing is poisoned are lost — no
// durable or cached copy exists — and read as zero rather than raising the
// backing's media-error panic.
func (h *Hierarchy) ArchValue(addr uint64, buf []byte) {
	for len(buf) > 0 {
		blk := addr >> blockShift
		off := int(addr & (BlockSize - 1))
		n := BlockSize - off
		if n > len(buf) {
			n = len(buf)
		}
		if slot := h.slotOf(blk); slot >= 0 {
			copy(buf[:n], h.dataAt(slot)[off:off+n])
		} else if h.poisoned != nil && h.poisoned(blk<<blockShift) {
			clear(buf[:n])
		} else {
			h.backing.ReadBlock(blk<<blockShift, h.tmp[:])
			copy(buf[:n], h.tmp[off:off+n])
		}
		addr += uint64(n)
		buf = buf[n:]
	}
}

// CheckInclusion verifies the inclusion invariant (every private-resident
// block is LLC-resident, every resident block has a value buffer) and
// returns an error describing the first violation. Used by tests.
func (h *Hierarchy) CheckInclusion() error {
	for c := range h.priv {
		for l, pc := range h.priv[c] {
			for i, st := range pc.state {
				if st&stValid == 0 {
					continue
				}
				blk := pc.tags[i]
				if _, ok := h.llc.lookup(blk); !ok {
					return fmt.Errorf("block %#x valid in core %d level %d but not in LLC", blk, c, l)
				}
				if h.slotOf(blk) < 0 {
					return fmt.Errorf("block %#x valid in core %d level %d but has no value buffer", blk, c, l)
				}
			}
		}
	}
	attached := 0
	for i, st := range h.llc.state {
		if st&stValid != 0 {
			if h.slotOf(h.llc.tags[i]) != int32(i) {
				return fmt.Errorf("block %#x valid in LLC way %d but slot table says %d",
					h.llc.tags[i], i, h.slotOf(h.llc.tags[i]))
			}
		}
	}
	for blk, slot := range h.slots {
		if slot < 0 {
			continue
		}
		attached++
		if h.llc.state[slot]&stValid == 0 || h.llc.tags[slot] != uint64(blk) {
			return fmt.Errorf("value buffer for block %#x in slot %d, but that LLC way holds %#x (state %#x)",
				blk, slot, h.llc.tags[slot], h.llc.state[slot])
		}
	}
	if v, _ := h.llc.countValid(); attached != v {
		return fmt.Errorf("slot leak: %d attached != %d valid LLC lines", attached, v)
	}
	return nil
}

// CheckCounters verifies the incremental valid/dirty line counters of every
// tag array against a full scan and returns an error describing the first
// mismatch. Used by tests.
func (h *Hierarchy) CheckCounters() error {
	check := func(name string, c *cache) error {
		valid, dirty := 0, 0
		for _, s := range c.state {
			if s&stValid != 0 {
				valid++
				if s&stDirty != 0 {
					dirty++
				}
			}
		}
		if valid != c.valid || dirty != c.dirty {
			return fmt.Errorf("%s: counters (valid=%d dirty=%d) != scan (valid=%d dirty=%d)",
				name, c.valid, c.dirty, valid, dirty)
		}
		return nil
	}
	for ci := range h.priv {
		for l, pc := range h.priv[ci] {
			if err := check(fmt.Sprintf("core %d %s", ci, h.cfg.Levels[l].Name), pc); err != nil {
				return err
			}
		}
	}
	return check(h.cfg.Levels[h.nlev-1].Name, h.llc)
}

// Occupancy returns (valid, dirty) line counts per level name for debugging.
func (h *Hierarchy) Occupancy() map[string][2]int {
	out := make(map[string][2]int, h.nlev)
	for l := 0; l < h.npriv; l++ {
		var v, d int
		for c := range h.priv {
			cv, cd := h.priv[c][l].countValid()
			v += cv
			d += cd
		}
		out[h.cfg.Levels[l].Name] = [2]int{v, d}
	}
	v, d := h.llc.countValid()
	out[h.cfg.Levels[h.nlev-1].Name] = [2]int{v, d}
	return out
}
