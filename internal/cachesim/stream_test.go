package cachesim

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestRunAndStreamMatchScalarRandomized drives two identically configured
// hierarchies with the same randomized 8-byte-aligned access trace — one
// through the batched Run/Stream fast paths, one through per-element scalar
// Load/Store — and demands identical statistics, recency clocks and (after a
// full drain) identical durable images. The trace mixes run lengths that
// straddle block boundaries, interleaved stream cursors (so memos go stale
// and revalidate), plain scalar accesses that evict memoized blocks, and
// flushes that invalidate under the streams' feet.
func TestRunAndStreamMatchScalarRandomized(t *testing.T) {
	const memBytes = 1 << 14
	fast, fim := newPair(t, tiny(), memBytes)
	ref, rim := newPair(t, tiny(), memBytes)

	streams := make([]Stream, 4)
	for i := range streams {
		streams[i] = fast.NewStream()
	}
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, 8*64)
	buf2 := make([]byte, 8*64)
	for op := 0; op < 4000; op++ {
		addr := uint64(rng.Intn(memBytes/8-64)) * 8
		switch rng.Intn(6) {
		case 0: // run store
			n := (1 + rng.Intn(64)) * 8
			rng.Read(buf[:n])
			fast.StoreRun(0, addr, buf[:n])
			for o := 0; o < n; o += 8 {
				ref.Store(0, addr+uint64(o), buf[o:o+8])
			}
		case 1: // run load
			n := (1 + rng.Intn(64)) * 8
			fast.LoadRun(0, addr, buf[:n])
			for o := 0; o < n; o += 8 {
				ref.Load(0, addr+uint64(o), buf2[o:o+8])
			}
			if !bytes.Equal(buf[:n], buf2[:n]) {
				t.Fatalf("op %d: run load at %#x returned different data", op, addr)
			}
		case 2: // stream store burst
			s := &streams[rng.Intn(len(streams))]
			v := rng.Uint64()
			for i := 0; i < 1+rng.Intn(24); i++ {
				s.Store8(0, addr+uint64(i)*8, v+uint64(i))
				putLE(buf2[:8], v+uint64(i))
				ref.Store(0, addr+uint64(i)*8, buf2[:8])
			}
		case 3: // stream load burst
			s := &streams[rng.Intn(len(streams))]
			for i := 0; i < 1+rng.Intn(24); i++ {
				got := s.Load8(0, addr+uint64(i)*8)
				ref.Load(0, addr+uint64(i)*8, buf2[:8])
				if got != leU64(buf2[:8]) {
					t.Fatalf("op %d: stream load at %#x = %#x, scalar %#x",
						op, addr+uint64(i)*8, got, leU64(buf2[:8]))
				}
			}
		case 4: // plain scalar access on both (perturbs residency under memos)
			rng.Read(buf[:8])
			fast.Store(0, addr, buf[:8])
			ref.Store(0, addr, buf[:8])
		case 5: // flush invalidates memoized lines
			fast.Flush(addr, 64, CLFLUSHOPT)
			ref.Flush(addr, 64, CLFLUSHOPT)
		}
		fs, rs := fast.Stats(), ref.Stats()
		if fs.Loads != rs.Loads || fs.Stores != rs.Stores ||
			fs.EvictionWritebacks != rs.EvictionWritebacks ||
			fs.Hits[0] != rs.Hits[0] || fs.Misses[len(fs.Misses)-1] != rs.Misses[len(rs.Misses)-1] {
			t.Fatalf("op %d: stats diverged:\nfast %+v\nref  %+v", op, fs, rs)
		}
	}
	if err := fast.CheckCounters(); err != nil {
		t.Fatal(err)
	}
	if err := fast.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
	fast.WriteBackAll()
	ref.WriteBackAll()
	if !bytes.Equal(fim.Bytes(0, memBytes), rim.Bytes(0, memBytes)) {
		t.Fatal("durable images diverged after drain")
	}
}

func putLE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func leU64(b []byte) (v uint64) {
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return
}

// TestStreamSurvivesSnapshotResume checks the memo's self-validation across
// Reset+ResumeFrom: a stream memoized before the snapshot cycle must not
// serve stale residency afterwards.
func TestStreamSurvivesSnapshotResume(t *testing.T) {
	h, _ := newPair(t, tiny(), 1<<14)
	s := h.NewStream()
	s.Store8(0, 0, 0x1111)
	s.Store8(0, 8, 0x2222)
	snap := h.Snapshot()
	h.Reset()
	h.ResumeFrom(snap)
	if got := s.Load8(0, 8); got != 0x2222 {
		t.Fatalf("post-resume stream load = %#x, want 0x2222", got)
	}
	if err := h.CheckCounters(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckCountersDetectsCorruption makes sure the incremental valid/dirty
// counters are actually asserted against a ground-truth scan.
func TestCheckCountersDetectsCorruption(t *testing.T) {
	h, _ := newPair(t, tiny(), 1<<14)
	h.Store(0, 0, []byte{1})
	if err := h.CheckCounters(); err != nil {
		t.Fatalf("fresh hierarchy failed counter check: %v", err)
	}
	h.llc.valid++
	if err := h.CheckCounters(); err == nil {
		t.Fatal("corrupted valid counter went undetected")
	}
}
