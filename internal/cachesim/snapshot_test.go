package cachesim

import (
	"bytes"
	"reflect"
	"testing"

	"easycrash/internal/mem"
)

// driveOps runs a deterministic mixed access sequence on a hierarchy.
func driveOps(h *Hierarchy, seed uint64, n int) {
	x := seed
	var buf [16]byte
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		addr := (x % (48 << 10)) &^ 7
		switch x % 5 {
		case 0, 1:
			for j := range buf {
				buf[j] = byte(x >> (j % 8 * 8))
			}
			h.Store(0, addr, buf[:])
		case 2, 3:
			h.Load(0, addr, buf[:])
		case 4:
			h.Flush(addr, 64, CLWB)
		}
	}
}

func TestSnapshotResumeIdenticalFuture(t *testing.T) {
	const imgSize = 256 << 10
	imA := mem.NewImage(imgSize)
	imB := mem.NewImage(imgSize)
	ref := New(TestConfig(), imA)
	driveOps(ref, 0x9e3779b97f4a7c15, 4000)

	snap := ref.Snapshot()
	imgSnap := imA.Fork(imA.Size())

	// A recycled hierarchy over a different image resumes from the snapshot.
	fork := New(TestConfig(), imB)
	driveOps(fork, 12345, 500) // dirty it first, then recycle
	fork.Reset()
	imB.Reset()
	imB.RestoreSnapshot(imgSnap)
	fork.ResumeFrom(snap)

	if err := fork.CheckInclusion(); err != nil {
		t.Fatalf("resumed hierarchy violates inclusion: %v", err)
	}

	// Identical future: same ops on both must produce identical stats,
	// architectural values, and identical images after a full drain.
	driveOps(ref, 0xdeadbeef, 3000)
	driveOps(fork, 0xdeadbeef, 3000)

	if !reflect.DeepEqual(ref.Stats(), fork.Stats()) {
		t.Fatalf("stats diverged:\nref  %+v\nfork %+v", ref.Stats(), fork.Stats())
	}
	a := make([]byte, 48<<10)
	b := make([]byte, 48<<10)
	ref.ArchValue(0, a)
	fork.ArchValue(0, b)
	if !bytes.Equal(a, b) {
		t.Fatal("architectural values diverged after resume")
	}
	if ref.WriteBackAll() != fork.WriteBackAll() {
		t.Fatal("drain write-back counts diverged")
	}
	if !bytes.Equal(imA.Bytes(0, imgSize), imB.Bytes(0, imgSize)) {
		t.Fatal("backing images diverged after drain")
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	im := mem.NewImage(64 << 10)
	h := New(TestConfig(), im)
	driveOps(h, 777, 2000)
	snap := h.Snapshot()
	want := append([]uint64(nil), snap.tags...)
	wantData := append([]byte(nil), snap.data...)

	driveOps(h, 888, 2000) // keep mutating the source hierarchy

	im2 := mem.NewImage(64 << 10)
	h2 := New(TestConfig(), im2)
	h2.ResumeFrom(snap)
	driveOps(h2, 999, 2000) // and mutate a hierarchy resumed from it

	if !reflect.DeepEqual(snap.tags, want) || !bytes.Equal(snap.data, wantData) {
		t.Fatal("snapshot mutated by source or restored hierarchy activity")
	}
	// Restoring the same snapshot again still yields the captured state.
	im3 := mem.NewImage(64 << 10)
	h3 := New(TestConfig(), im3)
	h3.ResumeFrom(snap)
	if h3.tick != snap.tick {
		t.Fatalf("second restore: tick %d, want %d", h3.tick, snap.tick)
	}
	if err := h3.CheckInclusion(); err != nil {
		t.Fatalf("second restore violates inclusion: %v", err)
	}
}

func TestResumeFromRequiresPristineHierarchy(t *testing.T) {
	im := mem.NewImage(64 << 10)
	h := New(TestConfig(), im)
	driveOps(h, 31337, 1000)
	snap := h.Snapshot()

	dirty := New(TestConfig(), mem.NewImage(64<<10))
	driveOps(dirty, 1, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("ResumeFrom on a non-Reset hierarchy did not panic")
		}
	}()
	dirty.ResumeFrom(snap)
}

func TestResumeFromRejectsConfigMismatch(t *testing.T) {
	h := New(TestConfig(), mem.NewImage(64<<10))
	snap := h.Snapshot()
	other := New(PaperConfig(), mem.NewImage(64<<10))
	defer func() {
		if recover() == nil {
			t.Fatal("ResumeFrom across configurations did not panic")
		}
	}()
	other.ResumeFrom(snap)
}
