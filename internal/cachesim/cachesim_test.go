package cachesim

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"easycrash/internal/mem"
)

func tiny() Config {
	return Config{
		Name:  "tiny",
		Cores: 1,
		Levels: []LevelConfig{
			{Name: "L1", Size: 256, Ways: 2},  // 2 sets
			{Name: "L2", Size: 512, Ways: 2},  // 4 sets
			{Name: "L3", Size: 1024, Ways: 2}, // 8 sets
		},
	}
}

func newPair(t testing.TB, cfg Config, memBytes uint64) (*Hierarchy, *mem.Image) {
	t.Helper()
	im := mem.NewImage(memBytes)
	return New(cfg, im), im
}

func TestConfigValidate(t *testing.T) {
	good := []Config{tiny(), TestConfig(), PaperConfig()}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %q should validate: %v", c.Name, err)
		}
	}
	bad := []Config{
		{Name: "no-cores", Cores: 0, Levels: tiny().Levels},
		{Name: "no-levels", Cores: 1},
		{Name: "bad-size", Cores: 1, Levels: []LevelConfig{{Size: 100, Ways: 2}}},
		{Name: "shrinking", Cores: 1, Levels: []LevelConfig{{Size: 1024, Ways: 2}, {Size: 512, Ways: 2}}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q should fail validation", c.Name)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{}, mem.NewImage(64))
}

func TestFlushOpString(t *testing.T) {
	for op, want := range map[FlushOp]string{CLFLUSH: "CLFLUSH", CLFLUSHOPT: "CLFLUSHOPT", CLWB: "CLWB", FlushOp(9): "FlushOp(9)"} {
		if got := op.String(); got != want {
			t.Errorf("FlushOp(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestReadYourWrite(t *testing.T) {
	h, _ := newPair(t, tiny(), 1<<16)
	w := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	h.Store(0, 640, w)
	r := make([]byte, 8)
	h.Load(0, 640, r)
	if !bytes.Equal(w, r) {
		t.Fatalf("read %v after writing %v", r, w)
	}
}

func TestStoreNotDurableUntilWriteback(t *testing.T) {
	h, im := newPair(t, tiny(), 1<<16)
	h.Store(0, 0, []byte{0xEE})
	if im.Bytes(0, 1)[0] == 0xEE {
		t.Fatal("store reached NVM without eviction or flush")
	}
	if got := h.DirtyBytesIn(0, 64); got != 1 {
		t.Fatalf("DirtyBytesIn = %d, want 1", got)
	}
	h.Flush(0, 1, CLWB)
	if im.Bytes(0, 1)[0] != 0xEE {
		t.Fatal("flush did not persist store")
	}
	if got := h.DirtyBytesIn(0, 64); got != 0 {
		t.Fatalf("DirtyBytesIn after flush = %d, want 0", got)
	}
}

func TestCrashLosesDirtyData(t *testing.T) {
	h, im := newPair(t, tiny(), 1<<16)
	h.Store(0, 128, []byte{0xAB})
	h.DropAll() // crash
	if im.Bytes(128, 1)[0] == 0xAB {
		t.Fatal("dirty store survived the crash")
	}
	// After the crash a fresh load sees the stale durable value.
	r := make([]byte, 1)
	h.Load(0, 128, r)
	if r[0] != 0 {
		t.Fatalf("post-crash load = %#x, want 0", r[0])
	}
}

func TestFlushSemantics(t *testing.T) {
	h, im := newPair(t, tiny(), 1<<16)
	// Dirty block: flush writes it back.
	h.Store(0, 0, []byte{1})
	res := h.Flush(0, 64, CLFLUSHOPT)
	if res.DirtyFlushed != 1 || res.CleanFlushed != 0 {
		t.Fatalf("dirty flush result %+v", res)
	}
	if im.BlockWrites() != 1 {
		t.Fatalf("BlockWrites = %d, want 1", im.BlockWrites())
	}
	// CLFLUSHOPT invalidated the block: flushing again is a clean flush
	// of a non-resident block, costing no write.
	res = h.Flush(0, 64, CLFLUSHOPT)
	if res.DirtyFlushed != 0 || res.CleanFlushed != 1 {
		t.Fatalf("non-resident flush result %+v", res)
	}
	if im.BlockWrites() != 1 {
		t.Fatalf("non-resident flush wrote to NVM: %d writes", im.BlockWrites())
	}
	// Clean resident block (loaded, never stored): no write.
	buf := make([]byte, 8)
	h.Load(0, 4096, buf)
	res = h.Flush(4096, 8, CLFLUSH)
	if res.DirtyFlushed != 0 || res.CleanFlushed != 1 {
		t.Fatalf("clean resident flush result %+v", res)
	}
	if im.BlockWrites() != 1 {
		t.Fatal("clean flush caused NVM write")
	}
}

func TestCLWBKeepsBlockResident(t *testing.T) {
	h, _ := newPair(t, tiny(), 1<<16)
	h.Store(0, 0, []byte{7})
	h.Flush(0, 1, CLWB)
	res, _ := h.ResidentBlocks()
	if res != 1 {
		t.Fatalf("resident blocks after CLWB = %d, want 1", res)
	}
	misses := h.Stats().Misses[0]
	h.Load(0, 0, make([]byte, 1))
	if h.Stats().Misses[0] != misses {
		t.Fatal("load after CLWB missed L1")
	}

	h2, _ := newPair(t, tiny(), 1<<16)
	h2.Store(0, 0, []byte{7})
	h2.Flush(0, 1, CLFLUSH)
	if res, _ := h2.ResidentBlocks(); res != 0 {
		t.Fatalf("resident blocks after CLFLUSH = %d, want 0", res)
	}
}

func TestFlushRangeCoversPartialBlocks(t *testing.T) {
	h, _ := newPair(t, tiny(), 1<<16)
	// Range [60, 70) spans two blocks.
	res := h.Flush(60, 10, CLWB)
	if res.Blocks != 2 {
		t.Fatalf("Blocks = %d, want 2", res.Blocks)
	}
	if res := h.Flush(0, 0, CLWB); res.Blocks != 0 {
		t.Fatalf("zero-size flush issued %d ops", res.Blocks)
	}
}

func TestEvictionWritesBackThroughLLC(t *testing.T) {
	h, im := newPair(t, tiny(), 1<<20)
	// Dirty more distinct blocks than the whole hierarchy can hold; LLC has
	// 16 lines, so writing 64 blocks must force eviction write-backs.
	for i := 0; i < 64; i++ {
		h.Store(0, uint64(i)*64, []byte{byte(i)})
	}
	if im.BlockWrites() == 0 {
		t.Fatal("no eviction writebacks despite capacity pressure")
	}
	if err := h.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
	// Every evicted block's value must be durable and correct.
	h.WriteBackAll()
	for i := 0; i < 64; i++ {
		if got := im.Bytes(uint64(i)*64, 1)[0]; got != byte(i) {
			t.Fatalf("block %d durable value %#x, want %#x", i, got, byte(i))
		}
	}
}

func TestWriteBackAllCleansEverything(t *testing.T) {
	h, im := newPair(t, tiny(), 1<<20)
	for i := 0; i < 10; i++ {
		h.Store(0, uint64(i)*64, []byte{byte(i + 1)})
	}
	n := h.WriteBackAll()
	if n == 0 {
		t.Fatal("WriteBackAll drained nothing")
	}
	if _, dirty := h.ResidentBlocks(); dirty != 0 {
		t.Fatalf("dirty blocks after drain: %d", dirty)
	}
	for i := 0; i < 10; i++ {
		if got := im.Bytes(uint64(i)*64, 1)[0]; got != byte(i+1) {
			t.Fatalf("block %d not durable after drain", i)
		}
	}
	if h.WriteBackAll() != 0 {
		t.Fatal("second drain wrote blocks")
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := Config{Name: "direct", Cores: 1, Levels: []LevelConfig{{Name: "L1", Size: 128, Ways: 2}}}
	h, _ := newPair(t, cfg, 1<<16)
	buf := make([]byte, 1)
	// Single-level, 1 set x 2 ways for even blocks... sets=1? 128/(64*2)=1 set.
	h.Load(0, 0, buf)   // block 0
	h.Load(0, 64, buf)  // block 1
	h.Load(0, 0, buf)   // touch block 0 (block 1 is now LRU)
	h.Load(0, 128, buf) // block 2 evicts block 1
	base := h.Stats().Hits[0]
	h.Load(0, 0, buf) // must still hit
	if h.Stats().Hits[0] != base+1 {
		t.Fatal("MRU block was evicted")
	}
	m := h.Stats().Misses[0]
	h.Load(0, 64, buf) // must miss
	if h.Stats().Misses[0] != m+1 {
		t.Fatal("LRU block was not evicted")
	}
}

func TestStatsAccounting(t *testing.T) {
	h, _ := newPair(t, tiny(), 1<<16)
	buf := make([]byte, 8)
	h.Load(0, 0, buf)
	h.Load(0, 0, buf)
	h.Store(0, 0, buf)
	s := h.Stats()
	if s.Loads != 2 || s.Stores != 1 {
		t.Fatalf("loads/stores = %d/%d", s.Loads, s.Stores)
	}
	if s.Fills != 1 {
		t.Fatalf("fills = %d, want 1", s.Fills)
	}
	if s.Hits[0] != 2 || s.Misses[0] != 1 {
		t.Fatalf("L1 hits/misses = %d/%d, want 2/1", s.Hits[0], s.Misses[0])
	}
	if s.Accesses() != 3 {
		t.Fatalf("Accesses = %d", s.Accesses())
	}
	h.ResetStats()
	s = h.Stats()
	if s.Loads != 0 || s.Hits[0] != 0 || s.Fills != 0 {
		t.Fatal("ResetStats left residue")
	}
}

func TestAccessSpanningBlocks(t *testing.T) {
	h, _ := newPair(t, tiny(), 1<<16)
	w := make([]byte, 100)
	for i := range w {
		w[i] = byte(i)
	}
	h.Store(0, 30, w) // spans 3 blocks
	r := make([]byte, 100)
	h.Load(0, 30, r)
	if !bytes.Equal(w, r) {
		t.Fatal("spanning store/load mismatch")
	}
}

func TestDirtyBytesInCountsOnlyDifferingBytes(t *testing.T) {
	h, im := newPair(t, tiny(), 1<<16)
	im.RawWrite(0, []byte{9, 9, 9, 9})
	// Overwrite two bytes with the same value and two with new values.
	h.Store(0, 0, []byte{9, 9, 5, 5})
	if got := h.DirtyBytesIn(0, 64); got != 2 {
		t.Fatalf("DirtyBytesIn = %d, want 2 (only changed bytes)", got)
	}
	// Restricting the range restricts the count.
	if got := h.DirtyBytesIn(0, 3); got != 1 {
		t.Fatalf("DirtyBytesIn(0,3) = %d, want 1", got)
	}
	if got := h.DirtyBytesIn(0, 0); got != 0 {
		t.Fatalf("DirtyBytesIn(0,0) = %d, want 0", got)
	}
}

func TestArchValueMergesCacheAndMemory(t *testing.T) {
	h, im := newPair(t, tiny(), 1<<16)
	im.RawWrite(64, []byte{1, 1, 1, 1})
	h.Store(0, 0, []byte{2, 2})
	got := make([]byte, 66)
	h.ArchValue(0, got)
	if got[0] != 2 || got[1] != 2 {
		t.Fatal("ArchValue missed cached bytes")
	}
	if got[64] != 1 || got[65] != 1 {
		t.Fatal("ArchValue missed durable bytes")
	}
	s := h.Stats()
	if s.Loads != 0 {
		t.Fatal("ArchValue perturbed stats")
	}
}

func TestMultiCoreCoherence(t *testing.T) {
	cfg := tiny()
	cfg.Cores = 2
	h, _ := newPair(t, cfg, 1<<16)
	// Core 0 writes, core 1 must read the value through coherence.
	h.Store(0, 0, []byte{0x11})
	r := make([]byte, 1)
	h.Load(1, 0, r)
	if r[0] != 0x11 {
		t.Fatalf("core 1 read %#x, want 0x11", r[0])
	}
	// Core 1 overwrites; core 0's copy must be invalidated so a subsequent
	// core-0 read returns the new value.
	h.Store(1, 0, []byte{0x22})
	h.Load(0, 0, r)
	if r[0] != 0x22 {
		t.Fatalf("core 0 read %#x, want 0x22", r[0])
	}
	if h.Stats().Invalidations == 0 {
		t.Fatal("no coherence invalidations recorded")
	}
	if err := h.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiCoreDirtinessSurvivesInvalidation(t *testing.T) {
	cfg := tiny()
	cfg.Cores = 2
	h, im := newPair(t, cfg, 1<<16)
	h.Store(0, 0, []byte{0x33}) // dirty in core 0's L1
	h.Store(1, 0, []byte{0x44}) // invalidates core 0's copy; dirtiness must not be lost
	h.WriteBackAll()
	if im.Bytes(0, 1)[0] != 0x44 {
		t.Fatalf("durable value %#x, want 0x44", im.Bytes(0, 1)[0])
	}
}

func TestOccupancy(t *testing.T) {
	h, _ := newPair(t, tiny(), 1<<16)
	h.Store(0, 0, []byte{1})
	occ := h.Occupancy()
	if occ["L1"][0] != 1 || occ["L1"][1] != 1 {
		t.Fatalf("L1 occupancy %v, want [1 1]", occ["L1"])
	}
	if occ["L3"][0] != 1 {
		t.Fatalf("L3 occupancy %v, want 1 valid (inclusion)", occ["L3"])
	}
}

func TestSingleLevelHierarchy(t *testing.T) {
	cfg := Config{Name: "llc-only", Cores: 1, Levels: []LevelConfig{{Name: "LLC", Size: 1024, Ways: 2}}}
	h, im := newPair(t, cfg, 1<<16)
	h.Store(0, 0, []byte{0x55})
	r := make([]byte, 1)
	h.Load(0, 0, r)
	if r[0] != 0x55 {
		t.Fatal("single-level read-your-write failed")
	}
	h.Flush(0, 1, CLFLUSH)
	if im.Bytes(0, 1)[0] != 0x55 {
		t.Fatal("single-level flush did not persist")
	}
}

// referenceMemory executes the same access trace against a flat byte array
// to check value correctness of the hierarchy under arbitrary interleavings.
type traceOp struct {
	Addr  uint16
	Val   uint8
	Store bool
	Flush bool
}

func TestQuickValueCoherenceVsFlatMemory(t *testing.T) {
	f := func(ops []traceOp) bool {
		h, _ := newPair(t, tiny(), 1<<16)
		ref := make([]byte, 1<<16)
		buf := make([]byte, 1)
		for _, op := range ops {
			a := uint64(op.Addr)
			switch {
			case op.Flush:
				h.Flush(a, 1, CLFLUSHOPT)
			case op.Store:
				buf[0] = op.Val
				h.Store(0, a, buf)
				ref[a] = op.Val
			default:
				h.Load(0, a, buf)
				if buf[0] != ref[a] {
					return false
				}
			}
		}
		// Architectural view must equal the reference at every touched spot.
		got := make([]byte, 1)
		for _, op := range ops {
			h.ArchValue(uint64(op.Addr), got)
			if got[0] != ref[op.Addr] {
				return false
			}
		}
		return h.CheckInclusion() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: after WriteBackAll the durable image equals the architectural
// state over the touched range, and DirtyBytesIn is zero everywhere.
func TestQuickDrainMakesDurableEqualArch(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h, im := newPair(t, tiny(), 1<<16)
		span := uint64(4096)
		for i := 0; i < int(n)+8; i++ {
			a := uint64(rng.Intn(int(span - 8)))
			var w [8]byte
			binary.LittleEndian.PutUint64(w[:], rng.Uint64())
			if rng.Intn(2) == 0 {
				h.Store(0, a, w[:])
			} else {
				h.Load(0, a, w[:])
			}
		}
		arch := make([]byte, span)
		h.ArchValue(0, arch)
		h.WriteBackAll()
		if h.DirtyBytesIn(0, span) != 0 {
			return false
		}
		return bytes.Equal(arch, im.Bytes(0, span))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: flushing a range persists exactly that range's architectural
// bytes; untouched dirty blocks elsewhere stay volatile.
func TestQuickSelectiveFlushIsSelective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, im := newPair(t, tiny(), 1<<16)
		// Two disjoint objects.
		objA, objB := uint64(0), uint64(8192)
		for i := 0; i < 50; i++ {
			var w [8]byte
			binary.LittleEndian.PutUint64(w[:], rng.Uint64())
			h.Store(0, objA+uint64(rng.Intn(56)), w[:])
			binary.LittleEndian.PutUint64(w[:], rng.Uint64())
			h.Store(0, objB+uint64(rng.Intn(56)), w[:])
		}
		archA := make([]byte, 64)
		h.ArchValue(objA, archA)
		h.Flush(objA, 64, CLWB)
		if !bytes.Equal(archA, im.Bytes(objA, 64)) {
			return false // flushed object must be durable
		}
		return h.DirtyBytesIn(objB, 64) > 0 // unflushed object still volatile
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: inclusion invariant holds under random mixed traffic with
// multiple cores.
func TestQuickInclusionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := tiny()
		cfg.Cores = 2
		h, _ := newPair(t, cfg, 1<<16)
		buf := make([]byte, 8)
		for i := 0; i < 500; i++ {
			a := uint64(rng.Intn(1 << 14))
			core := rng.Intn(2)
			switch rng.Intn(4) {
			case 0:
				h.Store(core, a, buf)
			case 1:
				h.Load(core, a, buf)
			case 2:
				h.Flush(a, 8, CLFLUSHOPT)
			case 3:
				h.Flush(a, 8, CLWB)
			}
		}
		return h.CheckInclusion() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWritebacksCounter(t *testing.T) {
	h, im := newPair(t, tiny(), 1<<20)
	for i := 0; i < 64; i++ {
		h.Store(0, uint64(i)*64, []byte{1})
	}
	h.Flush(0, 64, CLWB) // likely non-resident by now, but count ops either way
	h.WriteBackAll()
	s := h.Stats()
	if s.Writebacks() != s.EvictionWritebacks+s.DirtyFlushes+s.DrainWritebacks {
		t.Fatal("Writebacks() identity violated")
	}
	if uint64(im.BlockWrites()) != s.Writebacks() {
		t.Fatalf("image writes %d != hierarchy writebacks %d", im.BlockWrites(), s.Writebacks())
	}
}

func TestReplacementString(t *testing.T) {
	for r, want := range map[Replacement]string{LRU: "lru", FIFO: "fifo", Random: "random", Replacement(9): "Replacement(9)"} {
		if got := r.String(); got != want {
			t.Errorf("Replacement(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestFIFOIgnoresReuse(t *testing.T) {
	cfg := Config{Name: "fifo", Cores: 1, Replace: FIFO,
		Levels: []LevelConfig{{Name: "L1", Size: 128, Ways: 2}}}
	h, _ := newPair(t, cfg, 1<<16)
	buf := make([]byte, 1)
	h.Load(0, 0, buf)   // block 0 inserted first
	h.Load(0, 64, buf)  // block 1
	h.Load(0, 0, buf)   // reuse block 0: FIFO must NOT refresh it
	h.Load(0, 128, buf) // block 2 evicts block 0 (oldest insertion)
	m := h.Stats().Misses[0]
	h.Load(0, 0, buf) // must miss under FIFO (and re-inserts block 0)
	if h.Stats().Misses[0] != m+1 {
		t.Fatal("FIFO refreshed a way on reuse (behaved like LRU)")
	}
	hits := h.Stats().Hits[0]
	h.Load(0, 128, buf) // block 2 is younger than evicted block 1: resident
	if h.Stats().Hits[0] != hits+1 {
		t.Fatal("FIFO evicted the younger block")
	}
}

func TestRandomReplacementIsDeterministicAndCorrect(t *testing.T) {
	cfg := tiny()
	cfg.Replace = Random
	run := func() (Stats, []byte) {
		h, im := newPair(t, cfg, 1<<16)
		for i := 0; i < 200; i++ {
			h.Store(0, uint64((i*97)%8192), []byte{byte(i)})
		}
		if err := h.CheckInclusion(); err != nil {
			t.Fatal(err)
		}
		h.WriteBackAll()
		return h.Stats(), im.Snapshot()
	}
	s1, m1 := run()
	s2, m2 := run()
	if s1.EvictionWritebacks != s2.EvictionWritebacks {
		t.Fatal("random replacement not deterministic across runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("random replacement produced different durable state")
	}
}

func TestReplacementPoliciesPreserveValues(t *testing.T) {
	// Whatever the eviction order, values must be preserved end to end.
	for _, rp := range []Replacement{LRU, FIFO, Random} {
		cfg := tiny()
		cfg.Replace = rp
		h, im := newPair(t, cfg, 1<<20)
		for i := 0; i < 256; i++ {
			h.Store(0, uint64(i)*64, []byte{byte(i + 1)})
		}
		h.WriteBackAll()
		for i := 0; i < 256; i++ {
			if got := im.Bytes(uint64(i)*64, 1)[0]; got != byte(i+1) {
				t.Fatalf("%v: block %d durable value %#x", rp, i, got)
			}
		}
	}
}
