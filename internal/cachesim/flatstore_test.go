package cachesim

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"easycrash/internal/mem"
)

// recordingBacking wraps a Backing and records the block base address of
// every media write, in order. Embedding hides the image's optional Size and
// Poisoned methods, so it also exercises the unsized-backing growth path.
type recordingBacking struct {
	Backing
	writes []uint64
}

func (r *recordingBacking) WriteBlock(addr uint64, src []byte) {
	r.writes = append(r.writes, addr)
	r.Backing.WriteBlock(addr, src)
}

// The drain order is observable through the backing's write hook (tear
// targets, wear recording), so WriteBackAll must issue media writes in
// ascending block order — the map-ordered drain this regression test would
// have caught varied run to run.
func TestWriteBackAllDrainsAscendingBlockOrder(t *testing.T) {
	rb := &recordingBacking{Backing: mem.NewImage(1 << 16)}
	h := New(tiny(), rb)
	// Dirty blocks in scrambled order, fewer than the 16-line LLC holds so
	// no eviction write-back interleaves with the drain.
	blks := []uint64{9, 2, 13, 5, 0, 11, 7}
	for _, blk := range blks {
		h.Store(0, blk*BlockSize, []byte{byte(blk + 1)})
	}
	rb.writes = rb.writes[:0]
	if n := h.WriteBackAll(); int(n) != len(blks) {
		t.Fatalf("drained %d blocks, want %d", n, len(blks))
	}
	want := []uint64{0, 2, 5, 7, 9, 11, 13}
	if len(rb.writes) != len(want) {
		t.Fatalf("recorded %d media writes, want %d", len(rb.writes), len(want))
	}
	for i, addr := range rb.writes {
		if addr != want[i]*BlockSize {
			t.Fatalf("media write %d hit block %d, want %d (drain not ascending: %v)",
				i, addr/BlockSize, want[i], rb.writes)
		}
	}
}

// A reset hierarchy over a reset image must be indistinguishable from a
// fresh pair: same stats, same durable state, same free-list accounting.
// Random replacement stresses the rng rewind.
func TestHierarchyResetMatchesFresh(t *testing.T) {
	cfg := tiny()
	cfg.Replace = Random
	run := func(h *Hierarchy, im *mem.Image) (Stats, []byte) {
		rng := rand.New(rand.NewSource(7))
		var w [8]byte
		for i := 0; i < 400; i++ {
			a := uint64(rng.Intn(1 << 13))
			binary.LittleEndian.PutUint64(w[:], rng.Uint64())
			switch rng.Intn(3) {
			case 0:
				h.Store(0, a, w[:])
			case 1:
				h.Load(0, a, w[:])
			case 2:
				h.Flush(a, 8, CLWB)
			}
		}
		h.WriteBackAll()
		if err := h.CheckInclusion(); err != nil {
			t.Fatal(err)
		}
		return h.Stats(), im.Snapshot()
	}
	h1, im1 := newPair(t, cfg, 1<<16)
	wantStats, wantImage := run(h1, im1)

	h2, im2 := newPair(t, cfg, 1<<16)
	// Unrelated dirty traffic, then reset both layers.
	for i := 0; i < 64; i++ {
		h2.Store(0, uint64(i)*BlockSize, []byte{0xFF})
	}
	im2.Reset()
	h2.Reset()
	if res, dirty := h2.ResidentBlocks(); res != 0 || dirty != 0 {
		t.Fatalf("reset hierarchy still holds %d resident (%d dirty) blocks", res, dirty)
	}
	gotStats, gotImage := run(h2, im2)
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("stats after reset differ:\n got  %+v\n want %+v", gotStats, wantStats)
	}
	if !bytes.Equal(gotImage, wantImage) {
		t.Fatal("durable state after reset differs from a fresh hierarchy")
	}
}

// Postmortem helpers must survive poisoned backing blocks instead of
// escaping with the image's media-error panic: a dirty cached block over
// poisoned media counts as fully inconsistent, and a non-resident poisoned
// block's bytes are lost and read as zero.
func TestPostmortemHelpersArePoisonAware(t *testing.T) {
	im := mem.NewImage(1 << 16)
	h := New(tiny(), im)
	h.Store(0, 0, []byte{1, 2, 3, 4})
	im.PoisonBlock(0)
	if got := h.DirtyBytesIn(0, BlockSize); got != BlockSize {
		t.Fatalf("DirtyBytesIn over poisoned dirty block = %d, want %d", got, BlockSize)
	}
	if got := h.DirtyBytesIn(8, 16); got != 16 {
		t.Fatalf("DirtyBytesIn(8,16) over poisoned dirty block = %d, want 16", got)
	}
	// The cached value is intact; ArchValue serves it without touching media.
	buf := make([]byte, 4)
	h.ArchValue(0, buf)
	if !bytes.Equal(buf, []byte{1, 2, 3, 4}) {
		t.Fatalf("ArchValue of resident poisoned block = %v", buf)
	}
	// Non-resident poisoned block: no durable or cached copy exists.
	im.RawWrite(4096, []byte{9, 9})
	im.PoisonBlock(4096)
	lost := []byte{7, 7}
	h.ArchValue(4096, lost)
	if lost[0] != 0 || lost[1] != 0 {
		t.Fatalf("ArchValue of lost block = %v, want zeros", lost)
	}
	if got := h.DirtyBytesIn(4096, BlockSize); got != 0 {
		t.Fatalf("DirtyBytesIn over non-resident block = %d, want 0", got)
	}
}

// DropAll must recycle every arena slot so crash-heavy campaigns run
// allocation-free: fill past LLC capacity, crash, refill, and keep the
// slot accounting intact throughout.
func TestDropAllRecyclesArenaSlots(t *testing.T) {
	h, _ := newPair(t, tiny(), 1<<20)
	for round := 0; round < 3; round++ {
		for i := 0; i < 64; i++ {
			h.Store(0, uint64(i)*BlockSize, []byte{byte(round)})
		}
		if err := h.CheckInclusion(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		h.DropAll()
		if res, _ := h.ResidentBlocks(); res != 0 {
			t.Fatalf("round %d: %d blocks resident after DropAll", round, res)
		}
		if err := h.CheckInclusion(); err != nil {
			t.Fatalf("round %d after DropAll: %v", round, err)
		}
	}
}
