package cachesim

// Snapshot is a compact copy of a hierarchy's full volatile state: every tag
// array (tags, state flags, recency ticks, replacement RNG), the recency
// clock, the statistics, and the values of the resident blocks. It
// deliberately does NOT copy the block-number-indexed slot table
// (NVM-capacity / 64 entries — megabytes for a realistic image): a block's
// arena slot IS its LLC way slot, so the restored LLC tag array enumerates
// every (block, slot) pair and ResumeFrom replays those into a freshly
// Reset table instead.
//
// A Snapshot is immutable once taken and safe to restore into any hierarchy
// with the same configuration, concurrently with other restores of the same
// snapshot elsewhere.
type Snapshot struct {
	name  string // config name, used to reject geometry mismatches
	tick  uint64
	stats Stats

	// Concatenated per-cache arrays in fixed iteration order: each core's
	// private levels innermost-first, then the shared LLC.
	tags  []uint64
	state []uint8
	lru   []uint64
	rngs  []uint64

	// Resident block values in valid-LLC-line order (ascending way slot).
	data []byte
}

// eachCache visits every tag array in the fixed snapshot order.
func (h *Hierarchy) eachCache(fn func(c *cache)) {
	for c := range h.priv {
		for _, pc := range h.priv[c] {
			fn(pc)
		}
	}
	fn(h.llc)
}

// Snapshot captures the hierarchy's volatile state. The backing image is not
// captured — pair this with a mem.Image fork taken at the same instant.
func (h *Hierarchy) Snapshot() *Snapshot {
	s := &Snapshot{name: h.cfg.Name, tick: h.tick, stats: h.Stats()}
	total := 0
	h.eachCache(func(c *cache) { total += len(c.tags) })
	s.tags = make([]uint64, 0, total)
	s.state = make([]uint8, 0, total)
	s.lru = make([]uint64, 0, total)
	s.rngs = make([]uint64, 0, h.cfg.Cores*h.npriv+1)
	h.eachCache(func(c *cache) {
		s.tags = append(s.tags, c.tags...)
		s.state = append(s.state, c.state...)
		s.lru = append(s.lru, c.lru...)
		s.rngs = append(s.rngs, c.rng)
	})
	resident, _ := h.llc.countValid()
	s.data = make([]byte, 0, resident*BlockSize)
	for i, st := range h.llc.state {
		if st&stValid != 0 {
			s.data = append(s.data, h.dataAt(int32(i))[:]...)
		}
	}
	return s
}

// ResumeFrom restores a snapshot into the hierarchy, which must be freshly
// Reset (or just constructed) and share the snapshot's configuration. After
// the call the hierarchy is state-identical to the one the snapshot was taken
// from: same residency, same recency order, same statistics — so a
// subsequent access sequence behaves identically, write order included.
// Panics on a dirty target or a geometry mismatch (both are programming
// errors in the campaign engine).
func (h *Hierarchy) ResumeFrom(s *Snapshot) {
	if h.cfg.Name != s.name {
		panic("cachesim: ResumeFrom across configurations: " + h.cfg.Name + " vs " + s.name)
	}
	if v, _ := h.llc.countValid(); v != 0 {
		panic("cachesim: ResumeFrom requires a freshly Reset hierarchy")
	}
	off, nrng := 0, 0
	h.eachCache(func(c *cache) {
		n := len(c.tags)
		copy(c.tags, s.tags[off:off+n])
		copy(c.state, s.state[off:off+n])
		copy(c.lru, s.lru[off:off+n])
		c.rng = s.rngs[nrng]
		c.recount()
		nrng++
		off += n
	})
	if off != len(s.tags) {
		panic("cachesim: ResumeFrom geometry mismatch despite matching config name")
	}
	n := 0
	for i, st := range h.llc.state {
		if st&stValid == 0 {
			continue
		}
		blk := h.llc.tags[i]
		h.growSlots(blk + 1)
		h.slots[blk] = int32(i)
		copy(h.dataAt(int32(i))[:], s.data[n*BlockSize:(n+1)*BlockSize])
		n++
	}
	h.tick = s.tick

	hits, misses := h.stats.Hits, h.stats.Misses
	h.stats = s.stats
	copy(hits, s.stats.Hits)
	copy(misses, s.stats.Misses)
	h.stats.Hits, h.stats.Misses = hits, misses
}
