package cachesim

// Snapshot is a compact copy of a hierarchy's full volatile state: every tag
// array (tags, state flags, recency ticks, replacement RNG), the free-slot
// stack (whose order is determinism-load-bearing — it decides which arena
// slot the next fill claims), the recency clock, the statistics, and the
// values of the resident blocks. It deliberately does NOT copy the
// block-number-indexed slot table (NVM-capacity / 64 entries — megabytes for
// a realistic image): residency is LLC-bounded by inclusion, so the valid LLC
// lines enumerate every (block, slot) pair, and ResumeFrom replays those into
// a freshly Reset table instead.
//
// A Snapshot is immutable once taken and safe to restore into any hierarchy
// with the same configuration, concurrently with other restores of the same
// snapshot elsewhere.
type Snapshot struct {
	name string // config name, used to reject geometry mismatches
	tick uint64
	stats Stats

	// Concatenated per-cache arrays in fixed iteration order: each core's
	// private levels innermost-first, then the shared LLC.
	tags  []uint64
	state []uint8
	lru   []uint64
	rngs  []uint64

	freeSlots []int32

	// Resident block values, harvested from the valid LLC lines: block
	// number, the arena slot it occupied, and its BlockSize bytes of data.
	blks    []uint64
	slotIDs []int32
	data    []byte
}

// eachCache visits every tag array in the fixed snapshot order.
func (h *Hierarchy) eachCache(fn func(c *cache)) {
	for c := range h.priv {
		for _, pc := range h.priv[c] {
			fn(pc)
		}
	}
	fn(h.llc)
}

// Snapshot captures the hierarchy's volatile state. The backing image is not
// captured — pair this with a mem.Image fork taken at the same instant.
func (h *Hierarchy) Snapshot() *Snapshot {
	s := &Snapshot{name: h.cfg.Name, tick: h.tick, stats: h.Stats()}
	total := 0
	h.eachCache(func(c *cache) { total += len(c.tags) })
	s.tags = make([]uint64, 0, total)
	s.state = make([]uint8, 0, total)
	s.lru = make([]uint64, 0, total)
	s.rngs = make([]uint64, 0, h.cfg.Cores*h.npriv+1)
	h.eachCache(func(c *cache) {
		s.tags = append(s.tags, c.tags...)
		s.state = append(s.state, c.state...)
		s.lru = append(s.lru, c.lru...)
		s.rngs = append(s.rngs, c.rng)
	})
	s.freeSlots = append([]int32(nil), h.freeSlots...)

	resident := h.llcLines - len(h.freeSlots)
	s.blks = make([]uint64, 0, resident)
	s.slotIDs = make([]int32, 0, resident)
	s.data = make([]byte, 0, resident*BlockSize)
	for i, st := range h.llc.state {
		if st&stValid != 0 {
			blk := h.llc.tags[i]
			slot := h.slots[blk]
			s.blks = append(s.blks, blk)
			s.slotIDs = append(s.slotIDs, slot)
			s.data = append(s.data, h.dataAt(slot)[:]...)
		}
	}
	return s
}

// ResumeFrom restores a snapshot into the hierarchy, which must be freshly
// Reset (or just constructed) and share the snapshot's configuration. After
// the call the hierarchy is state-identical to the one the snapshot was taken
// from: same residency, same recency order, same free-slot order, same
// statistics — so a subsequent access sequence behaves identically, write
// order included. Panics on a dirty target or a geometry mismatch (both are
// programming errors in the campaign engine).
func (h *Hierarchy) ResumeFrom(s *Snapshot) {
	if h.cfg.Name != s.name {
		panic("cachesim: ResumeFrom across configurations: " + h.cfg.Name + " vs " + s.name)
	}
	if len(h.freeSlots) != h.llcLines {
		panic("cachesim: ResumeFrom requires a freshly Reset hierarchy")
	}
	off, nrng := 0, 0
	h.eachCache(func(c *cache) {
		n := len(c.tags)
		copy(c.tags, s.tags[off:off+n])
		copy(c.state, s.state[off:off+n])
		copy(c.lru, s.lru[off:off+n])
		c.rng = s.rngs[nrng]
		nrng++
		off += n
	})
	if off != len(s.tags) {
		panic("cachesim: ResumeFrom geometry mismatch despite matching config name")
	}
	h.freeSlots = append(h.freeSlots[:0], s.freeSlots...)
	for i, blk := range s.blks {
		h.growSlots(blk + 1)
		h.slots[blk] = s.slotIDs[i]
		copy(h.dataAt(s.slotIDs[i])[:], s.data[i*BlockSize:(i+1)*BlockSize])
	}
	h.tick = s.tick

	hits, misses := h.stats.Hits, h.stats.Misses
	h.stats = s.stats
	copy(hits, s.stats.Hits)
	copy(misses, s.stats.Misses)
	h.stats.Hits, h.stats.Misses = hits, misses
}
