// Package faultmodel implements a deterministic, seed-driven NVM media-fault
// layer for the crash tester. The paper (and the rest of this reproduction)
// treats the NVM image as perfectly intact after a crash: only volatile cache
// contents are lost. Real persistent memory fails in more ways than that:
//
//   - torn writes: the cache block being written back or flushed when power
//     fails can land partially, at the 8-byte atomic-write granularity x86
//     guarantees — the surviving block interleaves old and new words
//     (the failure surface WITCHER-style crash-consistency checkers probe);
//   - raw bit errors: media cells flip with a raw bit-error rate (RBER),
//     so a crash surfaces accumulated cell errors in the surviving image;
//   - ECC: the memory controller protects each block with an error-correcting
//     code, turning raw errors into one of three outcomes — corrected
//     (data intact), detected-uncorrectable (the block reads as poisoned and
//     raises a machine-check analogue), or silent corruption (errors beyond
//     the detection capability pass through unnoticed).
//
// An Injector is attached to one simulated machine for one crash test. It
// observes every media write through the image's write hook (so it knows
// which block was in flight when the crash fired) and mutates the image once,
// at crash time, via ApplyCrash. All randomness comes from the injector's own
// seeded source, so fault campaigns are reproducible independent of test
// scheduling. The zero Config is provably inert: Enabled() is false and no
// injector is attached at all.
package faultmodel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"easycrash/internal/mem"
)

// WordSize is the atomic-write granularity in bytes: 8-byte aligned stores
// are guaranteed power-fail atomic on x86 NVM platforms, so torn writes
// interleave old and new content at this granularity.
const WordSize = 8

// ECC models the per-cache-block error-correcting code of the memory
// controller. The zero value disables ECC: every raw bit error passes
// through as silent corruption.
type ECC struct {
	// CorrectBits is the number of raw bit errors per block the code
	// corrects (outcome: data intact).
	CorrectBits int
	// DetectBits is the number of raw bit errors per block the code
	// detects; errors in (CorrectBits, DetectBits] poison the block
	// (detected-uncorrectable), errors above DetectBits corrupt silently.
	DetectBits int
}

// Enabled reports whether any protection is configured.
func (e ECC) Enabled() bool { return e.CorrectBits > 0 || e.DetectBits > 0 }

// SECDED returns the per-block analogue of the classic single-error-correct,
// double-error-detect code: correct 1 bit, detect 2.
func SECDED() ECC { return ECC{CorrectBits: 1, DetectBits: 2} }

// Config describes the media-fault model for one campaign. The zero value
// injects nothing.
type Config struct {
	// RBER is the raw bit-error rate: the per-bit probability that a cell
	// of the surviving image is flipped at crash time.
	RBER float64
	// TornWrites tears the block being written back or flushed when the
	// crash fires, interleaving old and new 8-byte words.
	TornWrites bool
	// ECC is the per-block protection applied to raw bit errors.
	ECC ECC
}

// Enabled reports whether the configuration injects any faults.
func (c Config) Enabled() bool { return c.RBER > 0 || c.TornWrites }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.RBER < 0 || c.RBER > 1 {
		return fmt.Errorf("faultmodel: RBER %v outside [0,1]", c.RBER)
	}
	if c.ECC.CorrectBits < 0 || c.ECC.DetectBits < 0 {
		return fmt.Errorf("faultmodel: negative ECC capability %+v", c.ECC)
	}
	if c.ECC.Enabled() && c.ECC.DetectBits < c.ECC.CorrectBits {
		return fmt.Errorf("faultmodel: ECC detects %d bits but corrects %d", c.ECC.DetectBits, c.ECC.CorrectBits)
	}
	return nil
}

// Injection summarises the faults one crash injected into the image.
type Injection struct {
	// TornWords counts 8-byte words of the in-flight block that reverted
	// to their pre-write content (only words that actually differed).
	TornWords int
	// CorrectedBlocks counts blocks whose raw errors ECC corrected.
	CorrectedBlocks int
	// PoisonedBlocks counts detected-uncorrectable blocks: their data is
	// lost and any read raises a media error.
	PoisonedBlocks int
	// SilentBlocks counts blocks corrupted beyond ECC detection (or with
	// ECC disabled): their flipped bits survive unnoticed.
	SilentBlocks int
	// FlippedBits counts the raw bit errors actually applied to the image
	// (errors in corrected or poisoned blocks are not applied).
	FlippedBits int
}

// Any reports whether the injection changed or poisoned anything.
func (i Injection) Any() bool {
	return i.TornWords > 0 || i.PoisonedBlocks > 0 || i.SilentBlocks > 0
}

// Injector injects media faults into one machine's image at crash time.
// It is not safe for concurrent use; each crash test owns one injector.
type Injector struct {
	cfg Config
	rng *rand.Rand

	writeSeq uint64 // media writes observed so far

	// Most recent media write (candidate torn-write target).
	lastBase uint64
	lastOld  [mem.BlockSize]byte
	hasLast  bool

	// Armed tear target, snapshotted when the crash fires.
	tearBase  uint64
	tearOld   [mem.BlockSize]byte
	tearArmed bool
}

// New returns an injector for one crash test. The seed fully determines the
// injected faults, so campaigns replay identically for a given seed.
func New(cfg Config, seed int64) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// ObserveWrite is the mem.WriteHook the owning machine installs: it records
// the most recent block write so ApplyCrash knows which block was in flight.
// old aliases the image; the injector copies what it needs.
func (in *Injector) ObserveWrite(base uint64, old, new []byte) {
	in.writeSeq++
	if !in.cfg.TornWrites {
		return
	}
	in.lastBase = base
	copy(in.lastOld[:], old)
	in.hasLast = true
}

// WriteSeq returns the number of media writes observed so far. The machine
// compares it across crash-clock ticks to decide whether a write was in
// flight when the crash fired.
func (in *Injector) WriteSeq() uint64 { return in.writeSeq }

// ArmTear marks the most recently observed media write as in flight at the
// crash; ApplyCrash will tear it. Called by the machine at the instant the
// crash fires, before any post-crash writes can overwrite the target.
func (in *Injector) ArmTear() {
	if !in.hasLast {
		return
	}
	in.tearBase = in.lastBase
	in.tearOld = in.lastOld
	in.tearArmed = true
}

// InFlight identifies the media write that was in flight when a crash fired:
// the block base and its pre-write content, the torn-write target ApplyCrash
// reverts word by word. It is a plain value — recorded once on a reference
// execution, it can arm any trial's injector via ReplayCrash.
type InFlight struct {
	Base uint64
	Old  [mem.BlockSize]byte
}

// Recorder observes media writes without injecting anything: it keeps the
// same in-flight-write window an Injector keeps (most recent write and its
// pre-write content), but owns no RNG and never mutates the image. The
// prefix-sharing campaign engine attaches one to the shared reference
// execution; at each fork point the recorded InFlight is replayed into every
// trial's own injector via ReplayCrash, so trial injectors observe nothing
// during the shared prefix and stay byte-identical to their live-engine
// counterparts (which observed every write themselves but only consume RNG at
// ApplyCrash).
type Recorder struct {
	writeSeq uint64
	last     InFlight
}

// ObserveWrite is the mem.WriteHook the reference machine installs. Unlike
// Injector.ObserveWrite it always records the pre-write content: the recorder
// serves trials with any fault configuration, and storing 64 bytes per media
// write costs less than branching on one.
func (r *Recorder) ObserveWrite(base uint64, old, new []byte) {
	r.writeSeq++
	r.last.Base = base
	copy(r.last.Old[:], old)
}

// WriteSeq returns the number of media writes observed so far; the machine
// compares it across crash-clock ticks exactly as it does an injector's.
func (r *Recorder) WriteSeq() uint64 { return r.writeSeq }

// Last returns the most recently observed media write.
func (r *Recorder) Last() InFlight { return r.last }

// ReplayCrash applies the injector's crash-time faults to an image using a
// recorded in-flight write instead of the injector's own observation window:
// the tear target is armed from inflight (nil = no write was in flight) and
// the faults are drawn from the injector's seeded source exactly as
// ApplyCrash draws them. An injector that observed the same execution live
// arms the same target — the live window (lastBase/lastOld) tracks the most
// recent media write, which is what the recorder hands over — and consumes
// RNG only here, so replayed and live injections are byte-identical.
func (in *Injector) ReplayCrash(img *mem.Image, extent uint64, inflight *InFlight) Injection {
	if inflight != nil && in.cfg.TornWrites {
		in.tearBase = inflight.Base
		in.tearOld = inflight.Old
		in.tearArmed = true
	}
	return in.ApplyCrash(img, extent)
}

// ApplyCrash mutates the image the way the media fails at power loss: tears
// the armed in-flight block, then applies RBER bit flips filtered through
// the per-block ECC model. extent bounds the bit-flip region to the
// allocated part of the image (raw errors in never-used capacity cannot
// affect the application). It returns a summary of what was injected.
func (in *Injector) ApplyCrash(img *mem.Image, extent uint64) Injection {
	var rep Injection

	// (a) Torn write: each 8-byte word of the in-flight block independently
	// either reached the media or kept its old content.
	if in.tearArmed {
		var cur [mem.BlockSize]byte
		img.ReadBlock(in.tearBase, cur[:])
		for w := 0; w < mem.BlockSize/WordSize; w++ {
			lo := w * WordSize
			if in.rng.Intn(2) == 0 {
				continue // this word reached the media
			}
			old := in.tearOld[lo : lo+WordSize]
			if !bytesEqual(cur[lo:lo+WordSize], old) {
				rep.TornWords++
			}
			copy(cur[lo:lo+WordSize], old)
		}
		//eclint:allow directmem — fault injection writes beneath the cache model by design
		img.RawWrite(in.tearBase, cur[:])
		in.tearArmed = false
	}

	// (b) Raw bit errors over the surviving image, (c) filtered per block
	// through ECC.
	if in.cfg.RBER > 0 && extent > 0 {
		if extent > img.Size() {
			extent = img.Size()
		}
		nbits := float64(extent) * 8
		flips := make(map[uint64][]int) // block base -> bit offsets in block
		for k := in.poisson(in.cfg.RBER * nbits); k > 0; k-- {
			bit := uint64(in.rng.Int63n(int64(extent) * 8))
			base := (bit / 8) &^ (mem.BlockSize - 1)
			flips[base] = append(flips[base], int(bit-base*8))
		}
		bases := make([]uint64, 0, len(flips))
		//eclint:allow campaigndet — key collection, sorted below
		for b := range flips {
			bases = append(bases, b)
		}
		sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
		for _, base := range bases {
			n := len(flips[base])
			switch {
			case in.cfg.ECC.Enabled() && n <= in.cfg.ECC.CorrectBits:
				rep.CorrectedBlocks++
			case in.cfg.ECC.Enabled() && n <= in.cfg.ECC.DetectBits:
				img.PoisonBlock(base)
				rep.PoisonedBlocks++
			default:
				var blk [mem.BlockSize]byte
				img.ReadBlock(base, blk[:])
				for _, b := range flips[base] {
					blk[b/8] ^= 1 << (b % 8)
				}
				//eclint:allow directmem — silent bit flips corrupt the medium itself, not cached state
				img.RawWrite(base, blk[:])
				rep.SilentBlocks++
				rep.FlippedBits += n
			}
		}
	}
	return rep
}

// poisson draws from Poisson(lambda) using the injector's own source:
// Knuth's product method for small lambda, a normal approximation above.
func (in *Injector) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		k := int(math.Round(lambda + math.Sqrt(lambda)*in.rng.NormFloat64()))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= in.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func bytesEqual(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
