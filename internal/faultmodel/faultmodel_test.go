package faultmodel

import (
	"bytes"
	"testing"

	"easycrash/internal/mem"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{RBER: -0.1},
		{RBER: 1.5},
		{ECC: ECC{CorrectBits: -1}},
		{ECC: ECC{CorrectBits: 2, DetectBits: -3}},
		{ECC: ECC{CorrectBits: 3, DetectBits: 1}},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	good := []Config{
		{},
		{RBER: 1e-4, TornWrites: true},
		{RBER: 1, ECC: SECDED()},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", c, err)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero Config enabled")
	}
	if (Config{ECC: SECDED()}).Enabled() {
		t.Fatal("ECC alone (no error source) should not enable injection")
	}
	if !(Config{TornWrites: true}).Enabled() || !(Config{RBER: 1e-9}).Enabled() {
		t.Fatal("torn writes / RBER should enable injection")
	}
	if got := SECDED(); got.CorrectBits != 1 || got.DetectBits != 2 || !got.Enabled() {
		t.Fatalf("SECDED() = %+v", got)
	}
}

// fillImage writes a recognisable pattern directly into every byte.
func fillImage(img *mem.Image) {
	buf := make([]byte, img.Size())
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	img.RawWrite(0, buf)
}

func TestZeroConfigInert(t *testing.T) {
	img := mem.NewImage(4 * mem.BlockSize)
	fillImage(img)
	before := img.Snapshot()

	in := New(Config{}, 42)
	// Observe a write as the machine would, then crash.
	blk := make([]byte, mem.BlockSize)
	img.SetWriteHook(in.ObserveWrite)
	img.WriteBlock(0, blk)
	in.ArmTear() // no torn writes configured: must be a no-op
	rep := in.ApplyCrash(img, img.Size())
	if rep.Any() || rep != (Injection{}) {
		t.Fatalf("zero config injected %+v", rep)
	}
	after := img.Snapshot()
	// Only the observed WriteBlock itself changed the image.
	copy(before[:mem.BlockSize], blk)
	if !bytes.Equal(before, after) {
		t.Fatal("zero config mutated the image at crash time")
	}
}

func TestTornWriteInterleavesWords(t *testing.T) {
	img := mem.NewImage(2 * mem.BlockSize)
	oldBlk := make([]byte, mem.BlockSize)
	newBlk := make([]byte, mem.BlockSize)
	for i := range oldBlk {
		oldBlk[i] = 0x11
		newBlk[i] = 0xEE
	}
	img.RawWrite(mem.BlockSize, oldBlk)

	in := New(Config{TornWrites: true}, 3)
	img.SetWriteHook(in.ObserveWrite)
	img.WriteBlock(mem.BlockSize, newBlk)
	in.ArmTear()
	rep := in.ApplyCrash(img, img.Size())

	got := make([]byte, mem.BlockSize)
	img.ReadBlock(mem.BlockSize, got)
	reverted := 0
	for w := 0; w < mem.BlockSize/WordSize; w++ {
		word := got[w*WordSize : (w+1)*WordSize]
		switch {
		case bytes.Equal(word, oldBlk[:WordSize]):
			reverted++
		case bytes.Equal(word, newBlk[:WordSize]):
		default:
			t.Fatalf("word %d is neither old nor new: % x", w, word)
		}
	}
	if rep.TornWords != reverted {
		t.Fatalf("TornWords = %d, image shows %d reverted words", rep.TornWords, reverted)
	}
	// Untouched block survives.
	img.ReadBlock(0, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("tear leaked into a neighbouring block")
		}
	}
}

func TestTornWriteOnlyCountsChangedWords(t *testing.T) {
	// Writing identical content: tearing it must not count torn words.
	img := mem.NewImage(mem.BlockSize)
	blk := make([]byte, mem.BlockSize)
	for i := range blk {
		blk[i] = 0x5A
	}
	img.RawWrite(0, blk)
	in := New(Config{TornWrites: true}, 9)
	img.SetWriteHook(in.ObserveWrite)
	img.WriteBlock(0, blk)
	in.ArmTear()
	if rep := in.ApplyCrash(img, img.Size()); rep.TornWords != 0 {
		t.Fatalf("identical rewrite reported %d torn words", rep.TornWords)
	}
}

func TestECCOutcomes(t *testing.T) {
	// One block, RBER high enough that the block collects many raw errors;
	// the ECC capability then decides the outcome class.
	cases := []struct {
		name string
		ecc  ECC
		want func(Injection, *mem.Image) error
	}{
		{"off-silent", ECC{}, nil},
		{"huge-correct", ECC{CorrectBits: 1 << 20, DetectBits: 1 << 20}, nil},
		{"detect-poison", ECC{CorrectBits: 0, DetectBits: 1 << 20}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := mem.NewImage(mem.BlockSize)
			fillImage(img)
			before := img.Snapshot()
			in := New(Config{RBER: 0.25, ECC: tc.ecc}, 11)
			rep := in.ApplyCrash(img, img.Size())
			switch tc.name {
			case "off-silent":
				if rep.SilentBlocks != 1 || rep.FlippedBits == 0 {
					t.Fatalf("ECC off: %+v", rep)
				}
				if bytes.Equal(before, img.Snapshot()) {
					t.Fatal("silent corruption left the image unchanged")
				}
			case "huge-correct":
				if rep.CorrectedBlocks != 1 || rep.SilentBlocks != 0 || rep.PoisonedBlocks != 0 {
					t.Fatalf("corrected: %+v", rep)
				}
				if !bytes.Equal(before, img.Snapshot()) {
					t.Fatal("corrected errors mutated the image")
				}
			case "detect-poison":
				if rep.PoisonedBlocks != 1 || rep.SilentBlocks != 0 {
					t.Fatalf("poisoned: %+v", rep)
				}
				if !img.Poisoned(0) {
					t.Fatal("block not poisoned")
				}
				if !bytes.Equal(before, img.Snapshot()) {
					t.Fatal("poisoned block's data should be left as-is (it is unreadable, not rewritten)")
				}
			}
		})
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func(seed int64) ([]byte, Injection) {
		img := mem.NewImage(8 * mem.BlockSize)
		fillImage(img)
		in := New(Config{RBER: 0.01, TornWrites: true, ECC: SECDED()}, seed)
		img.SetWriteHook(in.ObserveWrite)
		blk := make([]byte, mem.BlockSize)
		img.WriteBlock(3*mem.BlockSize, blk)
		in.ArmTear()
		rep := in.ApplyCrash(img, img.Size())
		return img.Snapshot(), rep
	}
	img1, rep1 := run(77)
	img2, rep2 := run(77)
	if rep1 != rep2 || !bytes.Equal(img1, img2) {
		t.Fatal("same seed produced different injections")
	}
	img3, rep3 := run(78)
	if rep1 == rep3 && bytes.Equal(img1, img3) {
		t.Fatal("different seeds produced identical injections")
	}
}

func TestPoissonMatchesMean(t *testing.T) {
	in := New(Config{}, 5)
	for _, lambda := range []float64{0.5, 4, 25, 200} {
		const n = 2000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(in.poisson(lambda))
		}
		got := sum / n
		if got < lambda*0.85 || got > lambda*1.15 {
			t.Errorf("poisson(%v) mean %v over %d draws", lambda, got, n)
		}
	}
	if in.poisson(0) != 0 || in.poisson(-1) != 0 {
		t.Error("non-positive lambda should draw 0")
	}
}

func TestRecorderWindow(t *testing.T) {
	rec := &Recorder{}
	if rec.WriteSeq() != 0 {
		t.Fatalf("fresh recorder WriteSeq = %d", rec.WriteSeq())
	}
	old := make([]byte, mem.BlockSize)
	old[3] = 0xAB
	rec.ObserveWrite(2*mem.BlockSize, old, nil)
	old[3] = 0xCD // the recorder must have copied, not aliased
	rec.ObserveWrite(5*mem.BlockSize, old, nil)
	if rec.WriteSeq() != 2 {
		t.Fatalf("WriteSeq = %d after two writes", rec.WriteSeq())
	}
	last := rec.Last()
	if last.Base != 5*mem.BlockSize || last.Old[3] != 0xCD {
		t.Fatalf("Last() = base %#x old[3]=%#x", last.Base, last.Old[3])
	}
}

// TestReplayCrashTearGate: ReplayCrash arms a tear only when the trial's
// config tears writes AND a write was actually in flight — the same two
// conditions the live machine's crash-time arming checks.
func TestReplayCrashTearGate(t *testing.T) {
	const size = 4 * mem.BlockSize
	pristine := mem.NewImage(size)
	fillImage(pristine)
	want := pristine.Bytes(0, size)

	inflight := &InFlight{Base: mem.BlockSize}
	// Pre-write content differs from the image in every word, so an armed
	// tear reverts (on average) half the words — seed 3 tears at least one.
	for i := range inflight.Old {
		inflight.Old[i] = 0xFF
	}

	// Torn writes disabled: the in-flight record must be ignored.
	img := mem.NewImage(size)
	fillImage(img)
	if rep := New(Config{RBER: 0}, 3).ReplayCrash(img, size, inflight); rep.Any() {
		t.Fatalf("inert config injected %+v", rep)
	}
	if !bytes.Equal(img.Bytes(0, size), want) {
		t.Fatal("inert replay mutated the image")
	}

	// Torn writes enabled but no write in flight: nothing to tear.
	img = mem.NewImage(size)
	fillImage(img)
	if rep := New(Config{TornWrites: true}, 3).ReplayCrash(img, size, nil); rep.Any() {
		t.Fatalf("no write in flight, yet injected %+v", rep)
	}
	if !bytes.Equal(img.Bytes(0, size), want) {
		t.Fatal("tear without an in-flight write mutated the image")
	}

	// Both conditions hold: the in-flight block tears, nothing else changes.
	img = mem.NewImage(size)
	fillImage(img)
	rep := New(Config{TornWrites: true}, 3).ReplayCrash(img, size, inflight)
	if rep.TornWords == 0 {
		t.Fatalf("armed tear reverted no words: %+v", rep)
	}
	got := img.Bytes(0, size)
	if bytes.Equal(got[mem.BlockSize:2*mem.BlockSize], want[mem.BlockSize:2*mem.BlockSize]) {
		t.Fatal("in-flight block unchanged despite torn words")
	}
	if !bytes.Equal(got[:mem.BlockSize], want[:mem.BlockSize]) ||
		!bytes.Equal(got[2*mem.BlockSize:], want[2*mem.BlockSize:]) {
		t.Fatal("tear leaked outside the in-flight block")
	}
}
