package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"easycrash/internal/faultmodel"
	"easycrash/internal/nvct"
)

// OracleFlags bundles the campaign-runner flags for the crash-consistency
// oracle and the evidence-first reporting built on it: single-trial repro,
// stable JSON export, and the CI-oriented violation gates.
type OracleFlags struct {
	// Repro is a campaign trial index to re-run in isolation (-1: run the
	// whole campaign). The trial is re-derived from the campaign seed, so
	// its crash chain and oracle verdict reproduce the campaign's record.
	Repro int
	// JSONPath writes the stable report serialization to a file ("-": stdout).
	JSONPath string
	// FailOnViolations exits nonzero when the oracle charged any violation —
	// the gate a correct-store CI job runs behind.
	FailOnViolations bool
	// ExpectViolations exits nonzero when the oracle charged NO violation —
	// the gate proving a deliberately buggy store is actually caught.
	ExpectViolations bool
}

// RegisterOracleFlags registers the oracle/reporting flags on fs.
func RegisterOracleFlags(fs *flag.FlagSet) *OracleFlags {
	f := &OracleFlags{}
	fs.IntVar(&f.Repro, "repro", -1, "re-run one campaign trial by index and print its postmortem (-1: full campaign)")
	fs.StringVar(&f.JSONPath, "json", "", "write the stable JSON report to this file (\"-\": stdout)")
	fs.BoolVar(&f.FailOnViolations, "fail-on-violations", false, "exit nonzero if the oracle charged any consistency violation")
	fs.BoolVar(&f.ExpectViolations, "expect-violations", false, "exit nonzero if the oracle charged no consistency violation (buggy-variant CI gate)")
	return f
}

// Validate rejects contradictory gates.
func (f *OracleFlags) Validate() error {
	if f.FailOnViolations && f.ExpectViolations {
		return fmt.Errorf("cli: -fail-on-violations and -expect-violations are mutually exclusive")
	}
	return nil
}

// WriteReport writes the report's stable JSON serialization to the -json
// target; a no-op when the flag was not given.
func (f *OracleFlags) WriteReport(rep *nvct.Report) error {
	if f.JSONPath == "" {
		return nil
	}
	if f.JSONPath == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	// The report is evidence: create the artifact directory it targets rather
	// than losing a partial campaign to a missing-directory error at exit.
	if dir := filepath.Dir(f.JSONPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(f.JSONPath, b, 0o644)
}

// CheckViolations applies the violation gates to the campaign's outcome
// counts, returning the error the caller should exit nonzero on.
func (f *OracleFlags) CheckViolations(rep *nvct.Report) error {
	n := rep.Counts[nvct.SViol]
	if f.FailOnViolations && n > 0 {
		return fmt.Errorf("cli: oracle charged %d consistency violation(s)", n)
	}
	if f.ExpectViolations && n == 0 {
		return fmt.Errorf("cli: oracle charged no consistency violation in %d trials", len(rep.Tests))
	}
	return nil
}

// PrintTrial renders one trial's postmortem: the crash (or the whole crash
// chain of a nested trial), the media damage, and the oracle verdict. It is
// the output of nvct -repro.
func PrintTrial(w io.Writer, index int, tr nvct.TestResult) {
	fmt.Fprintf(w, "trial %d: %s\n", index, tr.Outcome)
	if len(tr.Chain) > 0 {
		for lvl, c := range tr.Chain {
			fmt.Fprintf(w, "  crash %d: access %d, region %d, iteration %d%s\n",
				lvl, c.Access, c.Region, c.Iter, describeMedia(c.Media))
		}
		fmt.Fprintf(w, "  chain depth %d, %d recovery attempt(s)\n", tr.Depth, tr.Retries)
	} else {
		fmt.Fprintf(w, "  crash: access %d, region %d, iteration %d%s\n",
			tr.CrashAccess, tr.CrashRegion, tr.CrashIter, describeMedia(tr.Media))
	}
	if tr.ScrubbedObjects > 0 {
		fmt.Fprintf(w, "  scrubbed %d poisoned object(s) on restart\n", tr.ScrubbedObjects)
	}
	if tr.ExtraIters > 0 {
		fmt.Fprintf(w, "  %d extra iteration(s) recomputed\n", tr.ExtraIters)
	}
	if tr.Err != "" {
		fmt.Fprintf(w, "  detected failure: %s\n", tr.Err)
	}
	switch {
	case len(tr.Violations) > 0:
		fmt.Fprintf(w, "  oracle verdict: %d consistency violation(s)\n", len(tr.Violations))
		for _, v := range tr.Violations {
			fmt.Fprintf(w, "    %s\n", v)
		}
	case tr.Outcome == nvct.SViol:
		fmt.Fprintln(w, "  oracle verdict: violation (none itemised)")
	default:
		fmt.Fprintln(w, "  oracle verdict: clean")
	}
}

// describeMedia renders a media-fault injection summary, or nothing for a
// clean power loss.
func describeMedia(m faultmodel.Injection) string {
	if m == (faultmodel.Injection{}) {
		return ""
	}
	return fmt.Sprintf(" [media: %d torn words, %d corrected, %d poisoned, %d silent blocks, %d bits flipped]",
		m.TornWords, m.CorrectedBlocks, m.PoisonedBlocks, m.SilentBlocks, m.FlippedBits)
}
