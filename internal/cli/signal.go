package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled on SIGINT or SIGTERM — the
// graceful-cancel contract every campaign binary shares: in-flight work
// aborts promptly, partial results are still reported, and a second signal
// kills the process the default way once the caller invokes stop (or
// immediately, if the caller deferred it and is already unwinding). Callers
// must call stop to restore default signal behaviour.
func SignalContext() (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
