package cli

import (
	"flag"
	"fmt"
	"time"

	"easycrash/internal/faultmodel"
)

// FaultFlags bundles the media-fault flags (-rber, -torn, -ecc and, for the
// extended set, -ecc-detect, -scrub, -timeout) that cmd/nvct and
// cmd/easycrash share, so both binaries register, validate and default them
// identically.
type FaultFlags struct {
	RBER      float64
	Torn      bool
	ECC       int
	ECCDetect int
	Scrub     bool
	Timeout   time.Duration

	extended bool
}

// RegisterFaultFlags registers the shared media-fault flags on fs. With
// extended, the campaign-runner extras (-ecc-detect, -scrub, -timeout) are
// registered too; without it DetectBits is always derived as CorrectBits+1.
func RegisterFaultFlags(fs *flag.FlagSet, extended bool) *FaultFlags {
	f := &FaultFlags{extended: extended}
	fs.Float64Var(&f.RBER, "rber", 0, "raw bit-error rate injected into the surviving image at each crash [0,1]")
	fs.BoolVar(&f.Torn, "torn", false, "tear the in-flight block at crash time (8-byte old/new interleave)")
	if extended {
		fs.IntVar(&f.ECC, "ecc", 0, "per-block ECC correction capability in bits (0: ECC off)")
		fs.IntVar(&f.ECCDetect, "ecc-detect", 0, "per-block ECC detection capability in bits (0 with -ecc > 0: correct+1)")
		fs.BoolVar(&f.Scrub, "scrub", false, "scrub-and-fallback restart: re-initialise poisoned objects instead of aborting")
		fs.DurationVar(&f.Timeout, "timeout", 0, "per-test deadline (0: none); an exceeded test is recorded as ERR")
	} else {
		fs.IntVar(&f.ECC, "ecc", 0, "per-block ECC correction capability in bits (detect = correct+1; 0: ECC off)")
	}
	return f
}

// Config validates the parsed flags and assembles the fault-model
// configuration, defaulting DetectBits to CorrectBits+1 when only the
// correction capability was given.
func (f *FaultFlags) Config() (faultmodel.Config, error) {
	if f.Timeout < 0 {
		return faultmodel.Config{}, fmt.Errorf("cli: -timeout must be >= 0, got %v", f.Timeout)
	}
	cfg := faultmodel.Config{RBER: f.RBER, TornWrites: f.Torn}
	if f.ECC > 0 || f.ECCDetect > 0 {
		cfg.ECC = faultmodel.ECC{CorrectBits: f.ECC, DetectBits: f.ECCDetect}
		if cfg.ECC.DetectBits == 0 {
			cfg.ECC.DetectBits = cfg.ECC.CorrectBits + 1
		}
	}
	if err := cfg.Validate(); err != nil {
		return faultmodel.Config{}, err
	}
	return cfg, nil
}
