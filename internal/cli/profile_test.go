package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileFlagsDisabledIsNoOp(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterProfileFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileFlagsWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterProfileFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestProfileFlagsBadPath(t *testing.T) {
	f := &ProfileFlags{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")}
	if _, err := f.Start(); err == nil {
		t.Fatal("Start with unwritable -cpuprofile path did not fail")
	}
}
