// Package cli holds the small helpers the command-line tools share:
// profile/cache-geometry selection, persistence-policy construction from
// flag strings, and human-readable size formatting.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/nvct"
)

// ParseProfile maps a flag value to a problem-size profile.
func ParseProfile(s string) (apps.Profile, error) {
	switch s {
	case "", "test":
		return apps.ProfileTest, nil
	case "bench":
		return apps.ProfileBench, nil
	}
	return 0, fmt.Errorf("cli: unknown profile %q (want test or bench)", s)
}

// ParseCache maps a flag value to a cache geometry.
func ParseCache(s string) (cachesim.Config, error) {
	switch s {
	case "", "test":
		return cachesim.TestConfig(), nil
	case "paper":
		return cachesim.PaperConfig(), nil
	}
	return cachesim.Config{}, fmt.Errorf("cli: unknown cache %q (want test or paper)", s)
}

// BuildPolicy constructs a persistence policy from flag strings: persist is
// a comma-separated object list (empty means the iterator-only baseline),
// regions an optional comma-separated region-id list, everyIt adds
// iteration-end flushes, freq is the persistence period.
func BuildPolicy(persist, regions string, everyIt bool, freq int64) (*nvct.Policy, error) {
	if persist == "" {
		return nil, nil
	}
	p := &nvct.Policy{Objects: splitTrim(persist), Frequency: freq, Op: cachesim.CLFLUSHOPT}
	if regions == "" {
		p.AtIterationEnd = true
		return p, nil
	}
	for _, r := range splitTrim(regions) {
		id, err := strconv.Atoi(r)
		if err != nil {
			return nil, fmt.Errorf("cli: bad region id %q", r)
		}
		p.AtRegionEnds = append(p.AtRegionEnds, id)
	}
	p.AtIterationEnd = everyIt
	return p, nil
}

func splitTrim(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// DescribePolicy renders a policy for humans.
func DescribePolicy(p *nvct.Policy, verified bool) string {
	var s string
	freq := int64(1)
	if p != nil && p.Frequency > 1 {
		freq = p.Frequency
	}
	switch {
	case p == nil:
		s = "iterator-only baseline"
	case len(p.AtRegionEnds) > 0:
		s = fmt.Sprintf("persist %v at regions %v every %d iteration(s)", p.Objects, p.AtRegionEnds, freq)
	default:
		s = fmt.Sprintf("persist %v at iteration ends every %d iteration(s)", p.Objects, freq)
	}
	if verified {
		s += ", verified variant"
	}
	return s
}

// Size formats a byte count with binary units.
func Size(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
