package cli_test

import (
	"flag"
	"io"
	"strings"
	"testing"
	"time"

	"easycrash/internal/cli"
)

func TestNestedFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    cli.NestedFlags
		wantErr string
	}{
		{
			name: "zero value is the classic campaign",
			want: cli.NestedFlags{},
		},
		{
			name: "all three pass through",
			args: []string{"-recrash-depth", "2", "-retry-budget", "3", "-trial-deadline", "2m"},
			want: cli.NestedFlags{Depth: 2, Budget: 3, Deadline: 2 * time.Minute},
		},
		{
			name: "depth alone defaults the rest",
			args: []string{"-recrash-depth", "1"},
			want: cli.NestedFlags{Depth: 1},
		},
		{
			name:    "negative depth rejected",
			args:    []string{"-recrash-depth", "-1"},
			wantErr: "-recrash-depth must be >= 0",
		},
		{
			name:    "negative budget rejected",
			args:    []string{"-recrash-depth", "1", "-retry-budget", "-2"},
			wantErr: "-retry-budget must be >= 0",
		},
		{
			name:    "negative deadline rejected",
			args:    []string{"-recrash-depth", "1", "-trial-deadline", "-5s"},
			wantErr: "-trial-deadline must be >= 0",
		},
		{
			name:    "budget without depth rejected",
			args:    []string{"-retry-budget", "3"},
			wantErr: "need -recrash-depth > 0",
		},
		{
			name:    "deadline without depth rejected",
			args:    []string{"-trial-deadline", "1m"},
			wantErr: "need -recrash-depth > 0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			f := cli.RegisterNestedFlags(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("parsing %q: %v", tc.args, err)
			}
			err := f.Validate()
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if *f != tc.want {
				t.Errorf("flags = %+v, want %+v", *f, tc.want)
			}
		})
	}
}
