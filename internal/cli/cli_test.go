package cli

import (
	"strings"
	"testing"

	"easycrash/internal/apps"
)

func TestParseProfile(t *testing.T) {
	for s, want := range map[string]apps.Profile{"": apps.ProfileTest, "test": apps.ProfileTest, "bench": apps.ProfileBench} {
		got, err := ParseProfile(s)
		if err != nil || got != want {
			t.Errorf("ParseProfile(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseProfile("huge"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestParseCache(t *testing.T) {
	c, err := ParseCache("paper")
	if err != nil || c.Name != "xeon-gold-6126" {
		t.Fatalf("ParseCache(paper) = %v, %v", c.Name, err)
	}
	c, err = ParseCache("")
	if err != nil || c.Name != "test" {
		t.Fatalf("ParseCache('') = %v, %v", c.Name, err)
	}
	if _, err := ParseCache("l4"); err == nil {
		t.Fatal("unknown cache accepted")
	}
}

func TestBuildPolicy(t *testing.T) {
	p, err := BuildPolicy("", "", false, 1)
	if err != nil || p != nil {
		t.Fatalf("empty persist: %v, %v", p, err)
	}
	p, err = BuildPolicy("u, r", "", false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.AtIterationEnd || len(p.Objects) != 2 || p.Objects[1] != "r" || p.Frequency != 2 {
		t.Fatalf("policy = %+v", p)
	}
	p, err = BuildPolicy("u", "1,3", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.AtRegionEnds) != 2 || p.AtRegionEnds[1] != 3 || !p.AtIterationEnd {
		t.Fatalf("policy = %+v", p)
	}
	if _, err := BuildPolicy("u", "1,x", false, 1); err == nil {
		t.Fatal("bad region id accepted")
	}
}

func TestDescribePolicy(t *testing.T) {
	if got := DescribePolicy(nil, false); got != "iterator-only baseline" {
		t.Fatalf("nil policy: %q", got)
	}
	p, _ := BuildPolicy("u", "2", false, 4)
	if got := DescribePolicy(p, true); !strings.Contains(got, "regions [2]") || !strings.Contains(got, "every 4") || !strings.Contains(got, "verified") {
		t.Fatalf("described: %q", got)
	}
	q, _ := BuildPolicy("u", "", false, 1)
	if got := DescribePolicy(q, false); !strings.Contains(got, "iteration ends") {
		t.Fatalf("described: %q", got)
	}
}

func TestSize(t *testing.T) {
	for b, want := range map[uint64]string{
		12:        "12B",
		2048:      "2.0KiB",
		3 << 20:   "3.0MiB",
		1536:      "1.5KiB",
		1<<20 - 1: "1024.0KiB",
	} {
		if got := Size(b); got != want {
			t.Errorf("Size(%d) = %q, want %q", b, got, want)
		}
	}
}
