package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileFlags bundles the pprof flags (-cpuprofile, -memprofile) that
// cmd/nvct and cmd/easycrash share, so campaign hot spots can be profiled
// with the standard toolchain (`go tool pprof`).
type ProfileFlags struct {
	CPU string
	Mem string
}

// RegisterProfileFlags registers the shared profiling flags on fs.
func RegisterProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	f := &ProfileFlags{}
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file at exit")
	return f
}

// Start begins any requested profiling and returns the stop function that
// finalises the profiles; callers must run it before exiting, including on
// error paths. With neither flag set it is a no-op returning a nil-error
// stop.
func (f *ProfileFlags) Start() (stop func() error, err error) {
	var cpu *os.File
	if f.CPU != "" {
		cpu, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("cli: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("cli: -cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("cli: -cpuprofile: %w", err)
			}
		}
		if f.Mem != "" {
			mf, err := os.Create(f.Mem)
			if err != nil {
				return fmt.Errorf("cli: -memprofile: %w", err)
			}
			defer mf.Close()
			runtime.GC() // materialise up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(mf); err != nil {
				return fmt.Errorf("cli: -memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
