package cli_test

import (
	"flag"
	"io"
	"strings"
	"testing"
	"time"

	"easycrash/internal/cli"
	"easycrash/internal/faultmodel"
)

// parse registers the fault flags on a fresh FlagSet, parses args, and
// builds the config.
func parse(t *testing.T, extended bool, args ...string) (faultmodel.Config, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := cli.RegisterFaultFlags(fs, extended)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parsing %q: %v", args, err)
	}
	return f.Config()
}

func TestFaultFlags(t *testing.T) {
	cases := []struct {
		name     string
		extended bool
		args     []string
		want     faultmodel.Config
		wantErr  string
	}{
		{
			name: "zero value injects nothing",
			want: faultmodel.Config{},
		},
		{
			name: "rber and torn pass through",
			args: []string{"-rber", "1e-5", "-torn"},
			want: faultmodel.Config{RBER: 1e-5, TornWrites: true},
		},
		{
			name: "ecc defaults detect to correct+1",
			args: []string{"-ecc", "2"},
			want: faultmodel.Config{ECC: faultmodel.ECC{CorrectBits: 2, DetectBits: 3}},
		},
		{
			name:     "explicit detect capability",
			extended: true,
			args:     []string{"-ecc", "1", "-ecc-detect", "4"},
			want:     faultmodel.Config{ECC: faultmodel.ECC{CorrectBits: 1, DetectBits: 4}},
		},
		{
			name:     "detect-only ECC poisons without correcting",
			extended: true,
			args:     []string{"-ecc-detect", "2"},
			want:     faultmodel.Config{ECC: faultmodel.ECC{DetectBits: 2}},
		},
		{
			name:     "timeout is not part of the fault model",
			extended: true,
			args:     []string{"-timeout", "30s", "-scrub"},
			want:     faultmodel.Config{},
		},
		{
			name:    "rber above one rejected",
			args:    []string{"-rber", "1.5"},
			wantErr: "outside [0,1]",
		},
		{
			name:    "negative rber rejected",
			args:    []string{"-rber", "-0.1"},
			wantErr: "outside [0,1]",
		},
		{
			name:     "detect below correct rejected",
			extended: true,
			args:     []string{"-ecc", "3", "-ecc-detect", "2"},
			wantErr:  "detects 2 bits but corrects 3",
		},
		{
			name:     "negative timeout rejected",
			extended: true,
			args:     []string{"-timeout", "-1s"},
			wantErr:  "-timeout must be >= 0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parse(t, tc.extended, tc.args...)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if got != tc.want {
				t.Errorf("config = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestExtendedOnlyFlags checks the extras exist only in the extended set.
func TestExtendedOnlyFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cli.RegisterFaultFlags(fs, false)
	for _, name := range []string{"ecc-detect", "scrub", "timeout"} {
		if fs.Lookup(name) != nil {
			t.Errorf("basic flag set unexpectedly registers -%s", name)
		}
	}
	for _, name := range []string{"rber", "torn", "ecc"} {
		if fs.Lookup(name) == nil {
			t.Errorf("basic flag set missing -%s", name)
		}
	}
}

// TestFlagFieldsBound checks parsed values land in the exported fields the
// commands read (Scrub, Timeout).
func TestFlagFieldsBound(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := cli.RegisterFaultFlags(fs, true)
	if err := fs.Parse([]string{"-scrub", "-timeout", "45s"}); err != nil {
		t.Fatal(err)
	}
	if !f.Scrub {
		t.Error("Scrub not bound to -scrub")
	}
	if f.Timeout != 45*time.Second {
		t.Errorf("Timeout = %v, want 45s", f.Timeout)
	}
}
