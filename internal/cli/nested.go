package cli

import (
	"flag"
	"fmt"
	"time"
)

// NestedFlags bundles the nested-failure campaign flags (-recrash-depth,
// -retry-budget, -trial-deadline) that cmd/nvct and cmd/easycrash share, so
// both binaries register, validate and default them identically.
type NestedFlags struct {
	Depth    int
	Budget   int
	Deadline time.Duration
}

// RegisterNestedFlags registers the shared nested-failure flags on fs.
func RegisterNestedFlags(fs *flag.FlagSet) *NestedFlags {
	f := &NestedFlags{}
	fs.IntVar(&f.Depth, "recrash-depth", 0, "max additional crashes during recovery per trial (0: classic single-crash campaign)")
	fs.IntVar(&f.Budget, "retry-budget", 0, "max recovery attempts per trial (0: recrash-depth+1)")
	fs.DurationVar(&f.Deadline, "trial-deadline", 0, "wall-clock bound on one trial's whole crash chain (0: none)")
	return f
}

// Validate checks the parsed flags for consistency before they are handed to
// the campaign engine (which re-validates; failing here gives flag-level
// messages instead).
func (f *NestedFlags) Validate() error {
	if f.Depth < 0 {
		return fmt.Errorf("cli: -recrash-depth must be >= 0, got %d", f.Depth)
	}
	if f.Budget < 0 {
		return fmt.Errorf("cli: -retry-budget must be >= 0, got %d", f.Budget)
	}
	if f.Deadline < 0 {
		return fmt.Errorf("cli: -trial-deadline must be >= 0, got %v", f.Deadline)
	}
	if f.Depth == 0 && (f.Budget > 0 || f.Deadline > 0) {
		return fmt.Errorf("cli: -retry-budget/-trial-deadline need -recrash-depth > 0")
	}
	return nil
}
