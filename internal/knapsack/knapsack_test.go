package knapsack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func weightOf(items []Item, chosen []int) float64 {
	var w float64
	for _, i := range chosen {
		w += items[i].Weight
	}
	return w
}

func valueOf(items []Item, chosen []int) float64 {
	var v float64
	for _, i := range chosen {
		v += items[i].Value
	}
	return v
}

func TestSolveBasic(t *testing.T) {
	items := []Item{
		{Weight: 1, Value: 6},
		{Weight: 2, Value: 10},
		{Weight: 3, Value: 12},
	}
	chosen, total := Solve(items, 5)
	if total != 22 {
		t.Fatalf("total = %v, want 22", total)
	}
	if len(chosen) != 2 || chosen[0] != 1 || chosen[1] != 2 {
		t.Fatalf("chosen = %v, want [1 2]", chosen)
	}
}

func TestSolveEmptyAndZeroCapacity(t *testing.T) {
	if chosen, total := Solve(nil, 10); len(chosen) != 0 || total != 0 {
		t.Fatal("empty items should choose nothing")
	}
	items := []Item{{Weight: 1, Value: 5}}
	if chosen, _ := Solve(items, 0); len(chosen) != 0 {
		t.Fatalf("zero capacity chose %v", chosen)
	}
	if chosen, _ := Solve(items, -3); len(chosen) != 0 {
		t.Fatalf("negative capacity chose %v", chosen)
	}
}

func TestSolveFreeItemsAlwaysTaken(t *testing.T) {
	items := []Item{
		{Weight: 0, Value: 4},
		{Weight: 10, Value: 100}, // over capacity
		{Weight: 1, Value: 2},
	}
	chosen, total := Solve(items, 2)
	if total != 6 {
		t.Fatalf("total = %v, want 6", total)
	}
	if len(chosen) != 2 || chosen[0] != 0 || chosen[1] != 2 {
		t.Fatalf("chosen = %v, want [0 2]", chosen)
	}
}

func TestSolveZeroValueItemsIgnored(t *testing.T) {
	items := []Item{{Weight: 1, Value: 0}, {Weight: 1, Value: 3}}
	chosen, total := Solve(items, 5)
	if total != 3 || len(chosen) != 1 || chosen[0] != 1 {
		t.Fatalf("chosen = %v total = %v", chosen, total)
	}
}

func TestSolveSingleItemExactFit(t *testing.T) {
	chosen, total := Solve([]Item{{Weight: 5, Value: 9}}, 5)
	if total != 9 || len(chosen) != 1 {
		t.Fatalf("exact-fit item not taken: %v %v", chosen, total)
	}
}

// bruteForce enumerates all subsets (n <= ~15) for the exact optimum.
func bruteForce(items []Item, capacity float64) float64 {
	n := len(items)
	var best float64
	for mask := 0; mask < 1<<n; mask++ {
		var w, v float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				w += items[i].Weight
				v += items[i].Value
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}
	return best
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Weight: float64(rng.Intn(20)) / 4,
				Value:  float64(rng.Intn(50)) / 3,
			}
		}
		capacity := float64(rng.Intn(40)) / 4
		chosen, total := Solve(items, capacity)
		if w := weightOf(items, chosen); w > capacity+1e-9 {
			t.Fatalf("trial %d: weight %v exceeds capacity %v", trial, w, capacity)
		}
		want := bruteForce(items, capacity)
		// n <= 10 takes the exact enumeration path, so this must match.
		if total < want-1e-9 {
			t.Fatalf("trial %d: total %v < brute force %v", trial, total, want)
		}
	}
}

// Property: the solution never exceeds capacity, reported total matches the
// chosen set, and indices are unique, sorted, valid.
func TestQuickSolveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Weight: rng.Float64() * 3, Value: rng.Float64() * 10}
		}
		capacity := rng.Float64() * 5
		chosen, total := Solve(items, capacity)
		// The DP fallback (n > 18) may overshoot by the documented
		// discretisation bound; the exact path may not overshoot at all.
		slack := 1e-9
		if n > 18 {
			slack += capacity * float64(n) / Resolution
		}
		if weightOf(items, chosen) > capacity+slack {
			return false
		}
		if v := valueOf(items, chosen); v < total-1e-9 || v > total+1e-9 {
			return false
		}
		for i := 1; i < len(chosen); i++ {
			if chosen[i] <= chosen[i-1] {
				return false
			}
		}
		for _, i := range chosen {
			if i < 0 || i >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding capacity never decreases the optimum (monotonicity).
func TestQuickSolveMonotoneInCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Weight: rng.Float64() * 2, Value: rng.Float64() * 8}
		}
		c1 := rng.Float64() * 3
		c2 := c1 + rng.Float64()*2
		_, t1 := Solve(items, c1)
		_, t2 := Solve(items, c2)
		return t2 >= t1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDPPathLargeInstance(t *testing.T) {
	// 30 weighted items forces the DP fallback; compare against a greedy
	// lower bound and check the capacity bound.
	rng := rand.New(rand.NewSource(3))
	items := make([]Item, 30)
	for i := range items {
		items[i] = Item{Weight: 0.1 + rng.Float64(), Value: rng.Float64() * 5}
	}
	capacity := 4.0
	chosen, total := Solve(items, capacity)
	if len(chosen) == 0 {
		t.Fatal("DP chose nothing")
	}
	slack := capacity * float64(len(items)) / Resolution
	if w := weightOf(items, chosen); w > capacity+slack {
		t.Fatalf("weight %v exceeds capacity %v (+%v)", w, capacity, slack)
	}
	if v := valueOf(items, chosen); v != total {
		t.Fatalf("reported total %v != chosen value %v", total, v)
	}
	// Sanity: DP must beat taking only the single best item.
	var bestSingle float64
	for _, it := range items {
		if it.Weight <= capacity && it.Value > bestSingle {
			bestSingle = it.Value
		}
	}
	if total < bestSingle {
		t.Fatalf("DP total %v worse than best single item %v", total, bestSingle)
	}
}
