// Package knapsack implements the 0-1 knapsack solver EasyCrash uses to
// select critical code regions (§5.2): items are code regions, weights are
// their persistence-induced performance losses, values are their
// recomputability gains, and the capacity is the runtime-overhead budget t_s.
//
// HPC applications have few code regions (the paper's benchmarks have 1-16),
// so the solver is exact for small instances via subset enumeration; larger
// instances fall back to the classic pseudo-polynomial dynamic program on
// discretised weights, whose solution may exceed the capacity by at most
// capacity*n/Resolution — negligible against the noise in measured overheads.
package knapsack

// Item is one candidate (a code region in EasyCrash's use).
type Item struct {
	Weight float64 // cost against the capacity, >= 0
	Value  float64 // benefit, >= 0
}

// Resolution is the number of discrete weight buckets the fallback DP uses.
const Resolution = 10000

// exactLimit is the largest number of weighted items solved by enumeration.
const exactLimit = 18

// Solve returns the subset of items (by index, ascending) maximising total
// value subject to total weight <= capacity, and the achieved total value.
// Items with weight > capacity are never taken; items with non-positive
// weight and positive value are always taken.
func Solve(items []Item, capacity float64) (chosen []int, total float64) {
	if capacity < 0 {
		capacity = 0
	}
	// Zero/negative-weight items are free: take any with positive value.
	var free []int
	var cand []int
	for i, it := range items {
		switch {
		case it.Weight <= 0:
			if it.Value > 0 {
				free = append(free, i)
				total += it.Value
			}
		case it.Weight <= capacity && it.Value > 0:
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 || capacity == 0 {
		return free, total
	}

	var picked []int
	var best float64
	if len(cand) <= exactLimit {
		picked, best = solveExact(items, cand, capacity)
	} else {
		picked, best = solveDP(items, cand, capacity)
	}
	total += best
	chosen = append(chosen, free...)
	chosen = append(chosen, picked...)
	sortInts(chosen)
	return chosen, total
}

// solveExact enumerates all subsets of cand. Exact and fast for n <= 18.
func solveExact(items []Item, cand []int, capacity float64) ([]int, float64) {
	n := len(cand)
	var bestMask int
	var bestVal float64
	for mask := 1; mask < 1<<n; mask++ {
		var w, v float64
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				w += items[cand[b]].Weight
				if w > capacity {
					break
				}
				v += items[cand[b]].Value
			}
		}
		if w <= capacity && v > bestVal {
			bestVal, bestMask = v, mask
		}
	}
	var picked []int
	for b := 0; b < n; b++ {
		if bestMask&(1<<b) != 0 {
			picked = append(picked, cand[b])
		}
	}
	return picked, bestVal
}

// solveDP runs the classic 0-1 knapsack DP on weights discretised to
// Resolution buckets (round to nearest), O(n*Resolution).
func solveDP(items []Item, cand []int, capacity float64) ([]int, float64) {
	scale := float64(Resolution) / capacity
	w := make([]int, len(cand))
	for j, i := range cand {
		w[j] = int(items[i].Weight*scale + 0.5)
		if w[j] < 1 {
			w[j] = 1
		}
	}
	const cap1 = Resolution + 1
	best := make([]float64, cap1)
	take := make([]bool, len(cand)*cap1)
	for j, i := range cand {
		v := items[i].Value
		for c := Resolution; c >= w[j]; c-- {
			if candVal := best[c-w[j]] + v; candVal > best[c] {
				best[c] = candVal
				take[j*cap1+c] = true
			}
		}
	}
	c := Resolution
	var picked []int
	for j := len(cand) - 1; j >= 0; j-- {
		if take[j*cap1+c] {
			picked = append(picked, cand[j])
			c -= w[j]
		}
	}
	return picked, best[Resolution]
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
