// Campaign sharding: run a round-robin slice of one campaign's trials in
// isolation and merge the slices back into the exact single-process report.
//
// A campaign's per-trial state (crash point, fault seed, trial seed) is drawn
// serially from the campaign seed before any trial runs (planCampaign), and
// trials are independent — so any subset of trial indices can execute in a
// separate process against the same plan and produce records identical to the
// full campaign's. Shards slice the index space round-robin (index i belongs
// to shard i mod Count), each shard runs through the same engine selection as
// a whole campaign (one reference prefix run per shard on the snapshot-tree
// engine), and MergeShards reassembles the records in campaign order. The
// merged report is byte-identical to RunCampaignContext's — the seed-replay
// digest pins hold across shard counts — which is what makes a supervised
// multi-process runner (internal/campaignd) trustworthy: supervision can
// retry and reshuffle work without ever changing results.
package nvct

import (
	"context"
	"fmt"
)

// Shard identifies one round-robin slice of a campaign: trial index i belongs
// to shard i mod Count. The zero value is invalid; use Shard{0, 1} for the
// whole campaign.
type Shard struct {
	// Index is this shard's number, in [0, Count).
	Index int
	// Count is the total number of shards the campaign is split into.
	Count int
}

// Validate checks the shard coordinates.
func (s Shard) Validate() error {
	if s.Count <= 0 {
		return fmt.Errorf("nvct: shard count %d, want >= 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("nvct: shard index %d outside [0, %d)", s.Index, s.Count)
	}
	return nil
}

// Indices returns the campaign trial indices belonging to this shard, in
// ascending order, for a campaign of the given size.
func (s Shard) Indices(tests int) []int {
	var out []int
	for i := s.Index; i < tests; i += s.Count {
		out = append(out, i)
	}
	return out
}

// ShardTrial is one completed trial of a shard run, tagged with its global
// campaign index so merging is unambiguous.
type ShardTrial struct {
	// Index is the trial's index in the full campaign (not in the shard).
	Index int
	Res   TestResult
}

// ShardReport is the mergeable result of one shard run. Trials are in
// ascending campaign-index order; a cancelled shard run carries only the
// trials that completed.
type ShardReport struct {
	Kernel  string
	Regions int
	// Requested is the full campaign's size (CampaignOpts.Tests), not the
	// shard's share of it.
	Requested int
	Shard     Shard
	Trials    []ShardTrial
}

// RunShardContext runs this tester's slice of the campaign: the trials whose
// index falls in the shard, executed through the same engine selection a whole
// campaign uses (snapshot-tree sharing with one reference prefix run for the
// shard, live fallback). The returned trials are byte-identical to the
// corresponding Tests entries of RunCampaignContext with the same options.
// Cancellation returns the partial shard alongside ctx's error, mirroring
// RunCampaignContext. onDone, when non-nil, is invoked with each trial's
// global campaign index as its record lands (a worker's heartbeat source); it
// may be called from concurrent worker goroutines.
func (t *Tester) RunShardContext(ctx context.Context, policy *Policy, opts CampaignOpts, sh Shard, onDone func(int)) (*ShardReport, error) {
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	plan, err := t.planCampaign(policy, &opts)
	if err != nil {
		return nil, err
	}
	idxs := sh.Indices(opts.Tests)
	out := &ShardReport{Kernel: t.name, Regions: t.golden.Regions, Requested: opts.Tests, Shard: sh}
	if len(idxs) == 0 {
		// More shards than trials: this shard legitimately owns nothing.
		return out, ctx.Err()
	}

	// Remap the shard's slice of the plan to local indices: the engine sees a
	// dense points slice, the seed accessors translate back to global indices
	// so every trial draws exactly the state the full campaign drew for it.
	points := make([]uint64, len(idxs))
	for k, i := range idxs {
		points[k] = plan.points[i]
	}
	seedAt := func(k int) int64 { return plan.seedAt(idxs[k]) }
	trialSeedAt := func(k int) int64 { return plan.trialSeedAt(idxs[k]) }

	var onLocal func(int)
	if onDone != nil {
		onLocal = func(k int) { onDone(idxs[k]) }
	}
	rep := &Report{Tests: make([]TestResult, len(idxs))}
	done := make([]bool, len(idxs))
	t.runPlanned(ctx, policy, points, seedAt, trialSeedAt, plan.space, opts, rep, done, onLocal)

	for k, i := range idxs {
		if done[k] {
			out.Trials = append(out.Trials, ShardTrial{Index: i, Res: rep.Tests[k]})
		}
	}
	return out, ctx.Err()
}

// MergeShards reassembles shard runs into the campaign report, in campaign
// order. Shards may arrive in any order and may be partial (a cancelled or
// budget-exhausted worker): missing trials are simply absent from the merged
// report, exactly as a cancelled single-process campaign compacts to its
// completed tests. Merging every shard of a completed campaign reproduces
// RunCampaignContext's report byte for byte. Duplicate trial indices and
// mismatched campaign identities (kernel, size, region count) are errors —
// they mean the parts are not slices of one campaign.
func MergeShards(policy *Policy, parts []*ShardReport) (*Report, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("nvct: no shard reports to merge")
	}
	first := parts[0]
	rep := &Report{
		Kernel:    first.Kernel,
		Policy:    policy,
		Regions:   first.Regions,
		Requested: first.Requested,
	}
	results := make([]TestResult, first.Requested)
	done := make([]bool, first.Requested)
	for _, p := range parts {
		if p.Kernel != first.Kernel || p.Regions != first.Regions || p.Requested != first.Requested {
			return nil, fmt.Errorf("nvct: shard %d/%d (kernel %s, %d trials) does not match shard %d/%d (kernel %s, %d trials)",
				p.Shard.Index, p.Shard.Count, p.Kernel, p.Requested,
				first.Shard.Index, first.Shard.Count, first.Kernel, first.Requested)
		}
		for _, tr := range p.Trials {
			if tr.Index < 0 || tr.Index >= first.Requested {
				return nil, fmt.Errorf("nvct: shard %d/%d trial index %d outside campaign of %d tests",
					p.Shard.Index, p.Shard.Count, tr.Index, first.Requested)
			}
			if done[tr.Index] {
				return nil, fmt.Errorf("nvct: trial %d delivered by more than one shard", tr.Index)
			}
			results[tr.Index] = tr.Res
			done[tr.Index] = true
		}
	}
	for i := range results {
		if done[i] {
			rep.Tests = append(rep.Tests, results[i])
			rep.Counts[results[i].Outcome]++
		}
	}
	return rep, nil
}

// MissingTrials returns the campaign indices absent from the given shard
// parts — empty for a fully merged campaign. The supervisor reports them
// per-shard when a retry budget is exhausted.
func MissingTrials(parts []*ShardReport) []int {
	if len(parts) == 0 {
		return nil
	}
	have := make(map[int]bool)
	for _, p := range parts {
		for _, tr := range p.Trials {
			have[tr.Index] = true
		}
	}
	var out []int
	for i := 0; i < parts[0].Requested; i++ {
		if !have[i] {
			out = append(out, i)
		}
	}
	return out
}
