package nvct_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"easycrash/internal/faultmodel"
	"easycrash/internal/nvct"
)

// A nested campaign must bound every chain by RecrashDepth: Depth in
// [1, K+1], a chain entry per crash, and a retry per recovery attempt.
func TestNestedCampaignDepthBounds(t *testing.T) {
	tt := tester(t, "mg")
	const depth = 2
	rep := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 40, Seed: 11, RecrashDepth: depth})
	if len(rep.Tests) != 40 {
		t.Fatalf("got %d tests", len(rep.Tests))
	}
	deeper := 0
	for i, tr := range rep.Tests {
		if tr.Depth < 1 || tr.Depth > depth+1 {
			t.Fatalf("test %d: chain depth %d outside [1, %d]", i, tr.Depth, depth+1)
		}
		if len(tr.Chain) != tr.Depth {
			t.Fatalf("test %d: %d chain entries for depth %d", i, len(tr.Chain), tr.Depth)
		}
		if tr.Chain[0].Access != tr.CrashAccess || tr.Chain[0].Iter != tr.CrashIter {
			t.Fatalf("test %d: Chain[0] %+v does not repeat the initial crash (%d, iter %d)",
				i, tr.Chain[0], tr.CrashAccess, tr.CrashIter)
		}
		if tr.Retries < 1 || tr.Retries > depth+1 {
			t.Fatalf("test %d: %d retries for depth %d", i, tr.Retries, tr.Depth)
		}
		if len(tr.FinalInconsistency) == 0 {
			t.Fatalf("test %d: no final-crash inconsistency recorded", i)
		}
		if tr.Depth > 1 {
			deeper++
		}
	}
	if deeper == 0 {
		t.Fatal("no trial crashed during recovery; nested model never engaged")
	}
	if got := rep.MaxDepth(); got < 2 || got > depth+1 {
		t.Fatalf("MaxDepth = %d", got)
	}
	if got, want := rep.RetriesConsumed(), len(rep.Tests); got < want {
		t.Fatalf("RetriesConsumed = %d, want >= %d", got, want)
	}
}

// R(k) is a survival curve over chain depth: defined for k = 1..MaxDepth,
// within [0, 1]. (Monotone decay is asserted on the example sweep, where the
// campaign is large enough for the estimate to settle.)
func TestRecrashRecoverability(t *testing.T) {
	tt := tester(t, "mg")
	rep := tt.RunCampaign(nvct.IterationPolicy([]string{"u", "r"}),
		nvct.CampaignOpts{Tests: 60, Seed: 3, RecrashDepth: 2})
	rk := rep.RecrashRecoverability()
	if len(rk) != rep.MaxDepth() {
		t.Fatalf("len(R) = %d, MaxDepth = %d", len(rk), rep.MaxDepth())
	}
	for k, r := range rk {
		if r < 0 || r > 1 {
			t.Fatalf("R(%d) = %v outside [0,1]", k+1, r)
		}
	}
	if mean := rep.MeanFinalInconsistency(); len(mean) == 0 {
		t.Fatal("MeanFinalInconsistency empty for a nested campaign")
	}
	// Classic campaigns expose none of the nested metrics.
	classic := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 5, Seed: 3})
	if classic.MaxDepth() != 0 || classic.RecrashRecoverability() != nil ||
		classic.RetriesConsumed() != 0 || classic.MeanFinalInconsistency() != nil {
		t.Fatal("classic campaign leaked nested metrics")
	}
}

// A retry budget below what the chain needs must terminate the trial as an
// interruption carrying ErrRetryBudgetExhausted, never exceeding the budget.
func TestRetryBudgetExhaustion(t *testing.T) {
	tt := tester(t, "mg")
	rep := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 40, Seed: 11, RecrashDepth: 2, RetryBudget: 1})
	exhausted := 0
	for i, tr := range rep.Tests {
		if tr.Retries > 1 {
			t.Fatalf("test %d: consumed %d retries under budget 1", i, tr.Retries)
		}
		if tr.Err == nvct.ErrRetryBudgetExhausted.Error() {
			exhausted++
			if tr.Outcome != nvct.S3 {
				t.Fatalf("test %d: budget exhaustion classified %v, want S3", i, tr.Outcome)
			}
			if tr.Depth < 2 {
				t.Fatalf("test %d: budget exhausted on a depth-%d chain", i, tr.Depth)
			}
		}
	}
	if exhausted == 0 {
		t.Fatal("no trial exhausted a budget of 1 under depth 2; seed too tame for the test premise")
	}
	// Same campaign with a roomy budget: no exhaustion, strictly fewer S3s.
	roomy := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 40, Seed: 11, RecrashDepth: 2, RetryBudget: 3})
	for i, tr := range roomy.Tests {
		if tr.Err == nvct.ErrRetryBudgetExhausted.Error() {
			t.Fatalf("test %d: budget 3 exhausted on a depth-2 campaign", i)
		}
	}
	if roomy.Counts[nvct.S3] >= rep.Counts[nvct.S3] && rep.Counts[nvct.S3] > 0 {
		t.Fatalf("S3 did not drop with budget: %d (budget 3) vs %d (budget 1)",
			roomy.Counts[nvct.S3], rep.Counts[nvct.S3])
	}
}

// An unmeetable trial deadline must classify trials SErr with the named
// ErrTrialDeadline, not hang or kill the campaign.
func TestTrialDeadline(t *testing.T) {
	tt := tester(t, "mg")
	rep := tt.RunCampaign(nil, nvct.CampaignOpts{
		Tests: 4, Seed: 5, RecrashDepth: 1, TrialDeadline: time.Nanosecond,
	})
	if len(rep.Tests) != 4 {
		t.Fatalf("got %d tests", len(rep.Tests))
	}
	for i, tr := range rep.Tests {
		if tr.Outcome != nvct.SErr {
			t.Fatalf("test %d: outcome %v under a 1ns trial deadline, want ERR", i, tr.Outcome)
		}
		if !strings.Contains(tr.Err, nvct.ErrTrialDeadline.Error()) {
			t.Fatalf("test %d: Err = %q, want it to carry %q", i, tr.Err, nvct.ErrTrialDeadline)
		}
	}
}

// Invalid nested options are campaign setup errors, not silent clamps.
func TestNestedOptionValidation(t *testing.T) {
	tt := tester(t, "mg")
	cases := []struct {
		name string
		opts nvct.CampaignOpts
	}{
		{"negative depth", nvct.CampaignOpts{Tests: 1, RecrashDepth: -1}},
		{"negative budget", nvct.CampaignOpts{Tests: 1, RetryBudget: -2}},
		{"negative deadline", nvct.CampaignOpts{Tests: 1, TrialDeadline: -time.Second}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := tt.RunCampaignContext(context.Background(), nil, tc.opts)
			if err == nil || rep != nil {
				t.Fatalf("RunCampaignContext = (%v, %v), want nil report and an error", rep, err)
			}
		})
	}
}

// Nested chains compose with the media-fault layer: faults accumulate across
// the chain's power losses through one injector, and the scrub-and-fallback
// path keeps the campaign classifiable even when the fallback run is itself
// interrupted by a deeper crash.
func TestNestedFaultsAccumulate(t *testing.T) {
	tt := tester(t, "mg")
	faults := faultmodel.Config{TornWrites: true, RBER: 5e-5, ECC: faultmodel.SECDED()}
	rep := tt.RunCampaign(nvct.IterationPolicy([]string{"u", "r"}), nvct.CampaignOpts{
		Tests: 50, Seed: 19, RecrashDepth: 2, Faults: faults, ScrubOnRestart: true,
	})
	if len(rep.Tests) != 50 {
		t.Fatalf("got %d tests", len(rep.Tests))
	}
	deepFaulted := 0
	for i, tr := range rep.Tests {
		if tr.Outcome == nvct.SErr {
			t.Fatalf("test %d: engine error %q in a scrubbed fault campaign", i, tr.Err)
		}
		for lvl, c := range tr.Chain {
			touched := c.Media.CorrectedBlocks > 0 || c.Media.PoisonedBlocks > 0 ||
				c.Media.SilentBlocks > 0 || c.Media.TornWords > 0
			if lvl > 0 && touched {
				deepFaulted++
			}
		}
	}
	if deepFaulted == 0 {
		t.Fatal("no media faults recorded at re-crash levels; injector not composing with the chain")
	}
}
