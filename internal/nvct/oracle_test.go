package nvct_test

import (
	"context"
	"reflect"
	"testing"

	"easycrash/internal/faultmodel"
	"easycrash/internal/nvct"

	// Register the persistent KV workload ("pmemkv", "pmemkv-bug").
	_ "easycrash/internal/pmemkv"
)

// kvFaults is the media-fault mix the KV oracle campaigns run under.
func kvFaults() faultmodel.Config {
	return faultmodel.Config{RBER: 2e-6, TornWrites: true, ECC: faultmodel.SECDED()}
}

// TestKVCorrectCampaignHasNoViolations: the acceptance bar for the oracle's
// specificity — the flush-before-ack store must audit clean at every crash
// point, with and without media faults, in classic and nested campaigns. On
// damaged media the store may fail loudly (S3 detected, DUE, scrubbed
// fallbacks) but must never be charged with a silent violation.
func TestKVCorrectCampaignHasNoViolations(t *testing.T) {
	ts := tester(t, "pmemkv")
	for _, tc := range []struct {
		label string
		opts  nvct.CampaignOpts
	}{
		{"classic", nvct.CampaignOpts{Tests: 200, Seed: 7}},
		{"faults", nvct.CampaignOpts{Tests: 200, Seed: 7, Faults: kvFaults(), ScrubOnRestart: true}},
		{"nested", nvct.CampaignOpts{Tests: 100, Seed: 7, RecrashDepth: 2}},
	} {
		rep := ts.RunCampaign(nil, tc.opts)
		if n := rep.Counts[nvct.SViol]; n != 0 {
			for _, tr := range rep.Tests {
				if tr.Outcome == nvct.SViol {
					t.Logf("%s: access %d iter %d: %v", tc.label, tr.CrashAccess, tr.CrashIter, tr.Violations)
				}
			}
			t.Fatalf("%s: correct store charged with %d violations", tc.label, n)
		}
	}
}

// TestKVBuggyCampaignIsCaught: the acceptance bar for sensitivity — the store
// missing the record flush before its commit-mark update must be caught
// losing acknowledged writes in a 200-trial seeded campaign.
func TestKVBuggyCampaignIsCaught(t *testing.T) {
	rep := tester(t, "pmemkv-bug").RunCampaign(nil, nvct.CampaignOpts{Tests: 200, Seed: 7})
	if rep.Counts[nvct.SViol] == 0 {
		t.Fatal("oracle caught no violations in 200 trials of the buggy store")
	}
	for _, tr := range rep.Tests {
		if tr.Outcome == nvct.SViol && len(tr.Violations) == 0 {
			t.Fatalf("SViol trial at access %d lists no violations", tr.CrashAccess)
		}
		if tr.Outcome != nvct.SViol && len(tr.Violations) > 0 {
			t.Fatalf("%s trial at access %d lists violations: %v", tr.Outcome, tr.CrashAccess, tr.Violations)
		}
	}
	if sviol, listed := rep.ConsistencyViolations(); sviol == 0 || listed < sviol {
		t.Fatalf("ConsistencyViolations() = (%d, %d), want every SViol trial itemised", sviol, listed)
	}
}

// TestKVBuggyNestedCampaign: the ack journal must merge across the lives of a
// crash chain — recovery attempts acknowledge more writes before dying, and
// the final audit must honour all of them. The buggy store must still be
// caught when its recoveries are themselves crashed.
func TestKVBuggyNestedCampaign(t *testing.T) {
	rep := tester(t, "pmemkv-bug").RunCampaign(nil, nvct.CampaignOpts{Tests: 100, Seed: 13, RecrashDepth: 2})
	if rep.Counts[nvct.SViol] == 0 {
		t.Fatal("nested campaign caught no violations in the buggy store")
	}
}

// TestKVPrefixLiveEquivalence: the prefix-sharing fast path captures the ack
// journal in the fork hook instead of after a live crash panic; both engines
// must produce byte-identical reports, violations included.
func TestKVPrefixLiveEquivalence(t *testing.T) {
	for _, kernel := range []string{"pmemkv", "pmemkv-bug"} {
		ts := tester(t, kernel)
		opts := nvct.CampaignOpts{Tests: 60, Seed: 11}
		fast := reportDigest(ts.RunCampaign(nil, opts))
		opts.NoPrefixShare = true
		live := reportDigest(ts.RunCampaign(nil, opts))
		if fast != live {
			t.Fatalf("%s: prefix-shared and live engines disagree:\n fast %s\n live %s", kernel, fast, live)
		}
	}
}

// TestReproTrialMatchesCampaign: re-running one trial by its campaign index
// must reproduce the campaign's record exactly — the contract the repro CLI
// (nvct -repro) is built on.
func TestReproTrialMatchesCampaign(t *testing.T) {
	ts := tester(t, "pmemkv-bug")
	opts := nvct.CampaignOpts{Tests: 40, Seed: 9, RecrashDepth: 1}
	rep := ts.RunCampaign(nil, opts)
	if len(rep.Tests) != opts.Tests {
		t.Fatalf("campaign kept %d of %d trials", len(rep.Tests), opts.Tests)
	}
	checked := 0
	for i, want := range rep.Tests {
		// Replaying all 40 would double the campaign; sample across outcomes.
		if i%11 != 0 && want.Outcome != nvct.SViol {
			continue
		}
		got, err := ts.ReproTrial(context.Background(), nil, opts, i)
		if err != nil {
			t.Fatalf("ReproTrial(%d): %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ReproTrial(%d) diverged from campaign record:\n got  %+v\n want %+v", i, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no trials sampled")
	}
	if _, err := ts.ReproTrial(context.Background(), nil, opts, opts.Tests); err == nil {
		t.Fatal("out-of-range trial index accepted")
	}
}

// goldenKVDigest pins the buggy-store campaign byte-for-byte alongside the
// six existing seed-replay pins: crash points, outcomes, violation strings.
// Regenerate with -v after a deliberate behaviour change.
const goldenKVDigest = "41a5ad2ef03890612c2e2d1e94c097e6d7057a8ac872360fc5c545a49fd72c78"

func TestSeedReplayKV(t *testing.T) {
	opts := nvct.CampaignOpts{Tests: 30, Seed: 59, Parallel: 1}
	serial := digestCampaign(t, "pmemkv-bug", nil, opts)
	opts.Parallel = 4
	parallel := digestCampaign(t, "pmemkv-bug", nil, opts)
	if serial != parallel {
		t.Fatalf("KV campaign differs across parallelism:\n serial   %s\n parallel %s", serial, parallel)
	}
	checkGolden(t, serial, goldenKVDigest, "kv")
}
