package nvct_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"easycrash/internal/nvct"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkJSONGolden serializes the report and compares it byte-for-byte against
// the named golden file. Run with -update to regenerate after a deliberate
// format or behaviour change.
func checkJSONGolden(t *testing.T, rep *nvct.Report, name string) {
	t.Helper()
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Fatal("JSON() is not byte-stable across calls")
	}
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/nvct/ -run TestReportJSONGolden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("serialized report differs from %s; run with -update after a deliberate change\ngot:\n%s", path, got)
	}
}

// TestReportJSONGolden pins the wire format of the stable report
// serialization: a classic policy campaign (policy block, inconsistency and
// final-result vectors) and a nested KV oracle campaign under media faults
// (violations, chains, media injections, scrub counts) — together they
// populate every field of the DTOs.
func TestReportJSONGolden(t *testing.T) {
	t.Run("policy", func(t *testing.T) {
		policy := nvct.IterationPolicy([]string{"u", "scal"})
		rep := tester(t, "lu").RunCampaign(policy, nvct.CampaignOpts{Tests: 6, Seed: 17, Parallel: 1})
		checkJSONGolden(t, rep, "report_policy.golden.json")
	})
	t.Run("kv-oracle", func(t *testing.T) {
		opts := nvct.CampaignOpts{
			Tests: 8, Seed: 21, Parallel: 1,
			Faults: kvFaults(), ScrubOnRestart: true, RecrashDepth: 2,
		}
		rep := tester(t, "pmemkv-bug").RunCampaign(nil, opts)
		checkJSONGolden(t, rep, "report_kv.golden.json")
	})
}
