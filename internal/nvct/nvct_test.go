package nvct_test

import (
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/nvct"
)

// testers are shared across tests: the golden run is deterministic and
// read-only once built.
var testerCache = map[string]*nvct.Tester{}

func tester(t *testing.T, kernel string) *nvct.Tester {
	t.Helper()
	if tt, ok := testerCache[kernel]; ok {
		return tt
	}
	f, err := apps.New(kernel, apps.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := nvct.NewTester(f, nvct.Config{})
	if err != nil {
		t.Fatal(err)
	}
	testerCache[kernel] = tt
	return tt
}

func TestOutcomeString(t *testing.T) {
	want := map[nvct.Outcome]string{nvct.S1: "S1", nvct.S2: "S2", nvct.S3: "S3", nvct.S4: "S4", nvct.Outcome(7): "Outcome(7)"}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), o.String(), s)
		}
	}
}

func TestGoldenProfile(t *testing.T) {
	tt := tester(t, "mg")
	g := tt.Golden()
	if g.Iters != 10 {
		t.Fatalf("golden iters = %d", g.Iters)
	}
	if g.MainAccesses == 0 || g.Footprint == 0 || g.CandidateBytes == 0 {
		t.Fatalf("incomplete golden profile: %+v", g)
	}
	if g.Regions != 4 || len(g.Candidates) == 0 {
		t.Fatalf("golden regions/candidates: %d/%d", g.Regions, len(g.Candidates))
	}
	var sum uint64
	for _, n := range g.RegionAccesses {
		sum += n
	}
	if sum != g.MainAccesses {
		t.Fatalf("region accesses %d do not add to main accesses %d", sum, g.MainAccesses)
	}
	if tt.Name() != "mg" {
		t.Fatalf("Name = %q", tt.Name())
	}
}

func TestCampaignClassifiesEveryTest(t *testing.T) {
	tt := tester(t, "mg")
	rep := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 25, Seed: 7})
	if len(rep.Tests) != 25 {
		t.Fatalf("got %d tests", len(rep.Tests))
	}
	total := rep.Counts[0] + rep.Counts[1] + rep.Counts[2] + rep.Counts[3]
	if total != 25 {
		t.Fatalf("counts %v do not add to 25", rep.Counts)
	}
	for _, tr := range rep.Tests {
		if tr.CrashAccess == 0 || tr.CrashAccess > tt.Golden().MainAccesses {
			t.Fatalf("crash access %d outside the run", tr.CrashAccess)
		}
		if tr.CrashIter < 0 || tr.CrashIter >= tt.Golden().Iters {
			t.Fatalf("crash iteration %d outside the run", tr.CrashIter)
		}
		if len(tr.Inconsistency) != len(tt.Golden().Candidates) {
			t.Fatalf("inconsistency rates missing: %v", tr.Inconsistency)
		}
		for name, rate := range tr.Inconsistency {
			if rate < 0 || rate > 1 {
				t.Fatalf("object %s rate %v outside [0,1]", name, rate)
			}
		}
		if tr.Success() != (tr.Outcome == nvct.S1 || tr.Outcome == nvct.S2) {
			t.Fatal("Success() inconsistent with outcome")
		}
	}
}

func TestCampaignDeterministicForSeed(t *testing.T) {
	tt := tester(t, "lu")
	a := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 15, Seed: 3})
	b := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 15, Seed: 3})
	for i := range a.Tests {
		if a.Tests[i].CrashAccess != b.Tests[i].CrashAccess || a.Tests[i].Outcome != b.Tests[i].Outcome {
			t.Fatalf("test %d differs across identical campaigns", i)
		}
	}
	c := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 15, Seed: 4})
	same := true
	for i := range a.Tests {
		if a.Tests[i].CrashAccess != c.Tests[i].CrashAccess {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical crash points")
	}
}

func TestPersistencePolicyImprovesRecomputability(t *testing.T) {
	// The paper's central claim at unit-test scale: persisting the right
	// object raises S1 substantially for LU.
	tt := tester(t, "lu")
	base := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 30, Seed: 11})
	ec := tt.RunCampaign(nvct.IterationPolicy([]string{"u", "scal"}), nvct.CampaignOpts{Tests: 30, Seed: 11})
	if ec.Recomputability() < base.Recomputability()+0.3 {
		t.Fatalf("persisting u: %.2f -> %.2f, want a large improvement",
			base.Recomputability(), ec.Recomputability())
	}
}

func TestReportAggregates(t *testing.T) {
	tt := tester(t, "mg")
	rep := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 20, Seed: 5})
	if r := rep.Recomputability(); r < 0 || r > 1 {
		t.Fatalf("recomputability %v", r)
	}
	if s := rep.SuccessRate(); s < rep.Recomputability() {
		t.Fatal("success rate below S1 rate")
	}
	rec, tests := rep.RegionRecomputability()
	var n int
	for k, c := range tests {
		n += c
		if rec[k] < 0 || rec[k] > 1 {
			t.Fatalf("region %d recomputability %v", k, rec[k])
		}
	}
	if n != 20 {
		t.Fatalf("per-region tests add to %d", n)
	}
	vectors := rep.InconsistencyVectors()
	for name, v := range vectors {
		if len(v[0]) != 20 || len(v[1]) != 20 {
			t.Fatalf("object %s vectors truncated", name)
		}
	}
	if rep.AvgExtraIters() != 0 {
		// MG is fixed-iteration: successes never use extra iterations.
		t.Fatalf("MG extra iters = %v", rep.AvgExtraIters())
	}
}

func TestEmptyReportAggregates(t *testing.T) {
	rep := &nvct.Report{}
	if rep.Recomputability() != 0 || rep.SuccessRate() != 0 || rep.AvgExtraIters() != 0 {
		t.Fatal("empty report aggregates should be zero")
	}
}

func TestVerifiedCampaignAtLeastAsGoodAsBaseline(t *testing.T) {
	tt := tester(t, "lu")
	base := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 25, Seed: 9})
	vfy := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 25, Seed: 9, Verified: true})
	if vfy.Recomputability() < base.Recomputability() {
		t.Fatalf("verified campaign (%v) below baseline (%v)", vfy.Recomputability(), base.Recomputability())
	}
}

func TestConvergentKernelReportsExtraIterations(t *testing.T) {
	tt := tester(t, "kmeans")
	rep := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 30, Seed: 13})
	if rep.Counts[nvct.S2] == 0 {
		t.Fatal("kmeans baseline produced no S2 (extra-iteration) responses")
	}
	if rep.AvgExtraIters() <= 0 {
		t.Fatalf("AvgExtraIters = %v, want > 0", rep.AvgExtraIters())
	}
}

func TestEPUnrecoverable(t *testing.T) {
	tt := tester(t, "ep")
	for _, policy := range []*nvct.Policy{nil, nvct.IterationPolicy([]string{"sums", "hist", "xbuf"})} {
		rep := tt.RunCampaign(policy, nvct.CampaignOpts{Tests: 25, Seed: 17})
		if rep.Recomputability() > 0.1 {
			t.Fatalf("EP recomputability %v, want ~0 (paper: below 3%%)", rep.Recomputability())
		}
	}
}

func TestISBaselineInterrupts(t *testing.T) {
	tt := tester(t, "is")
	rep := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 30, Seed: 19})
	if rep.Counts[nvct.S3] == 0 {
		t.Fatal("IS baseline produced no interruptions (paper: segfaults)")
	}
}

func TestProfileRunCountsPersistenceWork(t *testing.T) {
	tt := tester(t, "mg")
	base, err := tt.ProfileRun(nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.PersistStats.Operations != 0 {
		t.Fatalf("baseline persistence ops = %d", base.PersistStats.Operations)
	}
	ec, err := tt.ProfileRun(nvct.IterationPolicy([]string{"u"}))
	if err != nil {
		t.Fatal(err)
	}
	if ec.PersistStats.Operations != uint64(tt.Golden().Iters) {
		t.Fatalf("persistence ops = %d, want one per iteration (%d)",
			ec.PersistStats.Operations, tt.Golden().Iters)
	}
	if ec.PersistStats.DirtyFlushed == 0 {
		t.Fatal("no dirty flushes recorded")
	}
	if ec.NVMWrites <= base.NVMWrites {
		t.Fatal("persistence should add NVM writes over the baseline")
	}
}

func TestEveryRegionPolicyShape(t *testing.T) {
	p := nvct.EveryRegionPolicy([]string{"a"}, 3)
	if len(p.AtRegionEnds) != 3 || !p.AtIterationEnd || p.Frequency != 1 {
		t.Fatalf("EveryRegionPolicy = %+v", p)
	}
	q := nvct.IterationPolicy([]string{"a"})
	if q.AtIterationEnd != true || len(q.AtRegionEnds) != 0 {
		t.Fatalf("IterationPolicy = %+v", q)
	}
}

func TestFrequencyThrottlesPersistence(t *testing.T) {
	tt := tester(t, "mg")
	p := nvct.IterationPolicy([]string{"u"})
	p.Frequency = 2
	g, err := tt.ProfileRun(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.PersistStats.Operations != uint64(tt.Golden().Iters/2) {
		t.Fatalf("frequency-2 persistence ops = %d, want %d", g.PersistStats.Operations, tt.Golden().Iters/2)
	}
}

func TestCrashDuringPersistence(t *testing.T) {
	tt := tester(t, "mg")
	policy := nvct.IterationPolicy([]string{"u"})
	plain := tt.RunCampaign(policy, nvct.CampaignOpts{Tests: 30, Seed: 23})
	during := tt.RunCampaign(policy, nvct.CampaignOpts{Tests: 30, Seed: 23, CrashDuringPersistence: true})
	// Every test still classifies.
	total := during.Counts[0] + during.Counts[1] + during.Counts[2] + during.Counts[3]
	if total != 30 {
		t.Fatalf("counts %v", during.Counts)
	}
	// Interrupting persistence can only hurt (or match) recomputability:
	// partially flushed state adds a failure window.
	if during.Recomputability() > plain.Recomputability()+0.1 {
		t.Fatalf("crash-during-persistence improved recomputability: %.2f vs %.2f",
			during.Recomputability(), plain.Recomputability())
	}
	// Determinism for a fixed seed.
	again := tt.RunCampaign(policy, nvct.CampaignOpts{Tests: 30, Seed: 23, CrashDuringPersistence: true})
	for i := range during.Tests {
		if during.Tests[i].CrashAccess != again.Tests[i].CrashAccess ||
			during.Tests[i].Outcome != again.Tests[i].Outcome {
			t.Fatal("crash-during-persistence campaign not deterministic")
		}
	}
}

func TestParallelCampaignMatchesSerial(t *testing.T) {
	tt := tester(t, "lu")
	serial := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 12, Seed: 29, Parallel: 1})
	parallel := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 12, Seed: 29, Parallel: 4})
	for i := range serial.Tests {
		if serial.Tests[i].CrashAccess != parallel.Tests[i].CrashAccess ||
			serial.Tests[i].Outcome != parallel.Tests[i].Outcome {
			t.Fatalf("test %d differs between serial and parallel execution", i)
		}
	}
	if serial.Counts != parallel.Counts {
		t.Fatalf("counts differ: %v vs %v", serial.Counts, parallel.Counts)
	}
}
