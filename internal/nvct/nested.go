// Nested-failure campaigns: crashes during recovery.
//
// The paper's campaign model (and runOne) assumes the recovery run executes
// unmolested — one crash per trial, then an undisturbed restart. Real HPC
// mean-times-between-failures make failures during recovery routine, and
// recomputation-based consistency is only trustworthy if it tolerates
// repeated interruption. runTrial supervises one trial as a crash *chain*:
// the initial crash, then up to RecrashDepth further crashes striking the
// recovery attempts themselves, each at a seed-derived demand access of the
// recomputation. Every recovery attempt is classified — success /
// wrong-answer / DUE / crashed-again / budget-exhausted — under a per-trial
// retry budget and wall-clock deadline, and media faults accumulate across
// the successive power losses through the one injector the trial owns.
package nvct

import (
	"context"
	"math/rand"
	"time"

	"easycrash/internal/apps"
)

// runTrial executes one supervised nested-failure trial: a crash chain of
// depth at most opts.RecrashDepth+1. Crash points for every level beyond the
// first are drawn from a per-trial generator seeded serially from the
// campaign seed, so nested campaigns replay byte-identically regardless of
// parallelism. space is the campaign's crash-point space; a deeper point
// drawn beyond the recovery run's accesses simply never fires, ending the
// chain naturally.
func (t *Tester) runTrial(ctx context.Context, policy *Policy, crashAt uint64, faultSeed, trialSeed int64, space uint64, opts CampaignOpts, deadline time.Time, deadlineErr error, dumpCapture *[]byte) TestResult {
	ps, completed := t.runPhase1(ctx, policy, crashAt, faultSeed, opts, deadline, deadlineErr)
	if completed != nil {
		// The drawn point exceeded the initial run's accesses: no crash, no
		// chain. Depth stays 0 on the classic S1 record.
		return *completed
	}
	captureDump(dumpCapture, ps.dump)
	return t.runChain(ctx, ps, trialSeed, space, opts, deadline, deadlineErr)
}

// chainCursor carries the inter-attempt bookkeeping of one nested-failure
// crash chain: the durable state the next attempt restarts from and the
// progress accounting that classifies the terminal attempt. Both the live
// engine (runChain) and the snapshot-tree engine drive their chains through
// the same cursor, so the two cannot drift.
type chainCursor struct {
	dump    []byte
	poison  map[uint64]struct{}
	journal apps.AckJournal // merged ack journal across the chain's lives

	firstIter int64 // progress when the first power loss hit
	prevIter  int64 // progress when the latest power loss hit
	work      int64 // iterations executed across recovery attempts
}

// nextArm begins one recovery attempt of a chain: it spends one unit of the
// retry budget and draws the attempt's re-crash point from the trial's
// generator while depth remains (the final allowed attempt runs unarmed,
// exactly like a classic restart). exhausted reports that the budget was
// already spent and no attempt may run.
func nextArm(res *TestResult, trng *rand.Rand, budget, recrashDepth int, space uint64) (arm uint64, exhausted bool) {
	if res.Retries >= budget {
		return 0, true
	}
	res.Retries++
	if res.Depth <= recrashDepth {
		arm = 1 + uint64(trng.Int63n(int64(space)))
	}
	return arm, false
}

// applyAttempt folds one recovery attempt's result into the trial record. A
// re-crash extends the chain, advances the cursor to the new durable state
// and returns false (another attempt is due); a terminal outcome classifies
// the trial and returns true. The caller owns recycling the dump the cursor
// moved off of.
func (c *chainCursor) applyAttempt(res *TestResult, st attemptResult, goldenIters int64) (terminal bool) {
	res.ScrubbedObjects += st.scrubbed
	if st.crash != nil {
		// Crashed again: record the level and restart from the new
		// durable state the failing media left behind.
		res.Depth++
		res.Chain = append(res.Chain, ChainCrash{Access: st.crash.Access, Region: st.crash.Region, Iter: st.crash.Iter, Media: st.media})
		res.FinalInconsistency = st.inc
		c.work += st.crash.Iter - st.from
		c.dump, c.poison = st.dump, st.poison
		c.journal = st.journal
		c.prevIter = st.crash.Iter
		return false
	}
	res.Outcome = st.outcome
	res.FinalResult = st.final
	res.Violations = st.violations
	if st.detected != "" {
		res.Err = st.detected
	}
	switch st.outcome {
	case S1, S2, S4:
		// Extra iterations of the whole chain: recovery work executed
		// beyond what remained when the first crash hit. Redone
		// iterations from lost bookmarks and convergence surplus both
		// land here; for a depth-1 chain it reduces to the classic
		// formula.
		extra := c.work + st.executed - (goldenIters - c.firstIter)
		if extra < 0 {
			extra = 0
		}
		res.ExtraIters = extra
		if st.outcome != S4 {
			res.Outcome = S1
			if extra > 0 {
				res.Outcome = S2
			}
		}
	}
	return true
}

// chainBudget resolves the per-trial retry budget of a nested campaign.
func chainBudget(opts CampaignOpts) int {
	if opts.RetryBudget > 0 {
		return opts.RetryBudget
	}
	return opts.RecrashDepth + 1
}

// runChain supervises the recovery chain of one nested-failure trial from its
// phase-1 state onward. It consumes ps.dump (and any re-crash dumps it takes
// along the way). Both the live engine and the prefix-sharing fast path enter
// here when a trial must run in isolation; the snapshot-tree engine drives
// the same cursor/attempt helpers round-by-round across many trials at once.
func (t *Tester) runChain(ctx context.Context, ps phase1State, trialSeed int64, space uint64, opts CampaignOpts, deadline time.Time, deadlineErr error) TestResult {
	res := TestResult{
		CrashAccess:        ps.crash.Access,
		CrashRegion:        ps.crash.Region,
		CrashIter:          ps.crash.Iter,
		Inconsistency:      ps.inc,
		Media:              ps.media,
		Depth:              1,
		Chain:              []ChainCrash{{Access: ps.crash.Access, Region: ps.crash.Region, Iter: ps.crash.Iter, Media: ps.media}},
		FinalInconsistency: ps.inc,
	}

	trng := rand.New(rand.NewSource(trialSeed))
	budget := chainBudget(opts)
	c := &chainCursor{
		dump:      ps.dump,
		poison:    ps.poison,
		journal:   ps.journal,
		firstIter: ps.crash.Iter,
		prevIter:  ps.crash.Iter,
	}

	for {
		arm, exhausted := nextArm(&res, trng, budget, opts.RecrashDepth, space)
		if exhausted {
			// The chain still needs another restart but the budget is
			// spent: the application never reached a terminal state.
			res.Outcome = S3
			res.Err = ErrRetryBudgetExhausted.Error()
			break
		}
		st := t.restartOnce(ctx, c.dump, c.poison, c.prevIter, c.journal, opts.ScrubOnRestart, deadline, deadlineErr, arm, ps.inj, opts.Verified)
		old := c.dump
		if c.applyAttempt(&res, st, t.golden.Iters) {
			break
		}
		t.putDump(old)
	}
	t.putDump(c.dump)
	return res
}

// MaxDepth returns the deepest crash chain observed in the campaign. It is 0
// for classic single-crash campaigns, whose tests carry no chain records.
func (r *Report) MaxDepth() int {
	depth := 0
	for _, t := range r.Tests {
		if t.Depth > depth {
			depth = t.Depth
		}
	}
	return depth
}

// RecrashRecoverability returns recoverability under re-crash, R(k) for
// k = 1..MaxDepth: among the trials whose chain reached at least k crashes,
// the fraction that ultimately recomputed successfully (S1 or S2). R(1) is
// the campaign-wide success rate; deeper chains can only lose more volatile
// state, so R(k) decays with k. nil for classic campaigns.
func (r *Report) RecrashRecoverability() []float64 {
	maxd := r.MaxDepth()
	if maxd == 0 {
		return nil
	}
	atLeast := make([]int, maxd+1)
	succ := make([]int, maxd+1)
	for _, t := range r.Tests {
		for k := 1; k <= t.Depth; k++ {
			atLeast[k]++
			if t.Success() {
				succ[k]++
			}
		}
	}
	out := make([]float64, maxd)
	for k := 1; k <= maxd; k++ {
		out[k-1] = float64(succ[k]) / float64(atLeast[k])
	}
	return out
}

// DepthCounts returns how many trials reached each chain depth (index k =
// exactly k crashes; index 0 counts trials whose drawn point never fired).
func (r *Report) DepthCounts() []int {
	out := make([]int, r.MaxDepth()+1)
	for _, t := range r.Tests {
		out[t.Depth]++
	}
	return out
}

// RetriesConsumed totals the recovery attempts the campaign's trials spent.
func (r *Report) RetriesConsumed() int {
	total := 0
	for _, t := range r.Tests {
		total += t.Retries
	}
	return total
}

// MeanFinalInconsistency averages, per candidate object, the data-
// inconsistency rate at the final crash of each chain — the state the last
// recovery attempt actually restarted from. nil for classic campaigns.
func (r *Report) MeanFinalInconsistency() map[string]float64 {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, t := range r.Tests {
		//eclint:allow campaigndet — one accumulation per name per test; each name's sum follows Tests order
		for name, rate := range t.FinalInconsistency {
			sums[name] += rate
			counts[name]++
		}
	}
	if len(sums) == 0 {
		return nil
	}
	out := make(map[string]float64, len(sums))
	//eclint:allow campaigndet — independent per-key division, order-insensitive
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out
}
