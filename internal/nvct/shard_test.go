package nvct_test

import (
	"context"
	"reflect"
	"testing"

	"easycrash/internal/faultmodel"
	"easycrash/internal/nvct"
)

// runSharded splits the campaign into shards, runs each in-process and merges
// the parts (shuffled by a fixed rotation so merge order independence is
// exercised too).
func runSharded(t *testing.T, kernel string, policy *nvct.Policy, opts nvct.CampaignOpts, shards int) *nvct.Report {
	t.Helper()
	tr := tester(t, kernel)
	parts := make([]*nvct.ShardReport, 0, shards)
	for s := 0; s < shards; s++ {
		sr, err := tr.RunShardContext(context.Background(), policy, opts, nvct.Shard{Index: s, Count: shards}, nil)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", s, shards, err)
		}
		parts = append(parts, sr)
	}
	parts = append(parts[1:], parts[0]) // merge order must not matter
	rep, err := nvct.MergeShards(policy, parts)
	if err != nil {
		t.Fatalf("merging %d shards: %v", shards, err)
	}
	if missing := nvct.MissingTrials(parts); len(missing) != 0 {
		t.Fatalf("complete shard set missing trials %v", missing)
	}
	return rep
}

// TestShardMergeEquivalence: a campaign split into 1, 2 and 8 shards merges
// back to the exact single-process report — DeepEqual and digest-identical —
// for both the classic and the nested+faults engine paths.
func TestShardMergeEquivalence(t *testing.T) {
	policy := nvct.IterationPolicy([]string{"u", "scal"})
	cases := []struct {
		name string
		opts nvct.CampaignOpts
	}{
		{"baseline", nvct.CampaignOpts{Tests: 30, Seed: 41, Parallel: 2}},
		{"nested+faults", nvct.CampaignOpts{
			Tests: 30, Seed: 47, Parallel: 2, RecrashDepth: 2,
			Faults:         faultmodel.Config{RBER: 2e-6, TornWrites: true, ECC: faultmodel.SECDED()},
			ScrubOnRestart: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var pol *nvct.Policy
			if tc.name != "baseline" {
				pol = policy
			}
			live := tester(t, "lu").RunCampaign(pol, tc.opts)
			want := reportDigest(live)
			for _, shards := range []int{1, 2, 8} {
				merged := runSharded(t, "lu", pol, tc.opts, shards)
				if !reflect.DeepEqual(merged, live) {
					t.Errorf("%d-shard merge differs from live report (DeepEqual)", shards)
				}
				if got := reportDigest(merged); got != want {
					t.Errorf("%d-shard merge digest = %s, want live %s", shards, got, want)
				}
			}
		})
	}
}

// TestShardJSONRoundtrip: the shard wire format is lossless — a shard report
// serialized and parsed back merges to the byte-identical campaign report,
// which is the property the multi-process runner rests on (workers hand their
// shard to the supervisor as JSON).
func TestShardJSONRoundtrip(t *testing.T) {
	opts := nvct.CampaignOpts{Tests: 30, Seed: 47, Parallel: 2, RecrashDepth: 2,
		Faults:         faultmodel.Config{RBER: 2e-6, TornWrites: true, ECC: faultmodel.SECDED()},
		ScrubOnRestart: true}
	policy := nvct.IterationPolicy([]string{"u", "scal"})
	tr := tester(t, "lu")

	const shards = 3
	var direct, decoded []*nvct.ShardReport
	for s := 0; s < shards; s++ {
		sr, err := tr.RunShardContext(context.Background(), policy, opts, nvct.Shard{Index: s, Count: shards}, nil)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		direct = append(direct, sr)
		b, err := sr.JSON()
		if err != nil {
			t.Fatalf("shard %d JSON: %v", s, err)
		}
		back, err := nvct.ParseShardReport(b)
		if err != nil {
			t.Fatalf("shard %d parse: %v", s, err)
		}
		b2, err := back.JSON()
		if err != nil {
			t.Fatalf("shard %d re-JSON: %v", s, err)
		}
		if string(b) != string(b2) {
			t.Errorf("shard %d serialization not stable across a decode", s)
		}
		decoded = append(decoded, back)
	}

	mergedDirect, err := nvct.MergeShards(policy, direct)
	if err != nil {
		t.Fatal(err)
	}
	mergedDecoded, err := nvct.MergeShards(policy, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := reportDigest(mergedDirect), reportDigest(mergedDecoded); d1 != d2 {
		t.Errorf("JSON roundtrip changed the merged digest:\n direct  %s\n decoded %s", d1, d2)
	}
	j1, err := mergedDirect.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := mergedDecoded.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("JSON roundtrip changed the merged report serialization")
	}
}

// TestShardPartialMerge: merging an incomplete shard set yields the partial
// report of the delivered trials (graceful degradation), with the missing
// indices reported — never an error.
func TestShardPartialMerge(t *testing.T) {
	opts := nvct.CampaignOpts{Tests: 12, Seed: 41, Parallel: 2}
	tr := tester(t, "lu")
	var parts []*nvct.ShardReport
	for s := 0; s < 3; s++ {
		sr, err := tr.RunShardContext(context.Background(), nil, opts, nvct.Shard{Index: s, Count: 4}, nil)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		parts = append(parts, sr)
	}
	rep, err := nvct.MergeShards(nil, parts)
	if err != nil {
		t.Fatalf("partial merge: %v", err)
	}
	if len(rep.Tests) != 9 {
		t.Fatalf("partial merge kept %d trials, want 9", len(rep.Tests))
	}
	want := []int{3, 7, 11}
	if got := nvct.MissingTrials(parts); !reflect.DeepEqual(got, want) {
		t.Fatalf("missing trials = %v, want %v", got, want)
	}
	live := tr.RunCampaign(nil, opts)
	for k, idx := range []int{0, 1, 2, 4, 5, 6, 8, 9, 10} {
		if !reflect.DeepEqual(rep.Tests[k], live.Tests[idx]) {
			t.Errorf("partial merge trial %d (campaign index %d) differs from live", k, idx)
		}
	}
}

// TestParseShardReportRejectsGarble: the strict parser is the supervisor's
// garbled-worker detector; every corruption class it relies on must fail
// loudly.
func TestParseShardReportRejectsGarble(t *testing.T) {
	tr := tester(t, "mg")
	sr, err := tr.RunShardContext(context.Background(), nil, nvct.CampaignOpts{Tests: 6, Seed: 7}, nvct.Shard{Index: 1, Count: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	good, err := sr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nvct.ParseShardReport(good); err != nil {
		t.Fatalf("intact shard rejected: %v", err)
	}
	bad := map[string][]byte{
		"truncated":     good[:len(good)/2],
		"empty":         nil,
		"trailing":      append(append([]byte{}, good...), []byte("{}")...),
		"unknown field": []byte(`{"kernel":"mg","regions":1,"requested":6,"shard":1,"shards":2,"bogus":1,"trials":[]}`),
		"bad outcome":   []byte(`{"kernel":"mg","regions":1,"requested":6,"shard":1,"shards":2,"trials":[{"index":1,"crash_access":1,"crash_region":0,"crash_iter":0,"outcome":"S9"}]}`),
		"wrong shard":   []byte(`{"kernel":"mg","regions":1,"requested":6,"shard":1,"shards":2,"trials":[{"index":2,"crash_access":1,"crash_region":0,"crash_iter":0,"outcome":"S1"}]}`),
		"index range":   []byte(`{"kernel":"mg","regions":1,"requested":6,"shard":1,"shards":2,"trials":[{"index":7,"crash_access":1,"crash_region":0,"crash_iter":0,"outcome":"S1"}]}`),
		"no kernel":     []byte(`{"kernel":"","regions":1,"requested":6,"shard":1,"shards":2,"trials":[]}`),
		"bad shard":     []byte(`{"kernel":"mg","regions":1,"requested":6,"shard":2,"shards":2,"trials":[]}`),
	}
	for name, data := range bad {
		if _, err := nvct.ParseShardReport(data); err == nil {
			t.Errorf("%s: garbled shard accepted", name)
		}
	}
}

// TestMergeShardsRejectsDuplicates: a trial delivered twice means the parts
// are not a partition of one campaign; merging must refuse rather than pick.
func TestMergeShardsRejectsDuplicates(t *testing.T) {
	tr := tester(t, "mg")
	sr, err := tr.RunShardContext(context.Background(), nil, nvct.CampaignOpts{Tests: 6, Seed: 7}, nvct.Shard{Index: 0, Count: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nvct.MergeShards(nil, []*nvct.ShardReport{sr, sr}); err == nil {
		t.Fatal("duplicate shard parts merged without error")
	}
}
