package nvct

import (
	"context"
	"testing"
	"time"

	"easycrash/internal/apps"
	"easycrash/internal/mem"

	// Register the persistent KV workload under test.
	_ "easycrash/internal/pmemkv"
)

// TestPoisonedWALRestartNeverSilent pins the engine-level handling of a KV
// restart over a poisoned WAL. A detected-uncorrectable WAL must never let
// the store resume as a silent success: without the scrub path the restart
// aborts as a DUE (SDue, the regression this test pins — never S1/S2), and
// with scrubbing the WAL is re-initialised, the loss is accounted in
// ScrubbedObjects, and the oracle's audit is skipped rather than charging a
// violation for state the engine discarded on purpose.
func TestPoisonedWALRestartNeverSilent(t *testing.T) {
	f, err := apps.New("pmemkv", apps.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTester(f, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Crash deep in the run so plenty of puts are acknowledged and durable.
	const crashAt = 2000
	ps, completed := ts.runPhase1(context.Background(), nil, crashAt, 0, CampaignOpts{}, time.Time{}, errTestTimeout)
	if completed != nil {
		t.Fatalf("crash point %d did not fire (outcome %s)", crashAt, completed.Outcome)
	}
	defer ts.putDump(ps.dump)
	if ps.journal == nil {
		t.Fatal("phase 1 captured no ack journal from the KV kernel")
	}

	var wal mem.Object
	for _, o := range ts.golden.Candidates {
		if o.Name == "wal" {
			wal = o
		}
	}
	if wal.Size == 0 {
		t.Fatal("golden run registered no wal candidate")
	}
	poison := make(map[uint64]struct{})
	for b := wal.Addr &^ (mem.BlockSize - 1); b < wal.End(); b += mem.BlockSize {
		poison[b] = struct{}{}
	}

	st := ts.restartOnce(context.Background(), ps.dump, poison, ps.crash.Iter, ps.journal, false, time.Time{}, errTestTimeout, 0, nil, false)
	if st.outcome != SDue {
		t.Fatalf("unscrubbed restart over poisoned WAL classified %s, want %s", st.outcome, SDue)
	}

	st = ts.restartOnce(context.Background(), ps.dump, poison, ps.crash.Iter, ps.journal, true, time.Time{}, errTestTimeout, 0, nil, false)
	if st.scrubbed == 0 {
		t.Fatal("scrub restart re-initialised no objects")
	}
	if st.outcome == S1 || st.outcome == S2 {
		t.Fatalf("scrubbed WAL with acknowledged data classified %s — a silent success", st.outcome)
	}
	if st.outcome == SViol || len(st.violations) > 0 {
		t.Fatalf("scrub path charged oracle violations: %s %v", st.outcome, st.violations)
	}
}
