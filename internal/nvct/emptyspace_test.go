package nvct_test

import (
	"context"
	"errors"
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/mem"
	"easycrash/internal/nvct"
	"easycrash/internal/sim"
)

// idleKernel completes without issuing a single crash-eligible access: its
// main loop is empty. Its campaigns have an empty crash-point space.
type idleKernel struct{ it mem.Object }

func (k *idleKernel) Name() string        { return "idle" }
func (k *idleKernel) Description() string { return "no main-loop accesses" }
func (k *idleKernel) RegionCount() int    { return 1 }
func (k *idleKernel) NominalIters() int64 { return 1 }
func (k *idleKernel) Convergent() bool    { return false }
func (k *idleKernel) Setup(m *sim.Machine) {
	k.it = apps.AllocIter(m)
	m.Space().AllocF64("x", 8, true)
}
func (k *idleKernel) Init(m *sim.Machine) {}
func (k *idleKernel) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	m.MainLoopBegin()
	m.MainLoopEnd()
	return 1 - from, nil
}
func (k *idleKernel) Result(m *sim.Machine) []float64         { return []float64{0} }
func (k *idleKernel) Verify(m *sim.Machine, g []float64) bool { return true }
func (k *idleKernel) IterObject() mem.Object                  { return k.it }

// A campaign over an empty crash-point space must fail with a diagnosable
// error instead of panicking inside math/rand's Int63n.
func TestEmptyCrashSpaceIsACampaignError(t *testing.T) {
	tst, err := nvct.NewTester(func() apps.Kernel { return &idleKernel{} }, nvct.Config{})
	if err != nil {
		t.Fatalf("golden run of the idle kernel failed: %v", err)
	}
	rep, err := tst.RunCampaignContext(context.Background(), nil, nvct.CampaignOpts{Tests: 5, Seed: 1})
	if !errors.Is(err, nvct.ErrEmptyCrashSpace) {
		t.Fatalf("err = %v, want ErrEmptyCrashSpace", err)
	}
	if rep != nil {
		t.Fatal("campaign with no crash space returned a report")
	}
}
