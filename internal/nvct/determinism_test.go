package nvct_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"testing"

	"easycrash/internal/faultmodel"
	"easycrash/internal/nvct"
)

// reportDigest folds every replay-relevant field of a campaign report into
// one hash, so seed-replay tests can assert byte-identical results across
// parallelism settings, engine versions and block-store implementations.
// Map-valued fields are folded in sorted key order (the maps themselves are
// per-test and order-free; the digest must not depend on iteration order).
func reportDigest(r *nvct.Report) string {
	h := sha256.New()
	// The first six outcome counts are folded as a %v slice, which prints
	// exactly like the [6]int array the pre-oracle engine folded; the SViol
	// count is folded only when nonzero, so every pre-oracle digest holds.
	fmt.Fprintf(h, "kernel=%s regions=%d requested=%d tests=%d counts=%v\n",
		r.Kernel, r.Regions, r.Requested, len(r.Tests), r.Counts[:int(nvct.SErr)+1])
	if r.Counts[nvct.SViol] > 0 {
		fmt.Fprintf(h, "violations=%d\n", r.Counts[nvct.SViol])
	}
	for i, t := range r.Tests {
		fmt.Fprintf(h, "%d: acc=%d reg=%d iter=%d out=%s extra=%d scrub=%d err=%q\n",
			i, t.CrashAccess, t.CrashRegion, t.CrashIter, t.Outcome, t.ExtraIters, t.ScrubbedObjects, t.Err)
		for _, v := range t.Violations {
			fmt.Fprintf(h, "  viol=%q\n", v)
		}
		fmt.Fprintf(h, "  media=%+v\n", t.Media)
		names := make([]string, 0, len(t.Inconsistency))
		for name := range t.Inconsistency {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(h, "  inc %s=%.17g\n", name, t.Inconsistency[name])
		}
		for _, v := range t.FinalResult {
			fmt.Fprintf(h, "  final=%.17g\n", v)
		}
		// Nested-failure fields are folded only when populated, so classic
		// (depth-0) campaigns keep the exact digests pinned before the
		// nested engine existed.
		if t.Depth > 0 {
			fmt.Fprintf(h, "  depth=%d retries=%d\n", t.Depth, t.Retries)
			for lvl, c := range t.Chain {
				fmt.Fprintf(h, "  chain %d: acc=%d reg=%d iter=%d media=%+v\n",
					lvl, c.Access, c.Region, c.Iter, c.Media)
			}
			finals := make([]string, 0, len(t.FinalInconsistency))
			for name := range t.FinalInconsistency {
				finals = append(finals, name)
			}
			sort.Strings(finals)
			for _, name := range finals {
				fmt.Fprintf(h, "  fininc %s=%.17g\n", name, t.FinalInconsistency[name])
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Golden digests pin the exact campaign results for fixed seeds. They were
// captured on the pre-flat-store engine (map block store, fresh machine per
// test) and must survive any engine rework that does not intentionally
// change simulated behaviour. Regenerate by running these tests with -v and
// copying the logged digest after a deliberate behaviour change.
const (
	goldenBaselineDigest = "7ed409760abfd6422fbe87a5d13ef6d9f47c4dc9537976f91446efbb61f0f518"
	goldenPolicyDigest   = "383faaa9283cf2c5601dcd1aa9af43610f7487115e431f0955c92e07b515401a"
	goldenFaultsDigest   = "38a95eb3685b005297264bd1a21abb607ba83489d34d2b41c149fe90482983d4"

	goldenNestedDigest       = "c48e0f1df8dd010910f9aa08a9ed110c152cf5808bfd34846b06b3594a4c0301"
	goldenNestedFaultsDigest = "00186ae9413e09acfc2b949376317d8250afbae403a32942195076b08204f063"
)

func digestCampaign(t *testing.T, kernel string, policy *nvct.Policy, opts nvct.CampaignOpts) string {
	t.Helper()
	rep := tester(t, kernel).RunCampaign(policy, opts)
	if len(rep.Tests) != opts.Tests {
		t.Fatalf("campaign kept %d of %d tests", len(rep.Tests), opts.Tests)
	}
	return reportDigest(rep)
}

func checkGolden(t *testing.T, got, want, label string) {
	t.Helper()
	t.Logf("%s digest: %s", label, got)
	if want != "" && got != want {
		t.Errorf("%s digest = %s, want pinned %s", label, got, want)
	}
}

// TestSeedReplayBaseline: same seed, no faults — byte-identical report across
// serial and parallel execution, pinned against the pre-refactor engine.
func TestSeedReplayBaseline(t *testing.T) {
	opts := nvct.CampaignOpts{Tests: 30, Seed: 41, Parallel: 1}
	serial := digestCampaign(t, "lu", nil, opts)
	opts.Parallel = 4
	parallel := digestCampaign(t, "lu", nil, opts)
	if serial != parallel {
		t.Fatalf("baseline campaign differs across parallelism:\n serial   %s\n parallel %s", serial, parallel)
	}
	checkGolden(t, serial, goldenBaselineDigest, "baseline")
}

// TestSeedReplayPolicy: a persistence policy in the loop (flush traffic,
// different write-back interleavings) must replay identically too.
func TestSeedReplayPolicy(t *testing.T) {
	policy := nvct.IterationPolicy([]string{"u", "scal"})
	opts := nvct.CampaignOpts{Tests: 30, Seed: 43, Parallel: 1}
	serial := digestCampaign(t, "lu", policy, opts)
	opts.Parallel = 4
	parallel := digestCampaign(t, "lu", policy, opts)
	if serial != parallel {
		t.Fatalf("policy campaign differs across parallelism:\n serial   %s\n parallel %s", serial, parallel)
	}
	checkGolden(t, serial, goldenPolicyDigest, "policy")
}

// TestSeedReplayFaults: media faults draw from per-test seeded injectors;
// the fault stream and its outcomes must replay byte-identically.
func TestSeedReplayFaults(t *testing.T) {
	faults := faultmodel.Config{RBER: 2e-6, TornWrites: true, ECC: faultmodel.SECDED()}
	policy := nvct.IterationPolicy([]string{"u", "scal"})
	opts := nvct.CampaignOpts{Tests: 30, Seed: 47, Parallel: 1, Faults: faults, ScrubOnRestart: true}
	serial := digestCampaign(t, "lu", policy, opts)
	opts.Parallel = 4
	parallel := digestCampaign(t, "lu", policy, opts)
	if serial != parallel {
		t.Fatalf("faults campaign differs across parallelism:\n serial   %s\n parallel %s", serial, parallel)
	}
	checkGolden(t, serial, goldenFaultsDigest, "faults")
}

// TestSeedReplayNested: a K=2 nested-failure campaign draws the deeper crash
// points of every chain from per-trial seeds, so the whole chain structure
// (depths, retries, re-crash locations, final-crash inconsistency) must
// replay byte-identically across parallelism.
func TestSeedReplayNested(t *testing.T) {
	policy := nvct.IterationPolicy([]string{"u", "scal"})
	opts := nvct.CampaignOpts{Tests: 30, Seed: 43, Parallel: 1, RecrashDepth: 2}
	serial := digestCampaign(t, "lu", policy, opts)
	opts.Parallel = 4
	parallel := digestCampaign(t, "lu", policy, opts)
	if serial != parallel {
		t.Fatalf("nested campaign differs across parallelism:\n serial   %s\n parallel %s", serial, parallel)
	}
	checkGolden(t, serial, goldenNestedDigest, "nested")
}

// TestSeedReplayNestedFaults: nested chains compose with media faults — one
// injector per trial carries its RNG stream across the chain's power losses,
// and the scrub path is exercised when deep crashes poison blocks. The whole
// composition must replay byte-identically too.
func TestSeedReplayNestedFaults(t *testing.T) {
	faults := faultmodel.Config{RBER: 2e-6, TornWrites: true, ECC: faultmodel.SECDED()}
	policy := nvct.IterationPolicy([]string{"u", "scal"})
	opts := nvct.CampaignOpts{Tests: 30, Seed: 47, Parallel: 1, RecrashDepth: 2, Faults: faults, ScrubOnRestart: true}
	serial := digestCampaign(t, "lu", policy, opts)
	opts.Parallel = 4
	parallel := digestCampaign(t, "lu", policy, opts)
	if serial != parallel {
		t.Fatalf("nested+faults campaign differs across parallelism:\n serial   %s\n parallel %s", serial, parallel)
	}
	checkGolden(t, serial, goldenNestedFaultsDigest, "nested+faults")
}

// TestSeedReplaySharded: a campaign split into shards and merged back must
// reproduce the exact pinned digests of the single-process engine — the
// invariant the multi-process campaign runner (internal/campaignd) rests on.
// Pinned for both the classic baseline and the deepest composed path
// (nested chains + media faults + scrub).
func TestSeedReplaySharded(t *testing.T) {
	merged := runSharded(t, "lu", nil, nvct.CampaignOpts{Tests: 30, Seed: 41, Parallel: 1}, 4)
	checkGolden(t, reportDigest(merged), goldenBaselineDigest, "sharded baseline")

	faults := faultmodel.Config{RBER: 2e-6, TornWrites: true, ECC: faultmodel.SECDED()}
	policy := nvct.IterationPolicy([]string{"u", "scal"})
	opts := nvct.CampaignOpts{Tests: 30, Seed: 47, Parallel: 1, RecrashDepth: 2, Faults: faults, ScrubOnRestart: true}
	merged = runSharded(t, "lu", policy, opts, 4)
	checkGolden(t, reportDigest(merged), goldenNestedFaultsDigest, "sharded nested+faults")
}

// TestSeedReplayVerifiedFaults: the Verified variant drains the whole dirty
// hierarchy through WriteBackAll right before the faulted crash, so the
// media-write order of the drain is exposed to the fault injector's write
// hook. With the old map-ordered drain this sequence varied run to run; the
// drain must be deterministic for the campaign to replay.
func TestSeedReplayVerifiedFaults(t *testing.T) {
	faults := faultmodel.Config{RBER: 2e-6, TornWrites: true, ECC: faultmodel.SECDED()}
	policy := nvct.IterationPolicy([]string{"u", "scal"})
	opts := nvct.CampaignOpts{Tests: 30, Seed: 53, Parallel: 1, Faults: faults, Verified: true}
	first := digestCampaign(t, "lu", policy, opts)
	second := digestCampaign(t, "lu", policy, opts)
	if first != second {
		t.Fatalf("verified+faults campaign not deterministic:\n first  %s\n second %s", first, second)
	}
	opts.Parallel = 4
	parallel := digestCampaign(t, "lu", policy, opts)
	if first != parallel {
		t.Fatalf("verified+faults campaign differs across parallelism:\n serial   %s\n parallel %s", first, parallel)
	}
}
