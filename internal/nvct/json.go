// Stable JSON serialization of campaign reports, for archiving campaign
// results and diffing them across engine versions. The wire format is pinned
// by explicit DTOs rather than the internal structs: internal fields can move
// without breaking consumers, and a golden-file test holds the format still.
// Everything that makes the output nondeterministic in general JSON —
// map ordering, optional fields — is nailed down: encoding/json sorts map
// keys, zero-valued optional fields are omitted, and trial order is campaign
// order, so one campaign serializes to one byte sequence.
package nvct

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"easycrash/internal/faultmodel"
)

// reportJSON is the serialized form of a Report.
type reportJSON struct {
	Kernel    string         `json:"kernel"`
	Regions   int            `json:"regions"`
	Requested int            `json:"requested"`
	Tests     int            `json:"tests"`
	Counts    map[string]int `json:"counts"`
	Policy    *policyJSON    `json:"policy,omitempty"`
	Trials    []trialJSON    `json:"trials"`
}

// policyJSON mirrors Policy with stable field names.
type policyJSON struct {
	Objects        []string `json:"objects,omitempty"`
	AtIterationEnd bool     `json:"at_iteration_end,omitempty"`
	AtRegionEnds   []int    `json:"at_region_ends,omitempty"`
	Frequency      int64    `json:"frequency,omitempty"`
	Op             string   `json:"op"`
}

// trialJSON is one TestResult. Nested-failure and oracle fields are omitted
// when empty, so classic campaign output stays compact and stable.
type trialJSON struct {
	Index              int                   `json:"index"`
	CrashAccess        uint64                `json:"crash_access"`
	CrashRegion        int                   `json:"crash_region"`
	CrashIter          int64                 `json:"crash_iter"`
	Outcome            string                `json:"outcome"`
	ExtraIters         int64                 `json:"extra_iters,omitempty"`
	Inconsistency      map[string]float64    `json:"inconsistency,omitempty"`
	FinalResult        []float64             `json:"final_result,omitempty"`
	Media              *faultmodel.Injection `json:"media,omitempty"`
	ScrubbedObjects    int                   `json:"scrubbed_objects,omitempty"`
	Err                string                `json:"err,omitempty"`
	Violations         []string              `json:"violations,omitempty"`
	Depth              int                   `json:"depth,omitempty"`
	Retries            int                   `json:"retries,omitempty"`
	Chain              []chainJSON           `json:"chain,omitempty"`
	FinalInconsistency map[string]float64    `json:"final_inconsistency,omitempty"`
}

// chainJSON is one crash of a nested-failure chain.
type chainJSON struct {
	Access uint64                `json:"access"`
	Region int                   `json:"region"`
	Iter   int64                 `json:"iter"`
	Media  *faultmodel.Injection `json:"media,omitempty"`
}

func injectionJSON(m faultmodel.Injection) *faultmodel.Injection {
	if m == (faultmodel.Injection{}) {
		return nil
	}
	return &m
}

func (r *Report) toJSON() reportJSON {
	out := reportJSON{
		Kernel:    r.Kernel,
		Regions:   r.Regions,
		Requested: r.Requested,
		Tests:     len(r.Tests),
		Counts:    make(map[string]int, NumOutcomes),
		Trials:    make([]trialJSON, len(r.Tests)),
	}
	for o := 0; o < NumOutcomes; o++ {
		out.Counts[Outcome(o).String()] = r.Counts[o]
	}
	if r.Policy != nil {
		out.Policy = &policyJSON{
			Objects:        r.Policy.Objects,
			AtIterationEnd: r.Policy.AtIterationEnd,
			AtRegionEnds:   r.Policy.AtRegionEnds,
			Frequency:      r.Policy.Frequency,
			Op:             r.Policy.Op.String(),
		}
	}
	for i, t := range r.Tests {
		out.Trials[i] = toTrialJSON(i, t)
	}
	return out
}

// toTrialJSON serializes one TestResult. index is the trial's position in the
// serialized container: the slice position for whole reports, the global
// campaign index for shard parts.
func toTrialJSON(index int, t TestResult) trialJSON {
	tj := trialJSON{
		Index:           index,
		CrashAccess:     t.CrashAccess,
		CrashRegion:     t.CrashRegion,
		CrashIter:       t.CrashIter,
		Outcome:         t.Outcome.String(),
		ExtraIters:      t.ExtraIters,
		Inconsistency:   t.Inconsistency,
		FinalResult:     t.FinalResult,
		Media:           injectionJSON(t.Media),
		ScrubbedObjects: t.ScrubbedObjects,
		Err:             t.Err,
		Violations:      t.Violations,
		Depth:           t.Depth,
		Retries:         t.Retries,
	}
	if t.Depth > 0 {
		tj.FinalInconsistency = t.FinalInconsistency
		tj.Chain = make([]chainJSON, len(t.Chain))
		for l, c := range t.Chain {
			tj.Chain[l] = chainJSON{Access: c.Access, Region: c.Region, Iter: c.Iter, Media: injectionJSON(c.Media)}
		}
	}
	return tj
}

// fromTrialJSON deserializes one trial. The roundtrip through trialJSON is
// lossless for every field the report digest folds: encoding/json round-trips
// float64 exactly, and the omitted-when-empty fields decode to their Go zero
// values (a nil map where a live trial carried an empty one is invisible to
// both the digest and the stable serialization).
func fromTrialJSON(tj trialJSON) (TestResult, error) {
	out, err := parseOutcome(tj.Outcome)
	if err != nil {
		return TestResult{}, err
	}
	t := TestResult{
		CrashAccess:     tj.CrashAccess,
		CrashRegion:     tj.CrashRegion,
		CrashIter:       tj.CrashIter,
		Outcome:         out,
		ExtraIters:      tj.ExtraIters,
		Inconsistency:   tj.Inconsistency,
		FinalResult:     tj.FinalResult,
		ScrubbedObjects: tj.ScrubbedObjects,
		Err:             tj.Err,
		Violations:      tj.Violations,
		Depth:           tj.Depth,
		Retries:         tj.Retries,
	}
	if tj.Media != nil {
		t.Media = *tj.Media
	}
	if tj.Depth > 0 {
		t.FinalInconsistency = tj.FinalInconsistency
		t.Chain = make([]ChainCrash, len(tj.Chain))
		for l, c := range tj.Chain {
			t.Chain[l] = ChainCrash{Access: c.Access, Region: c.Region, Iter: c.Iter}
			if c.Media != nil {
				t.Chain[l].Media = *c.Media
			}
		}
	}
	return t, nil
}

// parseOutcome inverts Outcome.String.
func parseOutcome(s string) (Outcome, error) {
	for o := 0; o < NumOutcomes; o++ {
		if Outcome(o).String() == s {
			return Outcome(o), nil
		}
	}
	return 0, fmt.Errorf("nvct: unknown outcome %q", s)
}

// shardJSON is the wire format of one shard run — the file a campaignd worker
// hands back to its supervisor. Trial indices are global campaign indices.
type shardJSON struct {
	Kernel    string      `json:"kernel"`
	Regions   int         `json:"regions"`
	Requested int         `json:"requested"`
	Shard     int         `json:"shard"`
	Shards    int         `json:"shards"`
	Trials    []trialJSON `json:"trials"`
}

// JSON serializes the shard report to byte-stable JSON (same discipline as
// Report.JSON).
func (sr *ShardReport) JSON() ([]byte, error) {
	out := shardJSON{
		Kernel:    sr.Kernel,
		Regions:   sr.Regions,
		Requested: sr.Requested,
		Shard:     sr.Shard.Index,
		Shards:    sr.Shard.Count,
		Trials:    make([]trialJSON, len(sr.Trials)),
	}
	for i, tr := range sr.Trials {
		out.Trials[i] = toTrialJSON(tr.Index, tr.Res)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseShardReport deserializes and validates a worker's shard file. It is
// deliberately strict — unknown fields, unparsable outcomes, out-of-range or
// misassigned trial indices and unordered trials are all errors — because the
// supervisor uses parse failure as its garbled-worker detector: a worker that
// was killed mid-write or corrupted its output must be retried, never merged.
func ParseShardReport(data []byte) (*ShardReport, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var in shardJSON
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("nvct: malformed shard report: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("nvct: trailing data after shard report")
	}
	sh := Shard{Index: in.Shard, Count: in.Shards}
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	if in.Kernel == "" {
		return nil, fmt.Errorf("nvct: shard report without kernel")
	}
	if in.Requested <= 0 {
		return nil, fmt.Errorf("nvct: shard report with campaign size %d", in.Requested)
	}
	sr := &ShardReport{Kernel: in.Kernel, Regions: in.Regions, Requested: in.Requested, Shard: sh}
	prev := -1
	for _, tj := range in.Trials {
		if tj.Index < 0 || tj.Index >= in.Requested {
			return nil, fmt.Errorf("nvct: shard trial index %d outside campaign of %d tests", tj.Index, in.Requested)
		}
		if tj.Index%sh.Count != sh.Index {
			return nil, fmt.Errorf("nvct: trial %d does not belong to shard %d/%d", tj.Index, sh.Index, sh.Count)
		}
		if tj.Index <= prev {
			return nil, fmt.Errorf("nvct: shard trials out of order at index %d", tj.Index)
		}
		prev = tj.Index
		res, err := fromTrialJSON(tj)
		if err != nil {
			return nil, err
		}
		sr.Trials = append(sr.Trials, ShardTrial{Index: tj.Index, Res: res})
	}
	return sr, nil
}

// JSON serializes the report to indented, byte-stable JSON: the same campaign
// always produces the same bytes, so serialized reports can be diffed and
// golden-pinned.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r.toJSON(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the stable serialization to w.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
