// Stable JSON serialization of campaign reports, for archiving campaign
// results and diffing them across engine versions. The wire format is pinned
// by explicit DTOs rather than the internal structs: internal fields can move
// without breaking consumers, and a golden-file test holds the format still.
// Everything that makes the output nondeterministic in general JSON —
// map ordering, optional fields — is nailed down: encoding/json sorts map
// keys, zero-valued optional fields are omitted, and trial order is campaign
// order, so one campaign serializes to one byte sequence.
package nvct

import (
	"encoding/json"
	"io"

	"easycrash/internal/faultmodel"
)

// reportJSON is the serialized form of a Report.
type reportJSON struct {
	Kernel    string         `json:"kernel"`
	Regions   int            `json:"regions"`
	Requested int            `json:"requested"`
	Tests     int            `json:"tests"`
	Counts    map[string]int `json:"counts"`
	Policy    *policyJSON    `json:"policy,omitempty"`
	Trials    []trialJSON    `json:"trials"`
}

// policyJSON mirrors Policy with stable field names.
type policyJSON struct {
	Objects        []string `json:"objects,omitempty"`
	AtIterationEnd bool     `json:"at_iteration_end,omitempty"`
	AtRegionEnds   []int    `json:"at_region_ends,omitempty"`
	Frequency      int64    `json:"frequency,omitempty"`
	Op             string   `json:"op"`
}

// trialJSON is one TestResult. Nested-failure and oracle fields are omitted
// when empty, so classic campaign output stays compact and stable.
type trialJSON struct {
	Index              int                   `json:"index"`
	CrashAccess        uint64                `json:"crash_access"`
	CrashRegion        int                   `json:"crash_region"`
	CrashIter          int64                 `json:"crash_iter"`
	Outcome            string                `json:"outcome"`
	ExtraIters         int64                 `json:"extra_iters,omitempty"`
	Inconsistency      map[string]float64    `json:"inconsistency,omitempty"`
	FinalResult        []float64             `json:"final_result,omitempty"`
	Media              *faultmodel.Injection `json:"media,omitempty"`
	ScrubbedObjects    int                   `json:"scrubbed_objects,omitempty"`
	Err                string                `json:"err,omitempty"`
	Violations         []string              `json:"violations,omitempty"`
	Depth              int                   `json:"depth,omitempty"`
	Retries            int                   `json:"retries,omitempty"`
	Chain              []chainJSON           `json:"chain,omitempty"`
	FinalInconsistency map[string]float64    `json:"final_inconsistency,omitempty"`
}

// chainJSON is one crash of a nested-failure chain.
type chainJSON struct {
	Access uint64                `json:"access"`
	Region int                   `json:"region"`
	Iter   int64                 `json:"iter"`
	Media  *faultmodel.Injection `json:"media,omitempty"`
}

func injectionJSON(m faultmodel.Injection) *faultmodel.Injection {
	if m == (faultmodel.Injection{}) {
		return nil
	}
	return &m
}

func (r *Report) toJSON() reportJSON {
	out := reportJSON{
		Kernel:    r.Kernel,
		Regions:   r.Regions,
		Requested: r.Requested,
		Tests:     len(r.Tests),
		Counts:    make(map[string]int, NumOutcomes),
		Trials:    make([]trialJSON, len(r.Tests)),
	}
	for o := 0; o < NumOutcomes; o++ {
		out.Counts[Outcome(o).String()] = r.Counts[o]
	}
	if r.Policy != nil {
		out.Policy = &policyJSON{
			Objects:        r.Policy.Objects,
			AtIterationEnd: r.Policy.AtIterationEnd,
			AtRegionEnds:   r.Policy.AtRegionEnds,
			Frequency:      r.Policy.Frequency,
			Op:             r.Policy.Op.String(),
		}
	}
	for i, t := range r.Tests {
		tj := trialJSON{
			Index:              i,
			CrashAccess:        t.CrashAccess,
			CrashRegion:        t.CrashRegion,
			CrashIter:          t.CrashIter,
			Outcome:            t.Outcome.String(),
			ExtraIters:         t.ExtraIters,
			Inconsistency:      t.Inconsistency,
			FinalResult:        t.FinalResult,
			Media:              injectionJSON(t.Media),
			ScrubbedObjects:    t.ScrubbedObjects,
			Err:                t.Err,
			Violations:         t.Violations,
			Depth:              t.Depth,
			Retries:            t.Retries,
			FinalInconsistency: nil,
		}
		if t.Depth > 0 {
			tj.FinalInconsistency = t.FinalInconsistency
			tj.Chain = make([]chainJSON, len(t.Chain))
			for l, c := range t.Chain {
				tj.Chain[l] = chainJSON{Access: c.Access, Region: c.Region, Iter: c.Iter, Media: injectionJSON(c.Media)}
			}
		}
		out.Trials[i] = tj
	}
	return out
}

// JSON serializes the report to indented, byte-stable JSON: the same campaign
// always produces the same bytes, so serialized reports can be diffed and
// golden-pinned.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r.toJSON(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the stable serialization to w.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
