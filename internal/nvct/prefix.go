// Snapshot-tree campaign engine: simulate shared execution once, fork at
// every point where trials diverge.
//
// Every trial of a campaign executes the same deterministic pre-crash prefix;
// only the crash point and the per-trial fault draws differ. The live engine
// re-executes that prefix per test — O(tests × trace-length) simulated work,
// the dominant wall-clock term of large campaigns. This engine instead sorts
// the campaign's crash points ascending, advances ONE reference machine
// through the kernel, and at each point captures a copy-on-write fork of the
// simulated state (durable image pages, cache hierarchy, crash clock) via the
// crash clock's fork hook — the kernel's stack never unwinds. Media-fault
// campaigns share the prefix too: the reference machine carries an inert
// faultmodel.Recorder instead of an injector, so the shared image stays
// clean, and each branch replays its trial's seed-drawn injections on the
// fork (faultmodel.Injector.ReplayCrash), byte-identical to the injections a
// live run of that trial would have drawn.
//
// The tree does not stop at the first crash. Recovery runs are themselves
// shared: after every branch postmortem, trials whose next restart would
// begin from identical durable state — same restored candidate bytes, same
// bookmark, same poison set, same audit journal — are grouped, and ONE
// machine executes their common recovery. Where group members' re-crash arms
// differ (nested-failure chains draw per-trial points), the shared recovery
// forks again at each distinct arm, so a depth-K chain is a path through the
// tree and recovery-dominated campaigns stop paying K× recovery cost. The
// grouping key is an exact byte comparison over the ranges the restart path
// reads (the bookmark word and every candidate object), not a lossy hash:
// trials grouped together are indistinguishable to the restart code by
// construction.
//
// The fast path is an engine optimisation, not a semantics change: forks fire
// precisely where crash panics would, branches replay exactly the draws the
// live engine would make, and every attempt classifies through the same
// restartSetup/terminalAttempt/applyAttempt code the live engine runs. All
// golden-digest replay pins hold across both engines.
package nvct

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"easycrash/internal/apps"
	"easycrash/internal/faultmodel"
	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// forkJob hands one crash test's forked pre-crash state to a worker. Several
// jobs share one snapshot when the campaign drew duplicate crash points; the
// snapshot is immutable and resumed read-only.
type forkJob struct {
	idx   int // index into the campaign's points/results
	snap  *sim.Snapshot
	crash sim.Crash
	// journal is the reference kernel's ack-journal snapshot at the fork
	// point — exactly what a live crash at the same access would have
	// captured, since the fork hook fires where the crash panic would.
	journal apps.AckJournal
	// inflight is the last durable write still in flight at the fork point,
	// nil when no write happened since the last persistence sync — the state
	// the live engine's torn-write arming inspects at the crash panic site.
	inflight *faultmodel.InFlight
}

// treeMember is one trial's node state as it descends the snapshot tree: the
// accumulated test record plus the chain cursor the next recovery attempt
// restarts from. A terminal member carries its final record.
type treeMember struct {
	idx      int
	res      TestResult
	terminal bool
	arm      uint64 // the current round's drawn re-crash point (0 = unarmed)

	cur  chainCursor
	inj  *faultmodel.Injector // the trial's injector; RNG advances across its chain
	trng *rand.Rand           // the trial's re-crash point generator (nested only)
	// budget is the trial's retry budget (nested campaigns only).
	budget int
}

// memberGroup is one shared recovery attempt: every member restarts from
// byte-identical durable state. rep owns the group's dump.
type memberGroup struct {
	rep     *treeMember
	members []*treeMember
}

// treeEngine carries the campaign-constant state of one snapshot-tree run.
type treeEngine struct {
	t           *Tester
	ctx         context.Context
	points      []uint64
	seedAt      func(int) int64
	trialSeedAt func(int) int64
	space       uint64
	opts        CampaignOpts
	workers     int
	rep         *Report
	done        []bool
	// onDone, when non-nil, is invoked with a trial's index right after that
	// trial's result lands in rep.Tests/done. Calls may come from any worker
	// goroutine; the callback synchronises itself.
	onDone func(int)
	// iterObj is the kernel's bookmark object, captured from the reference
	// kernel after Setup; object geometry is deterministic across instances.
	iterObj mem.Object
}

// runTreeShared runs the campaign's tests off shared execution — one
// reference prefix run, then shared recovery rounds — filling rep.Tests/done
// in place. It returns false when the reference run fails outside the
// simulated-crash protocol; trials that already branched are still finished
// and recorded (their forks precede the failure), and the caller re-runs only
// the undone remainder on the live engine. Cancellation (ctx) is not a
// failure: the partial results stand, exactly as on the live engine.
func (t *Tester) runTreeShared(ctx context.Context, policy *Policy, points []uint64, seedAt, trialSeedAt func(int) int64, space uint64, opts CampaignOpts, workers int, rep *Report, done []bool, onDone func(int)) bool {
	e := &treeEngine{
		t: t, ctx: ctx, points: points, seedAt: seedAt, trialSeedAt: trialSeedAt,
		space: space, opts: opts, workers: workers, rep: rep, done: done,
		onDone: onDone,
	}

	// Visit crash points in ascending order so one forward pass of the
	// reference machine meets every one of them. The sort is stable so
	// duplicate points keep their draw order (not that workers care — each
	// test is independent — but it keeps scheduling reproducible).
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return points[order[a]] < points[order[b]] })

	// Level 0: branch postmortems run concurrently with the advancing
	// reference machine. members[i] is written by exactly one worker.
	members := make([]*treeMember, len(points))
	jobs := make(chan forkJob, 2*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				members[j.idx] = e.branchPrefixIsolated(j)
			}
		}()
	}

	// The reference run advances on this goroutine, forking at each distinct
	// crash point and dispatching one job per test drawn at it.
	pos := 0 // next undispatched entry of order
	refPanic := func() (refPanic any) {
		defer func() {
			if r := recover(); r != nil {
				if _, isAbort := r.(*sim.Abort); isAbort {
					return // campaign cancellation, not a failure
				}
				refPanic = r
			}
		}()
		k := t.factory()
		m := t.getMachine()
		defer t.putMachine(m)
		k.Setup(m)
		e.iterObj = k.IterObject()
		k.Init(m)
		if opts.CrashDuringPersistence {
			m.SetFlushCrashEligible(true)
		}
		if opts.Faults.Enabled() {
			// Where the live engine attaches each trial's injector, the
			// reference attaches one inert recorder: same write observation
			// window, no mutation of the shared image.
			m.AttachRecorder(&faultmodel.Recorder{})
		}
		m.SetPersister(newPolicyPersister(m, k, policy))
		setInterrupt(ctx, m, time.Time{}, errTestTimeout)
		m.SetForkHook(func(c sim.Crash) uint64 {
			snap := m.Fork()
			var journal apps.AckJournal
			if ck, ok := k.(apps.ConsistencyKernel); ok {
				journal = ck.Journal()
			}
			var inflight *faultmodel.InFlight
			if w, ok := m.InFlightWrite(); ok {
				w := w
				inflight = &w
			}
			p := points[order[pos]]
			for pos < len(order) && points[order[pos]] == p {
				select {
				case jobs <- forkJob{idx: order[pos], snap: snap, crash: c, journal: journal, inflight: inflight}:
				case <-ctx.Done():
					return 0 // stop forking; queued jobs still drain
				}
				pos++
			}
			if pos == len(order) {
				return 0
			}
			return points[order[pos]]
		})
		if len(order) > 0 {
			m.SetCrashAfter(points[order[0]])
		}
		budget := int64(float64(t.golden.Iters) * t.cfg.MaxIterFactor)
		_, _ = k.Run(m, 0, budget)
		return nil
	}()
	close(jobs)
	wg.Wait()

	if refPanic == nil && ctx.Err() == nil {
		// The reference run completed with crash points still pending: those
		// points exceed the run's total accesses, so their crashes never
		// fire — the same completed-run S1 record the live engine produces.
		for ; pos < len(order); pos++ {
			i := order[pos]
			rep.Tests[i] = TestResult{CrashAccess: points[i], CrashRegion: sim.NoRegion, Outcome: S1}
			done[i] = true
			if onDone != nil {
				onDone(i)
			}
		}
	}

	// Recovery rounds finish every branched trial — valid even when the
	// reference later failed, since each fork precedes the failure point.
	e.runRounds(members)
	return refPanic == nil
}

// branchPrefixIsolated takes one trial's level-0 branch postmortem, containing
// panics the way runOneIsolated does: a panicking postmortem becomes one SErr
// member instead of killing the worker pool; a campaign cancellation discards
// the half-finished trial (nil member, done stays false).
func (e *treeEngine) branchPrefixIsolated(j forkJob) (mb *treeMember) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(*sim.Abort); ok {
			mb = nil
			return
		}
		mb = &treeMember{idx: j.idx, terminal: true, res: TestResult{
			CrashAccess: j.crash.Access,
			CrashRegion: sim.NoRegion,
			Outcome:     SErr,
			Err:         fmt.Sprint(r),
		}}
	}()
	t := e.t
	m := t.getMachine()
	m.ResumeFrom(j.snap)
	inc := make(map[string]float64, len(t.golden.Candidates))
	for _, o := range t.golden.Candidates {
		inc[o.Name] = m.InconsistencyRate(o)
	}
	if e.opts.Verified {
		m.Hierarchy().WriteBackAll()
	}
	m.CrashNow()
	var media faultmodel.Injection
	var poison map[uint64]struct{}
	var inj *faultmodel.Injector
	if e.opts.Faults.Enabled() {
		// Replay the injections this trial's live run would have drawn: same
		// seed, same image state, same in-flight write for torn-write arming.
		inj = faultmodel.New(e.opts.Faults, e.seedAt(j.idx))
		media = inj.ReplayCrash(m.Image(), t.extent, j.inflight)
		poison = poisonSet(media, m)
	}
	dump := t.takeDump(m)
	t.putMachine(m)

	mb = &treeMember{
		idx: j.idx,
		res: TestResult{
			CrashAccess:   j.crash.Access,
			CrashRegion:   j.crash.Region,
			CrashIter:     j.crash.Iter,
			Inconsistency: inc,
			Media:         media,
		},
		cur: chainCursor{
			dump:      dump,
			poison:    poison,
			journal:   j.journal,
			firstIter: j.crash.Iter,
			prevIter:  j.crash.Iter,
		},
		inj: inj,
	}
	if e.opts.RecrashDepth > 0 {
		mb.res.Depth = 1
		mb.res.Chain = []ChainCrash{{Access: j.crash.Access, Region: j.crash.Region, Iter: j.crash.Iter, Media: media}}
		mb.res.FinalInconsistency = inc
		mb.trng = rand.New(rand.NewSource(e.trialSeedAt(j.idx)))
		mb.budget = chainBudget(e.opts)
	}
	return mb
}

// record finalises one trial's result in the campaign report.
func (e *treeEngine) record(mb *treeMember) {
	e.rep.Tests[mb.idx] = mb.res
	e.done[mb.idx] = true
	if e.onDone != nil {
		e.onDone(mb.idx)
	}
}

// runRounds drives the recovery levels of the tree: each round every live
// trial owes one recovery attempt; trials restarting from byte-identical
// durable state share one attempt, and distinct re-crash arms become further
// forks. Classic (depth-0) trials terminate after one round; nested chains
// survive as long as their re-crashes fire and budget remains.
func (e *treeEngine) runRounds(members []*treeMember) {
	var active []*treeMember
	for _, mb := range members {
		if mb == nil {
			continue
		}
		if mb.terminal {
			e.record(mb)
			continue
		}
		active = append(active, mb)
	}

	for len(active) > 0 && e.ctx.Err() == nil {
		// Pre-attempt bookkeeping in trial order: budget spend and per-trial
		// arm draws consume each trial's own generator, exactly as the live
		// chain would at this attempt.
		sort.Slice(active, func(a, b int) bool { return active[a].idx < active[b].idx })
		ready := active[:0]
		for _, mb := range active {
			if e.opts.RecrashDepth > 0 {
				arm, exhausted := nextArm(&mb.res, mb.trng, mb.budget, e.opts.RecrashDepth, e.space)
				if exhausted {
					// The chain still needs another restart but the budget
					// is spent: never reached a terminal state.
					mb.res.Outcome = S3
					mb.res.Err = ErrRetryBudgetExhausted.Error()
					e.t.putDump(mb.cur.dump)
					mb.cur.dump = nil
					mb.terminal = true
					e.record(mb)
					continue
				}
				mb.arm = arm
			} else {
				mb.arm = 0
			}
			ready = append(ready, mb)
		}
		groups := e.groupMembers(ready)
		active = active[:0]
		for _, sv := range e.runGroups(groups) {
			active = append(active, sv...)
		}
	}
	// Cancelled mid-campaign: remaining members are discarded half-finished,
	// exactly as the live engine discards in-flight trials.
}

// groupMembers partitions the round's trials into shared recovery attempts.
// Two trials share iff the restart path cannot distinguish them: equal crash
// iteration, equal poison set, equal audit journal, and byte-equal dumps over
// every range restartSetup reads (the bookmark word and all candidate
// objects). Grouping is by exact comparison, never by lossy hash, and is
// processed in trial order so group identity is deterministic.
func (e *treeEngine) groupMembers(ready []*treeMember) []*memberGroup {
	var groups []*memberGroup
	byKey := make(map[string][]*memberGroup)
	for _, mb := range ready {
		key := memberKey(mb)
		var g *memberGroup
		for _, cand := range byKey[key] {
			if e.dumpsEqual(cand.rep.cur.dump, mb.cur.dump) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &memberGroup{rep: mb, members: []*treeMember{mb}}
			byKey[key] = append(byKey[key], g)
			groups = append(groups, g)
			continue
		}
		g.members = append(g.members, mb)
		// The representative's dump serves the whole group.
		e.t.putDump(mb.cur.dump)
		mb.cur.dump = nil
	}
	return groups
}

// memberKey is the cheap pre-filter for grouping: trials with different crash
// iterations, poison sets or journals can never share a restart. Dump bytes
// are compared exactly afterwards (dumpsEqual).
func memberKey(mb *treeMember) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "iter=%d", mb.cur.prevIter)
	if len(mb.cur.poison) > 0 {
		bases := make([]uint64, 0, len(mb.cur.poison))
		//eclint:allow campaigndet — key material only; sorted before use
		for b := range mb.cur.poison {
			bases = append(bases, b)
		}
		sort.Slice(bases, func(a, b int) bool { return bases[a] < bases[b] })
		fmt.Fprintf(&sb, " poison=%v", bases)
	}
	if mb.cur.journal != nil {
		fmt.Fprintf(&sb, " journal=%#v", mb.cur.journal)
	}
	return sb.String()
}

// dumpsEqual compares two dumps over exactly the ranges the restart path
// reads: the 8-byte bookmark word and every candidate object. Equality over
// those ranges makes the restarts indistinguishable by construction —
// everything else a recovery touches is rebuilt by Setup/Init.
func (e *treeEngine) dumpsEqual(a, b []byte) bool {
	it := e.iterObj
	if !bytes.Equal(a[it.Addr:it.Addr+8], b[it.Addr:it.Addr+8]) {
		return false
	}
	for _, o := range e.t.golden.Candidates {
		if !bytes.Equal(a[o.Addr:o.End()], b[o.Addr:o.End()]) {
			return false
		}
	}
	return true
}

// runGroups executes the round's shared recovery attempts across the worker
// pool, returning each group's surviving (re-crashed) members.
func (e *treeEngine) runGroups(groups []*memberGroup) [][]*treeMember {
	out := make([][]*treeMember, len(groups))
	if e.workers <= 1 || len(groups) == 1 {
		for i, g := range groups {
			if e.ctx.Err() != nil {
				break
			}
			out[i] = e.runGroup(g)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	workers := e.workers
	if workers > len(groups) {
		workers = len(groups)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = e.runGroup(groups[i])
			}
		}()
	}
feed:
	for i := range groups {
		select {
		case next <- i:
		case <-e.ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	return out
}

// forkPoint is one armed re-crash captured during a shared recovery run.
type forkPoint struct {
	snap  *sim.Snapshot
	crash sim.Crash
	// journal is the merged ack journal the next life must audit against,
	// captured at the fork instant (the crashed life's volatile journal state
	// merged over the chain's baseline) — nil when the chain's baseline was
	// scrubbed away or the kernel has no consistency semantics.
	journal  apps.AckJournal
	inflight *faultmodel.InFlight
}

// runGroup executes one shared recovery attempt: a single restart drives
// every member's next chain step. Members whose arm fires branch at their
// fork and survive into the next round; the rest classify from the shared
// terminal state through the same attempt helpers the live engine uses. A
// panic outside the crash protocol becomes SErr for the members it actually
// reached, like runOneIsolated's containment.
func (e *treeEngine) runGroup(g *memberGroup) (survivors []*treeMember) {
	t := e.t
	resolved := make([]bool, len(g.members))
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(*sim.Abort); ok {
			return // cancellation: unresolved trials are discarded, not failed
		}
		for i, mb := range g.members {
			if resolved[i] {
				continue
			}
			mb.res = TestResult{
				CrashAccess: e.points[mb.idx],
				CrashRegion: sim.NoRegion,
				Outcome:     SErr,
				Err:         fmt.Sprint(r),
			}
			mb.terminal = true
			e.record(mb)
		}
	}()

	// Distinct arms ascending: the shared run forks once per distinct arm;
	// members drawn at the same arm share the fork.
	var arms []uint64
	for _, mb := range g.members {
		if mb.arm == 0 {
			continue
		}
		dup := false
		for _, a := range arms {
			if a == mb.arm {
				dup = true
				break
			}
		}
		if !dup {
			arms = append(arms, mb.arm)
		}
	}
	sort.Slice(arms, func(a, b int) bool { return arms[a] < arms[b] })

	k := t.factory()
	m := t.getMachine()
	defer t.putMachine(m)
	dump := g.rep.cur.dump
	g.rep.cur.dump = nil
	defer t.putDump(dump)
	rs, early := t.restartSetup(e.ctx, k, m, dump, g.rep.cur.poison, g.rep.cur.journal, e.opts.ScrubOnRestart, time.Time{}, errTestTimeout)
	if early != nil {
		for i, mb := range g.members {
			e.finishMember(mb, *early)
			resolved[i] = true
		}
		return nil
	}

	fps := make(map[uint64]*forkPoint, len(arms))
	if len(arms) > 0 {
		if e.opts.Faults.Enabled() {
			// The live engine attaches the trial's injector here (restartOnce
			// arms it after the restore phase); the shared run attaches an
			// inert recorder with the same observation window instead.
			m.AttachRecorder(&faultmodel.Recorder{})
		}
		ai := 0
		m.SetForkHook(func(c sim.Crash) uint64 {
			fp := &forkPoint{snap: m.Fork(), crash: c}
			if ck, ok := k.(apps.ConsistencyKernel); ok && rs.journal != nil {
				fp.journal = rs.journal.Merge(ck.Journal())
			}
			if w, ok := m.InFlightWrite(); ok {
				w := w
				fp.inflight = &w
			}
			fps[arms[ai]] = fp
			ai++
			if ai == len(arms) {
				return 0
			}
			return arms[ai]
		})
		m.RearmCrash(arms[0])
	}

	budget := int64(float64(t.golden.Iters) * t.cfg.MaxIterFactor)
	executed, err, interrupted, aborted := treeRecovery(k, m, rs.from, budget)
	if aborted {
		return nil // campaign cancelled; unresolved trials are discarded
	}

	// Branch members first: their chains continue from their forks, and a
	// later Result/Verify panic on the terminal machine must not take down
	// trials whose crash preceded the terminal state.
	needTerminal := false
	for i, mb := range g.members {
		if mb.arm > 0 {
			if fp := fps[mb.arm]; fp != nil {
				if e.branchRecoveryIsolated(mb, fp, rs) {
					survivors = append(survivors, mb)
				}
				resolved[i] = true
				continue
			}
			// The arm never fired: the recovery ended (or was interrupted)
			// before reaching it — this member classifies terminally.
		}
		needTerminal = true
	}
	if !needTerminal {
		return survivors
	}

	var st attemptResult
	if interrupted || err != nil {
		st = attemptResult{outcome: S3, scrubbed: rs.scrubbed, from: rs.from}
	} else {
		// Result and Verify read the terminal machine once; every terminal
		// member classifies from the same values, as their live runs would
		// have computed them from machines in identical states.
		final := k.Result(m)
		verifyOK := k.Verify(m, t.golden.Result)
		st = terminalAttempt(t.golden.Iters, rs, executed, final, verifyOK, g.rep.cur.prevIter)
	}
	for i, mb := range g.members {
		if resolved[i] {
			continue
		}
		e.finishMember(mb, st)
		resolved[i] = true
	}
	return survivors
}

// finishMember folds a terminal attempt result into one member's record —
// through applyClassicAttempt for depth-0 trials and the chain cursor's
// applyAttempt for nested trials, the same helpers the live engine uses.
func (e *treeEngine) finishMember(mb *treeMember, st attemptResult) {
	if e.opts.RecrashDepth > 0 {
		if !mb.cur.applyAttempt(&mb.res, st, e.t.golden.Iters) {
			// Unreachable: terminal attempt results carry no crash.
			panic("nvct: terminal attempt extended a chain")
		}
	} else {
		applyClassicAttempt(&mb.res, st)
	}
	mb.terminal = true
	e.record(mb)
}

// branchRecoveryIsolated takes one member's re-crash postmortem at its fork
// point, advancing its chain cursor to the new durable state. A panic becomes
// that member's SErr record (false: no survivor), mirroring runOneIsolated's
// per-trial containment.
func (e *treeEngine) branchRecoveryIsolated(mb *treeMember, fp *forkPoint, rs restartState) (survived bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(*sim.Abort); ok {
			panic(r) // cancellation is the group's to handle
		}
		mb.res = TestResult{
			CrashAccess: e.points[mb.idx],
			CrashRegion: sim.NoRegion,
			Outcome:     SErr,
			Err:         fmt.Sprint(r),
		}
		mb.terminal = true
		e.record(mb)
		survived = false
	}()
	t := e.t
	m := t.getMachine()
	m.ResumeFrom(fp.snap)
	inc := make(map[string]float64, len(t.golden.Candidates))
	for _, o := range t.golden.Candidates {
		inc[o.Name] = m.InconsistencyRate(o)
	}
	if e.opts.Verified {
		m.Hierarchy().WriteBackAll()
	}
	m.CrashNow()
	var media faultmodel.Injection
	var poison map[uint64]struct{}
	if mb.inj != nil {
		// The member's own injector replays this level's draws: its RNG has
		// already consumed the trial's earlier crashes, exactly like the one
		// injector a live chain threads through its lives.
		media = mb.inj.ReplayCrash(m.Image(), t.extent, fp.inflight)
		poison = poisonSet(media, m)
	}
	dump := t.takeDump(m)
	t.putMachine(m)

	crash := fp.crash
	st := attemptResult{
		scrubbed: rs.scrubbed,
		from:     rs.from,
		crash:    &crash,
		media:    media,
		dump:     dump,
		poison:   poison,
		inc:      inc,
		journal:  fp.journal,
	}
	if mb.cur.applyAttempt(&mb.res, st, t.golden.Iters) {
		panic("nvct: re-crash attempt did not extend the chain")
	}
	return true
}

// treeRecovery runs a shared recovery's main loop. With the fork hook
// intercepting every armed point, a *sim.Crash panic cannot come from the
// crash clock — it is re-thrown as the engine bug it is. Kernel runtime
// panics from corrupted restored state are the interruption the live engine's
// runRecovery reports; an Abort is the campaign being cancelled.
func treeRecovery(k apps.Kernel, m *sim.Machine, from, budget int64) (executed int64, err error, interrupted, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isCrash := r.(*sim.Crash); isCrash {
				panic(r) // the fork hook intercepts armed points; a bug
			}
			if _, isAbort := r.(*sim.Abort); isAbort {
				aborted = true
				return
			}
			interrupted = true
		}
	}()
	executed, err = k.Run(m, from, budget)
	return executed, err, false, false
}
