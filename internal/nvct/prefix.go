// Prefix-sharing campaign engine: simulate the shared pre-crash prefix once,
// fork at each crash point.
//
// Every trial of a faults-off campaign executes the same deterministic
// pre-crash prefix; only the crash point differs. The live engine re-executes
// that prefix per test — O(tests × trace-length) simulated work, the dominant
// wall-clock term of large campaigns. This engine instead sorts the shard's
// crash points ascending, advances ONE reference machine through the kernel,
// and at each point captures a copy-on-write fork of the simulated state
// (durable image pages, cache hierarchy, crash clock) via the crash clock's
// fork hook — the kernel's stack never unwinds. Each fork is handed to a
// worker, which resumes it on a pooled machine, takes exactly the postmortem
// the live engine takes, and finishes the test through the same finishOne /
// runChain code the live engine uses. Total cost: O(trace-length +
// tests × recovery).
//
// The fast path is an engine optimisation, not a semantics change: the fork
// hook fires precisely where the crash panic would, so the forked state is
// byte-identical to the state a live crash leaves behind, and all golden-
// digest replay pins hold across both engines.
package nvct

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"easycrash/internal/apps"
	"easycrash/internal/sim"
)

// forkJob hands one crash test's forked pre-crash state to a worker. Several
// jobs share one snapshot when the campaign drew duplicate crash points.
type forkJob struct {
	idx   int // index into the campaign's points/results
	snap  *sim.Snapshot
	crash sim.Crash
	// journal is the reference kernel's ack-journal snapshot at the fork
	// point — exactly what a live crash at the same access would have
	// captured, since the fork hook fires where the crash panic would.
	journal apps.AckJournal
}

// runPrefixShared runs the campaign's tests off one shared reference
// execution, filling rep.Tests/done in place. It returns false when the
// reference run fails outside the simulated-crash protocol — the caller then
// discards the partial results and re-runs the campaign on the live engine,
// which isolates per-test failures. Cancellation (ctx) is not a failure: the
// partial results stand, exactly as on the live engine.
func (t *Tester) runPrefixShared(ctx context.Context, policy *Policy, points []uint64, trialSeedAt func(int) int64, space uint64, opts CampaignOpts, workers int, rep *Report, done []bool) bool {
	// Visit crash points in ascending order so one forward pass of the
	// reference machine meets every one of them. The sort is stable so
	// duplicate points keep their draw order (not that workers care — each
	// test is independent — but it keeps scheduling reproducible).
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return points[order[a]] < points[order[b]] })

	jobs := make(chan forkJob, 2*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res, keep := t.finishForkedIsolated(ctx, j, trialSeedAt(j.idx), space, opts)
				if keep {
					rep.Tests[j.idx] = res
					done[j.idx] = true
				}
			}
		}()
	}

	// The reference run advances on this goroutine, forking at each distinct
	// crash point and dispatching one job per test drawn at it.
	pos := 0 // next undispatched entry of order
	refPanic := func() (refPanic any) {
		defer func() {
			if r := recover(); r != nil {
				if _, isAbort := r.(*sim.Abort); isAbort {
					return // campaign cancellation, not a failure
				}
				refPanic = r
			}
		}()
		k := t.factory()
		m := t.getMachine()
		defer t.putMachine(m)
		k.Setup(m)
		k.Init(m)
		if opts.CrashDuringPersistence {
			m.SetFlushCrashEligible(true)
		}
		m.SetPersister(newPolicyPersister(m, k, policy))
		setInterrupt(ctx, m, time.Time{}, errTestTimeout)
		m.SetForkHook(func(c sim.Crash) uint64 {
			snap := m.Fork()
			var journal apps.AckJournal
			if ck, ok := k.(apps.ConsistencyKernel); ok {
				journal = ck.Journal()
			}
			p := points[order[pos]]
			for pos < len(order) && points[order[pos]] == p {
				select {
				case jobs <- forkJob{idx: order[pos], snap: snap, crash: c, journal: journal}:
				case <-ctx.Done():
					return 0 // stop forking; queued jobs still drain
				}
				pos++
			}
			if pos == len(order) {
				return 0
			}
			return points[order[pos]]
		})
		if len(order) > 0 {
			m.SetCrashAfter(points[order[0]])
		}
		budget := int64(float64(t.golden.Iters) * t.cfg.MaxIterFactor)
		_, _ = k.Run(m, 0, budget)
		return nil
	}()
	close(jobs)
	wg.Wait()
	if refPanic != nil {
		return false
	}
	if ctx.Err() == nil {
		// The reference run completed with crash points still pending: those
		// points exceed the run's total accesses, so their crashes never
		// fire — the same completed-run S1 record the live engine produces.
		for ; pos < len(order); pos++ {
			i := order[pos]
			rep.Tests[i] = TestResult{CrashAccess: points[i], CrashRegion: sim.NoRegion, Outcome: S1}
			done[i] = true
		}
	}
	return true
}

// finishForkedIsolated finishes one forked crash test, containing panics the
// same way runOneIsolated does for live tests: a panicking recovery becomes
// one SErr result instead of killing the worker pool; a campaign cancellation
// discards the half-finished test.
func (t *Tester) finishForkedIsolated(ctx context.Context, j forkJob, trialSeed int64, space uint64, opts CampaignOpts) (res TestResult, keep bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(*sim.Abort); ok {
			// No per-test deadline exists on the fast path, so any abort is
			// the campaign context being cancelled.
			res, keep = TestResult{}, false
			return
		}
		res = TestResult{
			CrashAccess: j.crash.Access,
			CrashRegion: sim.NoRegion,
			Outcome:     SErr,
			Err:         fmt.Sprint(r),
		}
		keep = true
	}()
	return t.finishForked(ctx, j, trialSeed, space, opts), true
}

// finishForked resumes a fork on a pooled machine, takes the postmortem the
// live engine's runPhase1 takes — per-candidate inconsistency, the optional
// verified drain, the power loss, the durable dump — and then finishes the
// test through the shared classification code: finishOne for classic tests,
// runChain for nested-failure trials (whose recovery chains always run live).
func (t *Tester) finishForked(ctx context.Context, j forkJob, trialSeed int64, space uint64, opts CampaignOpts) TestResult {
	m := t.getMachine()
	m.ResumeFrom(j.snap)
	inc := make(map[string]float64, len(t.golden.Candidates))
	for _, o := range t.golden.Candidates {
		inc[o.Name] = m.InconsistencyRate(o)
	}
	if opts.Verified {
		m.Hierarchy().WriteBackAll()
	}
	m.CrashNow()
	dump := t.takeDump(m)
	t.putMachine(m)

	crash := j.crash
	ps := phase1State{crash: &crash, inc: inc, dump: dump, journal: j.journal}
	if opts.RecrashDepth > 0 {
		return t.runChain(ctx, ps, trialSeed, space, opts, time.Time{}, errTestTimeout)
	}
	return t.finishOne(ctx, ps, opts, time.Time{}, errTestTimeout)
}
