package nvct_test

import (
	"reflect"
	"runtime"
	"runtime/debug"
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/nvct"
)

// TestPrefixSharedMatchesLiveCampaign is the engine-level equivalence
// property behind the prefix-sharing fast path: for random seeds and crash
// points (faults off), a campaign run off one shared reference execution must
// be deep-equal — outcomes, inconsistency stats, final results, chains — to
// the same campaign with every pre-crash prefix replayed live from access 0.
// Testers are shared and machines pooled across these runs, so the property
// holds across pooled-machine recycling too.
func TestPrefixSharedMatchesLiveCampaign(t *testing.T) {
	cases := []struct {
		name   string
		kernel string
		policy *nvct.Policy
		opts   nvct.CampaignOpts
	}{
		{name: "baseline-serial", kernel: "lu",
			opts: nvct.CampaignOpts{Tests: 25, Seed: 7, Parallel: 1}},
		{name: "baseline-parallel", kernel: "lu",
			opts: nvct.CampaignOpts{Tests: 25, Seed: 7, Parallel: 4}},
		{name: "policy-verified", kernel: "lu",
			policy: nvct.IterationPolicy([]string{"u", "scal"}),
			opts:   nvct.CampaignOpts{Tests: 20, Seed: 11, Verified: true, Parallel: 4}},
		{name: "during-persistence", kernel: "lu",
			policy: nvct.IterationPolicy([]string{"u", "scal"}),
			opts:   nvct.CampaignOpts{Tests: 15, Seed: 3, CrashDuringPersistence: true, Parallel: 2}},
		{name: "nested-depth2", kernel: "lu",
			opts: nvct.CampaignOpts{Tests: 15, Seed: 5, RecrashDepth: 2, Parallel: 4}},
		{name: "second-kernel", kernel: "mg",
			opts: nvct.CampaignOpts{Tests: 15, Seed: 23, Parallel: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tt := tester(t, tc.kernel)
			fast := tt.RunCampaign(tc.policy, tc.opts)
			liveOpts := tc.opts
			liveOpts.NoPrefixShare = true
			live := tt.RunCampaign(tc.policy, liveOpts)
			if !reflect.DeepEqual(fast.Tests, live.Tests) {
				for i := range fast.Tests {
					if !reflect.DeepEqual(fast.Tests[i], live.Tests[i]) {
						t.Fatalf("test %d diverged:\nfast %+v\nlive %+v", i, fast.Tests[i], live.Tests[i])
					}
				}
				t.Fatal("reports diverged")
			}
			if fast.Counts != live.Counts {
				t.Fatalf("outcome counts diverged: fast %v live %v", fast.Counts, live.Counts)
			}
		})
	}
}

// TestPrefixSharedSimulatesPrefixOnce proves the fast path actually engages:
// a faults-off campaign of n tests builds the application once for the shared
// reference run plus once per restart — not twice per test as the live engine
// does. A counting factory observes the difference.
func TestPrefixSharedSimulatesPrefixOnce(t *testing.T) {
	inner, err := apps.New("lu", apps.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	counting := func() apps.Kernel {
		calls++
		return inner()
	}
	tt, err := nvct.NewTester(counting, nvct.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const tests = 20
	calls = 0
	tt.RunCampaign(nil, nvct.CampaignOpts{Tests: tests, Seed: 1, Parallel: 1})
	if calls > tests+2 {
		t.Fatalf("fast path built the application %d times for %d tests; want <= %d (one reference + one restart per test)",
			calls, tests, tests+2)
	}
	calls = 0
	tt.RunCampaign(nil, nvct.CampaignOpts{Tests: tests, Seed: 1, Parallel: 1, NoPrefixShare: true})
	if calls < 2*tests {
		t.Fatalf("live path built the application %d times for %d tests; want >= %d", calls, tests, 2*tests)
	}
}

// TestCampaignDumpBuffersPooled is the bench-guard for the satellite
// allocation fix: even on the live (NoPrefixShare) path, per-test durable
// dumps must come from the pool instead of allocating the image prefix fresh
// each test. GC is disabled so sync.Pool cannot shed its contents mid-
// measurement.
func TestCampaignDumpBuffersPooled(t *testing.T) {
	tt := tester(t, "lu")
	opts := nvct.CampaignOpts{Tests: 15, Seed: 9, Parallel: 1, NoPrefixShare: true}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Warm the machine and dump pools.
	tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 2, Seed: 9, Parallel: 1, NoPrefixShare: true})

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	tt.RunCampaign(nil, opts)
	runtime.ReadMemStats(&after)

	perTest := (after.TotalAlloc - before.TotalAlloc) / uint64(opts.Tests)
	// The historical engine allocated the full 64 MiB image per test (67 MB/
	// op in BENCH_cachesim.json). Pooled dumps bound per-test allocation by
	// transient postmortem state — orders of magnitude below that. The
	// threshold is generous so the guard only trips on a real regression.
	if perTest > 8<<20 {
		t.Fatalf("live campaign allocates %d bytes per test; dump pooling should keep it well under 8 MiB", perTest)
	}
}
