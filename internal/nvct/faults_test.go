package nvct_test

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"easycrash/internal/apps"
	"easycrash/internal/faultmodel"
	"easycrash/internal/nvct"
)

func TestExtendedOutcomeStrings(t *testing.T) {
	if nvct.SDue.String() != "DUE" || nvct.SErr.String() != "ERR" || nvct.SViol.String() != "VIOL" {
		t.Fatalf("extended outcome labels: %q %q %q", nvct.SDue, nvct.SErr, nvct.SViol)
	}
	if nvct.NumOutcomes != 7 {
		t.Fatalf("NumOutcomes = %d", nvct.NumOutcomes)
	}
}

func TestInvalidFaultConfigFailsCampaign(t *testing.T) {
	tt := tester(t, "mg")
	_, err := tt.RunCampaignContext(context.Background(), nil,
		nvct.CampaignOpts{Tests: 1, Seed: 1, Faults: faultmodel.Config{RBER: 2}})
	if err == nil {
		t.Fatal("RBER 2 accepted")
	}
}

// TestZeroFaultOptionsInert checks the tentpole's inertness guarantee: the
// hardened engine with all extensions at their zero values (plus the hooks
// that may be installed — scrub flag, a generous deadline, an explicit
// context) reproduces the classic campaign exactly.
func TestZeroFaultOptionsInert(t *testing.T) {
	tt := tester(t, "mg")
	policy := nvct.IterationPolicy([]string{"u"})
	base := tt.RunCampaign(policy, nvct.CampaignOpts{Tests: 20, Seed: 31})
	hardened, err := tt.RunCampaignContext(context.Background(), policy, nvct.CampaignOpts{
		Tests: 20, Seed: 31, ScrubOnRestart: true, TestTimeout: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Tests, hardened.Tests) || base.Counts != hardened.Counts {
		t.Fatal("zero-fault hardened campaign differs from the classic one")
	}
}

// TestFaultCampaignDeterministicAcrossParallel is an acceptance criterion:
// per-test fault seeds are drawn serially up front, so the injected faults do
// not depend on worker scheduling.
func TestFaultCampaignDeterministicAcrossParallel(t *testing.T) {
	tt := tester(t, "mg")
	opts := nvct.CampaignOpts{
		Tests: 16, Seed: 37,
		Faults: faultmodel.Config{RBER: 1e-5, TornWrites: true, ECC: faultmodel.SECDED()},
	}
	serial := opts
	serial.Parallel = 1
	parallel := opts
	parallel.Parallel = 4
	a := tt.RunCampaign(nil, serial)
	b := tt.RunCampaign(nil, parallel)
	if a.Counts != b.Counts {
		t.Fatalf("counts differ: %v vs %v", a.Counts, b.Counts)
	}
	for i := range a.Tests {
		if a.Tests[i].CrashAccess != b.Tests[i].CrashAccess ||
			a.Tests[i].Outcome != b.Tests[i].Outcome ||
			a.Tests[i].Media != b.Tests[i].Media {
			t.Fatalf("test %d differs between serial and parallel fault campaigns:\n%+v\n%+v",
				i, a.Tests[i], b.Tests[i])
		}
	}
}

// TestCrashDuringPersistenceParallelDeterminism pins the satellite: the
// flush-eligible tick space (which needs a profile run) must not perturb
// determinism across scheduling.
func TestCrashDuringPersistenceParallelDeterminism(t *testing.T) {
	tt := tester(t, "mg")
	policy := nvct.IterationPolicy([]string{"u", "r"})
	opts := nvct.CampaignOpts{Tests: 16, Seed: 41, CrashDuringPersistence: true}
	serial := opts
	serial.Parallel = 1
	parallel := opts
	parallel.Parallel = 4
	a := tt.RunCampaign(policy, serial)
	b := tt.RunCampaign(policy, parallel)
	for i := range a.Tests {
		if a.Tests[i].CrashAccess != b.Tests[i].CrashAccess || a.Tests[i].Outcome != b.Tests[i].Outcome {
			t.Fatalf("test %d differs between serial and parallel execution", i)
		}
	}
	if a.Counts != b.Counts {
		t.Fatalf("counts differ: %v vs %v", a.Counts, b.Counts)
	}
}

// TestRBERMonotonicallyDegradesRecomputability is an acceptance criterion:
// more raw bit errors can only hurt.
func TestRBERMonotonicallyDegradesRecomputability(t *testing.T) {
	tt := tester(t, "mg")
	policy := nvct.IterationPolicy([]string{"u", "r"})
	prev := 2.0
	for _, rber := range []float64{0, 1e-4, 1e-2} {
		rep := tt.RunCampaign(policy, nvct.CampaignOpts{
			Tests: 40, Seed: 43,
			Faults: faultmodel.Config{RBER: rber, TornWrites: true},
		})
		r := rep.Recomputability()
		if r > prev {
			t.Fatalf("recomputability rose from %.3f to %.3f as RBER grew to %g", prev, r, rber)
		}
		prev = r
		due, caught, missed := rep.MediaErrorCounts()
		if due != rep.Counts[nvct.SDue] {
			t.Fatalf("due %d != Counts[SDue] %d", due, rep.Counts[nvct.SDue])
		}
		if rber >= 1e-2 && caught+missed == 0 {
			t.Fatal("heavy silent corruption produced no silent-block outcomes")
		}
	}
}

func TestECCPoisonAndScrubFallback(t *testing.T) {
	tt := tester(t, "mg")
	policy := nvct.IterationPolicy([]string{"u", "r"})
	// DetectBits huge: every corrupted block becomes detected-uncorrectable,
	// so without scrubbing many tests abort as DUE.
	faults := faultmodel.Config{
		RBER: 1e-4,
		ECC:  faultmodel.ECC{CorrectBits: 1, DetectBits: 1 << 20},
	}
	abortRep := tt.RunCampaign(policy, nvct.CampaignOpts{Tests: 30, Seed: 47, Faults: faults})
	if abortRep.Counts[nvct.SDue] == 0 {
		t.Fatal("poison-everything ECC produced no DUE outcomes")
	}
	for _, tr := range abortRep.Tests {
		if tr.Outcome == nvct.SDue && tr.Media.PoisonedBlocks == 0 {
			t.Fatal("DUE outcome without poisoned blocks in the injection record")
		}
	}

	scrubRep := tt.RunCampaign(policy, nvct.CampaignOpts{Tests: 30, Seed: 47, Faults: faults, ScrubOnRestart: true})
	if scrubRep.Counts[nvct.SDue] != 0 {
		t.Fatalf("scrub-and-fallback restart still returned %d DUE", scrubRep.Counts[nvct.SDue])
	}
	var scrubbed int
	for _, tr := range scrubRep.Tests {
		scrubbed += tr.ScrubbedObjects
	}
	if scrubbed == 0 {
		t.Fatal("scrub path reports no scrubbed objects")
	}
	// Scrubbing recovers runnability: strictly more tests complete the
	// protocol (any outcome but DUE/ERR) than under abort-on-poison.
	completed := func(r *nvct.Report) int {
		return r.Counts[nvct.S1] + r.Counts[nvct.S2] + r.Counts[nvct.S3] + r.Counts[nvct.S4]
	}
	if completed(scrubRep) <= completed(abortRep) {
		t.Fatalf("scrubbing did not increase completed restarts: %d vs %d",
			completed(scrubRep), completed(abortRep))
	}
}

// TestPanicIsolation is the satellite-3 requirement: a kernel factory that
// panics in one test yields one errored result, not a dead campaign.
func TestPanicIsolation(t *testing.T) {
	f, err := apps.New("mg", apps.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	poisoned := func() apps.Kernel {
		calls++
		if calls == 4 { // golden run is call 1; blow up inside a later test
			panic("injected factory failure")
		}
		return f()
	}
	tt, err := nvct.NewTester(poisoned, nvct.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := tt.RunCampaign(nil, nvct.CampaignOpts{Tests: 6, Seed: 53, Parallel: 1})
	if len(rep.Tests) != 6 {
		t.Fatalf("campaign kept %d of 6 tests", len(rep.Tests))
	}
	if rep.Counts[nvct.SErr] != 1 {
		t.Fatalf("Counts[SErr] = %d, want exactly 1", rep.Counts[nvct.SErr])
	}
	for _, tr := range rep.Tests {
		if tr.Outcome == nvct.SErr && !strings.Contains(tr.Err, "injected factory failure") {
			t.Fatalf("SErr result does not carry the panic message: %q", tr.Err)
		}
	}
}

func TestTestTimeoutBecomesErr(t *testing.T) {
	tt := tester(t, "mg")
	rep, err := tt.RunCampaignContext(context.Background(), nil,
		nvct.CampaignOpts{Tests: 3, Seed: 59, Parallel: 1, TestTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts[nvct.SErr] != 3 {
		t.Fatalf("Counts = %v, want every test to blow the 1ns deadline", rep.Counts)
	}
	for _, tr := range rep.Tests {
		if !strings.Contains(tr.Err, "deadline") {
			t.Fatalf("timeout result message %q", tr.Err)
		}
	}
}

func TestCancelledCampaignReturnsPartialResults(t *testing.T) {
	tt := tester(t, "mg")

	// Already-cancelled context: no tests run, the error reports why.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := tt.RunCampaignContext(ctx, nil, nvct.CampaignOpts{Tests: 50, Seed: 61})
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	if rep == nil || len(rep.Tests) != 0 || rep.Requested != 50 {
		t.Fatalf("pre-cancelled campaign: %d tests kept, requested %d", len(rep.Tests), rep.Requested)
	}

	// Mid-run cancellation: the partial report holds only completed tests
	// and every kept test is fully classified.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	rep2, err2 := tt.RunCampaignContext(ctx2, nil, nvct.CampaignOpts{Tests: 5000, Seed: 61, Parallel: 2})
	if err2 == nil {
		t.Fatal("timed-out campaign returned nil error")
	}
	if len(rep2.Tests) >= 5000 {
		t.Fatal("campaign ignored cancellation")
	}
	var sum int
	for _, c := range rep2.Counts {
		sum += c
	}
	if sum != len(rep2.Tests) {
		t.Fatalf("counts %v do not match %d kept tests", rep2.Counts, len(rep2.Tests))
	}
	for _, tr := range rep2.Tests {
		if tr.Outcome == nvct.SErr {
			t.Fatalf("campaign cancellation leaked into results as SErr: %q", tr.Err)
		}
	}
}
