// Package nvct is the Non-Volatile memory Crash Tester — the Go counterpart
// of the paper's PIN-based NVCT tool (§3). It drives benchmark kernels on
// the simulated machine, triggers crashes at uniformly random points of the
// main computation loop, performs postmortem analysis (per-object data
// inconsistency rates), restarts the application from the durable NVM dump,
// and classifies the response:
//
//	S1 — successful recomputation, no extra iterations
//	S2 — successful recomputation with extra iterations
//	S3 — interruption (the restarted run could not complete)
//	S4 — acceptance verification fails
//
// Two outcomes extend the paper's classification for imperfect media and a
// hardened campaign engine (see CampaignOpts.Faults):
//
//	SDue — a detected-uncorrectable media error struck restart-critical data
//	SErr — the test itself errored (panic, per-test deadline)
//
// Kernels with client-visible persistence semantics (the persistent KV
// workload, apps.ConsistencyKernel) are additionally audited after every
// recovery against the acknowledged-operations journal the engine carries
// across each power loss (a WITCHER-style crash-consistency oracle):
//
//	SViol — recovery silently broke an acknowledged-durability promise
//
// A Tester owns one golden (undisturbed) run; campaigns of crash tests are
// then run against different persistence policies.
package nvct

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/faultmodel"
	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// Outcome classifies one crash-and-restart test (Figure 3, extended).
type Outcome int

const (
	// S1 is successful recomputation without extra iterations.
	S1 Outcome = iota
	// S2 is successful recomputation that needed extra iterations.
	S2
	// S3 is an interruption: the restarted run could not complete.
	S3
	// S4 is a failed acceptance verification.
	S4
	// SDue is a detected-uncorrectable media error: restart found the
	// bookmark or a persisted object poisoned by the ECC model and (absent
	// the scrub-and-fallback path) could not proceed. Beyond the paper,
	// which assumes intact NVM.
	SDue
	// SErr is a campaign-engine error: the test panicked outside the
	// simulated crash protocol or exceeded its per-test deadline. The
	// campaign records it and continues.
	SErr
	// SViol is a crash-consistency violation caught by the campaign's
	// WITCHER-style oracle: recovery completed, but the recovered state lies
	// about acknowledged operations — an acked write lost, a key regressed
	// to a stale value, or a never-acked value visible. Only kernels
	// implementing apps.ConsistencyKernel (the persistent KV workload) can
	// produce it; recomputation kernels have no acknowledgement semantics to
	// violate.
	SViol

	// NumOutcomes is the number of outcome classes (the size of
	// Report.Counts).
	NumOutcomes = int(SViol) + 1
)

// String returns the paper's label for the outcome (or the extension's).
func (o Outcome) String() string {
	switch o {
	case S1:
		return "S1"
	case S2:
		return "S2"
	case S3:
		return "S3"
	case S4:
		return "S4"
	case SDue:
		return "DUE"
	case SErr:
		return "ERR"
	case SViol:
		return "VIOL"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Policy describes a persistence policy: which data objects to flush and
// where. The loop-iterator bookmark is always flushed at iteration ends
// regardless of policy (paper footnote 3). A nil *Policy is the baseline:
// iterator-only, no object persistence.
type Policy struct {
	// Objects are the names of the data objects to persist.
	Objects []string
	// AtIterationEnd flushes the objects at the end of every Frequency-th
	// main-loop iteration.
	AtIterationEnd bool
	// AtRegionEnds flushes the objects at the end of each listed region
	// (every Frequency-th iteration).
	AtRegionEnds []int
	// Frequency is the persistence period in iterations; 0 or 1 = every
	// iteration (the paper's x parameter).
	Frequency int64
	// Op is the flush instruction; the zero value CLFLUSH is never what
	// you want for performance, so NewTester-built policies use CLFLUSHOPT
	// when Op is unset... callers may set CLWB explicitly.
	Op cachesim.FlushOp
}

// EveryRegionPolicy returns the most aggressive policy for the given
// objects: flush at the end of every region and every iteration. This is
// how the paper obtains the "best recomputability" reference and c_k^max.
func EveryRegionPolicy(objects []string, regions int) *Policy {
	all := make([]int, regions)
	for i := range all {
		all[i] = i
	}
	return &Policy{Objects: objects, AtIterationEnd: true, AtRegionEnds: all, Frequency: 1, Op: cachesim.CLFLUSHOPT}
}

// IterationPolicy returns a policy persisting the objects at the end of
// every main-loop iteration (the paper's "selecting data objects" step).
func IterationPolicy(objects []string) *Policy {
	return &Policy{Objects: objects, AtIterationEnd: true, Frequency: 1, Op: cachesim.CLFLUSHOPT}
}

// policyPersister adapts a Policy to sim.Persister.
type policyPersister struct {
	objs    []mem.Object
	iterObj mem.Object
	p       *Policy
	regions map[int]bool
}

func newPolicyPersister(m *sim.Machine, k apps.Kernel, p *Policy) *policyPersister {
	pp := &policyPersister{iterObj: k.IterObject(), p: p, regions: make(map[int]bool)}
	if p != nil {
		for _, name := range p.Objects {
			pp.objs = append(pp.objs, m.Space().MustObject(name))
		}
		for _, r := range p.AtRegionEnds {
			pp.regions[r] = true
		}
	}
	return pp
}

func (pp *policyPersister) due(it int64) bool {
	if pp.p == nil {
		return false
	}
	f := pp.p.Frequency
	if f <= 1 {
		return true
	}
	return it%f == 0
}

// RegionEnd implements sim.Persister.
func (pp *policyPersister) RegionEnd(m *sim.Machine, region int, it int64) {
	if pp.p != nil && pp.regions[region] && pp.due(it) {
		m.FlushObjects(pp.objs, pp.p.Op)
	}
}

// IterationEnd implements sim.Persister.
func (pp *policyPersister) IterationEnd(m *sim.Machine, it int64) {
	if pp.p != nil && pp.p.AtIterationEnd && pp.due(it) {
		m.FlushObjects(pp.objs, pp.p.Op)
	}
	// The iterator bookmark is always persisted; it is flushed outside the
	// machine's persistence accounting because the paper does not count it
	// as a persistence operation (footnote 3: "almost zero impact").
	m.Hierarchy().Flush(pp.iterObj.Addr, pp.iterObj.Size, cachesim.CLWB)
}

// Config configures a Tester.
type Config struct {
	// Cache is the cache geometry; zero value means cachesim.TestConfig.
	Cache cachesim.Config
	// NVMBytes is the simulated NVM capacity; 0 means 64 MiB.
	NVMBytes uint64
	// MaxIterFactor bounds restarted runs at MaxIterFactor*golden
	// iterations (paper: verification failure is declared after 2x);
	// 0 means 2.
	MaxIterFactor float64
	// ScalarAccess forces every machine the tester runs down the
	// per-element scalar access path instead of the batched engine. The two
	// must be behaviourally indistinguishable; equivalence tests run
	// campaigns in both modes and compare digests.
	ScalarAccess bool
}

func (c Config) withDefaults() Config {
	if c.Cache.Levels == nil {
		c.Cache = cachesim.TestConfig()
	}
	if c.NVMBytes == 0 {
		c.NVMBytes = 64 << 20
	}
	if c.MaxIterFactor == 0 {
		c.MaxIterFactor = 2
	}
	return c
}

// Golden describes the undisturbed reference run.
type Golden struct {
	Iters          int64
	MainAccesses   uint64
	RegionAccesses map[int]uint64
	Result         []float64
	CacheStats     cachesim.Stats
	PersistStats   sim.PersistStats
	NVMWrites      uint64
	Footprint      uint64
	CandidateBytes uint64
	Candidates     []mem.Object
	Regions        int
}

// TestResult is one crash-and-restart test.
type TestResult struct {
	CrashAccess   uint64
	CrashRegion   int
	CrashIter     int64
	Outcome       Outcome
	ExtraIters    int64
	Inconsistency map[string]float64 // per-candidate data inconsistent rate at the crash
	// FinalResult is the restarted run's outcome scalars (nil when the run
	// was interrupted); comparing it with the golden Result shows how far
	// the recomputation deviated.
	FinalResult []float64
	// Media summarises the media faults injected at this crash (zero when
	// the campaign runs with perfect media).
	Media faultmodel.Injection
	// ScrubbedObjects counts objects (including the iterator bookmark) the
	// scrub-and-fallback restart path re-initialised because their blocks
	// were poisoned. In a nested-failure trial it totals scrubs across all
	// recovery attempts.
	ScrubbedObjects int
	// Err holds the engine error behind an SErr outcome, the named failure
	// mode behind a budget-exhausted S3, or the workload's own detected
	// recovery failure behind an oracle-audited S3.
	Err string
	// Violations lists the crash-consistency violations behind an SViol
	// outcome, as reported by the kernel's post-recovery audit
	// (apps.ConsistencyKernel). Empty for every other outcome.
	Violations []string

	// The remaining fields are populated only by nested-failure campaigns
	// (CampaignOpts.RecrashDepth > 0); classic campaigns leave them zero so
	// their reports stay byte-identical to the single-crash engine.

	// Depth is the number of crashes in this trial's chain (>= 1): the
	// initial crash plus every crash that struck a recovery attempt.
	Depth int
	// Retries is the number of recovery attempts the trial consumed.
	Retries int
	// Chain records every crash of the chain in order; Chain[0] repeats the
	// initial crash (CrashAccess/CrashRegion/CrashIter/Media above).
	// Accesses of re-crashes count from the start of their recovery run.
	Chain []ChainCrash
	// FinalInconsistency is the per-candidate data-inconsistency rate at
	// the *final* crash of the chain — the state the successful (or failed)
	// last recovery actually started from.
	FinalInconsistency map[string]float64
}

// ChainCrash is one crash of a nested-failure trial's chain.
type ChainCrash struct {
	// Access is the demand-access index at which the crash fired, counted
	// from the start of the run it interrupted (the initial run for the
	// first entry, the recovery run for later ones).
	Access uint64
	// Region and Iter locate the crash in the kernel's main loop.
	Region int
	Iter   int64
	// Media summarises the media faults injected at this power loss; faults
	// accumulate on the image across the chain through one injector.
	Media faultmodel.Injection
}

// Success reports whether the application recomputed (S1 or S2).
func (r TestResult) Success() bool { return r.Outcome == S1 || r.Outcome == S2 }

// Report aggregates a campaign.
type Report struct {
	Kernel  string
	Policy  *Policy
	Tests   []TestResult
	Counts  [NumOutcomes]int // indexed by Outcome
	Regions int
	// Requested is the campaign size asked for; len(Tests) falls short of
	// it only when the campaign was cancelled mid-run (partial results).
	Requested int
}

// Recomputability is the paper's headline metric: the fraction of crashes
// that recompute successfully without extra iterations (S1).
func (r *Report) Recomputability() float64 {
	if len(r.Tests) == 0 {
		return 0
	}
	return float64(r.Counts[S1]) / float64(len(r.Tests))
}

// SuccessRate is the fraction of S1+S2 responses.
func (r *Report) SuccessRate() float64 {
	if len(r.Tests) == 0 {
		return 0
	}
	return float64(r.Counts[S1]+r.Counts[S2]) / float64(len(r.Tests))
}

// AvgExtraIters is the mean number of extra iterations over successful
// recomputations (Table 1's restart overhead).
func (r *Report) AvgExtraIters() float64 {
	var n, sum int64
	for _, t := range r.Tests {
		if t.Success() {
			n++
			sum += t.ExtraIters
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// RegionRecomputability returns per-region S1 fractions (the c_k of §5.2)
// and per-region test counts.
func (r *Report) RegionRecomputability() (rec map[int]float64, tests map[int]int) {
	s1 := make(map[int]int)
	tests = make(map[int]int)
	for _, t := range r.Tests {
		tests[t.CrashRegion]++
		if t.Outcome == S1 {
			s1[t.CrashRegion]++
		}
	}
	rec = make(map[int]float64, len(tests))
	//eclint:allow campaigndet — independent per-key map fill, order-insensitive
	for k, n := range tests {
		rec[k] = float64(s1[k]) / float64(n)
	}
	return rec, tests
}

// MediaErrorCounts separates the media-fault outcomes of a campaign:
// due counts detected-uncorrectable results (SDue), silentCaught counts
// tests where silently corrupted blocks survived into restart but the
// acceptance verification failed (S4), and silentMissed counts tests where
// silent corruption passed verification (S1/S2) — the most dangerous class.
func (r *Report) MediaErrorCounts() (due, silentCaught, silentMissed int) {
	due = r.Counts[SDue]
	for _, t := range r.Tests {
		if t.Media.SilentBlocks == 0 {
			continue
		}
		switch t.Outcome {
		case S4:
			silentCaught++
		case S1, S2:
			silentMissed++
		}
	}
	return due, silentCaught, silentMissed
}

// ConsistencyViolations returns the number of SViol tests and the total
// count of individual violations their audits listed.
func (r *Report) ConsistencyViolations() (tests, listed int) {
	tests = r.Counts[SViol]
	for _, t := range r.Tests {
		listed += len(t.Violations)
	}
	return tests, listed
}

// InconsistencyVectors extracts, for each candidate object, the paired
// vectors (inconsistency rate, success as 0/1) across all tests — the input
// to the Spearman analysis of §5.1.
func (r *Report) InconsistencyVectors() map[string][2][]float64 {
	out := make(map[string][2][]float64)
	for _, t := range r.Tests {
		//eclint:allow campaigndet — one append per name per test; each vector's order follows Tests order
		for name, rate := range t.Inconsistency {
			v := out[name]
			v[0] = append(v[0], rate)
			s := 0.0
			if t.Outcome == S1 {
				s = 1
			}
			v[1] = append(v[1], s)
			out[name] = v
		}
	}
	return out
}

// Tester owns the golden run for one kernel and runs crash campaigns.
type Tester struct {
	factory apps.Factory
	cfg     Config
	golden  Golden
	name    string

	// machines recycles simulated machines across crash tests: building a
	// machine allocates the full NVM image plus the cache arena, so a
	// campaign of thousands of tests reuses one machine per worker instead.
	// Every Get is Reset before use; reuse must stay behaviourally invisible.
	machines sync.Pool

	// dumps recycles post-crash durable-image dump buffers. A dump covers
	// [0, extent) — the allocation high-water mark of the golden run — not
	// the full NVM capacity: in-band traffic never writes past the extent,
	// and the restart phase only indexes registered objects, all below it.
	dumps sync.Pool

	// extent is the golden run's allocation high-water mark; campaign runs
	// re-execute the same kernel setup, so their extent is identical.
	extent uint64
}

// getMachine returns a pristine machine for this tester's configuration,
// recycling a pooled one when available.
func (t *Tester) getMachine() *sim.Machine {
	if v := t.machines.Get(); v != nil {
		m := v.(*sim.Machine)
		m.Reset()
		m.SetScalarAccess(t.cfg.ScalarAccess)
		return m
	}
	m := sim.NewMachine(t.cfg.NVMBytes, t.cfg.Cache)
	m.SetScalarAccess(t.cfg.ScalarAccess)
	return m
}

// putMachine recycles a machine. The machine may be in any post-run state —
// the next getMachine resets it — but must no longer be referenced by the
// caller.
func (t *Tester) putMachine(m *sim.Machine) { t.machines.Put(m) }

// takeDump copies the machine's durable image prefix — everything the golden
// run allocated — into a pooled buffer. It replaces the historical full-image
// Snapshot per crash test (67 MB allocated per test on a 64 MiB image): the
// restart phase reads the dump only inside registered objects, all of which
// lie below the extent.
func (t *Tester) takeDump(m *sim.Machine) []byte {
	var buf []byte
	if v := t.dumps.Get(); v != nil {
		buf = v.([]byte)
	}
	if uint64(cap(buf)) < t.extent {
		buf = make([]byte, t.extent)
	}
	buf = buf[:t.extent]
	//eclint:allow directmem — postmortem dump of the durable image after the crash
	copy(buf, m.Image().Bytes(0, t.extent))
	return buf
}

// putDump recycles a dump buffer once no attempt can read it any more.
func (t *Tester) putDump(b []byte) {
	if b != nil {
		t.dumps.Put(b)
	}
}

// NewTester performs the golden run and returns a ready Tester.
func NewTester(factory apps.Factory, cfg Config) (*Tester, error) {
	cfg = cfg.withDefaults()
	t := &Tester{factory: factory, cfg: cfg}
	g, name, err := t.runGolden(nil)
	if err != nil {
		return nil, err
	}
	t.golden = g
	t.name = name
	return t, nil
}

// Golden returns the golden-run profile.
func (t *Tester) Golden() Golden { return t.golden }

// Name returns the kernel name.
func (t *Tester) Name() string { return t.name }

// Config returns the effective configuration.
func (t *Tester) Config() Config { return t.cfg }

// runGolden executes one undisturbed run under the given policy (nil =
// iterator-only) and profiles it.
func (t *Tester) runGolden(policy *Policy) (Golden, string, error) {
	k := t.factory()
	m := t.getMachine()
	defer t.putMachine(m)
	k.Setup(m)
	k.Init(m)
	m.SetPersister(newPolicyPersister(m, k, policy))
	m.Image().ResetWriteCounters()
	budget := int64(float64(k.NominalIters()) * t.cfg.MaxIterFactor)
	executed, err := k.Run(m, 0, budget)
	if err != nil {
		return Golden{}, "", fmt.Errorf("nvct: golden run of %s failed: %w", k.Name(), err)
	}
	res := k.Result(m)
	if !k.Verify(m, res) {
		return Golden{}, "", fmt.Errorf("nvct: golden run of %s does not verify against itself", k.Name())
	}
	t.extent = m.Space().Extent()
	g := Golden{
		Iters:          executed,
		MainAccesses:   m.MainAccesses(),
		RegionAccesses: m.RegionAccesses(),
		Result:         res,
		CacheStats:     m.Hierarchy().Stats(),
		PersistStats:   m.PersistStats(),
		NVMWrites:      m.Image().BlockWrites(),
		Footprint:      m.Space().Footprint(),
		CandidateBytes: m.Space().CandidateFootprint(),
		Candidates:     m.Space().Candidates(),
		Regions:        k.RegionCount(),
	}
	return g, k.Name(), nil
}

// ProfileRun executes one undisturbed run under the given policy and
// returns its profile (used by the performance model: persistence counts,
// cache traffic, NVM writes).
func (t *Tester) ProfileRun(policy *Policy) (Golden, error) {
	g, _, err := t.runGolden(policy)
	return g, err
}

// ProfileRunWith executes one undisturbed run with a caller-built persister
// (e.g. the checkpoint/restart baseline of package ckpt). makePersister is
// invoked after kernel setup and initialisation, so it may allocate extra
// objects (checkpoint shadow space) on the machine.
func (t *Tester) ProfileRunWith(makePersister func(m *sim.Machine, k apps.Kernel) sim.Persister) (Golden, error) {
	k := t.factory()
	m := t.getMachine()
	defer t.putMachine(m)
	k.Setup(m)
	k.Init(m)
	m.SetPersister(makePersister(m, k))
	m.Image().ResetWriteCounters()
	budget := int64(float64(k.NominalIters()) * t.cfg.MaxIterFactor)
	executed, err := k.Run(m, 0, budget)
	if err != nil {
		return Golden{}, fmt.Errorf("nvct: profile run of %s failed: %w", k.Name(), err)
	}
	return Golden{
		Iters:          executed,
		MainAccesses:   m.MainAccesses(),
		RegionAccesses: m.RegionAccesses(),
		Result:         k.Result(m),
		CacheStats:     m.Hierarchy().Stats(),
		PersistStats:   m.PersistStats(),
		NVMWrites:      m.Image().BlockWrites(),
		Footprint:      m.Space().Footprint(),
		CandidateBytes: m.Space().CandidateFootprint(),
		Candidates:     m.Space().Candidates(),
		Regions:        k.RegionCount(),
	}, nil
}

// CampaignOpts configures one crash-test campaign.
type CampaignOpts struct {
	Tests int
	Seed  int64
	// Verified runs the paper's copy-based verification variant (§6
	// "Result verification"): at the crash point all candidate state is
	// forced consistent before the dump, as making a data copy would.
	Verified bool
	// Parallel is the number of crash tests run concurrently; every test
	// owns its machines, so campaigns parallelise perfectly. 0 means
	// GOMAXPROCS; 1 forces serial execution. Results are deterministic for
	// a given Seed regardless of parallelism.
	Parallel int
	// CrashDuringPersistence makes persistence operations crash-eligible:
	// each flushed block advances the crash clock, so crashes can strike
	// mid-flush and leave an object set partially persisted. Crash points
	// are then drawn over the policy's own (demand + flush) tick count.
	CrashDuringPersistence bool
	// Faults configures the NVM media-fault layer applied at each crash:
	// torn writes, raw bit errors, per-block ECC. The zero value is inert —
	// no injector is attached and campaigns reproduce the perfect-media
	// results byte for byte.
	Faults faultmodel.Config
	// ScrubOnRestart enables the production scrub-and-fallback restart
	// path: instead of aborting on a detected-uncorrectable block (SDue),
	// restart re-initialises the poisoned object (and restarts from
	// iteration 0 when the bookmark itself is poisoned, counting the
	// redone iterations as extra).
	ScrubOnRestart bool
	// TestTimeout bounds each crash test (both phases); a test exceeding
	// it is recorded as an SErr result and the campaign continues. 0 means
	// no per-test deadline.
	TestTimeout time.Duration
	// RecrashDepth enables the nested-failure model: up to RecrashDepth
	// additional crashes may fire during recovery, so one trial becomes a
	// crash chain of depth at most RecrashDepth+1. Crash points for every
	// level of the chain are derived from the campaign seed, so nested
	// campaigns replay byte-identically. 0 is the classic single-crash
	// campaign (the paper's model) and reproduces its results exactly.
	RecrashDepth int
	// RetryBudget caps the recovery attempts one trial may consume when
	// RecrashDepth > 0. A trial that still needs another restart once the
	// budget is spent is classified S3 with ErrRetryBudgetExhausted
	// recorded. 0 means RecrashDepth+1 — enough to finish any chain.
	RetryBudget int
	// TrialDeadline bounds one trial's whole crash chain (all phases); a
	// trial exceeding it is recorded as SErr with ErrTrialDeadline and the
	// campaign continues. 0 means no trial deadline.
	TrialDeadline time.Duration
	// NoPrefixShare disables the prefix-sharing fast path, forcing every
	// test to re-execute its pre-crash prefix live (the historical engine).
	// The fast path simulates the shared prefix once on a reference machine
	// and forks at each crash point; it produces byte-identical reports, so
	// this switch exists for benchmarking and differential testing, not for
	// correctness. Campaigns with media faults or per-test/per-trial
	// deadlines always run live regardless.
	NoPrefixShare bool
}

// errTestTimeout marks a per-test deadline abort so it can be told apart
// from a campaign-wide cancellation.
var errTestTimeout = errors.New("nvct: per-test deadline exceeded")

// ErrRetryBudgetExhausted reports a nested-failure trial whose recovery kept
// crashing until the per-trial retry budget was spent: the application never
// reached a terminal classification, so the trial is recorded as S3 with
// this error. Test with errors.Is against TestResult-carried strings via
// Report helpers, or directly on campaign setup errors.
var ErrRetryBudgetExhausted = errors.New("nvct: retry budget exhausted before recovery completed")

// ErrTrialDeadline reports a trial that exceeded its wall-clock deadline
// (CampaignOpts.TrialDeadline) somewhere in its crash chain. The trial is
// recorded as SErr and the campaign continues. Test with errors.Is.
var ErrTrialDeadline = errors.New("nvct: trial deadline exceeded")

// ErrEmptyCrashSpace reports a campaign whose crash-point space is empty:
// the kernel's main loop issued zero crash-eligible accesses (or the
// crash-eligible tick profile measured zero ticks), so no crash point can be
// drawn. Test with errors.Is.
var ErrEmptyCrashSpace = errors.New("nvct: empty crash-point space (main loop issued no crash-eligible accesses)")

// RunCampaign runs a crash-test campaign under the given persistence policy
// (nil = baseline iterator-only). It is RunCampaignContext without
// cancellation; setup errors (an invalid fault configuration, a failed
// tick-profile run) panic, as they are programming errors at this call site.
func (t *Tester) RunCampaign(policy *Policy, opts CampaignOpts) *Report {
	rep, err := t.RunCampaignContext(context.Background(), policy, opts)
	if err != nil {
		panic(fmt.Errorf("nvct: campaign setup failed: %w", err))
	}
	return rep
}

// RunCampaignContext runs a crash-test campaign under the given persistence
// policy (nil = baseline iterator-only), honouring ctx: when ctx is
// cancelled mid-run, in-flight tests abort promptly, the partial report of
// completed tests is returned alongside ctx's error, and no goroutines are
// leaked. A non-cancellation error (invalid fault configuration, failed
// tick-profile run) returns a nil report.
func (t *Tester) RunCampaignContext(ctx context.Context, policy *Policy, opts CampaignOpts) (*Report, error) {
	plan, err := t.planCampaign(policy, &opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Kernel:    t.name,
		Policy:    policy,
		Regions:   t.golden.Regions,
		Tests:     make([]TestResult, opts.Tests),
		Requested: opts.Tests,
	}
	done := make([]bool, opts.Tests)
	t.runPlanned(ctx, policy, plan.points, plan.seedAt, plan.trialSeedAt, plan.space, opts, rep, done, nil)

	// Compact to the completed tests (a no-op unless cancelled early).
	kept := rep.Tests[:0]
	for i := range rep.Tests {
		if done[i] {
			kept = append(kept, rep.Tests[i])
		}
	}
	rep.Tests = kept
	for _, res := range rep.Tests {
		rep.Counts[res.Outcome]++
	}
	return rep, ctx.Err()
}

// runPlanned executes the planned trials described by points/seedAt/
// trialSeedAt (index-aligned slices of one campaign plan, or a remapped
// subset of one — see RunShardContext), filling rep.Tests[i] and done[i] in
// place. It owns engine selection: the snapshot-tree fast path when eligible,
// the live engine otherwise (and as per-trial fallback after a reference-run
// failure). onDone, when non-nil, is invoked with the local trial index after
// each trial's record lands; it is called from worker goroutines, so the
// callback must be safe for concurrent use.
func (t *Tester) runPlanned(ctx context.Context, policy *Policy, points []uint64, seedAt, trialSeedAt func(int) int64, space uint64, opts CampaignOpts, rep *Report, done []bool, onDone func(int)) {
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	runIdx := func(i int) {
		res, keep := t.runOneIsolated(ctx, policy, points[i], seedAt(i), trialSeedAt(i), space, opts, nil)
		if keep {
			rep.Tests[i] = res
			done[i] = true
			if onDone != nil {
				onDone(i)
			}
		}
	}
	// runLive runs every not-yet-done trial on the live engine. Skipping
	// done[i] makes it double as the fallback after a failed shared run:
	// trials the tree engine already finished stay finished.
	runLive := func() {
		if workers == 1 {
			for i := range points {
				if ctx.Err() != nil {
					break
				}
				if done[i] {
					continue
				}
				runIdx(i)
			}
			return
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					runIdx(i)
				}
			}()
		}
	feed:
		for i := range points {
			if done[i] {
				continue
			}
			select {
			case next <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
	}

	// Snapshot-tree sharing simulates the shared pre-crash prefix once and
	// forks at each crash point instead of re-executing it per test; trials
	// whose recoveries restart from identical durable state then share forked
	// recovery runs round by round. Media-fault campaigns share too: the
	// reference run records writes without injecting, and each branch replays
	// its trial's seed-drawn injections on the fork. The engine stands down
	// only when the per-test/per-trial watchdogs are set — they bound each
	// test's own execution, which a shared reference run has no analogue for.
	if !opts.NoPrefixShare && opts.TestTimeout == 0 && opts.TrialDeadline == 0 {
		if !t.runTreeShared(ctx, policy, points, seedAt, trialSeedAt, space, opts, workers, rep, done, onDone) {
			// The reference run failed outside the simulated-crash protocol
			// (a panicking kernel, an engine bug). Trials that already
			// branched off the shared prefix are complete and correct — their
			// forks precede the failure — so only the undone remainder
			// re-runs on the live engine, which isolates such failures per
			// test.
			runLive()
		}
	} else {
		runLive()
	}
}

// campaignPlan is the serially drawn, seed-derived state of one campaign:
// the crash-point space and the per-test crash points, fault seeds and trial
// seeds. RunCampaignContext and ReproTrial derive it through the same code,
// so a repro re-runs exactly the trial the campaign ran.
type campaignPlan struct {
	space      uint64
	points     []uint64
	faultSeeds []int64
	trialSeeds []int64
}

func (p *campaignPlan) seedAt(i int) int64 {
	if p.faultSeeds == nil {
		return 0
	}
	return p.faultSeeds[i]
}

func (p *campaignPlan) trialSeedAt(i int) int64 {
	if p.trialSeeds == nil {
		return 0
	}
	return p.trialSeeds[i]
}

// planCampaign validates opts (applying the default campaign size in place)
// and draws the campaign's plan from its seed.
func (t *Tester) planCampaign(policy *Policy, opts *CampaignOpts) (campaignPlan, error) {
	if err := opts.Faults.Validate(); err != nil {
		return campaignPlan{}, err
	}
	if opts.RecrashDepth < 0 {
		return campaignPlan{}, fmt.Errorf("nvct: negative re-crash depth %d", opts.RecrashDepth)
	}
	if opts.RetryBudget < 0 {
		return campaignPlan{}, fmt.Errorf("nvct: negative retry budget %d", opts.RetryBudget)
	}
	if opts.TrialDeadline < 0 {
		return campaignPlan{}, fmt.Errorf("nvct: negative trial deadline %v", opts.TrialDeadline)
	}
	if opts.Tests <= 0 {
		opts.Tests = 100
	}

	// Crash points are drawn serially so the campaign is reproducible
	// independent of scheduling. With crash-eligible persistence the tick
	// space includes the policy's flush work, measured by one profile run;
	// a failing profile run must not silently skew the crash-point
	// distribution back to demand-only ticks, so it fails the campaign.
	space := t.golden.MainAccesses
	if opts.CrashDuringPersistence {
		g, err := t.profileTicks(policy)
		if err != nil {
			return campaignPlan{}, fmt.Errorf("nvct: profiling crash-eligible tick space: %w", err)
		}
		if g > 0 {
			space = g
		}
	}
	if space == 0 {
		// rand.Int63n(0) would panic; surface a diagnosable campaign error.
		return campaignPlan{}, fmt.Errorf("%w (kernel %s)", ErrEmptyCrashSpace, t.name)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	plan := campaignPlan{space: space, points: make([]uint64, opts.Tests)}
	for i := range plan.points {
		plan.points[i] = 1 + uint64(rng.Int63n(int64(space)))
	}
	// Per-test fault seeds are drawn serially after the crash points, so a
	// fault campaign is deterministic across Parallel settings and a
	// zero-fault campaign draws exactly the sequence it always did.
	if opts.Faults.Enabled() {
		plan.faultSeeds = make([]int64, opts.Tests)
		for i := range plan.faultSeeds {
			plan.faultSeeds[i] = rng.Int63()
		}
	}
	// Per-trial seeds drive the crash points of every deeper level of a
	// nested-failure chain. They are drawn serially after the fault seeds,
	// so nested campaigns are deterministic across Parallel settings and a
	// depth-0 campaign draws exactly the sequence it always did.
	if opts.RecrashDepth > 0 {
		plan.trialSeeds = make([]int64, opts.Tests)
		for i := range plan.trialSeeds {
			plan.trialSeeds[i] = rng.Int63()
		}
	}
	return plan, nil
}

// ReproTrial re-derives the campaign plan for (policy, opts) and re-runs the
// single trial at the given index on the live engine, returning its result —
// the postmortem a campaign line like "test 17: VIOL" calls for. The result
// is byte-identical to Tests[index] of the full campaign with the same
// options: trials are independent and both engines produce identical records.
// The error is ctx.Err() when the trial was cancelled mid-run.
func (t *Tester) ReproTrial(ctx context.Context, policy *Policy, opts CampaignOpts, index int) (TestResult, error) {
	plan, err := t.planCampaign(policy, &opts)
	if err != nil {
		return TestResult{}, err
	}
	if index < 0 || index >= opts.Tests {
		return TestResult{}, fmt.Errorf("nvct: trial index %d outside campaign of %d tests", index, opts.Tests)
	}
	res, keep := t.runOneIsolated(ctx, policy, plan.points[index], plan.seedAt(index), plan.trialSeedAt(index), plan.space, opts, nil)
	if !keep {
		if err := ctx.Err(); err != nil {
			return TestResult{}, err
		}
		return TestResult{}, errors.New("nvct: trial discarded without cancellation")
	}
	return res, nil
}

// ReproTrialDump is ReproTrial plus evidence: alongside the trial's record it
// returns a copy of the post-crash durable dump the first recovery attempt
// read — the NVM image as the failing media left it, which an artifact bundle
// archives next to the repro command. The dump is nil when the trial's drawn
// crash point exceeded the run's accesses (no crash ever fired).
func (t *Tester) ReproTrialDump(ctx context.Context, policy *Policy, opts CampaignOpts, index int) (TestResult, []byte, error) {
	plan, err := t.planCampaign(policy, &opts)
	if err != nil {
		return TestResult{}, nil, err
	}
	if index < 0 || index >= opts.Tests {
		return TestResult{}, nil, fmt.Errorf("nvct: trial index %d outside campaign of %d tests", index, opts.Tests)
	}
	var dump []byte
	res, keep := t.runOneIsolated(ctx, policy, plan.points[index], plan.seedAt(index), plan.trialSeedAt(index), plan.space, opts, &dump)
	if !keep {
		if err := ctx.Err(); err != nil {
			return TestResult{}, nil, err
		}
		return TestResult{}, nil, errors.New("nvct: trial discarded without cancellation")
	}
	return res, dump, nil
}

// runOneIsolated runs one crash test (a whole crash chain in nested mode),
// containing any panic that escapes the simulated crash protocol: a
// panicking kernel factory or a test that blows its deadline becomes one
// SErr result instead of killing the worker pool. keep is false only when
// the campaign context itself was cancelled — the half-finished test is then
// discarded from the partial report. dumpCapture, when non-nil, receives a
// copy of the first crash's durable dump (ReproTrialDump's evidence).
func (t *Tester) runOneIsolated(ctx context.Context, policy *Policy, crashAt uint64, faultSeed, trialSeed int64, space uint64, opts CampaignOpts, dumpCapture *[]byte) (res TestResult, keep bool) {
	var deadline time.Time
	deadlineErr := errTestTimeout
	if opts.TestTimeout > 0 {
		//eclint:allow campaigndet — operator watchdog for runaway tests, not part of replayed state
		deadline = time.Now().Add(opts.TestTimeout)
	}
	if opts.TrialDeadline > 0 {
		//eclint:allow campaigndet — wall-clock bound on a trial's crash chain, not part of replayed state
		if d := time.Now().Add(opts.TrialDeadline); deadline.IsZero() || d.Before(deadline) {
			deadline, deadlineErr = d, ErrTrialDeadline
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if a, ok := r.(*sim.Abort); ok &&
			!errors.Is(a.Err, errTestTimeout) && !errors.Is(a.Err, ErrTrialDeadline) {
			// Campaign cancellation, not a per-test failure.
			res, keep = TestResult{}, false
			return
		}
		res = TestResult{
			CrashAccess: crashAt,
			CrashRegion: sim.NoRegion,
			Outcome:     SErr,
			Err:         fmt.Sprint(r),
		}
		keep = true
	}()
	if opts.RecrashDepth > 0 {
		return t.runTrial(ctx, policy, crashAt, faultSeed, trialSeed, space, opts, deadline, deadlineErr, dumpCapture), true
	}
	return t.runOne(ctx, policy, crashAt, faultSeed, opts, deadline, deadlineErr, dumpCapture), true
}

// captureDump copies a phase-1 dump into a ReproTrialDump caller's evidence
// buffer; a no-op in campaign runs (capture == nil).
func captureDump(capture *[]byte, dump []byte) {
	if capture != nil {
		*capture = append([]byte(nil), dump...)
	}
}

// setInterrupt wires campaign cancellation and the per-test (or per-trial)
// deadline into a machine's interrupt check; deadlineErr is the named error
// delivered when the deadline passes. It installs nothing when neither
// applies, so the default path stays hook-free.
func setInterrupt(ctx context.Context, m *sim.Machine, deadline time.Time, deadlineErr error) {
	if ctx.Done() == nil && deadline.IsZero() {
		return
	}
	m.SetInterrupt(0, func() error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		//eclint:allow campaigndet — deadline check for the same operator watchdog
		if !deadline.IsZero() && time.Now().After(deadline) {
			return deadlineErr
		}
		return nil
	})
}

// profileTicks measures the policy's total crash-eligible ticks (demand
// accesses plus flushed blocks) with one undisturbed run.
func (t *Tester) profileTicks(policy *Policy) (uint64, error) {
	k := t.factory()
	m := t.getMachine()
	defer t.putMachine(m)
	k.Setup(m)
	k.Init(m)
	m.SetFlushCrashEligible(true)
	m.SetPersister(newPolicyPersister(m, k, policy))
	budget := int64(float64(k.NominalIters()) * t.cfg.MaxIterFactor)
	if _, err := k.Run(m, 0, budget); err != nil {
		return 0, err
	}
	return m.MainAccesses(), nil
}

// phase1State carries the postmortem of a fired crash into the recovery
// phase(s): the durable dump as the failing media left it, the poisoned
// block set, the crash itself, and the injector — owned by the whole trial,
// so media faults accumulate across the crashes of a nested chain.
type phase1State struct {
	crash  *sim.Crash
	inc    map[string]float64
	media  faultmodel.Injection
	dump   []byte
	poison map[uint64]struct{}
	inj    *faultmodel.Injector
	// journal is the kernel's acknowledged-operations journal snapshot,
	// taken while the crashed instance's volatile state was still intact;
	// nil for kernels without consistency semantics. The recovery phase
	// audits the restarted state against it.
	journal apps.AckJournal
}

// runPhase1 runs the initial life of a crash test until the armed crash
// fires, then takes the postmortem. When the crash point exceeded the run's
// accesses (cannot happen when the policy does not change demand traffic),
// it returns the completed test as an S1 result instead.
func (t *Tester) runPhase1(ctx context.Context, policy *Policy, crashAt uint64, faultSeed int64, opts CampaignOpts, deadline time.Time, deadlineErr error) (phase1State, *TestResult) {
	k := t.factory()
	m := t.getMachine()
	k.Setup(m)
	k.Init(m)
	if opts.CrashDuringPersistence {
		m.SetFlushCrashEligible(true)
	}
	var inj *faultmodel.Injector
	if opts.Faults.Enabled() {
		inj = faultmodel.New(opts.Faults, faultSeed)
		m.AttachFaults(inj)
	}
	m.SetPersister(newPolicyPersister(m, k, policy))
	m.SetCrashAfter(crashAt)
	setInterrupt(ctx, m, deadline, deadlineErr)

	crash := t.runToCrash(k, m)
	if crash == nil {
		t.putMachine(m)
		return phase1State{}, &TestResult{CrashAccess: crashAt, CrashRegion: sim.NoRegion, Outcome: S1}
	}
	// The crash unwound the kernel's stack but its Go-side state is intact:
	// snapshot the ack journal now, before the machine is recycled.
	var journal apps.AckJournal
	if ck, ok := k.(apps.ConsistencyKernel); ok {
		journal = ck.Journal()
	}

	// Postmortem: per-candidate inconsistency, then the durable dump. The
	// media-fault layer mutates the image before the dump is taken — what
	// restart sees is the image as the failing media left it.
	inc := make(map[string]float64, len(t.golden.Candidates))
	for _, o := range t.golden.Candidates {
		inc[o.Name] = m.InconsistencyRate(o)
	}
	if opts.Verified {
		m.Hierarchy().WriteBackAll()
	}
	var media faultmodel.Injection
	var poison map[uint64]struct{}
	if inj != nil {
		media = m.CrashWithFaults()
		poison = poisonSet(media, m)
	} else {
		m.CrashNow()
	}
	dump := t.takeDump(m)
	// Phase 1 is done with the machine; the restart phase (usually on the
	// same worker) picks it straight back up from the pool.
	t.putMachine(m)
	return phase1State{crash: crash, inc: inc, media: media, dump: dump, poison: poison, inj: inj, journal: journal}, nil
}

// poisonSet collects the image's detected-uncorrectable blocks after an
// injection, as the lookup the restart path probes objects against.
func poisonSet(media faultmodel.Injection, m *sim.Machine) map[uint64]struct{} {
	if media.PoisonedBlocks == 0 {
		return nil
	}
	poison := make(map[uint64]struct{}, media.PoisonedBlocks)
	for _, b := range m.Image().PoisonedBlocks() {
		poison[b] = struct{}{}
	}
	return poison
}

// runOne executes a single crash-and-restart test (the classic single-crash
// model; nested chains run through runTrial).
func (t *Tester) runOne(ctx context.Context, policy *Policy, crashAt uint64, faultSeed int64, opts CampaignOpts, deadline time.Time, deadlineErr error, dumpCapture *[]byte) TestResult {
	ps, completed := t.runPhase1(ctx, policy, crashAt, faultSeed, opts, deadline, deadlineErr)
	if completed != nil {
		return *completed
	}
	captureDump(dumpCapture, ps.dump)
	return t.finishOne(ctx, ps, opts, deadline, deadlineErr)
}

// finishOne classifies a classic single-crash test from its phase-1 state:
// one restart from the dump, no re-crash armed. It consumes ps.dump. Both the
// live engine (after runPhase1) and the prefix-sharing fast path (after a
// fork postmortem) finish tests here, so the two paths cannot drift apart.
func (t *Tester) finishOne(ctx context.Context, ps phase1State, opts CampaignOpts, deadline time.Time, deadlineErr error) TestResult {
	res := TestResult{
		CrashAccess:   ps.crash.Access,
		CrashRegion:   ps.crash.Region,
		CrashIter:     ps.crash.Iter,
		Inconsistency: ps.inc,
		Media:         ps.media,
	}

	// Phase 2: restart from the dump.
	st := t.restartOnce(ctx, ps.dump, ps.poison, ps.crash.Iter, ps.journal, opts.ScrubOnRestart, deadline, deadlineErr, 0, nil, false)
	t.putDump(ps.dump)
	applyClassicAttempt(&res, st)
	return res
}

// applyClassicAttempt folds the single recovery attempt of a classic
// (depth-0) trial into its record. Shared by finishOne and the snapshot-tree
// engine so the classic classification cannot drift between paths.
func applyClassicAttempt(res *TestResult, st attemptResult) {
	res.Outcome = st.outcome
	res.ExtraIters = st.extra
	res.FinalResult = st.final
	res.ScrubbedObjects = st.scrubbed
	res.Violations = st.violations
	if st.detected != "" {
		res.Err = st.detected
	}
}

// runToCrash runs the kernel main loop, returning the crash that fired, or
// nil if the run completed.
func (t *Tester) runToCrash(k apps.Kernel, m *sim.Machine) (crash *sim.Crash) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(*sim.Crash)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	budget := int64(float64(t.golden.Iters) * t.cfg.MaxIterFactor)
	_, _ = k.Run(m, 0, budget)
	return nil
}

// attemptResult is the outcome of one recovery attempt. Either the attempt
// reached a terminal classification (crash == nil: outcome, extra, final,
// executed are valid) or an armed re-crash fired mid-recomputation (crash
// != nil: media, dump, poison and inc describe the new power-loss state the
// next attempt must restart from).
type attemptResult struct {
	outcome  Outcome
	extra    int64
	final    []float64
	executed int64
	scrubbed int
	from     int64 // iteration the attempt resumed at
	// violations carries the oracle audit's findings behind an SViol
	// outcome; detected carries the workload's own loudly-reported recovery
	// failure behind an S3.
	violations []string
	detected   string

	crash  *sim.Crash
	media  faultmodel.Injection
	dump   []byte
	poison map[uint64]struct{}
	inc    map[string]float64
	// journal is the ack journal the *next* attempt must audit against when
	// the recovery crashed again: the merged acknowledgements of every life
	// so far. nil once a scrub discarded state on purpose — the engine knows
	// what it threw away, so later audits would report engine policy, not
	// workload lies.
	journal apps.AckJournal
}

// restartOnce re-initialises the application, reloads persisted objects from
// the dump (Figure 2b), resumes the main loop at the bookmarked iteration,
// and classifies the outcome. poison carries the detected-uncorrectable
// blocks of the crashed image: touching one aborts the restart with SDue
// unless the scrub-and-fallback path is enabled, in which case the poisoned
// object is re-initialised instead of restored (and a poisoned bookmark
// falls back to iteration 0, counting the redone iterations as extra).
//
// arm > 0 arms a crash at the arm-th demand access of the recovery run (the
// nested-failure model); inj, when non-nil, is re-attached so the re-crash
// composes with the media-fault layer and faults accumulate across the
// chain. verified applies the copy-based verification drain before a
// re-crash dump, mirroring phase 1.
//
// journal, when non-nil, is the acknowledged-operations journal of the
// crashed life (merged across a chain's lives); the recovered state is
// audited against it right after the kernel's own recovery, before the main
// loop resumes. A detected recovery failure classifies S3 (the workload
// failed loudly, correctly); a silent violation classifies SViol. The audit
// is skipped after a scrub — re-initialising poisoned objects discards state
// deliberately and accountably (ScrubbedObjects), which is not a lie.
func (t *Tester) restartOnce(ctx context.Context, dump []byte, poison map[uint64]struct{}, crashIter int64, journal apps.AckJournal, scrub bool, deadline time.Time, deadlineErr error, arm uint64, inj *faultmodel.Injector, verified bool) attemptResult {
	k := t.factory()
	m := t.getMachine()
	defer t.putMachine(m)
	rs, early := t.restartSetup(ctx, k, m, dump, poison, journal, scrub, deadline, deadlineErr)
	if early != nil {
		return *early
	}
	if arm > 0 {
		// Re-arm after the restore/scrub phase: the crash clock counts
		// demand accesses of the recomputation only, and restore-phase
		// write-backs are settled, not in flight.
		if inj != nil {
			m.AttachFaults(inj)
		}
		m.RearmCrash(arm)
	}

	budget := int64(float64(t.golden.Iters) * t.cfg.MaxIterFactor)
	executed, crash, err, interrupted := t.runRecovery(k, m, rs.from, budget, arm > 0)
	if crash != nil {
		// The recovery itself lost power: take the same postmortem phase 1
		// takes, and hand the next attempt the new durable state.
		res := attemptResult{scrubbed: rs.scrubbed, from: rs.from, crash: crash}
		if ck, ok := k.(apps.ConsistencyKernel); ok && rs.journal != nil {
			// This life acknowledged more operations before dying; the next
			// attempt's audit must honour the union of every life's acks.
			res.journal = rs.journal.Merge(ck.Journal())
		}
		res.inc = make(map[string]float64, len(t.golden.Candidates))
		for _, o := range t.golden.Candidates {
			res.inc[o.Name] = m.InconsistencyRate(o)
		}
		if verified {
			m.Hierarchy().WriteBackAll()
		}
		if inj != nil {
			res.media = m.CrashWithFaults()
			res.poison = poisonSet(res.media, m)
		} else {
			m.CrashNow()
		}
		res.dump = t.takeDump(m)
		return res
	}
	if interrupted || err != nil {
		return attemptResult{outcome: S3, scrubbed: rs.scrubbed, from: rs.from}
	}
	final := k.Result(m)
	verifyOK := k.Verify(m, t.golden.Result)
	return terminalAttempt(t.golden.Iters, rs, executed, final, verifyOK, crashIter)
}

// restartState is the outcome of a successful restart setup: the application
// re-initialised, persisted objects restored from the dump, bookmark read (or
// scrubbed) and the oracle audit passed. The recovery's main loop is ready to
// resume at from.
type restartState struct {
	from         int64
	scrubbed     int
	bookmarkLost bool
	// journal is the post-setup audit baseline: nil after a scrub discarded
	// state on purpose, otherwise the journal the next life must honour.
	journal apps.AckJournal
}

// restartSetup performs the pre-run phase of one recovery attempt on the
// given kernel and machine: Setup, bookmark read from the dump, Init, restore
// of unpoisoned candidates (scrub-and-fallback when enabled), PostRestart,
// and the crash-consistency audit. A non-nil attemptResult is an early
// terminal classification (SDue, corrupted-bookmark S3, detected-recovery-
// failure S3, SViol) and the machine must not run. Both the live engine
// (restartOnce) and the snapshot-tree engine (which shares one restart among
// every trial whose durable state fingerprints identically) set up through
// this one function, so the two cannot drift.
func (t *Tester) restartSetup(ctx context.Context, k apps.Kernel, m *sim.Machine, dump []byte, poison map[uint64]struct{}, journal apps.AckJournal, scrub bool, deadline time.Time, deadlineErr error) (restartState, *attemptResult) {
	k.Setup(m)
	setInterrupt(ctx, m, deadline, deadlineErr)

	// Read the bookmarked iteration from the dump — unless its blocks are
	// poisoned, in which case the durable bookmark is unreadable.
	itObj := k.IterObject()
	scrubbed := 0
	from := int64(0)
	bookmarkLost := overlapsPoison(itObj, poison)
	if bookmarkLost {
		if !scrub {
			return restartState{}, &attemptResult{outcome: SDue}
		}
		scrubbed++ // fall back to iteration 0
	} else {
		from = int64(leUint64(dump[itObj.Addr : itObj.Addr+8]))
		if from < 0 || from > t.golden.Iters {
			// A corrupted bookmark: the restarted process would index past
			// its data — the segfault case.
			return restartState{}, &attemptResult{outcome: S3}
		}
	}

	k.Init(m)
	for _, o := range m.Space().Candidates() {
		if overlapsPoison(o, poison) {
			if !scrub {
				return restartState{}, &attemptResult{outcome: SDue, scrubbed: scrubbed, from: from}
			}
			scrubbed++ // keep the freshly initialised values
			continue
		}
		m.RestoreObject(o, dump[o.Addr:o.End()])
	}
	m.I64(itObj).Set(0, from)
	if r, ok := k.(Restarter); ok {
		r.PostRestart(m, from)
	}
	if scrubbed > 0 {
		// The scrub path re-initialised objects on purpose; what it discarded
		// is accounted for, not lied about. Later lives of this trial skip the
		// audit too — their baseline was knowingly thrown away.
		journal = nil
	}
	if ck, ok := k.(apps.ConsistencyKernel); ok && journal != nil {
		a := ck.Audit(m, journal)
		if a.Detected != nil {
			// The workload's own recovery found the durable state unreadable
			// and refused to serve: a loud failure, classified as the
			// interruption it is — never a silent violation.
			return restartState{}, &attemptResult{outcome: S3, scrubbed: scrubbed, from: from, detected: a.Detected.Error()}
		}
		if len(a.Violations) > 0 {
			return restartState{}, &attemptResult{outcome: SViol, scrubbed: scrubbed, from: from, violations: a.Violations}
		}
	}
	return restartState{from: from, scrubbed: scrubbed, bookmarkLost: bookmarkLost, journal: journal}, nil
}

// terminalAttempt classifies a recovery attempt that ran to completion
// without crashing again. final and verifyOK are the kernel's result scalars
// and acceptance verdict on the terminal machine state (computed once by the
// caller: on a shared recovery several trials classify from one terminal
// state). crashIter is the progress lost with the bookmark when the scrub
// fallback restarted from iteration 0.
func terminalAttempt(goldenIters int64, rs restartState, executed int64, final []float64, verifyOK bool, crashIter int64) attemptResult {
	total := rs.from + executed
	extra := total - goldenIters
	if extra < 0 {
		extra = 0
	}
	if rs.bookmarkLost {
		// The redone iterations up to the crash point are extra work the
		// scrub fallback paid for losing the bookmark.
		extra += crashIter
	}
	res := attemptResult{extra: extra, final: final, executed: executed, scrubbed: rs.scrubbed, from: rs.from}
	switch {
	case !verifyOK:
		res.outcome = S4
	case extra > 0:
		res.outcome = S2
	default:
		res.outcome, res.extra = S1, 0
	}
	return res
}

// overlapsPoison reports whether any cache block of the object is in the
// poisoned set.
func overlapsPoison(o mem.Object, poison map[uint64]struct{}) bool {
	if len(poison) == 0 {
		return false
	}
	for b := o.Addr &^ (mem.BlockSize - 1); b < o.End(); b += mem.BlockSize {
		if _, bad := poison[b]; bad {
			return true
		}
	}
	return false
}

// runRecovery runs the restarted main loop, converting runtime panics from
// corrupted state (index out of range and friends) into interruptions. With
// armed, a *sim.Crash panic is the nested-failure model's re-crash and is
// returned; unarmed it is a campaign-engine bug and re-thrown. Abort panics
// belong to the campaign engine and are always re-thrown.
func (t *Tester) runRecovery(k apps.Kernel, m *sim.Machine, from, budget int64, armed bool) (executed int64, crash *sim.Crash, err error, interrupted bool) {
	defer func() {
		if r := recover(); r != nil {
			if c, isCrash := r.(*sim.Crash); isCrash {
				if !armed {
					panic(r) // no crash is armed during this restart; a bug
				}
				crash = c
				return
			}
			if _, isAbort := r.(*sim.Abort); isAbort {
				panic(r) // deadline/cancellation: the campaign engine handles it
			}
			interrupted = true
		}
	}()
	executed, err = k.Run(m, from, budget)
	return executed, nil, err, false
}

// Restarter is an optional kernel extension: PostRestart recomputes derived
// (non-candidate) objects from restored candidates before the main loop
// resumes — the paper's "re-computed based on the candidates".
type Restarter interface {
	PostRestart(m *sim.Machine, from int64)
}

func leUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
