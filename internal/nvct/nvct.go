// Package nvct is the Non-Volatile memory Crash Tester — the Go counterpart
// of the paper's PIN-based NVCT tool (§3). It drives benchmark kernels on
// the simulated machine, triggers crashes at uniformly random points of the
// main computation loop, performs postmortem analysis (per-object data
// inconsistency rates), restarts the application from the durable NVM dump,
// and classifies the response:
//
//	S1 — successful recomputation, no extra iterations
//	S2 — successful recomputation with extra iterations
//	S3 — interruption (the restarted run could not complete)
//	S4 — acceptance verification fails
//
// A Tester owns one golden (undisturbed) run; campaigns of crash tests are
// then run against different persistence policies.
package nvct

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// Outcome classifies one crash-and-restart test (Figure 3).
type Outcome int

const (
	// S1 is successful recomputation without extra iterations.
	S1 Outcome = iota
	// S2 is successful recomputation that needed extra iterations.
	S2
	// S3 is an interruption: the restarted run could not complete.
	S3
	// S4 is a failed acceptance verification.
	S4
)

// String returns the paper's label for the outcome.
func (o Outcome) String() string {
	switch o {
	case S1:
		return "S1"
	case S2:
		return "S2"
	case S3:
		return "S3"
	case S4:
		return "S4"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Policy describes a persistence policy: which data objects to flush and
// where. The loop-iterator bookmark is always flushed at iteration ends
// regardless of policy (paper footnote 3). A nil *Policy is the baseline:
// iterator-only, no object persistence.
type Policy struct {
	// Objects are the names of the data objects to persist.
	Objects []string
	// AtIterationEnd flushes the objects at the end of every Frequency-th
	// main-loop iteration.
	AtIterationEnd bool
	// AtRegionEnds flushes the objects at the end of each listed region
	// (every Frequency-th iteration).
	AtRegionEnds []int
	// Frequency is the persistence period in iterations; 0 or 1 = every
	// iteration (the paper's x parameter).
	Frequency int64
	// Op is the flush instruction; the zero value CLFLUSH is never what
	// you want for performance, so NewTester-built policies use CLFLUSHOPT
	// when Op is unset... callers may set CLWB explicitly.
	Op cachesim.FlushOp
}

// EveryRegionPolicy returns the most aggressive policy for the given
// objects: flush at the end of every region and every iteration. This is
// how the paper obtains the "best recomputability" reference and c_k^max.
func EveryRegionPolicy(objects []string, regions int) *Policy {
	all := make([]int, regions)
	for i := range all {
		all[i] = i
	}
	return &Policy{Objects: objects, AtIterationEnd: true, AtRegionEnds: all, Frequency: 1, Op: cachesim.CLFLUSHOPT}
}

// IterationPolicy returns a policy persisting the objects at the end of
// every main-loop iteration (the paper's "selecting data objects" step).
func IterationPolicy(objects []string) *Policy {
	return &Policy{Objects: objects, AtIterationEnd: true, Frequency: 1, Op: cachesim.CLFLUSHOPT}
}

// policyPersister adapts a Policy to sim.Persister.
type policyPersister struct {
	objs    []mem.Object
	iterObj mem.Object
	p       *Policy
	regions map[int]bool
}

func newPolicyPersister(m *sim.Machine, k apps.Kernel, p *Policy) *policyPersister {
	pp := &policyPersister{iterObj: k.IterObject(), p: p, regions: make(map[int]bool)}
	if p != nil {
		for _, name := range p.Objects {
			pp.objs = append(pp.objs, m.Space().MustObject(name))
		}
		for _, r := range p.AtRegionEnds {
			pp.regions[r] = true
		}
	}
	return pp
}

func (pp *policyPersister) due(it int64) bool {
	if pp.p == nil {
		return false
	}
	f := pp.p.Frequency
	if f <= 1 {
		return true
	}
	return it%f == 0
}

// RegionEnd implements sim.Persister.
func (pp *policyPersister) RegionEnd(m *sim.Machine, region int, it int64) {
	if pp.p != nil && pp.regions[region] && pp.due(it) {
		m.FlushObjects(pp.objs, pp.p.Op)
	}
}

// IterationEnd implements sim.Persister.
func (pp *policyPersister) IterationEnd(m *sim.Machine, it int64) {
	if pp.p != nil && pp.p.AtIterationEnd && pp.due(it) {
		m.FlushObjects(pp.objs, pp.p.Op)
	}
	// The iterator bookmark is always persisted; it is flushed outside the
	// machine's persistence accounting because the paper does not count it
	// as a persistence operation (footnote 3: "almost zero impact").
	m.Hierarchy().Flush(pp.iterObj.Addr, pp.iterObj.Size, cachesim.CLWB)
}

// Config configures a Tester.
type Config struct {
	// Cache is the cache geometry; zero value means cachesim.TestConfig.
	Cache cachesim.Config
	// NVMBytes is the simulated NVM capacity; 0 means 64 MiB.
	NVMBytes uint64
	// MaxIterFactor bounds restarted runs at MaxIterFactor*golden
	// iterations (paper: verification failure is declared after 2x);
	// 0 means 2.
	MaxIterFactor float64
}

func (c Config) withDefaults() Config {
	if c.Cache.Levels == nil {
		c.Cache = cachesim.TestConfig()
	}
	if c.NVMBytes == 0 {
		c.NVMBytes = 64 << 20
	}
	if c.MaxIterFactor == 0 {
		c.MaxIterFactor = 2
	}
	return c
}

// Golden describes the undisturbed reference run.
type Golden struct {
	Iters          int64
	MainAccesses   uint64
	RegionAccesses map[int]uint64
	Result         []float64
	CacheStats     cachesim.Stats
	PersistStats   sim.PersistStats
	NVMWrites      uint64
	Footprint      uint64
	CandidateBytes uint64
	Candidates     []mem.Object
	Regions        int
}

// TestResult is one crash-and-restart test.
type TestResult struct {
	CrashAccess   uint64
	CrashRegion   int
	CrashIter     int64
	Outcome       Outcome
	ExtraIters    int64
	Inconsistency map[string]float64 // per-candidate data inconsistent rate at the crash
	// FinalResult is the restarted run's outcome scalars (nil when the run
	// was interrupted); comparing it with the golden Result shows how far
	// the recomputation deviated.
	FinalResult []float64
}

// Success reports whether the application recomputed (S1 or S2).
func (r TestResult) Success() bool { return r.Outcome == S1 || r.Outcome == S2 }

// Report aggregates a campaign.
type Report struct {
	Kernel  string
	Policy  *Policy
	Tests   []TestResult
	Counts  [4]int // indexed by Outcome
	Regions int
}

// Recomputability is the paper's headline metric: the fraction of crashes
// that recompute successfully without extra iterations (S1).
func (r *Report) Recomputability() float64 {
	if len(r.Tests) == 0 {
		return 0
	}
	return float64(r.Counts[S1]) / float64(len(r.Tests))
}

// SuccessRate is the fraction of S1+S2 responses.
func (r *Report) SuccessRate() float64 {
	if len(r.Tests) == 0 {
		return 0
	}
	return float64(r.Counts[S1]+r.Counts[S2]) / float64(len(r.Tests))
}

// AvgExtraIters is the mean number of extra iterations over successful
// recomputations (Table 1's restart overhead).
func (r *Report) AvgExtraIters() float64 {
	var n, sum int64
	for _, t := range r.Tests {
		if t.Success() {
			n++
			sum += t.ExtraIters
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// RegionRecomputability returns per-region S1 fractions (the c_k of §5.2)
// and per-region test counts.
func (r *Report) RegionRecomputability() (rec map[int]float64, tests map[int]int) {
	s1 := make(map[int]int)
	tests = make(map[int]int)
	for _, t := range r.Tests {
		tests[t.CrashRegion]++
		if t.Outcome == S1 {
			s1[t.CrashRegion]++
		}
	}
	rec = make(map[int]float64, len(tests))
	for k, n := range tests {
		rec[k] = float64(s1[k]) / float64(n)
	}
	return rec, tests
}

// InconsistencyVectors extracts, for each candidate object, the paired
// vectors (inconsistency rate, success as 0/1) across all tests — the input
// to the Spearman analysis of §5.1.
func (r *Report) InconsistencyVectors() map[string][2][]float64 {
	out := make(map[string][2][]float64)
	for _, t := range r.Tests {
		for name, rate := range t.Inconsistency {
			v := out[name]
			v[0] = append(v[0], rate)
			s := 0.0
			if t.Outcome == S1 {
				s = 1
			}
			v[1] = append(v[1], s)
			out[name] = v
		}
	}
	return out
}

// Tester owns the golden run for one kernel and runs crash campaigns.
type Tester struct {
	factory apps.Factory
	cfg     Config
	golden  Golden
	name    string
}

// NewTester performs the golden run and returns a ready Tester.
func NewTester(factory apps.Factory, cfg Config) (*Tester, error) {
	cfg = cfg.withDefaults()
	t := &Tester{factory: factory, cfg: cfg}
	g, name, err := t.runGolden(nil)
	if err != nil {
		return nil, err
	}
	t.golden = g
	t.name = name
	return t, nil
}

// Golden returns the golden-run profile.
func (t *Tester) Golden() Golden { return t.golden }

// Name returns the kernel name.
func (t *Tester) Name() string { return t.name }

// Config returns the effective configuration.
func (t *Tester) Config() Config { return t.cfg }

// runGolden executes one undisturbed run under the given policy (nil =
// iterator-only) and profiles it.
func (t *Tester) runGolden(policy *Policy) (Golden, string, error) {
	k := t.factory()
	m := sim.NewMachine(t.cfg.NVMBytes, t.cfg.Cache)
	k.Setup(m)
	k.Init(m)
	m.SetPersister(newPolicyPersister(m, k, policy))
	m.Image().ResetWriteCounters()
	budget := int64(float64(k.NominalIters()) * t.cfg.MaxIterFactor)
	executed, err := k.Run(m, 0, budget)
	if err != nil {
		return Golden{}, "", fmt.Errorf("nvct: golden run of %s failed: %w", k.Name(), err)
	}
	res := k.Result(m)
	if !k.Verify(m, res) {
		return Golden{}, "", fmt.Errorf("nvct: golden run of %s does not verify against itself", k.Name())
	}
	g := Golden{
		Iters:          executed,
		MainAccesses:   m.MainAccesses(),
		RegionAccesses: m.RegionAccesses(),
		Result:         res,
		CacheStats:     m.Hierarchy().Stats(),
		PersistStats:   m.PersistStats(),
		NVMWrites:      m.Image().BlockWrites(),
		Footprint:      m.Space().Footprint(),
		CandidateBytes: m.Space().CandidateFootprint(),
		Candidates:     m.Space().Candidates(),
		Regions:        k.RegionCount(),
	}
	return g, k.Name(), nil
}

// ProfileRun executes one undisturbed run under the given policy and
// returns its profile (used by the performance model: persistence counts,
// cache traffic, NVM writes).
func (t *Tester) ProfileRun(policy *Policy) (Golden, error) {
	g, _, err := t.runGolden(policy)
	return g, err
}

// ProfileRunWith executes one undisturbed run with a caller-built persister
// (e.g. the checkpoint/restart baseline of package ckpt). makePersister is
// invoked after kernel setup and initialisation, so it may allocate extra
// objects (checkpoint shadow space) on the machine.
func (t *Tester) ProfileRunWith(makePersister func(m *sim.Machine, k apps.Kernel) sim.Persister) (Golden, error) {
	k := t.factory()
	m := sim.NewMachine(t.cfg.NVMBytes, t.cfg.Cache)
	k.Setup(m)
	k.Init(m)
	m.SetPersister(makePersister(m, k))
	m.Image().ResetWriteCounters()
	budget := int64(float64(k.NominalIters()) * t.cfg.MaxIterFactor)
	executed, err := k.Run(m, 0, budget)
	if err != nil {
		return Golden{}, fmt.Errorf("nvct: profile run of %s failed: %w", k.Name(), err)
	}
	return Golden{
		Iters:          executed,
		MainAccesses:   m.MainAccesses(),
		RegionAccesses: m.RegionAccesses(),
		Result:         k.Result(m),
		CacheStats:     m.Hierarchy().Stats(),
		PersistStats:   m.PersistStats(),
		NVMWrites:      m.Image().BlockWrites(),
		Footprint:      m.Space().Footprint(),
		CandidateBytes: m.Space().CandidateFootprint(),
		Candidates:     m.Space().Candidates(),
		Regions:        k.RegionCount(),
	}, nil
}

// CampaignOpts configures one crash-test campaign.
type CampaignOpts struct {
	Tests int
	Seed  int64
	// Verified runs the paper's copy-based verification variant (§6
	// "Result verification"): at the crash point all candidate state is
	// forced consistent before the dump, as making a data copy would.
	Verified bool
	// Parallel is the number of crash tests run concurrently; every test
	// owns its machines, so campaigns parallelise perfectly. 0 means
	// GOMAXPROCS; 1 forces serial execution. Results are deterministic for
	// a given Seed regardless of parallelism.
	Parallel int
	// CrashDuringPersistence makes persistence operations crash-eligible:
	// each flushed block advances the crash clock, so crashes can strike
	// mid-flush and leave an object set partially persisted. Crash points
	// are then drawn over the policy's own (demand + flush) tick count.
	CrashDuringPersistence bool
}

// RunCampaign runs a crash-test campaign under the given persistence policy
// (nil = baseline iterator-only).
func (t *Tester) RunCampaign(policy *Policy, opts CampaignOpts) *Report {
	if opts.Tests <= 0 {
		opts.Tests = 100
	}
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Tests {
		workers = opts.Tests
	}

	// Crash points are drawn serially so the campaign is reproducible
	// independent of scheduling. With crash-eligible persistence the tick
	// space includes the policy's flush work, measured by one profile run.
	space := t.golden.MainAccesses
	if opts.CrashDuringPersistence {
		g, err := t.profileTicks(policy)
		if err == nil && g > 0 {
			space = g
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	points := make([]uint64, opts.Tests)
	for i := range points {
		points[i] = 1 + uint64(rng.Int63n(int64(space)))
	}

	rep := &Report{
		Kernel:  t.name,
		Policy:  policy,
		Regions: t.golden.Regions,
		Tests:   make([]TestResult, opts.Tests),
	}
	if workers == 1 {
		for i, crashAt := range points {
			rep.Tests[i] = t.runOne(policy, crashAt, opts)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					rep.Tests[i] = t.runOne(policy, points[i], opts)
				}
			}()
		}
		for i := range points {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, res := range rep.Tests {
		rep.Counts[res.Outcome]++
	}
	return rep
}

// profileTicks measures the policy's total crash-eligible ticks (demand
// accesses plus flushed blocks) with one undisturbed run.
func (t *Tester) profileTicks(policy *Policy) (uint64, error) {
	k := t.factory()
	m := sim.NewMachine(t.cfg.NVMBytes, t.cfg.Cache)
	k.Setup(m)
	k.Init(m)
	m.SetFlushCrashEligible(true)
	m.SetPersister(newPolicyPersister(m, k, policy))
	budget := int64(float64(k.NominalIters()) * t.cfg.MaxIterFactor)
	if _, err := k.Run(m, 0, budget); err != nil {
		return 0, err
	}
	return m.MainAccesses(), nil
}

// runOne executes a single crash-and-restart test.
func (t *Tester) runOne(policy *Policy, crashAt uint64, opts CampaignOpts) TestResult {
	verified := opts.Verified
	// Phase 1: run until the crash fires.
	k := t.factory()
	m := sim.NewMachine(t.cfg.NVMBytes, t.cfg.Cache)
	k.Setup(m)
	k.Init(m)
	if opts.CrashDuringPersistence {
		m.SetFlushCrashEligible(true)
	}
	m.SetPersister(newPolicyPersister(m, k, policy))
	m.SetCrashAfter(crashAt)

	crash := t.runToCrash(k, m)
	if crash == nil {
		// The crash point exceeded this run's accesses (cannot happen when
		// the policy does not change demand traffic); treat as S1.
		return TestResult{CrashAccess: crashAt, CrashRegion: sim.NoRegion, Outcome: S1}
	}

	// Postmortem: per-candidate inconsistency, then the durable dump.
	inc := make(map[string]float64, len(t.golden.Candidates))
	for _, o := range t.golden.Candidates {
		inc[o.Name] = m.InconsistencyRate(o)
	}
	if verified {
		m.Hierarchy().WriteBackAll()
	}
	m.CrashNow()
	dump := m.Image().Snapshot()

	res := TestResult{
		CrashAccess:   crash.Access,
		CrashRegion:   crash.Region,
		CrashIter:     crash.Iter,
		Inconsistency: inc,
	}

	// Phase 2: restart from the dump.
	outcome, extra, final := t.restart(dump)
	res.Outcome = outcome
	res.ExtraIters = extra
	res.FinalResult = final
	return res
}

// runToCrash runs the kernel main loop, returning the crash that fired, or
// nil if the run completed.
func (t *Tester) runToCrash(k apps.Kernel, m *sim.Machine) (crash *sim.Crash) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(*sim.Crash)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	budget := int64(float64(t.golden.Iters) * t.cfg.MaxIterFactor)
	_, _ = k.Run(m, 0, budget)
	return nil
}

// restart re-initialises the application, reloads persisted objects from
// the dump (Figure 2b), resumes the main loop at the bookmarked iteration,
// and classifies the outcome.
func (t *Tester) restart(dump []byte) (Outcome, int64, []float64) {
	k := t.factory()
	m := sim.NewMachine(t.cfg.NVMBytes, t.cfg.Cache)
	k.Setup(m)

	// Read the bookmarked iteration from the dump.
	itObj := k.IterObject()
	from := int64(leUint64(dump[itObj.Addr : itObj.Addr+8]))
	if from < 0 || from > t.golden.Iters {
		// A corrupted bookmark: the restarted process would index past its
		// data — the segfault case.
		return S3, 0, nil
	}

	k.Init(m)
	for _, o := range m.Space().Candidates() {
		m.RestoreObject(o, dump[o.Addr:o.End()])
	}
	m.I64(itObj).Set(0, from)
	if r, ok := k.(Restarter); ok {
		r.PostRestart(m, from)
	}

	budget := int64(float64(t.golden.Iters) * t.cfg.MaxIterFactor)
	executed, err, interrupted := t.runRestart(k, m, from, budget)
	if interrupted || err != nil {
		return S3, 0, nil
	}
	total := from + executed
	extra := total - t.golden.Iters
	if extra < 0 {
		extra = 0
	}
	final := k.Result(m)
	if !k.Verify(m, t.golden.Result) {
		return S4, extra, final
	}
	if extra > 0 {
		return S2, extra, final
	}
	return S1, 0, final
}

// runRestart runs the restarted main loop, converting runtime panics from
// corrupted state (index out of range and friends) into interruptions.
func (t *Tester) runRestart(k apps.Kernel, m *sim.Machine, from, budget int64) (executed int64, err error, interrupted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isCrash := r.(*sim.Crash); isCrash {
				panic(r) // no crash is armed during restart; a bug
			}
			interrupted = true
		}
	}()
	executed, err = k.Run(m, from, budget)
	return executed, err, false
}

// Restarter is an optional kernel extension: PostRestart recomputes derived
// (non-candidate) objects from restored candidates before the main loop
// resumes — the paper's "re-computed based on the candidates".
type Restarter interface {
	PostRestart(m *sim.Machine, from int64)
}

func leUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
