package nvct_test

import (
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/faultmodel"
	"easycrash/internal/nvct"
)

// scalarTester builds a tester that forces the per-element reference access
// path. It deliberately bypasses the shared tester cache: the whole point is
// an independent engine configuration.
func scalarTester(t *testing.T, kernel string) *nvct.Tester {
	t.Helper()
	f, err := apps.New(kernel, apps.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := nvct.NewTester(f, nvct.Config{ScalarAccess: true})
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

// TestScalarAccessCampaignDigestsMatch pins the batched fast paths to the
// scalar reference at full campaign scale: identical seeds must produce
// byte-identical reports whether every access walks the hierarchy one
// element at a time or rides the batched runs and streams. Covers the plain
// campaign, media faults, and depth-2 nested failure chains.
func TestScalarAccessCampaignDigestsMatch(t *testing.T) {
	faults := faultmodel.Config{RBER: 2e-6, TornWrites: true, ECC: faultmodel.SECDED()}
	policy := nvct.IterationPolicy([]string{"u", "scal"})
	cases := []struct {
		label string
		opts  nvct.CampaignOpts
	}{
		{"baseline", nvct.CampaignOpts{Tests: 12, Seed: 41, Parallel: 2}},
		{"faults", nvct.CampaignOpts{Tests: 12, Seed: 47, Parallel: 2, Faults: faults, ScrubOnRestart: true}},
		{"nested", nvct.CampaignOpts{Tests: 12, Seed: 43, Parallel: 2, RecrashDepth: 2, Faults: faults, ScrubOnRestart: true}},
	}
	scalar := scalarTester(t, "lu")
	for _, c := range cases {
		batched := reportDigest(tester(t, "lu").RunCampaign(policy, c.opts))
		ref := reportDigest(scalar.RunCampaign(policy, c.opts))
		if batched != ref {
			t.Errorf("%s: batched campaign digest %s != scalar reference %s", c.label, batched, ref)
		}
	}
}
