package nvct_test

import (
	"context"
	"reflect"
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/faultmodel"
	"easycrash/internal/mem"
	"easycrash/internal/nvct"
	"easycrash/internal/sim"
)

// treeFaults is the media-fault model the tree-sharing equivalence tests run
// under: every injection mechanism enabled (tears, RBER, ECC classification).
func treeFaults() faultmodel.Config {
	return faultmodel.Config{RBER: 2e-6, TornWrites: true, ECC: faultmodel.SECDED()}
}

// TestTreeSharedFaultsMatchesLiveCampaign is the engine-level equivalence
// property behind faults-on and recovery-bound tree sharing: campaigns that
// replay seed-drawn media faults on forked branches and share recovery runs
// between trials with identical durable state must be deep-equal to the same
// campaigns with every trial executed live. The 50-trial faults case is the
// treeshare-smoke CI pin.
func TestTreeSharedFaultsMatchesLiveCampaign(t *testing.T) {
	cases := []struct {
		name   string
		kernel string
		policy *nvct.Policy
		opts   nvct.CampaignOpts
	}{
		{name: "faults-50", kernel: "lu",
			policy: nvct.IterationPolicy([]string{"u", "scal"}),
			opts:   nvct.CampaignOpts{Tests: 50, Seed: 29, Parallel: 4, Faults: treeFaults(), ScrubOnRestart: true}},
		{name: "faults-verified", kernel: "lu",
			policy: nvct.IterationPolicy([]string{"u", "scal"}),
			opts:   nvct.CampaignOpts{Tests: 20, Seed: 31, Parallel: 4, Faults: treeFaults(), Verified: true}},
		{name: "faults-no-scrub", kernel: "lu",
			policy: nvct.IterationPolicy([]string{"u", "scal"}),
			opts:   nvct.CampaignOpts{Tests: 20, Seed: 37, Parallel: 2, Faults: treeFaults()}},
		{name: "nested-faults-depth2", kernel: "lu",
			policy: nvct.IterationPolicy([]string{"u", "scal"}),
			opts:   nvct.CampaignOpts{Tests: 20, Seed: 41, Parallel: 4, RecrashDepth: 2, Faults: treeFaults(), ScrubOnRestart: true}},
		{name: "faults-second-kernel", kernel: "mg",
			opts: nvct.CampaignOpts{Tests: 15, Seed: 43, Parallel: 2, Faults: treeFaults(), ScrubOnRestart: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tt := tester(t, tc.kernel)
			fast := tt.RunCampaign(tc.policy, tc.opts)
			liveOpts := tc.opts
			liveOpts.NoPrefixShare = true
			live := tt.RunCampaign(tc.policy, liveOpts)
			if !reflect.DeepEqual(fast.Tests, live.Tests) {
				for i := range fast.Tests {
					if !reflect.DeepEqual(fast.Tests[i], live.Tests[i]) {
						t.Fatalf("test %d diverged:\nfast %+v\nlive %+v", i, fast.Tests[i], live.Tests[i])
					}
				}
				t.Fatal("reports diverged")
			}
			if fast.Counts != live.Counts {
				t.Fatalf("outcome counts diverged: fast %v live %v", fast.Counts, live.Counts)
			}
		})
	}
}

// trapKernel delegates to a real kernel but panics the moment its main run
// returns — after the fork hook has dispatched every crash point. It models a
// reference-run failure that strikes once the workers' forks are all taken.
type trapKernel struct {
	apps.Kernel
}

func (k *trapKernel) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	executed, err := k.Kernel.Run(m, from, maxIter)
	_ = executed
	_ = err
	panic("trap: reference run failed after the forks")
}

// TestTreeFallbackKeepsFinishedTrials is the regression test for the fallback
// bug: when the shared reference run fails, trials the tree already finished
// must stay finished — only undone trials re-run live. The trapped factory
// fails the reference after every fork fired, so a correct fallback re-runs
// nothing: the build count stays within the fast path's bound, and the report
// still matches an all-live campaign. (The old fallback cleared done[] and
// re-ran everything, costing two extra builds per trial.)
func TestTreeFallbackKeepsFinishedTrials(t *testing.T) {
	inner, err := apps.New("lu", apps.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	armed := false
	factory := func() apps.Kernel {
		calls++
		k := inner()
		if armed && calls == 1 {
			return &trapKernel{Kernel: k}
		}
		return k
	}
	tt, err := nvct.NewTester(factory, nvct.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const tests = 20
	opts := nvct.CampaignOpts{Tests: tests, Seed: 13, Parallel: 1}

	armed, calls = true, 0
	trapped := tt.RunCampaign(nil, opts)
	armed = false
	if len(trapped.Tests) != tests {
		t.Fatalf("trapped campaign kept %d of %d trials", len(trapped.Tests), tests)
	}
	// One trapped reference + at most one shared recovery per trial. A
	// fallback that discarded the finished forks would add two live builds
	// per trial on top (>= 3*tests total).
	if calls > tests+2 {
		t.Fatalf("fallback rebuilt the application %d times for %d tests; want <= %d (finished trials must not re-run)",
			calls, tests, tests+2)
	}

	liveOpts := opts
	liveOpts.NoPrefixShare = true
	live := tt.RunCampaign(nil, liveOpts)
	if !reflect.DeepEqual(trapped.Tests, live.Tests) {
		t.Fatal("trapped-reference campaign diverged from the all-live campaign")
	}
}

// tinyKernel is a minimal fixed-iteration kernel with a single-digit crash
// space: campaigns over it draw many duplicate crash points, so one snapshot
// is shared by many concurrent branch workers — the race-detector surface for
// read-only ResumeFrom. Its updates are non-idempotent on purpose, giving
// restarts real S2/S4 variety.
type tinyKernel struct {
	acc mem.Object
	it  mem.Object
}

func (k *tinyKernel) Name() string           { return "tiny" }
func (k *tinyKernel) Description() string    { return "duplicate-crash-point probe" }
func (k *tinyKernel) RegionCount() int       { return 1 }
func (k *tinyKernel) NominalIters() int64    { return 4 }
func (k *tinyKernel) Convergent() bool       { return false }
func (k *tinyKernel) IterObject() mem.Object { return k.it }

func (k *tinyKernel) Setup(m *sim.Machine) {
	k.acc = m.Space().AllocI64("acc", 4, true)
	k.it = apps.AllocIter(m)
}

func (k *tinyKernel) Init(m *sim.Machine) {
	acc := m.I64(k.acc)
	for i := 0; i < acc.Len(); i++ {
		acc.Set(i, 0)
	}
	m.I64(k.it).Set(0, 0)
}

func (k *tinyKernel) Run(m *sim.Machine, from, maxIter int64) (int64, error) {
	if maxIter > k.NominalIters() {
		maxIter = k.NominalIters()
	}
	acc := m.I64(k.acc)
	itv := m.I64(k.it)
	m.MainLoopBegin()
	defer m.MainLoopEnd()
	var executed int64
	for it := from; it < maxIter; it++ {
		m.BeginIteration(it)
		m.BeginRegion(0)
		slot := int(it) % acc.Len()
		acc.Set(slot, acc.At(slot)+it+1)
		m.EndRegion(0)
		itv.Set(0, it+1)
		m.EndIteration(it)
		executed++
	}
	return executed, nil
}

func (k *tinyKernel) Result(m *sim.Machine) []float64 {
	acc := m.I64(k.acc)
	out := make([]float64, acc.Len())
	for i := range out {
		out[i] = float64(acc.At(i))
	}
	return out
}

func (k *tinyKernel) Verify(m *sim.Machine, golden []float64) bool {
	got := k.Result(m)
	for i := range got {
		if got[i] != golden[i] {
			return false
		}
	}
	return true
}

// TestTreeSharedDuplicatePointsRace drives a campaign whose crash-point space
// is a handful of accesses, so nearly every point is drawn several times and
// each snapshot is resumed by several workers at once. Run under the race
// detector (CI does) it proves ResumeFrom leaves the shared snapshot
// untouched; in any mode it checks the duplicated forks still classify
// identically to the live engine.
func TestTreeSharedDuplicatePointsRace(t *testing.T) {
	tt, err := nvct.NewTester(func() apps.Kernel { return &tinyKernel{} }, nvct.Config{})
	if err != nil {
		t.Fatal(err)
	}
	opts := nvct.CampaignOpts{Tests: 32, Seed: 3, Parallel: 4}
	fast := tt.RunCampaign(nil, opts)

	// The point of the fixture: duplicates must actually occur.
	seen := map[uint64]int{}
	for _, res := range fast.Tests {
		seen[res.CrashAccess]++
	}
	if len(seen) >= len(fast.Tests) {
		t.Fatalf("no duplicate crash points across %d trials; the kernel's crash space grew", len(fast.Tests))
	}

	liveOpts := opts
	liveOpts.NoPrefixShare = true
	live := tt.RunCampaign(nil, liveOpts)
	if !reflect.DeepEqual(fast.Tests, live.Tests) {
		t.Fatal("duplicate-point campaign diverged from the live engine")
	}
}

// TestReproTrialMatchesTreeSharedCampaign pins -repro parity for trials that
// originally ran tree-shared: ReproTrial re-runs one trial on the live engine
// and must reproduce the campaign record field-for-field — including for
// faults-on and nested campaigns, whose trials now run prefix-shared too.
func TestReproTrialMatchesTreeSharedCampaign(t *testing.T) {
	policy := nvct.IterationPolicy([]string{"u", "scal"})
	cases := []struct {
		name string
		opts nvct.CampaignOpts
	}{
		{"baseline", nvct.CampaignOpts{Tests: 20, Seed: 17, Parallel: 4}},
		{"faults", nvct.CampaignOpts{Tests: 20, Seed: 19, Parallel: 4, Faults: treeFaults(), ScrubOnRestart: true}},
		{"nested-faults", nvct.CampaignOpts{Tests: 15, Seed: 23, Parallel: 4, RecrashDepth: 2, Faults: treeFaults(), ScrubOnRestart: true}},
	}
	tt := tester(t, "lu")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := tt.RunCampaign(policy, tc.opts)
			if len(rep.Tests) != tc.opts.Tests {
				t.Fatalf("campaign kept %d of %d trials", len(rep.Tests), tc.opts.Tests)
			}
			for _, idx := range []int{0, tc.opts.Tests / 2, tc.opts.Tests - 1} {
				got, err := tt.ReproTrial(context.Background(), policy, tc.opts, idx)
				if err != nil {
					t.Fatalf("ReproTrial(%d): %v", idx, err)
				}
				if !reflect.DeepEqual(got, rep.Tests[idx]) {
					t.Fatalf("trial %d repro diverged:\ncampaign %+v\nrepro    %+v", idx, rep.Tests[idx], got)
				}
			}
		})
	}
}
