package predict_test

import (
	"math"
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/nvct"
	"easycrash/internal/predict"
	"easycrash/internal/stats"
)

func characterize(t *testing.T, name string) predict.Features {
	t.Helper()
	f, err := apps.New(name, apps.ProfileTest)
	if err != nil {
		t.Fatal(err)
	}
	feat, err := predict.Characterize(f, cachesim.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return feat
}

func TestCharacterizeRanges(t *testing.T) {
	for _, name := range apps.Names() {
		feat := characterize(t, name)
		if feat.Kernel != name {
			t.Errorf("%s: kernel name %q", name, feat.Kernel)
		}
		for i, v := range []float64{feat.DirtyAtIterEnd, feat.RMWStoreFrac, feat.RewriteCoverage, feat.Convergent} {
			if v < 0 || v > 1.2 || math.IsNaN(v) {
				t.Errorf("%s: feature %d out of range: %v (%s)", name, i, v, feat)
			}
		}
		if feat.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestCharacterizeCapturesKnownPatterns(t *testing.T) {
	// LU's update is read-modify-write; MG commits out of place.
	lu := characterize(t, "lu")
	mg := characterize(t, "mg")
	if lu.RMWStoreFrac <= mg.RMWStoreFrac {
		t.Errorf("LU RMW %v should exceed MG RMW %v", lu.RMWStoreFrac, mg.RMWStoreFrac)
	}
	// kmeans' tiny hot centroids leave a far smaller dirty residue in
	// absolute terms but the committed fraction is high; the convergence
	// flag separates it.
	km := characterize(t, "kmeans")
	if km.Convergent != 1 || mg.Convergent != 0 {
		t.Error("convergence flags wrong")
	}
	// EP rewrites its sample buffer fully and scatters into the histogram.
	ep := characterize(t, "ep")
	if ep.RMWStoreFrac == 0 {
		t.Error("EP accumulators should show RMW stores")
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	a := characterize(t, "ft")
	b := characterize(t, "ft")
	if a != b {
		t.Fatalf("characterisation not deterministic: %v vs %v", a, b)
	}
}

func TestFitAndPredictSynthetic(t *testing.T) {
	// Exact linear ground truth must be recovered.
	mk := func(d, r, w, c float64) predict.Features {
		return predict.Features{DirtyAtIterEnd: d, RMWStoreFrac: r, RewriteCoverage: w, Convergent: c}
	}
	truth := func(f predict.Features) float64 {
		return 0.9 - 0.5*f.DirtyAtIterEnd - 0.3*f.RMWStoreFrac + 0.05*f.RewriteCoverage
	}
	var feats []predict.Features
	var resp []float64
	for _, d := range []float64{0, 0.3, 0.6} {
		for _, r := range []float64{0, 0.5, 1} {
			for _, w := range []float64{0.2, 0.9} {
				f := mk(d, r, w, 0)
				feats = append(feats, f)
				resp = append(resp, truth(f))
			}
		}
	}
	m, err := predict.Fit(feats, resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range feats {
		if got, want := m.Predict(f), truth(f); math.Abs(got-want) > 1e-6 {
			t.Fatalf("predict %v = %v, want %v", f, got, want)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := predict.Fit(nil, nil); err == nil {
		t.Fatal("empty training accepted")
	}
	if _, err := predict.Fit(make([]predict.Features, 2), []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPredictClamps(t *testing.T) {
	m := predict.Model{Coef: []float64{5, 0, 0, 0, 0}}
	if m.Predict(predict.Features{}) != 1 {
		t.Fatal("no upper clamp")
	}
	m = predict.Model{Coef: []float64{-5, 0, 0, 0, 0}}
	if m.Predict(predict.Features{}) != 0 {
		t.Fatal("no lower clamp")
	}
}

// TestLeaveOneOutRankCorrelation is the §8 end-to-end check: a model fitted
// on ten kernels' measured baseline recomputability predicts the eleventh
// usefully — predictions must rank-correlate positively with measurements
// across the leave-one-out sweep.
func TestLeaveOneOutRankCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("leave-one-out study skipped with -short")
	}
	names := apps.Names()
	feats := make([]predict.Features, len(names))
	measured := make([]float64, len(names))
	for i, name := range names {
		feats[i] = characterize(t, name)
		f, _ := apps.New(name, apps.ProfileTest)
		tester, err := nvct.NewTester(f, nvct.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rep := tester.RunCampaign(nil, nvct.CampaignOpts{Tests: 40, Seed: 21})
		measured[i] = rep.Recomputability()
	}
	// In-sample fit: the features must explain a meaningful share of the
	// variation in measured recomputability.
	full, err := predict.Fit(feats, measured)
	if err != nil {
		t.Fatal(err)
	}
	inSample := make([]float64, len(names))
	for i := range names {
		inSample[i] = full.Predict(feats[i])
	}
	c, err := stats.Spearman(inSample, measured)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("in-sample: predicted vs measured Spearman Rs = %.3f (p = %.3g)", c.Rs, c.P)
	if c.Rs < 0.3 {
		t.Fatalf("in-sample predictions rank-correlate too weakly: Rs = %v", c.Rs)
	}

	// Leave-one-out generalisation: informational — with eleven kernels and
	// four features the paper-sketched model is indicative, not definitive.
	predicted := make([]float64, len(names))
	for i := range names {
		var trF []predict.Features
		var trY []float64
		for j := range names {
			if j != i {
				trF = append(trF, feats[j])
				trY = append(trY, measured[j])
			}
		}
		m, err := predict.Fit(trF, trY)
		if err != nil {
			t.Fatal(err)
		}
		predicted[i] = m.Predict(feats[i])
	}
	if c, err := stats.Spearman(predicted, measured); err == nil {
		t.Logf("leave-one-out: predicted vs measured Spearman Rs = %.3f (p = %.3g)", c.Rs, c.P)
	}
}
