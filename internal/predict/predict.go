// Package predict implements the extension the paper sketches in its
// Discussions section (§8): predicting application recomputability from an
// application-characterisation study instead of expensive crash-test
// campaigns. "We can detect computation patterns that tolerate computation
// inaccuracy ... Then we set up a model to correlate those patterns and
// application recomputability. Given an application, we simply count those
// patterns and use the model to predict recomputability without any crash
// test."
//
// The characterisation runs one instrumented golden run per kernel and
// extracts access-pattern features of the candidate data objects that
// govern replay exactness:
//
//   - how much candidate state is dirty (not yet durable) at iteration
//     boundaries — the natural-persistence deficit;
//   - the fraction of candidate stores that are read-modify-write — the
//     non-idempotent updates that break crashed-iteration replay;
//   - how completely candidate objects are rewritten each iteration —
//     commit-style state is replayable, incrementally mutated state is not;
//   - whether the kernel is convergence-driven (it can absorb perturbation
//     with extra iterations).
//
// A linear model fitted over characterised kernels (ordinary least squares
// on the normal equations) then predicts the recomputability of unseen
// applications.
package predict

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/mem"
	"easycrash/internal/sim"
)

// Features is the per-kernel characterisation vector.
type Features struct {
	Kernel string
	// DirtyAtIterEnd is the mean fraction of candidate bytes whose durable
	// copy differs from the architectural state at iteration boundaries.
	DirtyAtIterEnd float64
	// RMWStoreFrac is the fraction of candidate-object stores whose target
	// word was loaded earlier in the same iteration (read-modify-write).
	RMWStoreFrac float64
	// RewriteCoverage is the mean per-iteration fraction of candidate words
	// overwritten.
	RewriteCoverage float64
	// Convergent is 1 for convergence-driven kernels, else 0.
	Convergent float64
}

// Vector returns the feature vector with a leading intercept term.
func (f Features) Vector() []float64 {
	return []float64{1, f.DirtyAtIterEnd, f.RMWStoreFrac, f.RewriteCoverage, f.Convergent}
}

// String formats the features compactly.
func (f Features) String() string {
	return fmt.Sprintf("%s{dirty=%.3f rmw=%.3f rewrite=%.3f conv=%.0f}",
		f.Kernel, f.DirtyAtIterEnd, f.RMWStoreFrac, f.RewriteCoverage, f.Convergent)
}

// tracker observes one characterisation run.
type tracker struct {
	objects []mem.Object
	base    uint64 // lowest candidate address
	limit   uint64 // one past the highest candidate address
	// word-granularity bitsets over the candidate range, reset per iteration
	loaded, stored []uint64
	words          int

	iters         int
	coverageSum   float64
	rmwStores     uint64
	totalStores   uint64
	dirtySum      float64
	dirtyDenom    float64
	machine       *sim.Machine
	candidateSpan uint64
}

func newTracker(m *sim.Machine) *tracker {
	t := &tracker{machine: m}
	t.objects = m.Space().Candidates()
	if len(t.objects) == 0 {
		return t
	}
	t.base = t.objects[0].Addr
	t.limit = t.objects[len(t.objects)-1].End()
	t.words = int((t.limit - t.base + 7) / 8)
	t.loaded = make([]uint64, (t.words+63)/64)
	t.stored = make([]uint64, (t.words+63)/64)
	for _, o := range t.objects {
		t.candidateSpan += o.Size
	}
	return t
}

// inRange maps addr to a candidate-range word index, or -1.
func (t *tracker) wordIndex(addr uint64) int {
	if addr < t.base || addr >= t.limit {
		return -1
	}
	return int((addr - t.base) / 8)
}

// Access implements sim.Observer.
func (t *tracker) Access(addr uint64, size int, store bool) {
	w := t.wordIndex(addr)
	if w < 0 {
		return
	}
	idx, bit := w/64, uint(w%64)
	if store {
		t.totalStores++
		if t.loaded[idx]&(1<<bit) != 0 {
			t.rmwStores++
		}
		t.stored[idx] |= 1 << bit
	} else {
		t.loaded[idx] |= 1 << bit
	}
}

// RegionEnd implements sim.Persister (no persistence during profiling).
func (t *tracker) RegionEnd(m *sim.Machine, region int, it int64) {}

// IterationEnd implements sim.Persister: fold this iteration's pattern into
// the running features and reset the bitsets.
func (t *tracker) IterationEnd(m *sim.Machine, it int64) {
	if t.words == 0 {
		return
	}
	var covered int
	for i := range t.stored {
		covered += bits.OnesCount64(t.stored[i])
		t.stored[i] = 0
		t.loaded[i] = 0
	}
	// Coverage counts only words inside objects (the alignment gaps between
	// objects are never written, slightly deflating the ratio; candidate
	// spans are block-aligned so the bias is < one block per object).
	t.coverageSum += float64(covered) * 8 / float64(t.candidateSpan)
	var dirty uint64
	for _, o := range t.objects {
		dirty += m.Hierarchy().DirtyBytesIn(o.Addr, o.Size)
	}
	t.dirtySum += float64(dirty)
	t.dirtyDenom += float64(t.candidateSpan)
	t.iters++
}

// Characterize runs one instrumented golden run and extracts the kernel's
// features. No crash tests are performed.
func Characterize(factory apps.Factory, cache cachesim.Config, nvmBytes uint64) (Features, error) {
	if cache.Levels == nil {
		cache = cachesim.TestConfig()
	}
	if nvmBytes == 0 {
		nvmBytes = 64 << 20
	}
	k := factory()
	m := sim.NewMachine(nvmBytes, cache)
	k.Setup(m)
	k.Init(m)
	t := newTracker(m)
	m.SetObserver(t)
	m.SetPersister(t)
	if _, err := k.Run(m, 0, 2*k.NominalIters()); err != nil {
		return Features{}, fmt.Errorf("predict: characterisation run of %s failed: %w", k.Name(), err)
	}
	f := Features{Kernel: k.Name()}
	if k.Convergent() {
		f.Convergent = 1
	}
	if t.iters > 0 {
		f.RewriteCoverage = t.coverageSum / float64(t.iters)
		f.DirtyAtIterEnd = t.dirtySum / t.dirtyDenom
	}
	if t.totalStores > 0 {
		f.RMWStoreFrac = float64(t.rmwStores) / float64(t.totalStores)
	}
	return f, nil
}

// Model is a linear recomputability predictor over Features.
type Model struct {
	Coef []float64 // intercept + one coefficient per feature
}

// ErrSingular reports that the normal equations could not be solved (too
// few or collinear training kernels).
var ErrSingular = errors.New("predict: singular normal equations")

// Fit performs ordinary least squares of responses on the feature vectors.
func Fit(features []Features, responses []float64) (Model, error) {
	if len(features) != len(responses) || len(features) == 0 {
		return Model{}, errors.New("predict: need matching, non-empty training data")
	}
	p := len(features[0].Vector())
	// Normal equations: (XᵀX) beta = Xᵀy, solved by Gaussian elimination
	// with partial pivoting and ridge damping for stability.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p+1)
	}
	for i, f := range features {
		v := f.Vector()
		for r := 0; r < p; r++ {
			for c := 0; c < p; c++ {
				xtx[r][c] += v[r] * v[c]
			}
			xtx[r][p] += v[r] * responses[i]
		}
	}
	const ridge = 1e-6
	for r := 0; r < p; r++ {
		xtx[r][r] += ridge
	}
	// Gaussian elimination.
	for col := 0; col < p; col++ {
		piv := col
		for r := col + 1; r < p; r++ {
			if math.Abs(xtx[r][col]) > math.Abs(xtx[piv][col]) {
				piv = r
			}
		}
		if math.Abs(xtx[piv][col]) < 1e-12 {
			return Model{}, ErrSingular
		}
		xtx[col], xtx[piv] = xtx[piv], xtx[col]
		for r := 0; r < p; r++ {
			if r == col {
				continue
			}
			f := xtx[r][col] / xtx[col][col]
			for c := col; c <= p; c++ {
				xtx[r][c] -= f * xtx[col][c]
			}
		}
	}
	coef := make([]float64, p)
	for r := 0; r < p; r++ {
		coef[r] = xtx[r][p] / xtx[r][r]
	}
	return Model{Coef: coef}, nil
}

// Predict returns the model's recomputability estimate, clamped to [0, 1].
func (m Model) Predict(f Features) float64 {
	v := f.Vector()
	var y float64
	for i, c := range m.Coef {
		y += c * v[i]
	}
	if y < 0 {
		return 0
	}
	if y > 1 {
		return 1
	}
	return y
}
