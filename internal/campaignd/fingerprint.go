// Failure fingerprinting and known-failure dedup.
//
// A sweep that reports the same 40 media-fault interruptions every night
// buries the one new wrong-answer among them. Fingerprints collapse failing
// trials into equivalence classes — same outcome, same crash-chain shape,
// same error and violations, same coarse inconsistency signature — and a
// persistent store of previously seen fingerprints splits each run's
// failures into "N new / M known". The fingerprint deliberately excludes
// exact crash accesses and iteration numbers: two trials that died the same
// way at different points of the loop are the same failure mode, and a
// fingerprint that changes with every seed would make dedup useless.
package campaignd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"easycrash/internal/nvct"
)

// Fingerprint condenses one failing trial into a stable identity:
// outcome + chain shape (the region sequence of its crashes and its depth) +
// engine/workload error + itemised violations + the per-object inconsistency
// signature bucketed to one decimal. Trials with equal fingerprints are the
// same failure mode for dedup purposes.
func Fingerprint(tr nvct.TestResult) string {
	h := sha256.New()
	fmt.Fprintf(h, "out=%s err=%q scrub=%d\n", tr.Outcome, tr.Err, tr.ScrubbedObjects)
	if len(tr.Chain) > 0 {
		fmt.Fprintf(h, "depth=%d\n", tr.Depth)
		for _, c := range tr.Chain {
			fmt.Fprintf(h, "chain reg=%d\n", c.Region)
		}
	} else {
		fmt.Fprintf(h, "reg=%d\n", tr.CrashRegion)
	}
	for _, v := range tr.Violations {
		fmt.Fprintf(h, "viol=%q\n", v)
	}
	names := make([]string, 0, len(tr.Inconsistency))
	for name := range tr.Inconsistency {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "inc %s=%.1f\n", name, tr.Inconsistency[name])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// FailureRecord is one fingerprinted failure mode.
type FailureRecord struct {
	Fingerprint string `json:"fingerprint"`
	Outcome     string `json:"outcome"`
	Err         string `json:"err,omitempty"`
	// ExampleTrial is the lowest campaign trial index that exhibited this
	// failure when it was first recorded — the index to hand -repro.
	ExampleTrial int `json:"example_trial"`
	// Count is the number of trials exhibiting this failure in the most
	// recent run that observed it (not a lifetime total, so re-running an
	// identical campaign leaves the store byte-identical).
	Count int `json:"count"`
}

// KnownStore is the persistent set of failure fingerprints previous runs
// recorded. The zero path is an in-memory store (nothing persists).
type KnownStore struct {
	path    string
	records map[string]*FailureRecord
}

// LoadKnownStore reads the store at path; a missing file is an empty store.
func LoadKnownStore(path string) (*KnownStore, error) {
	ks := &KnownStore{path: path, records: make(map[string]*FailureRecord)}
	if path == "" {
		return ks, nil
	}
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return ks, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []*FailureRecord
	if err := json.Unmarshal(b, &recs); err != nil {
		return nil, fmt.Errorf("campaignd: malformed known-failure store %s: %w", path, err)
	}
	for _, r := range recs {
		ks.records[r.Fingerprint] = r
	}
	return ks, nil
}

// Known reports whether the fingerprint was present when the store was
// loaded or added since.
func (ks *KnownStore) Known(fp string) bool {
	_, ok := ks.records[fp]
	return ok
}

// Len returns the number of distinct failure modes in the store.
func (ks *KnownStore) Len() int { return len(ks.records) }

// Record folds one run's failure classes into the store, returning how many
// were new and how many were already known. Each class updates its record's
// Count and Outcome to the current run's observation; ExampleTrial keeps its
// first-recorded value so archived repro pointers stay valid.
func (ks *KnownStore) Record(classes []*FailureRecord) (newFailures, knownFailures int) {
	for _, c := range classes {
		if old, ok := ks.records[c.Fingerprint]; ok {
			knownFailures++
			old.Outcome, old.Err, old.Count = c.Outcome, c.Err, c.Count
			continue
		}
		newFailures++
		cp := *c
		ks.records[c.Fingerprint] = &cp
	}
	return newFailures, knownFailures
}

// Save writes the store back (stable order: sorted by fingerprint). A
// path-less store saves nowhere.
func (ks *KnownStore) Save() error {
	if ks.path == "" {
		return nil
	}
	recs := make([]*FailureRecord, 0, len(ks.records))
	for _, r := range ks.records {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Fingerprint < recs[b].Fingerprint })
	b, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(ks.path, append(b, '\n'))
}

// ClassifyFailures fingerprints every non-successful trial of the delivered
// shard parts, returning the distinct failure classes sorted by fingerprint
// and the total count of failing trials. DUE outcomes under perfect scrub
// configurations, S3 interruptions, wrong answers, engine errors and oracle
// violations all count; S1/S2 successes do not.
func ClassifyFailures(parts []*nvct.ShardReport) (classes []*FailureRecord, failing int) {
	byFP := make(map[string]*FailureRecord)
	for _, p := range parts {
		for _, tr := range p.Trials {
			if tr.Res.Success() {
				continue
			}
			failing++
			fp := Fingerprint(tr.Res)
			if r, ok := byFP[fp]; ok {
				r.Count++
				if tr.Index < r.ExampleTrial {
					r.ExampleTrial = tr.Index
				}
				continue
			}
			byFP[fp] = &FailureRecord{
				Fingerprint:  fp,
				Outcome:      tr.Res.Outcome.String(),
				Err:          tr.Res.Err,
				ExampleTrial: tr.Index,
				Count:        1,
			}
		}
	}
	classes = make([]*FailureRecord, 0, len(byFP))
	for _, r := range byFP {
		classes = append(classes, r)
	}
	sort.Slice(classes, func(a, b int) bool { return classes[a].Fingerprint < classes[b].Fingerprint })
	return classes, failing
}
