// The supervisor: shard scheduling, heartbeat watchdogs, kill/retry with
// capped exponential backoff, and graceful degradation to a partial merged
// report when a shard's retry budget is exhausted.
package campaignd

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"easycrash/internal/nvct"
)

// Config configures one supervised campaign run.
type Config struct {
	// Spec is the campaign to run.
	Spec *Spec
	// Shards is the number of worker shards (>= 1).
	Shards int
	// RunDir is the artifact directory for this run; it is created (and must
	// not already contain a run).
	RunDir string
	// KnownPath is the persistent known-failure store, shared across runs;
	// empty disables dedup persistence (every failure reports as new).
	KnownPath string

	// MaxAttempts is the retry budget per shard (first attempt included).
	// Default 3.
	MaxAttempts int
	// BackoffBase and BackoffCap bound the capped exponential backoff before
	// attempt n+1: min(Base << (n-1), Cap). Defaults 100ms / 2s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Heartbeat is the interval workers are told to emit heartbeats at
	// (default 200ms); HeartbeatTimeout is the silence after which the
	// supervisor declares a worker hung and kills it (default 10x Heartbeat,
	// min 2s — generous enough for a worker's reference prefix run to finish
	// between beats on a loaded machine).
	Heartbeat        time.Duration
	HeartbeatTimeout time.Duration
	// StartupGrace is how long a worker may run before its FIRST heartbeat
	// without being declared hung (default 30s, min HeartbeatTimeout). It is
	// deliberately separate from HeartbeatTimeout: process startup — exec,
	// runtime init, spec load — is the one silent stretch whose length the
	// supervisor cannot pace, and is far slower on loaded or instrumented
	// machines. Once a worker has beaten once, HeartbeatTimeout governs.
	StartupGrace time.Duration
	// DrainGrace is how long a cancelled run waits after SIGTERM before
	// SIGKILLing workers that have not exited (default 5s).
	DrainGrace time.Duration
	// Concurrency caps the shards in flight at once (default
	// min(Shards, GOMAXPROCS)).
	Concurrency int
	// EvidenceTrials caps the failing trials whose durable dump is re-derived
	// and archived (default 5; the repro command is archived for all).
	EvidenceTrials int

	// Chaos is the test-only worker failure injection, passed through to
	// every worker (see ParseChaos).
	Chaos string
	// WorkerCommand is the argv prefix workers are launched with; the worker
	// flags are appended. Default: the running executable with a "worker"
	// first argument. Tests point it at the test binary.
	WorkerCommand []string
	// WorkerEnv is appended to the workers' environment.
	WorkerEnv []string
	// CommandLine is recorded in the run's meta.json (default os.Args).
	CommandLine []string
	// Log receives supervisor progress lines (default io.Discard).
	Log io.Writer
}

func (c Config) withDefaults() (Config, error) {
	if c.Spec == nil {
		return c, fmt.Errorf("campaignd: config without spec")
	}
	if err := c.Spec.Validate(); err != nil {
		return c, err
	}
	if c.Shards <= 0 {
		return c, fmt.Errorf("campaignd: %d shards, want >= 1", c.Shards)
	}
	if c.RunDir == "" {
		return c, fmt.Errorf("campaignd: config without run directory")
	}
	if _, err := ParseChaos(c.Chaos); err != nil {
		return c, err
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 2 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 200 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * c.Heartbeat
		if c.HeartbeatTimeout < 2*time.Second {
			c.HeartbeatTimeout = 2 * time.Second
		}
	}
	if c.StartupGrace <= 0 {
		c.StartupGrace = 30 * time.Second
	}
	if c.StartupGrace < c.HeartbeatTimeout {
		c.StartupGrace = c.HeartbeatTimeout
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	if c.Concurrency > c.Shards {
		c.Concurrency = c.Shards
	}
	if c.EvidenceTrials == 0 {
		c.EvidenceTrials = 5
	}
	if len(c.WorkerCommand) == 0 {
		self, err := os.Executable()
		if err != nil {
			return c, fmt.Errorf("campaignd: resolving worker executable: %w", err)
		}
		c.WorkerCommand = []string{self, "worker"}
	}
	if c.CommandLine == nil {
		c.CommandLine = os.Args
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c, nil
}

// AttemptFailure records why one worker attempt did not deliver its shard.
type AttemptFailure struct {
	Attempt int    `json:"attempt"`
	Kind    string `json:"kind"` // dead | hung | garbled | incomplete | spawn
	Detail  string `json:"detail"`
}

// Shard states.
const (
	// ShardOK: the shard delivered all of its trials.
	ShardOK = "ok"
	// ShardPartial: the run was cancelled while the shard was in flight; the
	// drained worker delivered the trials it had finished.
	ShardPartial = "partial"
	// ShardExhausted: every attempt in the retry budget failed; the shard
	// delivered nothing (graceful degradation: the other shards still merge).
	ShardExhausted = "exhausted"
	// ShardCancelled: the run was cancelled before the shard delivered
	// anything (including backoff waits cut short).
	ShardCancelled = "cancelled"
)

// ShardStatus is one shard's final accounting.
type ShardStatus struct {
	Shard    int              `json:"shard"`
	State    string           `json:"state"`
	Attempts int              `json:"attempts"`
	Trials   int              `json:"trials"`
	Expected int              `json:"expected"`
	Failures []AttemptFailure `json:"failures,omitempty"`
}

// Result is the outcome of one supervised campaign run.
type Result struct {
	// Report is the merged campaign report — complete when every shard
	// delivered, partial otherwise. Byte-identical to the single-process
	// engine's report when complete.
	Report *nvct.Report
	// Shards is the per-shard status, indexed by shard number.
	Shards []ShardStatus
	// Missing lists the campaign trial indices no shard delivered.
	Missing []int
	// Complete reports whether every trial was delivered.
	Complete bool
	// FailureClasses are the run's fingerprinted failure modes (sorted by
	// fingerprint); NewFailures/KnownFailures split them against the
	// known-failure store loaded at start.
	FailureClasses []*FailureRecord
	FailingTrials  int
	NewFailures    int
	KnownFailures  int
	// RunDir is the artifact directory written for this run.
	RunDir string
}

// Run executes one supervised sharded campaign: spawn workers per shard,
// monitor them, retry failures under backoff, merge what arrives, fingerprint
// and dedup failures, and write the artifact directory. Cancellation of ctx
// drains workers (SIGTERM, grace, SIGKILL) and still returns — and archives —
// the partial result. The returned error is only for setup-level failures
// (bad config, unwritable run directory); worker failures are data, reported
// in the Result, never an error-only exit.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	specPath, err := initRunDir(&cfg)
	if err != nil {
		return nil, err
	}
	known, err := LoadKnownStore(cfg.KnownPath)
	if err != nil {
		return nil, err
	}

	s := &supervisor{cfg: cfg, specPath: specPath}
	statuses := make([]ShardStatus, cfg.Shards)
	parts := make([]*nvct.ShardReport, 0, cfg.Shards)
	var mu sync.Mutex

	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Concurrency)
	for shard := 0; shard < cfg.Shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			part, status := s.runShard(ctx, shard)
			mu.Lock()
			defer mu.Unlock()
			statuses[shard] = status
			if part != nil {
				parts = append(parts, part)
			}
		}(shard)
	}
	wg.Wait()

	res := &Result{Shards: statuses, RunDir: cfg.RunDir}
	if len(parts) == 0 {
		// Nothing delivered at all: synthesize an empty report so the caller
		// (and the artifact directory) still get per-shard status, not an
		// error-only exit.
		res.Report = &nvct.Report{
			Kernel:    cfg.Spec.Kernel,
			Policy:    cfg.Spec.Policy,
			Requested: cfg.Spec.Opts.Tests,
		}
		for i := 0; i < cfg.Spec.Opts.Tests; i++ {
			res.Missing = append(res.Missing, i)
		}
	} else {
		rep, err := nvct.MergeShards(cfg.Spec.Policy, parts)
		if err != nil {
			// Cannot happen with validated shard files; if it does, it is a
			// supervisor bug worth failing loudly on.
			return nil, err
		}
		res.Report = rep
		res.Missing = nvct.MissingTrials(parts)
	}
	res.Complete = len(res.Missing) == 0

	res.FailureClasses, res.FailingTrials = ClassifyFailures(parts)
	res.NewFailures, res.KnownFailures = known.Record(res.FailureClasses)
	if err := known.Save(); err != nil {
		return nil, err
	}
	fmt.Fprintf(cfg.Log, "campaign: %d/%d trials delivered, %d failing trial(s) in %d class(es): %d new / %d known\n",
		len(res.Report.Tests), res.Report.Requested, res.FailingTrials, len(res.FailureClasses), res.NewFailures, res.KnownFailures)

	if err := writeArtifacts(ctx, cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// supervisor carries the per-run constants of the worker-management loop.
type supervisor struct {
	cfg      Config
	specPath string
}

// runShard drives one shard to completion: attempts under the retry budget,
// capped exponential backoff between them, and partial acceptance when the
// run is being drained.
func (s *supervisor) runShard(ctx context.Context, shard int) (*nvct.ShardReport, ShardStatus) {
	cfg := s.cfg
	expected := len(nvct.Shard{Index: shard, Count: cfg.Shards}.Indices(cfg.Spec.Opts.Tests))
	status := ShardStatus{Shard: shard, State: ShardCancelled, Expected: expected}
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			return nil, status
		}
		if attempt > 1 {
			backoff := cfg.BackoffBase << (attempt - 2)
			if backoff > cfg.BackoffCap {
				backoff = cfg.BackoffCap
			}
			fmt.Fprintf(cfg.Log, "shard %d: attempt %d in %v\n", shard, attempt, backoff)
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, status
			}
		}
		status.Attempts = attempt
		part, failure := s.runAttempt(ctx, shard, attempt)
		if part != nil {
			status.Trials = len(part.Trials)
			if len(part.Trials) == expected {
				status.State = ShardOK
				fmt.Fprintf(cfg.Log, "shard %d: ok (%d trials, attempt %d)\n", shard, len(part.Trials), attempt)
			} else {
				status.State = ShardPartial
				fmt.Fprintf(cfg.Log, "shard %d: drained with %d/%d trials\n", shard, len(part.Trials), expected)
			}
			return part, status
		}
		status.Failures = append(status.Failures, *failure)
		fmt.Fprintf(cfg.Log, "shard %d: attempt %d %s: %s\n", shard, attempt, failure.Kind, failure.Detail)
	}
	status.State = ShardExhausted
	fmt.Fprintf(cfg.Log, "shard %d: retry budget exhausted after %d attempts\n", shard, cfg.MaxAttempts)
	return nil, status
}

// runAttempt launches and monitors one worker process. It returns either a
// validated shard report (possibly partial if the run is draining) or the
// attempt's failure classification.
func (s *supervisor) runAttempt(ctx context.Context, shard, attempt int) (*nvct.ShardReport, *AttemptFailure) {
	cfg := s.cfg
	fail := func(kind, format string, args ...any) (*nvct.ShardReport, *AttemptFailure) {
		return nil, &AttemptFailure{Attempt: attempt, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	}

	outPath := filepath.Join(cfg.RunDir, "shards", fmt.Sprintf("shard-%03d.json", shard))
	// A previous attempt may have been killed after writing (or a garbling
	// chaos worker wrote junk): start every attempt from a clean slate so a
	// stale file can never be mistaken for this attempt's output.
	if err := os.Remove(outPath); err != nil && !os.IsNotExist(err) {
		return fail("spawn", "removing stale shard file: %v", err)
	}

	args := append(append([]string(nil), cfg.WorkerCommand[1:]...),
		"-spec", s.specPath,
		"-shard", strconv.Itoa(shard),
		"-shards", strconv.Itoa(cfg.Shards),
		"-attempt", strconv.Itoa(attempt),
		"-out", outPath,
		"-hb", cfg.Heartbeat.String(),
	)
	if cfg.Chaos != "" {
		args = append(args, "-chaos", cfg.Chaos)
	}
	cmd := exec.Command(cfg.WorkerCommand[0], args...)
	cmd.Env = append(os.Environ(), cfg.WorkerEnv...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fail("spawn", "stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		return fail("spawn", "starting worker: %v", err)
	}

	// lastBeat is the liveness clock, stamped on every heartbeat line the
	// worker prints; zero means no beat yet. The watchdog below kills the
	// worker when it goes silent for longer than the heartbeat timeout — or,
	// before its first beat, the startup grace.
	started := time.Now()
	var lastBeat atomic.Int64
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, heartbeatPrefix) {
				lastBeat.Store(time.Now().UnixNano())
			}
		}
	}()

	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()

	var hung, drained bool
	var hungGap time.Duration
	var exitErr error
	ticker := time.NewTicker(cfg.HeartbeatTimeout / 4)
	defer ticker.Stop()
	var drainKill <-chan time.Time
monitor:
	for {
		select {
		case exitErr = <-waitErr:
			break monitor
		case <-ticker.C:
			lb := lastBeat.Load()
			var gap time.Duration
			if lb == 0 {
				gap = time.Since(started)
			} else {
				gap = time.Since(time.Unix(0, lb))
			}
			if lb == 0 && gap > cfg.StartupGrace || lb != 0 && gap > cfg.HeartbeatTimeout {
				hung = true
				hungGap = gap
				_ = cmd.Process.Kill()
				exitErr = <-waitErr
				break monitor
			}
		case <-ctx.Done():
			if !drained {
				// Drain: ask the worker to stop gracefully — it writes the
				// trials it finished — and only SIGKILL after the grace.
				drained = true
				_ = cmd.Process.Signal(syscall.SIGTERM)
				t := time.NewTimer(cfg.DrainGrace)
				defer t.Stop()
				drainKill = t.C
			}
		case <-drainKill:
			_ = cmd.Process.Kill()
			exitErr = <-waitErr
			break monitor
		}
	}
	<-scanDone

	if hung {
		if lastBeat.Load() == 0 {
			return fail("hung", "no heartbeat %v after start (grace %v); killed", hungGap, cfg.StartupGrace)
		}
		return fail("hung", "heartbeats stopped for %v (timeout %v); killed", hungGap, cfg.HeartbeatTimeout)
	}
	if exitErr != nil && !drained {
		return fail("dead", "%v (stderr: %s)", exitErr, tail(stderr.String(), 200))
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		if drained {
			// Killed before it could write anything: nothing delivered, but
			// the run is ending anyway.
			return fail("incomplete", "drained before writing output")
		}
		return fail("garbled", "worker exited 0 without output: %v", err)
	}
	part, err := nvct.ParseShardReport(data)
	if err != nil {
		return fail("garbled", "%v", err)
	}
	if part.Shard.Index != shard || part.Shard.Count != cfg.Shards ||
		part.Kernel != cfg.Spec.Kernel || part.Requested != cfg.Spec.Opts.Tests {
		return fail("garbled", "shard file identifies as %d/%d kernel %s (%d trials)",
			part.Shard.Index, part.Shard.Count, part.Kernel, part.Requested)
	}
	expected := len(nvct.Shard{Index: shard, Count: cfg.Shards}.Indices(cfg.Spec.Opts.Tests))
	if len(part.Trials) != expected && !drained {
		// A worker that exits cleanly but delivered fewer trials than its
		// shard owns was corrupted somewhere; retry it.
		return fail("incomplete", "delivered %d of %d trials without being drained", len(part.Trials), expected)
	}
	return part, nil
}

// tail returns at most the last n bytes of s, for compact failure details.
func tail(s string, n int) string {
	s = strings.TrimSpace(s)
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n:]
}
