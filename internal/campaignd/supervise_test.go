package campaignd_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"easycrash/internal/campaignd"
	"easycrash/internal/faultmodel"
	"easycrash/internal/nvct"
)

// TestMain doubles as the worker harness: the supervisor re-execs this test
// binary with CAMPAIGND_WORKER=1 in the environment, and the gate below turns
// that invocation into a real campaignd worker instead of a test run. This is
// how the integration tests exercise genuine subprocess supervision — real
// processes, real kills, real pipes — without a separate worker binary.
func TestMain(m *testing.M) {
	if os.Getenv("CAMPAIGND_WORKER") == "1" {
		os.Exit(campaignd.WorkerMain(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// testSpec is a small campaign with media faults aggressive enough to produce
// failing trials (DUE outcomes), so fingerprinting and evidence archiving are
// exercised, not just the happy path.
func testSpec() *campaignd.Spec {
	return &campaignd.Spec{
		Kernel: "mg",
		Opts: nvct.CampaignOpts{
			Tests:    12,
			Seed:     5,
			Parallel: 1,
			Faults:   faultmodel.Config{RBER: 1e-5, TornWrites: true},
		},
	}
}

// singleProcess runs the spec's campaign in-process — the reference the
// supervised runs must match byte for byte.
func singleProcess(t *testing.T, spec *campaignd.Spec) *nvct.Report {
	t.Helper()
	tester, err := spec.NewTester()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tester.RunCampaignContext(context.Background(), spec.Policy, spec.Opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// testConfig wires a supervisor config to the re-exec worker harness.
func testConfig(t *testing.T, spec *campaignd.Spec, shards int) campaignd.Config {
	t.Helper()
	return campaignd.Config{
		Spec:          spec,
		Shards:        shards,
		RunDir:        filepath.Join(t.TempDir(), "run"),
		WorkerCommand: []string{os.Args[0]},
		WorkerEnv:     []string{"CAMPAIGND_WORKER=1"},
		Heartbeat:     20 * time.Millisecond,
		BackoffBase:   10 * time.Millisecond,
		BackoffCap:    50 * time.Millisecond,
	}
}

func reportJSON(t *testing.T, rep *nvct.Report) []byte {
	t.Helper()
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSupervisedMatchesSingleProcess(t *testing.T) {
	spec := testSpec()
	want := reportJSON(t, singleProcess(t, spec))

	res, err := campaignd.Run(context.Background(), testConfig(t, spec, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Missing) != 0 {
		t.Fatalf("run incomplete: missing %v, shards %+v", res.Missing, res.Shards)
	}
	for _, st := range res.Shards {
		if st.State != campaignd.ShardOK || st.Attempts != 1 || st.Trials != st.Expected {
			t.Errorf("shard %d: %+v", st.Shard, st)
		}
	}
	if got := reportJSON(t, res.Report); !bytes.Equal(got, want) {
		t.Error("supervised report differs from single-process report")
	}

	// The artifact directory is the run's evidence trail.
	for _, name := range []string{"spec.json", "meta.json", "report.json", "status.json"} {
		if _, err := os.Stat(filepath.Join(res.RunDir, name)); err != nil {
			t.Errorf("artifact %s: %v", name, err)
		}
	}
	onDisk, err := os.ReadFile(filepath.Join(res.RunDir, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, want) {
		t.Error("archived report.json differs from single-process report")
	}
	if res.FailingTrials > 0 {
		if len(res.FailureClasses) == 0 {
			t.Fatal("failing trials but no failure classes")
		}
		ex := res.FailureClasses[0].ExampleTrial
		repro := filepath.Join(res.RunDir, "failures",
			"trial-"+padTrial(ex), "repro.txt")
		if _, err := os.Stat(repro); err != nil {
			t.Errorf("failure evidence: %v", err)
		}
		dump := filepath.Join(res.RunDir, "failures", "trial-"+padTrial(ex), "dump.bin")
		if fi, err := os.Stat(dump); err != nil || fi.Size() == 0 {
			t.Errorf("durable dump evidence: %v", err)
		}
	}
}

func padTrial(n int) string {
	s := ""
	for v := n; ; v /= 10 {
		s = string(rune('0'+v%10)) + s
		if v < 10 {
			break
		}
	}
	for len(s) < 6 {
		s = "0" + s
	}
	return s
}

// TestChaosRecovery is the acceptance scenario: one worker killed, one hung,
// one garbling its output — all recovered by retry/backoff, and the merged
// report still byte-identical to the single-process engine.
func TestChaosRecovery(t *testing.T) {
	spec := testSpec()
	want := singleProcess(t, spec)

	cfg := testConfig(t, spec, 4)
	cfg.Chaos = "crash@0.1,hang@1.1,garble@2.1"
	// The hung worker beats once and then goes silent mid-shard; the default
	// 2s heartbeat timeout reclaims it. Don't be tempted to shrink the
	// timeout for test speed: live workers beat every 20ms, but on a loaded
	// single-core machine under the race detector the supervisor can fall
	// ~600ms behind in *observing* those beats, and a sub-second timeout
	// kills healthy workers.
	var logBuf bytes.Buffer
	cfg.Log = &logBuf

	res, err := campaignd.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("chaos run incomplete: missing %v\nlog:\n%s", res.Missing, logBuf.String())
	}
	wantKinds := map[int]string{0: "dead", 1: "hung", 2: "garbled"}
	for shard, kind := range wantKinds {
		st := res.Shards[shard]
		if st.State != campaignd.ShardOK || st.Attempts != 2 {
			t.Errorf("shard %d: state %s after %d attempts, want ok after 2\nlog:\n%s",
				shard, st.State, st.Attempts, logBuf.String())
			continue
		}
		if len(st.Failures) != 1 || st.Failures[0].Kind != kind {
			t.Errorf("shard %d failures = %+v, want one %q", shard, st.Failures, kind)
		}
	}
	if st := res.Shards[3]; st.State != campaignd.ShardOK || st.Attempts != 1 {
		t.Errorf("clean shard 3: %+v", st)
	}
	if !reflect.DeepEqual(res.Report, want) {
		t.Error("chaos-recovered report != single-process report")
	}
	if got := reportJSON(t, res.Report); !bytes.Equal(got, reportJSON(t, want)) {
		t.Error("chaos-recovered report bytes differ")
	}
}

// TestRetryBudgetExhaustion: a shard that fails every attempt degrades the
// run to a partial merged report with per-shard status — not an error.
func TestRetryBudgetExhaustion(t *testing.T) {
	spec := testSpec()
	want := singleProcess(t, spec)

	cfg := testConfig(t, spec, 3)
	cfg.MaxAttempts = 2
	cfg.Chaos = "crash@1.1,crash@1.2"

	res, err := campaignd.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("run claims completeness with an exhausted shard")
	}
	st := res.Shards[1]
	if st.State != campaignd.ShardExhausted || st.Attempts != 2 || len(st.Failures) != 2 {
		t.Fatalf("exhausted shard: %+v", st)
	}
	lost := nvct.Shard{Index: 1, Count: 3}.Indices(spec.Opts.Tests)
	if !reflect.DeepEqual(res.Missing, lost) {
		t.Fatalf("missing %v, want shard 1's trials %v", res.Missing, lost)
	}
	if len(res.Report.Tests) != spec.Opts.Tests-len(lost) {
		t.Fatalf("partial report has %d trials, want %d", len(res.Report.Tests), spec.Opts.Tests-len(lost))
	}
	// The delivered trials are still exactly the single-process trials.
	i := 0
	for idx, tr := range want.Tests {
		if idx%3 == 1 {
			continue
		}
		if !reflect.DeepEqual(res.Report.Tests[i], tr) {
			t.Fatalf("delivered trial %d differs from single-process trial %d", i, idx)
		}
		i++
	}
	// The partial run is archived like any other.
	if _, err := os.Stat(filepath.Join(res.RunDir, "status.json")); err != nil {
		t.Errorf("status artifact: %v", err)
	}
}

// TestCancelledRunStillArchives: a run cancelled before any shard delivers
// still produces the artifact directory and per-shard status, never an
// error-only exit.
func TestCancelledRunStillArchives(t *testing.T) {
	spec := testSpec()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := campaignd.Run(ctx, testConfig(t, spec, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete || len(res.Missing) != spec.Opts.Tests {
		t.Fatalf("cancelled run: complete=%v missing=%d", res.Complete, len(res.Missing))
	}
	for _, st := range res.Shards {
		if st.State != campaignd.ShardCancelled {
			t.Errorf("shard %d state %s, want cancelled", st.Shard, st.State)
		}
	}
	for _, name := range []string{"spec.json", "meta.json", "report.json", "status.json"} {
		if _, err := os.Stat(filepath.Join(res.RunDir, name)); err != nil {
			t.Errorf("artifact %s: %v", name, err)
		}
	}
}

// TestKnownFailureDedupAcrossRuns: the second identical supervised run
// reports every failure class as known and leaves the store byte-stable.
func TestKnownFailureDedupAcrossRuns(t *testing.T) {
	spec := testSpec()
	knownPath := filepath.Join(t.TempDir(), "known.json")

	cfg1 := testConfig(t, spec, 2)
	cfg1.KnownPath = knownPath
	res1, err := campaignd.Run(context.Background(), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.FailingTrials == 0 {
		t.Fatal("test spec produced no failing trials; raise its RBER so dedup is exercised")
	}
	if res1.KnownFailures != 0 || res1.NewFailures != len(res1.FailureClasses) {
		t.Fatalf("first run: %d new / %d known of %d classes",
			res1.NewFailures, res1.KnownFailures, len(res1.FailureClasses))
	}
	store1, err := os.ReadFile(knownPath)
	if err != nil {
		t.Fatal(err)
	}

	cfg2 := testConfig(t, spec, 2)
	cfg2.KnownPath = knownPath
	res2, err := campaignd.Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NewFailures != 0 || res2.KnownFailures != len(res1.FailureClasses) {
		t.Fatalf("second run: %d new / %d known, want 0 / %d",
			res2.NewFailures, res2.KnownFailures, len(res1.FailureClasses))
	}
	store2, err := os.ReadFile(knownPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(store1, store2) {
		t.Error("known-failure store not byte-stable across identical runs")
	}
}
