// The evidence trail: every supervised run writes an artifact directory that
// makes its result independently checkable and its failures reproducible
// without re-running the campaign — the spec, the exact command line, the
// merged report (byte-identical to `nvct -json` for a complete run), the
// per-shard supervision record, and for failing trials a ready-to-paste repro
// command plus the durable dump the recovery read.
package campaignd

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"easycrash/internal/cli"
	"easycrash/internal/nvct"
)

// Run-directory layout.
const (
	specFile   = "spec.json"   // the campaign spec workers ran from
	metaFile   = "meta.json"   // invocation metadata (command line, shape)
	reportFile = "report.json" // merged report, nvct's stable serialization
	statusFile = "status.json" // per-shard supervision outcome
	shardsDir  = "shards"      // raw worker shard files
	failDir    = "failures"    // per-failing-trial evidence
)

// runMeta is the meta.json payload: enough to re-issue the run verbatim.
type runMeta struct {
	CommandLine []string `json:"command_line"`
	Kernel      string   `json:"kernel"`
	Tests       int      `json:"tests"`
	Seed        int64    `json:"seed"`
	Shards      int      `json:"shards"`
	MaxAttempts int      `json:"max_attempts"`
	Chaos       string   `json:"chaos,omitempty"`
}

// runStatus is the status.json payload: the supervision record plus the
// fingerprint ledger.
type runStatus struct {
	Complete       bool             `json:"complete"`
	Delivered      int              `json:"delivered"`
	Requested      int              `json:"requested"`
	Missing        []int            `json:"missing,omitempty"`
	Shards         []ShardStatus    `json:"shards"`
	FailingTrials  int              `json:"failing_trials"`
	NewFailures    int              `json:"new_failures"`
	KnownFailures  int              `json:"known_failures"`
	FailureClasses []*FailureRecord `json:"failure_classes,omitempty"`
}

// initRunDir creates the run directory skeleton and writes the spec and meta
// files before any worker starts, so even a run that dies early leaves a
// record of what it was. It returns the spec path workers load.
func initRunDir(cfg *Config) (specPath string, err error) {
	if err := os.MkdirAll(filepath.Join(cfg.RunDir, shardsDir), 0o755); err != nil {
		return "", err
	}
	specPath = filepath.Join(cfg.RunDir, specFile)
	if err := cfg.Spec.WriteFile(specPath); err != nil {
		return "", err
	}
	meta := runMeta{
		CommandLine: cfg.CommandLine,
		Kernel:      cfg.Spec.Kernel,
		Tests:       cfg.Spec.Opts.Tests,
		Seed:        cfg.Spec.Opts.Seed,
		Shards:      cfg.Shards,
		MaxAttempts: cfg.MaxAttempts,
		Chaos:       cfg.Chaos,
	}
	if err := writeJSONFile(filepath.Join(cfg.RunDir, metaFile), meta); err != nil {
		return "", err
	}
	return specPath, nil
}

// writeArtifacts records the run's outcome: the merged report, the
// supervision status, and per-failing-trial evidence.
func writeArtifacts(ctx context.Context, cfg Config, res *Result) error {
	b, err := res.Report.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(cfg.RunDir, reportFile), b, 0o644); err != nil {
		return err
	}
	status := runStatus{
		Complete:       res.Complete,
		Delivered:      len(res.Report.Tests),
		Requested:      res.Report.Requested,
		Missing:        res.Missing,
		Shards:         res.Shards,
		FailingTrials:  res.FailingTrials,
		NewFailures:    res.NewFailures,
		KnownFailures:  res.KnownFailures,
		FailureClasses: res.FailureClasses,
	}
	if err := writeJSONFile(filepath.Join(cfg.RunDir, statusFile), status); err != nil {
		return err
	}
	return writeFailureEvidence(ctx, cfg, res)
}

// writeFailureEvidence archives, for up to EvidenceTrials failure classes, the
// class's example trial: the repro command, the trial postmortem, and the
// durable dump recovery started from (re-derived from the seed — retrying is
// deterministic, so the evidence is exactly what the worker saw). A negative
// EvidenceTrials disables dumps; repro.txt is still cheap enough to always
// write.
func writeFailureEvidence(ctx context.Context, cfg Config, res *Result) error {
	if len(res.FailureClasses) == 0 {
		return nil
	}
	var tester *nvct.Tester
	dumps := cfg.EvidenceTrials
	for _, class := range res.FailureClasses {
		dir := filepath.Join(cfg.RunDir, failDir, fmt.Sprintf("trial-%06d", class.ExampleTrial))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		repro := "nvct " + strings.Join(cfg.Spec.ReproArgs(class.ExampleTrial), " ") + "\n"
		if err := os.WriteFile(filepath.Join(dir, "repro.txt"), []byte(repro), 0o644); err != nil {
			return err
		}
		if dumps <= 0 || ctx.Err() != nil {
			continue
		}
		dumps--
		if tester == nil {
			t, err := cfg.Spec.NewTester()
			if err != nil {
				return err
			}
			tester = t
		}
		tr, dump, err := tester.ReproTrialDump(ctx, cfg.Spec.Policy, cfg.Spec.Opts, class.ExampleTrial)
		if err != nil {
			// Evidence is best-effort — the run result is already on disk —
			// but a skipped dump must be visible, not silent.
			fmt.Fprintf(cfg.Log, "evidence: trial %d dump skipped: %v\n", class.ExampleTrial, err)
			continue
		}
		var pm strings.Builder
		cli.PrintTrial(&pm, class.ExampleTrial, tr)
		fmt.Fprintf(&pm, "  fingerprint: %s (%d trial(s) this run)\n", class.Fingerprint, class.Count)
		if err := os.WriteFile(filepath.Join(dir, "postmortem.txt"), []byte(pm.String()), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, "dump.bin"), dump, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
