// Worker mode: one shard attempt in one subprocess.
//
// The supervisor re-execs the running binary with a worker flag set naming
// the spec file, the shard coordinates, the attempt number and the output
// path. The worker emits heartbeat lines on stdout while it runs, writes its
// shard report atomically (temp file + rename, so a kill mid-write can never
// leave a plausible-looking half file), and exits 0. SIGTERM drains: the
// shard's campaign context is cancelled, the trials completed so far are
// still written, and the supervisor accepts the partial shard.
//
// The chaos flag is the test-only failure injector that keeps the
// supervision code honest: a worker told to crash, hang or garble on a given
// (shard, attempt) does exactly that, so tests and CI exercise the real
// kill/retry/backoff machinery instead of trusting it.
package campaignd

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"easycrash/internal/cli"
	"easycrash/internal/nvct"
)

// Heartbeat protocol: workers print "hb <done>/<total>" lines on stdout.
const heartbeatPrefix = "hb "

// chaosKey addresses one worker attempt: chaos actions are scoped to a
// specific (shard, attempt) pair so a chaotic first attempt can be retried
// into a clean second one.
type chaosKey struct {
	shard   int
	attempt int
}

// Chaos maps worker attempts to misbehaviours. The flag syntax is a
// comma-separated list of mode@shard.attempt entries, e.g.
// "crash@0.1,hang@1.1,garble@2.1" — crash shard 0's first attempt, hang
// shard 1's first attempt, corrupt shard 2's first output. Attempts count
// from 1. Modes: crash (exit nonzero before writing output), hang (emit no
// heartbeats and never finish), garble (write a corrupt shard file and exit
// cleanly).
type Chaos map[chaosKey]string

// ParseChaos parses the chaos flag syntax. An empty string is no chaos.
func ParseChaos(s string) (Chaos, error) {
	if s == "" {
		return nil, nil
	}
	c := make(Chaos)
	for _, entry := range strings.Split(s, ",") {
		mode, at, ok := strings.Cut(strings.TrimSpace(entry), "@")
		if !ok {
			return nil, fmt.Errorf("campaignd: chaos entry %q, want mode@shard.attempt", entry)
		}
		switch mode {
		case "crash", "hang", "garble":
		default:
			return nil, fmt.Errorf("campaignd: chaos mode %q, want crash, hang or garble", mode)
		}
		shardStr, attemptStr, ok := strings.Cut(at, ".")
		if !ok {
			return nil, fmt.Errorf("campaignd: chaos target %q, want shard.attempt", at)
		}
		shard, err := strconv.Atoi(shardStr)
		if err != nil || shard < 0 {
			return nil, fmt.Errorf("campaignd: chaos shard %q", shardStr)
		}
		attempt, err := strconv.Atoi(attemptStr)
		if err != nil || attempt < 1 {
			return nil, fmt.Errorf("campaignd: chaos attempt %q (attempts count from 1)", attemptStr)
		}
		c[chaosKey{shard, attempt}] = mode
	}
	return c, nil
}

// Mode returns the misbehaviour for one worker attempt ("" = behave).
func (c Chaos) Mode(shard, attempt int) string {
	return c[chaosKey{shard, attempt}]
}

// WorkerMain is the worker-mode entry point, shared by cmd/campaignrunner's
// worker subcommand and the test binaries' re-exec harness. It parses the
// worker flags from args, runs one shard attempt, and returns the process
// exit code.
func WorkerMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaignd-worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath = fs.String("spec", "", "campaign spec file")
		shard    = fs.Int("shard", 0, "shard index")
		shards   = fs.Int("shards", 1, "shard count")
		attempt  = fs.Int("attempt", 1, "attempt number (1-based)")
		outPath  = fs.String("out", "", "shard report output path")
		hb       = fs.Duration("hb", 200*time.Millisecond, "heartbeat interval")
		chaosArg = fs.String("chaos", "", "test-only failure injection (mode@shard.attempt,...)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "campaignd worker: %v\n", err)
		return 1
	}
	if *specPath == "" || *outPath == "" {
		return fail(fmt.Errorf("-spec and -out are required"))
	}
	spec, err := LoadSpec(*specPath)
	if err != nil {
		return fail(err)
	}
	sh := nvct.Shard{Index: *shard, Count: *shards}
	if err := sh.Validate(); err != nil {
		return fail(err)
	}
	chaos, err := ParseChaos(*chaosArg)
	if err != nil {
		return fail(err)
	}

	switch chaos.Mode(*shard, *attempt) {
	case "crash":
		// Die the way an OOM-killed or panicking worker dies: one heartbeat
		// proves liveness detection alone is not enough, then a hard exit
		// with nothing written.
		fmt.Fprintf(stdout, "%s0/%d\n", heartbeatPrefix, len(sh.Indices(spec.Opts.Tests)))
		return 2
	case "hang":
		// Hang mid-shard: one heartbeat proves the worker started and was
		// live, then it goes silent without exiting — the supervisor's
		// heartbeat timeout (not startup grace, not an exit status) is the
		// only thing that can reclaim it. The sleep bounds the damage if
		// supervision is broken (a failed test, not a stuck one).
		fmt.Fprintf(stdout, "%s0/%d\n", heartbeatPrefix, len(sh.Indices(spec.Opts.Tests)))
		time.Sleep(10 * time.Minute)
		return 3
	case "garble":
		// Exit "successfully" with corrupt output: supervision must validate
		// results, not trust exit codes.
		fmt.Fprintf(stdout, "%s0/%d\n", heartbeatPrefix, len(sh.Indices(spec.Opts.Tests)))
		if err := os.WriteFile(*outPath, []byte("{\"kernel\":\"truncated..."), 0o644); err != nil {
			return fail(err)
		}
		return 0
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	// Heartbeats must start before the tester is built: the golden reference
	// run inside NewTester is the longest silent stretch of a worker's life,
	// and a supervisor that hears nothing during it would kill a healthy
	// worker as hung.
	total := len(sh.Indices(spec.Opts.Tests))
	var done atomic.Int64
	beat := func() { fmt.Fprintf(stdout, "%s%d/%d\n", heartbeatPrefix, done.Load(), total) }
	beat()
	ticker := time.NewTicker(*hb)
	stopBeats := make(chan struct{})
	beatsDone := make(chan struct{})
	go func() {
		defer close(beatsDone)
		for {
			select {
			case <-ticker.C:
				beat()
			case <-stopBeats:
				return
			}
		}
	}()
	endBeats := func() {
		ticker.Stop()
		close(stopBeats)
		<-beatsDone
	}

	tester, err := spec.NewTester()
	if err != nil {
		endBeats()
		return fail(err)
	}
	part, runErr := tester.RunShardContext(ctx, spec.Policy, spec.Opts, sh, func(int) { done.Add(1) })
	endBeats()

	if part != nil {
		if err := writeFileAtomic(*outPath, mustShardJSON(part, stderr)); err != nil {
			return fail(err)
		}
		beat()
	}
	if runErr != nil {
		// Drained by SIGTERM (or the supervisor's kill racing the finish):
		// the partial shard file above is the result; the exit code says
		// "incomplete on purpose".
		fmt.Fprintf(stderr, "campaignd worker: shard %d/%d drained: %v\n", *shard, *shards, runErr)
		return 0
	}
	return 0
}

func mustShardJSON(part *nvct.ShardReport, stderr io.Writer) []byte {
	b, err := part.JSON()
	if err != nil {
		// Serialization of an in-memory report cannot fail in practice;
		// refuse to write anything rather than write junk.
		fmt.Fprintf(stderr, "campaignd worker: serializing shard: %v\n", err)
		os.Exit(1)
	}
	return b
}

// writeFileAtomic writes via a temp file and rename, so a worker killed
// mid-write leaves either no output or complete output — never a torn file
// that happens to parse.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
