package campaignd_test

import (
	"os"
	"path/filepath"
	"testing"

	"easycrash/internal/campaignd"
	"easycrash/internal/nvct"
)

func TestParseChaos(t *testing.T) {
	c, err := campaignd.ParseChaos("crash@0.1, hang@1.1,garble@2.3")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		shard, attempt int
		want           string
	}{
		{0, 1, "crash"}, {1, 1, "hang"}, {2, 3, "garble"},
		{0, 2, ""}, {3, 1, ""},
	} {
		if got := c.Mode(tc.shard, tc.attempt); got != tc.want {
			t.Errorf("Mode(%d,%d) = %q, want %q", tc.shard, tc.attempt, got, tc.want)
		}
	}
	if c, err := campaignd.ParseChaos(""); c != nil || err != nil {
		t.Errorf("ParseChaos(\"\") = %v, %v", c, err)
	}
	for _, bad := range []string{
		"explode@0.1", // unknown mode
		"crash@0",     // no attempt
		"crash",       // no target
		"crash@x.1",   // bad shard
		"crash@0.0",   // attempts count from 1
		"crash@-1.1",  // negative shard
	} {
		if _, err := campaignd.ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
}

// failingTrial is a representative non-successful trial for fingerprint tests.
func failingTrial() nvct.TestResult {
	return nvct.TestResult{
		Outcome:       nvct.S3,
		Err:           "recovery failed: bad bookmark",
		CrashRegion:   2,
		CrashAccess:   1234,
		CrashIter:     7,
		Inconsistency: map[string]float64{"u": 0.43, "r": 0.01},
	}
}

func TestFingerprintIgnoresCrashLocation(t *testing.T) {
	a := failingTrial()
	b := failingTrial()
	b.CrashAccess = 99999 // same failure mode at a different point of the loop
	b.CrashIter = 2
	b.Inconsistency["u"] = 0.44 // within the same 0.1 bucket
	if campaignd.Fingerprint(a) != campaignd.Fingerprint(b) {
		t.Error("fingerprint varies with crash access/iteration")
	}
}

func TestFingerprintSeparatesFailureModes(t *testing.T) {
	base := failingTrial()
	fps := map[string]string{"base": campaignd.Fingerprint(base)}
	variants := map[string]func(*nvct.TestResult){
		"outcome":   func(tr *nvct.TestResult) { tr.Outcome = nvct.SDue },
		"err":       func(tr *nvct.TestResult) { tr.Err = "recovery failed: torn header" },
		"region":    func(tr *nvct.TestResult) { tr.CrashRegion = 3 },
		"inc":       func(tr *nvct.TestResult) { tr.Inconsistency["u"] = 0.93 },
		"violation": func(tr *nvct.TestResult) { tr.Violations = []string{"lost update k=4"} },
		"chain": func(tr *nvct.TestResult) {
			tr.Chain = []nvct.ChainCrash{{Region: 2}, {Region: 0}}
			tr.Depth = 2
		},
	}
	for name, mutate := range variants {
		tr := failingTrial()
		tr.Inconsistency = map[string]float64{"u": 0.43, "r": 0.01}
		mutate(&tr)
		fp := campaignd.Fingerprint(tr)
		for prev, prevFP := range fps {
			if fp == prevFP {
				t.Errorf("variant %q collides with %q", name, prev)
			}
		}
		fps[name] = fp
	}
}

func TestKnownStoreDedupAndStability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "known.json")
	classes := []*campaignd.FailureRecord{
		{Fingerprint: "aaaa", Outcome: "S3", ExampleTrial: 4, Count: 3},
		{Fingerprint: "bbbb", Outcome: "DUE", ExampleTrial: 9, Count: 1},
	}

	ks, err := campaignd.LoadKnownStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Len() != 0 {
		t.Fatalf("fresh store has %d records", ks.Len())
	}
	if n, k := ks.Record(classes); n != 2 || k != 0 {
		t.Fatalf("first run: %d new / %d known, want 2 / 0", n, k)
	}
	if err := ks.Save(); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// An identical rerun: everything known, and the store file stays
	// byte-identical (Count is per-run, not cumulative).
	ks2, err := campaignd.LoadKnownStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, k := ks2.Record(classes); n != 0 || k != 2 {
		t.Fatalf("rerun: %d new / %d known, want 0 / 2", n, k)
	}
	if err := ks2.Save(); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("store not byte-stable across identical reruns:\n%s\nvs\n%s", first, second)
	}

	// A new failure mode alongside the known ones.
	ks3, err := campaignd.LoadKnownStore(path)
	if err != nil {
		t.Fatal(err)
	}
	more := append(classes, &campaignd.FailureRecord{Fingerprint: "cccc", Outcome: "VIOL", ExampleTrial: 2, Count: 1})
	if n, k := ks3.Record(more); n != 1 || k != 2 {
		t.Fatalf("third run: %d new / %d known, want 1 / 2", n, k)
	}

	// ExampleTrial keeps its first-recorded value so archived evidence
	// pointers stay valid even if a later run sees the mode elsewhere first.
	moved := []*campaignd.FailureRecord{{Fingerprint: "aaaa", Outcome: "S3", ExampleTrial: 17, Count: 1}}
	ks3.Record(moved)
	if err := ks3.Save(); err != nil {
		t.Fatal(err)
	}
	ks4, err := campaignd.LoadKnownStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ks4.Known("aaaa") || !ks4.Known("cccc") || ks4.Len() != 3 {
		t.Fatalf("store after third run: len %d", ks4.Len())
	}
}

func TestClassifyFailures(t *testing.T) {
	mk := func(idx int, out nvct.Outcome, err string) nvct.ShardTrial {
		return nvct.ShardTrial{Index: idx, Res: nvct.TestResult{Outcome: out, Err: err}}
	}
	parts := []*nvct.ShardReport{
		{Trials: []nvct.ShardTrial{mk(0, nvct.S1, ""), mk(2, nvct.S3, "x"), mk(4, nvct.S3, "x")}},
		{Trials: []nvct.ShardTrial{mk(1, nvct.S2, ""), mk(3, nvct.SDue, ""), mk(5, nvct.S3, "x")}},
	}
	classes, failing := campaignd.ClassifyFailures(parts)
	if failing != 4 {
		t.Fatalf("failing = %d, want 4", failing)
	}
	if len(classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(classes))
	}
	for _, c := range classes {
		switch c.Outcome {
		case "S3":
			if c.Count != 3 || c.ExampleTrial != 2 {
				t.Errorf("S3 class: count %d example %d, want 3 / 2", c.Count, c.ExampleTrial)
			}
		case "DUE":
			if c.Count != 1 || c.ExampleTrial != 3 {
				t.Errorf("DUE class: count %d example %d, want 1 / 3", c.Count, c.ExampleTrial)
			}
		default:
			t.Errorf("unexpected class outcome %s", c.Outcome)
		}
	}
}
