// Package campaignd is the supervised multi-process campaign runner: it
// splits one campaign's trials into round-robin shards (nvct.Shard), executes
// each shard in a worker subprocess (a re-exec of the running binary in
// worker mode, so one reference prefix run per shard drives the snapshot-tree
// engine), and merges the workers' shard files back into a report that is
// byte-identical to the single-process engine's.
//
// The supervisor is the robustness layer the paper's premise demands of its
// own tooling: workers are monitored through heartbeats, and a worker that
// dies, hangs or corrupts its output is killed and requeued under capped
// exponential backoff with a bounded per-shard retry budget. Retries cannot
// change results — every trial's state is seed-derived before any trial runs —
// so supervision is free to be aggressive. When a shard's budget is exhausted
// the campaign degrades gracefully: the merged report of every delivered
// trial is still written, with per-shard status recording exactly what was
// lost and why.
//
// Every run writes an evidence-first artifact directory (the campaign spec,
// full command line, merged JSON report, per-shard status, and for failing
// trials a repro command plus the durable dump recovery read), and failures
// are fingerprinted and deduplicated against a persistent known-failure store
// so repeated sweeps report "N new / M known".
package campaignd

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"easycrash/internal/apps"
	"easycrash/internal/cli"
	"easycrash/internal/nvct"
)

// Spec is the complete, serializable description of one campaign: everything
// a worker needs to rebuild the tester and run its shard. The supervisor
// writes it into the run directory once; workers load it from there, so the
// supervisor's and every worker's view of the campaign cannot drift.
type Spec struct {
	// Kernel is the registered kernel name (apps.New).
	Kernel string `json:"kernel"`
	// Profile is the problem-size profile ("test" or "bench"; empty = test).
	Profile string `json:"profile,omitempty"`
	// Cache is the cache geometry ("test" or "paper"; empty = test).
	Cache string `json:"cache,omitempty"`
	// Policy is the persistence policy under test (nil = iterator-only).
	Policy *nvct.Policy `json:"policy,omitempty"`
	// Opts are the campaign options. Opts.Parallel applies within each
	// worker; the supervisor's shard concurrency is separate.
	Opts nvct.CampaignOpts `json:"opts"`
}

// Validate checks the spec before it is written for workers.
func (s *Spec) Validate() error {
	if s.Kernel == "" {
		return fmt.Errorf("campaignd: spec without kernel")
	}
	if s.Opts.Tests <= 0 {
		return fmt.Errorf("campaignd: spec with %d tests, want > 0", s.Opts.Tests)
	}
	if _, err := cli.ParseProfile(s.Profile); err != nil {
		return err
	}
	if _, err := cli.ParseCache(s.Cache); err != nil {
		return err
	}
	return s.Opts.Faults.Validate()
}

// NewTester builds the campaign's tester (golden run included) from the spec.
func (s *Spec) NewTester() (*nvct.Tester, error) {
	prof, err := cli.ParseProfile(s.Profile)
	if err != nil {
		return nil, err
	}
	factory, err := apps.New(s.Kernel, prof)
	if err != nil {
		return nil, err
	}
	geom, err := cli.ParseCache(s.Cache)
	if err != nil {
		return nil, err
	}
	return nvct.NewTester(factory, nvct.Config{Cache: geom})
}

// WriteFile writes the spec as stable JSON.
func (s *Spec) WriteFile(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadSpec reads and validates a spec file.
func LoadSpec(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("campaignd: malformed spec %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ReproArgs renders the nvct command-line flags that re-run one trial of this
// campaign in isolation — the repro command archived next to every failing
// trial's evidence.
func (s *Spec) ReproArgs(trial int) []string {
	args := []string{"-kernel", s.Kernel}
	if s.Profile != "" && s.Profile != "test" {
		args = append(args, "-profile", s.Profile)
	}
	if s.Cache != "" && s.Cache != "test" {
		args = append(args, "-cache", s.Cache)
	}
	args = append(args, "-tests", strconv.Itoa(s.Opts.Tests), "-seed", strconv.FormatInt(s.Opts.Seed, 10))
	if p := s.Policy; p != nil {
		args = append(args, "-persist", strings.Join(p.Objects, ","))
		if len(p.AtRegionEnds) > 0 {
			ids := make([]string, len(p.AtRegionEnds))
			for i, r := range p.AtRegionEnds {
				ids[i] = strconv.Itoa(r)
			}
			args = append(args, "-regions", strings.Join(ids, ","))
			if p.AtIterationEnd {
				args = append(args, "-every-iteration")
			}
		}
		if p.Frequency > 1 {
			args = append(args, "-frequency", strconv.FormatInt(p.Frequency, 10))
		}
	}
	if s.Opts.Verified {
		args = append(args, "-verified")
	}
	if s.Opts.CrashDuringPersistence {
		args = append(args, "-during-persistence")
	}
	if f := s.Opts.Faults; f.Enabled() {
		if f.RBER > 0 {
			args = append(args, "-rber", strconv.FormatFloat(f.RBER, 'g', -1, 64))
		}
		if f.TornWrites {
			args = append(args, "-torn")
		}
		if f.ECC.CorrectBits > 0 || f.ECC.DetectBits > 0 {
			args = append(args, "-ecc", strconv.Itoa(f.ECC.CorrectBits), "-ecc-detect", strconv.Itoa(f.ECC.DetectBits))
		}
	}
	if s.Opts.ScrubOnRestart {
		args = append(args, "-scrub")
	}
	if s.Opts.RecrashDepth > 0 {
		args = append(args, "-recrash-depth", strconv.Itoa(s.Opts.RecrashDepth))
		if s.Opts.RetryBudget > 0 {
			args = append(args, "-retry-budget", strconv.Itoa(s.Opts.RetryBudget))
		}
	}
	return append(args, "-repro", strconv.Itoa(trial))
}
