package mem

import "testing"

func TestImageReset(t *testing.T) {
	im := NewImage(1 << 12)
	im.WriteBlock(0, make([]byte, BlockSize))
	im.RawWrite(128, []byte{5})
	im.PoisonBlock(64)
	hooked := 0
	im.SetWriteHook(func(base uint64, old, new []byte) { hooked++ })

	im.Reset()
	if im.BlockWrites() != 0 || im.BytesWritten() != 0 {
		t.Fatalf("counters after Reset: %d blocks, %d bytes", im.BlockWrites(), im.BytesWritten())
	}
	if im.Poisoned(64) {
		t.Fatal("poison survived Reset")
	}
	//eclint:allow directmem — verifying raw contents after reset
	for i, b := range im.Bytes(0, im.Size()) {
		if b != 0 {
			t.Fatalf("byte %d = %#x after Reset, want 0", i, b)
		}
	}
	im.WriteBlock(0, make([]byte, BlockSize))
	if hooked != 0 {
		t.Fatal("write hook survived Reset")
	}
}

func TestImageResetPrefix(t *testing.T) {
	im := NewImage(256)
	im.RawWrite(0, []byte{1})
	im.RawWrite(200, []byte{2})
	im.ResetPrefix(64)
	//eclint:allow directmem — verifying raw contents after reset
	if im.Bytes(0, 1)[0] != 0 {
		t.Fatal("prefix byte not zeroed")
	}
	//eclint:allow directmem — verifying raw contents after reset
	if im.Bytes(200, 1)[0] != 2 {
		t.Fatal("byte past the prefix was zeroed")
	}

	// The prefix rounds up to whole blocks; clamping past capacity is fine.
	im.RawWrite(65, []byte{3})
	im.ResetPrefix(1)
	//eclint:allow directmem — verifying raw contents after reset
	if im.Bytes(65, 1)[0] != 3 {
		t.Fatal("ResetPrefix(1) crossed into the second block")
	}
	im.ResetPrefix(65)
	//eclint:allow directmem — verifying raw contents after reset
	if im.Bytes(65, 1)[0] != 0 {
		t.Fatal("ResetPrefix(65) did not round up to the containing block")
	}
	im.ResetPrefix(1 << 20)
}

func TestSpaceReset(t *testing.T) {
	s := NewSpace(1 << 12)
	o := s.AllocF64("x", 4, true)
	s.Image().RawWrite(o.Addr, []byte{9})

	s.Reset()
	if s.Extent() != 0 {
		t.Fatalf("Extent after Reset = %d", s.Extent())
	}
	if _, ok := s.Object("x"); ok {
		t.Fatal("object registry survived Reset")
	}
	if len(s.Objects()) != 0 || len(s.Candidates()) != 0 {
		t.Fatal("object lists survived Reset")
	}

	// The name and the address are reusable, over zeroed contents.
	o2 := s.AllocF64("x", 4, true)
	if o2.Addr != o.Addr {
		t.Fatalf("realloc placed x at %#x, fresh space placed it at %#x", o2.Addr, o.Addr)
	}
	//eclint:allow directmem — verifying raw contents after reset
	if s.Image().Bytes(o2.Addr, 1)[0] != 0 {
		t.Fatal("reallocated object sees stale contents")
	}
}
