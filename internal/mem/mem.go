// Package mem provides the simulated non-volatile main memory (NVM) substrate
// used by the whole reproduction: a byte-accurate memory image that survives
// simulated crashes, plus a registry of application data objects placed in it.
//
// The memory image plays the role of the Optane DC PMM in app-direct mode: it
// is the durable truth. Volatile state (the caches in package cachesim) sits
// in front of it; only cache write-backs and explicit flushes reach the image.
// Write traffic into the image is counted at cache-block granularity, which is
// what the paper's NVM-endurance experiments (Figure 9) measure.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// BlockSize is the cache-block size in bytes used throughout the simulator.
// The paper simulates 64-byte lines (Xeon Gold 6126).
const BlockSize = 64

// SnapPageSize is the sharing granularity of copy-on-write image forks: a
// Fork copies only the pages dirtied since the previous Fork and shares the
// rest with it. 4 KiB keeps the dirty-tracking table small (one bool per
// page) while a typical inter-fork delta touches only a handful of pages.
const SnapPageSize = 4096

const snapPageShift = 12

// Image is a byte-accurate simulated NVM image. The zero value is not usable;
// create one with NewImage.
type Image struct {
	data         []byte
	blockWrites  uint64
	bytesWritten uint64
	wear         *WearMap
	writeHook    WriteHook
	poisoned     map[uint64]struct{} // block base addrs that read as uncorrectable

	// Copy-on-write fork tracking (nil until the first Fork): snapDirty[i]
	// marks page i as mutated since the previous Fork, lastFork[i] is the
	// immutable copy of page i the previous Fork produced. A Fork copies
	// dirty pages and shares clean ones with its predecessor.
	snapDirty []bool
	lastFork  [][]byte
}

// WriteHook observes every in-band block write into the image before it is
// applied: base is the block base address, old the current contents and new
// the incoming contents (both BlockSize bytes). Both slices alias live
// buffers — a hook must copy what it keeps. The media-fault layer installs
// one to learn which block is in flight when a crash fires.
type WriteHook func(base uint64, old, new []byte)

// MediaError is the panic payload raised by reading a poisoned block — the
// simulator's analogue of the machine-check exception a detected-
// uncorrectable NVM error raises.
type MediaError struct {
	Addr uint64 // poisoned block base address
}

// Error implements error.
func (e *MediaError) Error() string {
	return fmt.Sprintf("mem: detected-uncorrectable media error reading block %#x", e.Addr)
}

// NewImage creates an NVM image of the given size in bytes, rounded up to a
// whole number of cache blocks.
func NewImage(size uint64) *Image {
	size = (size + BlockSize - 1) &^ (BlockSize - 1)
	return &Image{data: make([]byte, size)}
}

// Size returns the image capacity in bytes.
func (im *Image) Size() uint64 { return uint64(len(im.data)) }

// ReadBlock copies the cache block containing addr into dst (len BlockSize).
// Reading a poisoned block panics with a *MediaError — the detected-
// uncorrectable outcome of the ECC model; the crash tester recovers it and
// classifies the test.
func (im *Image) ReadBlock(addr uint64, dst []byte) {
	base := addr &^ (BlockSize - 1)
	if im.poisoned != nil {
		if _, bad := im.poisoned[base]; bad {
			panic(&MediaError{Addr: base})
		}
	}
	copy(dst, im.data[base:base+BlockSize])
}

// WriteBlock writes one cache block into the image and counts one NVM write.
// This is the only mutation path used by the cache hierarchy, so blockWrites
// counts exactly the media writes the paper's endurance analysis counts.
// A full-block write re-establishes the block's ECC, healing any poison.
func (im *Image) WriteBlock(addr uint64, src []byte) {
	base := addr &^ (BlockSize - 1)
	if im.writeHook != nil {
		im.writeHook(base, im.data[base:base+BlockSize], src[:BlockSize])
	}
	if im.poisoned != nil {
		delete(im.poisoned, base)
	}
	copy(im.data[base:base+BlockSize], src[:BlockSize])
	im.blockWrites++
	im.bytesWritten += BlockSize
	if im.snapDirty != nil {
		im.snapDirty[base>>snapPageShift] = true
	}
	if im.wear != nil {
		im.wear.record(base)
	}
}

// markSnapRange records that [addr, addr+n) was mutated since the last Fork.
// A no-op (one branch) until the first Fork enables tracking.
func (im *Image) markSnapRange(addr, n uint64) {
	if im.snapDirty == nil || n == 0 {
		return
	}
	for p := addr >> snapPageShift; p <= (addr+n-1)>>snapPageShift; p++ {
		im.snapDirty[p] = true
	}
}

// SetWriteHook installs an observer for in-band block writes (nil removes
// it). The media-fault layer uses it to track the write in flight at a
// crash; a nil hook costs one predictable branch per media write.
func (im *Image) SetWriteHook(h WriteHook) { im.writeHook = h }

// PoisonBlock marks the block containing addr as detected-uncorrectable:
// its data is considered lost and ReadBlock panics with a *MediaError until
// a full-block write heals it.
func (im *Image) PoisonBlock(addr uint64) {
	if im.poisoned == nil {
		im.poisoned = make(map[uint64]struct{})
	}
	im.poisoned[addr&^(BlockSize-1)] = struct{}{}
}

// ClearPoison heals the block containing addr without writing data.
func (im *Image) ClearPoison(addr uint64) {
	delete(im.poisoned, addr&^(BlockSize-1))
}

// Poisoned reports whether the block containing addr is poisoned.
func (im *Image) Poisoned(addr uint64) bool {
	_, bad := im.poisoned[addr&^(BlockSize-1)]
	return bad
}

// PoisonedBlocks returns the poisoned block base addresses in ascending
// order — the postmortem record the crash tester carries into restart.
func (im *Image) PoisonedBlocks() []uint64 {
	if len(im.poisoned) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(im.poisoned))
	for b := range im.poisoned {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BlockWrites returns the number of cache-block writes the image has absorbed.
func (im *Image) BlockWrites() uint64 { return im.blockWrites }

// BytesWritten returns the number of bytes written into the image.
func (im *Image) BytesWritten() uint64 { return im.bytesWritten }

// ResetWriteCounters zeroes the write counters without touching contents.
func (im *Image) ResetWriteCounters() { im.blockWrites, im.bytesWritten = 0, 0 }

// Bytes returns the raw image contents for the half-open range [addr, addr+n).
// The returned slice aliases the image; callers must not hold it across
// mutations they do not intend to observe.
//
// Bytes bypasses the cache hierarchy — simulation-accuracy hazard: it sees
// only durable state, never dirty cached lines, and is invisible to crash
// delivery and write accounting. Kernels must route accesses through
// sim.Machine; only out-of-band recovery, validation and test code may read
// raw, under an //eclint:allow directmem annotation.
func (im *Image) Bytes(addr, n uint64) []byte { return im.data[addr : addr+n] }

// RawWrite copies bytes into the image without counting NVM writes. It models
// out-of-band restoration (e.g. reloading a checkpoint from SSD) and test
// setup, not in-band store traffic.
//
// RawWrite bypasses the cache hierarchy — simulation-accuracy hazard: the
// bytes land in durable state without dirtying or invalidating cached lines,
// so a kernel using it desynchronises cache and media. eclint (directmem)
// rejects unannotated calls.
func (im *Image) RawWrite(addr uint64, src []byte) {
	copy(im.data[addr:], src)
	im.markSnapRange(addr, uint64(len(src)))
}

// Float64At reads a float64 stored at addr directly from the image.
//
// Float64At bypasses the cache hierarchy — simulation-accuracy hazard: it
// reflects only durable state and ignores newer values still cached. In-band
// code must use Machine.LoadF64; eclint (directmem) rejects unannotated
// calls.
func (im *Image) Float64At(addr uint64) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(im.data[addr : addr+8]))
}

// SetFloat64At writes a float64 directly into the image without counting an
// NVM write (out-of-band restoration path).
//
// SetFloat64At bypasses the cache hierarchy — simulation-accuracy hazard:
// stale cached lines keep shadowing the written value. In-band code must use
// Machine.StoreF64; eclint (directmem) rejects unannotated calls.
func (im *Image) SetFloat64At(addr uint64, v float64) {
	binary.LittleEndian.PutUint64(im.data[addr:addr+8], math.Float64bits(v))
	im.markSnapRange(addr, 8)
}

// Int64At reads an int64 stored at addr directly from the image.
//
// Int64At bypasses the cache hierarchy — simulation-accuracy hazard: see
// Float64At; the in-band path is Machine.LoadI64.
func (im *Image) Int64At(addr uint64) int64 {
	return int64(binary.LittleEndian.Uint64(im.data[addr : addr+8]))
}

// SetInt64At writes an int64 directly into the image without counting a write.
//
// SetInt64At bypasses the cache hierarchy — simulation-accuracy hazard: see
// SetFloat64At; the in-band path is Machine.StoreI64.
func (im *Image) SetInt64At(addr uint64, v int64) {
	binary.LittleEndian.PutUint64(im.data[addr:addr+8], uint64(v))
	im.markSnapRange(addr, 8)
}

// Snapshot returns a deep copy of the image contents. Crash tests snapshot
// the post-crash durable state for postmortem analysis and restart.
func (im *Image) Snapshot() []byte {
	s := make([]byte, len(im.data))
	copy(s, im.data)
	return s
}

// Restore overwrites the image contents from a snapshot previously produced
// by Snapshot and heals all poisoned blocks: a restore models reprovisioning
// the medium from a known-good copy, after which no block is
// detected-uncorrectable. Write counters are unaffected.
func (im *Image) Restore(snap []byte) {
	if len(snap) != len(im.data) {
		panic(fmt.Sprintf("mem: restore snapshot size %d != image size %d", len(snap), len(im.data)))
	}
	copy(im.data, snap)
	im.markSnapRange(0, im.Size())
	im.poisoned = nil
}

// ImageSnapshot is an immutable copy-on-write snapshot of an image prefix,
// produced by Fork. Its pages are plain copies, shared structurally with the
// neighbouring forks of the same image where the content did not change in
// between, so concurrent readers never observe the live image mutating.
type ImageSnapshot struct {
	extent       uint64
	pages        [][]byte
	blockWrites  uint64
	bytesWritten uint64
}

// Extent returns the number of image-prefix bytes the snapshot captured.
func (s *ImageSnapshot) Extent() uint64 { return s.extent }

// CopyTo copies the snapshot contents into dst (len >= Extent).
func (s *ImageSnapshot) CopyTo(dst []byte) {
	off := uint64(0)
	for _, p := range s.pages {
		n := s.extent - off
		if n > SnapPageSize {
			n = SnapPageSize
		}
		copy(dst[off:off+n], p[:n])
		off += n
	}
}

// Fork snapshots the first extent bytes of the image as an immutable
// ImageSnapshot. The first Fork copies every covered page and enables
// page-granular dirty tracking; subsequent Forks copy only the pages written
// since the previous Fork (through any mutation path — block writes, raw
// writes, Restore) and share the untouched pages with it. This is what lets a
// campaign's reference machine hand a durable-image copy to every trial at
// page-delta cost instead of a full 64 MiB copy each.
//
// Forking does not capture poison state; the campaign fast path that forks
// runs with the media-fault layer detached, so the image cannot be poisoned.
func (im *Image) Fork(extent uint64) *ImageSnapshot {
	if extent > im.Size() {
		extent = im.Size()
	}
	if im.snapDirty == nil {
		npages := (im.Size() + SnapPageSize - 1) / SnapPageSize
		im.snapDirty = make([]bool, npages)
		for i := range im.snapDirty {
			im.snapDirty[i] = true
		}
		im.lastFork = make([][]byte, npages)
	}
	npages := int((extent + SnapPageSize - 1) / SnapPageSize)
	pages := make([][]byte, npages)
	for i := range pages {
		if !im.snapDirty[i] && im.lastFork[i] != nil {
			pages[i] = im.lastFork[i]
			continue
		}
		lo := uint64(i) << snapPageShift
		hi := lo + SnapPageSize
		if hi > im.Size() {
			hi = im.Size()
		}
		p := make([]byte, SnapPageSize)
		copy(p, im.data[lo:hi])
		pages[i] = p
		im.lastFork[i] = p
		im.snapDirty[i] = false
	}
	return &ImageSnapshot{
		extent:       extent,
		pages:        pages,
		blockWrites:  im.blockWrites,
		bytesWritten: im.bytesWritten,
	}
}

// RestoreSnapshot loads a forked snapshot into the image: the captured prefix
// is overwritten and the write counters are set to the forked machine's
// values. The caller is responsible for the bytes past the snapshot extent
// (a freshly Reset image holds zeros there, matching the forked image, whose
// in-band traffic never leaves its allocated prefix).
func (im *Image) RestoreSnapshot(s *ImageSnapshot) {
	s.CopyTo(im.data)
	im.blockWrites, im.bytesWritten = s.blockWrites, s.bytesWritten
	im.markSnapRange(0, s.extent)
	im.poisoned = nil
}

// Reset returns the image to its as-constructed state: all-zero contents,
// zero write counters, no poison, and no wear map or write hook attached.
// Campaign workers use it to recycle one image across crash tests instead of
// allocating a fresh one per test.
func (im *Image) Reset() { im.ResetPrefix(im.Size()) }

// ResetPrefix is Reset but only zeroes the first n bytes of contents (rounded
// up to a whole block). Counters, poison, wear and hook are fully reset
// regardless of n. Callers that know the high-water mark of past writes (for
// a Space, its Extent) avoid re-zeroing untouched capacity.
func (im *Image) ResetPrefix(n uint64) {
	n = (n + BlockSize - 1) &^ (BlockSize - 1)
	if n > uint64(len(im.data)) {
		n = uint64(len(im.data))
	}
	clear(im.data[:n])
	im.blockWrites, im.bytesWritten = 0, 0
	im.poisoned = nil
	im.wear = nil
	im.writeHook = nil
	im.snapDirty = nil
	im.lastFork = nil
}

// Object describes one application data object placed in simulated NVM.
// Following the paper (§2.2) only heap and global objects are modelled.
type Object struct {
	Name string
	Addr uint64
	Size uint64
	// Candidate marks a candidate critical data object (§5.1): its lifetime
	// is the main computation loop and it is not read-only.
	Candidate bool
}

// End returns the first address past the object.
func (o Object) End() uint64 { return o.Addr + o.Size }

// Space is an allocator plus data-object registry over an Image. Objects are
// block-aligned so flushing an object never touches a neighbouring object's
// blocks, matching how the paper's runtime flushes whole objects.
type Space struct {
	img    *Image
	brk    uint64
	byName map[string]int
	objs   []Object
}

// NewSpace creates an object space over a fresh image of the given capacity.
func NewSpace(capacity uint64) *Space {
	return &Space{img: NewImage(capacity), byName: make(map[string]int)}
}

// Image returns the underlying NVM image.
func (s *Space) Image() *Image { return s.img }

// Reset forgets every registered object and returns the image to its
// as-constructed state, zeroing only the allocated prefix (in-band traffic
// and fault injection are both bounded by Extent, so bytes past the brk were
// never written). After Reset the space is indistinguishable from a fresh
// NewSpace of the same capacity.
func (s *Space) Reset() {
	s.img.ResetPrefix(s.brk)
	s.brk = 0
	s.objs = s.objs[:0]
	clear(s.byName)
}

// Alloc places a new object of size bytes, block-aligned, and registers it.
// It panics if the name is already taken or the image is exhausted: both are
// programming errors in kernel setup, not runtime conditions.
func (s *Space) Alloc(name string, size uint64, candidate bool) Object {
	if _, dup := s.byName[name]; dup {
		panic("mem: duplicate object name " + name)
	}
	if size == 0 {
		panic("mem: zero-size object " + name)
	}
	addr := (s.brk + BlockSize - 1) &^ (BlockSize - 1)
	if addr+size > s.img.Size() {
		panic(fmt.Sprintf("mem: out of simulated NVM allocating %s (%d bytes, brk %d, cap %d)",
			name, size, addr, s.img.Size()))
	}
	s.brk = addr + size
	o := Object{Name: name, Addr: addr, Size: size, Candidate: candidate}
	s.byName[name] = len(s.objs)
	s.objs = append(s.objs, o)
	return o
}

// AllocF64 allocates an object holding n float64 values.
func (s *Space) AllocF64(name string, n int, candidate bool) Object {
	return s.Alloc(name, uint64(n)*8, candidate)
}

// AllocI64 allocates an object holding n int64 values.
func (s *Space) AllocI64(name string, n int, candidate bool) Object {
	return s.Alloc(name, uint64(n)*8, candidate)
}

// Extent returns the allocation high-water mark: the first address past all
// registered objects. The media-fault layer bounds raw-bit-error injection
// to [0, Extent) — errors in never-allocated capacity cannot affect the
// application.
func (s *Space) Extent() uint64 { return s.brk }

// Object looks up a registered object by name.
func (s *Space) Object(name string) (Object, bool) {
	i, ok := s.byName[name]
	if !ok {
		return Object{}, false
	}
	return s.objs[i], true
}

// MustObject looks up a registered object by name and panics if absent.
func (s *Space) MustObject(name string) Object {
	o, ok := s.Object(name)
	if !ok {
		panic("mem: unknown object " + name)
	}
	return o
}

// Objects returns all registered objects in allocation order.
func (s *Space) Objects() []Object {
	out := make([]Object, len(s.objs))
	copy(out, s.objs)
	return out
}

// Candidates returns the candidate critical data objects in allocation order.
func (s *Space) Candidates() []Object {
	var out []Object
	for _, o := range s.objs {
		if o.Candidate {
			out = append(out, o)
		}
	}
	return out
}

// Footprint returns the total bytes allocated to registered objects.
func (s *Space) Footprint() uint64 {
	var t uint64
	for _, o := range s.objs {
		t += o.Size
	}
	return t
}

// CandidateFootprint returns the total bytes of candidate objects.
func (s *Space) CandidateFootprint() uint64 {
	var t uint64
	for _, o := range s.objs {
		if o.Candidate {
			t += o.Size
		}
	}
	return t
}

// ObjectAt returns the object containing addr, if any. Used for attributing
// dirty bytes and NVM writes to objects in postmortem analysis.
func (s *Space) ObjectAt(addr uint64) (Object, bool) {
	// Objects are allocated in address order, so binary search works.
	i := sort.Search(len(s.objs), func(i int) bool { return s.objs[i].End() > addr })
	if i < len(s.objs) && s.objs[i].Addr <= addr {
		return s.objs[i], true
	}
	return Object{}, false
}
