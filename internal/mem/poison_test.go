package mem

import (
	"bytes"
	"sort"
	"testing"
)

func TestPoisonedReadPanicsWithMediaError(t *testing.T) {
	im := NewImage(4 * BlockSize)
	im.PoisonBlock(BlockSize + 7) // any address inside the block poisons it
	if !im.Poisoned(BlockSize + 63) {
		t.Fatal("block not reported poisoned")
	}
	if im.Poisoned(0) {
		t.Fatal("neighbouring block reported poisoned")
	}
	defer func() {
		r := recover()
		me, ok := r.(*MediaError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *MediaError", r, r)
		}
		if me.Addr != BlockSize {
			t.Fatalf("MediaError.Addr = %#x, want %#x", me.Addr, BlockSize)
		}
		if me.Error() == "" {
			t.Fatal("empty error string")
		}
	}()
	dst := make([]byte, BlockSize)
	im.ReadBlock(BlockSize+16, dst)
	t.Fatal("read of poisoned block did not panic")
}

func TestWriteBlockHealsPoison(t *testing.T) {
	im := NewImage(2 * BlockSize)
	im.PoisonBlock(0)
	src := make([]byte, BlockSize)
	for i := range src {
		src[i] = byte(i)
	}
	im.WriteBlock(0, src)
	if im.Poisoned(0) {
		t.Fatal("full-block write did not heal poison")
	}
	dst := make([]byte, BlockSize)
	im.ReadBlock(0, dst) // must not panic
	if !bytes.Equal(dst, src) {
		t.Fatal("healed block holds wrong data")
	}
}

func TestClearPoisonAndSortedList(t *testing.T) {
	im := NewImage(8 * BlockSize)
	for _, a := range []uint64{5 * BlockSize, BlockSize, 3 * BlockSize} {
		im.PoisonBlock(a)
	}
	got := im.PoisonedBlocks()
	if len(got) != 3 || !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("PoisonedBlocks = %v", got)
	}
	im.ClearPoison(3 * BlockSize)
	if im.Poisoned(3 * BlockSize) {
		t.Fatal("ClearPoison did not heal")
	}
	if n := len(im.PoisonedBlocks()); n != 2 {
		t.Fatalf("%d poisoned blocks after clear", n)
	}
	fresh := NewImage(BlockSize)
	if fresh.PoisonedBlocks() != nil {
		t.Fatal("fresh image reports poisoned blocks")
	}
}

func TestWriteHookSeesOldAndNew(t *testing.T) {
	im := NewImage(2 * BlockSize)
	first := make([]byte, BlockSize)
	for i := range first {
		first[i] = 0xAA
	}
	im.WriteBlock(BlockSize, first)

	var hookBase uint64
	var hookOld, hookNew []byte
	calls := 0
	im.SetWriteHook(func(base uint64, old, new []byte) {
		calls++
		hookBase = base
		hookOld = append([]byte(nil), old...)
		hookNew = append([]byte(nil), new...)
	})
	second := make([]byte, BlockSize)
	for i := range second {
		second[i] = 0xBB
	}
	im.WriteBlock(BlockSize+8, second) // unaligned addr: hook sees the block base
	if calls != 1 || hookBase != BlockSize {
		t.Fatalf("hook calls=%d base=%#x", calls, hookBase)
	}
	if !bytes.Equal(hookOld, first) || !bytes.Equal(hookNew, second) {
		t.Fatal("hook old/new content wrong")
	}
	im.SetWriteHook(nil)
	im.WriteBlock(0, first)
	if calls != 1 {
		t.Fatal("removed hook still invoked")
	}
}

func TestSpaceExtent(t *testing.T) {
	s := NewSpace(1 << 16)
	if s.Extent() != 0 {
		t.Fatalf("fresh space extent %d", s.Extent())
	}
	o := s.Alloc("a", 100, true)
	if s.Extent() != o.End() {
		t.Fatalf("extent %d after alloc ending at %d", s.Extent(), o.End())
	}
	b := s.Alloc("b", 8, false)
	if s.Extent() != b.End() {
		t.Fatalf("extent %d, last object ends at %d", s.Extent(), b.End())
	}
}
