package mem

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNewImageRoundsUpToBlocks(t *testing.T) {
	for _, sz := range []uint64{1, 63, 64, 65, 1000} {
		im := NewImage(sz)
		if im.Size()%BlockSize != 0 {
			t.Errorf("size %d: image size %d not block-aligned", sz, im.Size())
		}
		if im.Size() < sz {
			t.Errorf("size %d: image size %d smaller than requested", sz, im.Size())
		}
	}
}

func TestImageBlockReadWrite(t *testing.T) {
	im := NewImage(256)
	src := make([]byte, BlockSize)
	for i := range src {
		src[i] = byte(i + 1)
	}
	im.WriteBlock(64, src)
	dst := make([]byte, BlockSize)
	im.ReadBlock(64, dst)
	if !bytes.Equal(src, dst) {
		t.Fatal("read block differs from written block")
	}
	// Reads within the block resolve to the same block base.
	dst2 := make([]byte, BlockSize)
	im.ReadBlock(64+17, dst2)
	if !bytes.Equal(src, dst2) {
		t.Fatal("unaligned ReadBlock did not resolve to block base")
	}
}

func TestImageWriteCounting(t *testing.T) {
	im := NewImage(1024)
	blk := make([]byte, BlockSize)
	if im.BlockWrites() != 0 {
		t.Fatal("fresh image has nonzero write count")
	}
	im.WriteBlock(0, blk)
	im.WriteBlock(128, blk)
	if got := im.BlockWrites(); got != 2 {
		t.Fatalf("BlockWrites = %d, want 2", got)
	}
	if got := im.BytesWritten(); got != 2*BlockSize {
		t.Fatalf("BytesWritten = %d, want %d", got, 2*BlockSize)
	}
	// RawWrite and Set*At are out-of-band and must not count.
	im.RawWrite(0, []byte{1, 2, 3})
	im.SetFloat64At(8, 3.5)
	im.SetInt64At(16, -9)
	if got := im.BlockWrites(); got != 2 {
		t.Fatalf("out-of-band writes counted: BlockWrites = %d, want 2", got)
	}
	im.ResetWriteCounters()
	if im.BlockWrites() != 0 || im.BytesWritten() != 0 {
		t.Fatal("ResetWriteCounters did not zero counters")
	}
}

func TestImageTypedAccessors(t *testing.T) {
	im := NewImage(128)
	im.SetFloat64At(0, math.Pi)
	if got := im.Float64At(0); got != math.Pi {
		t.Fatalf("Float64At = %v, want %v", got, math.Pi)
	}
	im.SetInt64At(8, -12345)
	if got := im.Int64At(8); got != -12345 {
		t.Fatalf("Int64At = %v, want -12345", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	im := NewImage(256)
	im.SetFloat64At(0, 1.25)
	snap := im.Snapshot()
	im.SetFloat64At(0, 99)
	if im.Float64At(0) != 99 {
		t.Fatal("mutation lost")
	}
	im.Restore(snap)
	if got := im.Float64At(0); got != 1.25 {
		t.Fatalf("after restore Float64At = %v, want 1.25", got)
	}
	// Snapshot is a deep copy: mutating the image must not change it.
	im.SetFloat64At(0, 7)
	im2 := NewImage(256)
	im2.Restore(snap)
	if got := im2.Float64At(0); got != 1.25 {
		t.Fatalf("snapshot aliased image: got %v", got)
	}
}

func TestRestoreClearsPoison(t *testing.T) {
	im := NewImage(4 * BlockSize)
	snap := im.Snapshot()
	im.PoisonBlock(0)
	im.PoisonBlock(2 * BlockSize)
	if !im.Poisoned(0) || len(im.PoisonedBlocks()) != 2 {
		t.Fatal("poison not recorded")
	}
	im.Restore(snap)
	if im.Poisoned(0) || im.Poisoned(2*BlockSize) || im.PoisonedBlocks() != nil {
		t.Fatalf("restore left poison: %v", im.PoisonedBlocks())
	}
}

func TestRestoreSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	NewImage(128).Restore(make([]byte, 64))
}

func TestSpaceAllocAlignmentAndRegistry(t *testing.T) {
	s := NewSpace(1 << 16)
	a := s.Alloc("a", 100, true)
	b := s.AllocF64("b", 10, false)
	c := s.AllocI64("c", 3, true)
	for _, o := range []Object{a, b, c} {
		if o.Addr%BlockSize != 0 {
			t.Errorf("object %s at %d not block-aligned", o.Name, o.Addr)
		}
	}
	if b.Addr < a.End() || c.Addr < b.End() {
		t.Fatal("objects overlap")
	}
	if b.Size != 80 || c.Size != 24 {
		t.Fatalf("typed alloc sizes wrong: %d %d", b.Size, c.Size)
	}
	got, ok := s.Object("b")
	if !ok || got != b {
		t.Fatalf("Object(b) = %+v, %v", got, ok)
	}
	if _, ok := s.Object("nope"); ok {
		t.Fatal("lookup of unknown object succeeded")
	}
	if n := len(s.Objects()); n != 3 {
		t.Fatalf("Objects() len = %d, want 3", n)
	}
	cands := s.Candidates()
	if len(cands) != 2 || cands[0].Name != "a" || cands[1].Name != "c" {
		t.Fatalf("Candidates() = %+v", cands)
	}
	if s.Footprint() != 100+80+24 {
		t.Fatalf("Footprint = %d", s.Footprint())
	}
	if s.CandidateFootprint() != 100+24 {
		t.Fatalf("CandidateFootprint = %d", s.CandidateFootprint())
	}
}

func TestSpaceDuplicateAndOverflowPanic(t *testing.T) {
	s := NewSpace(256)
	s.Alloc("x", 64, false)
	mustPanic(t, "duplicate", func() { s.Alloc("x", 64, false) })
	mustPanic(t, "zero size", func() { s.Alloc("z", 0, false) })
	mustPanic(t, "overflow", func() { s.Alloc("big", 1<<20, false) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic: %s", what)
		}
	}()
	f()
}

func TestObjectAt(t *testing.T) {
	s := NewSpace(1 << 16)
	a := s.Alloc("a", 64, false)
	b := s.Alloc("b", 200, false)
	if o, ok := s.ObjectAt(a.Addr); !ok || o.Name != "a" {
		t.Fatalf("ObjectAt(a.Addr) = %+v %v", o, ok)
	}
	if o, ok := s.ObjectAt(b.Addr + b.Size - 1); !ok || o.Name != "b" {
		t.Fatalf("ObjectAt(last byte of b) = %+v %v", o, ok)
	}
	if _, ok := s.ObjectAt(b.End() + 1000); ok {
		t.Fatal("ObjectAt past allocations succeeded")
	}
	// Gap between block-aligned b end and next object belongs to nobody.
	if b.End()%BlockSize != 0 {
		if _, ok := s.ObjectAt(b.End()); ok {
			t.Fatal("ObjectAt in alignment gap succeeded")
		}
	}
}

func TestMustObject(t *testing.T) {
	s := NewSpace(1 << 12)
	s.Alloc("u", 64, true)
	if s.MustObject("u").Name != "u" {
		t.Fatal("MustObject returned wrong object")
	}
	mustPanic(t, "unknown object", func() { s.MustObject("v") })
}

// Property: typed accessors round-trip arbitrary values at arbitrary aligned
// offsets, and never perturb neighbouring words.
func TestQuickTypedRoundTrip(t *testing.T) {
	im := NewImage(1 << 12)
	f := func(slot uint16, v float64, w int64) bool {
		a := uint64(slot%200)*16 + 8
		im.SetFloat64At(a, v)
		im.SetInt64At(a+8, w)
		fv := im.Float64At(a)
		if im.Int64At(a+8) != w {
			return false
		}
		if math.IsNaN(v) {
			return math.IsNaN(fv)
		}
		return fv == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Snapshot/Restore is an exact involution regardless of content.
func TestQuickSnapshotRestore(t *testing.T) {
	f := func(content []byte) bool {
		im := NewImage(uint64(len(content)) + 64)
		im.RawWrite(0, content)
		snap := im.Snapshot()
		im.RawWrite(0, bytes.Repeat([]byte{0xAA}, len(content)+1))
		im.Restore(snap)
		return bytes.Equal(im.Bytes(0, uint64(len(content))), content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWearTracking(t *testing.T) {
	im := NewImage(1 << 12)
	w := im.EnableWearTracking()
	blk := make([]byte, BlockSize)
	for i := 0; i < 10; i++ {
		im.WriteBlock(0, blk) // hot block
	}
	im.WriteBlock(64, blk)
	im.WriteBlock(128, blk)
	if w.TouchedBlocks() != 3 {
		t.Fatalf("TouchedBlocks = %d", w.TouchedBlocks())
	}
	if w.MaxWrites() != 10 || w.TotalWrites() != 12 {
		t.Fatalf("max/total = %d/%d", w.MaxWrites(), w.TotalWrites())
	}
	if w.HottestIn(0, 64) != 10 || w.HottestIn(64, 128) != 1 {
		t.Fatal("HottestIn attribution wrong")
	}
	if w.WritesIn(0, 192) != 12 || w.WritesIn(64, 64) != 1 || w.WritesIn(0, 0) != 0 {
		t.Fatal("WritesIn attribution wrong")
	}
	// Skewed distribution: Gini well above zero.
	if g := w.Gini(); g < 0.3 || g > 1 {
		t.Fatalf("Gini = %v", g)
	}
	im.DisableWearTracking()
	im.WriteBlock(0, blk)
	if w.TotalWrites() != 12 {
		t.Fatal("write recorded after disable")
	}
}

func TestWearGiniExtremes(t *testing.T) {
	im := NewImage(1 << 12)
	w := im.EnableWearTracking()
	if w.Gini() != 0 {
		t.Fatal("empty map Gini != 0")
	}
	blk := make([]byte, BlockSize)
	// Perfectly even wear over 8 blocks.
	for i := 0; i < 8; i++ {
		for j := 0; j < 5; j++ {
			im.WriteBlock(uint64(i)*BlockSize, blk)
		}
	}
	if g := w.Gini(); g > 1e-9 {
		t.Fatalf("even wear Gini = %v, want 0", g)
	}
}
