package mem

import (
	"bytes"
	"testing"
)

// fillBlock writes a recognisable pattern into the block at base.
func fillBlock(im *Image, base uint64, tag byte) {
	var blk [BlockSize]byte
	for i := range blk {
		blk[i] = tag ^ byte(i)
	}
	im.WriteBlock(base, blk[:])
}

func TestForkIsImmutableCopy(t *testing.T) {
	im := NewImage(4 * SnapPageSize)
	fillBlock(im, 0, 0x11)
	fillBlock(im, SnapPageSize, 0x22)

	extent := uint64(2 * SnapPageSize)
	snap := im.Fork(extent)
	if snap.Extent() != extent {
		t.Fatalf("Extent() = %d, want %d", snap.Extent(), extent)
	}
	want := append([]byte(nil), im.Bytes(0, extent)...)

	// Mutate the live image through every tracked path; the fork must not see it.
	fillBlock(im, 0, 0x33)
	im.RawWrite(SnapPageSize, []byte{9, 9, 9, 9})
	im.SetFloat64At(SnapPageSize+512, 3.14)

	got := make([]byte, extent)
	snap.CopyTo(got)
	if !bytes.Equal(got, want) {
		t.Fatal("fork contents changed when the live image was mutated")
	}
}

func TestForkSharesCleanPages(t *testing.T) {
	im := NewImage(4 * SnapPageSize)
	for p := uint64(0); p < 4; p++ {
		fillBlock(im, p*SnapPageSize, byte(0x40+p))
	}
	s1 := im.Fork(im.Size())
	s2 := im.Fork(im.Size()) // nothing dirtied in between
	for i := range s1.pages {
		if &s1.pages[i][0] != &s2.pages[i][0] {
			t.Fatalf("page %d not shared between back-to-back forks", i)
		}
	}

	// Dirty exactly one page; only that page gets a fresh copy.
	fillBlock(im, 2*SnapPageSize, 0x77)
	s3 := im.Fork(im.Size())
	for i := range s3.pages {
		shared := &s3.pages[i][0] == &s2.pages[i][0]
		if i == 2 && shared {
			t.Fatal("dirtied page 2 still shared with the previous fork")
		}
		if i != 2 && !shared {
			t.Fatalf("clean page %d was copied instead of shared", i)
		}
	}
}

func TestForkTracksAllMutationPaths(t *testing.T) {
	im := NewImage(8 * SnapPageSize)
	base := im.Fork(im.Size())

	mutate := []struct {
		name string
		page int
		do   func()
	}{
		{"WriteBlock", 0, func() { fillBlock(im, 0, 0x01) }},
		{"RawWrite", 1, func() { im.RawWrite(1*SnapPageSize, []byte{1, 2, 3}) }},
		{"SetFloat64At", 2, func() { im.SetFloat64At(2*SnapPageSize, 1.5) }},
		{"SetInt64At", 3, func() { im.SetInt64At(3*SnapPageSize, -7) }},
	}
	for _, m := range mutate {
		m.do()
		s := im.Fork(im.Size())
		if &s.pages[m.page][0] == &base.pages[m.page][0] {
			t.Errorf("%s: page %d still shared after mutation", m.name, m.page)
		}
		base = s
	}

	// Restore dirties everything it rewrites.
	full := im.Snapshot()
	im.Restore(full)
	s := im.Fork(im.Size())
	for i := range s.pages {
		if &s.pages[i][0] == &base.pages[i][0] {
			t.Fatalf("page %d still shared after Restore", i)
		}
	}
}

func TestRestoreSnapshotRoundTrip(t *testing.T) {
	im := NewImage(4 * SnapPageSize)
	fillBlock(im, 0, 0x0a)
	fillBlock(im, 3*SnapPageSize, 0x0b) // beyond the forked extent
	extent := uint64(2 * SnapPageSize)
	snap := im.Fork(extent)
	want := make([]byte, extent)
	snap.CopyTo(want)
	wantBW, wantBy := im.BlockWrites(), im.BytesWritten()

	// A different, freshly reset image resumes from the snapshot.
	dst := NewImage(4 * SnapPageSize)
	fillBlock(dst, SnapPageSize, 0xee)
	dst.Reset()
	dst.RestoreSnapshot(snap)
	if !bytes.Equal(dst.Bytes(0, extent), want) {
		t.Fatal("restored prefix differs from the forked contents")
	}
	for _, b := range dst.Bytes(extent, dst.Size()-extent) {
		if b != 0 {
			t.Fatal("bytes past the snapshot extent are not zero after Reset+RestoreSnapshot")
		}
	}
	if dst.BlockWrites() != wantBW || dst.BytesWritten() != wantBy {
		t.Fatalf("write counters (%d, %d) not restored to (%d, %d)",
			dst.BlockWrites(), dst.BytesWritten(), wantBW, wantBy)
	}

	// RestoreSnapshot counts as a mutation for the target's own fork tracking.
	pre := dst.Fork(extent)
	dst.RestoreSnapshot(snap)
	post := dst.Fork(extent)
	_ = pre
	_ = post // contents identical, but pages must still be fresh copies where rewritten
}

func TestResetClearsForkTracking(t *testing.T) {
	im := NewImage(2 * SnapPageSize)
	fillBlock(im, 0, 0x5c)
	s1 := im.Fork(im.Size())
	im.Reset()
	if im.snapDirty != nil || im.lastFork != nil {
		t.Fatal("Reset left fork tracking attached")
	}
	// A fork after Reset restarts tracking and shares nothing with the old one.
	s2 := im.Fork(im.Size())
	for i := range s2.pages {
		if &s2.pages[i][0] == &s1.pages[i][0] {
			t.Fatalf("page %d shared across Reset", i)
		}
	}
	got := make([]byte, im.Size())
	s2.CopyTo(got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("post-Reset fork captured stale bytes")
		}
	}
}

func TestForkExtentClampAndPartialPage(t *testing.T) {
	// An image whose size is not page-aligned: the tail page is short.
	im := NewImage(2*SnapPageSize + 100)
	sz := im.Size() // NewImage rounds up to a block multiple, not a page multiple
	im.RawWrite(sz-4, []byte{1, 2, 3, 4})
	snap := im.Fork(sz + 999) // clamped to Size
	if snap.Extent() != sz {
		t.Fatalf("extent = %d, want clamped %d", snap.Extent(), sz)
	}
	got := make([]byte, sz)
	snap.CopyTo(got)
	if !bytes.Equal(got[sz-4:], []byte{1, 2, 3, 4}) {
		t.Fatal("tail of the short final page not captured")
	}
}
