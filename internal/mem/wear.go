package mem

import "sort"

// WearMap tracks per-block write counts of an Image — the wear distribution
// behind the paper's endurance concern. Total write counts (BlockWrites)
// bound average wear; the distribution shows whether a persistence scheme
// concentrates writes on few blocks (as selective flushing of small hot
// objects does) or spreads them (as checkpoint copies do), which is what
// wear-levelling hardware has to absorb.
type WearMap struct {
	counts map[uint64]uint64
}

// EnableWearTracking attaches a wear map to the image; subsequent
// WriteBlock calls are recorded. Returns the map for later analysis.
func (im *Image) EnableWearTracking() *WearMap {
	im.wear = &WearMap{counts: make(map[uint64]uint64)}
	return im.wear
}

// DisableWearTracking detaches the wear map.
func (im *Image) DisableWearTracking() { im.wear = nil }

// record notes one block write.
func (w *WearMap) record(blockAddr uint64) { w.counts[blockAddr]++ }

// TouchedBlocks returns how many distinct blocks received writes.
func (w *WearMap) TouchedBlocks() int { return len(w.counts) }

// MaxWrites returns the hottest block's write count.
func (w *WearMap) MaxWrites() uint64 {
	var max uint64
	for _, c := range w.counts {
		if c > max {
			max = c
		}
	}
	return max
}

// TotalWrites returns the recorded write total.
func (w *WearMap) TotalWrites() uint64 {
	var t uint64
	for _, c := range w.counts {
		t += c
	}
	return t
}

// Gini returns the Gini coefficient of the write distribution over touched
// blocks: 0 = perfectly even wear, approaching 1 = all writes on one block.
func (w *WearMap) Gini() float64 {
	n := len(w.counts)
	if n == 0 {
		return 0
	}
	xs := make([]uint64, 0, n)
	for _, c := range w.counts {
		xs = append(xs, c)
	}
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
	var cum, weighted float64
	for i, x := range xs {
		cum += float64(x)
		weighted += float64(i+1) * float64(x)
	}
	if cum == 0 {
		return 0
	}
	nf := float64(n)
	return (2*weighted - (nf+1)*cum) / (nf * cum)
}

// HottestIn returns the highest write count among blocks overlapping
// [addr, addr+size) — per-object wear attribution.
func (w *WearMap) HottestIn(addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	var max uint64
	first := addr &^ (BlockSize - 1)
	for blk := first; blk < addr+size; blk += BlockSize {
		if c := w.counts[blk]; c > max {
			max = c
		}
	}
	return max
}

// WritesIn sums the writes to blocks overlapping [addr, addr+size).
func (w *WearMap) WritesIn(addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	var t uint64
	first := addr &^ (BlockSize - 1)
	for blk := first; blk < addr+size; blk += BlockSize {
		t += w.counts[blk]
	}
	return t
}
