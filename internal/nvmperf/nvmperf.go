// Package nvmperf is the execution-time model used for the paper's
// performance results (Table 4, Figures 7 and 8). The cache simulator
// supplies exact event counts (hits per level, NVM fills and write-backs,
// flush operations split into dirty and clean); this package prices those
// events under a configurable NVM performance profile, mirroring the
// paper's methodology of emulating NVM with inflated DRAM latency or
// reduced DRAM bandwidth (Quartz) and measuring on Optane DC PMM.
//
// Absolute times are not the point — normalized execution time (a policy's
// time over the no-persistence time on the same profile) is what the paper
// reports, and it depends only on the relative event prices.
package nvmperf

import (
	"fmt"

	"easycrash/internal/cachesim"
	"easycrash/internal/sim"
)

// Profile prices memory-system events, in nanoseconds per event.
type Profile struct {
	Name string
	// CPUPerAccess is the core-side cost per demand access (address
	// generation, ALU work amortised per access).
	CPUPerAccess float64
	// HitLat are per-level hit latencies (L1, L2, LLC).
	HitLat [3]float64
	// ReadLat is the cost of filling one block from main memory.
	ReadLat float64
	// WriteLat is the cost of writing one block back to main memory
	// (latency plus bandwidth occupancy).
	WriteLat float64
	// FlushIssue is the per-block cost of issuing a flush instruction that
	// finds a clean or absent block (no write-back) — small but nonzero.
	FlushIssue float64
}

// DRAM models the paper's DRAM baseline (Table 3: ~87 ns latency).
func DRAM() Profile {
	return Profile{
		Name:         "dram",
		CPUPerAccess: 1.2,
		HitLat:       [3]float64{1.5, 5, 20},
		ReadLat:      87,
		WriteLat:     87,
		FlushIssue:   6,
	}
}

// scaled returns DRAM with main-memory latency multiplied by rl (reads)
// and wl (writes).
func scaled(name string, rl, wl float64) Profile {
	p := DRAM()
	p.Name = name
	p.ReadLat *= rl
	p.WriteLat *= wl
	return p
}

// Lat4x is the Quartz-style NVM emulation at 4x DRAM latency.
func Lat4x() Profile { return scaled("nvm-4x-latency", 4, 4) }

// Lat8x is the Quartz-style NVM emulation at 8x DRAM latency.
func Lat8x() Profile { return scaled("nvm-8x-latency", 8, 8) }

// BW6 models NVM with 1/6 of DRAM bandwidth: block transfers occupy the
// channel six times longer while load latency stays DRAM-like.
func BW6() Profile { return scaled("nvm-1/6-bandwidth", 6, 6) }

// BW8 models NVM with 1/8 of DRAM bandwidth.
func BW8() Profile { return scaled("nvm-1/8-bandwidth", 8, 8) }

// OptaneDC approximates Intel Optane DC PMM in app-direct mode: ~3x DRAM
// read latency, writes absorbed by the controller buffer but limited by
// media bandwidth (~6x DRAM cost per sustained block write).
func OptaneDC() Profile {
	p := DRAM()
	p.Name = "optane-dc-pmm"
	p.ReadLat = 300
	p.WriteLat = 500
	return p
}

// Profiles returns the evaluation set used by Figures 7 and 8.
func Profiles() []Profile {
	return []Profile{DRAM(), Lat4x(), Lat8x(), BW6(), BW8(), OptaneDC()}
}

// ByName looks up a profile from Profiles.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("nvmperf: unknown profile %q", name)
}

// Time prices a run's event counts under the profile, in nanoseconds.
func (p Profile) Time(s cachesim.Stats) float64 {
	t := float64(s.Accesses()) * p.CPUPerAccess
	for l := 0; l < len(s.Hits) && l < 3; l++ {
		t += float64(s.Hits[l]) * p.HitLat[l]
	}
	t += float64(s.Fills) * p.ReadLat
	t += float64(s.EvictionWritebacks+s.DrainWritebacks) * p.WriteLat
	t += float64(s.DirtyFlushes) * p.WriteLat
	t += float64(s.CleanFlushes) * p.FlushIssue
	return t
}

// PersistOnce prices a single persistence operation that flushed the given
// numbers of dirty and clean blocks (Table 4's "time for persisting
// critical data for once").
func (p Profile) PersistOnce(dirty, clean uint64) float64 {
	return float64(dirty)*p.WriteLat + float64(clean)*p.FlushIssue
}

// Normalized returns run's time divided by baseline's time on this profile
// — the normalized execution time of Table 4 and Figures 7/8.
func (p Profile) Normalized(run, baseline cachesim.Stats) float64 {
	return p.Time(run) / p.Time(baseline)
}

// PersistenceBreakdown summarises a profiled run's persistence cost.
type PersistenceBreakdown struct {
	Profile Profile
	// Operations is the number of persistence operations performed.
	Operations uint64
	// AvgPersistOnceNS is the mean cost of one persistence operation.
	AvgPersistOnceNS float64
	// TotalNS and BaselineNS are the absolute modelled times.
	TotalNS, BaselineNS float64
	// Normalized is TotalNS / BaselineNS.
	Normalized float64
}

// Breakdown prices a profiled run against its baseline.
func Breakdown(p Profile, run cachesim.Stats, persist sim.PersistStats, baseline cachesim.Stats) PersistenceBreakdown {
	b := PersistenceBreakdown{
		Profile:    p,
		Operations: persist.Operations,
		TotalNS:    p.Time(run),
		BaselineNS: p.Time(baseline),
	}
	if persist.Operations > 0 {
		b.AvgPersistOnceNS = p.PersistOnce(persist.DirtyFlushed, persist.CleanFlushed) / float64(persist.Operations)
	}
	b.Normalized = b.TotalNS / b.BaselineNS
	return b
}
