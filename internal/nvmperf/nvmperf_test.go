package nvmperf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"easycrash/internal/cachesim"
	"easycrash/internal/sim"
)

func statsWith(accesses, fills, evict, dirtyFlush, cleanFlush uint64) cachesim.Stats {
	return cachesim.Stats{
		Loads:              accesses,
		Hits:               []uint64{accesses, 0, 0},
		Misses:             []uint64{0, 0, 0},
		Fills:              fills,
		EvictionWritebacks: evict,
		DirtyFlushes:       dirtyFlush,
		CleanFlushes:       cleanFlush,
	}
}

func TestProfilesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Profiles() {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.ReadLat <= 0 || p.WriteLat <= 0 {
			t.Fatalf("profile %q has non-positive latencies", p.Name)
		}
	}
	if !seen["dram"] || !seen["optane-dc-pmm"] {
		t.Fatal("expected dram and optane profiles")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("nvm-4x-latency")
	if err != nil || p.ReadLat != 4*DRAM().ReadLat {
		t.Fatalf("ByName(nvm-4x-latency) = %+v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestTimeScalesWithNVMSlowness(t *testing.T) {
	s := statsWith(1000, 100, 50, 20, 30)
	dram := DRAM().Time(s)
	for _, p := range []Profile{Lat4x(), Lat8x(), BW6(), BW8(), OptaneDC()} {
		if p.Time(s) <= dram {
			t.Errorf("profile %q not slower than DRAM for memory-bound stats", p.Name)
		}
	}
	if Lat8x().Time(s) <= Lat4x().Time(s) {
		t.Error("8x latency should cost more than 4x")
	}
}

func TestCleanFlushesAreCheap(t *testing.T) {
	// The EasyCrash premise: flushing clean/non-resident blocks costs far
	// less than dirty flushes. 100 clean flushes must cost less than 10
	// dirty ones on every NVM profile.
	for _, p := range Profiles() {
		clean := p.PersistOnce(0, 100)
		dirty := p.PersistOnce(10, 0)
		if clean >= dirty {
			t.Errorf("profile %q: 100 clean flushes (%v) not cheaper than 10 dirty (%v)", p.Name, clean, dirty)
		}
	}
}

func TestNormalizedIdentity(t *testing.T) {
	s := statsWith(5000, 200, 80, 0, 0)
	if got := DRAM().Normalized(s, s); got != 1 {
		t.Fatalf("Normalized(s, s) = %v", got)
	}
	// Adding flush work increases normalized time.
	withFlush := s
	withFlush.DirtyFlushes = 100
	withFlush.CleanFlushes = 400
	if got := DRAM().Normalized(withFlush, s); got <= 1 {
		t.Fatalf("flush work should raise normalized time, got %v", got)
	}
}

func TestBreakdown(t *testing.T) {
	base := statsWith(10000, 400, 100, 0, 0)
	run := base
	run.DirtyFlushes = 50
	run.CleanFlushes = 200
	ps := sim.PersistStats{Operations: 10, DirtyFlushed: 50, CleanFlushed: 200}
	b := Breakdown(OptaneDC(), run, ps, base)
	if b.Operations != 10 {
		t.Fatalf("Operations = %d", b.Operations)
	}
	want := OptaneDC().PersistOnce(50, 200) / 10
	if b.AvgPersistOnceNS != want {
		t.Fatalf("AvgPersistOnceNS = %v, want %v", b.AvgPersistOnceNS, want)
	}
	if b.Normalized <= 1 {
		t.Fatalf("Normalized = %v, want > 1", b.Normalized)
	}
	// No operations: average must stay zero, not NaN.
	b0 := Breakdown(DRAM(), base, sim.PersistStats{}, base)
	if b0.AvgPersistOnceNS != 0 || b0.Normalized != 1 {
		t.Fatalf("zero-op breakdown = %+v", b0)
	}
}

// Property: Time is monotone in every event count, on every profile.
func TestQuickTimeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := statsWith(uint64(rng.Intn(100000)), uint64(rng.Intn(5000)),
			uint64(rng.Intn(2000)), uint64(rng.Intn(500)), uint64(rng.Intn(500)))
		for _, p := range Profiles() {
			t0 := p.Time(base)
			bumped := base
			switch rng.Intn(4) {
			case 0:
				bumped.Fills += 10
			case 1:
				bumped.EvictionWritebacks += 10
			case 2:
				bumped.DirtyFlushes += 10
			case 3:
				bumped.CleanFlushes += 10
			}
			if p.Time(bumped) < t0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
