package sim

import (
	"easycrash/internal/cachesim"
	"easycrash/internal/mem"
)

// Snapshot is a forked copy of a machine's full simulated state at one
// instant: the durable image (as a copy-on-write mem fork bounded by the
// space's allocation extent), the volatile cache hierarchy, and the crash
// clock (access counts, region/iteration attribution, persistence counters).
// It is immutable and safe to resume on several machines concurrently.
//
// A Snapshot deliberately omits the object-space registry, the persister, the
// observer and the interrupt hook: a resumed machine is used for postmortem
// analysis (inconsistency rates over known object bounds, drains, crash
// dumps), not for continuing kernel execution, so it needs the state a crash
// leaves behind, not the wiring of a live run.
type Snapshot struct {
	img  *mem.ImageSnapshot
	hier *cachesim.Snapshot

	core         int
	inMainLoop   bool
	mainAccess   uint64
	region       int
	iter         int64
	regionAccess [MaxRegions + 1]uint64
	iterations   int64
	persist      PersistStats
}

// Image returns the forked durable image.
func (s *Snapshot) Image() *mem.ImageSnapshot { return s.img }

// ForkHook is invoked by the crash clock in place of the crash panic: the
// armed point has been reached (c carries what the Crash panic would have),
// the hook captures whatever it needs — typically via Fork — and returns the
// next access count to arm (0 disarms). The run then continues normally, so
// one reference execution can visit every crash point of a campaign shard in
// ascending order without ever unwinding the kernel's stack.
type ForkHook func(c Crash) (next uint64)

// SetForkHook installs fn as the crash clock's fork hook (nil restores the
// normal panic delivery). While a hook is installed, reaching the armed point
// calls the hook instead of panicking.
func (m *Machine) SetForkHook(fn ForkHook) { m.forkFn = fn }

// Fork snapshots the machine's simulated state. Only legal with no fault
// injector attached: an injector mutates the durable image at crash time, so
// a forked prefix must be clean of injections — fault campaigns share the
// prefix by attaching a Recorder (which observes writes but injects nothing)
// and replaying each trial's injections on the branch after the fork.
// Panics if an injector is attached (a programming error in the engine, not
// a runtime condition).
func (m *Machine) Fork() *Snapshot {
	if m.faults != nil {
		panic("sim: Fork with a fault injector attached (prefix sharing requires inert media)")
	}
	return &Snapshot{
		img:          m.space.Image().Fork(m.space.Extent()),
		hier:         m.hier.Snapshot(),
		core:         m.core,
		inMainLoop:   m.inMainLoop,
		mainAccess:   m.mainAccess,
		region:       m.region,
		iter:         m.iter,
		regionAccess: m.regionAccess,
		iterations:   m.iterations,
		persist:      m.persist,
	}
}

// ResumeFrom restores a forked snapshot into a freshly Reset (or just
// constructed) machine: durable image, cache hierarchy and crash clock become
// state-identical to the forked machine at its fork point. The crash is left
// disarmed and no persister, observer, faults or hooks are attached — the
// caller drives the postmortem explicitly. The machine remembers the restored
// image extent so a later Reset clears it even though the recycled machine's
// own space never allocated anything.
func (m *Machine) ResumeFrom(s *Snapshot) {
	m.space.Image().RestoreSnapshot(s.img)
	m.hier.ResumeFrom(s.hier)
	m.core = s.core
	m.inMainLoop = s.inMainLoop
	m.mainAccess = s.mainAccess
	m.crashAt = 0
	m.region = s.region
	m.iter = s.iter
	m.regionAccess = s.regionAccess
	m.iterations = s.iterations
	m.persist = s.persist
	if e := s.img.Extent(); e > m.resumeExtent {
		m.resumeExtent = e
	}
}
