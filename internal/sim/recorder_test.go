package sim

import (
	"bytes"
	"reflect"
	"testing"

	"easycrash/internal/cachesim"
	"easycrash/internal/faultmodel"
)

// streamWrites streams a working set several times the test LLC through the
// machine so media write-backs are constant, stopping after the crash clock
// has seen at least total main accesses (the fork hook keeps the run alive
// past the armed point).
func streamWrites(m *Machine, total int) {
	o := m.Space().AllocF64("x", 16384, true)
	v := m.F64(o)
	m.MainLoopBegin()
	defer m.MainLoopEnd()
	for n, i := 0, 0; n < total; n, i = n+1, (i+1)%v.Len() {
		v.Set(i, float64(n))
	}
}

func TestAttachRecorderExcludesInjector(t *testing.T) {
	m := newM(t)
	m.AttachFaults(faultmodel.New(faultmodel.Config{TornWrites: true}, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("AttachRecorder with an injector attached did not panic")
		}
	}()
	m.AttachRecorder(&faultmodel.Recorder{})
}

func TestInFlightWriteWindowInsideForkHook(t *testing.T) {
	m := NewMachine(1<<20, cachesim.TestConfig())
	rec := &faultmodel.Recorder{}
	m.AttachRecorder(rec)
	// The in-flight window covers exactly the current crash-clock tick: a
	// write is in flight only when the armed access itself pushed one to the
	// media. Arm every access and count how often that happens.
	fired, withWrite := 0, 0
	m.SetForkHook(func(c Crash) uint64 {
		fired++
		if w, ok := m.InFlightWrite(); ok {
			withWrite++
			if w.Base >= m.Space().Extent() {
				t.Fatalf("in-flight base %#x beyond extent %#x", w.Base, m.Space().Extent())
			}
		}
		return c.Access + 1
	})
	m.SetCrashAfter(1)
	streamWrites(m, 30000)
	if fired == 0 {
		t.Fatal("fork hook never fired")
	}
	if rec.WriteSeq() == 0 {
		t.Fatal("recorder observed no media writes despite cache evictions")
	}
	// With a 128 KiB streamed working set against the 32 KiB test L3,
	// write-backs are constant: a good fraction of ticks must have had a
	// write in flight, and never all of them (the first cold-cache accesses
	// fill without evicting).
	if withWrite == 0 {
		t.Fatal("no fork point ever had a write in flight despite constant evictions")
	}
	if withWrite == fired {
		t.Fatal("every fork point had a write in flight; the window is not being resynced")
	}
	// Outside the hook the window is resynced at every crash-clock tick, so
	// no write is in flight any more.
	if _, ok := m.InFlightWrite(); ok {
		t.Fatal("InFlightWrite reports a stale write outside the fork hook")
	}
}

// TestReplayCrashMatchesLiveInjection is the unit-level determinism argument
// behind faults-on prefix sharing: a live machine with a trial's injector
// attached, and a reference machine with an inert recorder forked at the same
// point plus ReplayCrash on the branch, must leave byte-identical durable
// images — tear target, bit flips, poison set and injection report all equal.
func TestReplayCrashMatchesLiveInjection(t *testing.T) {
	cfg := faultmodel.Config{RBER: 1e-5, TornWrites: true, ECC: faultmodel.SECDED()}
	const seed = 7

	// Sweep a window of crash points so both window states are exercised:
	// some points catch a write in flight (the tear path), some do not.
	sawInflight := false
	for crashAt := uint64(20000); crashAt < 20016; crashAt++ {
		// Live: the injector observes every write itself and the crash
		// panic arms the tear at the fire point.
		live := NewMachine(1<<20, cachesim.TestConfig())
		injLive := faultmodel.New(cfg, seed)
		live.AttachFaults(injLive)
		live.SetCrashAfter(crashAt)
		func() {
			defer func() {
				if _, ok := recover().(*Crash); !ok {
					t.Fatal("live crash did not fire")
				}
			}()
			streamWrites(live, 30000)
		}()
		repLive := live.CrashWithFaults()
		extent := live.Space().Extent()

		// Reference: same execution, inert recorder, fork at the same point.
		ref := NewMachine(1<<20, cachesim.TestConfig())
		ref.AttachRecorder(&faultmodel.Recorder{})
		var snap *Snapshot
		var inflight *faultmodel.InFlight
		ref.SetForkHook(func(c Crash) uint64 {
			snap = ref.Fork()
			if w, ok := ref.InFlightWrite(); ok {
				w := w
				inflight = &w
			}
			return 0
		})
		ref.SetCrashAfter(crashAt)
		streamWrites(ref, 30000)
		if snap == nil {
			t.Fatal("reference fork never fired")
		}
		if inflight != nil {
			sawInflight = true
		}

		// Branch: resume the fork, lose power, replay the trial's draws.
		branch := NewMachine(1<<20, cachesim.TestConfig())
		branch.ResumeFrom(snap)
		branch.CrashNow()
		injReplay := faultmodel.New(cfg, seed)
		repReplay := injReplay.ReplayCrash(branch.Image(), extent, inflight)

		if repLive != repReplay {
			t.Fatalf("crash %d: injection reports diverged:\nlive   %+v\nreplay %+v", crashAt, repLive, repReplay)
		}
		if !bytes.Equal(live.Image().Bytes(0, extent), branch.Image().Bytes(0, extent)) {
			t.Fatalf("crash %d: durable images diverged between live injection and replay", crashAt)
		}
		if !reflect.DeepEqual(live.Image().PoisonedBlocks(), branch.Image().PoisonedBlocks()) {
			t.Fatalf("crash %d: poison sets diverged:\nlive   %v\nreplay %v",
				crashAt, live.Image().PoisonedBlocks(), branch.Image().PoisonedBlocks())
		}
	}
	if !sawInflight {
		t.Fatal("no crash point in the sweep caught a write in flight; the tear path went untested")
	}
}
