// Package sim provides the execution environment the benchmark kernels run
// on: a Machine that routes every load/store through the simulated cache
// hierarchy into the simulated NVM image, tracks code regions and main-loop
// iterations, injects crashes at precise access counts, and invokes a
// persistence policy (EasyCrash's selective flushing) at region and
// iteration boundaries.
//
// A "crash" is delivered by panicking with a *Crash value when the armed
// access count is reached; the campaign driver (package nvct) recovers it.
// Kernels therefore must not hold external resources across accesses.
package sim

import (
	"encoding/binary"
	"fmt"
	"math"

	"easycrash/internal/cachesim"
	"easycrash/internal/faultmodel"
	"easycrash/internal/mem"
)

// NoRegion is the region ID reported outside any marked code region.
const NoRegion = -1

// MaxRegions is the largest number of first-level code regions a kernel may
// mark (the paper's benchmarks have at most 16).
const MaxRegions = 31

// Crash is the panic payload delivered when an armed crash point fires.
type Crash struct {
	Access uint64 // main-loop access index at which the crash fired
	Region int    // region active at the crash, or NoRegion
	Iter   int64  // main-loop iteration at the crash
}

// Error implements error so a recovered *Crash reads naturally in messages.
func (c *Crash) Error() string {
	return fmt.Sprintf("simulated crash at access %d (region %d, iteration %d)", c.Access, c.Region, c.Iter)
}

// Abort is the panic payload delivered when the machine's interrupt check
// stops a run (per-test deadline exceeded, campaign context cancelled). The
// campaign driver recovers it; kernels never see it.
type Abort struct {
	Err error
}

// Error implements error.
func (a *Abort) Error() string { return fmt.Sprintf("simulated run aborted: %v", a.Err) }

// Unwrap exposes the abort cause to errors.Is/As.
func (a *Abort) Unwrap() error { return a.Err }

// Observer receives every demand access issued inside the main loop. It is
// the hook the application-characterisation study (package predict, after
// the paper's §8 discussion) uses to extract access-pattern features
// without crash tests. A nil observer costs one predictable branch per
// access.
type Observer interface {
	// Access reports a demand access of size bytes at addr; store is true
	// for writes. It is invoked after the access completes.
	Access(addr uint64, size int, store bool)
}

// Persister is the persistence policy invoked at kernel-marked boundaries.
// EasyCrash's production runtime implements it with selective cache flushes;
// the baseline "no persistence" policy is a nil Persister.
type Persister interface {
	// RegionEnd runs at the end of code region. it is the current
	// main-loop iteration (0-based).
	RegionEnd(m *Machine, region int, it int64)
	// IterationEnd runs at the end of each main-loop iteration.
	IterationEnd(m *Machine, it int64)
}

// Machine is one simulated node: an object space in NVM behind a cache
// hierarchy, plus the instrumentation the crash tester needs.
type Machine struct {
	space *mem.Space
	hier  *cachesim.Hierarchy

	core int // current core issuing accesses

	inMainLoop bool
	mainAccess uint64 // demand accesses issued inside the main loop
	crashAt    uint64 // fire a crash when mainAccess reaches this; 0 = never

	region       int
	iter         int64
	regionAccess [MaxRegions + 1]uint64 // per-region counts; index region+1 (0 = NoRegion)
	iterations   int64                  // completed main-loop iterations

	persister Persister
	persist   PersistStats
	observer  Observer

	// flushCrashes makes persistence work crash-eligible: each flushed
	// block advances the crash clock, so an armed crash can strike in the
	// middle of a persistence operation, leaving it partially applied.
	flushCrashes bool

	// faults is the attached media-fault injector (nil = perfect media).
	// lastWriteSeq remembers the injector's media-write count at the
	// previous crash-clock tick, so the crash can tell whether a write-back
	// or flush was in flight when it fired.
	faults       *faultmodel.Injector
	lastWriteSeq uint64

	// recorder, when attached, observes media writes without injecting:
	// the prefix-sharing reference machine uses it to know which write was
	// in flight at each fork point, so per-trial injectors can replay the
	// tear without ever observing the shared prefix themselves. Mutually
	// exclusive with faults; shares lastWriteSeq as its window anchor.
	recorder *faultmodel.Recorder

	// intrFn is invoked every intrEvery crash-clock ticks; a non-nil error
	// aborts the run by panicking with *Abort. Used for per-test deadlines
	// and campaign cancellation; nil costs one predictable branch per tick.
	intrFn    func() error
	intrEvery uint64
	intrCount uint64

	// forkFn, when set, replaces the crash panic: the armed point calls the
	// hook (which typically Forks the machine) and execution continues with
	// whatever point the hook arms next. See SetForkHook.
	forkFn ForkHook

	// resumeExtent is the image extent a ResumeFrom restored; Reset must
	// clear that prefix even though this machine's space never allocated it.
	resumeExtent uint64

	// scalarAccess forces the batched accessors (LoadRun/StoreRun and the
	// stream views) down the per-element scalar path. The batched engine is
	// proved against this reference mode by the crash-point-sweep and
	// campaign-digest equivalence tests.
	scalarAccess bool

	buf    [8]byte
	runBuf []byte // scratch for the batched run accessors
}

// DefaultInterruptStride is how many main-loop accesses pass between
// interrupt checks when SetInterrupt is called with every = 0.
const DefaultInterruptStride = 4096

// PersistStats counts persistence work done by the Persister through the
// Machine's flush helpers.
type PersistStats struct {
	Operations   uint64 // calls to FlushObject/FlushRange groups (persistence operations)
	BlocksIssued uint64 // block flush instructions issued
	DirtyFlushed uint64 // blocks actually written back to NVM
	CleanFlushed uint64 // clean or non-resident blocks (no NVM write)
}

// NewMachine builds a machine over a fresh object space of the given NVM
// capacity, with the given cache configuration.
func NewMachine(nvmBytes uint64, cfg cachesim.Config) *Machine {
	space := mem.NewSpace(nvmBytes)
	return &Machine{
		space:  space,
		hier:   cachesim.New(cfg, space.Image()),
		region: NoRegion,
	}
}

// Reset returns the machine to its as-constructed state — empty object
// space, cold caches, disarmed crash, no persister/observer/faults — without
// reallocating the NVM image or the cache arena. Campaign workers recycle
// one machine per worker across crash tests; a reset machine must be
// behaviourally indistinguishable from NewMachine with the same parameters.
func (m *Machine) Reset() {
	m.space.Reset() // also detaches any write hook on the image
	m.hier.Reset()
	m.core = 0
	m.inMainLoop = false
	m.mainAccess = 0
	m.crashAt = 0
	m.region = NoRegion
	m.iter = 0
	m.regionAccess = [MaxRegions + 1]uint64{}
	m.iterations = 0
	m.persister = nil
	m.persist = PersistStats{}
	m.observer = nil
	m.flushCrashes = false
	m.faults = nil
	m.recorder = nil
	m.lastWriteSeq = 0
	m.intrFn, m.intrEvery, m.intrCount = nil, 0, 0
	m.forkFn = nil
	m.scalarAccess = false
	if m.resumeExtent != 0 {
		// A resumed machine carries restored image bytes beyond its own
		// space's (empty) allocation extent; clear them too.
		m.space.Image().ResetPrefix(m.resumeExtent)
		m.resumeExtent = 0
	}
}

// Space returns the machine's object space.
func (m *Machine) Space() *mem.Space { return m.space }

// Image returns the machine's durable NVM image.
func (m *Machine) Image() *mem.Image { return m.space.Image() }

// Hierarchy returns the machine's cache hierarchy.
func (m *Machine) Hierarchy() *cachesim.Hierarchy { return m.hier }

// SetPersister installs the persistence policy (nil disables persistence).
func (m *Machine) SetPersister(p Persister) { m.persister = p }

// SetObserver installs a demand-access observer (nil disables observation).
func (m *Machine) SetObserver(o Observer) { m.observer = o }

// SetFlushCrashEligible makes flush traffic advance the crash clock, so
// crashes can interrupt persistence operations mid-way (the window between
// "right after cache flushing" consistency points the paper describes in
// §1). Off by default: the paper's campaigns trigger crashes on demand
// accesses.
func (m *Machine) SetFlushCrashEligible(v bool) { m.flushCrashes = v }

// PersistStats returns the persistence counters accumulated so far.
func (m *Machine) PersistStats() PersistStats { return m.persist }

// AttachFaults installs a media-fault injector: it observes every media
// write through the image's write hook and is applied by CrashWithFaults.
// nil detaches (perfect media, the paper's assumption).
func (m *Machine) AttachFaults(in *faultmodel.Injector) {
	m.faults = in
	if in == nil {
		m.space.Image().SetWriteHook(nil)
		return
	}
	m.space.Image().SetWriteHook(in.ObserveWrite)
	m.lastWriteSeq = in.WriteSeq()
}

// AttachRecorder installs a media-write recorder: it observes every media
// write through the image's write hook but injects nothing. The machine
// tracks the recorder's write count across crash-clock ticks the same way it
// tracks an injector's, so InFlightWrite can tell — at a fork point — whether
// a write was in flight, exactly as the live engine's tear-arming check
// would. nil detaches. Mutually exclusive with AttachFaults.
func (m *Machine) AttachRecorder(r *faultmodel.Recorder) {
	if m.faults != nil {
		panic("sim: AttachRecorder with a fault injector attached")
	}
	m.recorder = r
	if r == nil {
		m.space.Image().SetWriteHook(nil)
		return
	}
	m.space.Image().SetWriteHook(r.ObserveWrite)
	m.lastWriteSeq = r.WriteSeq()
}

// InFlightWrite reports the media write in flight at the current crash-clock
// tick, per the attached recorder: the most recent write, valid only when a
// write happened since the previous tick (the same window the live engine's
// ArmTear check uses). It is meaningful inside a fork hook, which runs after
// the tick and before the window is resynchronised.
func (m *Machine) InFlightWrite() (faultmodel.InFlight, bool) {
	if m.recorder == nil || m.recorder.WriteSeq() <= m.lastWriteSeq {
		return faultmodel.InFlight{}, false
	}
	return m.recorder.Last(), true
}

// SetInterrupt installs a check invoked every `every` main-loop accesses
// (0 = DefaultInterruptStride); a non-nil error from fn aborts the run by
// panicking with *Abort. fn = nil disables the check.
func (m *Machine) SetInterrupt(every uint64, fn func() error) {
	if every == 0 {
		every = DefaultInterruptStride
	}
	m.intrFn, m.intrEvery, m.intrCount = fn, every, 0
}

// CrashWithFaults simulates power loss on imperfect media: volatile caches
// are dropped, then the attached injector tears the in-flight block and
// applies raw bit errors filtered through ECC. With no injector attached it
// is exactly CrashNow.
func (m *Machine) CrashWithFaults() faultmodel.Injection {
	m.hier.DropAll()
	if m.faults == nil {
		return faultmodel.Injection{}
	}
	return m.faults.ApplyCrash(m.space.Image(), m.space.Extent())
}

// OnCore directs subsequent accesses to the given core (for multi-core
// cache configurations).
func (m *Machine) OnCore(core int) { m.core = core }

// SetCrashAfter arms a crash to fire when the n-th demand access inside the
// main loop is issued (1-based). n = 0 disarms.
func (m *Machine) SetCrashAfter(n uint64) { m.crashAt = n }

// RearmCrash arms a crash for a recovery run: the crash clock restarts
// counting demand accesses from zero, so n is measured from the start of the
// recomputation rather than from the start of the machine's first life.
// Restart-phase work (Init, RestoreObject, scrubbing) happens outside the
// main loop and never ticks the clock, so the n-th demand access of the
// resumed main loop fires the crash — a second or third power loss striking
// mid-recomputation.
//
// The in-flight-write window is re-synchronised with the attached fault
// injector: media writes issued while restoring objects are long settled by
// the time the recovery's first crash-eligible access runs, so they must not
// be treated as torn-write targets. Iteration and region attribution and all
// cache/NVM state are preserved — the recovery continues on the machine as
// the restart left it. n = 0 resets the clock and disarms.
func (m *Machine) RearmCrash(n uint64) {
	m.mainAccess = 0
	m.crashAt = n
	if m.faults != nil {
		m.lastWriteSeq = m.faults.WriteSeq()
	} else if m.recorder != nil {
		m.lastWriteSeq = m.recorder.WriteSeq()
	}
}

// MainAccesses returns the number of demand accesses issued inside the main
// loop so far. After a golden run this is the size of the crash-point space.
func (m *Machine) MainAccesses() uint64 { return m.mainAccess }

// RegionAccesses returns per-region main-loop access counts (key NoRegion
// holds accesses outside marked regions). The ratios are the a_k weights of
// the paper's Equation 1.
func (m *Machine) RegionAccesses() map[int]uint64 {
	out := make(map[int]uint64)
	for i, v := range m.regionAccess {
		if v != 0 {
			out[i-1] = v
		}
	}
	return out
}

// Iterations returns the number of completed main-loop iterations.
func (m *Machine) Iterations() int64 { return m.iterations }

// MainLoopBegin marks the start of the main computation loop: subsequent
// accesses are crash-eligible and attributed to regions.
func (m *Machine) MainLoopBegin() { m.inMainLoop = true }

// MainLoopEnd marks the end of the main computation loop.
func (m *Machine) MainLoopEnd() { m.inMainLoop = false; m.region = NoRegion }

// BeginIteration records the current main-loop iteration number (0-based).
func (m *Machine) BeginIteration(it int64) { m.iter = it }

// EndIteration invokes the persistence policy for the iteration boundary.
func (m *Machine) EndIteration(it int64) {
	m.iterations++
	if m.persister != nil {
		m.persister.IterationEnd(m, it)
	}
}

// BeginRegion marks entry into first-level code region k (0-based,
// k < MaxRegions).
func (m *Machine) BeginRegion(k int) {
	if k < 0 || k >= MaxRegions {
		panic(fmt.Sprintf("sim: region %d out of range [0,%d)", k, MaxRegions))
	}
	m.region = k
}

// EndRegion marks exit from code region k and invokes the persistence
// policy for the region boundary.
func (m *Machine) EndRegion(k int) {
	if m.persister != nil {
		m.persister.RegionEnd(m, k, m.iter)
	}
	m.region = NoRegion
}

// Region returns the currently active region, or NoRegion.
func (m *Machine) Region() int { return m.region }

// CurrentIteration returns the iteration recorded by BeginIteration.
func (m *Machine) CurrentIteration() int64 { return m.iter }

// account counts one demand access and fires the armed crash if reached.
func (m *Machine) account() {
	if !m.inMainLoop {
		return
	}
	m.mainAccess++
	m.regionAccess[m.region+1]++
	if m.crashAt != 0 && m.mainAccess >= m.crashAt {
		if m.forkFn != nil {
			// Prefix-sharing mode: hand the would-be crash to the fork hook
			// and keep running toward whatever point it arms next. The hook
			// fires exactly where the panic would — after the crash clock
			// ticked, before the access completes — so a fork taken inside
			// it matches the state a live crash leaves behind.
			m.crashAt = m.forkFn(Crash{Access: m.mainAccess, Region: m.region, Iter: m.iter})
		} else {
			m.crashAt = 0
			if m.faults != nil && m.faults.WriteSeq() > m.lastWriteSeq {
				// A media write (eviction write-back or persistence flush)
				// happened since the previous crash-clock tick: it was in
				// flight when the power failed, so it is the tear target.
				m.faults.ArmTear()
			}
			panic(&Crash{Access: m.mainAccess, Region: m.region, Iter: m.iter})
		}
	}
	if m.faults != nil {
		m.lastWriteSeq = m.faults.WriteSeq()
	} else if m.recorder != nil {
		m.lastWriteSeq = m.recorder.WriteSeq()
	}
	if m.intrFn != nil {
		m.intrCount++
		if m.intrCount >= m.intrEvery {
			m.intrCount = 0
			if err := m.intrFn(); err != nil {
				panic(&Abort{Err: err})
			}
		}
	}
}

// LoadF64 loads a float64 through the cache.
func (m *Machine) LoadF64(addr uint64) float64 {
	m.account()
	m.hier.Load(m.core, addr, m.buf[:])
	if m.observer != nil {
		m.observer.Access(addr, 8, false)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(m.buf[:]))
}

// StoreF64 stores a float64 through the cache.
func (m *Machine) StoreF64(addr uint64, v float64) {
	m.account()
	binary.LittleEndian.PutUint64(m.buf[:], math.Float64bits(v))
	m.hier.Store(m.core, addr, m.buf[:])
	if m.observer != nil {
		m.observer.Access(addr, 8, true)
	}
}

// LoadI64 loads an int64 through the cache.
func (m *Machine) LoadI64(addr uint64) int64 {
	m.account()
	m.hier.Load(m.core, addr, m.buf[:])
	if m.observer != nil {
		m.observer.Access(addr, 8, false)
	}
	return int64(binary.LittleEndian.Uint64(m.buf[:]))
}

// StoreI64 stores an int64 through the cache.
func (m *Machine) StoreI64(addr uint64, v int64) {
	m.account()
	binary.LittleEndian.PutUint64(m.buf[:], uint64(v))
	m.hier.Store(m.core, addr, m.buf[:])
	if m.observer != nil {
		m.observer.Access(addr, 8, true)
	}
}

// F64 returns a typed view of an object holding float64 elements.
func (m *Machine) F64(o mem.Object) F64Slice { return F64Slice{m: m, o: o} }

// I64 returns a typed view of an object holding int64 elements.
func (m *Machine) I64(o mem.Object) I64Slice { return I64Slice{m: m, o: o} }

// F64Slice is an array-of-float64 view over a data object; every element
// access is a demand access through the cache.
type F64Slice struct {
	m *Machine
	o mem.Object
}

// Len returns the element count.
func (s F64Slice) Len() int { return int(s.o.Size / 8) }

// At loads element i.
func (s F64Slice) At(i int) float64 { return s.m.LoadF64(s.o.Addr + uint64(i)*8) }

// Set stores element i.
func (s F64Slice) Set(i int, v float64) { s.m.StoreF64(s.o.Addr+uint64(i)*8, v) }

// Object returns the underlying data object.
func (s F64Slice) Object() mem.Object { return s.o }

// I64Slice is an array-of-int64 view over a data object.
type I64Slice struct {
	m *Machine
	o mem.Object
}

// Len returns the element count.
func (s I64Slice) Len() int { return int(s.o.Size / 8) }

// At loads element i.
func (s I64Slice) At(i int) int64 { return s.m.LoadI64(s.o.Addr + uint64(i)*8) }

// Set stores element i.
func (s I64Slice) Set(i int, v int64) { s.m.StoreI64(s.o.Addr+uint64(i)*8, v) }

// Object returns the underlying data object.
func (s I64Slice) Object() mem.Object { return s.o }

// FlushObject persists one data object with the given flush instruction,
// counting one persistence operation. By default flush traffic is not
// demand traffic — it cannot fire crashes and is not attributed to regions —
// unless SetFlushCrashEligible made persistence interruptible.
func (m *Machine) FlushObject(o mem.Object, op cachesim.FlushOp) cachesim.FlushResult {
	r := m.flushRange(o.Addr, o.Size, op)
	m.persist.Operations++
	m.persist.BlocksIssued += r.Blocks
	m.persist.DirtyFlushed += r.DirtyFlushed
	m.persist.CleanFlushed += r.CleanFlushed
	return r
}

// FlushRange persists an arbitrary address range with the given flush
// instruction, counting one persistence operation. It is the primitive for
// workloads whose persistence points live *inside* the computation rather
// than at policy boundaries — e.g. a KV store flushing one WAL record and
// fencing its commit mark before acknowledging a write. Like FlushObject,
// the flush is not demand traffic unless SetFlushCrashEligible made
// persistence interruptible, in which case each flushed block advances the
// crash clock and a crash can strike between the blocks of the range.
//
// FlushRange models flush + fence: when it returns, every media write it
// issued (and everything ordered before it) has drained to the persistence
// domain, so the torn-write window is resynchronised — a crash at the next
// demand access must not tear a block this fence already committed. Without
// the fence semantics no write-ahead protocol could ever ack durably: the
// commit flush itself would stay a tear target until an unrelated later
// access ticked the crash clock. Policy-driven flushing (FlushObject,
// FlushObjects) deliberately keeps the old window: those model unfenced
// boundary flushes whose last write can still be in flight at the crash.
func (m *Machine) FlushRange(addr, size uint64, op cachesim.FlushOp) cachesim.FlushResult {
	r := m.flushRange(addr, size, op)
	m.persist.Operations++
	m.persist.BlocksIssued += r.Blocks
	m.persist.DirtyFlushed += r.DirtyFlushed
	m.persist.CleanFlushed += r.CleanFlushed
	if m.faults != nil {
		m.lastWriteSeq = m.faults.WriteSeq()
	} else if m.recorder != nil {
		m.lastWriteSeq = m.recorder.WriteSeq()
	}
	return r
}

// flushRange flushes [addr, addr+size), block by block when persistence is
// crash-eligible so an armed crash can strike between block flushes.
func (m *Machine) flushRange(addr, size uint64, op cachesim.FlushOp) cachesim.FlushResult {
	if !m.flushCrashes || size == 0 {
		return m.hier.Flush(addr, size, op)
	}
	var total cachesim.FlushResult
	first := addr &^ (cachesim.BlockSize - 1)
	for blk := first; blk < addr+size; blk += cachesim.BlockSize {
		lo, hi := blk, blk+cachesim.BlockSize
		if lo < addr {
			lo = addr
		}
		if hi > addr+size {
			hi = addr + size
		}
		r := m.hier.Flush(lo, hi-lo, op)
		total.Blocks += r.Blocks
		total.DirtyFlushed += r.DirtyFlushed
		total.CleanFlushed += r.CleanFlushed
		m.account() // one crash-clock tick per block flush
	}
	return total
}

// FlushObjects persists several objects as one persistence operation (the
// paper counts one "persistence operation" per boundary, covering all
// critical objects flushed there).
func (m *Machine) FlushObjects(objs []mem.Object, op cachesim.FlushOp) cachesim.FlushResult {
	var total cachesim.FlushResult
	for _, o := range objs {
		r := m.flushRange(o.Addr, o.Size, op)
		total.Blocks += r.Blocks
		total.DirtyFlushed += r.DirtyFlushed
		total.CleanFlushed += r.CleanFlushed
	}
	m.persist.Operations++
	m.persist.BlocksIssued += total.Blocks
	m.persist.DirtyFlushed += total.DirtyFlushed
	m.persist.CleanFlushed += total.CleanFlushed
	return total
}

// InconsistencyRate returns the fraction of an object's bytes whose cached
// (architectural) value differs from the durable NVM value — the paper's
// per-object data inconsistent rate at a crash point.
func (m *Machine) InconsistencyRate(o mem.Object) float64 {
	if o.Size == 0 {
		return 0
	}
	return float64(m.hier.DirtyBytesIn(o.Addr, o.Size)) / float64(o.Size)
}

// Crash simulates the machine losing power: all volatile cache contents are
// discarded. The NVM image retains only data that had been written back.
func (m *Machine) CrashNow() { m.hier.DropAll() }

// RestoreObject stores data over the object through the cache in block-sized
// chunks — the restart-time load_value of the paper's Figure 2(b), copying a
// post-crash NVM dump back into a freshly initialised object. It must be
// called outside the main loop (restart phase), so it is not crash-eligible.
func (m *Machine) RestoreObject(o mem.Object, data []byte) {
	if uint64(len(data)) != o.Size {
		panic(fmt.Sprintf("sim: restore size %d != object %s size %d", len(data), o.Name, o.Size))
	}
	for off := uint64(0); off < o.Size; off += cachesim.BlockSize {
		end := off + cachesim.BlockSize
		if end > o.Size {
			end = o.Size
		}
		m.hier.Store(m.core, o.Addr+off, data[off:end])
	}
}
