package sim

import (
	"testing"

	"easycrash/internal/cachesim"
	"easycrash/internal/mem"
)

func newM(t testing.TB) *Machine {
	t.Helper()
	return NewMachine(1<<20, cachesim.TestConfig())
}

func TestTypedAccessRoundTrip(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 16, true)
	v := m.F64(o)
	if v.Len() != 16 {
		t.Fatalf("Len = %d", v.Len())
	}
	v.Set(3, 2.75)
	if got := v.At(3); got != 2.75 {
		t.Fatalf("At(3) = %v", got)
	}
	oi := m.Space().AllocI64("y", 4, false)
	iv := m.I64(oi)
	iv.Set(0, -42)
	if got := iv.At(0); got != -42 {
		t.Fatalf("I64 At = %v", got)
	}
	if v.Object().Name != "x" || iv.Object().Name != "y" {
		t.Fatal("Object() lost identity")
	}
}

func TestMainLoopAccessCounting(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 8, true)
	v := m.F64(o)
	v.Set(0, 1) // outside main loop: not counted
	if m.MainAccesses() != 0 {
		t.Fatal("pre-loop access counted")
	}
	m.MainLoopBegin()
	m.BeginIteration(0)
	m.BeginRegion(2)
	v.Set(1, 2)
	v.At(1)
	m.EndRegion(2)
	m.EndIteration(0)
	m.MainLoopEnd()
	v.Set(2, 3) // after loop: not counted
	if got := m.MainAccesses(); got != 2 {
		t.Fatalf("MainAccesses = %d, want 2", got)
	}
	ra := m.RegionAccesses()
	if ra[2] != 2 {
		t.Fatalf("region 2 accesses = %d, want 2", ra[2])
	}
	if m.Iterations() != 1 {
		t.Fatalf("Iterations = %d", m.Iterations())
	}
}

func TestCrashFiresAtExactAccess(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 64, true)
	v := m.F64(o)
	m.SetCrashAfter(5)
	m.MainLoopBegin()
	m.BeginIteration(7)
	m.BeginRegion(1)
	var crash *Crash
	func() {
		defer func() {
			if r := recover(); r != nil {
				c, ok := r.(*Crash)
				if !ok {
					panic(r)
				}
				crash = c
			}
		}()
		for i := 0; i < 100; i++ {
			v.Set(i, float64(i))
		}
	}()
	if crash == nil {
		t.Fatal("crash did not fire")
	}
	if crash.Access != 5 || crash.Region != 1 || crash.Iter != 7 {
		t.Fatalf("crash = %+v", crash)
	}
	if crash.Error() == "" {
		t.Fatal("empty error string")
	}
	// Crash disarms itself; further accesses proceed.
	v.Set(0, 1)
}

func TestCrashNowDiscardsVolatileState(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 8, true)
	v := m.F64(o)
	v.Set(0, 9.5)
	m.CrashNow()
	if got := m.Image().Float64At(o.Addr); got == 9.5 {
		t.Fatal("dirty store survived crash")
	}
	if got := v.At(0); got != 0 {
		t.Fatalf("post-crash load = %v, want 0 (stale durable value)", got)
	}
}

func TestInconsistencyRate(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 8, true) // 64 bytes, one block
	v := m.F64(o)
	if r := m.InconsistencyRate(o); r != 0 {
		t.Fatalf("fresh object rate = %v", r)
	}
	// 1.5 encodes as 00...00 F8 3F: exactly 2 of its 8 bytes differ from
	// the zeroed durable image, and inconsistency counts differing bytes.
	v.Set(0, 1.5)
	if r := m.InconsistencyRate(o); r != 2.0/64 {
		t.Fatalf("rate = %v, want %v", r, 2.0/64)
	}
	m.FlushObject(o, cachesim.CLWB)
	if r := m.InconsistencyRate(o); r != 0 {
		t.Fatalf("rate after flush = %v", r)
	}
}

func TestFlushObjectsCountsOneOperation(t *testing.T) {
	m := newM(t)
	a := m.Space().AllocF64("a", 64, true)
	b := m.Space().AllocF64("b", 64, true)
	va, vb := m.F64(a), m.F64(b)
	for i := 0; i < 64; i++ {
		va.Set(i, 1)
		vb.Set(i, 2)
	}
	m.FlushObjects([]mem.Object{a, b}, cachesim.CLWB)
	ps := m.PersistStats()
	if ps.Operations != 1 {
		t.Fatalf("Operations = %d, want 1", ps.Operations)
	}
	if ps.BlocksIssued != a.Size/64+b.Size/64 {
		t.Fatalf("BlocksIssued = %d", ps.BlocksIssued)
	}
	if ps.DirtyFlushed+ps.CleanFlushed != ps.BlocksIssued {
		t.Fatal("flush accounting identity violated")
	}
	// Everything was dirty or evicted-then-clean; persisted values visible.
	if m.Image().Float64At(a.Addr) != 1 {
		t.Fatal("flush did not persist a[0]")
	}
}

type recordingPersister struct {
	regions []int
	iters   []int64
}

func (p *recordingPersister) RegionEnd(m *Machine, region int, it int64) {
	p.regions = append(p.regions, region)
}
func (p *recordingPersister) IterationEnd(m *Machine, it int64) {
	p.iters = append(p.iters, it)
}

func TestPersisterHooks(t *testing.T) {
	m := newM(t)
	p := &recordingPersister{}
	m.SetPersister(p)
	m.MainLoopBegin()
	for it := int64(0); it < 3; it++ {
		m.BeginIteration(it)
		m.BeginRegion(0)
		m.EndRegion(0)
		m.BeginRegion(1)
		m.EndRegion(1)
		m.EndIteration(it)
	}
	m.MainLoopEnd()
	if len(p.regions) != 6 || p.regions[0] != 0 || p.regions[1] != 1 {
		t.Fatalf("regions = %v", p.regions)
	}
	if len(p.iters) != 3 || p.iters[2] != 2 {
		t.Fatalf("iters = %v", p.iters)
	}
	if m.Region() != NoRegion {
		t.Fatal("region not reset")
	}
}

func TestFlushTrafficIsNotDemandTraffic(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 8, true)
	m.MainLoopBegin()
	m.F64(o).Set(0, 1)
	n := m.MainAccesses()
	m.FlushObject(o, cachesim.CLWB)
	if m.MainAccesses() != n {
		t.Fatal("flush counted as demand access")
	}
}

func TestMultiCoreAccessors(t *testing.T) {
	cfg := cachesim.TestConfig()
	cfg.Cores = 2
	m := NewMachine(1<<20, cfg)
	o := m.Space().AllocF64("x", 8, true)
	m.OnCore(0)
	m.F64(o).Set(0, 3.25)
	m.OnCore(1)
	if got := m.F64(o).At(0); got != 3.25 {
		t.Fatalf("core 1 read %v", got)
	}
}

type countingObserver struct {
	loads, stores int
	lastAddr      uint64
}

func (o *countingObserver) Access(addr uint64, size int, store bool) {
	if store {
		o.stores++
	} else {
		o.loads++
	}
	o.lastAddr = addr
}

func TestObserverSeesAllTypedAccesses(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 8, true)
	oi := m.Space().AllocI64("y", 8, true)
	obs := &countingObserver{}
	m.SetObserver(obs)
	m.F64(o).Set(0, 1)
	m.F64(o).At(0)
	m.I64(oi).Set(1, 2)
	m.I64(oi).At(1)
	if obs.loads != 2 || obs.stores != 2 {
		t.Fatalf("observer saw %d loads, %d stores; want 2, 2", obs.loads, obs.stores)
	}
	if obs.lastAddr != oi.Addr+8 {
		t.Fatalf("lastAddr = %#x", obs.lastAddr)
	}
	m.SetObserver(nil)
	m.F64(o).Set(0, 3)
	if obs.stores != 2 {
		t.Fatal("detached observer still notified")
	}
}

func TestRestoreObject(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 20, true) // 160 bytes, spans blocks
	v := m.F64(o)
	for i := 0; i < 20; i++ {
		v.Set(i, float64(i))
	}
	// Build a dump with distinct contents.
	dump := make([]byte, o.Size)
	for i := range dump {
		dump[i] = byte(i ^ 0x5A)
	}
	m.RestoreObject(o, dump)
	got := make([]byte, o.Size)
	m.Hierarchy().ArchValue(o.Addr, got)
	for i := range dump {
		if got[i] != dump[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], dump[i])
		}
	}
	// Size mismatch is a programming error.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	m.RestoreObject(o, dump[:8])
}
