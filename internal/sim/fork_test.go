package sim

import (
	"bytes"
	"testing"

	"easycrash/internal/cachesim"
	"easycrash/internal/faultmodel"
	"easycrash/internal/mem"
)

// forkWorkload runs a synthetic multi-iteration kernel on m: two objects, a
// per-iteration stencil over one and a reduction into the other, with a
// region boundary. Deterministic given the machine state.
func forkWorkload(m *Machine, iters int) {
	a := m.Space().MustObject("a")
	s := m.Space().MustObject("s")
	av, sv := m.F64(a), m.F64(s)
	m.MainLoopBegin()
	for it := 0; it < iters; it++ {
		m.BeginIteration(int64(it))
		m.BeginRegion(0)
		for i := 1; i < av.Len()-1; i++ {
			av.Set(i, 0.5*av.At(i-1)+0.25*av.At(i)+0.25*av.At(i+1)+1)
		}
		m.EndRegion(0)
		m.BeginRegion(1)
		var sum float64
		for i := 0; i < av.Len(); i += 7 {
			sum += av.At(i)
		}
		sv.Set(it%sv.Len(), sum)
		m.EndRegion(1)
		m.EndIteration(int64(it))
	}
	m.MainLoopEnd()
}

func allocForkObjects(m *Machine) {
	m.Space().AllocF64("a", 1200, true)
	m.Space().AllocF64("s", 64, true)
}

// crashState is everything a postmortem reads off a crashed machine.
type crashState struct {
	crash   Crash
	access  uint64
	iters   int64
	persist PersistStats
	rateA   float64
	rateS   float64
	image   []byte
}

// liveCrash runs the workload on a fresh machine armed to crash at point p
// and captures the post-crash state.
func liveCrash(t *testing.T, p uint64, iters int) crashState {
	t.Helper()
	m := NewMachine(1<<20, cachesim.TestConfig())
	allocForkObjects(m)
	m.SetCrashAfter(p)
	st, ok := runToCrash(m, iters)
	if !ok {
		t.Fatalf("no crash fired at point %d", p)
	}
	return st
}

func runToCrash(m *Machine, iters int) (st crashState, crashed bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		c, ok := r.(*Crash)
		if !ok {
			panic(r)
		}
		crashed = true
		st = postmortem(m, *c)
	}()
	forkWorkload(m, iters)
	return
}

func postmortem(m *Machine, c Crash) crashState {
	a := m.Space().MustObject("a")
	s := m.Space().MustObject("s")
	st := crashState{
		crash:   c,
		access:  m.MainAccesses(),
		iters:   m.Iterations(),
		persist: m.PersistStats(),
		rateA:   m.InconsistencyRate(a),
		rateS:   m.InconsistencyRate(s),
	}
	m.CrashNow()
	st.image = append([]byte(nil), m.Image().Bytes(0, m.Space().Extent())...)
	return st
}

// forkedPostmortem resumes the snapshot on dst and runs the same postmortem a
// live crash would.
func forkedPostmortem(dst *Machine, snap *Snapshot, c Crash, a, s mem.Object) crashState {
	dst.ResumeFrom(snap)
	st := crashState{
		crash:   c,
		access:  dst.MainAccesses(),
		iters:   dst.Iterations(),
		persist: dst.PersistStats(),
		rateA:   dst.InconsistencyRate(a),
		rateS:   dst.InconsistencyRate(s),
	}
	dst.CrashNow()
	st.image = append([]byte(nil), dst.Image().Bytes(0, snap.Image().Extent())...)
	return st
}

func sameCrashState(t *testing.T, p uint64, live, forked crashState) {
	t.Helper()
	if live.crash != forked.crash {
		t.Fatalf("point %d: crash payload %+v vs %+v", p, live.crash, forked.crash)
	}
	if live.access != forked.access || live.iters != forked.iters || live.persist != forked.persist {
		t.Fatalf("point %d: clock state diverged: live {acc %d it %d %+v} forked {acc %d it %d %+v}",
			p, live.access, live.iters, live.persist, forked.access, forked.iters, forked.persist)
	}
	if live.rateA != forked.rateA || live.rateS != forked.rateS {
		t.Fatalf("point %d: inconsistency rates diverged: live (%v, %v) forked (%v, %v)",
			p, live.rateA, live.rateS, forked.rateA, forked.rateS)
	}
	if !bytes.Equal(live.image, forked.image) {
		t.Fatalf("point %d: post-crash NVM images differ", p)
	}
}

// TestForkMatchesLiveCrash is the machine-level core of the prefix-sharing
// equivalence property: one reference run visits several crash points via the
// fork hook, and each fork's postmortem must be byte-identical to a live run
// crashed at that point — including when forks are resumed on one recycled
// machine (pooled-worker reuse) and on machines resumed out of order.
func TestForkMatchesLiveCrash(t *testing.T) {
	const iters = 6
	points := []uint64{1, 37, 500, 2000, 7777, 20011}

	ref := NewMachine(1<<20, cachesim.TestConfig())
	allocForkObjects(ref)
	snaps := make(map[uint64]*Snapshot)
	crashes := make(map[uint64]Crash)
	idx := 0
	ref.SetCrashAfter(points[0])
	ref.SetForkHook(func(c Crash) uint64 {
		snaps[points[idx]] = ref.Fork()
		crashes[points[idx]] = c
		idx++
		if idx == len(points) {
			return 0
		}
		return points[idx]
	})
	forkWorkload(ref, iters)
	if len(snaps) != len(points) {
		t.Fatalf("reference run forked %d of %d points", len(snaps), len(points))
	}

	a := ref.Space().MustObject("a")
	s := ref.Space().MustObject("s")
	worker := NewMachine(1<<20, cachesim.TestConfig())
	// Resume in reverse order on one recycled machine: order independence
	// and pooled reuse in one pass.
	for i := len(points) - 1; i >= 0; i-- {
		p := points[i]
		worker.Reset()
		forked := forkedPostmortem(worker, snaps[p], crashes[p], a, s)
		sameCrashState(t, p, liveCrash(t, p, iters), forked)
	}
}

// TestForkHookReferenceCompletesRun checks the reference machine, having
// served all fork points, finishes the run with the same final state as an
// uninstrumented run.
func TestForkHookReferenceCompletesRun(t *testing.T) {
	const iters = 4
	plain := NewMachine(1<<20, cachesim.TestConfig())
	allocForkObjects(plain)
	forkWorkload(plain, iters)

	ref := NewMachine(1<<20, cachesim.TestConfig())
	allocForkObjects(ref)
	ref.SetCrashAfter(100)
	ref.SetForkHook(func(c Crash) uint64 {
		ref.Fork()
		if c.Access < 5000 {
			return c.Access + 1000
		}
		return 0
	})
	forkWorkload(ref, iters)

	if plain.MainAccesses() != ref.MainAccesses() || plain.Iterations() != ref.Iterations() {
		t.Fatalf("reference run diverged: %d/%d accesses, %d/%d iterations",
			ref.MainAccesses(), plain.MainAccesses(), ref.Iterations(), plain.Iterations())
	}
	ext := plain.Space().Extent()
	pa := make([]byte, ext)
	ra := make([]byte, ext)
	plain.Hierarchy().ArchValue(0, pa)
	ref.Hierarchy().ArchValue(0, ra)
	if !bytes.Equal(pa, ra) {
		t.Fatal("reference architectural state diverged from uninstrumented run")
	}
}

func TestForkPanicsWithFaultsAttached(t *testing.T) {
	m := newM(t)
	m.AttachFaults(faultmodel.New(faultmodel.Config{TornWrites: true}, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("Fork with fault injector attached did not panic")
		}
	}()
	m.Fork()
}

func TestResetClearsForkMachinery(t *testing.T) {
	src := NewMachine(1<<20, cachesim.TestConfig())
	allocForkObjects(src)
	src.SetCrashAfter(123)
	var snap *Snapshot
	src.SetForkHook(func(c Crash) uint64 {
		snap = src.Fork()
		return 0
	})
	forkWorkload(src, 2)

	m := NewMachine(1<<20, cachesim.TestConfig())
	m.ResumeFrom(snap)
	if m.MainAccesses() == 0 {
		t.Fatal("resume restored nothing")
	}
	m.Reset()
	if m.MainAccesses() != 0 || m.resumeExtent != 0 || m.forkFn != nil {
		t.Fatal("Reset left fork state behind")
	}
	// The restored image prefix must be cleared even though this machine's
	// own space allocated nothing.
	for _, b := range m.Image().Bytes(0, snap.Image().Extent()) {
		if b != 0 {
			t.Fatal("Reset left restored image bytes behind")
		}
	}
}
