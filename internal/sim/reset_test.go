package sim

import (
	"bytes"
	"reflect"
	"testing"

	"easycrash/internal/cachesim"
	"easycrash/internal/faultmodel"
)

// resetWorkload is a small deterministic kernel: allocate an object, dirty
// it across three marked iterations, flush part of it.
func resetWorkload(m *Machine) {
	o := m.Space().AllocF64("x", 256, true)
	x := m.F64(o)
	m.MainLoopBegin()
	for it := int64(0); it < 3; it++ {
		m.BeginIteration(it)
		m.BeginRegion(0)
		for j := 0; j < x.Len(); j++ {
			x.Set(j, float64(it)+float64(j))
		}
		m.EndRegion(0)
		m.EndIteration(it)
	}
	m.MainLoopEnd()
	m.FlushObject(o, cachesim.CLWB)
}

type nopObserver struct{ n int }

func (c *nopObserver) Access(addr uint64, size int, store bool) { c.n++ }

// A reset machine must be behaviourally indistinguishable from a fresh one,
// even after a run that armed a crash, attached an observer and left the
// caches dirty.
func TestMachineResetMatchesFresh(t *testing.T) {
	run := func(m *Machine) (uint64, int64, cachesim.Stats, PersistStats, []byte) {
		resetWorkload(m)
		return m.MainAccesses(), m.Iterations(), m.Hierarchy().Stats(), m.PersistStats(), m.Image().Snapshot()
	}

	fresh := newM(t)
	wantAcc, wantIters, wantStats, wantPersist, wantImage := run(fresh)

	m := newM(t)
	// A polluting first life: observer attached, crash armed and fired.
	m.SetObserver(&nopObserver{})
	func() {
		defer func() {
			if _, ok := recover().(*Crash); !ok {
				t.Fatal("armed crash did not fire")
			}
		}()
		m.SetCrashAfter(50)
		resetWorkload(m)
	}()

	m.Reset()
	if m.MainAccesses() != 0 || m.Iterations() != 0 || m.Region() != NoRegion {
		t.Fatal("Reset left instrumentation state behind")
	}
	gotAcc, gotIters, gotStats, gotPersist, gotImage := run(m)
	if gotAcc != wantAcc || gotIters != wantIters {
		t.Fatalf("accesses/iterations after reset = %d/%d, fresh = %d/%d", gotAcc, gotIters, wantAcc, wantIters)
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("cache stats after reset differ:\n got  %+v\n want %+v", gotStats, wantStats)
	}
	if gotPersist != wantPersist {
		t.Fatalf("persist stats after reset differ: %+v vs %+v", gotPersist, wantPersist)
	}
	if !bytes.Equal(gotImage, wantImage) {
		t.Fatal("durable image after reset differs from a fresh machine")
	}
	if m.RegionAccesses()[0] != fresh.RegionAccesses()[0] {
		t.Fatal("region attribution after reset differs")
	}
}

// The nested-failure machinery adds pooled-machine state a first life can
// leave behind: an attached fault injector (wear counters, in-flight write
// window), an interrupt hook, a re-armed crash clock, and crash-eligible
// flush accounting. A machine recycled after all of that must still be
// byte-identical to a fresh one.
func TestMachineResetClearsNestedMachinery(t *testing.T) {
	run := func(m *Machine) (uint64, cachesim.Stats, []byte) {
		resetWorkload(m)
		return m.MainAccesses(), m.Hierarchy().Stats(), m.Image().Snapshot()
	}

	fresh := newM(t)
	wantAcc, wantStats, wantImage := run(fresh)

	m := newM(t)
	// A polluting first life exercising the whole nested-trial surface:
	// media faults attached, flushes crash-eligible, an interrupt hook, a
	// crash, a restore, a re-armed second crash with fault injection.
	inj := faultmodel.New(faultmodel.Config{TornWrites: true, RBER: 1e-4}, 99)
	m.AttachFaults(inj)
	m.SetFlushCrashEligible(true)
	m.SetInterrupt(1000, func() error { return nil })
	func() {
		defer func() {
			if _, ok := recover().(*Crash); !ok {
				t.Fatal("armed crash did not fire")
			}
		}()
		m.SetCrashAfter(40)
		resetWorkload(m)
	}()
	m.CrashWithFaults()
	o := m.Space().MustObject("x")
	dump := m.Image().Snapshot()
	m.Image().Restore(dump)
	m.RestoreObject(o, dump[o.Addr:o.End()])
	m.RearmCrash(5)
	func() {
		defer func() {
			if _, ok := recover().(*Crash); !ok {
				t.Fatal("re-armed crash did not fire")
			}
		}()
		x := m.F64(o)
		m.MainLoopBegin()
		m.BeginIteration(0)
		for j := 0; j < x.Len(); j++ {
			x.Set(j, float64(j))
		}
		m.MainLoopEnd()
	}()
	m.CrashWithFaults()

	m.Reset()
	if m.MainAccesses() != 0 || m.Iterations() != 0 {
		t.Fatal("Reset left crash-clock state behind")
	}
	gotAcc, gotStats, gotImage := run(m)
	if gotAcc != wantAcc {
		t.Fatalf("accesses after nested reset = %d, fresh = %d (leaked interrupt hook, flush eligibility or crash clock)", gotAcc, wantAcc)
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("cache stats after nested reset differ:\n got  %+v\n want %+v", gotStats, wantStats)
	}
	if !bytes.Equal(gotImage, wantImage) {
		t.Fatal("durable image after nested reset differs from a fresh machine (leaked faults, poison or wear)")
	}
}

// InconsistencyRate is the campaign's postmortem; it must classify a dirty
// object over poisoned media as inconsistent instead of escaping with the
// image's media-error panic.
func TestInconsistencyRateSurvivesPoisonedBacking(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 8, true)
	m.MainLoopBegin()
	m.F64(o).Set(0, 1.5)
	m.MainLoopEnd()
	m.Image().PoisonBlock(o.Addr)
	if r := m.InconsistencyRate(o); r != 1 {
		t.Fatalf("InconsistencyRate over poisoned dirty block = %v, want 1", r)
	}
}
