package sim

import (
	"errors"
	"testing"

	"easycrash/internal/cachesim"
	"easycrash/internal/faultmodel"
)

func TestCrashWithFaultsWithoutInjectorIsCrashNow(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 64, true)
	v := m.F64(o)
	m.MainLoopBegin()
	for i := 0; i < v.Len(); i++ {
		v.Set(i, float64(i))
	}
	m.MainLoopEnd()
	if inj := m.CrashWithFaults(); inj != (faultmodel.Injection{}) {
		t.Fatalf("no injector attached, but CrashWithFaults injected %+v", inj)
	}
	// Caches dropped: no dirty (cache-ahead-of-NVM) bytes remain.
	if r := m.InconsistencyRate(o); r != 0 {
		t.Fatalf("inconsistency %v after crash, want 0 (caches dropped)", r)
	}
}

func TestInterruptAbortsRun(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 8, true)
	v := m.F64(o)
	errStop := errors.New("stop")
	fired := 0
	m.SetInterrupt(10, func() error {
		fired++
		if fired >= 3 {
			return errStop
		}
		return nil
	})
	m.MainLoopBegin()
	defer func() {
		r := recover()
		a, ok := r.(*Abort)
		if !ok {
			t.Fatalf("recovered %T (%v), want *Abort", r, r)
		}
		if !errors.Is(a, errStop) {
			t.Fatalf("Abort unwraps to %v, want errStop", a.Err)
		}
		if a.Error() == "" {
			t.Fatal("empty abort message")
		}
		// Interrupt checked every 10 accesses; the error came on the third.
		if fired != 3 {
			t.Fatalf("interrupt fired %d times", fired)
		}
	}()
	for i := 0; i < 1000; i++ {
		v.Set(0, float64(i))
	}
	t.Fatal("interrupt error did not abort the run")
}

func TestInterruptOutsideMainLoopNeverFires(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 8, true)
	v := m.F64(o)
	m.SetInterrupt(1, func() error { return errors.New("boom") })
	// Accesses outside the main loop are not crash-clock ticks.
	for i := 0; i < 100; i++ {
		v.Set(0, float64(i))
	}
}

func TestTearArmedOnlyWhenWriteInFlight(t *testing.T) {
	// A machine with a tiny cache evicts constantly; the injector must see
	// those media writes and the crash must arm a tear for the in-flight one.
	// 128 KiB streamed working set vs a 32 KiB L3: write-backs are constant.
	m := NewMachine(1<<20, cachesim.TestConfig())
	o := m.Space().AllocF64("x", 16384, true)
	v := m.F64(o)
	inj := faultmodel.New(faultmodel.Config{TornWrites: true}, 1)
	m.AttachFaults(inj)
	m.SetCrashAfter(20000)
	m.MainLoopBegin()
	func() {
		defer func() {
			if _, ok := recover().(*Crash); !ok {
				t.Fatal("crash did not fire")
			}
		}()
		for i := 0; ; i = (i + 1) % v.Len() {
			v.Set(i, float64(i))
		}
	}()
	if inj.WriteSeq() == 0 {
		t.Fatal("injector observed no media writes despite cache evictions")
	}
	rep := m.CrashWithFaults()
	// The torn block is the one in flight; with 8 fresh words per block the
	// tear reverts on average half of them. It may legitimately revert zero,
	// but the injection must never corrupt anything beyond the tear.
	if rep.SilentBlocks != 0 || rep.PoisonedBlocks != 0 || rep.FlippedBits != 0 {
		t.Fatalf("torn-write-only config injected bit errors: %+v", rep)
	}
}

func TestAttachFaultsNilDetaches(t *testing.T) {
	m := newM(t)
	inj := faultmodel.New(faultmodel.Config{TornWrites: true}, 1)
	m.AttachFaults(inj)
	m.AttachFaults(nil)
	o := m.Space().AllocF64("x", 512, true)
	v := m.F64(o)
	m.MainLoopBegin()
	for i := 0; i < v.Len(); i++ {
		v.Set(i, 1)
	}
	m.MainLoopEnd()
	m.Hierarchy().WriteBackAll()
	if inj.WriteSeq() != 0 {
		t.Fatal("detached injector still observed writes")
	}
}
