package sim

import (
	"bytes"
	"reflect"
	"testing"

	"easycrash/internal/cachesim"
	"easycrash/internal/faultmodel"
	"easycrash/internal/mem"
)

// batchTestConfig is a deliberately tiny hierarchy: the workload's ~56-block
// footprint overflows the 32-line LLC, so eviction write-backs (the media
// writes that arm torn-write injection) happen throughout the sweep instead
// of never. It also keeps every batched access under constant eviction
// pressure, the hardest regime for the memoized fast paths.
func batchTestConfig() cachesim.Config {
	return cachesim.Config{
		Name:  "batch-tiny",
		Cores: 1,
		Levels: []cachesim.LevelConfig{
			{Name: "L1", Size: 512, Ways: 2},
			{Name: "L2", Size: 2 << 10, Ways: 4},
		},
	}
}

// batchObjs holds the workload's objects so crash-recovery reruns reuse the
// allocations instead of re-allocating names.
type batchObjs struct {
	a, b mem.Object
	h    mem.Object
}

func allocBatchObjs(m *Machine) batchObjs {
	s := m.Space()
	return batchObjs{
		a: s.AllocF64("a", 192, true),
		b: s.AllocF64("b", 192, true),
		h: s.AllocI64("h", 64, true),
	}
}

// batchWorkload exercises every batched accessor — float64 and int64 element
// streams, run loads and stores — across regions and iterations, with enough
// inter-array traffic that runs and streams split at block boundaries, region
// transitions and (when armed) the crash tick. In scalar reference mode the
// same code takes the per-element path, so a crash sweep over it proves the
// batched engine access-for-access equivalent.
func batchWorkload(m *Machine, o batchObjs) {
	va, vb, vh := m.F64(o.a), m.F64(o.b), m.I64(o.h)
	sa, sb := m.F64Stream(o.a), m.F64Stream(o.b)
	sh := m.I64Stream(o.h)
	fbuf := make([]float64, 96)
	ibuf := make([]int64, 48)
	m.MainLoopBegin()
	defer m.MainLoopEnd()
	for it := int64(0); it < 2; it++ {
		m.BeginIteration(it)
		m.BeginRegion(0)
		for i := 0; i < sa.Len(); i++ {
			sa.Set(i, float64(i)*1.25+float64(it))
		}
		m.EndRegion(0)
		m.BeginRegion(1)
		for i := 0; i < sb.Len(); i++ {
			sb.Set(i, sa.At(i)-0.5)
		}
		va.LoadRun(0, fbuf)
		vb.StoreRun(96, fbuf)
		m.EndRegion(1)
		m.BeginRegion(2)
		for j := range ibuf {
			ibuf[j] = int64(it)*7 + int64(j)
		}
		vh.StoreRun(0, ibuf)
		vh.LoadRun(16, ibuf)
		for i := 0; i < sh.Len(); i++ {
			sh.Set(i, sh.At(i)+1)
		}
		m.EndRegion(2)
		m.EndIteration(it)
	}
}

// runToCrash arms the crash and runs the workload, returning the caught
// crash, or nil if the run completed.
func runBatchToCrash(m *Machine, o batchObjs, crashAt uint64) (c *Crash) {
	m.SetCrashAfter(crashAt)
	defer func() {
		if r := recover(); r != nil {
			cr, ok := r.(*Crash)
			if !ok {
				panic(r)
			}
			c = cr
		}
	}()
	batchWorkload(m, o)
	return nil
}

// compareImages fails the test unless both machines hold byte-identical
// durable images and poison sets.
func compareImages(t *testing.T, label string, scalar, batched *Machine) {
	t.Helper()
	extent := scalar.Space().Extent()
	if !bytes.Equal(scalar.Image().Bytes(0, extent), batched.Image().Bytes(0, extent)) {
		t.Fatalf("%s: durable images diverged between scalar and batched runs", label)
	}
	if !reflect.DeepEqual(scalar.Image().PoisonedBlocks(), batched.Image().PoisonedBlocks()) {
		t.Fatalf("%s: poison sets diverged:\nscalar  %v\nbatched %v",
			label, scalar.Image().PoisonedBlocks(), batched.Image().PoisonedBlocks())
	}
}

func compareCrashes(t *testing.T, label string, cs, cb *Crash) {
	t.Helper()
	if (cs == nil) != (cb == nil) {
		t.Fatalf("%s: scalar crashed=%v, batched crashed=%v", label, cs != nil, cb != nil)
	}
	if cs != nil && (cs.Access != cb.Access || cs.Region != cb.Region || cs.Iter != cb.Iter) {
		t.Fatalf("%s: crash sites diverged:\nscalar  %+v\nbatched %+v", label, cs, cb)
	}
}

// TestBatchedCrashSweepMatchesScalar crashes the batched workload at every
// single crash-clock tick and demands the scalar reference leave a
// byte-identical durable image, the same crash site and the same cache
// counters. This is the ground-truth equivalence argument for the batched
// engine's split math: a batch that crossed a crash tick, an interrupt
// boundary or a region transition without splitting would fire the crash at
// the wrong access and diverge here.
func TestBatchedCrashSweepMatchesScalar(t *testing.T) {
	scalar := NewMachine(1<<20, batchTestConfig())
	batched := NewMachine(1<<20, batchTestConfig())
	crashed := false
	for crashAt := uint64(1); ; crashAt++ {
		scalar.Reset()
		scalar.SetScalarAccess(true)
		batched.Reset()
		cs := runBatchToCrash(scalar, allocBatchObjs(scalar), crashAt)
		cb := runBatchToCrash(batched, allocBatchObjs(batched), crashAt)
		compareCrashes(t, "sweep", cs, cb)
		if err := batched.Hierarchy().CheckCounters(); err != nil {
			t.Fatalf("crash %d: %v", crashAt, err)
		}
		scalar.CrashNow()
		batched.CrashNow()
		compareImages(t, "sweep", scalar, batched)
		if cs == nil {
			if crashAt == 1 {
				t.Fatal("workload issued no main-loop accesses")
			}
			break // past the last tick: both runs completed
		}
		crashed = true
	}
	if !crashed {
		t.Fatal("sweep never caught a crash")
	}
}

// TestBatchedCrashSweepMatchesScalarWithFaults repeats the every-tick sweep
// on imperfect media: torn writes plus raw bit errors through SECDED ECC.
// The injection draws consume one PRNG step per media write, so any
// divergence in write-back order or in the in-flight torn-write window —
// the subtlest part of the batched runs, which resync the window before the
// final element of each batch — shows up as differing reports or images.
func TestBatchedCrashSweepMatchesScalarWithFaults(t *testing.T) {
	cfg := faultmodel.Config{RBER: 1e-5, TornWrites: true, ECC: faultmodel.SECDED()}
	const seed = 11
	scalar := NewMachine(1<<20, batchTestConfig())
	batched := NewMachine(1<<20, batchTestConfig())
	tore := false
	for crashAt := uint64(1); ; crashAt++ {
		scalar.Reset()
		scalar.SetScalarAccess(true)
		scalar.AttachFaults(faultmodel.New(cfg, seed))
		batched.Reset()
		batched.AttachFaults(faultmodel.New(cfg, seed))
		cs := runBatchToCrash(scalar, allocBatchObjs(scalar), crashAt)
		cb := runBatchToCrash(batched, allocBatchObjs(batched), crashAt)
		compareCrashes(t, "faults sweep", cs, cb)
		rs := scalar.CrashWithFaults()
		rb := batched.CrashWithFaults()
		if rs != rb {
			t.Fatalf("crash %d: injection reports diverged:\nscalar  %+v\nbatched %+v", crashAt, rs, rb)
		}
		if rs.TornWords > 0 {
			tore = true
		}
		compareImages(t, "faults sweep", scalar, batched)
		if cs == nil {
			break
		}
	}
	if !tore {
		t.Fatal("no crash point armed a torn write; the in-flight window went unexercised")
	}
}

// TestBatchedNestedCrashMatchesScalar drives depth-2 failure chains — crash,
// re-arm, crash again during recovery — through a subsampled grid of crash
// pairs, with faults accumulating on the image across both power losses.
func TestBatchedNestedCrashMatchesScalar(t *testing.T) {
	cfg := faultmodel.Config{RBER: 1e-5, TornWrites: true, ECC: faultmodel.SECDED()}
	const seed = 13
	scalar := NewMachine(1<<20, batchTestConfig())
	batched := NewMachine(1<<20, batchTestConfig())

	runPair := func(m *Machine, scalarMode bool, c1, c2 uint64) (first, second *Crash, r1, r2 faultmodel.Injection) {
		m.Reset()
		m.SetScalarAccess(scalarMode)
		m.AttachFaults(faultmodel.New(cfg, seed))
		o := allocBatchObjs(m)
		first = runBatchToCrash(m, o, c1)
		r1 = m.CrashWithFaults()
		if first == nil {
			return
		}
		m.RearmCrash(c2)
		second = runBatchToCrash(m, o, c2)
		r2 = m.CrashWithFaults()
		return
	}

	for c1 := uint64(1); c1 < 2100; c1 += 131 {
		for _, c2 := range []uint64{1, 17, 503} {
			s1, s2, sr1, sr2 := runPair(scalar, true, c1, c2)
			b1, b2, br1, br2 := runPair(batched, false, c1, c2)
			compareCrashes(t, "nested first", s1, b1)
			compareCrashes(t, "nested second", s2, b2)
			if sr1 != br1 || sr2 != br2 {
				t.Fatalf("c1=%d c2=%d: injection reports diverged:\nscalar  %+v / %+v\nbatched %+v / %+v",
					c1, c2, sr1, sr2, br1, br2)
			}
			compareImages(t, "nested", scalar, batched)
		}
	}
}

// TestBatchedInterruptMatchesScalar checks the interrupt boundary split: the
// check must fire on exactly the same accesses in both modes, so the fire
// counts and the final images agree.
func TestBatchedInterruptMatchesScalar(t *testing.T) {
	run := func(scalarMode bool) (fires int, m *Machine) {
		m = NewMachine(1<<20, batchTestConfig())
		m.SetScalarAccess(scalarMode)
		m.SetInterrupt(137, func() error { fires++; return nil })
		batchWorkload(m, allocBatchObjs(m))
		m.CrashNow()
		return fires, m
	}
	sf, sm := run(true)
	bf, bm := run(false)
	if sf == 0 || sf != bf {
		t.Fatalf("interrupt fired %d times scalar, %d batched", sf, bf)
	}
	compareImages(t, "interrupt", sm, bm)
}

// TestStreamFallsBackUnderObserver: with an observer attached, batched views
// must take the scalar path so the observer sees every access.
func TestStreamFallsBackUnderObserver(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 64, true)
	st := m.F64Stream(o)
	v := m.F64(o)
	seen := 0
	m.SetObserver(observerFunc(func(addr uint64, size int, store bool) { seen++ }))
	for i := 0; i < st.Len(); i++ {
		st.Set(i, float64(i))
	}
	buf := make([]float64, 64)
	v.LoadRun(0, buf)
	if seen != 128 {
		t.Fatalf("observer saw %d accesses, want 128", seen)
	}
	for i, got := range buf {
		if got != float64(i) {
			t.Fatalf("buf[%d] = %v", i, got)
		}
	}
}

type observerFunc func(addr uint64, size int, store bool)

func (f observerFunc) Access(addr uint64, size int, store bool) { f(addr, size, store) }
