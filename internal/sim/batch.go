package sim

import (
	"encoding/binary"
	"math"

	"easycrash/internal/cachesim"
	"easycrash/internal/mem"
)

// This file is the machine half of the batched access engine: run accessors
// that hand the hierarchy whole element runs, and stream views that memoize
// single-block residency. Both preserve the exact crash semantics of the
// scalar path — the access tick counter, SetCrashAfter/RearmCrash firing
// points, interrupt checks, region/iteration accounting and the in-flight
// torn-write window are all computed so that batches split precisely at the
// crash tick, the interrupt boundary, the block boundary and region
// transitions. Any element that could fire (crash or interrupt) goes through
// the scalar account() path, so panics — and the snapshot-tree fork hook —
// fire at exactly the site a scalar run would have fired them.

// maxRunSpan bounds one batch (and the machine's scratch buffer); splitting
// a run into several batches is semantically free.
const maxRunSpan = 8192

// SetScalarAccess forces every batched accessor down the per-element scalar
// reference path. Cleared by Reset. Campaigns expose it as
// nvct.Config.ScalarAccess; the equivalence tests run both modes and demand
// byte-identical results.
func (m *Machine) SetScalarAccess(v bool) { m.scalarAccess = v }

// batchSpan returns how many of the next n consecutive main-loop demand
// accesses can be issued as one batch: none of them may fire the armed
// crash or the interrupt check. 0 means the next access is a potential
// firing point and must take the scalar path. Outside the main loop every
// access is inert and n is returned unchanged.
func (m *Machine) batchSpan(n uint64) uint64 {
	if !m.inMainLoop {
		return n
	}
	if m.crashAt != 0 {
		if m.mainAccess+1 >= m.crashAt {
			return 0
		}
		if left := m.crashAt - m.mainAccess - 1; n > left {
			n = left
		}
	}
	if m.intrFn != nil {
		left := m.intrEvery - m.intrCount
		if left <= 1 {
			return 0
		}
		if n > left-1 {
			n = left - 1
		}
	}
	return n
}

// bulkAccount performs the accounting of n crash-clock ticks whose firing
// checks batchSpan already proved inert. Mirrors account() without the
// checks; like account(), it is a no-op outside the main loop.
func (m *Machine) bulkAccount(n uint64) {
	if !m.inMainLoop {
		return
	}
	m.mainAccess += n
	m.regionAccess[m.region+1] += n
	if m.intrFn != nil {
		m.intrCount += n
	}
}

// resyncWrites re-anchors the in-flight torn-write window, exactly as the
// tail of account() does. The batched run accessors call it before issuing
// the *final* element of a batch: at the next scalar account() the window
// must cover precisely the writes of the immediately preceding access, as
// it would after a scalar run.
func (m *Machine) resyncWrites() {
	if !m.inMainLoop {
		return
	}
	if m.faults != nil {
		m.lastWriteSeq = m.faults.WriteSeq()
	} else if m.recorder != nil {
		m.lastWriteSeq = m.recorder.WriteSeq()
	}
}

// runBytes returns the scratch buffer for one batch, growing it on demand.
func (m *Machine) runBytes(n int) []byte {
	if cap(m.runBuf) < n {
		m.runBuf = make([]byte, n)
	}
	return m.runBuf[:n]
}

// loadRun reads n consecutive 8-byte elements at addr into the scratch
// buffer and returns it; each element is one demand access.
func (m *Machine) loadRun(addr uint64, span uint64) []byte {
	buf := m.runBytes(int(span) * 8)
	m.bulkAccount(span)
	if span > 1 {
		m.hier.LoadRun(m.core, addr, buf[:(span-1)*8])
	}
	m.resyncWrites()
	m.hier.Load(m.core, addr+(span-1)*8, buf[(span-1)*8:])
	return buf
}

// storeRun writes the scratch buffer (span 8-byte elements) at addr; each
// element is one demand access.
func (m *Machine) storeRun(addr uint64, span uint64, buf []byte) {
	m.bulkAccount(span)
	if span > 1 {
		m.hier.StoreRun(m.core, addr, buf[:(span-1)*8])
	}
	m.resyncWrites()
	m.hier.Store(m.core, addr+(span-1)*8, buf[(span-1)*8:])
}

// LoadRun loads elements [i, i+len(dst)) of the slice into dst, equivalent
// to len(dst) consecutive At calls.
func (s F64Slice) LoadRun(i int, dst []float64) {
	m := s.m
	addr := s.o.Addr + uint64(i)*8
	if m.scalarAccess || m.observer != nil || addr&7 != 0 {
		for j := range dst {
			dst[j] = m.LoadF64(addr + uint64(j)*8)
		}
		return
	}
	for j := 0; j < len(dst); {
		n := uint64(len(dst) - j)
		if n > maxRunSpan {
			n = maxRunSpan
		}
		span := m.batchSpan(n)
		if span == 0 {
			dst[j] = m.LoadF64(addr + uint64(j)*8)
			j++
			continue
		}
		buf := m.loadRun(addr+uint64(j)*8, span)
		for k := uint64(0); k < span; k++ {
			dst[j+int(k)] = math.Float64frombits(binary.LittleEndian.Uint64(buf[k*8:]))
		}
		j += int(span)
	}
}

// StoreRun stores src into elements [i, i+len(src)) of the slice,
// equivalent to len(src) consecutive Set calls.
func (s F64Slice) StoreRun(i int, src []float64) {
	m := s.m
	addr := s.o.Addr + uint64(i)*8
	if m.scalarAccess || m.observer != nil || addr&7 != 0 {
		for j, v := range src {
			m.StoreF64(addr+uint64(j)*8, v)
		}
		return
	}
	for j := 0; j < len(src); {
		n := uint64(len(src) - j)
		if n > maxRunSpan {
			n = maxRunSpan
		}
		span := m.batchSpan(n)
		if span == 0 {
			m.StoreF64(addr+uint64(j)*8, src[j])
			j++
			continue
		}
		buf := m.runBytes(int(span) * 8)
		for k := uint64(0); k < span; k++ {
			binary.LittleEndian.PutUint64(buf[k*8:], math.Float64bits(src[j+int(k)]))
		}
		m.storeRun(addr+uint64(j)*8, span, buf)
		j += int(span)
	}
}

// LoadRun loads elements [i, i+len(dst)) of the slice into dst, equivalent
// to len(dst) consecutive At calls.
func (s I64Slice) LoadRun(i int, dst []int64) {
	m := s.m
	addr := s.o.Addr + uint64(i)*8
	if m.scalarAccess || m.observer != nil || addr&7 != 0 {
		for j := range dst {
			dst[j] = m.LoadI64(addr + uint64(j)*8)
		}
		return
	}
	for j := 0; j < len(dst); {
		n := uint64(len(dst) - j)
		if n > maxRunSpan {
			n = maxRunSpan
		}
		span := m.batchSpan(n)
		if span == 0 {
			dst[j] = m.LoadI64(addr + uint64(j)*8)
			j++
			continue
		}
		buf := m.loadRun(addr+uint64(j)*8, span)
		for k := uint64(0); k < span; k++ {
			dst[j+int(k)] = int64(binary.LittleEndian.Uint64(buf[k*8:]))
		}
		j += int(span)
	}
}

// StoreRun stores src into elements [i, i+len(src)) of the slice,
// equivalent to len(src) consecutive Set calls.
func (s I64Slice) StoreRun(i int, src []int64) {
	m := s.m
	addr := s.o.Addr + uint64(i)*8
	if m.scalarAccess || m.observer != nil || addr&7 != 0 {
		for j, v := range src {
			m.StoreI64(addr+uint64(j)*8, v)
		}
		return
	}
	for j := 0; j < len(src); {
		n := uint64(len(src) - j)
		if n > maxRunSpan {
			n = maxRunSpan
		}
		span := m.batchSpan(n)
		if span == 0 {
			m.StoreI64(addr+uint64(j)*8, src[j])
			j++
			continue
		}
		buf := m.runBytes(int(span) * 8)
		for k := uint64(0); k < span; k++ {
			binary.LittleEndian.PutUint64(buf[k*8:], uint64(src[j+int(k)]))
		}
		m.storeRun(addr+uint64(j)*8, span, buf)
		j += int(span)
	}
}

// F64Stream is a float64 element view backed by a block-memoizing cachesim
// stream: per-access crash accounting stays exact (every access goes through
// account()), but consecutive accesses within one 64 B block skip the
// hierarchy walk. Kernels keep one stream per stride-regular access site
// (e.g. one per stencil arm), so each stream sees block-local traffic.
//
// With an observer attached, in scalar reference mode or over an unaligned
// object, every access transparently falls back to the scalar path.
type F64Stream struct {
	m       *Machine
	o       mem.Object
	st      cachesim.Stream
	aligned bool
}

// F64Stream returns a stream view of an object holding float64 elements.
func (m *Machine) F64Stream(o mem.Object) *F64Stream {
	return &F64Stream{m: m, o: o, st: m.hier.NewStream(), aligned: o.Addr&7 == 0}
}

// Len returns the element count.
func (s *F64Stream) Len() int { return int(s.o.Size / 8) }

// Object returns the underlying data object.
func (s *F64Stream) Object() mem.Object { return s.o }

// At loads element i.
func (s *F64Stream) At(i int) float64 {
	m := s.m
	addr := s.o.Addr + uint64(i)*8
	if m.scalarAccess || m.observer != nil || !s.aligned {
		return m.LoadF64(addr)
	}
	m.account()
	return math.Float64frombits(s.st.Load8(m.core, addr))
}

// Set stores element i.
func (s *F64Stream) Set(i int, v float64) {
	m := s.m
	addr := s.o.Addr + uint64(i)*8
	if m.scalarAccess || m.observer != nil || !s.aligned {
		m.StoreF64(addr, v)
		return
	}
	m.account()
	s.st.Store8(m.core, addr, math.Float64bits(v))
}

// I64Stream is the int64 counterpart of F64Stream.
type I64Stream struct {
	m       *Machine
	o       mem.Object
	st      cachesim.Stream
	aligned bool
}

// I64Stream returns a stream view of an object holding int64 elements.
func (m *Machine) I64Stream(o mem.Object) *I64Stream {
	return &I64Stream{m: m, o: o, st: m.hier.NewStream(), aligned: o.Addr&7 == 0}
}

// Len returns the element count.
func (s *I64Stream) Len() int { return int(s.o.Size / 8) }

// Object returns the underlying data object.
func (s *I64Stream) Object() mem.Object { return s.o }

// At loads element i.
func (s *I64Stream) At(i int) int64 {
	m := s.m
	addr := s.o.Addr + uint64(i)*8
	if m.scalarAccess || m.observer != nil || !s.aligned {
		return m.LoadI64(addr)
	}
	m.account()
	return int64(s.st.Load8(m.core, addr))
}

// Set stores element i.
func (s *I64Stream) Set(i int, v int64) {
	m := s.m
	addr := s.o.Addr + uint64(i)*8
	if m.scalarAccess || m.observer != nil || !s.aligned {
		m.StoreI64(addr, v)
		return
	}
	m.account()
	s.st.Store8(m.core, addr, uint64(v))
}
