package sim

import (
	"testing"

	"easycrash/internal/cachesim"
	"easycrash/internal/faultmodel"
)

// nestedWorkload runs a small main loop from iteration `from`, returning the
// number of demand accesses it would issue uninterrupted.
func nestedWorkload(m *Machine, o F64Slice, from int64) {
	m.MainLoopBegin()
	for it := from; it < 4; it++ {
		m.BeginIteration(it)
		m.BeginRegion(0)
		for j := 0; j < o.Len(); j++ {
			o.Set(j, float64(it)+float64(j))
		}
		m.EndRegion(0)
		m.EndIteration(it)
	}
	m.MainLoopEnd()
}

// A re-armed crash must count demand accesses from the start of the recovery
// run, not from the machine's first life: RearmCrash(n) fires at the n-th
// access after the restart, regardless of how many accesses preceded the
// first crash.
func TestRearmCrashCountsFromRecoveryStart(t *testing.T) {
	m := newM(t)
	o := m.F64(m.Space().AllocF64("x", 32, true))

	catchCrash := func(fn func()) *Crash {
		var c *Crash
		func() {
			defer func() {
				if r := recover(); r != nil {
					crash, ok := r.(*Crash)
					if !ok {
						panic(r)
					}
					c = crash
				}
			}()
			fn()
		}()
		return c
	}

	m.SetCrashAfter(50)
	first := catchCrash(func() { nestedWorkload(m, o, 0) })
	if first == nil || first.Access != 50 {
		t.Fatalf("first crash = %+v, want access 50", first)
	}

	// Power loss, then a restart-phase restore outside the main loop: none
	// of this may tick the crash clock.
	m.CrashNow()
	dump := m.Image().Snapshot()
	m.RestoreObject(o.Object(), dump[o.Object().Addr:o.Object().End()])

	m.RearmCrash(20)
	if m.MainAccesses() != 0 {
		t.Fatalf("RearmCrash left the crash clock at %d, want 0", m.MainAccesses())
	}
	second := catchCrash(func() { nestedWorkload(m, o, 1) })
	if second == nil || second.Access != 20 {
		t.Fatalf("re-armed crash = %+v, want access 20 of the recovery run", second)
	}

	// RearmCrash(0) resets and disarms: the next recovery completes.
	m.RearmCrash(0)
	if done := catchCrash(func() { nestedWorkload(m, o, 1) }); done != nil {
		t.Fatalf("disarmed recovery crashed: %+v", done)
	}
}

// RearmCrash must re-synchronise the torn-write window with the attached
// injector: restore-phase write-backs are settled by the time the recovery's
// first access runs, so a crash on that first access must not arm a tear.
// Media faults injected on successive power losses accumulate on the image
// through the one injector the trial owns.
func TestRearmCrashResyncsInFlightWindow(t *testing.T) {
	m := newM(t)
	o := m.Space().AllocF64("x", 32, true)
	inj := faultmodel.New(faultmodel.Config{TornWrites: true}, 1)
	m.AttachFaults(inj)
	x := m.F64(o)

	m.SetCrashAfter(40)
	func() {
		defer func() {
			if _, ok := recover().(*Crash); !ok {
				t.Fatal("armed crash did not fire")
			}
		}()
		nestedWorkload(m, x, 0)
	}()
	m.CrashWithFaults()

	// Restart phase: flush the restored object so media writes land after
	// the crash, then re-arm. Those writes are not in flight at the first
	// recovery access, so a tear must not be armed for them.
	dump := m.Image().Snapshot()
	m.RestoreObject(o, dump[o.Addr:o.End()])
	m.FlushObject(o, cachesim.CLWB)
	before := inj.WriteSeq()
	if before == 0 {
		t.Fatal("restore-phase flush produced no media writes; test premise broken")
	}

	m.RearmCrash(1)
	func() {
		defer func() {
			if _, ok := recover().(*Crash); !ok {
				t.Fatal("re-armed crash did not fire")
			}
		}()
		m.MainLoopBegin()
		m.BeginIteration(1)
		_ = x.At(0) // first recovery access: no media write since rearm
		m.MainLoopEnd()
	}()
	if got := m.CrashWithFaults(); got.TornWords != 0 {
		t.Fatalf("second crash tore %d words of a settled restore write, want 0", got.TornWords)
	}
}
