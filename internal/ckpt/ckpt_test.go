package ckpt_test

import (
	"testing"

	"easycrash/internal/apps"
	"easycrash/internal/ckpt"
	"easycrash/internal/nvct"
	"easycrash/internal/sim"
)

func TestSchemeString(t *testing.T) {
	if ckpt.Critical.String() != "checkpoint-critical" ||
		ckpt.AllCandidates.String() != "checkpoint-all" {
		t.Fatal("scheme names wrong")
	}
	if ckpt.Scheme(9).String() == "" {
		t.Fatal("unknown scheme should still format")
	}
}

func TestCheckpointAddsWrites(t *testing.T) {
	f, _ := apps.New("mg", apps.ProfileTest)
	tester, err := nvct.NewTester(f, nvct.Config{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := tester.ProfileRun(nil)
	if err != nil {
		t.Fatal(err)
	}
	var p *ckpt.Persister
	run, err := tester.ProfileRunWith(func(m *sim.Machine, k apps.Kernel) sim.Persister {
		p = ckpt.NewPersister(m, k, ckpt.AllCandidates, nil, []int64{5})
		return p
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Checkpoints != 1 {
		t.Fatalf("checkpoints taken = %d, want 1", p.Checkpoints)
	}
	if run.NVMWrites <= base.NVMWrites {
		t.Fatalf("checkpointing writes (%d) not above baseline (%d)", run.NVMWrites, base.NVMWrites)
	}
	// The copy must not corrupt the computation.
	if run.Result[0] != base.Result[0] {
		t.Fatalf("checkpointed run result %v differs from baseline %v", run.Result[0], base.Result[0])
	}
}

func TestCriticalCheaperThanAll(t *testing.T) {
	f, _ := apps.New("mg", apps.ProfileTest)
	tester, err := nvct.NewTester(f, nvct.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ckpt.CompareWrites(tester, nvct.IterationPolicy([]string{"u"}), []string{"u"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineWrites == 0 {
		t.Fatal("baseline writes zero")
	}
	if rep.CkptCriticalWrites >= rep.CkptAllWrites {
		t.Fatalf("critical checkpoint (%d) not cheaper than all-candidates (%d)",
			rep.CkptCriticalWrites, rep.CkptAllWrites)
	}
	// Figure 9's headline: EasyCrash adds fewer writes than either C/R
	// variant.
	if rep.NormalizedEasyCrash() >= rep.NormalizedCkptAll() {
		t.Fatalf("EasyCrash writes (%.3f) not below C/R-all (%.3f)",
			rep.NormalizedEasyCrash(), rep.NormalizedCkptAll())
	}
	for _, v := range []float64{rep.NormalizedEasyCrash(), rep.NormalizedCkptCritical(), rep.NormalizedCkptAll()} {
		if v < 1 {
			t.Fatalf("normalized writes %v below 1 (schemes only add writes)", v)
		}
	}
}

func TestMultipleCheckpoints(t *testing.T) {
	f, _ := apps.New("lu", apps.ProfileTest)
	tester, err := nvct.NewTester(f, nvct.Config{})
	if err != nil {
		t.Fatal(err)
	}
	writesAt := func(iters []int64) uint64 {
		g, err := tester.ProfileRunWith(func(m *sim.Machine, k apps.Kernel) sim.Persister {
			return ckpt.NewPersister(m, k, ckpt.AllCandidates, nil, iters)
		})
		if err != nil {
			t.Fatal(err)
		}
		return g.NVMWrites
	}
	one := writesAt([]int64{5})
	three := writesAt([]int64{2, 5, 8})
	if three <= one {
		t.Fatalf("3 checkpoints (%d writes) not above 1 (%d)", three, one)
	}
}
