// Package ckpt implements the traditional checkpoint/restart baseline the
// paper compares EasyCrash against. A checkpoint copies data objects into a
// shadow area of NVM and makes the copy durable; the copying both writes
// the checkpoint blocks and pollutes the cache, evicting dirty application
// blocks — the two sources of extra NVM writes the paper's Figure 9 counts
// against C/R.
package ckpt

import (
	"fmt"

	"easycrash/internal/apps"
	"easycrash/internal/cachesim"
	"easycrash/internal/mem"
	"easycrash/internal/nvct"
	"easycrash/internal/sim"
)

// Scheme selects which objects a checkpoint copies.
type Scheme int

const (
	// Critical checkpoints only the given critical data objects (the
	// paper's fair-comparison variant).
	Critical Scheme = iota
	// AllCandidates checkpoints every candidate object (all non-read-only
	// data, the common practice).
	AllCandidates
)

// String returns a human-readable scheme name.
func (s Scheme) String() string {
	switch s {
	case Critical:
		return "checkpoint-critical"
	case AllCandidates:
		return "checkpoint-all"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// shadowName is the object name of the checkpoint shadow area.
const shadowName = "__ckpt_shadow"

// Persister takes checkpoints at the requested iterations. It implements
// sim.Persister.
type Persister struct {
	objects []mem.Object
	shadow  mem.Object
	iterObj mem.Object
	at      map[int64]bool
	// Checkpoints counts checkpoints taken.
	Checkpoints int
}

// NewPersister builds a checkpoint persister on machine m for kernel k.
// It allocates the shadow area (doubling the checkpointed footprint — the
// capacity cost §1 describes). atIters lists the iterations after which a
// checkpoint is taken.
func NewPersister(m *sim.Machine, k apps.Kernel, scheme Scheme, critical []string, atIters []int64) *Persister {
	p := &Persister{iterObj: k.IterObject(), at: make(map[int64]bool)}
	var total uint64
	for _, o := range m.Space().Candidates() {
		take := scheme == AllCandidates
		if scheme == Critical {
			for _, name := range critical {
				if o.Name == name {
					take = true
					break
				}
			}
		}
		if take {
			p.objects = append(p.objects, o)
			total += (o.Size + mem.BlockSize - 1) &^ (mem.BlockSize - 1)
		}
	}
	if total == 0 {
		total = mem.BlockSize
	}
	p.shadow = m.Space().Alloc(shadowName, total, false)
	for _, it := range atIters {
		p.at[it] = true
	}
	return p
}

// RegionEnd implements sim.Persister: C/R does nothing at region ends.
func (p *Persister) RegionEnd(m *sim.Machine, region int, it int64) {}

// IterationEnd implements sim.Persister: take a checkpoint when due.
func (p *Persister) IterationEnd(m *sim.Machine, it int64) {
	// The iterator bookmark is persisted as always.
	m.Hierarchy().Flush(p.iterObj.Addr, p.iterObj.Size, cachesim.CLWB)
	if !p.at[it] {
		return
	}
	p.Checkpoints++
	h := m.Hierarchy()
	var buf [mem.BlockSize]byte
	off := p.shadow.Addr
	for _, o := range p.objects {
		for a := o.Addr; a < o.End(); a += mem.BlockSize {
			n := uint64(mem.BlockSize)
			if o.End()-a < n {
				n = o.End() - a
			}
			// The copy goes through the cache: reading the source brings
			// its blocks in, writing the destination dirties shadow blocks
			// — both evict other (possibly dirty) blocks, the pollution
			// writes Figure 9 accounts for.
			h.Load(0, a, buf[:n])
			h.Store(0, off, buf[:n])
			off += mem.BlockSize
		}
	}
	// The checkpoint must be durable before it counts.
	h.Flush(p.shadow.Addr, off-p.shadow.Addr, cachesim.CLFLUSHOPT)
}

// WritesReport compares NVM write traffic across fault-tolerance schemes
// for one kernel (Figure 9).
type WritesReport struct {
	Kernel string
	// BaselineWrites is the write count of the plain run (no persistence,
	// no checkpoints) — the normalisation denominator.
	BaselineWrites uint64
	// EasyCrashWrites is the write count under the given EasyCrash policy.
	EasyCrashWrites uint64
	// CkptCriticalWrites and CkptAllWrites are the counts with one
	// checkpoint of the critical / all candidate objects.
	CkptCriticalWrites uint64
	CkptAllWrites      uint64
}

// NormalizedEasyCrash returns EasyCrash's write count normalized to the
// baseline (1.16 means 16% additional writes).
func (w WritesReport) NormalizedEasyCrash() float64 {
	return float64(w.EasyCrashWrites) / float64(w.BaselineWrites)
}

// NormalizedCkptCritical returns the critical-object C/R count normalized
// to the baseline.
func (w WritesReport) NormalizedCkptCritical() float64 {
	return float64(w.CkptCriticalWrites) / float64(w.BaselineWrites)
}

// NormalizedCkptAll returns the all-candidates C/R count normalized to the
// baseline.
func (w WritesReport) NormalizedCkptAll() float64 {
	return float64(w.CkptAllWrites) / float64(w.BaselineWrites)
}

// CompareWrites profiles the four schemes the paper's Figure 9 compares:
// no fault tolerance, EasyCrash under policy, and one mid-run checkpoint of
// the critical or all candidate objects. As in the paper, the single
// checkpoint is a conservative under-count of real C/R traffic.
func CompareWrites(t *nvct.Tester, policy *nvct.Policy, critical []string) (WritesReport, error) {
	rep := WritesReport{Kernel: t.Name()}

	base, err := t.ProfileRun(nil)
	if err != nil {
		return rep, err
	}
	rep.BaselineWrites = base.NVMWrites

	ec, err := t.ProfileRun(policy)
	if err != nil {
		return rep, err
	}
	rep.EasyCrashWrites = ec.NVMWrites

	mid := []int64{t.Golden().Iters / 2}
	crit, err := t.ProfileRunWith(func(m *sim.Machine, k apps.Kernel) sim.Persister {
		return NewPersister(m, k, Critical, critical, mid)
	})
	if err != nil {
		return rep, err
	}
	rep.CkptCriticalWrites = crit.NVMWrites

	all, err := t.ProfileRunWith(func(m *sim.Machine, k apps.Kernel) sim.Persister {
		return NewPersister(m, k, AllCandidates, nil, mid)
	})
	if err != nil {
		return rep, err
	}
	rep.CkptAllWrites = all.NVMWrites
	return rep, nil
}
