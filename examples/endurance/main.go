// endurance reproduces the paper's NVM-write comparison (Figure 9): how many
// extra NVM media writes EasyCrash's selective flushing costs versus copying
// checkpoints, for each kernel. Fewer writes means longer NVM lifetime.
//
//	go run ./examples/endurance
package main

import (
	"fmt"
	"log"

	"easycrash"
)

func main() {
	log.SetFlags(0)

	fmt.Println("normalized NVM writes (1.00 = plain run, no fault tolerance):")
	fmt.Printf("%-10s %12s %16s %12s\n", "bench", "easycrash", "ckpt-critical", "ckpt-all")

	var ecSum, allSum float64
	var n int
	for _, name := range easycrash.KernelNames() {
		factory, err := easycrash.NewKernel(name, easycrash.ProfileTest)
		if err != nil {
			log.Fatal(err)
		}
		tester, err := easycrash.NewTester(factory, easycrash.TesterConfig{})
		if err != nil {
			log.Fatal(err)
		}

		// Let the framework pick the critical objects and regions, then
		// compare the write traffic of its policy against checkpointing.
		result, err := easycrash.RunWithTester(tester, easycrash.Config{
			Tests: 60, Seed: 3, SkipValidation: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		policy := result.Policy
		if policy == nil {
			policy = easycrash.IterationPolicy(result.Critical)
		}
		rep, err := easycrash.CompareWrites(tester, policy, result.Critical)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.3f %16.3f %12.3f\n",
			name, rep.NormalizedEasyCrash(), rep.NormalizedCkptCritical(), rep.NormalizedCkptAll())
		ecSum += rep.NormalizedEasyCrash()
		allSum += rep.NormalizedCkptAll()
		n++
	}
	fmt.Printf("%-10s %12.3f %16s %12.3f\n", "average", ecSum/float64(n), "", allSum/float64(n))
	fmt.Println("\n(the checkpoint runs take a single checkpoint — the paper's deliberately")
	fmt.Println("conservative comparison; real C/R checkpoints repeatedly)")
}
