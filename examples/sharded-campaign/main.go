// sharded-campaign demonstrates the supervised campaign runner surviving the
// worker failures the paper's premise is about: the campaign's crash trials
// are split into round-robin shards, each shard runs in a worker subprocess
// (a re-exec of this example in worker mode), and chaos injection kills one
// worker outright and hangs another mid-shard. The supervisor detects both
// through heartbeats, requeues the shards under capped exponential backoff,
// and the merged report comes out byte-identical to running the whole
// campaign in a single process — retries cannot change results, because every
// trial's crash point, seeds and media faults are derived from the campaign
// seed before any trial runs.
//
//	go run ./examples/sharded-campaign [-tests 40] [-shards 4] [-seed 9]
//
// The artifact run directory (spec, merged report, per-shard status, failing
// trial repro commands + durable dumps) is written under a temp dir and its
// path printed.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"easycrash"
	"easycrash/internal/campaignd"
	"easycrash/internal/nvct"
)

func main() {
	// Worker mode: the supervisor re-execs this binary with "worker" as the
	// first argument; everything after it is the worker flag set.
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		os.Exit(campaignd.WorkerMain(os.Args[2:], os.Stdout, os.Stderr))
	}

	log.SetFlags(0)
	var (
		tests  = flag.Int("tests", 40, "crash trials in the campaign")
		shards = flag.Int("shards", 4, "worker shards")
		seed   = flag.Int64("seed", 9, "campaign seed")
	)
	flag.Parse()

	spec := &campaignd.Spec{
		Kernel: "mg",
		Opts: nvct.CampaignOpts{
			Tests:    *tests,
			Seed:     *seed,
			Parallel: 1,
			Faults:   easycrash.FaultConfig{RBER: 1e-5, TornWrites: true},
		},
	}

	// The single-process reference the supervised run must reproduce.
	tester, err := spec.NewTester()
	if err != nil {
		log.Fatal(err)
	}
	ref, err := tester.RunCampaignContext(context.Background(), spec.Policy, spec.Opts)
	if err != nil {
		log.Fatal(err)
	}
	refJSON, err := ref.JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single process: %d trials, recomputability %.3f\n", len(ref.Tests), ref.Recomputability())

	runDir, err := os.MkdirTemp("", "sharded-campaign-")
	if err != nil {
		log.Fatal(err)
	}
	cfg := campaignd.Config{
		Spec:   spec,
		Shards: *shards,
		RunDir: filepath.Join(runDir, "run"),
		// Chaos: kill shard 0's first worker outright, hang shard 1's first
		// worker mid-shard. Both shards must come back via retry/backoff.
		Chaos: "crash@0.1,hang@1.1",
		Log:   os.Stderr,
	}
	res, err := campaignd.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsupervised (%d shards, 1 worker killed, 1 hung):\n", *shards)
	for _, st := range res.Shards {
		fmt.Printf("  shard %d: %-9s %d/%d trials in %d attempt(s)", st.Shard, st.State, st.Trials, st.Expected, st.Attempts)
		for _, f := range st.Failures {
			fmt.Printf("  [attempt %d %s]", f.Attempt, f.Kind)
		}
		fmt.Println()
	}
	if !res.Complete {
		log.Fatalf("supervised run incomplete: missing %v", res.Missing)
	}

	mergedJSON, err := res.Report.JSON()
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(mergedJSON, refJSON) {
		log.Fatal("merged report differs from the single-process report")
	}
	fmt.Printf("\nmerged report: byte-identical to the single-process engine (%d bytes)\n", len(mergedJSON))
	fmt.Printf("failures: %d trial(s) in %d class(es): %d new / %d known\n",
		res.FailingTrials, len(res.FailureClasses), res.NewFailures, res.KnownFailures)
	fmt.Printf("artifacts: %s\n", res.RunDir)
}
